package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securetlb/internal/job"
	"securetlb/internal/perf"
	"securetlb/internal/pool"
	"securetlb/internal/secbench"
)

// testServer wires a real queue + campaign runner behind httptest. The queue
// is NOT started: tests that need deterministic coalescing submit first and
// then call start().
func testServer(t *testing.T, workers int) (*httptest.Server, *job.Queue, func()) {
	t.Helper()
	runner := &CampaignRunner{Dir: t.TempDir(), Pool: pool.New(workers)}
	q, err := job.Open(runner.Dir, runner)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(q, runner).Handler())
	t.Cleanup(func() {
		ts.Close()
		q.Close()
	})
	return ts, q, q.Start
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func waitDone(t *testing.T, url, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		_, raw := getBody(t, url+"/jobs/"+id)
		var j job.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		if j.State == job.StateDone {
			return
		}
		if j.State == job.StateFailed {
			t.Fatalf("job failed: %s", j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCoalesceAndBitIdenticalResult is the tentpole's acceptance test: the
// same campaign submitted twice runs once (coalesce counter = 1), and both
// responses carry output byte-identical to a direct library run of the same
// configuration at the same worker count.
func TestCoalesceAndBitIdenticalResult(t *testing.T) {
	const workers, trials = 2, 4
	ts, q, start := testServer(t, workers)
	spec := fmt.Sprintf(`{"kind":"secbench","design":"sa","trials":%d}`, trials)

	// Submit twice before the queue starts, so the second request must find
	// the first one live and coalesce onto it.
	code, first := postJSON(t, ts.URL, spec)
	if code != http.StatusAccepted || first["coalesced"] != false {
		t.Fatalf("first submit: code=%d body=%v", code, first)
	}
	code, second := postJSON(t, ts.URL, spec)
	if code != http.StatusAccepted || second["coalesced"] != true {
		t.Fatalf("second submit: code=%d body=%v", code, second)
	}
	id := first["id"].(string)
	if second["id"] != id {
		t.Fatalf("coalesced submit named job %v, want %v", second["id"], id)
	}

	start()
	waitDone(t, ts.URL, id)

	_, rawA := getBody(t, ts.URL+"/jobs/"+id+"/result")
	_, rawB := getBody(t, ts.URL+"/jobs/"+id+"/result")
	if !bytes.Equal(rawA, rawB) {
		t.Error("two reads of the stored result differ")
	}
	var res Result
	if err := json.Unmarshal(rawA, &res); err != nil {
		t.Fatal(err)
	}

	// The reference: the same campaign run directly through the library at
	// the same worker count.
	d := secbench.DesignSA
	cfg := secbench.DefaultConfig(d)
	cfg.Trials = trials
	rep, err := cfg.RunAllCtx(context.Background(), secbench.RunOptions{Pool: pool.New(workers)})
	if err != nil {
		t.Fatal(err)
	}
	want := secbench.FormatCampaign(d, trials, workers, false, rep)
	if res.Output != want {
		t.Errorf("served output differs from direct run:\n--- served ---\n%s--- direct ---\n%s", res.Output, want)
	}

	// A post-completion submission is a cache hit served with 200.
	code, third := postJSON(t, ts.URL, spec)
	if code != http.StatusOK || third["cached"] != true {
		t.Errorf("third submit: code=%d body=%v", code, third)
	}

	m := q.Metrics()
	if m.Submissions != 3 || m.CoalesceHits != 1 || m.CacheHits != 1 || m.Executions != 1 {
		t.Errorf("metrics = %+v", m)
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`tlbserved_jobs{state="done"} 1`,
		"tlbserved_submissions_total 3",
		"tlbserved_coalesce_hits_total 1",
		"tlbserved_cache_hits_total 1",
		"tlbserved_executions_total 1",
		fmt.Sprintf("tlbserved_pool_workers %d", workers),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestPerfJobMatchesDirectSweep: a perf job's output equals the direct
// Figure 7 sweep at the same worker count.
func TestPerfJobMatchesDirectSweep(t *testing.T) {
	const workers = 2
	ts, _, start := testServer(t, workers)
	start()
	code, sub := postJSON(t, ts.URL, `{"kind":"perf","design":"sa","decrypts":2,"seed":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%v", code, sub)
	}
	id := sub["id"].(string)
	waitDone(t, ts.URL, id)
	_, raw := getBody(t, ts.URL+"/jobs/"+id+"/result")
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}

	rows, err := perf.Figure7Pool(context.Background(), perf.SA, false, 2, 5, pool.New(workers), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := perf.SweepHeader(perf.SA, false, 2, workers) + perf.FormatRows(rows)
	if res.Output != want {
		t.Errorf("served perf output differs from direct sweep:\n--- served ---\n%s--- direct ---\n%s", res.Output, want)
	}
}

// TestStreamDeliversTerminalEvents: the NDJSON stream ends with the result
// and done-state events.
func TestStreamDeliversTerminalEvents(t *testing.T) {
	ts, _, start := testServer(t, 2)
	code, sub := postJSON(t, ts.URL, `{"kind":"secbench","design":"sa","trials":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%v", code, sub)
	}
	id := sub["id"].(string)
	start()

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var events []job.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev job.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Job != id {
			t.Errorf("event for job %q, want %q", ev.Job, id)
		}
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want at least result+state", len(events))
	}
	last, prev := events[len(events)-1], events[len(events)-2]
	if prev.Type != "result" || last.Type != "state" || last.State != job.StateDone {
		t.Errorf("terminal events = %+v, %+v", prev, last)
	}
}

// TestCancelOverHTTP: DELETE on a running job drains it to canceled; its
// result endpoint reports the conflict.
func TestCancelOverHTTP(t *testing.T) {
	ts, _, start := testServer(t, 2)
	start()
	// A job big enough that it cannot finish before the cancel lands;
	// cancellation only drains the (fast) in-flight trials, so the test
	// still completes promptly.
	code, sub := postJSON(t, ts.URL, `{"kind":"secbench","design":"all","trials":100000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%v", code, sub)
	}
	id := sub["id"].(string)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		_, raw := getBody(t, ts.URL+"/jobs/"+id)
		var j job.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		if j.State == job.StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after cancel", j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	code, raw := getBody(t, ts.URL+"/jobs/"+id+"/result")
	if code != http.StatusConflict {
		t.Errorf("result of canceled job: code=%d body=%s", code, raw)
	}
}

func TestRejectsBadRequests(t *testing.T) {
	ts, _, start := testServer(t, 1)
	start()
	for _, body := range []string{
		`{"kind":"areabench"}`,              // unknown kind
		`{"kind":"secbench","design":"xx"}`, // unknown design
		`{"kind":"secbench","trials":-3}`,   // negative trials
		`{"kind":"perf","decrypts":-1}`,     // negative decrypts
		`{"kind":"secbench","workers":4}`,   // unknown field
		`{"kind":`,                          // malformed JSON
	} {
		code, resp := postJSON(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s: code=%d resp=%v, want 400", body, code, resp)
		}
		if resp["error"] == "" {
			t.Errorf("POST %s: no error message", body)
		}
	}
	for _, url := range []string{"/jobs/unknown", "/jobs/unknown/result", "/jobs/unknown/stream"} {
		if code, _ := getBody(t, ts.URL+url); code != http.StatusNotFound {
			t.Errorf("GET %s: code=%d, want 404", url, code)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := testServer(t, 1)
	code, raw := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || string(raw) != "ok\n" {
		t.Errorf("healthz: code=%d body=%q", code, raw)
	}
}
