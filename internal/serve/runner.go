// Package serve turns the one-shot campaign CLIs into a long-lived
// service: a job.Runner that executes campaign specs on a shared worker
// pool with checkpoint-backed durability, and the stdlib net/http API the
// tlbserved daemon exposes (job submission with request coalescing, NDJSON
// progress/result streaming, cancellation, and a /metrics endpoint).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"securetlb/internal/checkpoint"
	"securetlb/internal/job"
	"securetlb/internal/perf"
	"securetlb/internal/pool"
	"securetlb/internal/secbench"
)

// Result is the payload of a completed job. Output is rendered through the
// same formatting code the CLIs use, so it is byte-identical to the direct
// `secbench`/`perfbench` run of the same configuration (at the same worker
// count, which only appears in the table headers).
type Result struct {
	Kind string `json:"kind"`
	// Output is the campaign's rendered tables.
	Output string `json:"output"`
	// Quarantined counts trials excluded from the statistics (secbench).
	Quarantined int `json:"quarantined,omitempty"`
}

// progressInterval is how often a running job's checkpoint is polled for a
// progress event.
const progressInterval = 100 * time.Millisecond

// CampaignRunner executes campaign specs for the job queue. All jobs share
// one worker pool — the whole point of serving campaigns from a daemon:
// concurrent callers saturate exactly Pool.Size() cores between them
// instead of each spawning their own fleet.
type CampaignRunner struct {
	// Dir is where per-job checkpoint files live (normally the queue's
	// directory).
	Dir string
	// Pool bounds the leaf concurrency of all jobs together.
	Pool *pool.Pool

	quarantined atomic.Int64
}

// Quarantined returns the total number of trials quarantined across every
// campaign this runner has executed — a daemon-lifetime health counter for
// /metrics.
func (r *CampaignRunner) Quarantined() int64 { return r.quarantined.Load() }

// Run implements job.Runner. The spec's checkpoint file (named by the job
// fingerprint, validated by the campaign fingerprint) makes an execution
// resumable: a job interrupted by a daemon shutdown — graceful or not —
// picks up from its completed work units on the next run and finishes
// bit-identical to an uninterrupted one. The checkpoint is removed once
// the result is durable in the job record.
func (r *CampaignRunner) Run(ctx context.Context, spec job.Spec, publish func(job.Event)) (json.RawMessage, error) {
	id, err := spec.ID()
	if err != nil {
		return nil, err
	}
	ckPath := filepath.Join(r.Dir, id+".ckpt.json")
	// Flush every unit: a served job must survive a SIGKILL losing at most
	// the units still in flight.
	ck, err := checkpoint.Open(ckPath, r.fingerprint(spec), 1, true)
	if err != nil {
		return nil, err
	}
	stopProgress := r.watchProgress(ck, publish)
	var res Result
	switch spec.Kind {
	case job.KindSecbench:
		res, err = r.runSecbench(ctx, spec, ck)
	case job.KindPerf:
		res, err = r.runPerf(ctx, spec, ck)
	default:
		err = fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
	stopProgress()
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	os.Remove(ckPath)
	return raw, nil
}

// fingerprint identifies a spec's campaign configuration for checkpoint
// validation, mirroring what the CLIs compute for the same flags.
func (r *CampaignRunner) fingerprint(spec job.Spec) string {
	if spec.Kind == job.KindPerf {
		return perf.SweepFingerprint(spec.Seed)
	}
	designs, err := secbench.ParseDesigns(spec.Design)
	if err != nil {
		return "invalid:" + spec.Design
	}
	fps := make([]string, 0, len(designs))
	for _, d := range designs {
		fps = append(fps, r.secbenchConfig(d, spec).Fingerprint(spec.Extended))
	}
	return strings.Join(fps, ";")
}

func (r *CampaignRunner) secbenchConfig(d secbench.Design, spec job.Spec) secbench.Config {
	cfg := secbench.DefaultConfig(d)
	cfg.Trials = spec.Trials
	cfg.Invariants = spec.Invariants
	return cfg
}

// watchProgress publishes a progress event whenever the checkpoint's
// completed-unit count changes. The returned stop function publishes a
// final reading before detaching, so subscribers always see the last unit.
func (r *CampaignRunner) watchProgress(ck *checkpoint.File, publish func(job.Event)) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	last := ck.Len()
	if last > 0 {
		publish(job.Event{Type: "progress", Units: last})
	}
	go func() {
		defer close(finished)
		ticker := time.NewTicker(progressInterval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if n := ck.Len(); n != last {
					last = n
					publish(job.Event{Type: "progress", Units: n})
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		if n := ck.Len(); n != last {
			publish(job.Event{Type: "progress", Units: n})
		}
	}
}

func (r *CampaignRunner) runSecbench(ctx context.Context, spec job.Spec, ck *checkpoint.File) (Result, error) {
	res := Result{Kind: job.KindSecbench}
	designs, err := secbench.ParseDesigns(spec.Design)
	if err != nil {
		return res, err
	}
	opts := secbench.RunOptions{Pool: r.Pool, Checkpoint: ck}
	var out strings.Builder
	for _, d := range designs {
		cfg := r.secbenchConfig(d, spec)
		var rep secbench.CampaignReport
		if spec.Extended {
			rep, err = cfg.RunAllExtendedCtx(ctx, opts)
		} else {
			rep, err = cfg.RunAllCtx(ctx, opts)
		}
		if err != nil {
			return res, err
		}
		r.quarantined.Add(int64(len(rep.Quarantined)))
		res.Quarantined += len(rep.Quarantined)
		out.WriteString(secbench.FormatCampaign(d, spec.Trials, r.Pool.Size(), spec.Extended, rep))
	}
	res.Output = out.String()
	return res, nil
}

func (r *CampaignRunner) runPerf(ctx context.Context, spec job.Spec, ck *checkpoint.File) (Result, error) {
	res := Result{Kind: job.KindPerf}
	designs, err := perf.ParseDesigns(spec.Design)
	if err != nil {
		return res, err
	}
	var out strings.Builder
	for _, d := range designs {
		rows, err := perf.Figure7Pool(ctx, d, spec.Secure, spec.Decrypts, spec.Seed, r.Pool, ck)
		if err != nil {
			return res, err
		}
		out.WriteString(perf.SweepHeader(d, spec.Secure, spec.Decrypts, r.Pool.Size()))
		out.WriteString(perf.FormatRows(rows))
	}
	res.Output = out.String()
	return res, nil
}
