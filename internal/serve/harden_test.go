package serve

// Tests for the HTTP hardening layer: typed overload answers with
// Retry-After, client attribution, the readiness probe, and the new
// robustness metrics.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"securetlb/internal/job"
	"securetlb/internal/pool"
)

// limitServer is testServer with an explicit admission policy.
func limitServer(t *testing.T, workers int, lim job.Limits) (*httptest.Server, *job.Queue, func()) {
	t.Helper()
	runner := &CampaignRunner{Dir: t.TempDir(), Pool: pool.New(workers)}
	q, err := job.OpenLimits(runner.Dir, runner, lim)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(q, runner).Handler())
	t.Cleanup(func() {
		ts.Close()
		q.Close()
	})
	return ts, q, q.Start
}

// postAs submits a spec under an explicit client identity.
func postAs(t *testing.T, url, client, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSubmitBackpressure: past MaxPending the daemon answers 429 with a
// Retry-After instead of queueing unboundedly, and /readyz flips to 503;
// both recover once the queue drains.
func TestSubmitBackpressure(t *testing.T) {
	ts, _, start := limitServer(t, 2, job.Limits{MaxPending: 1})
	// Not started: the first job stays pending, holding the only slot.
	code, sub := postJSON(t, ts.URL, `{"kind":"secbench","design":"sa","trials":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code=%d body=%v", code, sub)
	}
	id := sub["id"].(string)

	resp := postAs(t, ts.URL, "other", `{"kind":"secbench","design":"rf","trials":2}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-capacity submit: code=%d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz at capacity: code=%d body=%s, want 503", code, body)
	}
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz must stay 200 while merely busy: code=%d body=%s", code, body)
	}

	start()
	waitDone(t, ts.URL, id)
	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after drain: code=%d body=%s, want 200", code, body)
	}
	resp = postAs(t, ts.URL, "other", `{"kind":"secbench","design":"rf","trials":2}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("submit after drain: code=%d, want 202", resp.StatusCode)
	}
}

// TestPerClientCapKeysOnHeader: the X-Client-ID header is the admission
// identity — one saturated client gets 429 while another is served.
func TestPerClientCapKeysOnHeader(t *testing.T) {
	ts, _, _ := limitServer(t, 2, job.Limits{MaxPerClient: 1})
	// Not started: jobs hold their slots as pending.
	resp := postAs(t, ts.URL, "alice", `{"kind":"secbench","design":"sa","trials":2}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice's first submit: code=%d", resp.StatusCode)
	}

	resp = postAs(t, ts.URL, "alice", `{"kind":"secbench","design":"rf","trials":2}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("alice's second submit: code=%d, want 429", resp.StatusCode)
	}
	resp = postAs(t, ts.URL, "bob", `{"kind":"secbench","design":"rf","trials":2}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("bob taxed for alice's jobs: code=%d, want 202", resp.StatusCode)
	}
	// Re-submitting a job alice already holds coalesces without a new slot.
	resp = postAs(t, ts.URL, "alice", `{"kind":"secbench","design":"sa","trials":2}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("alice re-attaching to her own job: code=%d, want 202", resp.StatusCode)
	}
}

// TestMetricsExposeHardeningCounters: the robustness counters and gauges
// are published for scraping.
func TestMetricsExposeHardeningCounters(t *testing.T) {
	ts, _, start := limitServer(t, 2, job.Limits{MaxPending: 1})
	code, sub := postJSON(t, ts.URL, `{"kind":"secbench","design":"sa","trials":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%v", code, sub)
	}
	resp := postAs(t, ts.URL, "other", `{"kind":"secbench","design":"rf","trials":2}`)
	resp.Body.Close()

	_, raw := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`tlbserved_rejected_total{reason="queue-full"} 1`,
		`tlbserved_rejected_total{reason="client-busy"} 0`,
		`tlbserved_rejected_total{reason="draining"} 0`,
		"tlbserved_jobs_quarantined_total 0",
		"tlbserved_retries_total 0",
		"tlbserved_stalls_total 0",
		"tlbserved_jobs_live 1",
		"tlbserved_ready 0",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	start()
	waitDone(t, ts.URL, sub["id"].(string))
	_, raw = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(raw), "tlbserved_ready 1") {
		t.Error("tlbserved_ready did not recover after the drain")
	}
}
