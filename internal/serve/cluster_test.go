package serve

// Tests for cluster-mode serving: /clusterz peer probing, content-address
// submission routing with one-hop forwarding, remote job streaming from the
// shared directory, and the Prometheus exposition metadata scrapers key on.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securetlb/internal/job"
	"securetlb/internal/pool"
)

// clusterNode is one of two in-process tlbserved nodes sharing a data
// directory.
type clusterNode struct {
	ts   *httptest.Server
	q    *job.Queue
	s    *Server
	addr string
}

// clusterPair builds a two-node cluster over one shared directory. The
// listeners exist before the queues open so each node's identity is its
// real address, exactly as cmd/tlbserved arranges it.
func clusterPair(t *testing.T) (a, b *clusterNode) {
	t.Helper()
	dir := t.TempDir()
	tsA := httptest.NewUnstartedServer(nil)
	tsB := httptest.NewUnstartedServer(nil)
	peers := []string{tsA.Listener.Addr().String(), tsB.Listener.Addr().String()}
	mk := func(ts *httptest.Server, addr string) *clusterNode {
		runner := &CampaignRunner{Dir: dir, Pool: pool.New(2)}
		q, err := job.OpenLimits(dir, runner, job.Limits{
			MaxPending: 64,
			Cluster:    job.Cluster{Node: addr, LeaseTTL: 500 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("open node %s: %v", addr, err)
		}
		s := New(q, runner)
		s.EnableCluster(Cluster{Node: addr, Peers: peers})
		ts.Config.Handler = s.Handler()
		ts.Start()
		q.Start()
		t.Cleanup(func() {
			ts.Close()
			q.Close()
		})
		return &clusterNode{ts: ts, q: q, s: s, addr: addr}
	}
	return mk(tsA, peers[0]), mk(tsB, peers[1])
}

// routeFor splits the pair into the node owning spec's content address and
// the other one.
func routeFor(t *testing.T, a, b *clusterNode, spec job.Spec) (owner, other *clusterNode) {
	t.Helper()
	id, err := spec.Normalize().ID()
	if err != nil {
		t.Fatal(err)
	}
	if a.s.owner(id) == a.addr {
		return a, b
	}
	return b, a
}

// TestClusterzProbesPeers: /clusterz names every peer with a live health
// probe, and a dead peer shows up unhealthy on the next poll.
func TestClusterzProbesPeers(t *testing.T) {
	a, b := clusterPair(t)
	code, raw := getBody(t, a.ts.URL+"/clusterz")
	if code != http.StatusOK {
		t.Fatalf("clusterz: %d", code)
	}
	var st ClusterStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != a.addr || len(st.Peers) != 2 {
		t.Fatalf("clusterz reports node %s with %d peers, want %s with 2", st.Node, len(st.Peers), a.addr)
	}
	for _, p := range st.Peers {
		if !p.Healthy {
			t.Fatalf("peer %s unhealthy while both nodes serve", p.Node)
		}
		if p.Self != (p.Node == a.addr) {
			t.Fatalf("peer %s has self=%v", p.Node, p.Self)
		}
	}

	b.ts.Close()
	_, raw = getBody(t, a.ts.URL+"/clusterz")
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	for _, p := range st.Peers {
		if p.Node == b.addr && p.Healthy {
			t.Fatalf("peer %s still reported healthy after its listener closed", p.Node)
		}
		if p.Node == a.addr && !p.Healthy {
			t.Fatal("the answering node reported itself unhealthy")
		}
	}
}

// TestSubmitForwardsToOwner: a submission posted to the wrong node is
// forwarded one hop to its content-address owner, whose queue accounts the
// work; the sender's queue never sees a submission.
func TestSubmitForwardsToOwner(t *testing.T) {
	a, b := clusterPair(t)
	spec := job.Spec{Kind: job.KindSecbench, Design: "sa", Trials: 1}
	owner, other := routeFor(t, a, b, spec)

	code, out := postJSON(t, other.ts.URL, `{"kind":"secbench","design":"sa","trials":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("forwarded submission answered %d, want 202", code)
	}
	id, _ := out["id"].(string)
	wantID, err := spec.Normalize().ID()
	if err != nil {
		t.Fatal(err)
	}
	if id != wantID {
		t.Fatalf("forwarded submission returned job %s, want %s", id, wantID)
	}
	if got := owner.q.Metrics().Submissions; got != 1 {
		t.Fatalf("owner accounts %d submissions, want 1", got)
	}
	if got := other.q.Metrics().Submissions; got != 0 {
		t.Fatalf("the forwarding node accounts %d submissions, want 0 (it must not also run the job)", got)
	}
	waitDone(t, other.ts.URL, id) // any node serves the read
}

// TestStreamFollowsRemoteJob: a node that never executed a job still
// serves its NDJSON stream — from the shared record — ending in the
// result/done pair with bytes identical to the owner's /result.
func TestStreamFollowsRemoteJob(t *testing.T) {
	a, b := clusterPair(t)
	spec := job.Spec{Kind: job.KindSecbench, Design: "sa", Trials: 50}
	owner, other := routeFor(t, a, b, spec)

	code, out := postJSON(t, owner.ts.URL, `{"kind":"secbench","design":"sa","trials":50}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit to owner answered %d, want 202", code)
	}
	id, _ := out["id"].(string)

	resp, err := http.Get(other.ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote stream answered %d, want 200", resp.StatusCode)
	}
	var last job.State
	var streamed json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev job.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream event %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "state":
			last = ev.State
		case "result":
			streamed = ev.Result
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last != job.StateDone {
		t.Fatalf("remote stream ended in state %q, want done", last)
	}
	_, direct := getBody(t, owner.ts.URL+"/jobs/"+id+"/result")
	if string(streamed) != string(direct) {
		t.Fatalf("streamed result (%d bytes) differs from the owner's /result (%d bytes)",
			len(streamed), len(direct))
	}
}

// TestMetricsExpositionFormat: /metrics must carry the Prometheus text
// exposition content type (version included — scrapers key their parser on
// it) and, on a cluster node, the node identity and lease gauges.
func TestMetricsExpositionFormat(t *testing.T) {
	a, _ := clusterPair(t)
	resp, err := http.Get(a.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := resp.Header.Get("Content-Type"); got != want {
		t.Fatalf("metrics Content-Type = %q, want %q", got, want)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text() + "\n")
	}
	for _, line := range []string{
		fmt.Sprintf("tlbserved_node_info{node=%q} 1", a.addr),
		"tlbserved_cluster_peers 2",
		"tlbserved_leases_held ",
		"tlbserved_handoffs_total ",
		"tlbserved_fenced_writes_total ",
	} {
		if !strings.Contains(body.String(), line) {
			t.Fatalf("metrics missing %q:\n%s", line, body.String())
		}
	}
}
