package serve

// Cluster-mode request routing. Every node serves the full API; what
// differs is where a request's work happens:
//
//   - Submissions are routed by the job's content address: the owner node
//     is peers[fingerprint mod N], so identical specs land on the same
//     node and coalesce in its memory exactly as they would on a single
//     daemon. A node that is not the owner forwards the submission (one
//     hop, loop-guarded); if the owner is unreachable it submits locally —
//     the lease claim arbitrates, so the worst case is a coalesce miss,
//     never a dual execution.
//   - Reads (get, list, result) need no routing: the shared directory is
//     the cluster's authoritative view and every queue answers from it.
//   - Streams of a job another node is executing are followed from the
//     shared record by polling: the follower emits progress and terminal
//     events as the owner persists them. Polling survives the owner dying
//     mid-stream — after the hand-off the new owner updates the same
//     record and the follower never notices.
//
// /clusterz reports the node's own identity plus a liveness probe of every
// peer, which is what the chaos harness and a load balancer both want to
// know: who is in the cluster and who is answering right now.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"securetlb/internal/fingerprint"
	"securetlb/internal/job"
)

// Cluster is the serve layer's view of the deployment: this node's
// advertised address (also its lease identity) and every node's address.
type Cluster struct {
	// Node is this node's advertised host:port.
	Node string
	// Peers are all cluster node addresses; Node is added if absent. The
	// set must agree across nodes for submission routing to agree.
	Peers []string
}

// forwardHeader guards against forwarding loops: a submission carries it
// after its one permitted hop, and the receiver then always serves locally.
const forwardHeader = "X-TLB-Forwarded"

// streamPoll is the follower's poll interval for remote jobs' streams.
const streamPoll = 100 * time.Millisecond

// EnableCluster switches the server into cluster mode: submission routing
// by content address, remote stream following, and /clusterz. Call before
// serving traffic.
func (s *Server) EnableCluster(c Cluster) {
	peers := append([]string(nil), c.Peers...)
	found := false
	for _, p := range peers {
		if p == c.Node {
			found = true
			break
		}
	}
	if !found {
		peers = append(peers, c.Node)
	}
	sort.Strings(peers)
	s.cluster = &Cluster{Node: c.Node, Peers: peers}
	s.hc = &http.Client{Timeout: 30 * time.Second}
	s.mux.HandleFunc("GET /clusterz", s.handleClusterz)
}

// owner maps a job ID to the node that should execute it. The ID is
// already a fingerprint (16 hex digits of FNV-64a), so the content address
// itself picks the owner; anything unparseable is re-digested first.
func (s *Server) owner(id string) string {
	h, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		h, _ = strconv.ParseUint(fingerprint.New().Field(id).Sum(), 16, 64)
	}
	return s.cluster.Peers[h%uint64(len(s.cluster.Peers))]
}

// forwardSubmit relays a submission to its owner node, preserving the
// client identity so the per-client cap is charged to the real caller.
// ok=false means the owner was unreachable and the caller should submit
// locally instead.
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, body []byte, target string) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+target+"/jobs", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID(r))
	req.Header.Set(forwardHeader, s.cluster.Node)
	resp, err := s.hc.Do(req)
	if err != nil {
		return false // owner down; local submission takes over
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// followStream serves a remote job's NDJSON stream by polling the shared
// record: progress deltas as the owner checkpoints, then the terminal
// result/state pair in the live stream's shape.
func (s *Server) followStream(w http.ResponseWriter, r *http.Request, id string) {
	j, ok := s.queue.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, job.ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev job.Event) bool {
		ev.Job = id
		if enc.Encode(ev) != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	lastState, lastUnits := job.State(""), -1
	ticker := time.NewTicker(streamPoll)
	defer ticker.Stop()
	for {
		if j.State != lastState && !j.State.Terminal() {
			lastState = j.State
			if !emit(job.Event{Type: "state", State: j.State, Error: j.Error}) {
				return
			}
		}
		if j.Units != lastUnits && j.Units > 0 {
			lastUnits = j.Units
			if !emit(job.Event{Type: "progress", Units: j.Units}) {
				return
			}
		}
		if j.State.Terminal() {
			if j.State == job.StateDone {
				if !emit(job.Event{Type: "result", Result: j.Result}) {
					return
				}
			}
			emit(job.Event{Type: "state", State: j.State, Error: j.Error})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		// The record may briefly vanish mid-rename; keep the last snapshot.
		if jj, ok := s.queue.Get(id); ok {
			j = jj
		}
	}
}

// ClusterStatus is the GET /clusterz reply.
type ClusterStatus struct {
	// Node is this node's identity (its advertised address).
	Node string `json:"node"`
	// Peers is the full routing set with a liveness probe per node.
	Peers []PeerStatus `json:"peers"`
	// LeasesHeld is how many live jobs this node currently owns.
	LeasesHeld int `json:"leases_held"`
	// Handoffs counts jobs this node adopted from dead or lapsed owners.
	Handoffs int64 `json:"handoffs"`
	// LeasesLost counts jobs this node lost to fencing or expiry.
	LeasesLost int64 `json:"leases_lost"`
	// FencedWrites counts stale record writes refused by this node's queue.
	FencedWrites int64 `json:"fenced_writes"`
}

// PeerStatus is one node's row in /clusterz.
type PeerStatus struct {
	Node string `json:"node"`
	Self bool   `json:"self"`
	// Healthy is the result of a quick /healthz probe (always true for
	// self: answering /clusterz is the proof).
	Healthy bool `json:"healthy"`
}

func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	m := s.queue.Metrics()
	st := ClusterStatus{
		Node:         s.cluster.Node,
		LeasesHeld:   m.LeasesHeld,
		Handoffs:     m.Handoffs,
		LeasesLost:   m.LeasesLost,
		FencedWrites: m.FencedWrites,
	}
	probe := &http.Client{Timeout: 500 * time.Millisecond}
	for _, p := range s.cluster.Peers {
		ps := PeerStatus{Node: p, Self: p == s.cluster.Node, Healthy: p == s.cluster.Node}
		if !ps.Self {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, "http://"+p+"/healthz", nil)
			if err == nil {
				if resp, err := probe.Do(req); err == nil {
					resp.Body.Close()
					ps.Healthy = resp.StatusCode == http.StatusOK
				}
			}
		}
		st.Peers = append(st.Peers, ps)
	}
	writeJSON(w, http.StatusOK, st)
}
