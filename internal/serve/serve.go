package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"

	"securetlb/internal/job"
	"securetlb/internal/pool"
)

// Server is the tlbserved HTTP API over a job queue.
//
//	POST   /jobs             submit a campaign spec; coalesces/caches by fingerprint
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        one job's record (result included when done)
//	GET    /jobs/{id}/stream NDJSON progress/result stream until terminal
//	GET    /jobs/{id}/result the completed job's result payload
//	DELETE /jobs/{id}        cancel a live job (started trials drain)
//	GET    /metrics          job states, coalesce/cache hits, pool utilization
//	GET    /healthz          liveness (the process is up)
//	GET    /readyz           readiness (the queue accepts new work; 503
//	                         while draining or at the admission limit)
//	GET    /clusterz         cluster mode only: node identity, peer
//	                         liveness, lease/hand-off counters
//
// Submissions are attributed to a client identity — the X-Client-ID
// header when present, else the connection's remote host — which the
// queue's per-client in-flight cap keys on. Overload answers are typed:
// 429 with a Retry-After for a full queue or a saturated client, 503 with
// a Retry-After while draining or on a transient persistence failure.
type Server struct {
	queue  *job.Queue
	runner *CampaignRunner
	pool   *pool.Pool
	mux    *http.ServeMux
	// cluster and hc are set by EnableCluster (nil on a single daemon).
	cluster *Cluster
	hc      *http.Client
}

// New builds the API over a queue executing on runner (whose pool the
// metrics report).
func New(q *job.Queue, r *CampaignRunner) *Server {
	s := &Server{queue: q, runner: r, pool: r.Pool, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SubmitResponse is the POST /jobs reply.
type SubmitResponse struct {
	ID    string    `json:"id"`
	State job.State `json:"state"`
	// Coalesced is true when the submission attached to an already live
	// identical job; Cached when it was served from a completed one.
	Coalesced bool `json:"coalesced"`
	Cached    bool `json:"cached"`
}

// clientID attributes a request to a caller for the per-client in-flight
// cap: the X-Client-ID header when the client names itself, else the
// remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading spec: %w", err))
		return
	}
	var spec job.Spec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing spec: %w", err))
		return
	}
	if s.cluster != nil && r.Header.Get(forwardHeader) == "" {
		if id, err := spec.ID(); err == nil {
			if target := s.owner(id); target != s.cluster.Node {
				if s.forwardSubmit(w, r, body, target) {
					return
				}
				// Owner unreachable: serve locally. The lease claim keeps
				// this sound; the cost is only a possible coalesce miss.
			}
		}
	}
	j, coalesced, cached, err := s.queue.SubmitFrom(clientID(r), spec)
	switch {
	case errors.Is(err, job.ErrQueueFull), errors.Is(err, job.ErrClientBusy):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, job.ErrDraining):
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case job.IsTransient(err):
		// A persistence hiccup rejected the submission; the same request
		// is safe to retry against the same daemon.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{ID: j.ID, State: j.State, Coalesced: coalesced, Cached: cached})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, job.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, job.ErrNotFound)
		return
	}
	if j.State != job.StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", j.ID, j.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(j.Result)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	live, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"canceled": live})
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	events, stop, err := s.queue.Subscribe(r.PathValue("id"))
	if err != nil {
		if s.cluster != nil {
			// A live job another node is executing: follow its shared
			// record instead of subscribing to local events.
			s.followStream(w, r, r.PathValue("id"))
			return
		}
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// handleReady is the readiness probe: distinct from /healthz, it answers
// 503 while the queue is draining or at its admission limit, so a load
// balancer stops routing new work to a daemon that would only reject it.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ready, reason := s.queue.Ready()
	if !ready {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, reason)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.queue.Metrics()
	ready, _ := s.queue.Ready()
	// The Prometheus text exposition format's content type, version
	// included — scrapers key their parser on it.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, st := range job.States() {
		fmt.Fprintf(w, "tlbserved_jobs{state=%q} %d\n", st, m.JobsByState[st])
	}
	fmt.Fprintf(w, "tlbserved_submissions_total %d\n", m.Submissions)
	fmt.Fprintf(w, "tlbserved_coalesce_hits_total %d\n", m.CoalesceHits)
	fmt.Fprintf(w, "tlbserved_cache_hits_total %d\n", m.CacheHits)
	fmt.Fprintf(w, "tlbserved_executions_total %d\n", m.Executions)
	fmt.Fprintf(w, "tlbserved_jobs_recovered_total %d\n", m.Recovered)
	fmt.Fprintf(w, "tlbserved_jobs_quarantined_total %d\n", m.Quarantined)
	fmt.Fprintf(w, "tlbserved_retries_total %d\n", m.Retried)
	fmt.Fprintf(w, "tlbserved_stalls_total %d\n", m.Stalled)
	fmt.Fprintf(w, "tlbserved_rejected_total{reason=\"queue-full\"} %d\n", m.RejectedFull)
	fmt.Fprintf(w, "tlbserved_rejected_total{reason=\"client-busy\"} %d\n", m.RejectedClient)
	fmt.Fprintf(w, "tlbserved_rejected_total{reason=\"draining\"} %d\n", m.RejectedDraining)
	fmt.Fprintf(w, "tlbserved_jobs_live %d\n", m.Live)
	fmt.Fprintf(w, "tlbserved_ready %d\n", boolGauge(ready))
	fmt.Fprintf(w, "tlbserved_quarantined_trials_total %d\n", s.runner.Quarantined())
	fmt.Fprintf(w, "tlbserved_pool_workers %d\n", s.pool.Size())
	fmt.Fprintf(w, "tlbserved_pool_in_flight %d\n", s.pool.InFlight())
	if s.cluster != nil {
		fmt.Fprintf(w, "tlbserved_node_info{node=%q} 1\n", s.cluster.Node)
		fmt.Fprintf(w, "tlbserved_cluster_peers %d\n", len(s.cluster.Peers))
		fmt.Fprintf(w, "tlbserved_leases_held %d\n", m.LeasesHeld)
		fmt.Fprintf(w, "tlbserved_lease_renewals_total %d\n", m.LeaseRenewals)
		fmt.Fprintf(w, "tlbserved_lease_renew_failures_total %d\n", m.LeaseRenewFails)
		fmt.Fprintf(w, "tlbserved_leases_lost_total %d\n", m.LeasesLost)
		fmt.Fprintf(w, "tlbserved_handoffs_total %d\n", m.Handoffs)
		fmt.Fprintf(w, "tlbserved_fenced_writes_total %d\n", m.FencedWrites)
	}
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
