// Package checkpoint persists partial campaign results so a multi-hour
// sweep interrupted by a signal, a crash or a cancelled context can resume
// where it stopped instead of losing all completed work.
//
// A checkpoint is a single JSON file holding a fingerprint — a string
// identifying the exact campaign configuration, so results are never resumed
// into a differently-parameterised run — and a map of completed work units.
// Unit keys are chosen by the caller; the campaign runners key units by the
// program-cache identity of the benchmark plus the trial range it covers,
// which makes a unit valid exactly as long as its results are bit-identical
// reproducible.
//
// Writes are atomic: the whole state is marshalled to a temporary file in
// the same directory and renamed over the destination, so a checkpoint file
// is always a complete, parseable snapshot even if the process dies
// mid-flush. Flushing happens every Record calls according to the configured
// interval, plus whenever Flush is called (the runners flush once more on
// the way out, including on cancellation).
//
// All methods are safe for concurrent use and are no-ops on a nil *File, so
// runners thread an optional checkpoint through without branching.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"securetlb/internal/fingerprint"
)

// The package's sentinel errors.
var (
	// ErrMismatch is returned by Open when resuming from a file whose
	// fingerprint does not match the requested campaign — the guard against
	// silently merging results from two different configurations.
	ErrMismatch = errors.New("checkpoint: fingerprint mismatch")
	// ErrExists is returned by Open when asked to start a fresh checkpoint
	// at a path that already holds one, to protect completed work from an
	// accidental overwrite (resume or delete the file explicitly).
	ErrExists = errors.New("checkpoint: file exists")
	// ErrCorrupt is returned by Open when the file at path is not a whole,
	// checksum-valid checkpoint: truncated, carrying trailing garbage,
	// bit-rotted, or otherwise unparseable. Resuming from such a file would
	// risk silently wrong tables, so the load fails loudly instead.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
)

// Version is the checkpoint file format version. Version 2 added the
// content checksum; files without one are rejected as corrupt rather than
// trusted blindly.
const Version = 2

// state is the on-disk shape of a checkpoint.
type state struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Checksum is the FNV-64a digest of the canonical content (version,
	// fingerprint and units in sorted key order, units compacted). It is the
	// bit-rot guard: flipped bits that keep the JSON parseable still fail
	// the resume loudly.
	Checksum string                     `json:"checksum"`
	Units    map[string]json.RawMessage `json:"units"`
}

// digest computes the canonical content checksum of a state, excluding the
// Checksum field itself. Unit payloads are JSON-compacted first so the
// digest is stable across re-indentation by the marshaller. The field
// sequence (version, fingerprint, sorted key/value pairs) over the shared
// fingerprint scheme reproduces the format-v2 checksums byte for byte.
func digest(st *state) (string, error) {
	d := fingerprint.New().Fieldf("v%d", st.Version).Field(st.Fingerprint)
	keys := make([]string, 0, len(st.Units))
	for k := range st.Units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		buf.Reset()
		if err := json.Compact(&buf, st.Units[k]); err != nil {
			return "", fmt.Errorf("unit %q: %w", k, err)
		}
		d.Field(k).Field(buf.String())
	}
	return d.Sum(), nil
}

// File is an open checkpoint. The zero value is not usable; a nil *File is:
// every method no-ops, which is how runners represent "checkpointing off".
type File struct {
	mu      sync.Mutex
	path    string
	every   int
	pending int
	st      state
}

// Open opens the checkpoint at path for a campaign identified by
// fingerprint, flushing automatically every `every` recorded units (values
// < 1 mean every unit).
//
// With resume true an existing file is loaded — its fingerprint must match
// or Open fails with ErrMismatch — and a missing file starts empty (an
// interrupted run may have died before its first flush). With resume false
// the checkpoint starts empty, and an existing file at path is refused with
// ErrExists rather than clobbered.
func Open(path, fingerprint string, every int, resume bool) (*File, error) {
	if every < 1 {
		every = 1
	}
	f := &File{
		path:  path,
		every: every,
		st:    state{Version: Version, Fingerprint: fingerprint, Units: map[string]json.RawMessage{}},
	}
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return f, nil
	case err != nil:
		return nil, fmt.Errorf("checkpoint: %w", err)
	case !resume:
		return nil, fmt.Errorf("%w: %s holds a previous checkpoint (resume it or delete the file)", ErrExists, path)
	}
	// json.Unmarshal rejects both truncated documents and trailing garbage
	// after the top-level value, so any torn or appended-to file lands here.
	var st state
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("%w: parsing %s: %v", ErrCorrupt, path, err)
	}
	if st.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, want %d", path, st.Version, Version)
	}
	sum, err := digest(&st)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if st.Checksum != sum {
		return nil, fmt.Errorf("%w: %s checksum %s does not match content digest %s", ErrCorrupt, path, st.Checksum, sum)
	}
	if st.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: file %q vs campaign %q", ErrMismatch, st.Fingerprint, fingerprint)
	}
	if st.Units == nil {
		st.Units = map[string]json.RawMessage{}
	}
	f.st = st
	return f, nil
}

// Len returns the number of recorded units.
func (f *File) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.st.Units)
}

// Path returns the checkpoint's file path ("" for a nil File).
func (f *File) Path() string {
	if f == nil {
		return ""
	}
	return f.path
}

// Lookup unmarshals the unit recorded under key into out and reports
// whether it was present. A nil File holds nothing.
func (f *File) Lookup(key string, out any) (bool, error) {
	if f == nil {
		return false, nil
	}
	f.mu.Lock()
	raw, ok := f.st.Units[key]
	f.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("checkpoint: unit %q: %w", key, err)
	}
	return true, nil
}

// Record stores v under key and flushes if the configured interval has
// elapsed. Recording is a no-op on a nil File.
func (f *File) Record(key string, v any) error {
	if f == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: unit %q: %w", key, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Units[key] = raw
	f.pending++
	if f.pending >= f.every {
		return f.flushLocked()
	}
	return nil
}

// Flush writes the current state atomically (temp file + rename). Safe to
// call at any time, including on a nil File and with nothing pending.
func (f *File) Flush() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushLocked()
}

func (f *File) flushLocked() error {
	sum, err := digest(&f.st)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	f.st.Checksum = sum
	raw, err := json.MarshalIndent(&f.st, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	f.pending = 0
	return nil
}
