package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type unit struct {
	Misses int   `json:"misses"`
	Seeds  []int `json:"seeds,omitempty"`
}

func TestRecordLookupRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, err := Open(path, "fp-1", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Record("a|trials[0,10)", unit{Misses: 7, Seeds: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	var got unit
	ok, err := f.Lookup("a|trials[0,10)", &got)
	if err != nil || !ok {
		t.Fatalf("Lookup = %v, %v", ok, err)
	}
	if got.Misses != 7 || len(got.Seeds) != 2 {
		t.Errorf("got %+v", got)
	}
	if ok, _ := f.Lookup("missing", &got); ok {
		t.Error("missing key reported present")
	}
}

func TestResumeLoadsUnits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, err := Open(path, "fp-1", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Record("k", unit{Misses: 3}); err != nil {
		t.Fatal(err)
	}

	g, err := Open(path, "fp-1", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var got unit
	if ok, err := g.Lookup("k", &got); !ok || err != nil || got.Misses != 3 {
		t.Errorf("resumed Lookup = %v, %v, %+v", ok, err, got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestResumeMissingFileStartsEmpty(t *testing.T) {
	f, err := Open(filepath.Join(t.TempDir(), "absent.json"), "fp", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, _ := Open(path, "fp-old", 1, false)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp-new", 1, true); !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v, want ErrMismatch", err)
	}
}

func TestFreshRefusesExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, _ := Open(path, "fp", 1, false)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp", 1, false); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
}

func TestCorruptFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp", 1, true); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

// writeValid flushes a small valid checkpoint and returns its path and raw
// bytes, for the corruption tests to mangle.
func writeValid(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.json")
	f, err := Open(path, "fp", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Record("unit-a", unit{Misses: 9, Seeds: []int{3, 4}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestTruncatedFileRejected(t *testing.T) {
	path, raw := writeValid(t)
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 2} {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, "fp", 1, true); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp", 1, true); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty file: err = %v, want ErrCorrupt", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	path, raw := writeValid(t)
	if err := os.WriteFile(path, append(raw, []byte(`{"version":2}`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp", 1, true); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

func TestBitRotRejected(t *testing.T) {
	// Flip a character inside a unit payload such that the JSON stays
	// perfectly parseable: only the checksum can catch this.
	path, raw := writeValid(t)
	rotted := []byte(string(raw))
	idx := -1
	for i := range rotted {
		if rotted[i] == '9' { // the Misses value
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("payload digit not found")
	}
	rotted[idx] = '8'
	if err := os.WriteFile(path, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp", 1, true); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit rot: err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumSurvivesRoundTrips(t *testing.T) {
	// Resume, record another unit, flush, resume again: re-indentation and
	// key order must not destabilise the digest.
	path, _ := writeValid(t)
	f, err := Open(path, "fp", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Record("unit-b", unit{Misses: 1}); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path, "fp", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
}

func TestFlushInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, err := Open(path, "fp", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Record("a", unit{})
	f.Record("b", unit{})
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("flushed before interval elapsed: %v", err)
	}
	f.Record("c", unit{})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no flush after interval: %v", err)
	}
	// The pending counter resets: two more records stay buffered.
	f.Record("d", unit{})
	var st state
	raw, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Units) != 3 {
		t.Errorf("on-disk units = %d, want 3", len(st.Units))
	}
}

func TestFlushIsAtomicFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, _ := Open(path, "fp-x", 1, false)
	f.Record("k", unit{Misses: 1})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st state
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != Version || st.Fingerprint != "fp-x" {
		t.Errorf("header = %+v", st)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind")
	}
}

func TestNilFileNoOps(t *testing.T) {
	var f *File
	if err := f.Record("k", unit{}); err != nil {
		t.Errorf("Record = %v", err)
	}
	if ok, err := f.Lookup("k", &unit{}); ok || err != nil {
		t.Errorf("Lookup = %v, %v", ok, err)
	}
	if err := f.Flush(); err != nil {
		t.Errorf("Flush = %v", err)
	}
	if f.Len() != 0 || f.Path() != "" {
		t.Error("nil accessors")
	}
}

func TestConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	f, _ := Open(path, "fp", 4, false)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				f.Record(string(rune('a'+i))+"-key", unit{Misses: j})
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path, "fp", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Errorf("Len = %d, want 8", g.Len())
	}
}
