package secbench

import (
	"math"
	"strings"
	"testing"

	"securetlb/internal/asm"
	"securetlb/internal/capacity"
	"securetlb/internal/model"
)

func testConfig(d Design, trials int) Config {
	cfg := DefaultConfig(d)
	cfg.Trials = trials
	return cfg
}

func TestGenerateAssembles(t *testing.T) {
	for _, d := range []Design{DesignSA, DesignSP, DesignRF} {
		cfg := testConfig(d, 1)
		for _, v := range model.Enumerate() {
			for _, mapped := range []bool{true, false} {
				src, err := cfg.Generate(v, mapped)
				if err != nil {
					t.Fatalf("%s/%s mapped=%v: %v", d, v, mapped, err)
				}
				if _, err := asm.Assemble(src); err != nil {
					t.Errorf("%s/%s mapped=%v does not assemble: %v\n%s", d, v, mapped, err, src)
				}
			}
		}
	}
}

func TestGenerateFigure6Structure(t *testing.T) {
	cfg := testConfig(DesignRF, 1)
	v, ok := model.Find(model.Enumerate(), model.Pattern{model.Ad, model.Vu, model.Ad})
	if !ok {
		t.Fatal("P+P missing")
	}
	src, err := cfg.Generate(v, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"csrwi sbase",         // secure region base (Figure 6 line 7)
		"csrwi ssize",         // secure region size (line 8)
		"csrwi process_id, 0", // attacker switch (line 11)
		"csrwi process_id, 1", // victim switch (line 17)
		"ldnorm",              // norm-type access for d (line 14)
		"ldrand",              // rand-type access for u (line 19)
		"csrr x28, tlb_miss_count",
		"csrr x29, tlb_miss_count",
		"pass",
		".data",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated benchmark missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig(DesignSA, 1)
	v := model.Enumerate()[0]
	a, _ := cfg.Generate(v, true)
	b, _ := cfg.Generate(v, true)
	if a != b {
		t.Error("generation must be deterministic")
	}
	c, _ := cfg.Generate(v, false)
	if a == c {
		t.Error("mapped and unmapped variants must differ")
	}
}

func TestGenerateRejectsExtendedPatterns(t *testing.T) {
	cfg := testConfig(DesignSA, 1)
	bad := model.Vulnerability{Pattern: model.Pattern{model.VuInv, model.Aa, model.Vu}}
	if _, err := cfg.Generate(bad, true); err == nil {
		t.Error("targeted-invalidation patterns are not in the base benchmark set")
	}
	star := model.Vulnerability{Pattern: model.Pattern{model.Star, model.Aa, model.Vu}}
	if _, err := cfg.Generate(star, true); err == nil {
		t.Error("star patterns cannot be generated")
	}
}

func TestSAMatchesDeterministicTheory(t *testing.T) {
	// The SA TLB is deterministic: every trial gives the same outcome, and
	// the empirical (p1*, p2*) must equal the oracle-derived theory exactly.
	cfg := testConfig(DesignSA, 8)
	results, err := cfg.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if n := DefendedCount(results); n != 10 {
		t.Errorf("SA defends %d, want 10", n)
	}
	for _, r := range results {
		p1, p2, err := capacity.DeterministicTheory(r.Vulnerability, model.DesignASID)
		if err != nil {
			t.Fatal(err)
		}
		if r.P1 != p1 || r.P2 != p2 {
			t.Errorf("SA %s: empirical (%.2f,%.2f) != theory (%.0f,%.0f)",
				r.Vulnerability, r.P1, r.P2, p1, p2)
		}
	}
}

func TestSPMatchesDeterministicTheory(t *testing.T) {
	cfg := testConfig(DesignSP, 8)
	results, err := cfg.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if n := DefendedCount(results); n != 14 {
		t.Errorf("SP defends %d, want 14", n)
	}
	for _, r := range results {
		p1, p2, err := capacity.DeterministicTheory(r.Vulnerability, model.DesignPartitioned)
		if err != nil {
			t.Fatal(err)
		}
		if r.P1 != p1 || r.P2 != p2 {
			t.Errorf("SP %s: empirical (%.2f,%.2f) != theory (%.0f,%.0f)",
				r.Vulnerability, r.P1, r.P2, p1, p2)
		}
	}
}

func TestRFDefendsAll24(t *testing.T) {
	cfg := testConfig(DesignRF, 250)
	results, err := cfg.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Defended() {
			t.Errorf("RF %s: C* = %.3f (p1=%.2f p2=%.2f), want ~0",
				r.Vulnerability, r.C, r.P1, r.P2)
		}
		if math.Abs(r.P1-r.P2) > 0.17 {
			t.Errorf("RF %s: |p1-p2| = %.3f too large for de-correlated fills",
				r.Vulnerability, math.Abs(r.P1-r.P2))
		}
	}
	if n := DefendedCount(results); n != 24 {
		t.Errorf("RF defends %d, want 24", n)
	}
}

func TestRFAliasRowsNearTheory(t *testing.T) {
	// The alias Internal Collision rows have the sharpest theoretical
	// prediction (p = 1 - 1/31 ≈ 0.97); check the simulation lands nearby.
	cfg := testConfig(DesignRF, 300)
	v, ok := model.Find(model.Enumerate(), model.Pattern{model.Aalias, model.Vu, model.Va})
	if !ok {
		t.Fatal("alias IC row missing")
	}
	r, err := cfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 1.0/31
	if math.Abs(r.P1-want) > 0.05 || math.Abs(r.P2-want) > 0.05 {
		t.Errorf("alias IC: (p1,p2) = (%.3f,%.3f), want ≈ %.3f", r.P1, r.P2, want)
	}
}

func TestRFTrialsAreSeedDependent(t *testing.T) {
	// Different base seeds must give (slightly) different counts; identical
	// seeds identical counts — the campaign is reproducible.
	v, _ := model.Find(model.Enumerate(), model.Pattern{model.Ad, model.Vu, model.Ad})
	cfg := testConfig(DesignRF, 60)
	a, err := cfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.RunVulnerability(v)
	if a.Counts != b.Counts {
		t.Error("same seed must reproduce the same counts")
	}
	cfg.BaseSeed++
	c, _ := cfg.RunVulnerability(v)
	if a.Counts == c.Counts {
		t.Log("note: different seed produced identical counts (possible but unlikely)")
	}
}

func TestFlushAndInvariantsAcrossTrials(t *testing.T) {
	// Trials must be independent: running a campaign twice in a row yields
	// identical results for the deterministic designs.
	v, _ := model.Find(model.Enumerate(), model.Pattern{model.Vu, model.Aa, model.Vu})
	cfg := testConfig(DesignSA, 5)
	a, err := cfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts.MappedMisses != 5 || a.Counts.NotMappedMisses != 0 {
		t.Errorf("E+T SA counts = %+v, want deterministic 5/0", a.Counts)
	}
}

func TestPrimeWays(t *testing.T) {
	sa := testConfig(DesignSA, 1)
	if sa.primeWays(model.ActorA) != 8 || sa.primeWays(model.ActorV) != 8 {
		t.Error("SA prime should use all ways")
	}
	sp := testConfig(DesignSP, 1)
	if sp.primeWays(model.ActorV) != 4 || sp.primeWays(model.ActorA) != 4 {
		t.Error("SP prime should use the partition ways")
	}
}

func TestLayoutProperties(t *testing.T) {
	cfg := testConfig(DesignRF, 1)
	for _, v := range model.Enumerate() {
		l := cfg.layoutFor(v)
		nsets := uint64(4)
		if l.a != l.sbase {
			t.Errorf("%s: a should be sbase", v)
		}
		if l.alias%nsets != l.a%nsets || l.alias == l.a {
			t.Errorf("%s: alias must share a's set and differ", v)
		}
		if v.Observation == model.ObsSlow {
			if l.u[true]%nsets != l.a%nsets {
				t.Errorf("%s: mapped u must share the tested set", v)
			}
			if l.u[false]%nsets == l.a%nsets {
				t.Errorf("%s: unmapped u must not share the tested set", v)
			}
		} else {
			if l.u[true] != l.a {
				t.Errorf("%s: mapped u must equal a for hit-based types", v)
			}
			if l.u[false] == l.a {
				t.Errorf("%s: unmapped u must differ from a", v)
			}
		}
		secRange := uint64(cfg.Params.SecRangeFor(v))
		for _, u := range []uint64{l.u[true], l.u[false]} {
			if u < l.sbase || u >= l.sbase+secRange {
				t.Errorf("%s: u page %#x outside secure region [%#x,%#x)", v, u, l.sbase, l.sbase+secRange)
			}
		}
		for step := range l.pool {
			for _, p := range l.pool[step] {
				if p >= l.sbase && p < l.sbase+secRange {
					t.Errorf("%s: filler page %#x inside secure region", v, p)
				}
				if p%nsets != l.a%nsets {
					t.Errorf("%s: filler page %#x not in tested set", v, p)
				}
			}
		}
	}
}

func TestDesignString(t *testing.T) {
	if DesignSA.String() != "SA TLB" || DesignSP.String() != "SP TLB" || DesignRF.String() != "RF TLB" {
		t.Error("design names wrong")
	}
	if Design(9).String() != "?" {
		t.Error("unknown design should render ?")
	}
}

func TestResultConfidenceIntervals(t *testing.T) {
	cfg := testConfig(DesignSA, 12)
	v, _ := model.Find(model.Enumerate(), model.Pattern{model.Ad, model.Vu, model.Ad})
	r, err := cfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic SA outcome: the interval collapses onto C* = 1.
	if r.CILow != 1 || r.CIHigh != 1 {
		t.Errorf("SA P+P CI = [%v,%v], want [1,1]", r.CILow, r.CIHigh)
	}
	rfCfg := testConfig(DesignRF, 200)
	r, err = rfCfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	if r.CILow > r.C+1e-9 || r.CIHigh < 0 {
		t.Errorf("RF CI [%v,%v] inconsistent with C*=%v", r.CILow, r.CIHigh, r.C)
	}
	if r.CIHigh > 0.1 {
		t.Errorf("RF defended row CI upper bound %v too loose at 200 trials", r.CIHigh)
	}
}

func TestRFSecureRegionSizeSweep(t *testing.T) {
	// The RF defense must hold across secure-region sizes, not just the
	// paper's 3 and 31: sweep ssize for the Prime+Probe row.
	v, _ := model.Find(model.Enumerate(), model.Pattern{model.Ad, model.Vu, model.Ad})
	for _, size := range []int{2, 3, 8, 16, 31} {
		cfg := testConfig(DesignRF, 150)
		cfg.Params.SecRangeSmall = size
		cfg.Params.SecRangeBig = size
		r, err := cfg.RunVulnerability(v)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !r.Defended() {
			t.Errorf("size %d: C* = %.3f (p1=%.2f p2=%.2f), RF must stay defended", size, r.C, r.P1, r.P2)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The parallel runner must produce byte-identical results to the serial
	// one (independent campaigns, deterministic seeds).
	for _, d := range []Design{DesignSA, DesignRF} {
		cfg := testConfig(d, 25)
		serial, err := cfg.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := cfg.RunAllParallel(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) != len(parallel) {
			t.Fatalf("%s: lengths differ", d)
		}
		for i := range serial {
			if serial[i].Counts != parallel[i].Counts ||
				serial[i].Vulnerability.Pattern != parallel[i].Vulnerability.Pattern {
				t.Errorf("%s row %d: serial %+v != parallel %+v",
					d, i, serial[i].Counts, parallel[i].Counts)
			}
		}
	}
}

func TestParallelExtended(t *testing.T) {
	cfg := testConfig(DesignSA, 5)
	serial, err := cfg.RunAllExtended()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := cfg.RunAllExtendedParallel(0) // default parallelism
	if err != nil {
		t.Fatal(err)
	}
	if DefendedCount(serial) != DefendedCount(parallel) {
		t.Error("extended parallel verdicts diverge from serial")
	}
}
