package secbench

// This file is the differential fault harness: for each fault-injection site
// it runs a clean campaign and a faulted campaign over identical trial seeds
// and classifies every faulted trial against three acceptable outcomes:
//
//   - detected: the trial errored and was quarantined with a reported kind
//     (the invariant checker's "invariant", the core's "fault", ...);
//   - benign: the fault landed but the trial's observable outcome is
//     bit-identical to the clean run's (the upset hit dead state);
//   - latent: the injector's trigger ordinal was never reached, so no fault
//     actually landed.
//
// Anything else — an outcome that differs from the clean run with no
// detection reported — is silent corruption, the one result the layer
// exists to rule out. A passing fault matrix therefore establishes the
// PR's survivor-statistics guarantee constructively: surviving trials are
// bit-identical to the clean campaign over exactly those trial indices.

import (
	"errors"
	"fmt"
	"path/filepath"

	"securetlb/internal/assert"
	"securetlb/internal/checkpoint"
	"securetlb/internal/faultinject"
	"securetlb/internal/model"
	"securetlb/internal/pool"
)

// DesignsForSite returns the designs a machine fault site applies to: the
// design-specific sites (the RF TLB's RNG bias, the RI TLB's stuck key
// register, the FS TLB's dropped flush strobe) run only on their design;
// every other site runs on the full arena.
func DesignsForSite(site faultinject.Site) []Design {
	switch {
	case site.RFOnly():
		return []Design{DesignRF}
	case site.RIOnly():
		return []Design{DesignRI}
	case site.FSOnly():
		return []Design{DesignFS}
	}
	return AllDesigns()
}

// FaultCell is the outcome of one differential fault campaign: one site, one
// vulnerability, one behaviour, Trials trials.
type FaultCell struct {
	Site   faultinject.Site
	Design string
	Vuln   string
	Mapped bool
	Trials int
	// Detected counts quarantined trials by kind ("invariant", "fault", ...).
	Detected map[string]int
	// Assertions counts "invariant"-kind detections by the name of the
	// declarative assertion that fired (assert.Violation.Assertion) — the
	// matrix's answer to "which property caught this fault".
	Assertions map[string]int
	// Benign counts trials where the fault fired but the outcome matched the
	// clean run bit-for-bit; Latent counts trials where it never fired.
	Benign, Latent int
	// Silent lists the trial indices whose outcome differed from the clean
	// run without any detection — the failure mode the layer must prevent.
	Silent []int
	// Details holds one example injector detail string per observed class,
	// for the matrix report.
	Detail string
}

// DetectedTotal sums detections across kinds.
func (fc FaultCell) DetectedTotal() int {
	n := 0
	for _, v := range fc.Detected {
		n += v
	}
	return n
}

// Kinds renders the detection map compactly in a stable order.
func (fc FaultCell) Kinds() string {
	s := ""
	for _, k := range []string{"invariant", "fault", "panic", "fuel-exhausted", "bench-failed", "corrupt-refused"} {
		if n := fc.Detected[k]; n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s:%d", k, n)
		}
	}
	if s == "" {
		s = "-"
	}
	return s
}

// AssertionNames renders the assertion tally compactly, ordered as the
// catalog declares the assertions (a stable, meaningful order).
func (fc FaultCell) AssertionNames() string {
	s := ""
	for _, a := range assert.Catalog() {
		if n := fc.Assertions[a.Name]; n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s:%d", a.Name, n)
		}
	}
	if s == "" {
		s = "-"
	}
	return s
}

// RunFaultCell runs the differential campaign for one machine fault site.
// The receiver's Invariants/FaultSite settings are overridden: the clean
// campaign runs with invariants as configured and no faults; the faulted
// campaign arms site on every trial. trials <= 0 uses c.Trials.
func (c Config) RunFaultCell(v model.Vulnerability, mapped bool, site faultinject.Site, trials int) (FaultCell, error) {
	if trials <= 0 {
		trials = c.Trials
	}
	cell := FaultCell{
		Site:     site,
		Design:   c.Design.String(),
		Vuln:     v.String(),
		Mapped:   mapped,
		Trials:     trials,
		Detected:   map[string]int{},
		Assertions: map[string]int{},
	}

	// Clean reference: every trial must complete; a clean failure means the
	// harness itself is broken for this (vulnerability, design) pair.
	clean := c
	clean.FaultSite = ""
	cp, err := clean.newCampaign(v, mapped)
	if err != nil {
		return cell, err
	}
	ref := make([]bool, trials)
	for trial := 0; trial < trials; trial++ {
		miss, err := cp.runTrial(clean.trialSeed(trial, mapped), clean.fuel())
		if err != nil {
			return cell, fmt.Errorf("clean reference trial %d: %w", trial, err)
		}
		ref[trial] = miss
	}

	// Faulted run: fresh campaign, one injector armed per trial.
	faulted := c
	faulted.FaultSite = site
	fp, err := faulted.newCampaign(v, mapped)
	if err != nil {
		return cell, err
	}
	for trial := 0; trial < trials; trial++ {
		inj := faultinject.New(site, faulted.faultSeed(trial, mapped))
		if err := inj.Arm(assert.Unwrap(fp.machine.TLB), fp.machine.PT, fp.machine.Mem); err != nil {
			return cell, err
		}
		var miss bool
		err := pool.Safely(func() error {
			var terr error
			miss, terr = fp.runTrial(faulted.trialSeed(trial, mapped), faulted.fuel())
			return terr
		})
		inj.Disarm()
		if cell.Detail == "" && inj.Fired() {
			cell.Detail = inj.Detail()
		}
		switch {
		case err != nil:
			kind, ok := classifyTrialErr(err)
			if !ok {
				return cell, fmt.Errorf("faulted trial %d: infrastructure error: %w", trial, err)
			}
			cell.Detected[kind]++
			var av *assert.Violation
			if errors.As(err, &av) {
				cell.Assertions[av.Assertion]++
			}
		case miss != ref[trial]:
			cell.Silent = append(cell.Silent, trial)
		case inj.Fired():
			cell.Benign++
		default:
			cell.Latent++
		}
	}
	return cell, nil
}

// VerifyCheckpointFault exercises one at-rest checkpoint fault site: it
// writes a valid checkpoint carrying this campaign's fingerprint, corrupts
// the file with the site, and verifies that resuming either fails loudly
// (checkpoint.ErrCorrupt, or any typed refusal) or recovers content
// bit-identical to what was written (the corruption hit non-semantic bytes).
// A resume that succeeds with different content is silent corruption and is
// returned as an error.
func (c Config) VerifyCheckpointFault(dir string, site faultinject.Site, seed uint64) (detected bool, detail string, err error) {
	path := filepath.Join(dir, fmt.Sprintf("ck-%s-%x.json", site, seed))
	fp := c.Fingerprint(false)
	ck, err := checkpoint.Open(path, fp, 1, false)
	if err != nil {
		return false, "", err
	}
	want := unitCounts{Misses: 7, Survivors: 9}
	if err := ck.Record("unit-under-test", want); err != nil {
		return false, "", err
	}
	detail, err = faultinject.CorruptFile(site, path, seed)
	if err != nil {
		return false, detail, err
	}
	re, err := checkpoint.Open(path, fp, 1, true)
	if err != nil {
		// Loud refusal: a corrupt checkpoint must never be resumed. The
		// checksum and parse guards surface as ErrCorrupt; corruption of the
		// fingerprint field itself surfaces as ErrMismatch; either is a
		// detection.
		if errors.Is(err, checkpoint.ErrCorrupt) || errors.Is(err, checkpoint.ErrMismatch) {
			return true, detail, nil
		}
		// Other typed refusals (e.g. a corrupted version field) are still
		// loud failures, not silent corruption.
		return true, detail, nil
	}
	var got unitCounts
	ok, err := re.Lookup("unit-under-test", &got)
	if err != nil {
		return true, detail, nil
	}
	if ok && got.Misses == want.Misses && got.Survivors == want.Survivors &&
		len(got.Quarantined) == 0 && re.Len() == 1 {
		// The flip landed in bytes with no semantic content (trailing
		// whitespace): recovery is bit-identical, which is a legal outcome.
		return false, detail, nil
	}
	return false, detail, fmt.Errorf("checkpoint resumed silently with corrupt content after %s (%s): got %+v want %+v", site, detail, got, want)
}
