package secbench

import (
	"fmt"
	"runtime"
	"sync"

	"securetlb/internal/asm"
	"securetlb/internal/capacity"
	"securetlb/internal/cpu"
	"securetlb/internal/mem"
	"securetlb/internal/model"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
)

// Result is one row of Table 4's simulation half for one TLB design: the
// raw miss counts and the derived empirical probabilities and capacity.
type Result struct {
	Vulnerability model.Vulnerability
	Counts        capacity.Counts
	P1, P2        float64 // empirical p1*, p2*
	C             float64 // empirical channel capacity C*
	// CILow/CIHigh bound C* with a 95% percentile bootstrap over the trial
	// counts, quantifying how much sampling noise a "defended" verdict
	// could hide.
	CILow, CIHigh float64
}

// Defended reports whether the design defends the vulnerability in this
// campaign: empirical capacity indistinguishable from zero. The threshold
// accommodates sampling noise at the paper's 500-trials-per-behaviour scale
// (the paper's own "about 0" entries are up to 0.01).
func (r Result) Defended() bool { return r.C <= 0.05 }

// campaign bundles one reusable simulation per (vulnerability, behaviour):
// the program is assembled once and re-run per trial with a flushed TLB.
type campaign struct {
	machine *cpu.Machine
	rf      *tlb.RF // non-nil for the RF design, for per-trial reseeding
}

func (c Config) newCampaign(v model.Vulnerability, mapped bool) (*campaign, error) {
	src, err := c.Generate(v, mapped)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("secbench: assembling %s: %w", v, err)
	}
	m := mem.New(c.MemLatency)
	pt := ptw.New(m, 0x100000)
	t, err := c.NewTLB(pt, c.BaseSeed)
	if err != nil {
		return nil, err
	}
	coreCfg := cpu.DefaultConfig
	// The Appendix B benchmarks time targeted invalidations, which only
	// leak when the two-cycle check-then-clear optimisation is present;
	// enabling it is harmless for the base benchmarks (they never issue
	// targeted invalidations).
	coreCfg.VariableFlushTiming = true
	mach := cpu.New(t, pt, m, coreCfg)
	if err := mach.Load(prog, []tlb.ASID{attackerASID, victimASID}); err != nil {
		return nil, err
	}
	camp := &campaign{machine: mach}
	if rf, ok := t.(*tlb.RF); ok {
		camp.rf = rf
	}
	return camp, nil
}

// runTrial executes one trial and reports whether the timed step observed a
// TLB miss (the "slow" outcome).
func (cp *campaign) runTrial(seed uint64) (miss bool, err error) {
	cp.machine.Reset()
	cp.machine.TLB.FlushAll()
	cp.machine.TLB.ResetStats()
	if cp.rf != nil {
		cp.rf.Reseed(seed)
	}
	code, err := cp.machine.Run(1_000_000)
	if err != nil {
		return false, err
	}
	if code != 0 {
		return false, fmt.Errorf("secbench: benchmark signalled failure (%d)", code)
	}
	return cp.machine.Reg(30) != 0, nil
}

// RunVulnerability executes the full mapped/not-mapped campaign for one
// vulnerability.
func (c Config) RunVulnerability(v model.Vulnerability) (Result, error) {
	res := Result{Vulnerability: v}
	for _, mapped := range []bool{true, false} {
		camp, err := c.newCampaign(v, mapped)
		if err != nil {
			return res, err
		}
		misses := 0
		for trial := 0; trial < c.Trials; trial++ {
			seed := c.BaseSeed ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
			if mapped {
				seed = ^seed
			}
			miss, err := camp.runTrial(seed)
			if err != nil {
				return res, fmt.Errorf("%s (mapped=%v, trial %d): %w", v, mapped, trial, err)
			}
			if miss {
				misses++
			}
		}
		if mapped {
			res.Counts.Mapped, res.Counts.MappedMisses = c.Trials, misses
		} else {
			res.Counts.NotMapped, res.Counts.NotMappedMisses = c.Trials, misses
		}
	}
	res.P1, res.P2 = res.Counts.Probabilities()
	res.C = res.Counts.Capacity()
	res.CILow, res.CIHigh = res.Counts.BootstrapCI(300, 0.95, c.BaseSeed)
	return res, nil
}

// RunAll executes the campaign for all 24 base vulnerabilities, in Table 2
// order.
func (c Config) RunAll() ([]Result, error) {
	return c.runList(model.Enumerate())
}

// RunAllExtended executes the campaign for the additional Appendix B
// vulnerabilities (targeted invalidation and variable-timing flushes).
func (c Config) RunAllExtended() ([]Result, error) {
	return c.runList(model.EnumerateExtended())
}

func (c Config) runList(vulns []model.Vulnerability) ([]Result, error) {
	var out []Result
	for _, v := range vulns {
		r, err := c.RunVulnerability(v)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefendedCount returns how many of the results the design defends.
func DefendedCount(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Defended() {
			n++
		}
	}
	return n
}

// RunAllParallel is RunAll with one goroutine per vulnerability, bounded by
// parallelism (0 = GOMAXPROCS). Campaigns are fully independent — each
// builds its own machine and TLB — so results are identical to the serial
// runner, in the same Table 2 order.
func (c Config) RunAllParallel(parallelism int) ([]Result, error) {
	return c.runListParallel(model.Enumerate(), parallelism)
}

// RunAllExtendedParallel is the parallel form of RunAllExtended.
func (c Config) RunAllExtendedParallel(parallelism int) ([]Result, error) {
	return c.runListParallel(model.EnumerateExtended(), parallelism)
}

func (c Config) runListParallel(vulns []model.Vulnerability, parallelism int) ([]Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(vulns))
	errs := make([]error, len(vulns))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, v := range vulns {
		wg.Add(1)
		go func(i int, v model.Vulnerability) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = c.RunVulnerability(v)
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
