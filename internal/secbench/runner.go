package secbench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"securetlb/internal/asm"
	"securetlb/internal/capacity"
	"securetlb/internal/cpu"
	"securetlb/internal/fingerprint"
	"securetlb/internal/assert"
	"securetlb/internal/isa"
	"securetlb/internal/mem"
	"securetlb/internal/model"
	"securetlb/internal/pool"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
	"securetlb/internal/trace"
)

// Result is one row of Table 4's simulation half for one TLB design: the
// raw miss counts and the derived empirical probabilities and capacity.
type Result struct {
	Vulnerability model.Vulnerability
	Counts        capacity.Counts
	P1, P2        float64 // empirical p1*, p2*
	C             float64 // empirical channel capacity C*
	// CILow/CIHigh bound C* with a 95% percentile bootstrap over the trial
	// counts, quantifying how much sampling noise a "defended" verdict
	// could hide.
	CILow, CIHigh float64
}

// Defended reports whether the design defends the vulnerability in this
// campaign: empirical capacity indistinguishable from zero. The threshold
// accommodates sampling noise at the paper's 500-trials-per-behaviour scale
// (the paper's own "about 0" entries are up to 0.01).
func (r Result) Defended() bool { return r.C <= 0.05 }

// trialSeed derives the deterministic per-trial seed. This formula is the
// runner's seed-derivation contract: it depends only on (BaseSeed, trial
// index, behaviour), never on scheduling, so the serial and trial-sharded
// runners draw identical per-trial randomness and produce bit-identical
// results.
func (c Config) trialSeed(trial int, mapped bool) uint64 {
	return trialSeedFor(c.BaseSeed, trial, mapped)
}

// trialSeedFor is the seed derivation with only the base passed in, so hot
// trial loops can call it without copying a Config receiver.
func trialSeedFor(base uint64, trial int, mapped bool) uint64 {
	seed := base ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
	if mapped {
		seed = ^seed
	}
	return seed
}

// faultSeed derives the per-trial fault-injector seed under the same
// contract as trialSeed: a pure function of (FaultSeed, trial index,
// behaviour), so a faulted campaign is exactly replayable trial by trial.
func (c Config) faultSeed(trial int, mapped bool) uint64 {
	seed := c.FaultSeed ^ (uint64(trial)+1)*0xd1b54a32d192ed03
	if mapped {
		seed = ^seed
	}
	return seed
}

// --- assembled-program cache ------------------------------------------------

// progKey identifies an assembled benchmark program: everything Generate's
// output depends on. Campaigns that share a key (re-runs, serial-vs-parallel
// comparisons, geometry sweeps revisiting a point) reuse the assembly.
type progKey struct {
	design                    Design
	entries, ways, victimWays int
	params                    capacity.RFParams
	pattern                   model.Pattern
	observation               model.Observation
	mapped                    bool
}

// progCache maps progKey to *isa.Program. Assembled programs are immutable
// (Load copies data into memory and executes instructions by value), so one
// cached program is safely shared by every campaign and worker.
var progCache sync.Map

func (c Config) progKeyFor(v model.Vulnerability, mapped bool) progKey {
	return progKey{
		design:      c.Design,
		entries:     c.Entries,
		ways:        c.Ways,
		victimWays:  c.VictimWays,
		params:      c.Params,
		pattern:     v.Pattern,
		observation: v.Observation,
		mapped:      mapped,
	}
}

// program returns the assembled benchmark for (v, mapped), generating and
// assembling it at most once per key process-wide.
func (c Config) program(v model.Vulnerability, mapped bool) (*isa.Program, error) {
	key := c.progKeyFor(v, mapped)
	if p, ok := progCache.Load(key); ok {
		return p.(*isa.Program), nil
	}
	src, err := c.Generate(v, mapped)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("secbench: assembling %s: %w", v, err)
	}
	// Concurrent first-comers may assemble twice; both results are
	// identical, so whichever lands in the cache is fine.
	progCache.Store(key, prog)
	return prog, nil
}

// --- replay-template cache ---------------------------------------------------

// campKey identifies a replay template. The progKey pins the generator
// parameters (collision-free); fp is the internal/fingerprint content address
// of the assembled program bytes and the initial machine state (seed, memory
// latency, loaded ASIDs), so a template is reused only when capture would
// reproduce it bit for bit. fuel matters because capture must run to a clean
// halt within the trial budget; inv because the template's TLB wrapping
// differs.
type campKey struct {
	pk   progKey
	fp   string
	fuel uint64
	inv  bool
	// rekeyFills reaches the TLB's construction but not the program, so the
	// progKey alone would alias templates built under different re-key
	// schedules.
	rekeyFills uint64
}

// campTemplate is one cache slot: a captured trace bound to a template
// machine, cloned (under mu — cloning mutates copy-on-write state) for every
// campaign that shares the key. camp stays nil after init when the program is
// not trace-representable, negative-caching the fallback decision. free holds
// released clones for reuse: a returning campaign carries warm memo-walker
// caches, so steady-state campaign acquisition allocates nothing.
type campTemplate struct {
	mu   sync.Mutex
	init bool
	camp *campaign
	free []*campaign
}

// campFreeCap bounds each template's free list (one sweep's worth of
// concurrent workers).
const campFreeCap = 64

// campCache maps campKey to *campTemplate, bounded by campCacheCap distinct
// keys process-wide (a geometry sweep revisits few; an adversarial sweep over
// thousands of configs degrades to per-campaign capture, not unbounded
// memory).
var (
	campCache  sync.Map
	campCacheN atomic.Int32
)

const campCacheCap = 512

// newReplayCampaign returns a campaign that replays a cached trace, capturing
// one (and building its template machine) on first use of the key. Programs a
// trace cannot represent fall back to full execution.
func (c Config) newReplayCampaign(v model.Vulnerability, mapped bool) (*campaign, error) {
	prog, err := c.program(v, mapped)
	if err != nil {
		return nil, err
	}
	pk := c.progKeyFor(v, mapped)
	key := campKey{
		pk:         pk,
		fp:         c.progFingerprint(pk, prog),
		fuel:       c.fuel(),
		inv:        c.Invariants,
		rekeyFills: c.RekeyFills,
	}
	entAny, ok := campCache.Load(key)
	if !ok {
		if campCacheN.Add(1) > campCacheCap {
			campCacheN.Add(-1)
			// Cache full: capture a one-off template this campaign owns
			// outright (no clone needed).
			tmpl := &campTemplate{}
			if err := c.buildReplayTemplate(tmpl, prog); err != nil {
				return nil, err
			}
			if tmpl.camp == nil {
				return c.newFullCampaign(v, mapped)
			}
			return tmpl.camp, nil
		}
		if entAny, ok = campCache.LoadOrStore(key, &campTemplate{}); ok {
			campCacheN.Add(-1) // lost the race; the winner's entry counts
		}
	}
	ent := entAny.(*campTemplate)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if !ent.init {
		ent.init = true
		if err := c.buildReplayTemplate(ent, prog); err != nil {
			// Build errors (bad geometry, OOM programs) reproduce
			// deterministically; leaving camp nil routes later callers to the
			// full path, which fails identically.
			return nil, err
		}
	}
	if ent.camp == nil {
		return c.newFullCampaign(v, mapped)
	}
	if n := len(ent.free); n > 0 {
		camp := ent.free[n-1]
		ent.free[n-1] = nil
		ent.free = ent.free[:n-1]
		return camp, nil
	}
	camp, err := ent.camp.clone()
	if err != nil {
		return nil, err
	}
	camp.tmpl = ent
	return camp, nil
}

// progFingerprint computes (and caches — Generate is deterministic per key)
// the content address a replay template is keyed by.
func (c Config) progFingerprint(pk progKey, prog *isa.Program) string {
	k := fpKey{pk, c.BaseSeed, c.MemLatency}
	if v, ok := fpCache.Load(k); ok {
		return v.(string)
	}
	fp := fingerprint.New().
		Field(string(isa.Encode(prog))).
		Fieldf("%d/%d/%d/%d", c.BaseSeed, c.MemLatency, attackerASID, victimASID).
		Sum()
	fpCache.Store(k, fp)
	return fp
}

// fpKey indexes cached program fingerprints by the inputs they derive from.
type fpKey struct {
	pk        progKey
	seed, lat uint64
}

var fpCache sync.Map

// memoWindow chooses the dense memo-walker window for a program: its data
// pages widened by one set stride each side, covering both the benchmark's
// own accesses and the aliases the RF engine draws near them. Anything
// outside spills to the memo's map path, so the window only affects speed.
func (c Config) memoWindow(prog *isa.Program) (base tlb.VPN, span uint64) {
	if len(prog.DataPages) == 0 {
		return 0, 0
	}
	sets := uint64(1)
	if c.Ways > 0 && c.Entries >= c.Ways {
		sets = uint64(c.Entries / c.Ways)
	}
	lo := prog.DataPages[0]                  // DataPages is sorted
	hi := prog.DataPages[len(prog.DataPages)-1]
	margin := sets + 1
	if lo > margin {
		lo -= margin
	} else {
		lo = 0
	}
	hi += margin
	span = hi - lo + 1
	const maxSpan = 1 << 16
	if span > maxSpan {
		span = maxSpan
	}
	return tlb.VPN(lo), span
}

// buildReplayTemplate builds the template machine (with a memoizing walker
// under the TLB) and captures its trace. An unrepresentable program leaves
// ent.camp nil; any other failure is returned.
func (c Config) buildReplayTemplate(ent *campTemplate, prog *isa.Program) error {
	m := mem.New(c.MemLatency)
	pt := ptw.New(m, 0x100000)
	base, span := c.memoWindow(prog)
	nasid := uint64(victimASID) + 1
	memo := trace.NewMemoWalker(pt, int(nasid), base, span)
	t, err := c.NewTLB(memo, c.BaseSeed)
	if err != nil {
		return err
	}
	if c.Invariants {
		t, err = assert.Wrap(t, memo, assert.Options{CrossCheck: true})
		if err != nil {
			return err
		}
	}
	coreCfg := cpu.DefaultConfig
	coreCfg.VariableFlushTiming = true
	mach := cpu.New(t, pt, m, coreCfg)
	if err := mach.Load(prog, []tlb.ASID{attackerASID, victimASID}); err != nil {
		return err
	}
	tr, err := trace.Capture(mach, c.fuel())
	if err != nil {
		// Not trace-representable (or no clean halt within the budget):
		// negative-cache the fallback. Full execution reproduces any capture
		// -run fault identically on every trial.
		return nil
	}
	camp := wrapCampaign(mach)
	camp.tr = tr
	camp.vm = trace.NewVM(mach.TLB, nil, prog, coreCfg)
	camp.memoBase, camp.memoSpan, camp.memoASID = base, span, nasid
	camp.skipPreFlush = tr.StartsWithFlushAll()
	if !c.Invariants {
		// The assertion monitor observes every TLB-facing op; eliding the
		// per-trial prologue would hide the security-register writes from it,
		// so prefix-split replay is reserved for unwrapped designs.
		camp.prefix = trace.SplitPrefix(tr, coreCfg)
	}
	ent.camp = camp
	return nil
}

// --- campaigns ---------------------------------------------------------------

// campaign bundles one reusable simulation per (vulnerability, behaviour):
// the program is assembled once and re-run per trial with a flushed TLB.
// When vm is non-nil the campaign replays a captured trace instead of
// decoding and executing the program; the two paths are bit-identical.
type campaign struct {
	machine *cpu.Machine
	rs      reseeder // non-nil for seeded designs (RF, RI), for per-trial reseeding

	vm                 *trace.VM
	tr                 *trace.Trace
	prefix             *trace.Prefix // trial-invariant prologue, nil = replay whole trace
	tmpl               *campTemplate // owning pool slot, nil for one-offs
	memoBase           tlb.VPN       // dense memo-walker window, for clone re-wrapping
	memoSpan, memoASID uint64

	// skipPreFlush elides the harness's between-trial FlushAll because the
	// program's first TLB-affecting operation is itself a full flush (see
	// trace.Trace.StartsWithFlushAll); unobservable, but measurable at
	// campaign scale.
	skipPreFlush bool
}

// release returns a pooled replay campaign to its template's free list for
// reuse (its warm memo-walker caches make the next acquisition free). The
// per-trial reset protocol erases all cross-trial TLB state, so a reused
// campaign behaves exactly like a fresh clone. No-op for full-execution and
// one-off campaigns.
func (cp *campaign) release() {
	if cp == nil || cp.tmpl == nil {
		return
	}
	cp.tmpl.mu.Lock()
	if len(cp.tmpl.free) < campFreeCap {
		cp.tmpl.free = append(cp.tmpl.free, cp)
	}
	cp.tmpl.mu.Unlock()
}

// traceable reports whether campaigns for this config may replay traces:
// fault injection rewires translation underneath the trace's assumptions, so
// it always runs the real pipeline.
func (c Config) traceable() bool {
	return !c.DisableTrace && c.FaultSite == ""
}

// newCampaign builds the template campaign machine for one behaviour. The
// returned campaign is the template the sharded runner clones per worker.
func (c Config) newCampaign(v model.Vulnerability, mapped bool) (*campaign, error) {
	if c.traceable() {
		return c.newReplayCampaign(v, mapped)
	}
	return c.newFullCampaign(v, mapped)
}

// newFullCampaign builds a campaign that decodes and executes the program on
// a cpu.Machine every trial — the reference path replay must match.
func (c Config) newFullCampaign(v model.Vulnerability, mapped bool) (*campaign, error) {
	prog, err := c.program(v, mapped)
	if err != nil {
		return nil, err
	}
	m := mem.New(c.MemLatency)
	pt := ptw.New(m, 0x100000)
	t, err := c.NewTLB(pt, c.BaseSeed)
	if err != nil {
		return nil, err
	}
	if c.Invariants {
		// The monitor wraps the design and re-walks returned translations
		// against the page tables; machine clones re-wrap automatically
		// (assert.Monitor implements tlb.Cloner).
		t, err = assert.Wrap(t, pt, assert.Options{CrossCheck: true})
		if err != nil {
			return nil, err
		}
	}
	coreCfg := cpu.DefaultConfig
	// The Appendix B benchmarks time targeted invalidations, which only
	// leak when the two-cycle check-then-clear optimisation is present;
	// enabling it is harmless for the base benchmarks (they never issue
	// targeted invalidations).
	coreCfg.VariableFlushTiming = true
	mach := cpu.New(t, pt, m, coreCfg)
	if err := mach.Load(prog, []tlb.ASID{attackerASID, victimASID}); err != nil {
		return nil, err
	}
	camp := wrapCampaign(mach)
	// Fault injection may target flush sites, where eliding a flush would
	// shift the injector's draw sequence; keep the full protocol there.
	camp.skipPreFlush = c.FaultSite == "" && progStartsWithFlushAll(prog)
	return camp, nil
}

// progStartsWithFlushAll is trace.Trace.StartsWithFlushAll for programs run
// in full: straight-line from entry, the first TLB-affecting instruction
// must be a tlb_flush_all CSR write, preceded only by register ALU work,
// counter reads and TLB-external CSR writes. Branches, memory accesses and
// anything else end the scan conservatively.
func progStartsWithFlushAll(p *isa.Program) bool {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.OpCsrw, isa.OpCsrwi:
			switch in.CSR {
			case isa.CSRTLBFlushAll:
				return true
			case isa.CSRProcessID, isa.CSRSBase, isa.CSRSSize, isa.CSRVictimASID:
				// TLB-external state.
			default:
				return false
			}
		case isa.OpNop, isa.OpLi, isa.OpAddi, isa.OpAdd, isa.OpSub, isa.OpAnd,
			isa.OpOr, isa.OpXor, isa.OpSlli, isa.OpSrli, isa.OpSltu, isa.OpCsrr:
			// ALU work and CSR reads touch no TLB state.
		default:
			return false
		}
	}
	return false
}

// reseeder is the per-trial randomness reset the runner performs on seeded
// designs: the RF TLB's fill PRNG and the RI TLB's key stream both restart
// from the trial seed, making every trial a pure function of its index.
type reseeder interface{ Reseed(seed uint64) }

func wrapCampaign(mach *cpu.Machine) *campaign {
	camp := &campaign{machine: mach}
	// A seeded design may sit under an assertion monitor; reseeding (and
	// fault arming) must reach the raw design either way.
	if rs, ok := assert.Unwrap(mach.TLB).(reseeder); ok {
		camp.rs = rs
	}
	return camp
}

// clone replicates the campaign machine for an additional worker.
func (cp *campaign) clone() (*campaign, error) {
	m, err := cp.machine.Clone()
	if err != nil {
		return nil, err
	}
	if cp.vm != nil {
		// Machine.Clone rebinds the TLB to the clone's raw page tables;
		// replay campaigns interpose a fresh memoizing walker (each worker
		// owns its own — the memo is not safe for concurrent use).
		memo := trace.NewMemoWalker(m.PT, int(cp.memoASID), cp.memoBase, cp.memoSpan)
		t, err := tlb.Clone(m.TLB, memo)
		if err != nil {
			return nil, err
		}
		m.TLB = t
	}
	n := wrapCampaign(m)
	n.skipPreFlush = cp.skipPreFlush
	if cp.vm != nil {
		n.vm = cp.vm.Fork(m.TLB, nil)
		n.tr = cp.tr
		n.prefix = cp.prefix
		n.tmpl = cp.tmpl
		n.memoBase, n.memoSpan, n.memoASID = cp.memoBase, cp.memoSpan, cp.memoASID
	}
	return n, nil
}

// runTrial executes one trial under the given instruction budget and reports
// whether the timed step observed a TLB miss (the "slow" outcome).
func (cp *campaign) runTrial(seed, fuel uint64) (miss bool, err error) {
	if cp.vm != nil {
		return cp.replayTrial(seed, fuel)
	}
	cp.machine.Reset()
	if !cp.skipPreFlush {
		cp.machine.TLB.FlushAll()
	}
	cp.machine.TLB.ResetStats()
	if cp.rs != nil {
		cp.rs.Reseed(seed)
	}
	code, err := cp.machine.Run(fuel)
	if err != nil {
		return false, err
	}
	if code != 0 {
		return false, fmt.Errorf("%w (exit code %d)", ErrBenchFailed, code)
	}
	return cp.machine.Reg(30) != 0, nil
}

// replayTrial is runTrial over the captured trace: the same per-trial reset
// protocol (flush, stats reset, reseed) against the same TLB, with the
// replay VM standing in for instruction decode and execute.
func (cp *campaign) replayTrial(seed, fuel uint64) (bool, error) {
	if !cp.skipPreFlush {
		cp.machine.TLB.FlushAll()
	}
	cp.machine.TLB.ResetStats()
	if cp.rs != nil {
		cp.rs.Reseed(seed)
	}
	code, err := cp.vm.Run(cp.tr, fuel)
	if err != nil {
		return false, err
	}
	if code != 0 {
		return false, fmt.Errorf("%w (exit code %d)", ErrBenchFailed, code)
	}
	return cp.vm.Reg(30) != 0, nil
}

// runTrials executes trials [lo, hi) for one behaviour and returns how many
// observed a miss. Each trial reseeds from its own index, so the count is
// independent of how the trial range is split across workers.
func (c Config) runTrials(cp *campaign, v model.Vulnerability, mapped bool, lo, hi int) (int, error) {
	misses := 0
	// Trial-invariant values hoisted out of the loop: the methods copy the
	// whole Config per call, which showed up as runtime.duffcopy in campaign
	// profiles.
	fuel := c.fuel()
	base := c.BaseSeed
	if cp.vm != nil {
		return c.replayTrials(cp, v, mapped, lo, hi, fuel, base)
	}
	for trial := lo; trial < hi; trial++ {
		miss, err := cp.runTrial(trialSeedFor(base, trial, mapped), fuel)
		if err != nil {
			return misses, fmt.Errorf("%s (mapped=%v, trial %d): %w", v, mapped, trial, err)
		}
		if miss {
			misses++
		}
	}
	return misses, nil
}

// replayTrials is runTrials over a replay campaign, with the per-trial reset
// protocol of replayTrial unrolled into one loop. At campaign trial counts
// the two calls and the repeated campaign-field loads of the generic path
// are a measurable slice of a replayed trial, so the batch loop hoists every
// loop-invariant — TLB, reseeder, VM, trace, budget — exactly once per
// shard. Behaviour is identical to calling replayTrial per trial.
func (c Config) replayTrials(cp *campaign, v model.Vulnerability, mapped bool, lo, hi int, fuel, base uint64) (int, error) {
	misses := 0
	vm, tr := cp.vm, cp.tr
	tl := cp.machine.TLB
	rs := cp.rs
	skipFlush := cp.skipPreFlush
	prefix := cp.prefix
	// The shard's first trial replays the whole trace — RunBody's register
	// snapshot is only valid once this VM has run the trace once.
	ran := false
	for trial := lo; trial < hi; trial++ {
		if !skipFlush {
			tl.FlushAll()
		}
		tl.ResetStats()
		if rs != nil {
			rs.Reseed(trialSeedFor(base, trial, mapped))
		}
		var code int64
		var err error
		if ran && prefix != nil {
			code, err = vm.RunBody(tr, fuel, prefix)
		} else {
			code, err = vm.Run(tr, fuel)
			ran = true
		}
		if err != nil {
			return misses, fmt.Errorf("%s (mapped=%v, trial %d): %w", v, mapped, trial, err)
		}
		if code != 0 {
			return misses, fmt.Errorf("%s (mapped=%v, trial %d): %w (exit code %d)", v, mapped, trial, ErrBenchFailed, code)
		}
		if vm.Reg(30) != 0 {
			misses++
		}
	}
	return misses, nil
}

// finalize derives the probability, capacity and CI columns from the counts.
func (c Config) finalize(res *Result) {
	res.P1, res.P2 = res.Counts.Probabilities()
	res.C = res.Counts.Capacity()
	res.CILow, res.CIHigh = res.Counts.BootstrapCI(300, 0.95, c.BaseSeed)
}

// RunVulnerability executes the full mapped/not-mapped campaign for one
// vulnerability, serially on a single machine. It is the reference
// implementation the parallel runner must match bit-for-bit.
func (c Config) RunVulnerability(v model.Vulnerability) (Result, error) {
	res := Result{Vulnerability: v}
	for _, mapped := range []bool{true, false} {
		camp, err := c.newCampaign(v, mapped)
		if err != nil {
			return res, err
		}
		misses, err := c.runTrials(camp, v, mapped, 0, c.Trials)
		if err != nil {
			return res, err
		}
		camp.release()
		if mapped {
			res.Counts.Mapped, res.Counts.MappedMisses = c.Trials, misses
		} else {
			res.Counts.NotMapped, res.Counts.NotMappedMisses = c.Trials, misses
		}
	}
	c.finalize(&res)
	return res, nil
}

// RunVulnerabilityParallel is RunVulnerability with the 2×Trials trials
// sharded over a bounded worker pool (parallelism <= 0 selects GOMAXPROCS).
// Results are bit-identical to RunVulnerability.
func (c Config) RunVulnerabilityParallel(v model.Vulnerability, parallelism int) (Result, error) {
	return c.runVulnerabilitySharded(pool.New(parallelism), v)
}

// runVulnerabilitySharded runs one vulnerability's two campaigns with trial
// shards executing on p. The per-trial seed contract (trialSeed) makes the
// shard split invisible in the results: each shard's misses depend only on
// its trial indices, and integer summation is order-independent.
func (c Config) runVulnerabilitySharded(p *pool.Pool, v model.Vulnerability) (Result, error) {
	res := Result{Vulnerability: v}
	for _, mapped := range []bool{true, false} {
		var template *campaign
		var err error
		// Build the template under a worker slot: assembly and page-table
		// setup is real work, and gating it keeps a whole RunAll sweep's
		// concurrency at exactly the pool bound.
		p.Run(func() { template, err = c.newCampaign(v, mapped) })
		if err != nil {
			return res, err
		}
		shards := pool.Shards(c.Trials, p.Size())
		// The template machine runs the first shard itself; clones (taken
		// sequentially — Clone mutates the source's copy-on-write state)
		// serve the rest.
		camps := make([]*campaign, len(shards))
		for i := range shards {
			if i == 0 {
				camps[i] = template
				continue
			}
			if camps[i], err = template.clone(); err != nil {
				return res, err
			}
		}
		missesBy := make([]int, len(shards))
		errsBy := make([]error, len(shards))
		p.ForEach(len(shards), func(i int) {
			missesBy[i], errsBy[i] = c.runTrials(camps[i], v, mapped, shards[i].Lo, shards[i].Hi)
		})
		misses := 0
		for i := range shards {
			if errsBy[i] != nil {
				return res, errsBy[i]
			}
			misses += missesBy[i]
		}
		for _, cp := range camps {
			cp.release()
		}
		if mapped {
			res.Counts.Mapped, res.Counts.MappedMisses = c.Trials, misses
		} else {
			res.Counts.NotMapped, res.Counts.NotMappedMisses = c.Trials, misses
		}
	}
	c.finalize(&res)
	return res, nil
}

// RunAll executes the campaign for all 24 base vulnerabilities, in Table 2
// order.
func (c Config) RunAll() ([]Result, error) {
	return c.runList(model.Enumerate())
}

// RunAllExtended executes the campaign for the additional Appendix B
// vulnerabilities (targeted invalidation and variable-timing flushes).
func (c Config) RunAllExtended() ([]Result, error) {
	return c.runList(model.EnumerateExtended())
}

func (c Config) runList(vulns []model.Vulnerability) ([]Result, error) {
	var out []Result
	for _, v := range vulns {
		r, err := c.RunVulnerability(v)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefendedCount returns how many of the results the design defends.
func DefendedCount(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Defended() {
			n++
		}
	}
	return n
}

// RunAllParallel is RunAll parallelised at two levels over one bounded
// worker pool (parallelism <= 0 selects GOMAXPROCS): every vulnerability's
// campaigns run concurrently AND each campaign's trials are sharded across
// workers on cloned machines. Wall-clock therefore scales with cores even
// when one slow campaign dominates, instead of being bounded by the slowest
// campaign's serial trial loop. Results are bit-identical to RunAll, in the
// same Table 2 order — see trialSeed for the determinism contract.
func (c Config) RunAllParallel(parallelism int) ([]Result, error) {
	return c.runListParallel(model.Enumerate(), parallelism)
}

// RunAllExtendedParallel is the parallel form of RunAllExtended.
func (c Config) RunAllExtendedParallel(parallelism int) ([]Result, error) {
	return c.runListParallel(model.EnumerateExtended(), parallelism)
}

func (c Config) runListParallel(vulns []model.Vulnerability, parallelism int) ([]Result, error) {
	p := pool.New(parallelism)
	results := make([]Result, len(vulns))
	errs := make([]error, len(vulns))
	var wg sync.WaitGroup
	for i, v := range vulns {
		i, v := i, v
		wg.Add(1)
		// One lightweight orchestrator per vulnerability; all actual work
		// (template builds, trial shards) runs under p's worker bound, so
		// the sweep's leaf concurrency is exactly the pool size.
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.runVulnerabilitySharded(p, v)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
