package secbench

import (
	"fmt"
	"sync"

	"securetlb/internal/asm"
	"securetlb/internal/capacity"
	"securetlb/internal/cpu"
	"securetlb/internal/invariant"
	"securetlb/internal/isa"
	"securetlb/internal/mem"
	"securetlb/internal/model"
	"securetlb/internal/pool"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
)

// Result is one row of Table 4's simulation half for one TLB design: the
// raw miss counts and the derived empirical probabilities and capacity.
type Result struct {
	Vulnerability model.Vulnerability
	Counts        capacity.Counts
	P1, P2        float64 // empirical p1*, p2*
	C             float64 // empirical channel capacity C*
	// CILow/CIHigh bound C* with a 95% percentile bootstrap over the trial
	// counts, quantifying how much sampling noise a "defended" verdict
	// could hide.
	CILow, CIHigh float64
}

// Defended reports whether the design defends the vulnerability in this
// campaign: empirical capacity indistinguishable from zero. The threshold
// accommodates sampling noise at the paper's 500-trials-per-behaviour scale
// (the paper's own "about 0" entries are up to 0.01).
func (r Result) Defended() bool { return r.C <= 0.05 }

// trialSeed derives the deterministic per-trial seed. This formula is the
// runner's seed-derivation contract: it depends only on (BaseSeed, trial
// index, behaviour), never on scheduling, so the serial and trial-sharded
// runners draw identical per-trial randomness and produce bit-identical
// results.
func (c Config) trialSeed(trial int, mapped bool) uint64 {
	seed := c.BaseSeed ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
	if mapped {
		seed = ^seed
	}
	return seed
}

// faultSeed derives the per-trial fault-injector seed under the same
// contract as trialSeed: a pure function of (FaultSeed, trial index,
// behaviour), so a faulted campaign is exactly replayable trial by trial.
func (c Config) faultSeed(trial int, mapped bool) uint64 {
	seed := c.FaultSeed ^ (uint64(trial)+1)*0xd1b54a32d192ed03
	if mapped {
		seed = ^seed
	}
	return seed
}

// --- assembled-program cache ------------------------------------------------

// progKey identifies an assembled benchmark program: everything Generate's
// output depends on. Campaigns that share a key (re-runs, serial-vs-parallel
// comparisons, geometry sweeps revisiting a point) reuse the assembly.
type progKey struct {
	design                    Design
	entries, ways, victimWays int
	params                    capacity.RFParams
	pattern                   string
	observation               model.Observation
	mapped                    bool
}

// progCache maps progKey to *isa.Program. Assembled programs are immutable
// (Load copies data into memory and executes instructions by value), so one
// cached program is safely shared by every campaign and worker.
var progCache sync.Map

func (c Config) progKeyFor(v model.Vulnerability, mapped bool) progKey {
	return progKey{
		design:      c.Design,
		entries:     c.Entries,
		ways:        c.Ways,
		victimWays:  c.VictimWays,
		params:      c.Params,
		pattern:     v.Pattern.String(),
		observation: v.Observation,
		mapped:      mapped,
	}
}

// program returns the assembled benchmark for (v, mapped), generating and
// assembling it at most once per key process-wide.
func (c Config) program(v model.Vulnerability, mapped bool) (*isa.Program, error) {
	key := c.progKeyFor(v, mapped)
	if p, ok := progCache.Load(key); ok {
		return p.(*isa.Program), nil
	}
	src, err := c.Generate(v, mapped)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("secbench: assembling %s: %w", v, err)
	}
	// Concurrent first-comers may assemble twice; both results are
	// identical, so whichever lands in the cache is fine.
	progCache.Store(key, prog)
	return prog, nil
}

// --- campaigns ---------------------------------------------------------------

// campaign bundles one reusable simulation per (vulnerability, behaviour):
// the program is assembled once and re-run per trial with a flushed TLB.
type campaign struct {
	machine *cpu.Machine
	rf      *tlb.RF // non-nil for the RF design, for per-trial reseeding
}

// newCampaign builds the template campaign machine for one behaviour. The
// returned campaign is the template the sharded runner clones per worker.
func (c Config) newCampaign(v model.Vulnerability, mapped bool) (*campaign, error) {
	prog, err := c.program(v, mapped)
	if err != nil {
		return nil, err
	}
	m := mem.New(c.MemLatency)
	pt := ptw.New(m, 0x100000)
	t, err := c.NewTLB(pt, c.BaseSeed)
	if err != nil {
		return nil, err
	}
	if c.Invariants {
		// The checker wraps the design and re-walks returned translations
		// against the page tables; machine clones re-wrap automatically
		// (Checker implements tlb.Cloner).
		t, err = invariant.Wrap(t, pt, invariant.Config{CrossCheck: true})
		if err != nil {
			return nil, err
		}
	}
	coreCfg := cpu.DefaultConfig
	// The Appendix B benchmarks time targeted invalidations, which only
	// leak when the two-cycle check-then-clear optimisation is present;
	// enabling it is harmless for the base benchmarks (they never issue
	// targeted invalidations).
	coreCfg.VariableFlushTiming = true
	mach := cpu.New(t, pt, m, coreCfg)
	if err := mach.Load(prog, []tlb.ASID{attackerASID, victimASID}); err != nil {
		return nil, err
	}
	return wrapCampaign(mach), nil
}

func wrapCampaign(mach *cpu.Machine) *campaign {
	camp := &campaign{machine: mach}
	// The RF design may sit under an invariant checker; reseeding (and fault
	// arming) must reach the raw design either way.
	if rf, ok := invariant.Unwrap(mach.TLB).(*tlb.RF); ok {
		camp.rf = rf
	}
	return camp
}

// clone replicates the campaign machine for an additional worker.
func (cp *campaign) clone() (*campaign, error) {
	m, err := cp.machine.Clone()
	if err != nil {
		return nil, err
	}
	return wrapCampaign(m), nil
}

// runTrial executes one trial under the given instruction budget and reports
// whether the timed step observed a TLB miss (the "slow" outcome).
func (cp *campaign) runTrial(seed, fuel uint64) (miss bool, err error) {
	cp.machine.Reset()
	cp.machine.TLB.FlushAll()
	cp.machine.TLB.ResetStats()
	if cp.rf != nil {
		cp.rf.Reseed(seed)
	}
	code, err := cp.machine.Run(fuel)
	if err != nil {
		return false, err
	}
	if code != 0 {
		return false, fmt.Errorf("%w (exit code %d)", ErrBenchFailed, code)
	}
	return cp.machine.Reg(30) != 0, nil
}

// runTrials executes trials [lo, hi) for one behaviour and returns how many
// observed a miss. Each trial reseeds from its own index, so the count is
// independent of how the trial range is split across workers.
func (c Config) runTrials(cp *campaign, v model.Vulnerability, mapped bool, lo, hi int) (int, error) {
	misses := 0
	for trial := lo; trial < hi; trial++ {
		miss, err := cp.runTrial(c.trialSeed(trial, mapped), c.fuel())
		if err != nil {
			return misses, fmt.Errorf("%s (mapped=%v, trial %d): %w", v, mapped, trial, err)
		}
		if miss {
			misses++
		}
	}
	return misses, nil
}

// finalize derives the probability, capacity and CI columns from the counts.
func (c Config) finalize(res *Result) {
	res.P1, res.P2 = res.Counts.Probabilities()
	res.C = res.Counts.Capacity()
	res.CILow, res.CIHigh = res.Counts.BootstrapCI(300, 0.95, c.BaseSeed)
}

// RunVulnerability executes the full mapped/not-mapped campaign for one
// vulnerability, serially on a single machine. It is the reference
// implementation the parallel runner must match bit-for-bit.
func (c Config) RunVulnerability(v model.Vulnerability) (Result, error) {
	res := Result{Vulnerability: v}
	for _, mapped := range []bool{true, false} {
		camp, err := c.newCampaign(v, mapped)
		if err != nil {
			return res, err
		}
		misses, err := c.runTrials(camp, v, mapped, 0, c.Trials)
		if err != nil {
			return res, err
		}
		if mapped {
			res.Counts.Mapped, res.Counts.MappedMisses = c.Trials, misses
		} else {
			res.Counts.NotMapped, res.Counts.NotMappedMisses = c.Trials, misses
		}
	}
	c.finalize(&res)
	return res, nil
}

// RunVulnerabilityParallel is RunVulnerability with the 2×Trials trials
// sharded over a bounded worker pool (parallelism <= 0 selects GOMAXPROCS).
// Results are bit-identical to RunVulnerability.
func (c Config) RunVulnerabilityParallel(v model.Vulnerability, parallelism int) (Result, error) {
	return c.runVulnerabilitySharded(pool.New(parallelism), v)
}

// runVulnerabilitySharded runs one vulnerability's two campaigns with trial
// shards executing on p. The per-trial seed contract (trialSeed) makes the
// shard split invisible in the results: each shard's misses depend only on
// its trial indices, and integer summation is order-independent.
func (c Config) runVulnerabilitySharded(p *pool.Pool, v model.Vulnerability) (Result, error) {
	res := Result{Vulnerability: v}
	for _, mapped := range []bool{true, false} {
		var template *campaign
		var err error
		// Build the template under a worker slot: assembly and page-table
		// setup is real work, and gating it keeps a whole RunAll sweep's
		// concurrency at exactly the pool bound.
		p.Run(func() { template, err = c.newCampaign(v, mapped) })
		if err != nil {
			return res, err
		}
		shards := pool.Shards(c.Trials, p.Size())
		// The template machine runs the first shard itself; clones (taken
		// sequentially — Clone mutates the source's copy-on-write state)
		// serve the rest.
		camps := make([]*campaign, len(shards))
		for i := range shards {
			if i == 0 {
				camps[i] = template
				continue
			}
			if camps[i], err = template.clone(); err != nil {
				return res, err
			}
		}
		missesBy := make([]int, len(shards))
		errsBy := make([]error, len(shards))
		p.ForEach(len(shards), func(i int) {
			missesBy[i], errsBy[i] = c.runTrials(camps[i], v, mapped, shards[i].Lo, shards[i].Hi)
		})
		misses := 0
		for i := range shards {
			if errsBy[i] != nil {
				return res, errsBy[i]
			}
			misses += missesBy[i]
		}
		if mapped {
			res.Counts.Mapped, res.Counts.MappedMisses = c.Trials, misses
		} else {
			res.Counts.NotMapped, res.Counts.NotMappedMisses = c.Trials, misses
		}
	}
	c.finalize(&res)
	return res, nil
}

// RunAll executes the campaign for all 24 base vulnerabilities, in Table 2
// order.
func (c Config) RunAll() ([]Result, error) {
	return c.runList(model.Enumerate())
}

// RunAllExtended executes the campaign for the additional Appendix B
// vulnerabilities (targeted invalidation and variable-timing flushes).
func (c Config) RunAllExtended() ([]Result, error) {
	return c.runList(model.EnumerateExtended())
}

func (c Config) runList(vulns []model.Vulnerability) ([]Result, error) {
	var out []Result
	for _, v := range vulns {
		r, err := c.RunVulnerability(v)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefendedCount returns how many of the results the design defends.
func DefendedCount(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Defended() {
			n++
		}
	}
	return n
}

// RunAllParallel is RunAll parallelised at two levels over one bounded
// worker pool (parallelism <= 0 selects GOMAXPROCS): every vulnerability's
// campaigns run concurrently AND each campaign's trials are sharded across
// workers on cloned machines. Wall-clock therefore scales with cores even
// when one slow campaign dominates, instead of being bounded by the slowest
// campaign's serial trial loop. Results are bit-identical to RunAll, in the
// same Table 2 order — see trialSeed for the determinism contract.
func (c Config) RunAllParallel(parallelism int) ([]Result, error) {
	return c.runListParallel(model.Enumerate(), parallelism)
}

// RunAllExtendedParallel is the parallel form of RunAllExtended.
func (c Config) RunAllExtendedParallel(parallelism int) ([]Result, error) {
	return c.runListParallel(model.EnumerateExtended(), parallelism)
}

func (c Config) runListParallel(vulns []model.Vulnerability, parallelism int) ([]Result, error) {
	p := pool.New(parallelism)
	results := make([]Result, len(vulns))
	errs := make([]error, len(vulns))
	var wg sync.WaitGroup
	for i, v := range vulns {
		i, v := i, v
		wg.Add(1)
		// One lightweight orchestrator per vulnerability; all actual work
		// (template builds, trial shards) runs under p's worker bound, so
		// the sweep's leaf concurrency is exactly the pool size.
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.runVulnerabilitySharded(p, v)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
