package secbench

import (
	"reflect"
	"sync"
	"testing"

	"securetlb/internal/model"
	"securetlb/internal/pool"
)

// TestShardedBitIdenticalToSerial is the determinism regression test for the
// trial-sharded runner: for every design and all 24 base vulnerabilities the
// full Result slices — counts, probabilities, capacities AND bootstrap
// intervals — must be byte-identical between the serial reference and the
// sharded pool runner, at several worker counts including sizes that do not
// divide the trial count.
func TestShardedBitIdenticalToSerial(t *testing.T) {
	for _, tc := range []struct {
		design Design
		trials int
	}{
		{DesignSA, 6},
		{DesignSP, 6},
		{DesignRF, 40},
	} {
		cfg := testConfig(tc.design, tc.trials)
		serial, err := cfg.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) != len(model.Enumerate()) {
			t.Fatalf("%s: expected all %d vulnerabilities, got %d",
				tc.design, len(model.Enumerate()), len(serial))
		}
		for _, workers := range []int{1, 3, 0} {
			parallel, err := cfg.RunAllParallel(workers)
			if err != nil {
				t.Fatal(err)
			}
			// Result holds a slice-bearing Vulnerability, so compare deeply.
			if !reflect.DeepEqual(serial, parallel) {
				for i := range serial {
					if !reflect.DeepEqual(serial[i], parallel[i]) {
						t.Errorf("%s, %d workers, row %d (%s): serial %+v != sharded %+v",
							tc.design, workers, i, serial[i].Vulnerability,
							serial[i], parallel[i])
					}
				}
			}
		}
	}
}

func TestRunVulnerabilityParallelMatchesSerial(t *testing.T) {
	cfg := testConfig(DesignRF, 50)
	v := model.Enumerate()[7]
	serial, err := cfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := cfg.RunVulnerabilityParallel(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("serial %+v != sharded %+v", serial, sharded)
	}
}

func TestProgramCacheReusesAssembly(t *testing.T) {
	cfg := testConfig(DesignSA, 1)
	v := model.Enumerate()[0]
	p1, err := cfg.program(v, true)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cfg.program(v, true)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same (config, vulnerability, behaviour) assembled twice")
	}
	// Different behaviour, geometry or design must not collide.
	pm, err := cfg.program(v, false)
	if err != nil {
		t.Fatal(err)
	}
	if pm == p1 {
		t.Error("mapped and not-mapped variants share a cache entry")
	}
	small := cfg
	small.Entries, small.Ways = 8, 2
	ps, err := small.program(v, true)
	if err != nil {
		t.Fatal(err)
	}
	if ps == p1 {
		t.Error("different geometries share a cache entry")
	}
}

// TestConcurrentCampaignsOverClonedMachines drives two whole campaigns at
// once over one shared pool — the cloned machines of both interleave on the
// same workers. Run with -race this is the pool/clone race check; without it
// it still verifies both campaigns match their serial references.
func TestConcurrentCampaignsOverClonedMachines(t *testing.T) {
	cfgA := testConfig(DesignSA, 8)
	cfgB := testConfig(DesignRF, 30)
	vulns := model.Enumerate()
	vA, vB := vulns[0], vulns[11]
	wantA, err := cfgA.RunVulnerability(vA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := cfgB.RunVulnerability(vB)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New(4)
	var gotA, gotB Result
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); gotA, errA = cfgA.runVulnerabilitySharded(p, vA) }()
	go func() { defer wg.Done(); gotB, errB = cfgB.runVulnerabilitySharded(p, vB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Errorf("campaign A diverged under contention: %+v != %+v", gotA, wantA)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Errorf("campaign B diverged under contention: %+v != %+v", gotB, wantB)
	}
}
