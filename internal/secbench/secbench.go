// Package secbench generates and runs the micro security benchmarks of
// paper §5.1.
//
// For each of the 24 vulnerability types of Table 2 — and, in extended mode,
// the additional targeted-invalidation types of Appendix B (Table 7) — the
// generator emits an assembly program following the Figure 6 template: a
// prologue that programs the secure-region registers, the three steps of the
// vulnerability (switching the process_id CSR between attacker and victim,
// the paper's simulation hack), and a final timed step. Non-secure accesses
// use the "norm" load type and secure accesses the "rand" type, as in the
// paper; targeted invalidations use the tlb_flush_page_all CSR (the
// address-based invalidation of Appendix B).
//
// Each benchmark is run in two variants — the victim's secret address u
// mapping, or not mapping, to the attacker-tested TLB block (Table 3's two
// behaviours) — 500 trials each by default. The resulting miss counts give
// the empirical p1*, p2* and channel capacity C* columns of Table 4.
//
// Step expansion. The three-step model abstracts one TLB block; concretely,
// a "prime" of the tested set is required before an eviction can be
// observed. The expansion therefore keys on the vulnerability's informative
// scenario (derived by the model's oracle):
//
//   - u == a ("same-addr") types need no eviction: every step is a single
//     access, a whole-TLB flush, or a single targeted invalidation;
//   - set-conflict ("same-set") types prime: a known-address Step 1 fills
//     the tested set with the probed page first (making it the LRU
//     candidate) plus fillers up to the actor's available ways; a
//     known-address Step 2 fills the whole partition so it deterministically
//     evicts the victim's Step 1 entry; Step 3 re-touches (or invalidates)
//     the probed page, timed.
//
// The final step's timing is measured with the tlb_miss_count CSR for
// accesses, and with the cycle CSR for invalidations (a present entry takes
// one extra cycle under the Appendix B variable-timing invalidation).
//
// The number of ways an actor can fill depends on the design: the SP TLB
// confines each actor to its partition, so primes are sized accordingly.
package secbench

import (
	"fmt"
	"strings"

	"securetlb/internal/capacity"
	"securetlb/internal/faultinject"
	"securetlb/internal/model"
	"securetlb/internal/tlb"
)

// Design selects which TLB implementation a benchmark campaign runs on.
type Design int

const (
	// DesignSA is the standard set-associative TLB.
	DesignSA Design = iota
	// DesignSP is the Static-Partition TLB (half the ways to the victim).
	DesignSP
	// DesignRF is the Random-Fill TLB.
	DesignRF
	// DesignFA is the fully-associative TLB (one set, ways == entries).
	// Appended after the paper's three designs so the enum values above stay
	// stable in checkpoints and saved configs.
	DesignFA
	// DesignRI is the Randomized-Index TLB (TLBcoat-style keyed set
	// indexing with periodic re-keying). Appended after FA for the same
	// checkpoint-stability reason.
	DesignRI
	// DesignFS is the Flush-on-Switch TLB (SIMF-style full invalidation on
	// context switches and secure-region exits).
	DesignFS
)

// String names the design as in the paper's tables.
func (d Design) String() string {
	switch d {
	case DesignSA:
		return "SA TLB"
	case DesignSP:
		return "SP TLB"
	case DesignRF:
		return "RF TLB"
	case DesignFA:
		return "FA TLB"
	case DesignRI:
		return "RI TLB"
	case DesignFS:
		return "FS TLB"
	}
	return "?"
}

// Config parameterises a benchmark campaign. The zero value is not valid;
// use DefaultConfig.
type Config struct {
	Design Design
	// Entries and Ways give the TLB geometry (the paper evaluates security
	// on an 8-way, 32-entry TLB: 4 sets).
	Entries, Ways int
	// VictimWays is the SP victim partition size (default half).
	VictimWays int
	// Trials is the number of runs per victim behaviour (the paper uses
	// 500 mapped + 500 not-mapped).
	Trials int
	// BaseSeed seeds the RF TLB's PRNG (and the RI TLB's key stream); each
	// trial derives its own seed.
	BaseSeed uint64
	// RekeyFills is the RI TLB's re-key period in fills (0 disables
	// periodic re-keying). Ignored by the other designs.
	RekeyFills uint64
	// Params supplies the secure-region sizes per vulnerability.
	Params capacity.RFParams
	// MemLatency is the per-level page walk cost in cycles.
	MemLatency uint64
	// MaxInstr is the per-trial instruction budget — the watchdog that turns
	// a non-halting benchmark into a quarantinable cpu.ErrFuelExhausted
	// instead of a hung campaign. Zero selects DefaultTrialFuel.
	MaxInstr uint64
	// Inject, when non-nil, is a fault-injection hook for the resilient
	// runner's tests: it runs at the start of each trial and may panic (to
	// exercise panic quarantine) or return a non-zero instruction budget
	// overriding MaxInstr for that one trial (to exercise the watchdog).
	// Returning zero leaves the trial untouched. Production campaigns leave
	// it nil.
	Inject func(v model.Vulnerability, mapped bool, trial int) uint64
	// Invariants enables the runtime invariant checker: every campaign
	// machine's TLB is wrapped in an invariant.Checker (with the page-table
	// cross-check on), and any violation quarantines the trial with kind
	// "invariant". Off by default: an unwrapped design has zero checking
	// overhead.
	Invariants bool
	// FaultSite, when non-empty, arms the named hardware-fault site
	// (faultinject.MachineSites) on each trial's machine with a fresh
	// deterministic injector; FaultSeed is the campaign-level fault seed each
	// trial's injector seed derives from. Faults are injected underneath the
	// invariant checker, so detection is honest.
	FaultSite faultinject.Site
	FaultSeed uint64
	// DisableTrace forces every trial through full decode-and-execute
	// instead of trace-compiled replay. Replay is bit-identical to full
	// execution (the runner falls back automatically for programs a trace
	// cannot represent, and whenever fault injection is armed), so this knob
	// exists for A/B verification and benchmarking, not correctness.
	DisableTrace bool
}

// DefaultConfig mirrors the paper's §5.3 setup.
func DefaultConfig(d Design) Config {
	c := Config{
		Design:     d,
		Entries:    32,
		Ways:       8,
		VictimWays: 4,
		Trials:     500,
		BaseSeed:   0x5ecbef1,
		Params:     capacity.DefaultRFParams,
		MemLatency: 20,
	}
	if d == DesignFA {
		// Fully associative: one set holding every entry.
		c.Ways = c.Entries
	}
	if d == DesignRI {
		// A campaign trial performs a few dozen fills; re-keying every 16
		// lands one or two re-keys inside the pattern, so the schedule (and
		// the randidx-key-stuck fault site) is exercised mid-trial rather
		// than being a dead knob.
		c.RekeyFills = 16
	}
	return c
}

const (
	victimASID   = 1
	attackerASID = 0
)

// invMeasureBaseline is the cycle cost of the timed invalidation sequence
// when the entry is absent: li (1) + csrw tlb_flush_page_all (1 + 1 flush
// cycle) + the second csrr (1). A present entry adds one cycle under the
// Appendix B variable-timing invalidation.
const invMeasureBaseline = 4

// nsets returns the set count of the configured geometry.
func (c Config) nsets() int { return c.Entries / c.Ways }

// primeWays returns how many ways an actor's fills can occupy.
func (c Config) primeWays(actor model.Actor) int {
	if c.Design != DesignSP {
		return c.Ways
	}
	if actor == model.ActorV {
		return c.VictimWays
	}
	return c.Ways - c.VictimWays
}

// layout computes the concrete page numbers a benchmark uses. All tested
// addresses share set index T = sbase % nsets; filler pools are placed well
// clear of the secure region.
type layout struct {
	sbase    uint64 // first secure page (the known address a)
	secRange int
	nsets    uint64
	// pools of set-T pages for primes, one per step position.
	pool  [3][]uint64
	u     map[bool]uint64 // mapped -> u page
	a     uint64
	alias uint64
}

// dataBasePage is the virtual page where benchmark data begins
// (asm.DefaultDataBase >> 12); it is a multiple of the set count, so the
// tested set T is 0.
const dataBasePage = 0x1000

// sameAddrMapped reports whether the vulnerability's informative scenario
// is u == a (as opposed to a set conflict).
func sameAddrMapped(v model.Vulnerability) bool {
	return len(v.MappedScenarios) > 0 && v.MappedScenarios[0] == model.ScenSameAddr
}

func (c Config) layoutFor(v model.Vulnerability) layout {
	l := layout{
		sbase:    dataBasePage,
		secRange: c.Params.SecRangeFor(v),
		nsets:    uint64(c.nsets()),
		u:        map[bool]uint64{},
	}
	l.a = l.sbase
	l.alias = l.sbase + l.nsets // same set as a, still inside the big region
	for step := 0; step < 3; step++ {
		base := l.sbase + 0x40 + uint64(step)*0x40
		for k := 0; k < c.Ways; k++ {
			l.pool[step] = append(l.pool[step], base+uint64(k)*l.nsets)
		}
	}
	if sameAddrMapped(v) {
		// The informative behaviour is u == a.
		l.u[true] = l.a
		l.u[false] = l.sbase + 1 // different page (and different set)
	} else {
		// The informative behaviour is a set conflict.
		l.u[true] = l.sbase // set T
		if uses(v, model.ClassA) || uses(v, model.ClassAInv) {
			// Keep u distinct from the probed a when a is in play.
			l.u[true] = l.sbase + l.nsets
		}
		l.u[false] = l.sbase + 1 // set T+1
	}
	return l
}

// uses reports whether any step of v has the given class.
func uses(v model.Vulnerability, cl model.Class) bool {
	for _, s := range v.Pattern {
		if s.Class == cl {
			return true
		}
	}
	return false
}

// Generate emits the assembly source of the micro security benchmark for
// one vulnerability and one victim behaviour. Base (Table 2) and extended
// (Table 7) vulnerabilities are both supported; ★ patterns are not concrete
// programs.
func (c Config) Generate(v model.Vulnerability, mapped bool) (string, error) {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return "", fmt.Errorf("secbench: bad geometry %d/%d", c.Entries, c.Ways)
	}
	if len(v.MappedScenarios) == 0 {
		return "", fmt.Errorf("secbench: %s has no informative scenario", v.Pattern)
	}
	for _, s := range v.Pattern {
		if s == model.Star {
			return "", fmt.Errorf("secbench: pattern %s contains ★ and has no concrete program", v.Pattern)
		}
	}
	l := c.layoutFor(v)
	var b strings.Builder
	pages := map[uint64]bool{}
	touch := func(p uint64) { pages[p] = true }

	fmt.Fprintf(&b, "# Micro security benchmark: %s\n", v)
	fmt.Fprintf(&b, "# strategy: %s  macro: %s  design: %s  variant: mapped=%v\n",
		v.Strategy, v.Macro, c.Design, mapped)
	fmt.Fprintf(&b, "\tcsrwi victim_asid, %d\n", victimASID)
	fmt.Fprintf(&b, "\tcsrwi sbase, %d\n", l.sbase)
	fmt.Fprintf(&b, "\tcsrwi ssize, %d\n", l.secRange)
	fmt.Fprintf(&b, "\tcsrwi tlb_flush_all, 0      # known initial state\n")

	asid := func(a model.Actor) int {
		if a == model.ActorV {
			return victimASID
		}
		return attackerASID
	}
	secure := func(actor model.Actor, page uint64) bool {
		return actor == model.ActorV && page >= l.sbase && page < l.sbase+uint64(l.secRange)
	}
	access := func(actor model.Actor, page uint64) {
		touch(page)
		op := "ldnorm"
		if secure(actor, page) {
			op = "ldrand"
		}
		fmt.Fprintf(&b, "\tli x1, %#x\n", page<<12)
		fmt.Fprintf(&b, "\t%s x2, 0(x1)\n", op)
	}
	invalidate := func(page uint64) {
		touch(page)
		fmt.Fprintf(&b, "\tli x1, %#x\n", page<<12)
		fmt.Fprintf(&b, "\tcsrw tlb_flush_page_all, x1\n")
	}

	// probePage is what Step 3 re-touches (or invalidates) for set-conflict
	// patterns: the page placed first (LRU) by the Step 1 prime, or u.
	probePage := l.a
	primeMode := !sameAddrMapped(v)

	// invTarget resolves the page a targeted invalidation refers to.
	invTarget := func(cl model.Class, idx int) uint64 {
		switch cl.IsTargetedInvalidation() {
		case true:
			switch {
			case cl == model.ClassUInv:
				return l.u[mapped]
			case cl == model.ClassAInv:
				if primeMode && idx == 2 {
					return probePage
				}
				return l.a
			case cl == model.ClassAliasInv:
				return l.alias
			default: // ClassDInv
				if primeMode {
					return probePage
				}
				return l.pool[idx][0]
			}
		}
		return 0
	}

	emitStep := func(idx int, s model.State) {
		fmt.Fprintf(&b, "\t# --- Step %d: %s ---\n", idx+1, s)
		if s.Class != model.ClassInvAll {
			fmt.Fprintf(&b, "\tcsrwi process_id, %d\n", asid(s.Actor))
		}
		switch {
		case s.Class == model.ClassInvAll:
			fmt.Fprintf(&b, "\tcsrwi tlb_flush_all, 0\n")
		case s.Class.IsTargetedInvalidation():
			invalidate(invTarget(s.Class, idx))
		case s.Class == model.ClassU:
			access(s.Actor, l.u[mapped])
		case !primeMode:
			// u == a patterns: single accesses everywhere.
			switch s.Class {
			case model.ClassA:
				access(s.Actor, l.a)
			case model.ClassAlias:
				access(s.Actor, l.alias)
			case model.ClassD:
				access(s.Actor, l.pool[idx][0])
			}
		default:
			// Set-conflict patterns.
			ways := c.primeWays(s.Actor)
			switch idx {
			case 0:
				// Prime: probed page first (becoming the LRU candidate),
				// then fillers until the actor's ways are full.
				page := l.pool[0][0]
				if s.Class == model.ClassA {
					page = l.a
				}
				probePage = page
				access(s.Actor, page)
				for k := 0; k < ways-1; k++ {
					access(s.Actor, l.pool[1][k])
				}
			case 1:
				// Middle prime (Evict+Time / Bernstein shapes): fill the
				// whole partition so the Step 1 entry is displaced.
				page := l.pool[1][0]
				if s.Class == model.ClassA {
					page = l.a
				}
				access(s.Actor, page)
				for k := 0; k < ways-1; k++ {
					access(s.Actor, l.pool[2][k])
				}
			case 2:
				access(s.Actor, probePage)
			}
		}
	}

	emitStep(0, v.Pattern[0])
	emitStep(1, v.Pattern[1])

	// Step 3 is timed. Accesses are bracketed with tlb_miss_count reads
	// (Figure 6); invalidations with cycle reads, the presence of the entry
	// showing up as one extra cycle (Appendix B).
	s3 := v.Pattern[2]
	fmt.Fprintf(&b, "\t# --- Step 3 (timed): %s ---\n", s3)
	fmt.Fprintf(&b, "\tcsrwi process_id, %d\n", asid(s3.Actor))
	if s3.Class.IsTargetedInvalidation() {
		page := invTarget(s3.Class, 2)
		touch(page)
		fmt.Fprintf(&b, "\tcsrr x28, cycle\n")
		fmt.Fprintf(&b, "\tli x1, %#x\n", page<<12)
		fmt.Fprintf(&b, "\tcsrw tlb_flush_page_all, x1\n")
		fmt.Fprintf(&b, "\tcsrr x29, cycle\n")
		fmt.Fprintf(&b, "\tsub x30, x29, x28\n")
		fmt.Fprintf(&b, "\taddi x30, x30, -%d        # x30 != 0 means slow (entry was present)\n",
			invMeasureBaseline)
	} else {
		fmt.Fprintf(&b, "\tcsrr x28, tlb_miss_count\n")
		switch {
		case s3.Class == model.ClassU:
			access(s3.Actor, l.u[mapped])
		case !primeMode:
			switch s3.Class {
			case model.ClassAlias:
				access(s3.Actor, l.alias)
			case model.ClassA:
				access(s3.Actor, l.a)
			default:
				access(s3.Actor, l.pool[2][0])
			}
		default:
			access(s3.Actor, probePage)
		}
		fmt.Fprintf(&b, "\tcsrr x29, tlb_miss_count\n")
		fmt.Fprintf(&b, "\tsub x30, x29, x28          # x30 != 0 means slow (TLB miss)\n")
	}
	fmt.Fprintf(&b, "\tpass\n")

	// Data region: one resident dword per touched page, placed with .org.
	// The secure region must be fully mapped regardless of which pages a
	// particular variant touches, because the Random Fill Engine may draw
	// any page in it (footnote 5: the OS pre-generates those entries).
	for p := l.sbase; p < l.sbase+uint64(l.secRange); p++ {
		touch(p)
	}
	fmt.Fprintf(&b, ".data\n")
	for _, p := range sortedPages(pages) {
		fmt.Fprintf(&b, ".org %#x\n", p<<12)
		fmt.Fprintf(&b, "\t.dword %#x\n", p)
	}
	return b.String(), nil
}

func sortedPages(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NewTLB constructs the configured TLB over a walker, ready for a campaign.
func (c Config) NewTLB(w tlb.Walker, seed uint64) (tlb.TLB, error) {
	switch c.Design {
	case DesignSA:
		return tlb.NewSetAssoc(c.Entries, c.Ways, w)
	case DesignSP:
		sp, err := tlb.NewSP(c.Entries, c.Ways, c.VictimWays, w)
		if err != nil {
			return nil, err
		}
		return sp, nil
	case DesignRF:
		return tlb.NewRF(c.Entries, c.Ways, w, seed)
	case DesignFA:
		return tlb.NewFullyAssoc(c.Entries, w)
	case DesignRI:
		return tlb.NewRandIdx(c.Entries, c.Ways, w, seed, c.RekeyFills)
	case DesignFS:
		return tlb.NewFlushOnSwitch(c.Entries, c.Ways, w)
	}
	return nil, fmt.Errorf("secbench: unknown design %d", c.Design)
}
