package secbench

import (
	"context"
	"math"
	"testing"

	"securetlb/internal/model"
)

// TestAllTrialsQuarantined drives the degenerate boundary of the resilient
// runner: an Inject hook that starves every trial of fuel, so every single
// trial of both behaviours is quarantined. The campaign must still complete
// (not abort), report zero survivors, and produce finite statistics — zero
// denominators must render as probability 0, never NaN.
func TestAllTrialsQuarantined(t *testing.T) {
	cfg := DefaultConfig(DesignSA)
	cfg.Trials = 6
	cfg.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 { return 1 }
	v := model.Enumerate()[0]
	report, err := cfg.RunCampaign(context.Background(), []model.Vulnerability{v}, RunOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(report.Results))
	}
	r := report.Results[0]
	if r.Counts.Mapped != 0 || r.Counts.NotMapped != 0 {
		t.Errorf("survivors = %+v, want zero", r.Counts)
	}
	if len(report.Quarantined) != 2*cfg.Trials {
		t.Errorf("quarantined = %d, want %d", len(report.Quarantined), 2*cfg.Trials)
	}
	for _, q := range report.Quarantined {
		if q.Kind != "fuel-exhausted" {
			t.Errorf("trial %d: kind %q, want fuel-exhausted", q.Trial, q.Kind)
		}
	}
	for name, val := range map[string]float64{
		"P1": r.P1, "P2": r.P2, "C": r.C, "CILow": r.CILow, "CIHigh": r.CIHigh,
	} {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			t.Errorf("%s = %v with zero survivors, want finite", name, val)
		}
	}
	if r.P1 != 0 || r.P2 != 0 || r.C != 0 {
		t.Errorf("zero-survivor statistics not zero: p1=%v p2=%v c=%v", r.P1, r.P2, r.C)
	}
}
