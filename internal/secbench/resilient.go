package secbench

// This file is the resilient execution layer over the trial-sharded runner:
// context-aware campaigns that stop admitting work on cancellation and drain
// cleanly, a per-trial fuel watchdog, panic quarantine that lets a campaign
// survive a single bad trial, and checkpoint/resume keyed by the assembled
// program's cache identity plus the trial range.
//
// The determinism contract extends the one in runner.go: because every
// trial's seed is derived from its index alone (trialSeed), excluding a
// quarantined trial changes nothing about the other trials, so the
// statistics over the surviving trials are bit-identical to a serial run
// over exactly those trial indices. Counts denominators are survivor
// counts, keeping the empirical probabilities well-defined under exclusion.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"securetlb/internal/checkpoint"
	"securetlb/internal/cpu"
	"securetlb/internal/faultinject"
	"securetlb/internal/assert"
	"securetlb/internal/model"
	"securetlb/internal/pool"
)

// ErrBenchFailed reports that a benchmark program halted with a non-zero
// exit code — its own internal consistency check (the `fail` path) fired.
var ErrBenchFailed = errors.New("secbench: benchmark signalled failure")

// DefaultTrialFuel is the per-trial instruction budget when Config.MaxInstr
// is zero. The generated benchmarks execute a few hundred instructions; a
// million is six orders of safety margin while still bounding a runaway
// trial to well under a second.
const DefaultTrialFuel = 1_000_000

// fuel resolves the per-trial instruction budget.
func (c Config) fuel() uint64 {
	if c.MaxInstr > 0 {
		return c.MaxInstr
	}
	return DefaultTrialFuel
}

// Quarantined records one trial excluded from a campaign's statistics. The
// seed and trial index are enough to replay the trial in isolation (see
// Config.ReplayTrial) when triaging.
type Quarantined struct {
	Design      string `json:"design"`
	Strategy    string `json:"strategy"`
	Pattern     string `json:"pattern"`
	Observation string `json:"observation"`
	Mapped      bool   `json:"mapped"`
	Trial       int    `json:"trial"`
	Seed        uint64 `json:"seed"`
	// Kind is the failure class: "invariant", "panic", "fuel-exhausted",
	// "fault" or "bench-failed".
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
}

// classifyTrialErr maps a trial error to its quarantine kind. Only failures
// attributable to the trial itself are quarantinable; anything else (a
// generator or assembly error, an out-of-memory clone, ...) is an
// infrastructure fault that must abort the campaign rather than silently
// shrink its sample.
func classifyTrialErr(err error) (kind string, quarantinable bool) {
	var pe *pool.PanicError
	switch {
	case errors.As(err, &pe):
		return "panic", true
	// An assertion violation reaches the runner wrapped in a cpu.FaultError
	// (the core treats a failed translation as a fault), so this case must
	// precede the generic cpu.ErrFault one to keep the kind precise. The
	// kind string stays "invariant" for checkpoint/report compatibility.
	case errors.Is(err, assert.ErrViolation):
		return "invariant", true
	case errors.Is(err, cpu.ErrFuelExhausted):
		return "fuel-exhausted", true
	case errors.Is(err, cpu.ErrFault):
		return "fault", true
	case errors.Is(err, ErrBenchFailed):
		return "bench-failed", true
	}
	return "", false
}

// unitCounts is the outcome of one checkpointable work unit — all trials of
// one (vulnerability, behaviour) pair. It is also the unit value stored in
// the checkpoint file, so its JSON shape is part of the checkpoint format.
type unitCounts struct {
	Misses      int           `json:"misses"`
	Survivors   int           `json:"survivors"`
	Quarantined []Quarantined `json:"quarantined,omitempty"`
}

// unitKey is the checkpoint key for one work unit: the program-cache
// identity (everything the assembled benchmark depends on) plus the trial
// range it covers. Two campaigns sharing a key are guaranteed bit-identical
// results for the unit, which is exactly when resuming is sound.
func (c Config) unitKey(v model.Vulnerability, mapped bool) string {
	return fmt.Sprintf("%+v|trials[0,%d)", c.progKeyFor(v, mapped), c.Trials)
}

// Fingerprint identifies the whole campaign configuration for checkpoint
// validation: everything that influences any unit's results or keys.
func (c Config) Fingerprint(extended bool) string {
	return fmt.Sprintf("secbench/v2|design=%s|geom=%d/%d/%d|trials=%d|seed=%#x|params=%+v|memlat=%d|maxinstr=%d|extended=%v|inv=%v|fault=%s:%#x",
		c.Design, c.Entries, c.Ways, c.VictimWays, c.Trials, c.BaseSeed,
		c.Params, c.MemLatency, c.fuel(), extended, c.Invariants, c.FaultSite, c.FaultSeed)
}

// runTrialsResilient executes trials [lo, hi) of one behaviour, quarantining
// per-trial failures and counting misses and survivors. It returns early
// with the context error on cancellation (the partial unit is discarded by
// the caller) and with the original error on infrastructure failure.
func (c Config) runTrialsResilient(ctx context.Context, cp *campaign, v model.Vulnerability, mapped bool, lo, hi int) (unitCounts, error) {
	var u unitCounts
	for trial := lo; trial < hi; trial++ {
		if err := ctx.Err(); err != nil {
			return u, err
		}
		seed := c.trialSeed(trial, mapped)
		trial := trial
		// Arm the configured hardware-fault site on this trial's machine,
		// underneath any invariant checker (the detector must observe the
		// fault, not intercept its injection). An arming failure is an
		// infrastructure error: the campaign was misconfigured, not the trial.
		var inj *faultinject.Injector
		if c.FaultSite != "" {
			inj = faultinject.New(c.FaultSite, c.faultSeed(trial, mapped))
			if aerr := inj.Arm(assert.Unwrap(cp.machine.TLB), cp.machine.PT, cp.machine.Mem); aerr != nil {
				return u, fmt.Errorf("%s (mapped=%v, trial %d): %w", v, mapped, trial, aerr)
			}
		}
		var miss bool
		err := pool.Safely(func() error {
			fuel := c.fuel()
			if c.Inject != nil {
				if f := c.Inject(v, mapped, trial); f != 0 {
					fuel = f
				}
			}
			var terr error
			miss, terr = cp.runTrial(seed, fuel)
			return terr
		})
		if inj != nil {
			inj.Disarm()
		}
		if err != nil {
			kind, ok := classifyTrialErr(err)
			if !ok {
				return u, fmt.Errorf("%s (mapped=%v, trial %d): %w", v, mapped, trial, err)
			}
			u.Quarantined = append(u.Quarantined, Quarantined{
				Design:      c.Design.String(),
				Strategy:    v.Strategy,
				Pattern:     v.Pattern.String(),
				Observation: v.Observation.String(),
				Mapped:      mapped,
				Trial:       trial,
				Seed:        seed,
				Kind:        kind,
				Reason:      err.Error(),
			})
			continue
		}
		u.Survivors++
		if miss {
			u.Misses++
		}
	}
	return u, nil
}

// runUnit executes one (vulnerability, behaviour) unit trial-sharded over p,
// exactly like runVulnerabilitySharded but resilient: per-trial failures
// land in the unit's quarantine list instead of aborting, and cancellation
// stops admitting shards and drains the started ones.
func (c Config) runUnit(ctx context.Context, p *pool.Pool, v model.Vulnerability, mapped bool) (unitCounts, error) {
	var unit unitCounts
	var template *campaign
	var err error
	if rerr := p.RunCtx(ctx, func() { template, err = c.newCampaign(v, mapped) }); rerr != nil {
		return unit, rerr
	}
	if err != nil {
		return unit, err
	}
	shards := pool.Shards(c.Trials, p.Size())
	camps := make([]*campaign, len(shards))
	for i := range shards {
		if i == 0 {
			camps[i] = template
			continue
		}
		if camps[i], err = template.clone(); err != nil {
			return unit, err
		}
	}
	units := make([]unitCounts, len(shards))
	errsBy := make([]error, len(shards))
	if ferr := p.ForEachCtx(ctx, len(shards), func(i int) {
		units[i], errsBy[i] = c.runTrialsResilient(ctx, camps[i], v, mapped, shards[i].Lo, shards[i].Hi)
	}); ferr != nil {
		return unit, ferr
	}
	// Aggregate in shard order so the quarantine list is ordered by trial
	// index regardless of scheduling.
	for i := range shards {
		if errsBy[i] != nil {
			return unit, errsBy[i]
		}
		unit.Misses += units[i].Misses
		unit.Survivors += units[i].Survivors
		unit.Quarantined = append(unit.Quarantined, units[i].Quarantined...)
	}
	for _, cp := range camps {
		cp.release()
	}
	return unit, nil
}

// finalizeCtx is finalize with a cancellable bootstrap.
func (c Config) finalizeCtx(ctx context.Context, res *Result) error {
	res.P1, res.P2 = res.Counts.Probabilities()
	res.C = res.Counts.Capacity()
	var err error
	res.CILow, res.CIHigh, err = res.Counts.BootstrapCICtx(ctx, 300, 0.95, c.BaseSeed)
	return err
}

// runVulnerabilityResilient runs one vulnerability's two units, consulting
// and feeding the checkpoint (nil-safe) around each.
func (c Config) runVulnerabilityResilient(ctx context.Context, p *pool.Pool, v model.Vulnerability, ck *checkpoint.File) (Result, []Quarantined, error) {
	res := Result{Vulnerability: v}
	var quarantined []Quarantined
	for _, mapped := range []bool{true, false} {
		key := c.unitKey(v, mapped)
		var unit unitCounts
		hit, err := ck.Lookup(key, &unit)
		if err != nil {
			return res, nil, err
		}
		if !hit {
			if unit, err = c.runUnit(ctx, p, v, mapped); err != nil {
				return res, nil, err
			}
			if err := ck.Record(key, unit); err != nil {
				return res, nil, err
			}
		}
		if mapped {
			res.Counts.Mapped, res.Counts.MappedMisses = unit.Survivors, unit.Misses
		} else {
			res.Counts.NotMapped, res.Counts.NotMappedMisses = unit.Survivors, unit.Misses
		}
		quarantined = append(quarantined, unit.Quarantined...)
	}
	if err := c.finalizeCtx(ctx, &res); err != nil {
		return res, nil, err
	}
	return res, quarantined, nil
}

// RunOptions parameterises a resilient campaign run.
type RunOptions struct {
	// Parallelism bounds the worker pool (<= 0 selects GOMAXPROCS).
	Parallelism int
	// Pool, when non-nil, supplies an existing worker pool instead of a
	// fresh one sized by Parallelism — how the serving daemon bounds the
	// leaf concurrency of all in-flight jobs together rather than per
	// campaign.
	Pool *pool.Pool
	// Checkpoint, when non-nil, is consulted before each work unit and fed
	// each completed one; a final flush happens on every exit path.
	Checkpoint *checkpoint.File
}

// pool resolves the worker pool a run executes on.
func (o RunOptions) pool() *pool.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return pool.New(o.Parallelism)
}

// CampaignReport is the outcome of a resilient campaign: one Result per
// completed vulnerability (statistics over surviving trials) plus every
// quarantined trial, ordered by vulnerability, then behaviour (mapped
// first), then trial index.
type CampaignReport struct {
	Results     []Result
	Quarantined []Quarantined
}

// RunCampaign executes a resilient campaign over vulns. Per-trial failures
// (panics, fuel exhaustion, faults, benchmark-signalled failures) are
// quarantined and the campaign completes; infrastructure failures abort it.
//
// On context cancellation no new work units are admitted, started shards
// drain, and RunCampaign returns the completed vulnerabilities (in vulns
// order, incomplete ones compacted away) together with the context error —
// a partial report the CLIs print before suggesting -resume.
func (c Config) RunCampaign(ctx context.Context, vulns []model.Vulnerability, opts RunOptions) (CampaignReport, error) {
	p := opts.pool()
	ck := opts.Checkpoint
	results := make([]Result, len(vulns))
	quars := make([][]Quarantined, len(vulns))
	errs := make([]error, len(vulns))
	var wg sync.WaitGroup
	for i, v := range vulns {
		i, v := i, v
		wg.Add(1)
		// One lightweight orchestrator per vulnerability, as in
		// runListParallel; all real work runs under p's worker bound.
		go func() {
			defer wg.Done()
			results[i], quars[i], errs[i] = c.runVulnerabilityResilient(ctx, p, v, ck)
		}()
	}
	wg.Wait()
	var report CampaignReport
	var ctxErr error
	for i := range vulns {
		switch {
		case errs[i] == nil:
			report.Results = append(report.Results, results[i])
			report.Quarantined = append(report.Quarantined, quars[i]...)
		case errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded):
			ctxErr = errs[i]
		default:
			ck.Flush()
			return report, errs[i]
		}
	}
	if err := ck.Flush(); err != nil {
		return report, err
	}
	return report, ctxErr
}

// RunAllCtx is the resilient form of RunAllParallel: the 24 base
// vulnerabilities in Table 2 order.
func (c Config) RunAllCtx(ctx context.Context, opts RunOptions) (CampaignReport, error) {
	return c.RunCampaign(ctx, model.Enumerate(), opts)
}

// RunAllExtendedCtx is the resilient form of RunAllExtendedParallel.
func (c Config) RunAllExtendedCtx(ctx context.Context, opts RunOptions) (CampaignReport, error) {
	return c.RunCampaign(ctx, model.EnumerateExtended(), opts)
}

// ReplayTrial re-runs one trial in isolation on a fresh machine — the
// triage entry point for a quarantined trial: the recorded behaviour and
// trial index reproduce the trial's exact seed and randomness. The Inject
// hook is not applied, so injected failures (as opposed to genuine ones) do
// not reproduce here.
func (c Config) ReplayTrial(v model.Vulnerability, mapped bool, trial int) (miss bool, err error) {
	camp, err := c.newCampaign(v, mapped)
	if err != nil {
		return false, err
	}
	miss, err = camp.runTrial(c.trialSeed(trial, mapped), c.fuel())
	if err == nil {
		camp.release()
	}
	return miss, err
}
