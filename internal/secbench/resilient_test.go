package secbench

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"securetlb/internal/checkpoint"
	"securetlb/internal/cpu"
	"securetlb/internal/model"
	"securetlb/internal/pool"
)

// TestResilientCleanMatchesParallel: with nothing injected and a live
// context, the resilient runner is bit-identical to the PR-1 parallel
// runner (and therefore to the serial reference it is tested against).
func TestResilientCleanMatchesParallel(t *testing.T) {
	cfg := testConfig(DesignRF, 30)
	want, err := cfg.RunAllParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	report, err := cfg.RunAllCtx(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Results, want) {
		t.Error("resilient results differ from RunAllParallel")
	}
	if len(report.Quarantined) != 0 {
		t.Errorf("clean run quarantined %d trials", len(report.Quarantined))
	}
}

// TestInjectedFailuresQuarantined is the acceptance scenario: a campaign
// with one injected panicking trial and one injected non-halting trial
// completes, reports both in the quarantine summary, and its statistics over
// the surviving trials are bit-identical to a serial run over the same
// surviving trial indices.
func TestInjectedFailuresQuarantined(t *testing.T) {
	const trials = 10
	vulns := model.Enumerate()[:3]
	target := vulns[1]
	cfg := testConfig(DesignRF, trials)
	cfg.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 {
		if v.Pattern.String() != target.Pattern.String() || v.Observation != target.Observation || !mapped {
			return 0
		}
		switch trial {
		case 3:
			panic("injected trial crash")
		case 5:
			return 1 // one instruction of fuel: the watchdog must fire
		}
		return 0
	}
	report, err := cfg.RunCampaign(context.Background(), vulns, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != len(vulns) {
		t.Fatalf("campaign did not complete: %d/%d results", len(report.Results), len(vulns))
	}
	if len(report.Quarantined) != 2 {
		t.Fatalf("quarantined = %+v, want 2 entries", report.Quarantined)
	}
	q3, q5 := report.Quarantined[0], report.Quarantined[1]
	if q3.Trial != 3 || q3.Kind != "panic" || !q3.Mapped {
		t.Errorf("entry 0 = %+v", q3)
	}
	if q5.Trial != 5 || q5.Kind != "fuel-exhausted" || !q5.Mapped {
		t.Errorf("entry 1 = %+v", q5)
	}
	for _, q := range report.Quarantined {
		if q.Seed != cfg.trialSeed(q.Trial, q.Mapped) {
			t.Errorf("recorded seed %#x does not reproduce trial %d", q.Seed, q.Trial)
		}
		if q.Design != cfg.Design.String() || q.Pattern != target.Pattern.String() {
			t.Errorf("quarantine provenance = %+v", q)
		}
	}

	// The surviving-trial statistics must match a serial run over exactly
	// the surviving indices, on fresh machines.
	clean := cfg
	clean.Inject = nil
	for _, res := range report.Results {
		v := res.Vulnerability
		isTarget := v.Pattern.String() == target.Pattern.String() && v.Observation == target.Observation
		for _, mapped := range []bool{true, false} {
			survivors, misses := 0, 0
			for trial := 0; trial < trials; trial++ {
				if isTarget && mapped && (trial == 3 || trial == 5) {
					continue
				}
				miss, err := clean.ReplayTrial(v, mapped, trial)
				if err != nil {
					t.Fatalf("%s trial %d: %v", v, trial, err)
				}
				survivors++
				if miss {
					misses++
				}
			}
			gotN, gotM := res.Counts.Mapped, res.Counts.MappedMisses
			if !mapped {
				gotN, gotM = res.Counts.NotMapped, res.Counts.NotMappedMisses
			}
			if gotN != survivors || gotM != misses {
				t.Errorf("%s mapped=%v: counts %d/%d, serial reference %d/%d",
					v, mapped, gotM, gotN, misses, survivors)
			}
		}
	}
}

// TestQuarantineDoesNotPerturbOtherTrials: the same campaign with and
// without injected failures yields identical per-trial outcomes for every
// surviving trial (the quarantined trials simply vanish from the counts).
func TestQuarantineDoesNotPerturbOtherTrials(t *testing.T) {
	vulns := model.Enumerate()[:1]
	cfg := testConfig(DesignRF, 12)
	clean, err := cfg.RunCampaign(context.Background(), vulns, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 {
		if mapped && trial == 0 {
			panic("injected")
		}
		return 0
	}
	faulty, err := cfg.RunCampaign(context.Background(), vulns, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := clean.Results[0].Counts, faulty.Results[0].Counts
	if c1.Mapped != c0.Mapped-1 {
		t.Errorf("mapped survivors = %d, want %d", c1.Mapped, c0.Mapped-1)
	}
	if c1.NotMapped != c0.NotMapped || c1.NotMappedMisses != c0.NotMappedMisses {
		t.Errorf("not-mapped behaviour perturbed: %+v vs %+v", c1, c0)
	}
	// The mapped miss count may differ by at most the excluded trial's own
	// contribution.
	if d := c0.MappedMisses - c1.MappedMisses; d != 0 && d != 1 {
		t.Errorf("mapped misses %d -> %d: more than trial 0's contribution changed", c0.MappedMisses, c1.MappedMisses)
	}
}

func TestClassifyTrialErr(t *testing.T) {
	cases := []struct {
		err     error
		kind    string
		quarant bool
	}{
		{&pool.PanicError{Value: "boom"}, "panic", true},
		{fmt.Errorf("trial: %w", cpu.ErrFuelExhausted), "fuel-exhausted", true},
		{&cpu.FaultError{PC: 3, Err: errors.New("bad access")}, "fault", true},
		{fmt.Errorf("%w (exit code 1)", ErrBenchFailed), "bench-failed", true},
		{errors.New("disk full"), "", false},
		{context.Canceled, "", false},
	}
	for _, c := range cases {
		kind, ok := classifyTrialErr(c.err)
		if kind != c.kind || ok != c.quarant {
			t.Errorf("classifyTrialErr(%v) = %q, %v; want %q, %v", c.err, kind, ok, c.kind, c.quarant)
		}
	}
}

// TestCampaignCancellation: cancelling mid-campaign returns the context
// error and a well-formed partial report whose entries match a clean run.
func TestCampaignCancellation(t *testing.T) {
	vulns := model.Enumerate()
	cfg := testConfig(DesignSA, 6)
	clean, err := cfg.RunCampaign(context.Background(), vulns, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byVuln := map[string]Result{}
	for _, r := range clean.Results {
		byVuln[r.Vulnerability.String()] = r
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	interrupted := cfg
	interrupted.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 {
		// Cancel from inside a running trial of the 12th vulnerability:
		// everything already started must drain, nothing new is admitted.
		if v.Pattern.String() == vulns[11].Pattern.String() && v.Observation == vulns[11].Observation {
			once.Do(cancel)
		}
		return 0
	}
	partial, err := interrupted.RunCampaign(ctx, vulns, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial.Results) >= len(vulns) {
		t.Fatalf("campaign claiming completion after cancellation: %d results", len(partial.Results))
	}
	for _, r := range partial.Results {
		want, ok := byVuln[r.Vulnerability.String()]
		if !ok {
			t.Fatalf("unknown vulnerability in partial report: %s", r.Vulnerability)
		}
		if !reflect.DeepEqual(r, want) {
			t.Errorf("partial result for %s differs from clean run", r.Vulnerability)
		}
	}
}

// TestCancelledBeforeStart: a pre-cancelled context yields no results, no
// quarantine, and the typed context error.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig(DesignSA, 4)
	report, err := cfg.RunCampaign(ctx, model.Enumerate()[:4], RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(report.Results) != 0 || len(report.Quarantined) != 0 {
		t.Errorf("report = %+v, want empty", report)
	}
}

// TestCheckpointResumeBitIdentical is the acceptance scenario for resume: a
// campaign over all 24 vulnerabilities interrupted mid-run and resumed from
// its checkpoint produces results bit-identical to an uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := testConfig(DesignRF, 6)
	want, err := cfg.RunAllCtx(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.json")
	fp := cfg.Fingerprint(false)

	// Stage 1: run with a checkpoint and cancel mid-campaign from inside a
	// trial, leaving some units recorded and others not.
	ck1, err := checkpoint.Open(path, fp, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	stage1 := cfg
	stage1.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 {
		if v.Pattern.String() == model.Enumerate()[10].Pattern.String() {
			once.Do(cancel)
		}
		return 0
	}
	partial, err := stage1.RunAllCtx(ctx, RunOptions{Checkpoint: ck1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stage 1 err = %v, want context.Canceled", err)
	}
	t.Logf("stage 1: %d/%d vulnerabilities complete, %d units checkpointed",
		len(partial.Results), len(want.Results), ck1.Len())

	// Stage 2: resume. Completed units come from the checkpoint, the rest
	// run live; the merged report must be bit-identical to the clean run.
	ck2, err := checkpoint.Open(path, fp, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfg.RunAllCtx(context.Background(), RunOptions{Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed campaign differs from uninterrupted run")
	}
	if ck2.Len() != 2*len(want.Results) {
		t.Errorf("checkpoint holds %d units, want %d", ck2.Len(), 2*len(want.Results))
	}
}

// TestCheckpointPersistsQuarantine: quarantine entries survive the
// checkpoint round trip, so a resumed campaign still reports them.
func TestCheckpointPersistsQuarantine(t *testing.T) {
	vulns := model.Enumerate()[:2]
	cfg := testConfig(DesignSA, 5)
	cfg.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 {
		if mapped && trial == 2 && v.Pattern.String() == vulns[0].Pattern.String() && v.Observation == vulns[0].Observation {
			panic("injected")
		}
		return 0
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	ck, err := checkpoint.Open(path, cfg.Fingerprint(false), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cfg.RunCampaign(context.Background(), vulns, RunOptions{Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v", first.Quarantined)
	}

	// Re-run entirely from the checkpoint: no injection this time, yet the
	// recorded quarantine entry must reappear and the counts must match.
	resumed := cfg
	resumed.Inject = nil
	ck2, err := checkpoint.Open(path, cfg.Fingerprint(false), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	second, err := resumed.RunCampaign(context.Background(), vulns, RunOptions{Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, first) {
		t.Error("resumed report differs from original")
	}
}

// TestReplayTrialMatchesCampaign: ReplayTrial on a fresh machine reproduces
// the exact per-trial outcome of a sharded campaign — the determinism that
// makes quarantine triage from the recorded (behaviour, trial) possible.
func TestReplayTrialMatchesCampaign(t *testing.T) {
	cfg := testConfig(DesignRF, 8)
	v := model.Enumerate()[7]
	res, err := cfg.RunVulnerabilityParallel(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		miss, err := cfg.ReplayTrial(v, true, trial)
		if err != nil {
			t.Fatal(err)
		}
		if miss {
			misses++
		}
	}
	if misses != res.Counts.MappedMisses {
		t.Errorf("replayed misses = %d, campaign counted %d", misses, res.Counts.MappedMisses)
	}
}
