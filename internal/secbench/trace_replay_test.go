package secbench

import (
	"context"
	"reflect"
	"testing"

	"securetlb/internal/faultinject"
	"securetlb/internal/model"
)

// replayTestConfig is DefaultConfig shrunk to guard-test scale: enough trials
// for counter divergence to surface, few enough to keep the A/B sweeps fast.
func replayTestConfig(d Design) Config {
	c := DefaultConfig(d)
	c.Trials = 60
	return c
}

// replayTestVulns spans the pattern/observation space without running all 24
// vulnerabilities per design and mode.
func replayTestVulns(t *testing.T) []model.Vulnerability {
	t.Helper()
	all := model.Enumerate()
	var out []model.Vulnerability
	for _, i := range []int{0, 5, 11, 17, 23} {
		if i < len(all) {
			out = append(out, all[i])
		}
	}
	return out
}

// TestReplayCampaignActive pins down that the trace path is actually taken:
// a traceable config's campaigns carry a replay VM, and the two opt-out
// conditions (DisableTrace, armed fault injection) route to full execution.
func TestReplayCampaignActive(t *testing.T) {
	v := model.Enumerate()[0]
	for _, d := range AllDesigns() {
		c := replayTestConfig(d)
		camp, err := c.newCampaign(v, true)
		if err != nil {
			t.Fatalf("%s: newCampaign: %v", d, err)
		}
		if camp.vm == nil || camp.tr == nil {
			t.Errorf("%s: traceable campaign did not get a replay VM", d)
		}
		clone, err := camp.clone()
		if err != nil {
			t.Fatalf("%s: clone: %v", d, err)
		}
		if clone.vm == nil || clone.vm == camp.vm || clone.tr != camp.tr {
			t.Errorf("%s: clone must fork the VM and share the trace", d)
		}

		c.DisableTrace = true
		if camp, err = c.newCampaign(v, true); err != nil {
			t.Fatalf("%s: newCampaign(DisableTrace): %v", d, err)
		}
		if camp.vm != nil {
			t.Errorf("%s: DisableTrace campaign got a replay VM", d)
		}

		c.DisableTrace = false
		c.FaultSite = faultinject.SiteDropFill
		if camp, err = c.newCampaign(v, true); err != nil {
			t.Fatalf("%s: newCampaign(FaultSite): %v", d, err)
		}
		if camp.vm != nil {
			t.Errorf("%s: fault-injecting campaign got a replay VM", d)
		}
	}
}

// TestReplayMatchesFullExecution is the bit-identity guard: for every design,
// with and without the invariant checker, replayed campaigns produce Results
// — counts, probabilities, capacity and bootstrap CIs — identical to full
// decode-and-execute, serially and under the trial-sharded parallel runner.
func TestReplayMatchesFullExecution(t *testing.T) {
	vulns := replayTestVulns(t)
	for _, d := range AllDesigns() {
		for _, inv := range []bool{false, true} {
			for _, v := range vulns {
				full := replayTestConfig(d)
				full.Invariants = inv
				full.DisableTrace = true
				want, err := full.RunVulnerability(v)
				if err != nil {
					t.Fatalf("%s inv=%v %s: full: %v", d, inv, v, err)
				}

				replay := full
				replay.DisableTrace = false
				got, err := replay.RunVulnerability(v)
				if err != nil {
					t.Fatalf("%s inv=%v %s: replay: %v", d, inv, v, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s inv=%v %s: replay diverged:\n full:   %+v\n replay: %+v",
						d, inv, v, want, got)
				}

				par, err := replay.RunVulnerabilityParallel(v, 4)
				if err != nil {
					t.Fatalf("%s inv=%v %s: parallel replay: %v", d, inv, v, err)
				}
				if !reflect.DeepEqual(par, want) {
					t.Errorf("%s inv=%v %s: parallel replay diverged:\n full:   %+v\n replay: %+v",
						d, inv, v, want, par)
				}
			}
		}
	}
}

// TestReplayQuarantineIdentity drives the resilient runner with an injected
// per-trial fuel squeeze: replay must meter fuel exactly like full execution,
// quarantining the same trials with the same kinds and completing with the
// same surviving statistics.
func TestReplayQuarantineIdentity(t *testing.T) {
	vulns := replayTestVulns(t)[:2]
	run := func(disable bool) CampaignReport {
		t.Helper()
		c := replayTestConfig(DesignRF)
		c.DisableTrace = disable
		c.Inject = func(v model.Vulnerability, mapped bool, trial int) uint64 {
			if trial%17 == 3 {
				return 10 // starve the trial: fuel-exhausted quarantine
			}
			return 0
		}
		rep, err := c.RunCampaign(context.Background(), vulns, RunOptions{Parallelism: 4})
		if err != nil {
			t.Fatalf("RunCampaign(disable=%v): %v", disable, err)
		}
		return rep
	}
	want, got := run(true), run(false)
	if len(want.Quarantined) == 0 {
		t.Fatalf("fuel squeeze quarantined nothing; the guard is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resilient replay diverged:\n full:   %+v\n replay: %+v", want, got)
	}
}

// TestReplayFaultCampaignUnchanged runs a fault-injection campaign (which
// must bypass tracing) under both settings of DisableTrace; the reports must
// be identical because both take the full-execution path.
func TestReplayFaultCampaignUnchanged(t *testing.T) {
	vulns := replayTestVulns(t)[:1]
	run := func(disable bool) CampaignReport {
		t.Helper()
		c := replayTestConfig(DesignSA)
		c.DisableTrace = disable
		c.FaultSite = faultinject.SiteDropFill
		c.FaultSeed = 0xfa117
		rep, err := c.RunCampaign(context.Background(), vulns, RunOptions{Parallelism: 2})
		if err != nil {
			t.Fatalf("RunCampaign(disable=%v): %v", disable, err)
		}
		return rep
	}
	want, got := run(true), run(false)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("faulted campaign diverged:\n full:   %+v\n replay: %+v", want, got)
	}
}
