package secbench

// This file renders campaign reports as the CLI's Table 4 / Appendix B
// tables. It lives in the package (rather than cmd/secbench) so every
// consumer — the secbench binary, the tlbserved daemon, tests — shares one
// formatting path and a served campaign's output is byte-identical to the
// direct CLI run of the same configuration.

import (
	"fmt"
	"strings"

	"securetlb/internal/capacity"
	"securetlb/internal/model"
	"securetlb/internal/report"
)

// designCodes is the single source of truth for the design selector: every
// front-end's -designs flag parses and documents itself from this list, in
// this order.
var designCodes = []struct {
	code string
	d    Design
}{
	{"sa", DesignSA},
	{"sp", DesignSP},
	{"rf", DesignRF},
	{"fa", DesignFA},
	{"ri", DesignRI},
	{"fs", DesignFS},
}

// AllDesigns returns every design in the arena, in selector order.
func AllDesigns() []Design {
	out := make([]Design, len(designCodes))
	for i, dc := range designCodes {
		out[i] = dc.d
	}
	return out
}

// DesignUsage is the shared -designs flag help text.
func DesignUsage() string {
	codes := make([]string, len(designCodes))
	for i, dc := range designCodes {
		codes[i] = dc.code
	}
	return fmt.Sprintf("%s, a comma-separated combination, \"all\" (the paper's sa,sp,rf trio) or \"full\" (every design)",
		strings.Join(codes, ", "))
}

// ParseDesigns maps the CLI/API design selector to the designs it runs:
// single codes, comma-separated combinations ("sa,ri,fs"), "all" or "full".
func ParseDesigns(s string) ([]Design, error) {
	switch s {
	case "all":
		// "all" keeps meaning the paper's three Table 4 designs; the later
		// arrivals (FA, RI, FS) are opt-in so checkpointed invocations keep
		// their shape.
		return []Design{DesignSA, DesignSP, DesignRF}, nil
	case "full":
		return AllDesigns(), nil
	}
	var out []Design
	seen := map[Design]bool{}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		found := false
		for _, dc := range designCodes {
			if dc.code == tok {
				if !seen[dc.d] {
					out = append(out, dc.d)
					seen[dc.d] = true
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown design %q (want %s)", tok, DesignUsage())
		}
	}
	return out, nil
}

// Theory returns the analytical p1/p2 of §5.3.1 for one (design,
// vulnerability) pair — the theory half of Table 4's columns.
func Theory(d Design, v model.Vulnerability) (p1, p2 float64) {
	switch d {
	case DesignSA:
		p1, p2, _ = capacity.DeterministicTheory(v, model.DesignASID)
	case DesignSP:
		p1, p2, _ = capacity.DeterministicTheory(v, model.DesignPartitioned)
	case DesignRF:
		p1, p2, _ = capacity.RFTheory(v, capacity.DefaultRFParams)
	case DesignFA:
		// Fully associative behaves as an unpartitioned deterministic-ASID
		// design for the analytical model: same LRU state machine as SA, one
		// set instead of several.
		p1, p2, _ = capacity.DeterministicTheory(v, model.DesignASID)
	case DesignRI:
		p1, p2, _ = capacity.RandIdxTheory(v, capacity.DefaultRandIdxParams)
	case DesignFS:
		p1, p2, _ = capacity.DeterministicTheory(v, model.DesignFlushed)
	}
	return p1, p2
}

// QuarantineRows converts quarantined trials to the row shape of
// report.Quarantine.
func QuarantineRows(qs []Quarantined) [][]string {
	rows := make([][]string, 0, len(qs))
	for _, q := range qs {
		behaviour := "not-mapped"
		if q.Mapped {
			behaviour = "mapped"
		}
		rows = append(rows, []string{
			q.Design,
			fmt.Sprintf("%s (%s)", q.Pattern, q.Observation),
			behaviour,
			fmt.Sprintf("%d", q.Trial),
			fmt.Sprintf("%#x", q.Seed),
			q.Kind,
			q.Reason,
		})
	}
	return rows
}

// FormatCampaign renders one design's campaign report exactly as
// cmd/secbench prints it: the title line, the Table 4 (or Appendix B)
// table, the defended count, the quarantine section (empty when nothing was
// quarantined) and a trailing blank line.
func FormatCampaign(d Design, trials, workers int, extended bool, rep CampaignReport) string {
	var b strings.Builder
	results := rep.Results
	title := "Table 4"
	if extended {
		title = "Appendix B extension"
	}
	fmt.Fprintf(&b, "%s (%s) — %d mapped + %d not-mapped trials per vulnerability, %d workers\n",
		title, d, trials, trials, workers)
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		row := []string{
			r.Vulnerability.Strategy,
			r.Vulnerability.String(),
			fmt.Sprintf("%d", r.Counts.MappedMisses),
			report.F(r.P1),
		}
		if !extended {
			tp1, tp2 := Theory(d, r.Vulnerability)
			tc := capacity.MutualInformation(tp1, tp2)
			row = append(row, report.F(tp1),
				fmt.Sprintf("%d", r.Counts.NotMappedMisses),
				report.F(r.P2), report.F(tp2),
				report.F(r.C), report.F(tc))
		} else {
			row = append(row,
				fmt.Sprintf("%d", r.Counts.NotMappedMisses),
				report.F(r.P2), report.F(r.C))
		}
		row = append(row, report.F(r.CIHigh))
		rows = append(rows, append(row, report.Check(r.Defended())))
	}
	headers := []string{"Strategy", "Vulnerability", "nMM", "p1*", "p1", "nNM", "p2*", "p2", "C*", "C", "C*ci95", "verdict"}
	if extended {
		headers = []string{"Strategy", "Vulnerability", "nMM", "p1*", "nNM", "p2*", "C*", "C*ci95", "verdict"}
	}
	b.WriteString(report.Table(headers, rows))
	fmt.Fprintf(&b, "%s defends %d/%d vulnerability types\n", d, DefendedCount(results), len(results))
	b.WriteString(report.Quarantine(QuarantineRows(rep.Quarantined)))
	b.WriteString("\n")
	return b.String()
}
