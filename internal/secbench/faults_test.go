package secbench

import (
	"context"
	"fmt"
	"testing"

	"securetlb/internal/faultinject"
	"securetlb/internal/model"
)

// matrixVuln picks a vulnerability that exercises every event class the
// machine fault sites hook: a victim access step (secure-region traffic, so
// the RF engine draws) plus enough fills and re-touches per trial.
func matrixVuln(t testing.TB) model.Vulnerability {
	t.Helper()
	for _, v := range model.Enumerate() {
		for _, s := range v.Pattern {
			if s.Actor == model.ActorV && (s.Class == model.ClassU || s.Class == model.ClassA) {
				return v
			}
		}
	}
	t.Fatal("no vulnerability with a victim access step")
	return model.Vulnerability{}
}

func matrixConfig(d Design) Config {
	c := DefaultConfig(d)
	c.Trials = 12
	c.Invariants = true
	c.FaultSeed = 0xfa117
	// The matrix vulnerability performs only a handful of fills per trial;
	// re-keying every 2 fills makes the RI re-key site reachable mid-trial.
	c.RekeyFills = 2
	return c
}

// TestFaultMatrix is the acceptance gate of the fault-injection layer: every
// registered machine site, on every applicable design, must produce zero
// silent corruptions (a faulted outcome differing from the clean run without
// a reported detection), and every site must be detected at least once
// across the matrix.
func TestFaultMatrix(t *testing.T) {
	v := matrixVuln(t)
	for _, site := range faultinject.MachineSites() {
		site := site
		t.Run(string(site), func(t *testing.T) {
			designs := DesignsForSite(site)
			detected := 0
			for _, d := range designs {
				cfg := matrixConfig(d)
				cell, err := cfg.RunFaultCell(v, true, site, cfg.Trials)
				if err != nil {
					t.Fatalf("%s on %s: %v", site, d, err)
				}
				if len(cell.Silent) > 0 {
					t.Errorf("%s on %s: silent corruption at trials %v (detail: %s)",
						site, d, cell.Silent, cell.Detail)
				}
				if cell.DetectedTotal()+cell.Benign+cell.Latent != cell.Trials {
					t.Errorf("%s on %s: classification does not cover all trials: %+v", site, d, cell)
				}
				detected += cell.DetectedTotal()
			}
			if detected == 0 {
				t.Errorf("site %s was never detected on any design", site)
			}
		})
	}
}

// TestFaultMatrixCheckpointSites verifies the at-rest sites: a corrupted
// checkpoint must never resume silently — every seed either fails loudly or
// recovers bit-identical content, and the loud failure must actually occur.
func TestFaultMatrixCheckpointSites(t *testing.T) {
	cfg := matrixConfig(DesignSA)
	for _, site := range []faultinject.Site{faultinject.SiteCheckpointTruncate, faultinject.SiteCheckpointBitRot} {
		site := site
		t.Run(string(site), func(t *testing.T) {
			dir := t.TempDir()
			detections := 0
			for seed := uint64(1); seed <= 8; seed++ {
				detected, detail, err := cfg.VerifyCheckpointFault(dir, site, seed)
				if err != nil {
					t.Errorf("seed %d: %v", seed, err)
					continue
				}
				if detected {
					detections++
				} else {
					t.Logf("seed %d: benign at-rest fault (%s)", seed, detail)
				}
			}
			if detections == 0 {
				t.Errorf("site %s never triggered a loud resume failure in 8 seeds", site)
			}
		})
	}
}

// TestFaultCellDeterministic requires a full differential cell to reproduce
// bit-for-bit: same seeds, same trigger ordinals, same classifications.
func TestFaultCellDeterministic(t *testing.T) {
	v := matrixVuln(t)
	cfg := matrixConfig(DesignRF)
	run := func() string {
		cell, err := cfg.RunFaultCell(v, true, faultinject.SiteTagFlip, 8)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%d|%d|%v|%s", cell.Detected, cell.Benign, cell.Latent, cell.Silent, cell.Detail)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault cell not deterministic:\n  %s\n  %s", a, b)
	}
}

// TestCampaignWithFaultsQuarantines drives the production resilient runner
// with a fault site armed and invariants on: every faulted trial must land
// in quarantine with kind "invariant" (never abort the campaign), and the
// survivor accounting must stay consistent.
func TestCampaignWithFaultsQuarantines(t *testing.T) {
	cfg := matrixConfig(DesignSA)
	cfg.Trials = 16
	cfg.FaultSite = faultinject.SiteDropFill
	v := matrixVuln(t)
	report, err := cfg.RunCampaign(context.Background(), []model.Vulnerability{v}, RunOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(report.Results))
	}
	if len(report.Quarantined) == 0 {
		t.Fatal("no trial was quarantined despite a dropped-fill fault on every trial")
	}
	for _, q := range report.Quarantined {
		if q.Kind != "invariant" {
			t.Errorf("trial %d (mapped=%v) quarantined as %q, want invariant: %s", q.Trial, q.Mapped, q.Kind, q.Reason)
		}
	}
	counts := report.Results[0].Counts
	mappedQ, notMappedQ := 0, 0
	for _, q := range report.Quarantined {
		if q.Mapped {
			mappedQ++
		} else {
			notMappedQ++
		}
	}
	if counts.Mapped+mappedQ != cfg.Trials || counts.NotMapped+notMappedQ != cfg.Trials {
		t.Errorf("survivors + quarantined != trials: %+v with %d/%d quarantined", counts, mappedQ, notMappedQ)
	}

	// Survivor bit-identity: a clean campaign's per-trial outcomes must match
	// the faulted campaign's over exactly the surviving trial indices.
	clean := cfg
	clean.FaultSite = ""
	quarantined := map[[2]any]bool{}
	for _, q := range report.Quarantined {
		quarantined[[2]any{q.Mapped, q.Trial}] = true
	}
	for _, mapped := range []bool{true, false} {
		cp, err := clean.newCampaign(v, mapped)
		if err != nil {
			t.Fatal(err)
		}
		misses := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			miss, err := cp.runTrial(clean.trialSeed(trial, mapped), clean.fuel())
			if err != nil {
				t.Fatalf("clean trial %d: %v", trial, err)
			}
			if miss && !quarantined[[2]any{mapped, trial}] {
				misses++
			}
		}
		want := counts.MappedMisses
		if !mapped {
			want = counts.NotMappedMisses
		}
		if misses != want {
			t.Errorf("mapped=%v: survivor misses %d != clean-over-survivors %d", mapped, want, misses)
		}
	}
}

// TestInvariantsCleanCampaign runs a fault-free campaign with invariants on:
// the checker must stay silent on every design (no false positives under the
// real benchmark traffic) and the statistics must equal the unchecked run.
func TestInvariantsCleanCampaign(t *testing.T) {
	v := matrixVuln(t)
	for _, d := range AllDesigns() {
		cfg := DefaultConfig(d)
		cfg.Trials = 24
		checked := cfg
		checked.Invariants = true
		base, err := cfg.RunVulnerability(v)
		if err != nil {
			t.Fatalf("%s unchecked: %v", d, err)
		}
		got, err := checked.RunVulnerability(v)
		if err != nil {
			t.Fatalf("%s checked: %v", d, err)
		}
		if base.Counts != got.Counts {
			t.Errorf("%s: invariant checking changed the statistics: %+v vs %+v", d, base.Counts, got.Counts)
		}
	}
}

// TestEverySiteCaughtByAnAssertion is the cross-matrix coverage gate of the
// assertion layer: every registered fault site must be detected by at least
// one *named* declarative assertion on at least one design (for the two
// at-rest checkpoint sites, by the corrupt-checkpoint refusal, which is their
// detection surface). A site that only ever surfaces as a generic fault or
// stays latent at this sampling depth fails the test.
func TestEverySiteCaughtByAnAssertion(t *testing.T) {
	v := matrixVuln(t)
	for _, site := range faultinject.Sites() {
		site := site
		t.Run(string(site), func(t *testing.T) {
			if site == faultinject.SiteCheckpointTruncate || site == faultinject.SiteCheckpointBitRot {
				cfg := matrixConfig(DesignSA)
				dir := t.TempDir()
				for seed := uint64(1); seed <= 8; seed++ {
					detected, _, err := cfg.VerifyCheckpointFault(dir, site, seed)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if detected {
						return
					}
				}
				t.Fatalf("at-rest site %s never refused a corrupted checkpoint in 8 seeds", site)
			}
			designs := DesignsForSite(site)
			// Escalate the sampling depth before declaring a coverage hole:
			// some sites need more trials for the trigger ordinal to land on
			// an assertion-visible operation.
			for _, trials := range []int{12, 32, 96} {
				for _, d := range designs {
					cfg := matrixConfig(d)
					cell, err := cfg.RunFaultCell(v, true, site, trials)
					if err != nil {
						t.Fatalf("%s on %s: %v", site, d, err)
					}
					for name, n := range cell.Assertions {
						if n > 0 {
							t.Logf("%s caught by %s on %s (%d/%d trials)", site, name, d, n, trials)
							return
						}
					}
				}
			}
			t.Fatalf("site %s was never attributed to a named assertion on any design", site)
		})
	}
}

// TestInvariantsDisableTraceBitIdentity pins the -invariants x -no-trace
// interaction: assertions force the interpreter (the monitor implements
// neither FastTranslator nor CounterReader), so all four combinations of
// {Invariants, DisableTrace} must produce bit-identical statistics on every
// design.
func TestInvariantsDisableTraceBitIdentity(t *testing.T) {
	v := matrixVuln(t)
	for _, d := range AllDesigns() {
		var ref *Result
		for _, inv := range []bool{false, true} {
			for _, noTrace := range []bool{false, true} {
				cfg := DefaultConfig(d)
				cfg.Trials = 12
				cfg.Invariants = inv
				cfg.DisableTrace = noTrace
				res, err := cfg.RunVulnerability(v)
				if err != nil {
					t.Fatalf("%s inv=%v noTrace=%v: %v", d, inv, noTrace, err)
				}
				if ref == nil {
					r := res
					ref = &r
					continue
				}
				if res.Counts != ref.Counts {
					t.Errorf("%s inv=%v noTrace=%v: counts %+v differ from baseline %+v",
						d, inv, noTrace, res.Counts, ref.Counts)
				}
			}
		}
	}
}
