package secbench

import (
	"strings"
	"testing"

	"securetlb/internal/asm"
	"securetlb/internal/model"
)

func TestExtendedGenerateAssembles(t *testing.T) {
	for _, d := range []Design{DesignSA, DesignSP, DesignRF} {
		cfg := testConfig(d, 1)
		for _, v := range model.EnumerateExtended() {
			for _, mapped := range []bool{true, false} {
				src, err := cfg.Generate(v, mapped)
				if err != nil {
					t.Fatalf("%s/%s mapped=%v: %v", d, v, mapped, err)
				}
				if _, err := asm.Assemble(src); err != nil {
					t.Errorf("%s/%s does not assemble: %v", d, v, err)
				}
			}
		}
	}
}

func TestExtendedBenchmarkStructure(t *testing.T) {
	cfg := testConfig(DesignSA, 1)
	// A Flush+Flush pattern: Step 3 is a timed invalidation, so the
	// measurement must use the cycle CSR, not the miss counter.
	v, ok := model.Find(model.EnumerateExtended(),
		model.Pattern{model.Ainv, model.Vu, model.AaInv})
	if !ok {
		t.Fatal("Flush+Flush row missing")
	}
	src, err := cfg.Generate(v, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"csrr x28, cycle",
		"csrw tlb_flush_page_all, x1",
		"csrr x29, cycle",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Flush+Flush benchmark missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "tlb_miss_count") {
		t.Error("invalidation-timed step must not read the miss counter")
	}
}

func TestExtendedSAAgreesWithOracle(t *testing.T) {
	// The empirical extended campaign on the deterministic SA TLB must
	// agree, row for row, with the design-aware symbolic oracle.
	cfg := testConfig(DesignSA, 6)
	results, err := cfg.RunAllExtended()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		oracleVulnerable := model.ObservationInformative(
			r.Vulnerability.Pattern, model.DesignASID, r.Vulnerability.Observation)
		if oracleVulnerable == r.Defended() {
			t.Errorf("SA %s: oracle says vulnerable=%v, empirical C*=%.2f (p1=%.2f p2=%.2f)",
				r.Vulnerability, oracleVulnerable, r.C, r.P1, r.P2)
		}
	}
}

func TestExtendedSPAgreesWithOracle(t *testing.T) {
	cfg := testConfig(DesignSP, 6)
	results, err := cfg.RunAllExtended()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		oracleVulnerable := model.ObservationInformative(
			r.Vulnerability.Pattern, model.DesignPartitioned, r.Vulnerability.Observation)
		if oracleVulnerable == r.Defended() {
			t.Errorf("SP %s: oracle says vulnerable=%v, empirical C*=%.2f",
				r.Vulnerability, oracleVulnerable, r.C)
		}
	}
}

func TestExtendedDefenseCounts(t *testing.T) {
	// Snapshot of the extended-model defense landscape: targeted
	// invalidation is address-based, so it pierces ASID tagging (SA defends
	// fewer extended types than base types) and partitioning adds the same
	// eviction protections as in the base model.
	counts := map[Design]int{}
	for _, d := range []Design{DesignSA, DesignSP} {
		cfg := testConfig(d, 6)
		results, err := cfg.RunAllExtended()
		if err != nil {
			t.Fatal(err)
		}
		counts[d] = DefendedCount(results)
	}
	if counts[DesignSA] != 8 {
		t.Errorf("SA defends %d/60 extended types, snapshot expects 8", counts[DesignSA])
	}
	if counts[DesignSP] != 14 {
		t.Errorf("SP defends %d/60 extended types, snapshot expects 14", counts[DesignSP])
	}
}

func TestExtendedRFPartialDefense(t *testing.T) {
	// The Random-Fill design mediates fills, not invalidations: it defends
	// the extended types whose signal still flows through a fill, but NOT
	// the ones whose signal is carried by a targeted invalidation of a
	// known address (Flush+Probe, Flush+Time, Flush+Flush on a, Prime+Probe
	// Invalidation on a, ...). This matches the paper's scoping — Appendix B
	// treats these as future-ISA concerns outside the designs' threat model.
	cfg := testConfig(DesignRF, 150)
	results, err := cfg.RunAllExtended()
	if err != nil {
		t.Fatal(err)
	}
	defended := DefendedCount(results)
	if defended < 40 || defended >= len(results) {
		t.Errorf("RF defends %d/%d extended types; expected partial defense (~46)", defended, len(results))
	}
	check := func(p model.Pattern, wantDefended bool) {
		t.Helper()
		for _, r := range results {
			if r.Vulnerability.Pattern == p {
				if r.Defended() != wantDefended {
					t.Errorf("RF %s: defended=%v (C*=%.2f), want %v",
						r.Vulnerability, r.Defended(), r.C, wantDefended)
				}
				return
			}
		}
		t.Errorf("pattern %s not in extended campaign", p)
	}
	// Flush+Probe: the victim's invalidation of u deterministically removes
	// the attacker's primed a when u == a — random fill never intervenes.
	check(model.Pattern{model.Aa, model.VuInv, model.Aa}, false)
	// Prime+Probe Invalidation on a: same leak through invalidation timing.
	check(model.Pattern{model.Aa, model.Vu, model.AaInv}, false)
	// Invalidation-primed Internal Collision still flows through the fill
	// path, which the RFE randomises: defended.
	check(model.Pattern{model.AaInv, model.Vu, model.Va}, true)
	// Reload+Time against the attacker's reload: ASID tagging keeps the
	// final observation constant: defended.
	check(model.Pattern{model.VuInv, model.Aa, model.Vu}, true)
}

func TestInvalidationTimingDeterministic(t *testing.T) {
	// The Flush+Flush benchmark's x30 must be exactly 1 when the entry is
	// present and 0 when absent, i.e. the invMeasureBaseline constant is in
	// sync with the core's timing model.
	cfg := testConfig(DesignSA, 4)
	v, ok := model.Find(model.EnumerateExtended(),
		model.Pattern{model.Ainv, model.Vu, model.AaInv})
	if !ok {
		t.Fatal("Flush+Flush row missing")
	}
	r, err := cfg.RunVulnerability(v)
	if err != nil {
		t.Fatal(err)
	}
	// mapped (u == a): the victim's u fill IS a's entry -> present -> slow.
	if r.Counts.MappedMisses != cfg.Trials {
		t.Errorf("mapped slow observations = %d/%d, want all (entry present)",
			r.Counts.MappedMisses, cfg.Trials)
	}
	// not mapped: a never entered the TLB -> absent -> fast.
	if r.Counts.NotMappedMisses != 0 {
		t.Errorf("unmapped slow observations = %d, want 0 (entry absent)",
			r.Counts.NotMappedMisses)
	}
}

func TestBaseCampaignUnchangedByExtension(t *testing.T) {
	// The generator rework (scenario-keyed expansion, invalidation support)
	// must leave the base Table 4 verdicts intact.
	for _, tc := range []struct {
		d    Design
		want int
	}{{DesignSA, 10}, {DesignSP, 14}} {
		cfg := testConfig(tc.d, 6)
		results, err := cfg.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		if n := DefendedCount(results); n != tc.want {
			t.Errorf("%s defends %d/24, want %d", tc.d, n, tc.want)
		}
	}
}

func TestCampaignSurvivesRFRandomFillFaults(t *testing.T) {
	// Failure injection through the whole stack: the RF TLB's random fill
	// may draw any page of the secure region; the benchmark generator must
	// therefore map the entire region (footnote 5). Verify by checking that
	// full campaigns complete for every secure-region size in use — a
	// missing mapping would surface as a page-fault error here.
	for _, d := range []Design{DesignRF} {
		cfg := testConfig(d, 10)
		if _, err := cfg.RunAll(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
	}
}

func TestGeneratorRejectsBadGeometry(t *testing.T) {
	cfg := testConfig(DesignSA, 1)
	cfg.Entries = 30 // not divisible by ways
	v := model.Enumerate()[0]
	if _, err := cfg.Generate(v, true); err == nil {
		t.Error("bad geometry should be rejected")
	}
	cfg = testConfig(DesignSA, 1)
	cfg.Design = Design(9)
	if _, err := cfg.NewTLB(nil, 0); err == nil {
		t.Error("unknown design should be rejected")
	}
}
