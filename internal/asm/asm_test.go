package asm

import (
	"errors"
	"strings"
	"testing"

	"securetlb/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAsm(t, `
		# paper Figure 6 style prologue
		csrwi sbase, 3
		csrwi ssize, 3
		csrwi process_id, 0
		la x1, tdat
		ldnorm x2, 0(x1)
		csrr x3, tlb_miss_count
		pass
	.data
	tdat: .dword 1 2 3
	`)
	if len(p.Instrs) != 7 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	if p.Instrs[0].Op != isa.OpCsrwi || p.Instrs[0].CSR != isa.CSRSBase || p.Instrs[0].Imm != 3 {
		t.Errorf("instr 0 = %+v", p.Instrs[0])
	}
	la := p.Instrs[3]
	if la.Op != isa.OpLi || la.Rd != 1 || uint64(la.Imm) != DefaultDataBase {
		t.Errorf("la = %+v", la)
	}
	if p.Instrs[4].Op != isa.OpLdNorm {
		t.Errorf("ldnorm = %+v", p.Instrs[4])
	}
	if p.Instrs[6].Op != isa.OpHalt || p.Instrs[6].Imm != 0 {
		t.Errorf("pass = %+v", p.Instrs[6])
	}
	if len(p.Data) != 3 || p.Data[2].Value != 3 {
		t.Errorf("data = %+v", p.Data)
	}
	if p.Symbols["tdat"] != DefaultDataBase {
		t.Errorf("tdat = %#x", p.Symbols["tdat"])
	}
}

func TestBranchLabels(t *testing.T) {
	p := mustAsm(t, `
		li x1, 5
		li x2, 5
		beq x1, x2, equal
		fail
	equal:
		pass
	`)
	if p.Instrs[2].Op != isa.OpBeq || p.Instrs[2].Imm != 4 {
		t.Errorf("beq = %+v", p.Instrs[2])
	}
	if p.Instrs[3].Op != isa.OpHalt || p.Instrs[3].Imm != 1 {
		t.Errorf("fail = %+v", p.Instrs[3])
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	p := mustAsm(t, `
	top:
		addi x1, x1, 1
		bne x1, x2, top
		j done
		nop
	done:
		pass
	`)
	if p.Instrs[1].Imm != 0 {
		t.Errorf("backward label = %d", p.Instrs[1].Imm)
	}
	if p.Instrs[2].Imm != 4 {
		t.Errorf("forward label = %d", p.Instrs[2].Imm)
	}
}

func TestPageDirectiveAligns(t *testing.T) {
	p := mustAsm(t, `
		nop
	.data
	a: .dword 1
	.page
	b: .dword 2
	.page
	c: .dword 3
	`)
	if p.Symbols["a"] != DefaultDataBase {
		t.Errorf("a = %#x", p.Symbols["a"])
	}
	if p.Symbols["b"] != DefaultDataBase+0x1000 {
		t.Errorf("b = %#x", p.Symbols["b"])
	}
	if p.Symbols["c"] != DefaultDataBase+0x2000 {
		t.Errorf("c = %#x", p.Symbols["c"])
	}
	if len(p.DataPages) != 3 {
		t.Errorf("DataPages = %v", p.DataPages)
	}
}

func TestSpaceDirective(t *testing.T) {
	p := mustAsm(t, `
		nop
	.data
	buf: .space 512
	end: .dword 9
	`)
	if p.Symbols["end"]-p.Symbols["buf"] != 512*8 {
		t.Errorf("space sizing wrong: %#x..%#x", p.Symbols["buf"], p.Symbols["end"])
	}
	if len(p.Data) != 513 {
		t.Errorf("data words = %d", len(p.Data))
	}
	// 512 dwords starting page-aligned span exactly one page.
	if len(p.DataPages) != 2 {
		t.Errorf("DataPages = %v", p.DataPages)
	}
}

func TestMemOperands(t *testing.T) {
	p := mustAsm(t, `
		ld x2, 8(x1)
		sd x3, -16(x4)
		ldrand x5, (x6)
	`)
	if p.Instrs[0] != (isa.Instr{Op: isa.OpLd, Rd: 2, Rs1: 1, Imm: 8}) {
		t.Errorf("ld = %+v", p.Instrs[0])
	}
	if p.Instrs[1] != (isa.Instr{Op: isa.OpSd, Rs2: 3, Rs1: 4, Imm: -16}) {
		t.Errorf("sd = %+v", p.Instrs[1])
	}
	if p.Instrs[2] != (isa.Instr{Op: isa.OpLdRand, Rd: 5, Rs1: 6}) {
		t.Errorf("ldrand = %+v", p.Instrs[2])
	}
}

func TestALUAndPseudo(t *testing.T) {
	p := mustAsm(t, `
		mv x1, x2
		add x3, x1, x2
		sub x3, x1, x2
		and x3, x1, x2
		or x3, x1, x2
		xor x3, x1, x2
		sltu x3, x1, x2
		slli x3, x1, 4
		srli x3, x1, 4
		li x4, -1
		li x5, 0xdeadbeef
	`)
	if p.Instrs[0] != (isa.Instr{Op: isa.OpAddi, Rd: 1, Rs1: 2}) {
		t.Errorf("mv = %+v", p.Instrs[0])
	}
	if p.Instrs[10].Imm != 0xdeadbeef {
		t.Errorf("hex li = %+v", p.Instrs[10])
	}
	if p.Instrs[9].Imm != -1 {
		t.Errorf("negative li = %+v", p.Instrs[9])
	}
}

func TestCSRByNumber(t *testing.T) {
	p := mustAsm(t, `csrr x1, 0xC00`)
	if p.Instrs[0].CSR != isa.CSRCycle {
		t.Errorf("csr = %#x", p.Instrs[0].CSR)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"frobnicate x1", "unknown mnemonic"},
		{"ld x2, 0(x99)", "bad register"},
		{"addi x1, x2", "expects 3 operands"},
		{"beq x1, x2, missing", "unknown symbol"},
		{"csrr x1, nosuchcsr", "unknown CSR"},
		{".dword 5", ".dword outside .data"},
		{".data\naddi x1, x1, 1", "in data section"},
		{"dup:\ndup:\nnop", "duplicate label"},
		{".bogus", "unknown directive"},
		{"1bad:\nnop", "bad label"},
		{"ld x2, 0[x1]", "bad memory operand"},
		{".data\n.dword zork", "bad value"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) err = %v, want containing %q", c.src, err, c.wantSub)
		}
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("Assemble(%q) err = %v does not match ErrSyntax", c.src, err)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus x1\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3", err)
	}
}

func TestCustomDataBase(t *testing.T) {
	a := &Assembler{DataBase: 0x200000}
	p, err := a.Assemble("nop\n.data\nx: .dword 1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["x"] != 0x200000 {
		t.Errorf("x = %#x", p.Symbols["x"])
	}
	if _, err := (&Assembler{DataBase: 0x200001}).Assemble("nop"); err == nil {
		t.Error("unaligned DataBase should be rejected")
	}
}

func TestLabelOnSameLineAsInstr(t *testing.T) {
	p := mustAsm(t, "start: nop\nj start")
	if p.Symbols["start"] != 0 || p.Instrs[1].Imm != 0 {
		t.Error("inline label handling wrong")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAsm(t, `
	# full-line comment

	nop # trailing comment
	`)
	if len(p.Instrs) != 1 {
		t.Errorf("got %d instructions", len(p.Instrs))
	}
}

func TestRoundTripThroughEncoding(t *testing.T) {
	p := mustAsm(t, `
		li x1, 7
		la x2, data
		ld x3, 0(x2)
		pass
	.data
	data: .dword 99
	`)
	q, err := isa.Decode(isa.Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Instrs {
		if q.Instrs[i] != p.Instrs[i] {
			t.Errorf("instr %d differs after round trip", i)
		}
	}
}

func TestOrgDirective(t *testing.T) {
	p := mustAsm(t, `
		nop
	.data
	.org 0x2000000
	a: .dword 1
	.org 0x2005000
	b: .dword 2
	`)
	if p.Symbols["a"] != 0x2000000 || p.Symbols["b"] != 0x2005000 {
		t.Errorf("org symbols: a=%#x b=%#x", p.Symbols["a"], p.Symbols["b"])
	}
	if len(p.DataPages) != 2 || p.DataPages[0] != 0x2000 || p.DataPages[1] != 0x2005 {
		t.Errorf("DataPages = %v", p.DataPages)
	}
	for _, bad := range []string{
		".data\n.org 0x100\nx: .dword 1\n.org 0x50", // backwards
		".data\n.org 0x1003",                        // unaligned
		".org 0x1000",                               // outside .data
	} {
		if _, err := Assemble(bad); err == nil {
			t.Errorf("Assemble(%q) should fail", bad)
		}
	}
}
