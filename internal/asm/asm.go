// Package asm implements a small two-pass assembler for the simulator ISA.
//
// The source syntax mirrors the paper's micro security benchmark listings
// (Figure 6): a code region using RISC-V-style mnemonics plus the ldnorm /
// ldrand access types and CSR accesses by name, and a data region of .dword
// directives whose labels (tdat...) the code references with la. The paper's
// RVTEST_PASS / RVTEST_FAIL macros are the pass / fail pseudo-instructions.
//
// Supported directives:
//
//	.text            switch to the code section (default)
//	.data            switch to the data section
//	.dword v...      emit 64-bit words
//	.space n         reserve n zero dwords
//	.page            align the data cursor to the next page boundary
//	.org addr        move the data cursor forward to an absolute address
//
// Pseudo-instructions: pass (halt 0), fail (halt 1), mv rd,rs (addi rd,rs,0),
// la rd,label (li rd, address-of-label).
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"securetlb/internal/isa"
)

// ErrSyntax matches (via errors.Is) every source-level assembly error — bad
// mnemonics, malformed operands, directive misuse. Callers that feed
// generated programs through Assemble can use it to distinguish a malformed
// benchmark (quarantine the generating configuration) from an internal
// failure.
var ErrSyntax = errors.New("asm: syntax error")

// DefaultDataBase is the virtual byte address where the data section starts
// (page-aligned).
const DefaultDataBase = 0x100_0000

// Assembler holds assembly options. The zero value uses DefaultDataBase.
type Assembler struct {
	// DataBase is the virtual address of the start of the data section.
	// It must be page-aligned.
	DataBase uint64
}

// Assemble parses src with default options.
func Assemble(src string) (*isa.Program, error) {
	return (&Assembler{}).Assemble(src)
}

type lineError struct {
	line int
	err  error
}

func (e *lineError) Error() string { return fmt.Sprintf("asm: line %d: %v", e.line, e.err) }
func (e *lineError) Unwrap() error { return e.err }

// Is makes every source-level error match the ErrSyntax sentinel.
func (e *lineError) Is(target error) bool { return target == ErrSyntax }

// stmt is a parsed source statement awaiting symbol resolution.
type stmt struct {
	line   int
	mnem   string
	args   []string
	isData bool
	// data statements
	values []uint64
	vaddr  uint64
	// text statements
	index int // instruction index
}

// Assemble runs the two passes over src and returns the program.
func (a *Assembler) Assemble(src string) (*isa.Program, error) {
	dataBase := a.DataBase
	if dataBase == 0 {
		dataBase = DefaultDataBase
	}
	if dataBase%(1<<12) != 0 {
		return nil, fmt.Errorf("asm: DataBase %#x is not page-aligned", dataBase)
	}

	symbols := map[string]uint64{}
	var stmts []stmt
	section := ".text"
	nInstr := 0
	dataCursor := dataBase

	// Pass 1: tokenise, assign label values, lay out data.
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several, possibly with trailing code).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, &lineError{lineNo + 1, fmt.Errorf("bad label %q", label)}
			}
			if _, dup := symbols[label]; dup {
				return nil, &lineError{lineNo + 1, fmt.Errorf("duplicate label %q", label)}
			}
			if section == ".text" {
				symbols[label] = uint64(nInstr)
			} else {
				symbols[label] = dataCursor
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		mnem, rest := splitMnemonic(line)
		switch mnem {
		case ".text", ".data":
			section = mnem
			continue
		case ".dword":
			if section != ".data" {
				return nil, &lineError{lineNo + 1, fmt.Errorf(".dword outside .data")}
			}
			vals, err := parseValues(rest)
			if err != nil {
				return nil, &lineError{lineNo + 1, err}
			}
			stmts = append(stmts, stmt{line: lineNo + 1, isData: true, values: vals, vaddr: dataCursor})
			dataCursor += 8 * uint64(len(vals))
			continue
		case ".space":
			if section != ".data" {
				return nil, &lineError{lineNo + 1, fmt.Errorf(".space outside .data")}
			}
			n, err := parseUint(strings.TrimSpace(rest))
			if err != nil {
				return nil, &lineError{lineNo + 1, err}
			}
			stmts = append(stmts, stmt{line: lineNo + 1, isData: true, values: make([]uint64, n), vaddr: dataCursor})
			dataCursor += 8 * n
			continue
		case ".page":
			if section != ".data" {
				return nil, &lineError{lineNo + 1, fmt.Errorf(".page outside .data")}
			}
			if rem := dataCursor % (1 << 12); rem != 0 {
				dataCursor += (1 << 12) - rem
			}
			continue
		case ".org":
			if section != ".data" {
				return nil, &lineError{lineNo + 1, fmt.Errorf(".org outside .data")}
			}
			addr, err := parseUint(strings.TrimSpace(rest))
			if err != nil {
				return nil, &lineError{lineNo + 1, err}
			}
			if addr < dataCursor {
				return nil, &lineError{lineNo + 1, fmt.Errorf(".org %#x moves backwards (cursor %#x)", addr, dataCursor)}
			}
			if addr%8 != 0 {
				return nil, &lineError{lineNo + 1, fmt.Errorf(".org %#x is not 8-byte aligned", addr)}
			}
			dataCursor = addr
			continue
		}
		if strings.HasPrefix(mnem, ".") {
			return nil, &lineError{lineNo + 1, fmt.Errorf("unknown directive %q", mnem)}
		}
		if section != ".text" {
			return nil, &lineError{lineNo + 1, fmt.Errorf("instruction %q in data section", mnem)}
		}
		stmts = append(stmts, stmt{line: lineNo + 1, mnem: mnem, args: splitArgs(rest), index: nInstr})
		nInstr++
	}

	// Pass 2: encode.
	prog := &isa.Program{Symbols: symbols}
	for _, s := range stmts {
		if s.isData {
			for i, v := range s.values {
				prog.Data = append(prog.Data, isa.DataWord{VAddr: s.vaddr + 8*uint64(i), Value: v})
			}
			continue
		}
		in, err := encodeInstr(s, symbols)
		if err != nil {
			return nil, &lineError{s.line, err}
		}
		prog.Instrs = append(prog.Instrs, in)
	}
	prog.RecomputeDataPages()
	return prog, nil
}

// encodeInstr turns one text statement into an instruction.
func encodeInstr(s stmt, symbols map[string]uint64) (isa.Instr, error) {
	need := func(n int) error {
		if len(s.args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", s.mnem, n, len(s.args))
		}
		return nil
	}
	var in isa.Instr
	switch s.mnem {
	case "nop":
		if err := need(0); err != nil {
			return in, err
		}
		in.Op = isa.OpNop
	case "pass", "fail":
		if err := need(0); err != nil {
			return in, err
		}
		in.Op = isa.OpHalt
		if s.mnem == "fail" {
			in.Imm = 1
		}
	case "halt":
		if err := need(1); err != nil {
			return in, err
		}
		imm, err := parseImm(s.args[0], symbols)
		if err != nil {
			return in, err
		}
		in.Op, in.Imm = isa.OpHalt, imm
	case "li", "la":
		if err := need(2); err != nil {
			return in, err
		}
		rd, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		imm, err := parseImm(s.args[1], symbols)
		if err != nil {
			return in, err
		}
		in = isa.Instr{Op: isa.OpLi, Rd: rd, Imm: imm}
	case "mv":
		if err := need(2); err != nil {
			return in, err
		}
		rd, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		rs, err := parseReg(s.args[1])
		if err != nil {
			return in, err
		}
		in = isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rs}
	case "addi", "slli", "srli":
		if err := need(3); err != nil {
			return in, err
		}
		rd, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		rs1, err := parseReg(s.args[1])
		if err != nil {
			return in, err
		}
		imm, err := parseImm(s.args[2], symbols)
		if err != nil {
			return in, err
		}
		op := map[string]isa.Op{"addi": isa.OpAddi, "slli": isa.OpSlli, "srli": isa.OpSrli}[s.mnem]
		in = isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm}
	case "add", "sub", "and", "or", "xor", "sltu":
		if err := need(3); err != nil {
			return in, err
		}
		rd, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		rs1, err := parseReg(s.args[1])
		if err != nil {
			return in, err
		}
		rs2, err := parseReg(s.args[2])
		if err != nil {
			return in, err
		}
		op := map[string]isa.Op{
			"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd,
			"or": isa.OpOr, "xor": isa.OpXor, "sltu": isa.OpSltu,
		}[s.mnem]
		in = isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
	case "ld", "ldnorm", "ldrand", "sd":
		if err := need(2); err != nil {
			return in, err
		}
		r0, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		off, base, err := parseMemOperand(s.args[1])
		if err != nil {
			return in, err
		}
		op := map[string]isa.Op{
			"ld": isa.OpLd, "ldnorm": isa.OpLdNorm, "ldrand": isa.OpLdRand, "sd": isa.OpSd,
		}[s.mnem]
		if s.mnem == "sd" {
			in = isa.Instr{Op: op, Rs2: r0, Rs1: base, Imm: off}
		} else {
			in = isa.Instr{Op: op, Rd: r0, Rs1: base, Imm: off}
		}
	case "beq", "bne", "bltu":
		if err := need(3); err != nil {
			return in, err
		}
		rs1, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		rs2, err := parseReg(s.args[1])
		if err != nil {
			return in, err
		}
		imm, err := parseImm(s.args[2], symbols)
		if err != nil {
			return in, err
		}
		op := map[string]isa.Op{"beq": isa.OpBeq, "bne": isa.OpBne, "bltu": isa.OpBltu}[s.mnem]
		in = isa.Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}
	case "j":
		if err := need(1); err != nil {
			return in, err
		}
		imm, err := parseImm(s.args[0], symbols)
		if err != nil {
			return in, err
		}
		in = isa.Instr{Op: isa.OpJ, Imm: imm}
	case "csrr":
		if err := need(2); err != nil {
			return in, err
		}
		rd, err := parseReg(s.args[0])
		if err != nil {
			return in, err
		}
		csr, err := parseCSR(s.args[1])
		if err != nil {
			return in, err
		}
		in = isa.Instr{Op: isa.OpCsrr, Rd: rd, CSR: csr}
	case "csrw":
		if err := need(2); err != nil {
			return in, err
		}
		csr, err := parseCSR(s.args[0])
		if err != nil {
			return in, err
		}
		rs, err := parseReg(s.args[1])
		if err != nil {
			return in, err
		}
		in = isa.Instr{Op: isa.OpCsrw, CSR: csr, Rs1: rs}
	case "csrwi":
		if err := need(2); err != nil {
			return in, err
		}
		csr, err := parseCSR(s.args[0])
		if err != nil {
			return in, err
		}
		imm, err := parseImm(s.args[1], symbols)
		if err != nil {
			return in, err
		}
		in = isa.Instr{Op: isa.OpCsrwi, CSR: csr, Imm: imm}
	default:
		return in, fmt.Errorf("unknown mnemonic %q", s.mnem)
	}
	if in.Rd == 0 && in.Op != isa.OpNop {
		// Writes to x0 are architectural no-ops but legal; nothing to check.
		_ = in
	}
	return in, nil
}

// --- token helpers ---------------------------------------------------------

func splitMnemonic(line string) (mnem, rest string) {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToLower(line), ""
}

func splitArgs(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "x") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseCSR(s string) (uint16, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := isa.CSRNames[s]; ok {
		return n, nil
	}
	if v, err := strconv.ParseUint(s, 0, 16); err == nil {
		return uint16(v), nil
	}
	return 0, fmt.Errorf("unknown CSR %q", s)
}

// parseImm accepts integers (decimal, 0x hex, negative) and label names.
func parseImm(s string, symbols map[string]uint64) (int64, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return int64(v), nil
	}
	if v, ok := symbols[s]; ok {
		return int64(v), nil
	}
	return 0, fmt.Errorf("bad immediate or unknown symbol %q", s)
}

func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad count %q", s)
	}
	return v, nil
}

// parseMemOperand parses "off(xN)".
func parseMemOperand(s string) (off int64, base uint8, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	close_ := strings.IndexByte(s, ')')
	if open < 0 || close_ != len(s)-1 || close_ < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = strconv.ParseInt(offStr, 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	base, err = parseReg(s[open+1 : close_])
	return off, base, err
}

func parseValues(rest string) ([]uint64, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf(".dword needs at least one value")
	}
	out := make([]uint64, len(fields))
	for i, f := range fields {
		if v, err := strconv.ParseInt(f, 0, 64); err == nil {
			out[i] = uint64(v)
			continue
		}
		v, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out[i] = v
	}
	return out, nil
}
