package asm

import (
	"testing"

	"securetlb/internal/isa"
)

// FuzzAssemble ensures the parser never panics on arbitrary input, and that
// anything it accepts is a well-formed program (valid registers/opcodes) —
// in particular it must survive the binary encode/decode round trip.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"nop",
		"li x1, 5\npass",
		"la x1, d\nld x2, 0(x1)\n.data\nd: .dword 1",
		"csrwi process_id, 1\nldrand x3, 8(x4)",
		"loop: beq x1, x2, loop",
		".data\n.org 0x2000\nx: .dword 1 2 3",
		"halt -1",
		": :",
		".space",
		"ld x2, (x1",
		"# only a comment",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for i, in := range p.Instrs {
			if !in.Op.Valid() {
				t.Fatalf("instr %d has invalid opcode %d", i, in.Op)
			}
			if in.Rd >= isa.NumRegs || in.Rs1 >= isa.NumRegs || in.Rs2 >= isa.NumRegs {
				t.Fatalf("instr %d has out-of-range register", i)
			}
		}
		q, err := isa.Decode(isa.Encode(p))
		if err != nil {
			t.Fatalf("accepted program failed encode/decode round trip: %v", err)
		}
		if len(q.Instrs) != len(p.Instrs) || len(q.Data) != len(p.Data) {
			t.Fatal("round trip changed program size")
		}
	})
}
