package capacity

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"securetlb/internal/model"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMutualInformationEndpoints(t *testing.T) {
	cases := []struct {
		p1, p2, want float64
	}{
		{1, 0, 1},     // perfectly distinguishable
		{0, 1, 1},     // perfectly distinguishable, inverted
		{0, 0, 0},     // indistinguishable
		{1, 1, 0},     // indistinguishable
		{0.5, 0.5, 0}, // indistinguishable
		{0.67, 0.67, 0},
	}
	for _, c := range cases {
		if got := MutualInformation(c.p1, c.p2); !almost(got, c.want, 1e-12) {
			t.Errorf("C(%v,%v) = %v, want %v", c.p1, c.p2, got, c.want)
		}
	}
}

func TestMutualInformationKnownValue(t *testing.T) {
	// p1=0.99, p2=0.01 (the paper's 0.99-ish C* entries): close to 1 bit.
	if got := MutualInformation(0.99, 0.01); !almost(got, 0.919, 0.01) {
		t.Errorf("C(0.99,0.01) = %v", got)
	}
	// Symmetric in (p1,p2).
	if !almost(MutualInformation(0.3, 0.8), MutualInformation(0.8, 0.3), 1e-12) {
		t.Error("C should be symmetric")
	}
}

func TestMutualInformationRange(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := float64(a) / 65535
		p2 := float64(b) / 65535
		c := MutualInformation(p1, p2)
		if math.IsNaN(c) || c < 0 || c > 1 {
			t.Logf("C(%v,%v) = %v out of [0,1]", p1, p2, c)
			return false
		}
		// C = 0 iff p1 == p2 (within float noise).
		if p1 == p2 && c != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if !math.IsNaN(MutualInformation(-0.1, 0.5)) || !math.IsNaN(MutualInformation(0.5, 1.1)) {
		t.Error("out-of-range probabilities should yield NaN")
	}
}

func TestCounts(t *testing.T) {
	c := Counts{Mapped: 500, MappedMisses: 500, NotMapped: 500, NotMappedMisses: 0}
	p1, p2 := c.Probabilities()
	if p1 != 1 || p2 != 0 {
		t.Errorf("p = (%v,%v)", p1, p2)
	}
	if !almost(c.Capacity(), 1, 1e-12) {
		t.Errorf("C = %v", c.Capacity())
	}
	if (Counts{}).Capacity() != 0 {
		t.Error("empty counts should give 0")
	}
}

func TestDeterministicTheorySA(t *testing.T) {
	// Golden SA theory per Table 4.
	want := map[string][2]float64{
		"Ad -> Vu -> Va (fast)": {0, 1}, // Internal Collision: C = 1
		"Ad -> Vu -> Aa (fast)": {1, 1}, // Flush+Reload: defended
		"Vu -> Aa -> Vu (slow)": {1, 0}, // Evict+Time: C = 1
		"Ad -> Vu -> Ad (slow)": {1, 0}, // Prime+Probe: C = 1
		"Vd -> Vu -> Vd (slow)": {1, 0}, // Bernstein: C = 1
		"Vd -> Vu -> Ad (slow)": {1, 1}, // Evict+Probe: defended
		"Ad -> Vu -> Vd (slow)": {1, 1}, // Prime+Time: defended
	}
	vulns := model.Enumerate()
	for _, v := range vulns {
		exp, ok := want[v.String()]
		if !ok {
			continue
		}
		p1, p2, err := DeterministicTheory(v, model.DesignASID)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if p1 != exp[0] || p2 != exp[1] {
			t.Errorf("SA %s: (p1,p2) = (%v,%v), want (%v,%v)", v, p1, p2, exp[0], exp[1])
		}
	}
}

func TestDeterministicTheorySP(t *testing.T) {
	want := map[string][2]float64{
		"Ad -> Vu -> Ad (slow)": {0, 0}, // Prime+Probe: defended (p1=p2=0)
		"Vu -> Aa -> Vu (slow)": {0, 0}, // Evict+Time: defended
		"Vd -> Vu -> Vd (slow)": {1, 0}, // Bernstein: still C = 1
		"Ad -> Vu -> Va (fast)": {0, 1}, // Internal Collision: still C = 1
	}
	for _, v := range model.Enumerate() {
		exp, ok := want[v.String()]
		if !ok {
			continue
		}
		p1, p2, err := DeterministicTheory(v, model.DesignPartitioned)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if p1 != exp[0] || p2 != exp[1] {
			t.Errorf("SP %s: (p1,p2) = (%v,%v), want %v", v, p1, p2, exp)
		}
	}
}

func TestRFTheoryMatchesPaperNumbers(t *testing.T) {
	// §5.3.1's six collapsed patterns with nset=4, nway=8, sec_range∈{3,31},
	// prime_num=28.
	want := map[string]float64{
		"Ad -> Vu -> Va (fast)":      1 - 1.0/3,           // 0.67
		"Ainv -> Vu -> Va (fast)":    1 - 1.0/3,           // 0.67
		"Aaalias -> Vu -> Va (fast)": 1 - 1.0/31,          // 0.97
		"Vu -> Ad -> Vu (slow)":      1.0 / 3 / 24,        // ≈0.014
		"Vu -> Aa -> Vu (slow)":      math.Pow(8.0/31, 8), // ≈0
		"Ad -> Vu -> Ad (slow)":      1.0 / 3,             // 0.33
		"Aa -> Vu -> Aa (slow)":      8.0 / 31,            // 0.26
		"Va -> Vu -> Va (slow)":      3.0 / 31,            // 0.09
		"Vd -> Vu -> Vd (slow)":      1.0 / 3,             // 0.33
		"Ad -> Vu -> Aa (fast)":      1,                   // ASID-defended
		"Ad -> Vu -> Vd (slow)":      1,                   // ASID-defended
		"Vd -> Vu -> Ad (slow)":      1,                   // ASID-defended
	}
	for _, v := range model.Enumerate() {
		exp, ok := want[v.String()]
		if !ok {
			continue
		}
		p1, p2, err := RFTheory(v, DefaultRFParams)
		if err != nil {
			t.Fatalf("RF %s: %v", v, err)
		}
		if p1 != p2 {
			t.Errorf("RF %s: p1 %v != p2 %v (capacity must be 0)", v, p1, p2)
		}
		if !almost(p1, exp, 1e-9) {
			t.Errorf("RF %s: p = %v, want %v", v, p1, exp)
		}
	}
}

func TestRFTheoryZeroCapacityForAll24(t *testing.T) {
	for _, v := range model.Enumerate() {
		p1, p2, err := RFTheory(v, DefaultRFParams)
		if err != nil {
			t.Fatalf("RF %s: %v", v, err)
		}
		if c := MutualInformation(p1, p2); c != 0 {
			t.Errorf("RF %s: C = %v, want 0", v, c)
		}
	}
}

func TestTable4TheoryAggregates(t *testing.T) {
	rows, err := Table4Theory(DefaultRFParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("rows = %d", len(rows))
	}
	saDefended, spDefended, rfDefended := 0, 0, 0
	for _, r := range rows {
		if r.SAC < 1e-9 {
			saDefended++
		}
		if r.SPC < 1e-9 {
			spDefended++
		}
		if r.RFC < 1e-9 {
			rfDefended++
		}
		if r.SPC > r.SAC+1e-9 {
			t.Errorf("%s: SP capacity %v exceeds SA %v", r.Vulnerability, r.SPC, r.SAC)
		}
	}
	if saDefended != 10 || spDefended != 14 || rfDefended != 24 {
		t.Errorf("defended counts (SA,SP,RF) = (%d,%d,%d), want (10,14,24)",
			saDefended, spDefended, rfDefended)
	}
}

func TestSecRangeFor(t *testing.T) {
	vulns := model.Enumerate()
	// The large, contention-heavy region applies to the three a-dominated
	// collapsed patterns: V_u⇝a⇝V_u, a^alias⇝V_u⇝·, and a⇝V_u⇝a.
	big := map[string]bool{
		"Vu -> Aa -> Vu (slow)":      true,
		"Vu -> Va -> Vu (slow)":      true,
		"Aaalias -> Vu -> Va (fast)": true,
		"Vaalias -> Vu -> Va (fast)": true,
		"Aaalias -> Vu -> Aa (fast)": true,
		"Vaalias -> Vu -> Aa (fast)": true,
		"Aa -> Vu -> Aa (slow)":      true,
		"Va -> Vu -> Va (slow)":      true,
		"Aa -> Vu -> Va (slow)":      true,
		"Va -> Vu -> Aa (slow)":      true,
	}
	for _, v := range vulns {
		want := DefaultRFParams.SecRangeSmall
		if big[v.String()] {
			want = DefaultRFParams.SecRangeBig
		}
		if got := DefaultRFParams.SecRangeFor(v); got != want {
			t.Errorf("SecRangeFor(%s) = %d, want %d", v, got, want)
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	// Deterministic counts: the interval collapses onto the point estimate.
	c := Counts{Mapped: 500, MappedMisses: 500, NotMapped: 500, NotMappedMisses: 0}
	lo, hi := c.BootstrapCI(200, 0.95, 1)
	if lo != 1 || hi != 1 {
		t.Errorf("deterministic CI = [%v,%v], want [1,1]", lo, hi)
	}
	// A defended RF-style row: the CI must hug zero.
	c = Counts{Mapped: 500, MappedMisses: 167, NotMapped: 500, NotMappedMisses: 158}
	lo, hi = c.BootstrapCI(400, 0.95, 2)
	if lo > hi {
		t.Fatalf("inverted interval [%v,%v]", lo, hi)
	}
	if hi > 0.05 {
		t.Errorf("defended row CI upper bound %v too large", hi)
	}
	if point := c.Capacity(); point < lo-1e-9 {
		t.Errorf("point estimate %v below interval [%v,%v]", point, lo, hi)
	}
	// More trials → tighter interval.
	small := Counts{Mapped: 50, MappedMisses: 17, NotMapped: 50, NotMappedMisses: 16}
	big := Counts{Mapped: 5000, MappedMisses: 1700, NotMapped: 5000, NotMappedMisses: 1600}
	_, hiSmall := small.BootstrapCI(300, 0.95, 3)
	_, hiBig := big.BootstrapCI(300, 0.95, 3)
	if hiBig >= hiSmall {
		t.Errorf("CI should tighten with trials: small %v vs big %v", hiSmall, hiBig)
	}
	// Degenerate inputs fall back to the point estimate.
	lo, hi = Counts{}.BootstrapCI(100, 0.95, 4)
	if lo != 0 || hi != 0 {
		t.Errorf("empty counts CI = [%v,%v]", lo, hi)
	}
}

func TestBootstrapCICtx(t *testing.T) {
	c := Counts{Mapped: 500, MappedMisses: 167, NotMapped: 500, NotMappedMisses: 158}
	// A live context reproduces BootstrapCI bit-for-bit, including at the
	// large-work sizes that take the parallel path.
	wantLo, wantHi := c.BootstrapCI(400, 0.95, 2)
	lo, hi, err := c.BootstrapCICtx(context.Background(), 400, 0.95, 2)
	if err != nil || lo != wantLo || hi != wantHi {
		t.Errorf("BootstrapCICtx = (%v,%v,%v), want (%v,%v,nil)", lo, hi, err, wantLo, wantHi)
	}
	// A cancelled context stops the resampling with a typed error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.BootstrapCICtx(ctx, 400, 0.95, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: err = %v, want context.Canceled", err)
	}
}
