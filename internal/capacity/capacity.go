// Package capacity implements the channel-capacity analysis of paper §5.2
// and the theoretical hit/miss probability models of §5.3.1.
//
// The attacker's knowledge gain is quantified as the mutual information
// C = I(B; O) between the victim's behaviour B (the secret access maps /
// does not map to the tested TLB block, each with probability 1/2) and the
// attacker's observation O (miss / hit), Eq. (1) of the paper. p1 is the
// miss probability when the victim's access maps, p2 when it does not
// (Table 3). A TLB defends a vulnerability exactly when C = 0, i.e. when
// p1 = p2.
package capacity

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"securetlb/internal/model"
	"securetlb/internal/pool"
)

// ErrUnmappedPattern is returned by RFTheory for a pattern shape outside the
// six §5.3.1 collapses — a classification bug or a hand-built vulnerability,
// either way a condition one caller should handle, not a process panic.
var ErrUnmappedPattern = errors.New("capacity: pattern has no RF collapse rule")

// MutualInformation evaluates Eq. (1): the capacity in bits of the binary
// channel from victim behaviour to attacker observation, given miss
// probabilities p1 (mapped) and p2 (not mapped) and a uniform behaviour
// prior. Degenerate 0·log0 terms contribute zero.
func MutualInformation(p1, p2 float64) float64 {
	if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
		return math.NaN()
	}
	term := func(p, q float64) float64 {
		// p/2 · log2(2p / (p+q)), with 0·log0 = 0.
		if p == 0 {
			return 0
		}
		return p / 2 * math.Log2(2*p/(p+q))
	}
	c := term(p1, p2) + term(p2, p1) + term(1-p1, 1-p2) + term(1-p2, 1-p1)
	// Clamp tiny negative rounding residue.
	if c < 0 && c > -1e-12 {
		c = 0
	}
	return c
}

// Counts are raw trial counts from the micro security benchmarks: out of
// Mapped (resp. NotMapped) trials, MappedMisses (resp. NotMappedMisses)
// observed a TLB miss in the final step. n_{M,M} and n_{N,M} of Table 4.
type Counts struct {
	Mapped, MappedMisses       int
	NotMapped, NotMappedMisses int
}

// Probabilities returns the empirical p1* and p2*.
func (c Counts) Probabilities() (p1, p2 float64) {
	if c.Mapped > 0 {
		p1 = float64(c.MappedMisses) / float64(c.Mapped)
	}
	if c.NotMapped > 0 {
		p2 = float64(c.NotMappedMisses) / float64(c.NotMapped)
	}
	return p1, p2
}

// Capacity returns the empirical channel capacity C*.
func (c Counts) Capacity() float64 {
	p1, p2 := c.Probabilities()
	return MutualInformation(p1, p2)
}

// DeterministicTheory derives the theoretical (p1, p2) for a vulnerability
// under a deterministic design (the generic/shared model, the SA TLB's ASID
// tagging, or the SP TLB's partitioning) by replaying the symbolic oracle:
// in a deterministic TLB the final observation in each scenario is fixed, so
// each probability is 0 or 1. The "mapped" scenario is the one the
// vulnerability's informative observation identifies in the base model.
func DeterministicTheory(v model.Vulnerability, d model.Design) (p1, p2 float64, err error) {
	if len(v.MappedScenarios) == 0 {
		return 0, 0, fmt.Errorf("capacity: vulnerability %s has no mapped scenario", v)
	}
	out := model.Analyze(v.Pattern, d)
	mapped := out.PerScenario[v.MappedScenarios[0]]
	diff := out.PerScenario[model.ScenDiff]
	toP := func(o model.Observation) (float64, error) {
		switch o {
		case model.ObsSlow:
			return 1, nil
		case model.ObsFast:
			return 0, nil
		}
		return 0, fmt.Errorf("capacity: observation %s is not deterministic", o)
	}
	if p1, err = toP(mapped); err != nil {
		return 0, 0, err
	}
	if p2, err = toP(diff); err != nil {
		return 0, 0, err
	}
	return p1, p2, nil
}

// RFParams are the Random-Fill TLB security-evaluation parameters of §5.3:
// an 8-way, 32-entry TLB (4 sets), a small secure region of 3 pages for the
// d-interaction patterns, a large region of 31 pages to exercise contention
// between secure translations, and 28 user pages sufficient to prime the
// TLB.
type RFParams struct {
	NSets, NWays               int
	SecRangeSmall, SecRangeBig int
	PrimeNum                   int
}

// DefaultRFParams mirror the paper's simulation setup.
var DefaultRFParams = RFParams{NSets: 4, NWays: 8, SecRangeSmall: 3, SecRangeBig: 31, PrimeNum: 28}

// SecRangeFor returns the secure-region size the paper's evaluation uses for
// a given vulnerability: the large, contention-heavy region for the three
// a-dominated collapsed patterns (V_u⇝a⇝V_u, a^alias⇝V_u⇝a, a⇝V_u⇝a), the
// small region otherwise.
func (p RFParams) SecRangeFor(v model.Vulnerability) int {
	c1, c2, c3 := v.Pattern[0].Class, v.Pattern[1].Class, v.Pattern[2].Class
	switch {
	case c1 == model.ClassU && c2 == model.ClassA && c3 == model.ClassU:
		return p.SecRangeBig
	case c1 == model.ClassAlias && c2 == model.ClassU:
		return p.SecRangeBig
	case c1 == model.ClassA && c2 == model.ClassU && c3 == model.ClassA:
		return p.SecRangeBig
	}
	return p.SecRangeSmall
}

// RFTheory computes the theoretical (p1, p2) for a vulnerability under the
// Random-Fill TLB, following the six collapsed patterns of §5.3.1. For the
// ten vulnerability types that ASID tagging already defends (cross-process
// hits/probes), the observation is constantly a miss: p1 = p2 = 1.
//
// In every case p1 == p2, so the RF TLB's theoretical capacity is zero for
// all 24 vulnerability types. A pattern outside the six collapses returns
// ErrUnmappedPattern.
func RFTheory(v model.Vulnerability, params RFParams) (p1, p2 float64, err error) {
	if !model.ObservationInformative(v.Pattern, model.DesignASID, v.Observation) {
		// Defended by process-ID tagging alone: the final probe always
		// misses regardless of the victim (Table 4's p1 = p2 = 1 rows).
		return 1, 1, nil
	}
	secRange := float64(params.SecRangeFor(v))
	nway := float64(params.NWays)
	nset := float64(params.NSets)
	c1, c2, c3 := v.Pattern[0].Class, v.Pattern[1].Class, v.Pattern[2].Class
	var p float64
	switch {
	case c1 == model.ClassU && c2 == model.ClassD && c3 == model.ClassU:
		// V_u ⇝ d ⇝ V_u (slow): the victim's first access random-filled one
		// of sec_range pages; the attacker's d evicts it only if the random
		// fill landed on d's set and way.
		p = 1 / secRange * (1 / (math.Min(nset, secRange) * nway))
	case c1 == model.ClassA && c2 == model.ClassU && c3 == model.ClassA:
		// a ⇝ V_u ⇝ a (slow): two sub-cases (§5.3.1).
		if v.Pattern[0].Actor == model.ActorA {
			p = nway / secRange
		} else {
			p = (secRange - float64(params.PrimeNum)) / secRange
		}
	case c1 == model.ClassU && c2 == model.ClassA && c3 == model.ClassU:
		// V_u ⇝ a ⇝ V_u (slow): all nway random-filled ways would have to
		// collide for the victim's re-access to miss.
		p = math.Pow(nway/secRange, nway)
	case c2 == model.ClassU && c3 == model.ClassA && c1 == model.ClassAlias:
		// a^alias ⇝ V_u ⇝ a (fast): hit iff the random fill drew exactly a.
		p = 1 - 1/secRange
	case c2 == model.ClassU && c3 == model.ClassA:
		// d/inv ⇝ V_u ⇝ a (fast): same reasoning, small region.
		p = 1 - 1/secRange
	case c1 == model.ClassD && c2 == model.ClassU && c3 == model.ClassD:
		// d ⇝ V_u ⇝ d (slow): the random fill displaces the primed d with
		// probability 1/sec_range.
		p = 1 / secRange
	default:
		// Any remaining shape is ASID-defended and handled above; reaching
		// here means a classification bug or a hand-built pattern.
		return 0, 0, fmt.Errorf("%w: %s", ErrUnmappedPattern, v.Pattern)
	}
	return p, p, nil
}

// RandIdxParams are the Randomized-Index TLB security-evaluation
// parameters: the geometry whose keyed placement collisions set the residual
// eviction probability.
type RandIdxParams struct {
	NSets, NWays int
}

// DefaultRandIdxParams mirror the campaign geometry (8-way, 32-entry).
var DefaultRandIdxParams = RandIdxParams{NSets: 4, NWays: 8}

// RandIdxTheory computes the theoretical (p1, p2) for a vulnerability under
// the Randomized-Index TLB.
//
// Three regimes cover all 24 vulnerability types:
//
//   - the ten types ASID tagging already defends stay constant misses
//     (p1 = p2 = 1);
//   - the hit-based (fast) types leak exactly as on the SA TLB: the keyed
//     index maps equal (ASID, VPN) pairs equally, so a same-context re-access
//     to the same address still hits — index randomization cannot (and does
//     not claim to) hide same-address reuse;
//   - the eviction-based (slow) types are where the randomization bites: the
//     probed entry is displaced only if the per-ASID keyed placements of two
//     *different* pages collide, and with a fresh random key that collision
//     probability ε = 1/(nsets·nways) is the same whether or not the
//     victim's secret shares the probed page index — mapped and unmapped
//     become indistinguishable, so C = 0.
func RandIdxTheory(v model.Vulnerability, params RandIdxParams) (p1, p2 float64, err error) {
	if !model.ObservationInformative(v.Pattern, model.DesignASID, v.Observation) {
		return 1, 1, nil
	}
	if v.Observation == model.ObsFast {
		return DeterministicTheory(v, model.DesignASID)
	}
	eps := 1 / (float64(params.NSets) * float64(params.NWays))
	return eps, eps, nil
}

// TheoryRow bundles the theoretical columns of Table 4 for one
// vulnerability.
type TheoryRow struct {
	Vulnerability model.Vulnerability
	SAP1, SAP2    float64
	SAC           float64
	SPP1, SPP2    float64
	SPC           float64
	RFP1, RFP2    float64
	RFC           float64
}

// Table4Theory computes the full theoretical half of Table 4.
func Table4Theory(params RFParams) ([]TheoryRow, error) {
	var rows []TheoryRow
	for _, v := range model.Enumerate() {
		var r TheoryRow
		r.Vulnerability = v
		var err error
		if r.SAP1, r.SAP2, err = DeterministicTheory(v, model.DesignASID); err != nil {
			return nil, err
		}
		if r.SPP1, r.SPP2, err = DeterministicTheory(v, model.DesignPartitioned); err != nil {
			return nil, err
		}
		if r.RFP1, r.RFP2, err = RFTheory(v, params); err != nil {
			return nil, err
		}
		r.SAC = MutualInformation(r.SAP1, r.SAP2)
		r.SPC = MutualInformation(r.SPP1, r.SPP2)
		r.RFC = MutualInformation(r.RFP1, r.RFP2)
		rows = append(rows, r)
	}
	return rows, nil
}

// BootstrapCI computes a percentile bootstrap confidence interval for the
// empirical channel capacity C*: the mapped and not-mapped miss counts are
// resampled as binomials and Eq. (1) is re-evaluated per resample. conf is
// the two-sided confidence level (e.g. 0.95). The interval quantifies how
// sure a 500-trial campaign can be that a "defended" C* ≈ 0 verdict is not
// sampling luck.
func (c Counts) BootstrapCI(resamples int, conf float64, seed uint64) (lo, hi float64) {
	// The background context never cancels, so the error can be discarded.
	lo, hi, _ = c.BootstrapCICtx(context.Background(), resamples, conf, seed)
	return lo, hi
}

// BootstrapCICtx is BootstrapCI with cancellation: a campaign interrupted
// mid-finalisation stops resampling (checked between shards) and returns the
// context's error instead of burning the remaining binomial draws. A nil
// error guarantees the interval is the same bit-identical result BootstrapCI
// computes.
func (c Counts) BootstrapCICtx(ctx context.Context, resamples int, conf float64, seed uint64) (lo, hi float64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if resamples <= 0 || c.Mapped == 0 || c.NotMapped == 0 {
		v := c.Capacity()
		return v, v, nil
	}
	key := bootstrapKey{c, resamples, conf, seed}
	if v, ok := bootstrapCache.Load(key); ok {
		cv := v.(bootstrapVal)
		return cv.lo, cv.hi, nil
	}
	p1, p2 := c.Probabilities()
	caps := make([]float64, resamples)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			caps[i] = c.resample(seed, i, p1, p2)
		}
	}
	// Each resample draws from a PRNG state derived from (seed, index)
	// alone, so the result is identical however the index range is split;
	// batch across goroutines only when the binomial draws amount to real
	// work (resamples × trials), since a campaign's 300×1000 draws matter
	// but a unit test's 50×20 would be all scheduling overhead.
	if work := resamples * (c.Mapped + c.NotMapped); work >= 1<<16 {
		shards := pool.Shards(resamples, pool.Workers(0))
		err := pool.New(len(shards)).ForEachCtx(ctx, len(shards), func(s int) {
			fill(shards[s].Lo, shards[s].Hi)
		})
		if err != nil {
			return 0, 0, err
		}
	} else {
		fill(0, resamples)
	}
	sortFloats(caps)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	if bootstrapCacheN.Add(1) <= bootstrapCacheCap {
		bootstrapCache.Store(key, bootstrapVal{caps[loIdx], caps[hiIdx]})
	} else {
		bootstrapCacheN.Add(-1)
	}
	return caps[loIdx], caps[hiIdx], nil
}

// bootstrapKey identifies one bootstrap computation. The interval is a pure
// function of these fields (resample seeds each replicate from (seed, index)
// alone), so it can be memoized process-wide: campaign re-runs, A/B
// comparisons and checkpoint resumes re-finalize identical counts, and the
// 300-resample bootstrap is a dominant fixed cost once trials replay from
// captured traces.
type bootstrapKey struct {
	counts    Counts
	resamples int
	conf      float64
	seed      uint64
}

type bootstrapVal struct{ lo, hi float64 }

// bootstrapCache maps bootstrapKey to bootstrapVal, bounded to cap memory on
// adversarial sweeps (beyond the cap every computation just runs).
var (
	bootstrapCache  sync.Map
	bootstrapCacheN atomic.Int32
)

const bootstrapCacheCap = 1 << 12

// resample draws one bootstrap replicate of the capacity. Its xorshift64*
// state is seeded independently per index with a splitmix64 finaliser, so
// replicates are order-independent: the serial and batched evaluations of
// BootstrapCI produce bit-identical intervals.
func (c Counts) resample(seed uint64, i int, p1, p2 float64) float64 {
	state := seed + (uint64(i)+1)*0x9e3779b97f4a7c15
	state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9
	state = (state ^ (state >> 27)) * 0x94d049bb133111eb
	state ^= state >> 31
	if state == 0 {
		state = 0x2545f4914f6cdd1d
	}
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state>>11) / float64(1<<53)
	}
	binom := func(n int, p float64) int {
		k := 0
		for j := 0; j < n; j++ {
			if next() < p {
				k++
			}
		}
		return k
	}
	r := Counts{
		Mapped: c.Mapped, MappedMisses: binom(c.Mapped, p1),
		NotMapped: c.NotMapped, NotMappedMisses: binom(c.NotMapped, p2),
	}
	return r.Capacity()
}

func sortFloats(v []float64) {
	// Insertion sort; resample counts are small (hundreds).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
