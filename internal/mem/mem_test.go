package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(20)
	lat, err := m.Store64(0x1000, 0xdeadbeef)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 20 {
		t.Errorf("store latency = %d, want 20", lat)
	}
	v, lat, err := m.Load64(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef || lat != 20 {
		t.Errorf("load = (%#x, %d)", v, lat)
	}
}

func TestUnallocatedReadsZero(t *testing.T) {
	m := New(0)
	v, _, err := m.Load64(0x123450)
	if err != nil || v != 0 {
		t.Errorf("unallocated load = (%#x, %v), want (0, nil)", v, err)
	}
	if m.AllocatedPages() != 0 {
		t.Error("a load must not allocate")
	}
}

func TestMisalignedAccess(t *testing.T) {
	m := New(0)
	if _, _, err := m.Load64(0x1001); err == nil {
		t.Error("misaligned load should error")
	}
	if _, err := m.Store64(0x1004, 1); err == nil {
		t.Error("misaligned (non-8-byte) store should error")
	}
}

func TestLazyAllocationGranularity(t *testing.T) {
	m := New(0)
	m.Store64(0x0000, 1)
	m.Store64(0x0ff8, 2) // same page
	m.Store64(0x1000, 3) // next page
	if got := m.AllocatedPages(); got != 2 {
		t.Errorf("allocated pages = %d, want 2", got)
	}
}

func TestAccessCounters(t *testing.T) {
	m := New(0)
	m.Store64(0, 1)
	m.Load64(0)
	m.Load64(8)
	if m.Writes != 1 || m.Reads != 2 {
		t.Errorf("counters = (r=%d, w=%d)", m.Reads, m.Writes)
	}
	m.Reset()
	if m.Reads != 0 || m.Writes != 0 || m.AllocatedPages() != 0 {
		t.Error("Reset should clear everything")
	}
	if v, _, _ := m.Load64(0); v != 0 {
		t.Error("contents should be dropped by Reset")
	}
}

func TestQuickStoreThenLoad(t *testing.T) {
	m := New(0)
	f := func(addrRaw uint32, val uint64) bool {
		addr := uint64(addrRaw) &^ 7
		if _, err := m.Store64(addr, val); err != nil {
			return false
		}
		got, _, err := m.Load64(addr)
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneSeesCurrentContents(t *testing.T) {
	m := New(20)
	m.Store64(0x1000, 111)
	m.Store64(0x2000, 222)
	c := m.Clone()
	if c.Latency() != 20 {
		t.Errorf("clone latency = %d, want 20", c.Latency())
	}
	for _, addr := range []uint64{0x1000, 0x2000} {
		want, _, _ := m.Load64(addr)
		got, _, err := c.Load64(addr)
		if err != nil || got != want {
			t.Errorf("clone[%#x] = %d, want %d (%v)", addr, got, want, err)
		}
	}
}

func TestCloneWritesAreIsolated(t *testing.T) {
	m := New(0)
	m.Store64(0x1000, 1)
	c := m.Clone()

	// Clone writes must not leak into the original, in the shared page or in
	// fresh pages.
	c.Store64(0x1000, 100)
	c.Store64(0x3000, 300)
	if v, _, _ := m.Load64(0x1000); v != 1 {
		t.Errorf("original[0x1000] = %d after clone write, want 1", v)
	}
	if v, _, _ := m.Load64(0x3000); v != 0 {
		t.Errorf("original[0x3000] = %d after clone write, want 0", v)
	}

	// And the original's writes must not leak into the clone.
	m.Store64(0x1008, 2)
	if v, _, _ := c.Load64(0x1008); v != 0 {
		t.Errorf("clone[0x1008] = %d after original write, want 0", v)
	}
	if v, _, _ := c.Load64(0x1000); v != 100 {
		t.Errorf("clone[0x1000] = %d, want its own 100", v)
	}
}

func TestCloneOfCloneAndInterleavedWrites(t *testing.T) {
	// A template cloned repeatedly, with writes between clones: each clone
	// snapshots the template's state at clone time.
	m := New(0)
	m.Store64(0x1000, 1)
	c1 := m.Clone()
	m.Store64(0x1000, 2)
	c2 := m.Clone()
	m.Store64(0x1000, 3)
	c3 := c2.Clone()
	c2.Store64(0x1000, 22)
	for _, tc := range []struct {
		name string
		mem  *Memory
		want uint64
	}{
		{"template", m, 3}, {"c1", c1, 1}, {"c2", c2, 22}, {"c3 (clone of c2)", c3, 2},
	} {
		if v, _, _ := tc.mem.Load64(0x1000); v != tc.want {
			t.Errorf("%s[0x1000] = %d, want %d", tc.name, v, tc.want)
		}
	}
}

func TestCloneReadDoesNotCopy(t *testing.T) {
	m := New(0)
	for i := uint64(0); i < 8; i++ {
		m.Store64(i<<PageShift, i)
	}
	c := m.Clone()
	for i := uint64(0); i < 8; i++ {
		c.Load64(i << PageShift)
	}
	// Reads on either side keep sharing frames; only writes un-share.
	if got := c.AllocatedPages(); got != 8 {
		t.Errorf("clone pages = %d, want 8 shared", got)
	}
	c.Store64(0, 99)
	if v, _, _ := m.Load64(0); v != 0 {
		t.Error("write-after-read must still copy-on-write")
	}
}

func TestQuickDistinctAddressesIndependent(t *testing.T) {
	f := func(a32, b32 uint32, va, vb uint64) bool {
		a, b := uint64(a32)&^7, uint64(b32)&^7
		if a == b {
			return true
		}
		m := New(0)
		m.Store64(a, va)
		m.Store64(b, vb)
		ga, _, _ := m.Load64(a)
		gb, _, _ := m.Load64(b)
		return ga == va && gb == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkClone(b *testing.B) {
	// A realistic campaign footprint: a few hundred touched pages.
	m := New(DefaultLatency)
	for p := 0; p < 300; p++ {
		m.Store64(uint64(p)<<PageShift, uint64(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Clone()
	}
}

func BenchmarkCloneThenWrite(b *testing.B) {
	// Cost of the first post-clone write to a shared page (the copy).
	m := New(DefaultLatency)
	for p := 0; p < 300; p++ {
		m.Store64(uint64(p)<<PageShift, uint64(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		c.Store64(0, uint64(i))
	}
}
