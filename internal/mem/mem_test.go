package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(20)
	lat, err := m.Store64(0x1000, 0xdeadbeef)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 20 {
		t.Errorf("store latency = %d, want 20", lat)
	}
	v, lat, err := m.Load64(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef || lat != 20 {
		t.Errorf("load = (%#x, %d)", v, lat)
	}
}

func TestUnallocatedReadsZero(t *testing.T) {
	m := New(0)
	v, _, err := m.Load64(0x123450)
	if err != nil || v != 0 {
		t.Errorf("unallocated load = (%#x, %v), want (0, nil)", v, err)
	}
	if m.AllocatedPages() != 0 {
		t.Error("a load must not allocate")
	}
}

func TestMisalignedAccess(t *testing.T) {
	m := New(0)
	if _, _, err := m.Load64(0x1001); err == nil {
		t.Error("misaligned load should error")
	}
	if _, err := m.Store64(0x1004, 1); err == nil {
		t.Error("misaligned (non-8-byte) store should error")
	}
}

func TestLazyAllocationGranularity(t *testing.T) {
	m := New(0)
	m.Store64(0x0000, 1)
	m.Store64(0x0ff8, 2) // same page
	m.Store64(0x1000, 3) // next page
	if got := m.AllocatedPages(); got != 2 {
		t.Errorf("allocated pages = %d, want 2", got)
	}
}

func TestAccessCounters(t *testing.T) {
	m := New(0)
	m.Store64(0, 1)
	m.Load64(0)
	m.Load64(8)
	if m.Writes != 1 || m.Reads != 2 {
		t.Errorf("counters = (r=%d, w=%d)", m.Reads, m.Writes)
	}
	m.Reset()
	if m.Reads != 0 || m.Writes != 0 || m.AllocatedPages() != 0 {
		t.Error("Reset should clear everything")
	}
	if v, _, _ := m.Load64(0); v != 0 {
		t.Error("contents should be dropped by Reset")
	}
}

func TestQuickStoreThenLoad(t *testing.T) {
	m := New(0)
	f := func(addrRaw uint32, val uint64) bool {
		addr := uint64(addrRaw) &^ 7
		if _, err := m.Store64(addr, val); err != nil {
			return false
		}
		got, _, err := m.Load64(addr)
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistinctAddressesIndependent(t *testing.T) {
	f := func(a32, b32 uint32, va, vb uint64) bool {
		a, b := uint64(a32)&^7, uint64(b32)&^7
		if a == b {
			return true
		}
		m := New(0)
		m.Store64(a, va)
		m.Store64(b, vb)
		ga, _, _ := m.Load64(a)
		gb, _, _ := m.Load64(b)
		return ga == va && gb == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
