// Package mem models the physical memory of the simulated machine.
//
// Memory is allocated lazily at page granularity (4 KiB pages of 64-bit
// words) so large sparse address spaces — such as the multi-gigabyte
// synthetic SPEC working sets of the performance evaluation — cost only what
// they touch. Every access carries a fixed latency in cycles; the page table
// walker charges this latency per level, which is what makes a TLB miss
// "slow" relative to a hit and so creates the timing channel the paper
// studies.
package mem

import "fmt"

// PageShift is log2 of the page size.
const PageShift = 12

// PageSize is the page size in bytes.
const PageSize = 1 << PageShift

// WordsPerPage is the number of 64-bit words in a page.
const WordsPerPage = PageSize / 8

// DefaultLatency is the default cost, in cycles, of one memory access. With
// a three-level page walk this yields the 60-cycle miss penalty used
// throughout the evaluation.
const DefaultLatency = 20

// Memory is a lazily-allocated physical memory.
//
// The zero value is not ready to use; call New.
type Memory struct {
	pages   map[uint64]*[WordsPerPage]uint64
	latency uint64
	// Reads and Writes count accesses, for diagnostics and tests.
	Reads  uint64
	Writes uint64
}

// New returns an empty memory with the given per-access latency in cycles.
// A latency of zero is allowed (infinitely fast memory) and useful in unit
// tests.
func New(latency uint64) *Memory {
	return &Memory{pages: make(map[uint64]*[WordsPerPage]uint64), latency: latency}
}

// Latency returns the per-access cost in cycles.
func (m *Memory) Latency() uint64 { return m.latency }

// page returns the backing page for a physical address, allocating it if
// alloc is true. Returns nil for absent pages when alloc is false.
func (m *Memory) page(paddr uint64, alloc bool) *[WordsPerPage]uint64 {
	ppn := paddr >> PageShift
	p := m.pages[ppn]
	if p == nil && alloc {
		p = new([WordsPerPage]uint64)
		m.pages[ppn] = p
	}
	return p
}

// Load64 reads the 64-bit word at physical address paddr, returning the
// value and the access latency. paddr must be 8-byte aligned. Reading an
// unallocated location returns zero, like freshly cleared DRAM.
func (m *Memory) Load64(paddr uint64) (uint64, uint64, error) {
	if paddr%8 != 0 {
		return 0, 0, fmt.Errorf("mem: misaligned 64-bit load at %#x", paddr)
	}
	m.Reads++
	p := m.page(paddr, false)
	if p == nil {
		return 0, m.latency, nil
	}
	return p[(paddr%PageSize)/8], m.latency, nil
}

// Store64 writes the 64-bit word at physical address paddr, returning the
// access latency. paddr must be 8-byte aligned.
func (m *Memory) Store64(paddr, value uint64) (uint64, error) {
	if paddr%8 != 0 {
		return 0, fmt.Errorf("mem: misaligned 64-bit store at %#x", paddr)
	}
	m.Writes++
	p := m.page(paddr, true)
	p[(paddr%PageSize)/8] = value
	return m.latency, nil
}

// AllocatedPages returns how many distinct physical pages have been touched
// by stores.
func (m *Memory) AllocatedPages() int { return len(m.pages) }

// Reset drops all contents and counters, returning the memory to its
// post-New state.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*[WordsPerPage]uint64)
	m.Reads, m.Writes = 0, 0
}
