// Package mem models the physical memory of the simulated machine.
//
// Memory is allocated lazily at page granularity (4 KiB pages of 64-bit
// words) so large sparse address spaces — such as the multi-gigabyte
// synthetic SPEC working sets of the performance evaluation — cost only what
// they touch. Every access carries a fixed latency in cycles; the page table
// walker charges this latency per level, which is what makes a TLB miss
// "slow" relative to a hit and so creates the timing channel the paper
// studies.
//
// Memories support cheap replication via Clone, which shares page frames
// copy-on-write: the parallel security campaigns clone one loaded machine
// per worker, so an N-worker campaign pays the program load once and each
// clone costs only a map copy until (unless) it writes.
package mem

import "fmt"

// PageShift is log2 of the page size.
const PageShift = 12

// PageSize is the page size in bytes.
const PageSize = 1 << PageShift

// WordsPerPage is the number of 64-bit words in a page.
const WordsPerPage = PageSize / 8

// DefaultLatency is the default cost, in cycles, of one memory access. With
// a three-level page walk this yields the 60-cycle miss penalty used
// throughout the evaluation.
const DefaultLatency = 20

// Memory is a lazily-allocated physical memory.
//
// The zero value is not ready to use; call New.
type Memory struct {
	pages   map[uint64]*[WordsPerPage]uint64
	latency uint64
	// owned tracks which pages this Memory may mutate in place. nil means
	// the memory has never been cloned and owns everything (the common,
	// zero-overhead case); after a Clone both sides start owning nothing and
	// copy a page on first write.
	owned map[uint64]bool
	// lastPPN/lastPage cache the most recently accessed page, short-cutting
	// the map lookup on the page-walk and data paths where consecutive
	// accesses hit the same page (e.g. the three PTE reads of a walk within
	// one table, or a pointer-chasing loop).
	lastPPN  uint64
	lastPage *[WordsPerPage]uint64
	// Reads and Writes count accesses, for diagnostics and tests.
	Reads  uint64
	Writes uint64
	// loadHook, when set, may rewrite the value returned by Load64 (fault
	// injection: in-DRAM bit rot). See SetLoadHook.
	loadHook LoadHook
}

// LoadHook intercepts 64-bit loads for fault injection: it receives the
// physical address and true stored value and returns the value actually
// delivered. It observes every load, including page-table-entry reads.
type LoadHook func(paddr, value uint64) uint64

// SetLoadHook installs h as the memory's fault-injection hook, or removes it
// when h is nil. Clones made with Clone do not inherit the hook: fault
// injection is per-machine campaign state.
func (m *Memory) SetLoadHook(h LoadHook) { m.loadHook = h }

// New returns an empty memory with the given per-access latency in cycles.
// A latency of zero is allowed (infinitely fast memory) and useful in unit
// tests.
func New(latency uint64) *Memory {
	return &Memory{pages: make(map[uint64]*[WordsPerPage]uint64), latency: latency}
}

// Latency returns the per-access cost in cycles.
func (m *Memory) Latency() uint64 { return m.latency }

// page returns the backing page for a physical address for reading, or nil
// for absent pages. Shared (copy-on-write) pages may be returned; callers
// must not write through the result.
func (m *Memory) page(paddr uint64) *[WordsPerPage]uint64 {
	ppn := paddr >> PageShift
	if m.lastPage != nil && m.lastPPN == ppn {
		return m.lastPage
	}
	p := m.pages[ppn]
	if p != nil {
		m.lastPPN, m.lastPage = ppn, p
	}
	return p
}

// pageForWrite returns a page this Memory may mutate, allocating it if
// absent and un-sharing it (copying) if it is held copy-on-write.
func (m *Memory) pageForWrite(paddr uint64) *[WordsPerPage]uint64 {
	ppn := paddr >> PageShift
	p := m.pages[ppn]
	switch {
	case p == nil:
		p = new([WordsPerPage]uint64)
		m.pages[ppn] = p
	case m.owned != nil && !m.owned[ppn]:
		cp := *p
		p = &cp
		m.pages[ppn] = p
	}
	if m.owned != nil {
		m.owned[ppn] = true
	}
	m.lastPPN, m.lastPage = ppn, p
	return p
}

// Load64 reads the 64-bit word at physical address paddr, returning the
// value and the access latency. paddr must be 8-byte aligned. Reading an
// unallocated location returns zero, like freshly cleared DRAM.
func (m *Memory) Load64(paddr uint64) (uint64, uint64, error) {
	if paddr%8 != 0 {
		return 0, 0, fmt.Errorf("mem: misaligned 64-bit load at %#x", paddr)
	}
	m.Reads++
	var v uint64
	if p := m.page(paddr); p != nil {
		v = p[(paddr%PageSize)/8]
	}
	if m.loadHook != nil {
		v = m.loadHook(paddr, v)
	}
	return v, m.latency, nil
}

// Store64 writes the 64-bit word at physical address paddr, returning the
// access latency. paddr must be 8-byte aligned.
func (m *Memory) Store64(paddr, value uint64) (uint64, error) {
	if paddr%8 != 0 {
		return 0, fmt.Errorf("mem: misaligned 64-bit store at %#x", paddr)
	}
	m.Writes++
	p := m.pageForWrite(paddr)
	p[(paddr%PageSize)/8] = value
	return m.latency, nil
}

// AllocatedPages returns how many distinct physical pages have been touched
// by stores.
func (m *Memory) AllocatedPages() int { return len(m.pages) }

// Reset drops all contents and counters, returning the memory to its
// post-New state.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*[WordsPerPage]uint64)
	m.owned = nil
	m.lastPage, m.lastPPN = nil, 0
	m.Reads, m.Writes = 0, 0
}

// Clone returns a copy-on-write replica: the clone observes exactly the
// current contents (and inherits the access counters), but writes on either
// side are private to it. The clone costs one map copy; page frames are
// shared until first write, which is what makes per-worker machine
// replication in the parallel campaigns cheap.
//
// Clone updates the receiver's copy-on-write bookkeeping, so calls on the
// same Memory must be serialised by the caller; the returned memories are
// then fully independent and safe for concurrent use (one goroutine each).
func (m *Memory) Clone() *Memory {
	// After a clone neither side owns the shared frames.
	m.owned = make(map[uint64]bool, len(m.pages))
	m.lastPage, m.lastPPN = nil, 0
	pages := make(map[uint64]*[WordsPerPage]uint64, len(m.pages))
	for ppn, p := range m.pages {
		pages[ppn] = p
	}
	return &Memory{
		pages:   pages,
		latency: m.latency,
		owned:   make(map[uint64]bool, len(pages)),
		Reads:   m.Reads,
		Writes:  m.Writes,
	}
}
