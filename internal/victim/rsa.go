// Package victim implements the security-critical workload of the paper:
// the libgcrypt-style RSA modular exponentiation of Figure 5, restructured
// so that its page-access pattern is explicit.
//
// The paper's attack surface is the _gcry_mpi_powm loop: per secret exponent
// bit, the square (xp ← rp²) and the mitigation's unconditional multiply
// touch the rp and xp MPI pages, while the pointer swap through tp happens
// only when the bit is 1 (Figure 5's red square). TLBleed recovers the key
// by watching, per iteration, whether tp's page produced TLB activity.
//
// This package computes real modular exponentiations (square-and-multiply
// over math/big, verified against big.Exp) while emitting the page-touch
// trace of each iteration. The MPI buffers live on three dedicated pages —
// rp, xp and tp — which are exactly the 3 secure .data pages the paper
// protects in its SecRSA configuration (§6.2).
package victim

import (
	"fmt"
	"math/big"

	"securetlb/internal/tlb"
)

// Layout fixes the virtual pages of the victim's working set. RP, XP and TP
// are the three MPI data pages (the paper's secure region); Code is the
// text page the loop itself touches every iteration.
type Layout struct {
	Code tlb.VPN
	RP   tlb.VPN
	XP   tlb.VPN
	TP   tlb.VPN
}

// DefaultLayout places the three data pages contiguously — the secure
// region [RP, RP+3) — with TP mapping to a different TLB set than RP and XP
// for any set count ≥ 2, which is what lets a Prime+Probe attacker isolate
// tp's activity.
var DefaultLayout = Layout{Code: 0x400, RP: 0x500, XP: 0x501, TP: 0x502}

// SecureRegion returns the base and size (pages) of the secure region
// covering the MPI data pages.
func (l Layout) SecureRegion() (tlb.VPN, uint64) { return l.RP, 3 }

// BitTrace is the page-access trace of one exponent-bit iteration.
type BitTrace struct {
	Bit   uint // the secret bit processed
	Pages []tlb.VPN
}

// RSA is a toy-scale but arithmetically real RSA instance.
type RSA struct {
	N, E, D *big.Int
	Layout  Layout
}

// rng64 is a splitmix64 stream for deterministic key generation.
type rng64 uint64

func (r *rng64) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randPrime deterministically finds a prime of the given bit length.
func randPrime(r *rng64, bits int) *big.Int {
	for {
		raw := new(big.Int)
		for raw.BitLen() < bits {
			raw.Lsh(raw, 64)
			raw.Or(raw, new(big.Int).SetUint64(r.next()))
		}
		raw.SetBit(raw, 0, 1)      // odd
		raw.SetBit(raw, bits-1, 1) // full length
		mask := new(big.Int).Lsh(big.NewInt(1), uint(bits))
		raw.Mod(raw, mask)
		raw.SetBit(raw, bits-1, 1)
		if raw.ProbablyPrime(32) {
			return raw
		}
	}
}

// NewRSA generates a deterministic keypair with an n of roughly 2*bits
// bits. bits must be at least 8.
func NewRSA(bits int, seed uint64) (*RSA, error) {
	if bits < 8 {
		return nil, fmt.Errorf("victim: prime size %d too small", bits)
	}
	r := rng64(seed)
	e := big.NewInt(65537)
	for {
		p := randPrime(&r, bits)
		q := randPrime(&r, bits)
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, big.NewInt(1)), new(big.Int).Sub(q, big.NewInt(1)))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		return &RSA{N: n, E: new(big.Int).Set(e), D: d, Layout: DefaultLayout}, nil
	}
}

// Encrypt computes m^e mod n.
func (r *RSA) Encrypt(m *big.Int) *big.Int {
	return new(big.Int).Exp(m, r.E, r.N)
}

// Decrypt computes c^d mod n with an explicit left-to-right
// square-and-multiply loop mirroring Figure 5, returning the plaintext and
// the per-bit page trace. The multiply is unconditional (the FLUSH+RELOAD
// mitigation of Figure 5 lines 9–13); only the pointer swap through tp
// depends on the bit.
func (r *RSA) Decrypt(c *big.Int) (*big.Int, []BitTrace) {
	return r.exponentiate(c, r.D)
}

// exponentiate is the traced square-and-multiply core.
func (r *RSA) exponentiate(base, exp *big.Int) (*big.Int, []BitTrace) {
	l := r.Layout
	rp := big.NewInt(1) // result accumulator (page RP)
	xp := new(big.Int)  // scratch (page XP)
	b := new(big.Int).Mod(base, r.N)
	traces := make([]BitTrace, 0, exp.BitLen())
	for i := exp.BitLen() - 1; i >= 0; i-- {
		bit := exp.Bit(i)
		tr := BitTrace{Bit: bit}
		touch := func(p tlb.VPN) { tr.Pages = append(tr.Pages, p) }
		touch(l.Code)
		// _gcry_mpih_sqr_n_basecase(xp, rp): read rp, write xp.
		xp.Mul(rp, rp)
		xp.Mod(xp, r.N)
		touch(l.RP)
		touch(l.XP)
		// Unconditional _gcry_mpih_mul(xp, rp) guarded only by
		// secret_exponent: compute the product either way.
		prod := new(big.Int).Mul(xp, b)
		prod.Mod(prod, r.N)
		touch(l.XP)
		touch(l.RP)
		if bit == 1 {
			// tp = rp; rp = xp; xp = tp — the pointer swap that touches
			// tp's page only on a set bit.
			rp.Set(prod)
			touch(l.TP)
		} else {
			rp.Set(xp)
		}
		traces = append(traces, tr)
	}
	return rp, traces
}

// KeyBits returns d's bits most-significant first, matching the order of
// the traces Decrypt emits.
func (r *RSA) KeyBits() []uint {
	bits := make([]uint, r.D.BitLen())
	for i := range bits {
		bits[i] = r.D.Bit(r.D.BitLen() - 1 - i)
	}
	return bits
}

// FlatTrace concatenates the page accesses of a decryption, the form the
// performance workloads replay.
func FlatTrace(traces []BitTrace) []tlb.VPN {
	var out []tlb.VPN
	for _, tr := range traces {
		out = append(out, tr.Pages...)
	}
	return out
}

// AddrOf returns the representative byte address the loop dereferences on a
// given page: each MPI pointer lives at its own cache-line offset, so the
// pages are distinguishable at both page (TLB) and line (cache) granularity.
func (l Layout) AddrOf(p tlb.VPN) uint64 {
	base := uint64(p) << tlb.PageShift
	switch p {
	case l.RP:
		return base + 0x40
	case l.XP:
		return base + 0x80
	case l.TP:
		return base + 0xC0
	}
	return base
}
