package victim

import (
	"math/big"
	"testing"
	"testing/quick"

	"securetlb/internal/tlb"
)

func newRSA(t *testing.T) *RSA {
	t.Helper()
	r, err := NewRSA(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	r := newRSA(t)
	m := big.NewInt(0xdeadbeefcafe)
	c := r.Encrypt(m)
	got, traces := r.Decrypt(c)
	if got.Cmp(m) != 0 {
		t.Fatalf("decrypt = %v, want %v", got, m)
	}
	if len(traces) != r.D.BitLen() {
		t.Errorf("traces = %d, want %d (one per exponent bit)", len(traces), r.D.BitLen())
	}
}

func TestMatchesBigExp(t *testing.T) {
	r := newRSA(t)
	for i := int64(2); i < 30; i++ {
		c := big.NewInt(i * 997)
		want := new(big.Int).Exp(c, r.D, r.N)
		got, _ := r.exponentiate(c, r.D)
		if got.Cmp(want) != 0 {
			t.Fatalf("exponentiate(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestQuickMatchesBigExp(t *testing.T) {
	r := newRSA(t)
	f := func(raw uint64) bool {
		c := new(big.Int).SetUint64(raw)
		want := new(big.Int).Exp(c, r.D, r.N)
		got, _ := r.exponentiate(c, r.D)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTraceLeaksKeyBits(t *testing.T) {
	// The defining property: tp's page appears in an iteration's trace
	// exactly when that exponent bit is 1, and rp/xp/code appear always.
	r := newRSA(t)
	_, traces := r.Decrypt(big.NewInt(123456789))
	bits := r.KeyBits()
	if len(bits) != len(traces) {
		t.Fatalf("bits %d vs traces %d", len(bits), len(traces))
	}
	for i, tr := range traces {
		if tr.Bit != bits[i] {
			t.Fatalf("trace %d records bit %d, key has %d", i, tr.Bit, bits[i])
		}
		sawTP, sawRP, sawXP, sawCode := false, false, false, false
		for _, p := range tr.Pages {
			switch p {
			case r.Layout.TP:
				sawTP = true
			case r.Layout.RP:
				sawRP = true
			case r.Layout.XP:
				sawXP = true
			case r.Layout.Code:
				sawCode = true
			}
		}
		if sawTP != (bits[i] == 1) {
			t.Errorf("iteration %d (bit %d): tp touched = %v", i, bits[i], sawTP)
		}
		if !sawRP || !sawXP || !sawCode {
			t.Errorf("iteration %d: rp/xp/code must always be touched", i)
		}
	}
}

func TestKeyHasBothBitValues(t *testing.T) {
	// The attack demos need a key with a healthy mix of 0s and 1s.
	r := newRSA(t)
	ones := 0
	bits := r.KeyBits()
	for _, b := range bits {
		ones += int(b)
	}
	if ones < len(bits)/4 || ones > 3*len(bits)/4 {
		t.Errorf("key bit balance %d/%d is degenerate", ones, len(bits))
	}
}

func TestDeterministicKeyGen(t *testing.T) {
	a, err := NewRSA(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRSA(32, 7)
	if a.N.Cmp(b.N) != 0 || a.D.Cmp(b.D) != 0 {
		t.Error("same seed must generate the same key")
	}
	c, _ := NewRSA(32, 8)
	if a.N.Cmp(c.N) == 0 {
		t.Error("different seeds should generate different keys")
	}
}

func TestLayoutSecureRegion(t *testing.T) {
	base, size := DefaultLayout.SecureRegion()
	if base != DefaultLayout.RP || size != 3 {
		t.Errorf("secure region = (%#x,%d)", base, size)
	}
	// The three MPI pages are contiguous (the paper's 3 .data pages).
	if DefaultLayout.XP != DefaultLayout.RP+1 || DefaultLayout.TP != DefaultLayout.RP+2 {
		t.Error("MPI pages must be contiguous")
	}
}

func TestFlatTrace(t *testing.T) {
	r := newRSA(t)
	_, traces := r.Decrypt(big.NewInt(5))
	flat := FlatTrace(traces)
	n := 0
	for _, tr := range traces {
		n += len(tr.Pages)
	}
	if len(flat) != n {
		t.Errorf("flat length %d, want %d", len(flat), n)
	}
}

func TestNewRSARejectsTinyPrimes(t *testing.T) {
	if _, err := NewRSA(4, 1); err == nil {
		t.Error("tiny primes should be rejected")
	}
}

func TestAddrOf(t *testing.T) {
	l := DefaultLayout
	seen := map[uint64]bool{}
	for _, p := range []struct {
		page tlb.VPN
	}{{l.Code}, {l.RP}, {l.XP}, {l.TP}} {
		addr := l.AddrOf(p.page)
		if addr>>tlb.PageShift != uint64(p.page) {
			t.Errorf("AddrOf(%#x) = %#x not on its page", p.page, addr)
		}
		line := (addr >> 6) % 8 // 64B lines, 8 cache sets
		if seen[line] {
			t.Errorf("page %#x shares a cache set with another pointer", p.page)
		}
		seen[line] = true
	}
}
