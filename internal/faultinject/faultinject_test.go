package faultinject

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securetlb/internal/tlb"
)

func walker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(uint64(vpn)<<4 | uint64(asid)), 60, nil
	})
}

func TestParseSite(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(string(s))
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSite("no-such-site"); err == nil {
		t.Error("ParseSite accepted an unknown site")
	}
}

// TestMachineSitesFire arms each machine site on the design it targets — the
// RI TLB for the re-key site, the FS TLB for the flush site, the RF TLB
// (superset of the remaining hooks) otherwise — and drives traffic until the
// fault lands.
func TestMachineSitesFire(t *testing.T) {
	for _, site := range MachineSites() {
		if site == SiteWalkCorrupt || site == SiteMemBitRot {
			continue // need a real ptw/mem; covered by the secbench matrix
		}
		t.Run(string(site), func(t *testing.T) {
			var design tlb.TLB
			var err error
			switch {
			case site.RIOnly():
				design, err = tlb.NewRandIdx(32, 8, walker(), 0x5eed, 8)
			case site.FSOnly():
				design, err = tlb.NewFlushOnSwitch(32, 8, walker())
			default:
				var rf *tlb.RF
				rf, err = tlb.NewRF(32, 8, walker(), 0x5eed)
				if rf != nil {
					rf.SetVictim(1)
					rf.SetSecureRegion(0x100, 8)
				}
				design = rf
			}
			if err != nil {
				t.Fatal(err)
			}
			in := New(site, 0xfa01)
			if err := in.Arm(design, nil, nil); err != nil {
				t.Fatal(err)
			}
			defer in.Disarm()
			for i := 0; i < 64 && !in.Fired(); i++ {
				// Mix attacker traffic with victim secure-region traffic so
				// every event class (fills, hits, touches, draws, context
				// switches, re-keys) occurs.
				design.Translate(0, tlb.VPN(i%12))
				design.Translate(1, tlb.VPN(0x100+i%8))
				design.Translate(0, tlb.VPN(i%12))
			}
			if !in.Fired() {
				t.Fatalf("site %s never fired", site)
			}
			if in.Detail() == "" {
				t.Error("fired injector has no detail")
			}
		})
	}
}

// TestDeterministic requires two injectors with the same (site, seed) to land
// the identical fault on identical traffic.
func TestDeterministic(t *testing.T) {
	run := func() string {
		sa, err := tlb.NewSetAssoc(32, 8, walker())
		if err != nil {
			t.Fatal(err)
		}
		in := New(SiteTagFlip, 0xdead)
		if err := in.Arm(sa, nil, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			sa.Translate(0, tlb.VPN(i))
		}
		in.Disarm()
		return in.Detail()
	}
	a, b := run(), run()
	if a == "" || a != b {
		t.Fatalf("non-deterministic injection: %q vs %q", a, b)
	}
	// A different seed must (for this pair) make a different decision.
	sa, _ := tlb.NewSetAssoc(32, 8, walker())
	in := New(SiteTagFlip, 0xbeef)
	in.Arm(sa, nil, nil)
	for i := 0; i < 32; i++ {
		sa.Translate(0, tlb.VPN(i))
	}
	in.Disarm()
	if in.Detail() == a {
		t.Errorf("seeds 0xdead and 0xbeef produced the identical fault %q", a)
	}
}

func TestDisarmRemovesHooks(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, walker())
	in := New(SiteDropFill, 1)
	if err := in.Arm(sa, nil, nil); err != nil {
		t.Fatal(err)
	}
	in.Disarm()
	for i := 0; i < 16; i++ {
		sa.Translate(0, tlb.VPN(i))
	}
	if in.Fired() {
		t.Error("disarmed injector still fired")
	}
}

func TestArmRejectsMisuse(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, walker())
	if err := New(SiteRNGBias, 1).Arm(sa, nil, nil); err == nil {
		t.Error("rng-bias armed on a non-RF design")
	}
	if err := New(SiteWalkCorrupt, 1).Arm(sa, nil, nil); err == nil {
		t.Error("walk-corrupt armed without page tables")
	}
	if err := New(SiteMemBitRot, 1).Arm(sa, nil, nil); err == nil {
		t.Error("mem-bit-rot armed without a memory")
	}
	if err := New(SiteCheckpointTruncate, 1).Arm(sa, nil, nil); err == nil {
		t.Error("at-rest site armed on a machine")
	}
}

func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	content := []byte(`{"version":2,"units":{"a":1234567890}}`)

	path := filepath.Join(dir, "trunc.json")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	detail, err := CorruptFile(SiteCheckpointTruncate, path, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if len(got) >= len(content) {
		t.Errorf("truncation did not shrink the file: %d -> %d (%s)", len(content), len(got), detail)
	}

	path = filepath.Join(dir, "rot.json")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	detail, err = CorruptFile(SiteCheckpointBitRot, path, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if len(got) != len(content) || string(got) == string(content) {
		t.Errorf("bit rot did not flip exactly in place (%s)", detail)
	}
	if !strings.Contains(detail, "flipped bit") {
		t.Errorf("detail = %q", detail)
	}

	if _, err := CorruptFile(SiteTagFlip, path, 1); err == nil {
		t.Error("CorruptFile accepted a machine site")
	}
}
