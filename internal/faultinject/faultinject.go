// Package faultinject is a seeded, fully deterministic fault campaign
// engine for the TLB simulator. It injects hardware-style faults at named
// sites — TLB entry tag/PPN/Sec-bit flips, dropped or duplicated fills,
// stuck LRU updates, a biased Random Fill Engine RNG, page-table-walk
// corruption, in-memory bit rot, and checkpoint-file truncation or bit rot —
// through the small injection hooks the tlb, ptw, mem and checkpoint
// packages expose.
//
// Everything an injector does is a pure function of (site, seed): which
// event ordinal triggers the fault, which entry or bit is corrupted, and
// what the corruption is. The differential harness in internal/secbench
// relies on this to re-run identical faulted campaigns and to replay any
// single faulted trial from its recorded seed.
//
// An Injector is armed on one machine's components for one trial and
// disarmed afterwards; it fires at most once (hard faults are modelled as
// transient single-event upsets, which are both the common physical case and
// the hardest to detect). Fired and Detail report whether and how the fault
// actually landed, so harnesses can distinguish latent trials (the trigger
// ordinal was never reached) from benign ones (the fault landed but did not
// change the outcome).
package faultinject

import (
	"fmt"
	"os"

	"securetlb/internal/mem"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
)

// Site names one fault-injection site.
type Site string

// The registered fault sites.
const (
	// SiteTagFlip flips one virtual-page-number bit of a resident TLB entry
	// mid-access (an SRAM upset in the tag array).
	SiteTagFlip Site = "tlb-tag-flip"
	// SitePPNFlip flips one physical-page-number bit of a resident TLB
	// entry (an upset in the data array — returns wrong translations).
	SitePPNFlip Site = "tlb-ppn-flip"
	// SiteSecFlip flips the Sec bit of a resident entry (RF TLB only): the
	// bit carrying the paper's secure-region confinement guarantee.
	SiteSecFlip Site = "tlb-sec-flip"
	// SiteDropFill loses a fill's array write while the control logic
	// reports it as performed.
	SiteDropFill Site = "tlb-drop-fill"
	// SiteDupFill installs one fill into two ways at once (a way-decoder
	// fault), duplicating the translation.
	SiteDupFill Site = "tlb-dup-fill"
	// SiteStuckLRU suppresses one hit's LRU stamp refresh (stuck replacement
	// state — the property per-set LRU order rests on).
	SiteStuckLRU Site = "tlb-stuck-lru"
	// SiteRNGBias perturbs one Random Fill Engine draw (RF TLB only),
	// breaking the uniformity the paper's security analysis assumes.
	SiteRNGBias Site = "rf-rng-bias"
	// SiteRandIdxKeyStuck makes one RI TLB re-key keep the outgoing key (RI
	// TLB only): the array flushes but the index mapping never changes, so
	// the periodic re-randomization the design's security rests on silently
	// stops.
	SiteRandIdxKeyStuck Site = "randidx-key-stuck"
	// SiteFlushSwDropped drops one FS TLB design-initiated flush (FS TLB
	// only): a lost invalidation strobe at a context switch or secure-region
	// exit, leaving the previous context's entries observable.
	SiteFlushSwDropped Site = "flushsw-flush-dropped"
	// SiteWalkCorrupt flips one PPN bit in a successful page-table walk's
	// result before the TLB sees it.
	SiteWalkCorrupt Site = "ptw-walk-corrupt"
	// SiteMemBitRot flips one bit of one 64-bit load from physical memory
	// (DRAM rot; page-table entries included).
	SiteMemBitRot Site = "mem-bit-rot"
	// SiteCheckpointTruncate cuts a checkpoint file short, as a torn write
	// or partial copy would.
	SiteCheckpointTruncate Site = "checkpoint-truncate"
	// SiteCheckpointBitRot flips one bit of a checkpoint file on disk.
	SiteCheckpointBitRot Site = "checkpoint-bit-rot"
)

// Sites returns every registered site, in stable order.
func Sites() []Site {
	return []Site{
		SiteTagFlip, SitePPNFlip, SiteSecFlip, SiteDropFill, SiteDupFill,
		SiteStuckLRU, SiteRNGBias, SiteRandIdxKeyStuck, SiteFlushSwDropped,
		SiteWalkCorrupt, SiteMemBitRot,
		SiteCheckpointTruncate, SiteCheckpointBitRot,
	}
}

// MachineSites returns the sites armed on a running machine (everything but
// the checkpoint-file sites, which corrupt data at rest via CorruptFile).
func MachineSites() []Site {
	return []Site{
		SiteTagFlip, SitePPNFlip, SiteSecFlip, SiteDropFill, SiteDupFill,
		SiteStuckLRU, SiteRNGBias, SiteRandIdxKeyStuck, SiteFlushSwDropped,
		SiteWalkCorrupt, SiteMemBitRot,
	}
}

// ParseSite validates a site name.
func ParseSite(s string) (Site, error) {
	for _, site := range Sites() {
		if s == string(site) {
			return site, nil
		}
	}
	return "", fmt.Errorf("faultinject: unknown site %q (want one of %v)", s, Sites())
}

// RFOnly reports whether the site is meaningful only on the RF design.
func (s Site) RFOnly() bool { return s == SiteSecFlip || s == SiteRNGBias }

// RIOnly reports whether the site is meaningful only on the RI design.
func (s Site) RIOnly() bool { return s == SiteRandIdxKeyStuck }

// FSOnly reports whether the site is meaningful only on the FS design.
func (s Site) FSOnly() bool { return s == SiteFlushSwDropped }

// splitmix64 is the seed-expansion step: successive calls on an evolving
// state yield the independent decision streams an injector needs.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Injector injects one seeded fault at one site. Use New, Arm on a trial's
// machine components, run the trial, then Disarm.
type Injector struct {
	site Site
	seed uint64

	// trigger is the 1-based event ordinal at which the fault fires; r1/r2
	// are pre-drawn decision values (entry choice, bit choice).
	trigger uint64
	r1, r2  uint64

	count  uint64
	fired  bool
	detail string

	insp tlb.Inspectable
	pt   *ptw.PageTables
	m    *mem.Memory
}

// New returns an injector for site whose every decision derives from seed.
func New(site Site, seed uint64) *Injector {
	state := seed ^ uint64(len(site))<<56
	for _, b := range []byte(site) {
		state = state*0x100000001b3 + uint64(b)
	}
	in := &Injector{site: site, seed: seed}
	// Trigger windows are sized to each event's frequency in the micro
	// benchmarks, so the fault lands within a typical trial.
	window := uint64(8)
	switch site {
	case SiteDropFill, SiteDupFill, SiteStuckLRU, SiteFlushSwDropped:
		window = 4
	case SiteRNGBias, SiteRandIdxKeyStuck:
		window = 2
	case SiteWalkCorrupt:
		window = 6
	case SiteMemBitRot:
		window = 64
	}
	in.trigger = 1 + splitmix64(&state)%window
	in.r1 = splitmix64(&state)
	in.r2 = splitmix64(&state)
	return in
}

// Site returns the injector's site.
func (in *Injector) Site() Site { return in.site }

// Fired reports whether the fault actually landed.
func (in *Injector) Fired() bool { return in.fired }

// Detail describes the landed fault ("" until Fired).
func (in *Injector) Detail() string { return in.detail }

// Arm installs the injector's hooks on a machine's components. t must be the
// raw TLB design (unwrap any invariant checker first — the fault must hit
// the array underneath the detector, not the detector). Components a site
// does not need may be nil.
func (in *Injector) Arm(t tlb.TLB, pt *ptw.PageTables, m *mem.Memory) error {
	switch in.site {
	case SiteTagFlip, SitePPNFlip, SiteSecFlip:
		insp, ok := t.(tlb.Inspectable)
		if !ok {
			return fmt.Errorf("faultinject: %s needs an inspectable TLB, have %T", in.site, t)
		}
		in.insp = insp
		insp.SetFaultHook(&tlb.FaultHook{OnAccess: in.onAccess})
	case SiteDropFill, SiteDupFill:
		insp, ok := t.(tlb.Inspectable)
		if !ok {
			return fmt.Errorf("faultinject: %s needs an inspectable TLB, have %T", in.site, t)
		}
		in.insp = insp
		insp.SetFaultHook(&tlb.FaultHook{OnFill: in.onFill})
	case SiteStuckLRU:
		insp, ok := t.(tlb.Inspectable)
		if !ok {
			return fmt.Errorf("faultinject: %s needs an inspectable TLB, have %T", in.site, t)
		}
		in.insp = insp
		insp.SetFaultHook(&tlb.FaultHook{OnLRUTouch: in.onLRUTouch})
	case SiteRNGBias:
		insp, ok := t.(tlb.Inspectable)
		if !ok {
			return fmt.Errorf("faultinject: %s needs an inspectable TLB, have %T", in.site, t)
		}
		if _, ok := t.(*tlb.RF); !ok {
			return fmt.Errorf("faultinject: %s applies only to the RF design, have %s", in.site, t.Name())
		}
		in.insp = insp
		insp.SetFaultHook(&tlb.FaultHook{OnRNGDraw: in.onRNGDraw})
	case SiteRandIdxKeyStuck:
		insp, ok := t.(tlb.Inspectable)
		if !ok {
			return fmt.Errorf("faultinject: %s needs an inspectable TLB, have %T", in.site, t)
		}
		if _, ok := t.(*tlb.RandIdx); !ok {
			return fmt.Errorf("faultinject: %s applies only to the RI design, have %s", in.site, t.Name())
		}
		in.insp = insp
		insp.SetFaultHook(&tlb.FaultHook{OnRekey: in.onRekey})
	case SiteFlushSwDropped:
		insp, ok := t.(tlb.Inspectable)
		if !ok {
			return fmt.Errorf("faultinject: %s needs an inspectable TLB, have %T", in.site, t)
		}
		if _, ok := t.(*tlb.FlushOnSwitch); !ok {
			return fmt.Errorf("faultinject: %s applies only to the FS design, have %s", in.site, t.Name())
		}
		in.insp = insp
		insp.SetFaultHook(&tlb.FaultHook{OnAutoFlush: in.onAutoFlush})
	case SiteWalkCorrupt:
		if pt == nil {
			return fmt.Errorf("faultinject: %s needs page tables", in.site)
		}
		in.pt = pt
		pt.SetWalkHook(in.onWalk)
	case SiteMemBitRot:
		if m == nil {
			return fmt.Errorf("faultinject: %s needs a memory", in.site)
		}
		in.m = m
		m.SetLoadHook(in.onLoad)
	case SiteCheckpointTruncate, SiteCheckpointBitRot:
		return fmt.Errorf("faultinject: %s corrupts files at rest; use CorruptFile", in.site)
	default:
		return fmt.Errorf("faultinject: unknown site %q", in.site)
	}
	return nil
}

// Disarm removes every hook the injector installed. The injector keeps its
// Fired/Detail state for inspection.
func (in *Injector) Disarm() {
	if in.insp != nil {
		in.insp.SetFaultHook(nil)
		in.insp = nil
	}
	if in.pt != nil {
		in.pt.SetWalkHook(nil)
		in.pt = nil
	}
	if in.m != nil {
		in.m.SetLoadHook(nil)
		in.m = nil
	}
}

// onAccess fires the entry-corruption sites: from the trigger ordinal
// onwards, the first access that finds a valid entry corrupts it.
func (in *Injector) onAccess() {
	in.count++
	if in.fired || in.count < in.trigger {
		return
	}
	snap := in.insp.SnapshotAppend(nil)
	var valid []int
	for i, e := range snap {
		if e.Valid {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return // array still empty; retry at the next access
	}
	idx := valid[int(in.r1%uint64(len(valid)))]
	ways := in.insp.(tlb.TLB).Ways()
	set, way := idx/ways, idx%ways
	switch in.site {
	case SiteTagFlip:
		bit := in.r2 % 27 // Sv39 VPN width
		in.insp.CorruptEntry(set, way, func(e *tlb.EntrySnapshot) { e.VPN ^= 1 << bit })
		in.fire("flipped VPN bit %d of set %d way %d at access %d", bit, set, way, in.count)
	case SitePPNFlip:
		bit := in.r2 % 20
		in.insp.CorruptEntry(set, way, func(e *tlb.EntrySnapshot) { e.PPN ^= 1 << bit })
		in.fire("flipped PPN bit %d of set %d way %d at access %d", bit, set, way, in.count)
	case SiteSecFlip:
		in.insp.CorruptEntry(set, way, func(e *tlb.EntrySnapshot) { e.Sec = !e.Sec })
		in.fire("flipped Sec bit of set %d way %d at access %d", set, way, in.count)
	}
}

func (in *Injector) onFill(set, way int) tlb.FillAction {
	in.count++
	if in.fired || in.count != in.trigger {
		return tlb.FillProceed
	}
	if in.site == SiteDropFill {
		in.fire("dropped fill %d into set %d way %d", in.count, set, way)
		return tlb.FillDrop
	}
	in.fire("duplicated fill %d into set %d way %d", in.count, set, way)
	return tlb.FillDuplicate
}

func (in *Injector) onLRUTouch(set, way int) bool {
	in.count++
	if in.fired || in.count != in.trigger {
		return true
	}
	in.fire("suppressed LRU touch %d of set %d way %d", in.count, set, way)
	return false
}

func (in *Injector) onRNGDraw(n, draw uint64) uint64 {
	in.count++
	if in.fired || in.count != in.trigger {
		return draw
	}
	biased := draw ^ 1
	in.fire("biased RFE draw %d: %d -> %d (window %d)", in.count, draw, biased, n)
	return biased
}

func (in *Injector) onRekey(old, next uint64) uint64 {
	in.count++
	if in.fired || in.count != in.trigger {
		return next
	}
	in.fire("stuck key register at re-key %d: kept %#x, dropped %#x", in.count, old, next)
	return old
}

func (in *Injector) onAutoFlush() bool {
	in.count++
	if in.fired || in.count != in.trigger {
		return true
	}
	in.fire("dropped design-initiated flush %d", in.count)
	return false
}

func (in *Injector) onWalk(asid tlb.ASID, vpn tlb.VPN, ppn tlb.PPN) (tlb.PPN, error) {
	in.count++
	if in.fired || in.count != in.trigger {
		return ppn, nil
	}
	bit := in.r2 % 20
	in.fire("flipped PPN bit %d of walk %d (asid %d vpn %#x)", bit, in.count, asid, vpn)
	return ppn ^ tlb.PPN(1)<<bit, nil
}

func (in *Injector) onLoad(paddr, value uint64) uint64 {
	in.count++
	if in.fired || in.count != in.trigger {
		return value
	}
	bit := in.r2 % 64
	in.fire("flipped bit %d of load %d at paddr %#x", bit, in.count, paddr)
	return value ^ 1<<bit
}

func (in *Injector) fire(format string, args ...any) {
	in.fired = true
	in.detail = fmt.Sprintf(format, args...)
}

// CorruptFile applies one of the at-rest checkpoint sites to the file at
// path, deterministically from seed. It reports what it did.
func CorruptFile(site Site, path string, seed uint64) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("faultinject: %w", err)
	}
	if len(raw) == 0 {
		return "", fmt.Errorf("faultinject: %s is empty", path)
	}
	state := seed
	switch site {
	case SiteCheckpointTruncate:
		cut := int(splitmix64(&state) % uint64(len(raw)))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			return "", fmt.Errorf("faultinject: %w", err)
		}
		return fmt.Sprintf("truncated %s from %d to %d bytes", path, len(raw), cut), nil
	case SiteCheckpointBitRot:
		idx := int(splitmix64(&state) % uint64(len(raw)))
		bit := splitmix64(&state) % 8
		raw[idx] ^= 1 << bit
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return "", fmt.Errorf("faultinject: %w", err)
		}
		return fmt.Sprintf("flipped bit %d of byte %d in %s", bit, idx, path), nil
	}
	return "", fmt.Errorf("faultinject: %s is not an at-rest site", site)
}
