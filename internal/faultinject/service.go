package faultinject

import (
	"fmt"
)

// The service-layer fault sites: failures of the job queue's durable
// record writes, the exact I/O the daemon's crash-safety rests on. They
// are injected through internal/job's PersistHook (wire OnWrite/OnRename
// to a ServiceInjector's methods), not through Arm — they corrupt the
// service's persistence layer, not a machine.
const (
	// SiteJobWriteFail fails one job-record temp-file write outright, as a
	// full disk or I/O error would. Detected at the write: the queue
	// classifies it transient and retries within budget.
	SiteJobWriteFail Site = "job-write-fail"
	// SiteJobRenameFail fails the atomic rename installing one job record.
	// Detected at the rename, same retry path.
	SiteJobRenameFail Site = "job-rename-fail"
	// SiteJobTornWrite truncates one job record's bytes mid-JSON while
	// reporting the write successful — the silent at-rest case. Undetected
	// until the next Open, which must quarantine the torn record and keep
	// serving.
	SiteJobTornWrite Site = "job-torn-write"
)

// The cluster-layer fault sites: failures of the lease machinery that
// arbitrates job ownership across nodes. Wire OnLease alongside
// OnWrite/OnRename; they only fire on a clustered queue (a single-node
// queue never renews or fences).
const (
	// SiteLeaseRenewFail fails one lease renewal, as a transient I/O error
	// on the shared directory would. Absorbed: the keeper's next tick (or
	// the next checkpoint) renews again well inside the TTL, so the job
	// must complete with no hand-off at all.
	SiteLeaseRenewFail Site = "lease-renew-fail"
	// SiteLeaseExpireMidWrite fails every renewal of one job's lease from
	// the trigger on, so the lease genuinely expires while its executor is
	// still making progress. A reaper must hand the job off and the old
	// owner's next record write must be refused as stale.
	SiteLeaseExpireMidWrite Site = "lease-expired-mid-write"
	// SiteStaleEpochWrite refuses one fencing check, making a persist
	// behave exactly as a zombie's stale-epoch write: the record write is
	// refused, the local executor abandons, and a reaper hands the job off
	// to finish under a fresh epoch.
	SiteStaleEpochWrite Site = "stale-epoch-write"
)

// ServiceSites returns the single-daemon service-layer sites, in stable
// order. Lease sites are listed separately (LeaseSites) because they
// require a clustered queue to reach.
func ServiceSites() []Site {
	return []Site{SiteJobWriteFail, SiteJobRenameFail, SiteJobTornWrite}
}

// LeaseSites returns the cluster-layer lease sites, in stable order.
func LeaseSites() []Site {
	return []Site{SiteLeaseRenewFail, SiteLeaseExpireMidWrite, SiteStaleEpochWrite}
}

// ParseServiceSite validates a service- or lease-site name.
func ParseServiceSite(s string) (Site, error) {
	for _, site := range append(ServiceSites(), LeaseSites()...) {
		if s == string(site) {
			return site, nil
		}
	}
	return "", fmt.Errorf("faultinject: unknown service site %q (want one of %v)",
		s, append(ServiceSites(), LeaseSites()...))
}

// ServiceInjector injects one seeded fault at one service site. Like the
// machine Injector, every decision is a pure function of (site, seed): the
// persist ordinal it fires at and, for torn writes, where the record is
// cut. It fires at most once.
type ServiceInjector struct {
	site    Site
	trigger uint64
	r1      uint64

	count  uint64
	fired  bool
	detail string
	// victim is the job whose lease SiteLeaseExpireMidWrite starves: once
	// captured at the trigger, every later renewal of that job fails too,
	// so the expiry is real rather than a one-tick blip.
	victim string
}

// NewService returns a service injector for site derived from seed.
func NewService(site Site, seed uint64) (*ServiceInjector, error) {
	if _, err := ParseServiceSite(string(site)); err != nil {
		return nil, err
	}
	state := seed ^ uint64(len(site))<<56
	for _, b := range []byte(site) {
		state = state*0x100000001b3 + uint64(b)
	}
	in := &ServiceInjector{site: site}
	// A job's lifecycle is a handful of persists (pending, running,
	// terminal); a window of 6 lands the fault inside the first couple of
	// jobs' records.
	in.trigger = 1 + splitmix64(&state)%6
	in.r1 = splitmix64(&state)
	return in, nil
}

// Site returns the injector's site.
func (in *ServiceInjector) Site() Site { return in.site }

// Fired reports whether the fault actually landed.
func (in *ServiceInjector) Fired() bool { return in.fired }

// Detail describes the landed fault ("" until Fired).
func (in *ServiceInjector) Detail() string { return in.detail }

// OnWrite implements job.PersistHook.OnWrite: it counts persist attempts
// and, at the trigger ordinal, either fails the write (SiteJobWriteFail)
// or tears the record (SiteJobTornWrite).
func (in *ServiceInjector) OnWrite(path string, data []byte) ([]byte, error) {
	if in.site == SiteJobRenameFail {
		return data, nil // counted at the rename, not the write
	}
	in.count++
	if in.fired || in.count != in.trigger {
		return data, nil
	}
	switch in.site {
	case SiteJobWriteFail:
		in.fire("failed record write %d to %s", in.count, path)
		return nil, fmt.Errorf("faultinject: injected write failure (persist %d)", in.count)
	case SiteJobTornWrite:
		// Cut strictly inside the record so the remainder is unparseable
		// JSON, never an empty or complete file.
		cut := 1 + int(in.r1%uint64(len(data)-1))
		in.fire("tore record write %d to %s at byte %d of %d", in.count, path, cut, len(data))
		return data[:cut], nil
	}
	return data, nil
}

// OnRename implements job.PersistHook.OnRename: at the trigger ordinal,
// SiteJobRenameFail refuses the rename installing the record.
func (in *ServiceInjector) OnRename(tmp, final string) error {
	if in.site != SiteJobRenameFail {
		return nil
	}
	in.count++
	if in.fired || in.count != in.trigger {
		return nil
	}
	in.fire("failed rename %d of %s", in.count, final)
	return fmt.Errorf("faultinject: injected rename failure (persist %d)", in.count)
}

// OnLease implements job.PersistHook.OnLease: op is "renew" for lease
// renewals and "fence" for persist-time fencing checks. Each lease site
// counts only its own op, so the trigger ordinal stays a pure function of
// (site, seed) regardless of how the two interleave.
func (in *ServiceInjector) OnLease(op, id string, epoch uint64) error {
	switch in.site {
	case SiteLeaseRenewFail:
		if op != "renew" {
			return nil
		}
		in.count++
		if in.fired || in.count != in.trigger {
			return nil
		}
		in.fire("failed lease renewal %d of %s (epoch %d)", in.count, id, epoch)
		return fmt.Errorf("faultinject: injected lease renewal failure (renewal %d)", in.count)
	case SiteLeaseExpireMidWrite:
		if op != "renew" {
			return nil
		}
		if in.fired {
			if id == in.victim {
				return fmt.Errorf("faultinject: lease renewals suppressed for %s", id)
			}
			return nil
		}
		in.count++
		if in.count != in.trigger {
			return nil
		}
		in.victim = id
		in.fire("starving lease renewals of %s from renewal %d (epoch %d)", id, in.count, epoch)
		return fmt.Errorf("faultinject: injected lease expiry (renewal %d)", in.count)
	case SiteStaleEpochWrite:
		// Only a lease-holder's write (epoch > 0) can be a zombie write; a
		// fresh record's first persist has no epoch to be stale against.
		if op != "fence" || epoch == 0 {
			return nil
		}
		in.count++
		if in.fired || in.count != in.trigger {
			return nil
		}
		in.fire("refused fencing check %d of %s (epoch %d)", in.count, id, epoch)
		return fmt.Errorf("faultinject: injected stale-epoch write (fence %d)", in.count)
	}
	return nil
}

func (in *ServiceInjector) fire(format string, args ...any) {
	in.fired = true
	in.detail = fmt.Sprintf(format, args...)
}
