package faultinject

import (
	"fmt"
)

// The service-layer fault sites: failures of the job queue's durable
// record writes, the exact I/O the daemon's crash-safety rests on. They
// are injected through internal/job's PersistHook (wire OnWrite/OnRename
// to a ServiceInjector's methods), not through Arm — they corrupt the
// service's persistence layer, not a machine.
const (
	// SiteJobWriteFail fails one job-record temp-file write outright, as a
	// full disk or I/O error would. Detected at the write: the queue
	// classifies it transient and retries within budget.
	SiteJobWriteFail Site = "job-write-fail"
	// SiteJobRenameFail fails the atomic rename installing one job record.
	// Detected at the rename, same retry path.
	SiteJobRenameFail Site = "job-rename-fail"
	// SiteJobTornWrite truncates one job record's bytes mid-JSON while
	// reporting the write successful — the silent at-rest case. Undetected
	// until the next Open, which must quarantine the torn record and keep
	// serving.
	SiteJobTornWrite Site = "job-torn-write"
)

// ServiceSites returns the service-layer sites, in stable order.
func ServiceSites() []Site {
	return []Site{SiteJobWriteFail, SiteJobRenameFail, SiteJobTornWrite}
}

// ParseServiceSite validates a service-site name.
func ParseServiceSite(s string) (Site, error) {
	for _, site := range ServiceSites() {
		if s == string(site) {
			return site, nil
		}
	}
	return "", fmt.Errorf("faultinject: unknown service site %q (want one of %v)", s, ServiceSites())
}

// ServiceInjector injects one seeded fault at one service site. Like the
// machine Injector, every decision is a pure function of (site, seed): the
// persist ordinal it fires at and, for torn writes, where the record is
// cut. It fires at most once.
type ServiceInjector struct {
	site    Site
	trigger uint64
	r1      uint64

	count  uint64
	fired  bool
	detail string
}

// NewService returns a service injector for site derived from seed.
func NewService(site Site, seed uint64) (*ServiceInjector, error) {
	if _, err := ParseServiceSite(string(site)); err != nil {
		return nil, err
	}
	state := seed ^ uint64(len(site))<<56
	for _, b := range []byte(site) {
		state = state*0x100000001b3 + uint64(b)
	}
	in := &ServiceInjector{site: site}
	// A job's lifecycle is a handful of persists (pending, running,
	// terminal); a window of 6 lands the fault inside the first couple of
	// jobs' records.
	in.trigger = 1 + splitmix64(&state)%6
	in.r1 = splitmix64(&state)
	return in, nil
}

// Site returns the injector's site.
func (in *ServiceInjector) Site() Site { return in.site }

// Fired reports whether the fault actually landed.
func (in *ServiceInjector) Fired() bool { return in.fired }

// Detail describes the landed fault ("" until Fired).
func (in *ServiceInjector) Detail() string { return in.detail }

// OnWrite implements job.PersistHook.OnWrite: it counts persist attempts
// and, at the trigger ordinal, either fails the write (SiteJobWriteFail)
// or tears the record (SiteJobTornWrite).
func (in *ServiceInjector) OnWrite(path string, data []byte) ([]byte, error) {
	if in.site == SiteJobRenameFail {
		return data, nil // counted at the rename, not the write
	}
	in.count++
	if in.fired || in.count != in.trigger {
		return data, nil
	}
	switch in.site {
	case SiteJobWriteFail:
		in.fire("failed record write %d to %s", in.count, path)
		return nil, fmt.Errorf("faultinject: injected write failure (persist %d)", in.count)
	case SiteJobTornWrite:
		// Cut strictly inside the record so the remainder is unparseable
		// JSON, never an empty or complete file.
		cut := 1 + int(in.r1%uint64(len(data)-1))
		in.fire("tore record write %d to %s at byte %d of %d", in.count, path, cut, len(data))
		return data[:cut], nil
	}
	return data, nil
}

// OnRename implements job.PersistHook.OnRename: at the trigger ordinal,
// SiteJobRenameFail refuses the rename installing the record.
func (in *ServiceInjector) OnRename(tmp, final string) error {
	if in.site != SiteJobRenameFail {
		return nil
	}
	in.count++
	if in.fired || in.count != in.trigger {
		return nil
	}
	in.fire("failed rename %d of %s", in.count, final)
	return fmt.Errorf("faultinject: injected rename failure (persist %d)", in.count)
}

func (in *ServiceInjector) fire(format string, args ...any) {
	in.fired = true
	in.detail = fmt.Sprintf(format, args...)
}
