// Package trace implements trace-compiled campaign execution: capture once,
// replay everywhere.
//
// A security-campaign trial executes the same straight-line benchmark program
// against many (TLB design, configuration, seed) combinations; only the TLB's
// microarchitectural behaviour differs between trials — the instruction
// stream, its memory accesses and its CSR writes are invariant. Following the
// trace-driven decoupling of "Fast TLB Simulation for RISC-V Systems", this
// package records the TLB-relevant events of one full execution (D-TLB and
// I-TLB lookups with ASID+VPN, CSR-driven flushes and ASID switches, and the
// cycle-accounting deltas of all the non-memory work in between) and replays
// them against any tlb.TLB + walker pair, skipping fetch, decode and the ALU
// entirely. Replay is bit-identical to full execution: cycle counts, counter
// values, fault messages and fuel-exhaustion behaviour all match exactly.
//
// A capture-time taint analysis guarantees soundness: any value derived from
// a TLB-dependent CSR (cycle, tlb_miss_count, tlb_hit_count) is tainted, and
// instructions consuming tainted values are embedded in the trace as Exec ops
// the replay VM evaluates itself (so a different design's miss counts flow
// into the replayed registers exactly as they would in full execution).
// Programs whose control flow or memory addresses depend on tainted values —
// and programs with stores — are unrepresentable; Capture reports
// ErrUnrepresentable and callers fall back to full execution.
package trace

import (
	"errors"

	"securetlb/internal/isa"
)

// Kind identifies a replay operation.
type Kind uint8

// The replay op set. Every op except KindSetReg corresponds to exactly one
// retired instruction (KindIFetch without Fold is the fetch prefix of the
// instruction carried by the following op). Adv folds the run of plain
// instructions — untainted ALU work, branches, nops — retired immediately
// before the op: each advances cycles and instret by one.
const (
	// KindHalt ends the trace; Arg is the exit code (zigzag-encoded).
	KindHalt Kind = iota
	// KindDLookup is a load: a D-TLB translate of (current ASID, Arg=VPN)
	// followed by the data-access cycle charge. PC is the instruction index
	// (for fault attribution). The loaded value is untainted by
	// construction, so it is not replayed.
	KindDLookup
	// KindIFetch is an instruction fetch through the I-TLB (Arg=VPN). With
	// Fold set it also retires the (plain) instruction it fetched;
	// otherwise the next op carries the instruction and has SkipBase set.
	KindIFetch
	// KindSetASID is csrw process_id with an untainted value (Arg).
	KindSetASID
	// KindFlushAll is csrw tlb_flush_all.
	KindFlushAll
	// KindFlushASID is csrw tlb_flush_asid with untainted Arg.
	KindFlushASID
	// KindFlushPage is csrw tlb_flush_page; Arg is the raw written value
	// (the virtual address; the VM applies the page shift).
	KindFlushPage
	// KindFlushPageAll is csrw tlb_flush_page_all; Arg as KindFlushPage.
	KindFlushPageAll
	// KindSecVictim, KindSecBase and KindSecSize are untainted writes to
	// the victim_asid/sbase/ssize security CSRs (Arg is the raw value).
	KindSecVictim
	KindSecBase
	KindSecSize
	// KindSetReg is synthetic: it materialises the capture-time value of an
	// untainted register the following Exec op reads. It retires nothing
	// and charges no cycles.
	KindSetReg
	// KindExec embeds one instruction (In) the VM executes itself because
	// it consumes or produces tainted state: arithmetic over counter
	// values, csrr of a TLB-dependent counter, csrw of a tainted value.
	KindExec
	kindCount
)

// Op is one replay operation.
type Op struct {
	Kind Kind
	// SkipBase marks an op whose instruction's base cycle was already
	// charged by the preceding KindIFetch op.
	SkipBase bool
	// Fold (KindIFetch only) folds the fetched plain instruction's
	// retirement into the fetch op.
	Fold bool
	// Reg is the destination register of KindSetReg.
	Reg uint8
	// PC is the instruction index, recorded for ops that can fault or
	// execute (lookups, fetches, Exec).
	PC uint32
	// Adv is the number of plain instructions retired before this op.
	Adv uint32
	// Arg is the op operand (VPN, ASID, CSR value, exit code).
	Arg uint64
	// In is the embedded instruction of KindExec.
	In isa.Instr
}

// StartsWithFlushAll reports whether the trace's first TLB-affecting
// operation is a full flush: every op before it only writes registers or
// TLB-external CSRs (the ASID and security registers). For such traces a
// campaign harness's between-trial FlushAll is redundant — the program's own
// flush erases whatever the previous trial left, the harness flush precedes
// the stats reset, and flushes outside Run charge no cycles — so skipping it
// is unobservable.
func (t *Trace) StartsWithFlushAll() bool {
	for i := range t.Ops {
		switch t.Ops[i].Kind {
		case KindFlushAll:
			return true
		case KindSetReg, KindSetASID, KindSecVictim, KindSecBase, KindSecSize:
			// Register and TLB-external CSR writes: no array or counter
			// effect. (Adv runs are plain ALU work and equally harmless.)
		default:
			return false
		}
	}
	return false
}

// retires reports whether the op retires one instruction of its own.
func (o *Op) retires() bool {
	switch o.Kind {
	case KindSetReg:
		return false
	case KindIFetch:
		return o.Fold
	default:
		return true
	}
}

// Trace is the captured, replayable form of one program execution.
type Trace struct {
	// Ops is the event stream; the last op is always KindHalt.
	Ops []Op
	// FinalRegs is the register file at the capture run's halt.
	FinalRegs [isa.NumRegs]uint64
	// TaintedRegs has bit n set when register n's final value is
	// TLB-dependent: replay computes it (via Exec ops) and VM.Reg returns
	// the replayed value; untainted registers come from FinalRegs.
	TaintedRegs uint32
	// DirtyRegs has bit n set when replay writes register n at all
	// (SetReg or Exec); the VM clears exactly these between runs.
	DirtyRegs uint32
	// Exit is the capture run's exit code and Instret its total retired
	// instructions (diagnostics; replay re-derives both).
	Exit    int64
	Instret uint64
}

// ErrUnrepresentable is wrapped by Capture when the program's TLB-relevant
// behaviour cannot be expressed as a trace — tainted control flow or memory
// addresses, stores, or an over-long event stream. Callers fall back to full
// execution.
var ErrUnrepresentable = errors.New("trace: program not representable")

// ErrDecode is wrapped by every Decode failure, mirroring isa.ErrDecode.
var ErrDecode = errors.New("trace: malformed trace")
