package trace

import (
	"fmt"

	"securetlb/internal/cpu"
	"securetlb/internal/isa"
	"securetlb/internal/tlb"
)

// maxOps bounds the captured event stream; programs that unroll past it
// (long untainted loops over memory) fall back to full execution rather
// than producing traces whose replay would not be faster.
const maxOps = 1 << 17

// Shadow-CSR taint bits (the security registers a program can write from a
// tainted register and later read back).
const (
	shASID uint8 = 1 << iota
	shSBase
	shSSize
	shVictim
)

// recorder is the cpu.Recorder that performs capture. It classifies every
// instruction before it executes: plain instructions (untainted ALU work,
// branches with untainted operands, nops) fold into an Adv counter;
// TLB-relevant instructions emit ops; instructions consuming TLB-dependent
// (tainted) values are embedded as Exec ops; anything whose TLB-visible
// behaviour could differ under another design is unrepresentable.
type recorder struct {
	ops      []Op
	adv      uint32
	skipNext bool // next emitted (non-SetReg) op follows its own IFetch

	// taint has bit n set when register n's value derives from a
	// TLB-dependent CSR; dirty accumulates every register replay writes.
	taint uint32
	dirty uint32
	// known[n] is the value the replay VM's register n would hold, when
	// knownOK has bit n set — used to elide redundant SetReg ops.
	known   [isa.NumRegs]uint64
	knownOK uint32
	shTaint uint8

	err error
}

func (r *recorder) taintBit(reg uint8) bool {
	return reg != 0 && r.taint&(1<<reg) != 0
}

// setTaint marks rd as replay-computed: the VM writes it, so its value is
// no longer statically known.
func (r *recorder) setTaint(rd uint8) {
	if rd == 0 {
		return
	}
	b := uint32(1) << rd
	r.taint |= b
	r.dirty |= b
	r.knownOK &^= b
}

// clearTaint records an untainted machine-side write to rd (the VM does not
// replay it; its final value is captured in FinalRegs).
func (r *recorder) clearTaint(rd uint8) {
	if rd != 0 {
		r.taint &^= 1 << rd
	}
}

// emit appends op, attaching the pending plain-instruction run and, after a
// non-folding IFetch, the base-cycle skip.
func (r *recorder) emit(op Op) {
	op.Adv = r.adv
	r.adv = 0
	if r.skipNext && op.Kind != KindSetReg {
		op.SkipBase = true
		r.skipNext = false
	}
	r.ops = append(r.ops, op)
}

// materialize ensures the replay VM holds the capture-time value of an
// untainted source register before an Exec op reads it.
func (r *recorder) materialize(m *cpu.Machine, reg uint8) {
	if reg == 0 || r.taintBit(reg) {
		return
	}
	v := m.Reg(int(reg))
	b := uint32(1) << reg
	if r.knownOK&b != 0 && r.known[reg] == v {
		return
	}
	r.emit(Op{Kind: KindSetReg, Reg: reg, Arg: v})
	r.known[reg] = v
	r.knownOK |= b
	r.dirty |= b
}

func (r *recorder) fail(m *cpu.Machine, in *isa.Instr, why string) error {
	r.err = fmt.Errorf("%w: pc %d: %s: %s", ErrUnrepresentable, m.PC(), *in, why)
	return r.err
}

// OnInstr implements cpu.Recorder.
func (r *recorder) OnInstr(m *cpu.Machine, in *isa.Instr) error {
	if r.err != nil {
		return r.err
	}
	if len(r.ops) >= maxOps {
		return r.fail(m, in, "trace too long")
	}
	pc := uint32(m.PC())
	ifetch := m.ITLB() != nil
	var fvpn uint64
	if ifetch {
		fvpn = (m.TextBase() + 4*uint64(m.PC())) >> tlb.PageShift
	}
	// plain folds an instruction with no replay-visible effect beyond its
	// base cycle and retirement; prefix emits the I-TLB fetch of an
	// op-carrying instruction.
	plain := func() {
		if ifetch {
			r.emit(Op{Kind: KindIFetch, Fold: true, PC: pc, Arg: fvpn})
		} else {
			r.adv++
		}
	}
	prefix := func() {
		if ifetch {
			r.emit(Op{Kind: KindIFetch, PC: pc, Arg: fvpn})
			r.skipNext = true
		}
	}
	alu := func(hasRs2 bool) {
		if !(r.taintBit(in.Rs1) || (hasRs2 && r.taintBit(in.Rs2))) {
			plain()
			r.clearTaint(in.Rd)
			return
		}
		prefix()
		r.materialize(m, in.Rs1)
		if hasRs2 {
			r.materialize(m, in.Rs2)
		}
		r.emit(Op{Kind: KindExec, PC: pc, In: *in})
		r.setTaint(in.Rd)
	}

	switch in.Op {
	case isa.OpNop, isa.OpJ:
		plain()
	case isa.OpHalt:
		prefix()
		r.emit(Op{Kind: KindHalt, PC: pc, Arg: uint64(in.Imm)})
	case isa.OpLi:
		plain()
		r.clearTaint(in.Rd)
	case isa.OpAddi, isa.OpSlli, isa.OpSrli:
		alu(false)
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSltu:
		alu(true)
	case isa.OpLd, isa.OpLdNorm, isa.OpLdRand:
		if r.taintBit(in.Rs1) {
			return r.fail(m, in, "load address depends on TLB state")
		}
		prefix()
		vaddr := m.Reg(int(in.Rs1)) + uint64(in.Imm)
		r.emit(Op{Kind: KindDLookup, PC: pc, Arg: vaddr >> tlb.PageShift})
		r.clearTaint(in.Rd)
	case isa.OpSd:
		// Stores could make later loads (and page-table state) depend on
		// execution order; replay does not model memory writes.
		return r.fail(m, in, "store")
	case isa.OpBeq, isa.OpBne, isa.OpBltu:
		if r.taintBit(in.Rs1) || r.taintBit(in.Rs2) {
			return r.fail(m, in, "control flow depends on TLB state")
		}
		plain()
	case isa.OpCsrr:
		tainted, ok := r.csrReadTaint(in.CSR)
		if !ok {
			return r.fail(m, in, "read of unknown CSR")
		}
		if tainted {
			prefix()
			r.emit(Op{Kind: KindExec, PC: pc, In: *in})
			r.setTaint(in.Rd)
		} else {
			plain()
			r.clearTaint(in.Rd)
		}
	case isa.OpCsrw, isa.OpCsrwi:
		return r.csrWrite(m, in, pc, prefix)
	default:
		return r.fail(m, in, "invalid opcode")
	}
	return nil
}

// csrReadTaint reports whether reading csr yields a TLB-dependent value.
// cycle and the TLB counters always do; the security-register shadows do
// when they were last written from a tainted register; instret never does
// (the instruction stream is design-invariant).
func (r *recorder) csrReadTaint(csr uint16) (tainted, ok bool) {
	switch csr {
	case isa.CSRCycle, isa.CSRTLBMissCount, isa.CSRTLBHitCount:
		return true, true
	case isa.CSRInstret:
		return false, true
	case isa.CSRProcessID:
		return r.shTaint&shASID != 0, true
	case isa.CSRSBase:
		return r.shTaint&shSBase != 0, true
	case isa.CSRSSize:
		return r.shTaint&shSSize != 0, true
	case isa.CSRVictimASID:
		return r.shTaint&shVictim != 0, true
	}
	return false, false
}

func (r *recorder) csrWrite(m *cpu.Machine, in *isa.Instr, pc uint32, prefix func()) error {
	var val uint64
	tainted := false
	if in.Op == isa.OpCsrw {
		tainted = r.taintBit(in.Rs1)
		val = m.Reg(int(in.Rs1))
	} else {
		val = uint64(in.Imm)
	}
	if tainted {
		switch in.CSR {
		case isa.CSRProcessID:
			r.shTaint |= shASID
		case isa.CSRSBase:
			r.shTaint |= shSBase
		case isa.CSRSSize:
			r.shTaint |= shSSize
		case isa.CSRVictimASID:
			r.shTaint |= shVictim
		case isa.CSRTLBFlushAll, isa.CSRTLBFlushASID, isa.CSRTLBFlushPage, isa.CSRTLBFlushPageAll:
			// Flushes of replay-computed values: the VM performs them.
		default:
			// Unknown or read-only CSR: the capture run faults here, so
			// Capture fails and the caller falls back to full execution,
			// which faults identically on every trial.
			return r.fail(m, in, "tainted write to unknown or read-only CSR")
		}
		prefix()
		r.emit(Op{Kind: KindExec, PC: pc, In: *in})
		return nil
	}
	var k Kind
	switch in.CSR {
	case isa.CSRProcessID:
		k = KindSetASID
		r.shTaint &^= shASID
	case isa.CSRSBase:
		k = KindSecBase
		r.shTaint &^= shSBase
	case isa.CSRSSize:
		k = KindSecSize
		r.shTaint &^= shSSize
	case isa.CSRVictimASID:
		k = KindSecVictim
		r.shTaint &^= shVictim
	case isa.CSRTLBFlushAll:
		k = KindFlushAll
		val = 0 // the written value is ignored and not serialised
	case isa.CSRTLBFlushASID:
		k = KindFlushASID
	case isa.CSRTLBFlushPage:
		k = KindFlushPage
	case isa.CSRTLBFlushPageAll:
		k = KindFlushPageAll
	default:
		return r.fail(m, in, "write to unknown or read-only CSR")
	}
	prefix()
	// Static ops cannot fault, so no PC is recorded (the codec omits it).
	r.emit(Op{Kind: k, Arg: val})
	return nil
}

// Capture resets m, runs its loaded program to completion under the capture
// recorder, and returns the resulting trace. The machine is left in its
// post-run state (campaign runners reset per trial anyway). A trace captured
// with any sufficient budget replays correctly under any budget: the VM
// meters fuel op by op, so smaller replay budgets exhaust exactly where full
// execution would.
//
// Capture fails — wrapping ErrUnrepresentable — when the program is not
// trace-representable or does not halt cleanly within fuel; callers fall
// back to full execution.
func Capture(m *cpu.Machine, fuel uint64) (*Trace, error) {
	if fuel >= 1<<32 {
		return nil, fmt.Errorf("%w: capture budget %d exceeds 2^32", ErrUnrepresentable, fuel)
	}
	r := &recorder{}
	m.Reset()
	m.SetRecorder(r)
	_, err := m.Run(fuel)
	m.SetRecorder(nil)
	if r.err != nil {
		return nil, r.err
	}
	if err != nil {
		return nil, fmt.Errorf("%w: capture run: %v", ErrUnrepresentable, err)
	}
	tr := &Trace{
		Ops:         r.ops,
		TaintedRegs: r.taint,
		DirtyRegs:   r.dirty,
		Exit:        m.ExitCode(),
		Instret:     m.Instret(),
	}
	for i := range tr.FinalRegs {
		tr.FinalRegs[i] = m.Reg(i)
	}
	return tr, nil
}
