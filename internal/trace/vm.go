package trace

import (
	"fmt"
	"math/bits"

	"securetlb/internal/cpu"
	"securetlb/internal/isa"
	"securetlb/internal/tlb"
)

// VM replays a captured trace against a TLB (and optional I-TLB). Replay is
// bit-identical to cpu.Machine.Run of the same program under the same
// instruction budget: cycles, retired-instruction counts, TLB counter
// values, fault errors (message for message) and fuel exhaustion all match.
// Like the machine it mirrors, a VM keeps its security-register shadows
// across runs (Machine.Reset does not clear them) and is not safe for
// concurrent use; campaign workers each own a forked VM.
//
// The VM is arena-style: all replay state lives inline in the struct and Run
// allocates nothing, so batch-replaying thousands of seeds generates no
// garbage beyond what the TLB design itself allocates.
type VM struct {
	dtlb  tlb.TLB
	fast  tlb.FastTranslator // dtlb's register-return fast path, or nil
	ctr   tlb.CounterReader  // dtlb's counter fast path, or nil
	sec   tlb.SecureTLB      // dtlb's security interface, or nil
	obs   tlb.ASIDObserver   // dtlb's context-switch interface, or nil
	itlb  tlb.TLB
	ifast tlb.FastTranslator // itlb's fast path, or nil
	prog  *isa.Program
	cfg   cpu.Config

	regs    [isa.NumRegs]uint64
	dirty   uint32 // registers the previous Run wrote
	cycles  uint64
	instret uint64
	asid    tlb.ASID
	halted  bool
	exit    int64
	tr      *Trace

	sbase, ssize, victim uint64
}

// NewVM binds a replay VM to a TLB pair. prog is the program the trace was
// captured from (needed only to reproduce fault messages); cfg must be the
// capture machine's timing configuration.
func NewVM(dtlb, itlb tlb.TLB, prog *isa.Program, cfg cpu.Config) *VM {
	v := &VM{dtlb: dtlb, itlb: itlb, prog: prog, cfg: cfg}
	if st, ok := dtlb.(tlb.SecureTLB); ok {
		v.sec = st
	}
	v.obs, _ = dtlb.(tlb.ASIDObserver)
	// The fast paths are semantically identical to Translate; wrappers that
	// interpose on Translate (the invariant checker) deliberately don't
	// implement them, so their interception stays complete.
	v.fast, _ = dtlb.(tlb.FastTranslator)
	v.ctr, _ = dtlb.(tlb.CounterReader)
	v.ifast, _ = itlb.(tlb.FastTranslator)
	return v
}

// Fork returns a fresh VM for the same program and timing bound to a
// different TLB pair — how per-worker campaign clones get their replayer.
func (v *VM) Fork(dtlb, itlb tlb.TLB) *VM {
	return NewVM(dtlb, itlb, v.prog, v.cfg)
}

// Reg returns register n after a completed Run: replay-computed (tainted)
// registers come from the VM, all others from the capture's final state.
func (v *VM) Reg(n int) uint64 {
	if v.tr != nil && v.tr.TaintedRegs&(uint32(1)<<uint(n)) == 0 {
		return v.tr.FinalRegs[n]
	}
	return v.regs[n]
}

// Cycles returns the replayed cycle counter.
func (v *VM) Cycles() uint64 { return v.cycles }

// Instret returns the replayed retired-instruction counter.
func (v *VM) Instret() uint64 { return v.instret }

// Halted reports whether the last Run reached the trace's halt.
func (v *VM) Halted() bool { return v.halted }

// Run replays tr with the given instruction budget, returning the exit code
// exactly as cpu.Machine.Run would.
func (v *VM) Run(tr *Trace, fuel uint64) (int64, error) {
	for m := v.dirty; m != 0; m &= m - 1 {
		v.regs[bits.TrailingZeros32(m)] = 0
	}
	v.dirty = tr.DirtyRegs
	v.cycles, v.instret = 0, 0
	v.asid = 0
	v.halted, v.exit = false, 0
	v.tr = tr
	return v.dispatch(tr.Ops, fuel)
}

// RunBody replays tr from its trial-invariant prefix boundary (see
// SplitPrefix): the prefix's architectural effects are installed from the
// precomputed snapshot — its flushes performed, its cycle/retirement totals
// credited, its register, ASID and security-shadow values restored — and
// only the body ops are dispatched. Bit-identical to Run of the whole trace,
// PROVIDED this VM has already replayed tr once (Run establishes the
// prefix-set registers RunBody does not rewrite); budgets that would exhaust
// inside the prefix are delegated to Run wholesale.
func (v *VM) RunBody(tr *Trace, fuel uint64, p *Prefix) (int64, error) {
	if fuel < p.Instret {
		return v.Run(tr, fuel)
	}
	for i := 0; i < p.Flushes; i++ {
		// The physical flush effect; the cycle charge is in p.Cycles.
		v.dtlb.FlushAll()
	}
	// Only body-written registers can have drifted from the prefix snapshot.
	for m := p.BodyDirty; m != 0; m &= m - 1 {
		r := bits.TrailingZeros32(m)
		v.regs[r] = p.Regs[r]
	}
	v.dirty = tr.DirtyRegs
	v.cycles, v.instret = p.Cycles, p.Instret
	v.asid = p.ASID
	v.sbase, v.ssize, v.victim = p.SBase, p.SSize, p.Victim
	v.halted, v.exit = false, 0
	v.tr = tr
	return v.dispatch(tr.Ops[p.OpStart:], fuel-p.Instret)
}

// dispatch is the replay loop shared by Run and RunBody: execute ops with
// `left` retirements of budget remaining.
func (v *VM) dispatch(ops []Op, left uint64) (int64, error) {
	// Loop invariants hoisted out of the dispatch loop; fast is nil when the
	// D-TLB has no register-return path (e.g. under the invariant checker).
	fast := v.fast
	dataCycles := v.cfg.DataAccessCycles
	for i := range ops {
		op := &ops[i]
		if op.Kind == KindSetReg {
			// Synthetic: retires nothing and consumes no fuel, so it runs
			// even with the budget exhausted, exactly like the register
			// state it stands in for.
			v.regs[op.Reg] = op.Arg
			continue
		}
		// A run of op.Adv plain instructions precedes this op: one cycle
		// and one retirement each, clipped to the remaining budget. The op
		// itself then needs fuel of its own, so a >= left exhausts either
		// way — one branch covers both checks.
		if a := uint64(op.Adv); a < left {
			v.cycles += a
			v.instret += a
			left -= a
		} else {
			if a > left {
				a = left
			}
			v.cycles += a
			v.instret += a
			return 0, cpu.ErrFuelExhausted
		}
		if !op.SkipBase {
			v.cycles++
		}
		switch op.Kind {
		case KindHalt:
			v.halted, v.exit = true, int64(op.Arg)
		case KindDLookup:
			var cyc uint64
			var err error
			if fast != nil {
				cyc, err = fast.TranslateCycles(v.asid, tlb.VPN(op.Arg))
			} else {
				var res tlb.Result
				res, err = v.dtlb.Translate(v.asid, tlb.VPN(op.Arg))
				cyc = res.Cycles
			}
			v.cycles += cyc
			if err != nil {
				return 0, &cpu.FaultError{PC: int(op.PC), Err: fmt.Errorf("%s: %w", v.prog.Instrs[op.PC], err)}
			}
			v.cycles += dataCycles
		case KindIFetch:
			var cyc uint64
			var err error
			if v.ifast != nil {
				cyc, err = v.ifast.TranslateCycles(v.asid, tlb.VPN(op.Arg))
			} else {
				var res tlb.Result
				res, err = v.itlb.Translate(v.asid, tlb.VPN(op.Arg))
				cyc = res.Cycles
			}
			v.cycles += cyc
			if err != nil {
				return 0, &cpu.FaultError{PC: int(op.PC), Err: fmt.Errorf("instruction fetch: %w", err)}
			}
			if !op.Fold {
				// The fetched instruction's own op follows (SkipBase set);
				// retirement happens there.
				continue
			}
		case KindSetASID:
			v.asid = tlb.ASID(op.Arg)
			if v.obs != nil {
				v.obs.ObserveASID(v.asid)
			}
		case KindFlushAll:
			v.dtlb.FlushAll()
			v.cycles += v.cfg.FlushCycles
		case KindFlushASID:
			v.dtlb.FlushASID(tlb.ASID(op.Arg))
			v.cycles += v.cfg.FlushCycles
		case KindFlushPage:
			present := v.dtlb.FlushPage(v.asid, tlb.VPN(op.Arg>>tlb.PageShift))
			v.cycles += v.cfg.FlushCycles
			if v.cfg.VariableFlushTiming && present {
				v.cycles++
			}
		case KindFlushPageAll:
			present := v.dtlb.FlushPageAllASIDs(tlb.VPN(op.Arg >> tlb.PageShift))
			v.cycles += v.cfg.FlushCycles
			if v.cfg.VariableFlushTiming && present {
				v.cycles++
			}
		case KindSecVictim:
			v.victim = op.Arg
			if v.sec != nil {
				v.sec.SetVictim(tlb.ASID(op.Arg))
			}
		case KindSecBase:
			v.sbase = op.Arg
			if v.sec != nil {
				v.sec.SetSecureRegion(tlb.VPN(op.Arg), v.ssize)
			}
		case KindSecSize:
			v.ssize = op.Arg
			if v.sec != nil {
				v.sec.SetSecureRegion(tlb.VPN(v.sbase), op.Arg)
			}
		case KindExec:
			if err := v.exec(&op.In); err != nil {
				return 0, &cpu.FaultError{PC: int(op.PC), Err: fmt.Errorf("%w", err)}
			}
		default:
			return 0, &cpu.FaultError{PC: int(op.PC), Err: fmt.Errorf("trace: invalid op kind %d", op.Kind)}
		}
		v.instret++
		left--
		if v.halted {
			return v.exit, nil
		}
	}
	return 0, fmt.Errorf("trace: truncated trace (no halt op)")
}

func (v *VM) setReg(n uint8, val uint64) {
	if n != 0 {
		v.regs[n] = val
	}
}

// exec evaluates an embedded (tainted) instruction, mirroring the subset of
// cpu.Machine.exec that can appear in a trace.
func (v *VM) exec(in *isa.Instr) error {
	switch in.Op {
	case isa.OpAddi:
		v.setReg(in.Rd, v.regs[in.Rs1]+uint64(in.Imm))
	case isa.OpAdd:
		v.setReg(in.Rd, v.regs[in.Rs1]+v.regs[in.Rs2])
	case isa.OpSub:
		v.setReg(in.Rd, v.regs[in.Rs1]-v.regs[in.Rs2])
	case isa.OpAnd:
		v.setReg(in.Rd, v.regs[in.Rs1]&v.regs[in.Rs2])
	case isa.OpOr:
		v.setReg(in.Rd, v.regs[in.Rs1]|v.regs[in.Rs2])
	case isa.OpXor:
		v.setReg(in.Rd, v.regs[in.Rs1]^v.regs[in.Rs2])
	case isa.OpSlli:
		v.setReg(in.Rd, v.regs[in.Rs1]<<uint(in.Imm&63))
	case isa.OpSrli:
		v.setReg(in.Rd, v.regs[in.Rs1]>>uint(in.Imm&63))
	case isa.OpSltu:
		val := uint64(0)
		if v.regs[in.Rs1] < v.regs[in.Rs2] {
			val = 1
		}
		v.setReg(in.Rd, val)
	case isa.OpCsrr:
		val, err := v.readCSR(in.CSR)
		if err != nil {
			return err
		}
		v.setReg(in.Rd, val)
	case isa.OpCsrw:
		return v.writeCSR(in.CSR, v.regs[in.Rs1])
	case isa.OpCsrwi:
		return v.writeCSR(in.CSR, uint64(in.Imm))
	default:
		return fmt.Errorf("trace: op %s cannot be embedded", in.Op)
	}
	return nil
}

// readCSR mirrors cpu.Machine.readCSR, message for message.
func (v *VM) readCSR(csr uint16) (uint64, error) {
	switch csr {
	case isa.CSRCycle:
		return v.cycles, nil
	case isa.CSRInstret:
		return v.instret, nil
	case isa.CSRTLBMissCount:
		if v.ctr != nil {
			m, _ := v.ctr.MissHitCounts()
			return m, nil
		}
		return v.dtlb.Stats().Misses, nil
	case isa.CSRTLBHitCount:
		if v.ctr != nil {
			_, h := v.ctr.MissHitCounts()
			return h, nil
		}
		return v.dtlb.Stats().Hits, nil
	case isa.CSRProcessID:
		return uint64(v.asid), nil
	case isa.CSRSBase:
		return v.sbase, nil
	case isa.CSRSSize:
		return v.ssize, nil
	case isa.CSRVictimASID:
		return v.victim, nil
	default:
		return 0, fmt.Errorf("read of unknown CSR %#x", csr)
	}
}

// writeCSR mirrors cpu.Machine.writeCSR, message for message.
func (v *VM) writeCSR(csr uint16, val uint64) error {
	switch csr {
	case isa.CSRProcessID:
		v.asid = tlb.ASID(val)
		if v.obs != nil {
			v.obs.ObserveASID(v.asid)
		}
	case isa.CSRSBase:
		v.sbase = val
		if v.sec != nil {
			v.sec.SetSecureRegion(tlb.VPN(val), v.ssize)
		}
	case isa.CSRSSize:
		v.ssize = val
		if v.sec != nil {
			v.sec.SetSecureRegion(tlb.VPN(v.sbase), val)
		}
	case isa.CSRVictimASID:
		v.victim = val
		if v.sec != nil {
			v.sec.SetVictim(tlb.ASID(val))
		}
	case isa.CSRTLBFlushAll:
		v.dtlb.FlushAll()
		v.cycles += v.cfg.FlushCycles
	case isa.CSRTLBFlushASID:
		v.dtlb.FlushASID(tlb.ASID(val))
		v.cycles += v.cfg.FlushCycles
	case isa.CSRTLBFlushPage:
		present := v.dtlb.FlushPage(v.asid, tlb.VPN(val>>tlb.PageShift))
		v.cycles += v.cfg.FlushCycles
		if v.cfg.VariableFlushTiming && present {
			v.cycles++
		}
	case isa.CSRTLBFlushPageAll:
		present := v.dtlb.FlushPageAllASIDs(tlb.VPN(val >> tlb.PageShift))
		v.cycles += v.cfg.FlushCycles
		if v.cfg.VariableFlushTiming && present {
			v.cycles++
		}
	case isa.CSRCycle, isa.CSRInstret, isa.CSRTLBMissCount, isa.CSRTLBHitCount:
		return fmt.Errorf("CSR %s is read-only", isa.CSRName(csr))
	default:
		return fmt.Errorf("write of unknown CSR %#x", csr)
	}
	return nil
}
