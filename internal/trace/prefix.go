package trace

import (
	"securetlb/internal/cpu"
	"securetlb/internal/isa"
	"securetlb/internal/tlb"
)

// Prefix is the precomputed effect of a trace's trial-invariant prologue.
//
// Campaign programs all open the same way: register setup, ASID and
// security-register programming, and a full TLB flush — none of which
// depends on TLB content, randomness, or anything else that varies between
// trials. Replaying that prologue per trial recomputes the same values a
// few hundred thousand times per campaign. SplitPrefix folds it into a
// constant: VM.RunBody installs the snapshot and dispatches only the body.
type Prefix struct {
	// OpStart is the index of the first body op.
	OpStart int
	// Cycles and Instret are the cycle and retirement totals the prefix
	// accumulates (Adv runs, base cycles, flush latencies).
	Cycles, Instret uint64
	// Flushes counts the prefix's tlb_flush_all ops; RunBody performs them
	// physically each trial (they are what makes the body's TLB state
	// trial-invariant) while their timing is already folded into Cycles.
	Flushes int
	// ASID, SBase, SSize and Victim are the VM shadows at the boundary.
	ASID                 tlb.ASID
	SBase, SSize, Victim uint64
	// Regs is the register file at the boundary; BodyDirty marks the
	// registers body ops overwrite, the only ones RunBody must restore.
	Regs      [isa.NumRegs]uint64
	BodyDirty uint32
}

// SplitPrefix computes tr's trial-invariant prefix, or nil when the trace
// has no usable one. The prefix is the leading run of ops whose effects are
// pure register/shadow state (SetReg, SetASID, the security registers) plus
// full flushes; it must contain at least one flush — that flush is what
// erases the previous trial's TLB state, making everything after it start
// from the same point every trial. The body must then keep the invariant
// invariant: no I-TLB ops (the prefix flush only clears the D-TLB) and no
// writes to the security registers (RunBody does not re-apply them to the
// TLB, it relies on their values persisting across trials).
func SplitPrefix(tr *Trace, cfg cpu.Config) *Prefix {
	p := &Prefix{}
	i := 0
scan:
	for ; i < len(tr.Ops); i++ {
		op := &tr.Ops[i]
		switch op.Kind {
		case KindSetReg:
			// Synthetic: no retirement, no cycles.
			p.Regs[op.Reg] = op.Arg
			continue
		case KindSetASID, KindSecVictim, KindSecBase, KindSecSize, KindFlushAll:
		default:
			break scan
		}
		p.Cycles += uint64(op.Adv)
		p.Instret += uint64(op.Adv)
		if !op.SkipBase {
			p.Cycles++
		}
		switch op.Kind {
		case KindSetASID:
			p.ASID = tlb.ASID(op.Arg)
		case KindSecVictim:
			p.Victim = op.Arg
		case KindSecBase:
			p.SBase = op.Arg
		case KindSecSize:
			p.SSize = op.Arg
		case KindFlushAll:
			p.Flushes++
			p.Cycles += cfg.FlushCycles
		}
		p.Instret++
	}
	p.OpStart = i
	if p.Flushes == 0 || p.OpStart == 0 || p.OpStart >= len(tr.Ops) {
		return nil
	}
	for ; i < len(tr.Ops); i++ {
		op := &tr.Ops[i]
		switch op.Kind {
		case KindIFetch, KindSecVictim, KindSecBase, KindSecSize:
			return nil
		case KindSetReg:
			p.BodyDirty |= uint32(1) << op.Reg
		case KindExec:
			in := &op.In
			switch in.Op {
			case isa.OpCsrw, isa.OpCsrwi:
				switch in.CSR {
				case isa.CSRSBase, isa.CSRSSize, isa.CSRVictimASID:
					return nil
				}
			default:
				if in.Rd != 0 {
					p.BodyDirty |= uint32(1) << in.Rd
				}
			}
		}
	}
	return p
}
