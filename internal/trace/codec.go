package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"securetlb/internal/isa"
)

// Binary trace format, version 1:
//
//	"STRC" | version byte |
//	zigzag(exit) | uvarint(instret) | uvarint(taintedRegs) | uvarint(dirtyRegs) |
//	32 × uvarint(finalReg) |
//	uvarint(len(ops)) | ops... |
//	8-byte little-endian FNV-64a of everything preceding
//
// Each op is: kind byte | flags byte (bit0 SkipBase, bit1 Fold) |
// uvarint(adv) | kind-specific operands. All varints must be minimally
// (canonically) encoded and the final op must be the trace's only KindHalt,
// so every accepted encoding is the unique encoding of its trace:
// Encode(Decode(b)) == b.
const (
	codecMagic   = "STRC"
	codecVersion = 1
)

const (
	flagSkipBase = 1 << iota
	flagFold
)

// execOpOK whitelists the opcodes an Exec op may embed (the taint-carrying
// subset the VM can evaluate).
func execOpOK(op isa.Op) bool {
	switch op {
	case isa.OpAddi, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSlli, isa.OpSrli, isa.OpSltu, isa.OpCsrr, isa.OpCsrw, isa.OpCsrwi:
		return true
	}
	return false
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode serialises a trace.
func Encode(tr *Trace) []byte {
	b := make([]byte, 0, 64+16*len(tr.Ops))
	b = append(b, codecMagic...)
	b = append(b, codecVersion)
	b = binary.AppendUvarint(b, zigzag(tr.Exit))
	b = binary.AppendUvarint(b, tr.Instret)
	b = binary.AppendUvarint(b, uint64(tr.TaintedRegs))
	b = binary.AppendUvarint(b, uint64(tr.DirtyRegs))
	for _, r := range tr.FinalRegs {
		b = binary.AppendUvarint(b, r)
	}
	b = binary.AppendUvarint(b, uint64(len(tr.Ops)))
	for i := range tr.Ops {
		op := &tr.Ops[i]
		var flags byte
		if op.SkipBase {
			flags |= flagSkipBase
		}
		if op.Fold {
			flags |= flagFold
		}
		b = append(b, byte(op.Kind), flags)
		b = binary.AppendUvarint(b, uint64(op.Adv))
		switch op.Kind {
		case KindHalt:
			b = binary.AppendUvarint(b, uint64(op.PC))
			b = binary.AppendUvarint(b, zigzag(int64(op.Arg)))
		case KindDLookup, KindIFetch:
			b = binary.AppendUvarint(b, uint64(op.PC))
			b = binary.AppendUvarint(b, op.Arg)
		case KindFlushAll:
		case KindSetReg:
			b = append(b, op.Reg)
			b = binary.AppendUvarint(b, op.Arg)
		case KindExec:
			b = binary.AppendUvarint(b, uint64(op.PC))
			b = append(b, byte(op.In.Op), op.In.Rd, op.In.Rs1, op.In.Rs2)
			b = binary.AppendUvarint(b, uint64(op.In.CSR))
			b = binary.AppendUvarint(b, zigzag(op.In.Imm))
		default: // single-operand ops
			b = binary.AppendUvarint(b, op.Arg)
		}
	}
	h := fnv.New64a()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64())
}

// decoder is a strict cursor over an encoded trace.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) fail(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrDecode, d.pos, fmt.Sprintf(format, args...))
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, d.fail("truncated")
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

// uvarint reads a canonical (minimal-length) unsigned varint.
func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	if n > 1 && v < 1<<(7*(n-1)) {
		return 0, d.fail("non-canonical uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) u32(what string) (uint32, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<32-1 {
		return 0, d.fail("%s %d overflows uint32", what, v)
	}
	return uint32(v), nil
}

// Decode parses an encoded trace, validating structure strictly: canonical
// varints, known kinds and flags, a whitelisted Exec opcode set, in-range
// registers, exactly one halt (last), and an FNV-64a checksum. Every failure
// wraps ErrDecode.
func Decode(b []byte) (*Trace, error) {
	d := &decoder{b: b}
	if len(b) < len(codecMagic)+1+8 {
		return nil, d.fail("short input (%d bytes)", len(b))
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, d.fail("checksum mismatch")
	}
	d.b = body
	if string(body[:len(codecMagic)]) != codecMagic {
		return nil, d.fail("bad magic")
	}
	d.pos = len(codecMagic)
	ver, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, d.fail("unsupported version %d", ver)
	}
	tr := &Trace{}
	exitRaw, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	tr.Exit = unzigzag(exitRaw)
	if tr.Instret, err = d.uvarint(); err != nil {
		return nil, err
	}
	if tr.TaintedRegs, err = d.u32("tainted-regs mask"); err != nil {
		return nil, err
	}
	if tr.DirtyRegs, err = d.u32("dirty-regs mask"); err != nil {
		return nil, err
	}
	for i := range tr.FinalRegs {
		if tr.FinalRegs[i], err = d.uvarint(); err != nil {
			return nil, err
		}
	}
	nops, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nops == 0 {
		return nil, d.fail("empty op stream")
	}
	if nops > maxOps {
		return nil, d.fail("op count %d exceeds limit %d", nops, maxOps)
	}
	tr.Ops = make([]Op, nops)
	for i := range tr.Ops {
		if err := d.op(&tr.Ops[i], i == len(tr.Ops)-1); err != nil {
			return nil, err
		}
	}
	if d.pos != len(d.b) {
		return nil, d.fail("%d trailing bytes", len(d.b)-d.pos)
	}
	return tr, nil
}

func (d *decoder) op(op *Op, last bool) error {
	k, err := d.byte()
	if err != nil {
		return err
	}
	if Kind(k) >= kindCount {
		return d.fail("unknown op kind %d", k)
	}
	op.Kind = Kind(k)
	if (op.Kind == KindHalt) != last {
		return d.fail("halt must be exactly the final op")
	}
	flags, err := d.byte()
	if err != nil {
		return err
	}
	if flags&^(flagSkipBase|flagFold) != 0 {
		return d.fail("unknown flag bits %#x", flags)
	}
	op.SkipBase = flags&flagSkipBase != 0
	op.Fold = flags&flagFold != 0
	if op.Fold && op.Kind != KindIFetch {
		return d.fail("fold flag on non-ifetch op")
	}
	if op.SkipBase && op.Kind == KindSetReg {
		return d.fail("skip-base flag on set-reg op")
	}
	if op.Adv, err = d.u32("adv"); err != nil {
		return err
	}
	switch op.Kind {
	case KindHalt:
		if op.PC, err = d.u32("pc"); err != nil {
			return err
		}
		raw, err := d.uvarint()
		if err != nil {
			return err
		}
		op.Arg = uint64(unzigzag(raw))
	case KindDLookup, KindIFetch:
		if op.PC, err = d.u32("pc"); err != nil {
			return err
		}
		if op.Arg, err = d.uvarint(); err != nil {
			return err
		}
	case KindFlushAll:
	case KindSetReg:
		if op.Reg, err = d.byte(); err != nil {
			return err
		}
		if op.Reg == 0 || op.Reg >= isa.NumRegs {
			return d.fail("set-reg register %d out of range", op.Reg)
		}
		if op.Arg, err = d.uvarint(); err != nil {
			return err
		}
	case KindExec:
		if op.PC, err = d.u32("pc"); err != nil {
			return err
		}
		var fields [4]byte
		for j := range fields {
			if fields[j], err = d.byte(); err != nil {
				return err
			}
		}
		op.In.Op = isa.Op(fields[0])
		op.In.Rd, op.In.Rs1, op.In.Rs2 = fields[1], fields[2], fields[3]
		if !execOpOK(op.In.Op) {
			return d.fail("opcode %d cannot be embedded", fields[0])
		}
		if op.In.Rd >= isa.NumRegs || op.In.Rs1 >= isa.NumRegs || op.In.Rs2 >= isa.NumRegs {
			return d.fail("exec register out of range")
		}
		csr, err := d.uvarint()
		if err != nil {
			return err
		}
		if csr > 1<<16-1 {
			return d.fail("csr %d overflows uint16", csr)
		}
		op.In.CSR = uint16(csr)
		raw, err := d.uvarint()
		if err != nil {
			return err
		}
		op.In.Imm = unzigzag(raw)
	default: // single-operand ops
		if op.Arg, err = d.uvarint(); err != nil {
			return err
		}
	}
	return nil
}
