package trace

import (
	"math"

	"securetlb/internal/tlb"
)

// Dense-window entry states. The entry is 8 bytes — oversized results and
// errors are rare, so they spill to the map and the hot path loads a single
// word-sized struct with no interface value in it. At campaign scale the
// dense array is the walker's cache footprint, so every byte halved is a
// miss avoided: a 3-ASID x 4096-page window is 96 KiB at 8 bytes versus
// 192 KiB at 16.
const (
	memoUnknown = iota // not walked yet
	memoFast           // ppn/cycles valid, no error
	memoSpill          // full result lives in the slow map
)

type memoEnt struct {
	ppn    uint32
	cycles uint16
	state  uint8
}

type memoSlowEnt struct {
	ppn    tlb.PPN
	cycles uint64
	err    error
}

// MemoWalker memoizes a page-table walker. Walks are deterministic per
// (ASID, VPN) — the walker charges fixed per-level latencies against
// immutable page tables — so each result, including page faults, is computed
// once and returned by reference thereafter (the cached error value is
// reused, keeping messages byte-identical across repeats).
//
// A dense window covers the address range a campaign program actually
// touches (its data pages plus the secure region the RF engine draws from);
// anything outside spills to a map. The window is laid out vpn-major: the
// entries for all ASIDs of one page sit adjacent, so the attacker/victim
// access pairs campaign programs are built from share a cache line. The
// wrapper is only sound while the underlying page tables are immutable —
// campaign trials never map, unmap or store — and, like the TLB designs, it
// is not safe for concurrent use: every cloned worker machine wraps its own.
type MemoWalker struct {
	pt    tlb.Walker
	nasid uint64
	base  uint64
	span  uint64
	dense []memoEnt
	slow  map[uint64]*memoSlowEnt
}

// NewMemoWalker wraps pt with a dense window of span pages starting at base
// for ASIDs [0, nasid).
func NewMemoWalker(pt tlb.Walker, nasid int, base tlb.VPN, span uint64) *MemoWalker {
	if nasid < 0 {
		nasid = 0
	}
	return &MemoWalker{
		pt:    pt,
		nasid: uint64(nasid),
		base:  uint64(base),
		span:  span,
		dense: make([]memoEnt, uint64(nasid)*span),
	}
}

// Walk implements tlb.Walker.
func (w *MemoWalker) Walk(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
	if uint64(asid) < w.nasid {
		if off := uint64(vpn) - w.base; off < w.span {
			e := &w.dense[off*w.nasid+uint64(asid)]
			if e.state == memoFast {
				return tlb.PPN(e.ppn), uint64(e.cycles), nil
			}
			return w.walkDense(e, asid, vpn)
		}
	}
	return w.walkSpill(asid, vpn)
}

// walkDense fills a dense-window entry on first touch (or serves one that
// spilled to the slow map because it faulted or overflowed the packed
// fields).
func (w *MemoWalker) walkDense(e *memoEnt, asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
	if e.state == memoSpill {
		s := w.slow[spillKey(asid, vpn)]
		return s.ppn, s.cycles, s.err
	}
	ppn, cycles, err := w.pt.Walk(asid, vpn)
	if err == nil && cycles <= math.MaxUint16 && uint64(ppn) <= math.MaxUint32 {
		e.ppn, e.cycles, e.state = uint32(ppn), uint16(cycles), memoFast
		return ppn, cycles, nil
	}
	if w.slow == nil {
		w.slow = make(map[uint64]*memoSlowEnt)
	}
	w.slow[spillKey(asid, vpn)] = &memoSlowEnt{ppn: ppn, cycles: cycles, err: err}
	e.state = memoSpill
	return ppn, cycles, err
}

// walkSpill handles addresses outside the dense window.
func (w *MemoWalker) walkSpill(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
	k := spillKey(asid, vpn)
	if e, ok := w.slow[k]; ok {
		return e.ppn, e.cycles, e.err
	}
	e := &memoSlowEnt{}
	e.ppn, e.cycles, e.err = w.pt.Walk(asid, vpn)
	if w.slow == nil {
		w.slow = make(map[uint64]*memoSlowEnt)
	}
	w.slow[k] = e
	return e.ppn, e.cycles, e.err
}

func spillKey(asid tlb.ASID, vpn tlb.VPN) uint64 {
	return uint64(asid)<<48 | uint64(vpn)&(1<<48-1)
}
