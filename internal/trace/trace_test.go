package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"securetlb/internal/asm"
	"securetlb/internal/cpu"
	"securetlb/internal/isa"
	"securetlb/internal/mem"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
	"securetlb/internal/trace"
)

var coreCfg = cpu.Config{DataAccessCycles: 1, FlushCycles: 1, VariableFlushTiming: true}

// testSrc exercises every replayable construct: security CSR setup, flushes
// (full, by ASID, targeted by page with variable timing), ASID switches,
// normal/random-fill loads, an untainted loop, counter reads and tainted
// arithmetic. The ldrand page sits in a secure region that extends over
// unmapped pages, so the RF engine's random fills hit both mapped and
// unmapped translations.
const testSrc = `
	csrwi victim_asid, 1
	csrwi sbase, 0x1002
	csrwi ssize, 4
	csrwi tlb_flush_all, 0
	csrwi process_id, 1
	li x1, 0x1002000
	ldrand x2, 0(x1)
	li x1, 0x1001000
	ldnorm x2, 0(x1)
	csrwi process_id, 0
	csrr x28, tlb_miss_count
	li x3, 3
	li x4, 0
loop:
	addi x4, x4, 1
	ld x5, 0(x1)
	bltu x4, x3, loop
	csrr x29, tlb_miss_count
	sub x30, x29, x28
	csrr x31, cycle
	li x6, 0x1003000
	csrw tlb_flush_page, x6
	csrwi tlb_flush_asid, 1
	ld x7, 8(x1)
	pass
.data
	.dword 1 2 3 4
	.page
	.dword 5 6
	.page
	.dword 7
	.page
	.dword 8
`

type mkTLB func(w tlb.Walker) (tlb.TLB, error)

var designs = map[string]mkTLB{
	"SA": func(w tlb.Walker) (tlb.TLB, error) { return tlb.NewSetAssoc(32, 8, w) },
	"FA": func(w tlb.Walker) (tlb.TLB, error) { return tlb.NewFullyAssoc(32, w) },
	"SP": func(w tlb.Walker) (tlb.TLB, error) { return tlb.NewSP(32, 8, 4, w) },
	"RF": func(w tlb.Walker) (tlb.TLB, error) { return tlb.NewRF(32, 8, w, 0x5ecbef1) },
}

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func buildSys(t *testing.T, prog *isa.Program, mk mkTLB, memo bool) *cpu.Machine {
	t.Helper()
	m := mem.New(20)
	pt := ptw.New(m, 0x100000)
	var w tlb.Walker = pt
	if memo {
		w = trace.NewMemoWalker(pt, 2, 0x1000, 0x40)
	}
	tl, err := mk(w)
	if err != nil {
		t.Fatalf("tlb: %v", err)
	}
	core := cpu.New(tl, pt, m, coreCfg)
	if err := core.Load(prog, []tlb.ASID{0, 1}); err != nil {
		t.Fatalf("load: %v", err)
	}
	return core
}

// snapshot compares everything replay promises to reproduce.
type snapshot struct {
	code    int64
	err     string
	cycles  uint64
	instret uint64
	stats   tlb.Stats
	regs    [isa.NumRegs]uint64
}

func runFull(m *cpu.Machine, fuel uint64) snapshot {
	code, err := m.Run(fuel)
	s := snapshot{code: code, cycles: m.Cycles(), instret: m.Instret(), stats: m.TLB.Stats()}
	if err != nil {
		s.err = err.Error()
	}
	for i := range s.regs {
		s.regs[i] = m.Reg(i)
	}
	return s
}

func runReplay(m *cpu.Machine, tr *trace.Trace, prog *isa.Program, fuel uint64) snapshot {
	vm := trace.NewVM(m.TLB, m.ITLB(), prog, coreCfg)
	code, err := vm.Run(tr, fuel)
	s := snapshot{code: code, cycles: vm.Cycles(), instret: vm.Instret(), stats: m.TLB.Stats()}
	if err != nil {
		s.err = err.Error()
	}
	if err == nil {
		for i := range s.regs {
			s.regs[i] = vm.Reg(i)
		}
	}
	return s
}

func capture(t *testing.T, prog *isa.Program, mk mkTLB, fuel uint64) *trace.Trace {
	t.Helper()
	tr, err := trace.Capture(buildSys(t, prog, mk, false), fuel)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return tr
}

// TestReplayBitIdentity proves replay equals full execution — exit code,
// cycle count, retired instructions, every TLB counter and every final
// register — on all four designs, both with the raw walker and the
// memoizing walker.
func TestReplayBitIdentity(t *testing.T) {
	prog := assemble(t, testSrc)
	for name, mk := range designs {
		for _, memo := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/memo=%v", name, memo), func(t *testing.T) {
				tr := capture(t, prog, mk, 10_000)
				want := runFull(buildSys(t, prog, mk, false), 10_000)
				got := runReplay(buildSys(t, prog, mk, memo), tr, prog, 10_000)
				if got != want {
					t.Errorf("replay diverged:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestReplayFuelIdentity sweeps every instruction budget from zero to past
// the program's length: replay must exhaust fuel (or halt) exactly where
// full execution does, with identical partial cycle and counter state.
func TestReplayFuelIdentity(t *testing.T) {
	prog := assemble(t, testSrc)
	for name, mk := range designs {
		t.Run(name, func(t *testing.T) {
			tr := capture(t, prog, mk, 10_000)
			full := runFull(buildSys(t, prog, mk, false), 10_000)
			for fuel := uint64(0); fuel <= full.instret+2; fuel++ {
				want := runFull(buildSys(t, prog, mk, false), fuel)
				got := runReplay(buildSys(t, prog, mk, true), tr, prog, fuel)
				// Registers are only defined after a clean halt.
				if want.err != "" {
					want.regs = [isa.NumRegs]uint64{}
				}
				if got != want {
					t.Errorf("fuel %d: replay diverged:\n got %+v\nwant %+v", fuel, got, want)
				}
				if fuel < full.instret && !errors.Is(func() error {
					vm := trace.NewVM(buildSys(t, prog, mk, false).TLB, nil, prog, coreCfg)
					_, err := vm.Run(tr, fuel)
					return err
				}(), cpu.ErrFuelExhausted) {
					t.Errorf("fuel %d: want ErrFuelExhausted", fuel)
				}
			}
		})
	}
}

// TestCaptureFaultFallback: Capture refuses programs that fault, and the
// caller's fallback (full execution) reproduces the fault.
func TestCaptureFaultFallback(t *testing.T) {
	src := `
	li x1, 0x2000000
	ld x2, 0(x1)
	pass
.data
	.dword 1
`
	prog := assemble(t, src)
	mk := designs["SA"]
	_, err := trace.Capture(buildSys(t, prog, mk, false), 1000)
	if !errors.Is(err, trace.ErrUnrepresentable) {
		t.Fatalf("capture of faulting program: got %v, want ErrUnrepresentable", err)
	}
}

// TestUnrepresentable enumerates the soundness limits: stores, tainted
// control flow, tainted addresses, over-long traces, fuel exhaustion.
func TestUnrepresentable(t *testing.T) {
	cases := map[string]string{
		"store":          "li x1, 0x1000000\n sd x2, 0(x1)\n pass\n.data\n .dword 1",
		"tainted-branch": "csrr x1, cycle\n beq x1, x0, done\ndone: pass",
		"tainted-load":   "li x1, 0x1000000\n csrr x2, cycle\n add x1, x1, x2\n ld x3, 0(x1)\n pass\n.data\n .dword 1",
		"no-halt":        "li x1, 1\nloop: j loop",
	}
	mk := designs["SA"]
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			prog := assemble(t, src)
			_, err := trace.Capture(buildSys(t, prog, mk, false), 100_000)
			if !errors.Is(err, trace.ErrUnrepresentable) {
				t.Fatalf("got %v, want ErrUnrepresentable", err)
			}
		})
	}
}

// TestReplayWithITLB covers the I-TLB path: every instruction fetch
// translates through a second TLB, folded into the op stream.
func TestReplayWithITLB(t *testing.T) {
	prog := assemble(t, testSrc)
	const textBase = 0x400000
	build := func() *cpu.Machine {
		m := mem.New(20)
		pt := ptw.New(m, 0x100000)
		dt, err := tlb.NewSetAssoc(32, 8, pt)
		if err != nil {
			t.Fatal(err)
		}
		it, err := tlb.NewSetAssoc(8, 4, pt)
		if err != nil {
			t.Fatal(err)
		}
		core := cpu.New(dt, pt, m, coreCfg)
		core.SetITLB(it, textBase)
		if err := core.Load(prog, []tlb.ASID{0, 1}); err != nil {
			t.Fatal(err)
		}
		return core
	}
	tr, err := trace.Capture(build(), 10_000)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	want := runFull(build(), 10_000)
	m := build()
	got := runReplay(m, tr, prog, 10_000)
	if got != want {
		t.Errorf("replay diverged:\n got %+v\nwant %+v", got, want)
	}
	// The I-TLB's own counters must match too.
	if is, ws := m.ITLB().Stats(), func() tlb.Stats { f := build(); f.Run(10_000); return f.ITLB().Stats() }(); is != ws {
		t.Errorf("itlb stats: got %+v want %+v", is, ws)
	}
	// Fuel sweep with the I-TLB in place.
	for fuel := uint64(0); fuel <= want.instret+1; fuel++ {
		w := runFull(build(), fuel)
		g := runReplay(build(), tr, prog, fuel)
		if w.err != "" {
			w.regs = [isa.NumRegs]uint64{}
		}
		if g != w {
			t.Errorf("fuel %d: replay diverged:\n got %+v\nwant %+v", fuel, g, w)
		}
	}
}

// TestMemoWalker checks memoized results (positive and negative) match the
// raw walker exactly, including error identity across repeats.
func TestMemoWalker(t *testing.T) {
	m := mem.New(20)
	pt := ptw.New(m, 0x100000)
	if _, err := pt.MapRange([]tlb.ASID{0}, 0x1000, 4); err != nil {
		t.Fatal(err)
	}
	w := trace.NewMemoWalker(pt, 1, 0x1000, 8)
	for _, vpn := range []tlb.VPN{0x1000, 0x1003, 0x1004, 0x2000, 0x1000, 0x1004, 0x2000} {
		wantPPN, wantCyc, wantErr := pt.Walk(0, vpn)
		gotPPN, gotCyc, gotErr := w.Walk(0, vpn)
		if gotPPN != wantPPN || gotCyc != wantCyc || (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("vpn %#x: got (%v %v %v) want (%v %v %v)", vpn, gotPPN, gotCyc, gotErr, wantPPN, wantCyc, wantErr)
		}
		if gotErr != nil && gotErr.Error() != wantErr.Error() {
			t.Fatalf("vpn %#x: error %q != %q", vpn, gotErr, wantErr)
		}
	}
	// Repeated misses return the identical error value.
	_, _, e1 := w.Walk(0, 0x1004)
	_, _, e2 := w.Walk(0, 0x1004)
	if e1 != e2 {
		t.Fatal("memoized errors should be the same value")
	}
	// Unknown ASIDs take the overflow-map path.
	if _, _, err := w.Walk(7, 0x1000); err == nil {
		t.Fatal("want error for unmapped ASID")
	}
}

// TestCodecRoundTrip: a captured trace survives Encode/Decode exactly, and
// the decoded trace replays identically to the original.
func TestCodecRoundTrip(t *testing.T) {
	prog := assemble(t, testSrc)
	tr := capture(t, prog, designs["RF"], 10_000)
	enc := trace.Encode(tr)
	dec, err := trace.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatalf("decode(encode(tr)) != tr:\n got %+v\nwant %+v", dec, tr)
	}
	if re := trace.Encode(dec); !bytes.Equal(re, enc) {
		t.Fatal("re-encode not byte-identical")
	}
	want := runReplay(buildSys(t, prog, designs["RF"], false), tr, prog, 10_000)
	got := runReplay(buildSys(t, prog, designs["RF"], false), dec, prog, 10_000)
	if got != want {
		t.Errorf("decoded trace replays differently:\n got %+v\nwant %+v", got, want)
	}
}
