package trace

import (
	"bytes"
	"errors"
	"testing"

	"securetlb/internal/isa"
)

// fuzzSeedTraces are hand-built traces covering every op kind, both flags,
// tainted-register masks and non-trivial final registers — the canonical
// encodings the fuzzer mutates from.
func fuzzSeedTraces() []*Trace {
	minimal := &Trace{Ops: []Op{{Kind: KindHalt}}}
	full := &Trace{
		Ops: []Op{
			{Kind: KindSecVictim, Arg: 1},
			{Kind: KindSecBase, Adv: 1, Arg: 0x1002},
			{Kind: KindSecSize, Arg: 4},
			{Kind: KindFlushAll},
			{Kind: KindSetASID, Arg: 1},
			{Kind: KindDLookup, PC: 6, Adv: 1, Arg: 0x1002},
			{Kind: KindIFetch, PC: 7, Arg: 0x400, Fold: true},
			{Kind: KindIFetch, PC: 8, Arg: 0x400},
			{Kind: KindExec, PC: 8, SkipBase: true, In: isa.Instr{Op: isa.OpCsrr, Rd: 28, CSR: isa.CSRTLBMissCount}},
			{Kind: KindSetReg, Reg: 3, Arg: 42},
			{Kind: KindExec, PC: 9, In: isa.Instr{Op: isa.OpSub, Rd: 30, Rs1: 29, Rs2: 28}},
			{Kind: KindFlushPage, Arg: 0x1003000},
			{Kind: KindFlushPageAll, Arg: 0x1003000},
			{Kind: KindFlushASID, Arg: 1},
			{Kind: KindExec, PC: 12, In: isa.Instr{Op: isa.OpAddi, Rd: 30, Rs1: 30, Imm: -4}},
			{Kind: KindHalt, PC: 13, Adv: 2, Arg: ^uint64(0)}, // exit -1
		},
		TaintedRegs: 1<<28 | 1<<30,
		DirtyRegs:   1<<3 | 1<<28 | 1<<30,
		Exit:        -1,
		Instret:     17,
	}
	full.FinalRegs[3] = 42
	full.FinalRegs[28] = 7
	full.FinalRegs[30] = 0xfffffffffffffffc
	return []*Trace{minimal, full}
}

// FuzzTraceDecode mirrors isa.FuzzDecode for the trace codec: Decode never
// panics, every rejection is ErrDecode-typed, and decode∘encode is the
// identity on everything accepted (canonical varints, checksum and
// halt-placement rules make each trace's encoding unique).
func FuzzTraceDecode(f *testing.F) {
	seeds := fuzzSeedTraces()
	for _, tr := range seeds {
		f.Add(Encode(tr))
	}
	valid := Encode(seeds[1])
	corrupt := func(idx int, b byte) {
		c := append([]byte(nil), valid...)
		c[idx%len(c)] ^= b
		f.Add(c)
	}
	corrupt(0, 0xff)           // magic
	corrupt(4, 0x01)           // version
	corrupt(5, 0x01)           // exit
	corrupt(8, 0xff)           // register area
	corrupt(40, 0x80)          // force a non-canonical varint
	corrupt(len(valid)-1, 0x1) // checksum
	f.Add(valid[:len(valid)-9]) // truncated body, checksum stripped
	f.Add(valid[:4])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("Decode error is not ErrDecode-typed: %v", err)
			}
			return
		}
		if n := len(tr.Ops); n == 0 || tr.Ops[n-1].Kind != KindHalt {
			t.Fatalf("accepted trace does not end in halt")
		}
		for i := range tr.Ops {
			op := &tr.Ops[i]
			if op.Kind >= kindCount {
				t.Fatalf("accepted op %d has invalid kind %d", i, op.Kind)
			}
			if op.Kind == KindHalt && i != len(tr.Ops)-1 {
				t.Fatalf("accepted interior halt at op %d", i)
			}
			if op.Kind == KindSetReg && (op.Reg == 0 || op.Reg >= isa.NumRegs) {
				t.Fatalf("accepted op %d with bad set-reg target %d", i, op.Reg)
			}
			if op.Kind == KindExec && !execOpOK(op.In.Op) {
				t.Fatalf("accepted op %d embedding %s", i, op.In.Op)
			}
		}
		if re := Encode(tr); !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not byte-identical:\n in:  %x\n out: %x", b, re)
		}
	})
}
