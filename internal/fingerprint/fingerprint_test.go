package fingerprint

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestFieldMatchesLegacyEncoding pins the wire format the checkpoint
// checksums depend on: each field is its bytes plus a NUL terminator, hashed
// with FNV-64a. Changing this silently would invalidate every existing
// checkpoint file.
func TestFieldMatchesLegacyEncoding(t *testing.T) {
	h := fnv.New64a()
	fmt.Fprintf(h, "v2\x00fp\x00k\x00{}\x00")
	want := fmt.Sprintf("%016x", h.Sum64())
	got := New().Fieldf("v%d", 2).Field("fp").Field("k").Field("{}").Sum()
	if got != want {
		t.Errorf("digest = %s, want legacy %s", got, want)
	}
}

func TestFieldBoundaries(t *testing.T) {
	a := New().Field("ab").Field("c").Sum()
	b := New().Field("a").Field("bc").Sum()
	if a == b {
		t.Errorf("field boundaries not separated: %s == %s", a, b)
	}
}

func TestSumIsIncremental(t *testing.T) {
	d := New().Field("x")
	first := d.Sum()
	if again := d.Sum(); again != first {
		t.Errorf("Sum changed without new fields: %s then %s", first, again)
	}
	if ext := d.Field("y").Sum(); ext == first {
		t.Error("appending a field did not change the digest")
	}
}

func TestJSONEquality(t *testing.T) {
	type spec struct {
		Kind   string `json:"kind"`
		Trials int    `json:"trials"`
	}
	a, err := JSON(spec{Kind: "secbench", Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSON(spec{Kind: "secbench", Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal values content-address differently: %s vs %s", a, b)
	}
	c, err := JSON(spec{Kind: "secbench", Trials: 501})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different values share a content address")
	}
}

// TestJSONMapKeyOrder: encoding/json sorts map keys, so maps populated in
// different orders must share an address.
func TestJSONMapKeyOrder(t *testing.T) {
	a, _ := JSON(map[string]int{"x": 1, "y": 2})
	b, _ := JSON(map[string]int{"y": 2, "x": 1})
	if a != b {
		t.Errorf("map key order leaked into the address: %s vs %s", a, b)
	}
}

func TestJSONUnmarshalableValue(t *testing.T) {
	if _, err := JSON(make(chan int)); err == nil {
		t.Error("JSON of a channel succeeded")
	}
}
