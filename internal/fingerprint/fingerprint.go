// Package fingerprint is the one content-addressing scheme shared by the
// durable layers: checkpoint files validate their campaign identity with it,
// and the job queue coalesces identical campaign requests by it.
//
// A fingerprint is the FNV-64a digest of a sequence of NUL-terminated
// fields, rendered as 16 lowercase hex digits. The NUL terminator makes the
// field boundaries unambiguous (["ab","c"] and ["a","bc"] digest
// differently), and FNV-64a keeps the scheme dependency-free and stable
// across releases — the digest is an identity check against accidental
// mixups, not a cryptographic commitment.
package fingerprint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
)

// Digest accumulates NUL-terminated fields into an FNV-64a hash.
// The zero value is not usable; call New.
type Digest struct {
	h hash.Hash64
}

// New returns an empty digest.
func New() *Digest {
	return &Digest{h: fnv.New64a()}
}

// Field appends one field (the field's bytes followed by a NUL terminator).
// It returns the digest for chaining.
func (d *Digest) Field(s string) *Digest {
	d.h.Write([]byte(s))
	d.h.Write([]byte{0})
	return d
}

// Fieldf appends one Sprintf-formatted field.
func (d *Digest) Fieldf(format string, args ...any) *Digest {
	return d.Field(fmt.Sprintf(format, args...))
}

// Sum renders the digest of the fields appended so far as 16 hex digits.
// The digest remains usable; further fields extend it.
func (d *Digest) Sum() string {
	return fmt.Sprintf("%016x", d.h.Sum64())
}

// JSON content-addresses a value by its compact JSON encoding: the value is
// marshalled, compacted, and digested as a single field. Map keys are sorted
// by encoding/json, so two equal values always share an address; struct
// field order is part of the address, as it is part of the type.
func JSON(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("fingerprint: %w", err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return "", fmt.Errorf("fingerprint: %w", err)
	}
	return New().Field(buf.String()).Sum(), nil
}
