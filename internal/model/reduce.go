package model

// This file implements Algorithm 1 of Appendix A: reduction of a β-step
// (β > 3) access pattern to its effective three-step vulnerabilities,
// demonstrating the soundness of the three-step model — any longer attack is
// equivalent to one or more of the Table 2 patterns.
//
// Rule 1: a ★ in the middle splits the pattern (★ becomes Step 1 of the
// second part); a trailing ★ is deleted.
// Rule 2: likewise for whole-TLB invalidations (A_inv / V_inv).
// Rule 3: two adjacent steps that are both u-operations, or both known to
// the attacker, collapse into one (the later one — it determines the block's
// state).
// Rule 4: each three-step window of the resulting alternating pattern is
// checked against the effective vulnerability list; two-step remainders are
// checked with an explicit ★ prepended (footnote 4).

// Reduction is the result of reducing a β-step pattern.
type Reduction struct {
	// Segments are the post-split, post-collapse step sequences.
	Segments [][]State
	// Effective lists the distinct Table 2 vulnerabilities embedded in the
	// pattern (empty when the pattern is harmless).
	Effective []Vulnerability
}

// Reduce applies Algorithm 1 to an arbitrary-length step sequence.
func Reduce(steps []State) Reduction {
	var red Reduction

	// Rules 1 and 2: split at non-initial ★ / inv states.
	var segments [][]State
	var cur []State
	for i, s := range steps {
		if i > 0 && len(cur) > 0 && (s == Star || s.Class == ClassInvAll) {
			segments = append(segments, cur)
			cur = []State{s}
			continue
		}
		cur = append(cur, s)
	}
	if len(cur) > 0 {
		segments = append(segments, cur)
	}
	// Trailing ★ / inv in a segment carries no final observation: delete.
	for i := range segments {
		seg := segments[i]
		for len(seg) > 0 {
			last := seg[len(seg)-1]
			if last == Star || last.Class == ClassInvAll {
				seg = seg[:len(seg)-1]
			} else {
				break
			}
		}
		segments[i] = collapse(seg)
	}
	red.Segments = segments

	// Rule 4: scan windows against the effective list.
	effective := Enumerate()
	seen := map[Pattern]bool{}
	addIfEffective := func(p Pattern) {
		if seen[p] {
			return
		}
		if v, ok := Find(effective, p); ok {
			seen[p] = true
			red.Effective = append(red.Effective, v)
		}
	}
	for _, seg := range segments {
		switch {
		case len(seg) >= 3:
			for i := 0; i+3 <= len(seg); i++ {
				addIfEffective(Pattern{seg[i], seg[i+1], seg[i+2]})
			}
			// A two-step tail after a leading flush-like step was already
			// covered by the windows; a two-step head is covered below.
			fallthrough
		case len(seg) == 2:
			if len(seg) == 2 {
				// Footnote 4: two-step attacks are the ★ ⇝ · ⇝ · patterns.
				addIfEffective(Pattern{Star, seg[0], seg[1]})
			}
		}
	}
	return red
}

// collapse applies Rule 3 until the segment alternates between u-operations
// and attacker-known operations. The later of two same-kind adjacent steps
// wins, because it determines the resulting block state.
func collapse(seg []State) []State {
	out := make([]State, 0, len(seg))
	for _, s := range seg {
		if n := len(out); n > 0 {
			prev := out[n-1]
			// ★ / inv leaders never merge with what follows... except two
			// adjacent known operations, where the invalidation is itself
			// known and superseded by a following known access.
			sameKind := (prev.Class.InvolvesU() && s.Class.InvolvesU()) ||
				(prev.KnownToAttacker() && s.KnownToAttacker())
			if sameKind {
				out[n-1] = s
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// Alternates reports whether a collapsed segment strictly alternates between
// u-operations and non-u operations (the postcondition of Rule 3). Leading ★
// states are skipped.
func Alternates(seg []State) bool {
	prevU, started := false, false
	for _, s := range seg {
		if s == Star {
			continue
		}
		u := s.Class.InvolvesU()
		if started && u == prevU {
			return false
		}
		prevU, started = u, true
	}
	return true
}
