package model

import "sync"

// This file implements the Appendix B extension: when an ISA (or a software
// mechanism such as mprotect()) allows invalidating the TLB entry of one
// specific address, the additional states of Table 6 become available and
// the enumeration yields the further vulnerabilities of Table 7, including
// strategies whose final observation is the timing of an *invalidation*
// (possible when invalidation is implemented with the two-cycle
// check-then-clear optimisation, as in TLB Flush + Flush).

// EnumerateExtended returns the additional vulnerabilities enabled by
// targeted invalidation — the Table 7 rows. Patterns already present in the
// base Table 2 enumeration are excluded.
func EnumerateExtended() []Vulnerability {
	v, _ := EnumerateExtendedWithStats()
	return v
}

// enumerateExtendedOnce caches the extended enumeration like enumerateOnce
// caches the base one.
var enumerateExtendedOnce struct {
	sync.Once
	vulns []Vulnerability
	stats EnumerationStats
}

// EnumerateExtendedWithStats is EnumerateExtended plus stage counts over the
// enlarged 17-state universe.
func EnumerateExtendedWithStats() ([]Vulnerability, EnumerationStats) {
	enumerateExtendedOnce.Do(func() {
		all, stats := enumerate(ExtendedStates(), true)
		var extra []Vulnerability
		for _, v := range all {
			if hasTargetedInv(v.Pattern) {
				extra = append(extra, v)
			}
		}
		enumerateExtendedOnce.vulns, enumerateExtendedOnce.stats = extra, stats
	})
	out := make([]Vulnerability, len(enumerateExtendedOnce.vulns))
	copy(out, enumerateExtendedOnce.vulns)
	return out, enumerateExtendedOnce.stats
}

func hasTargetedInv(p Pattern) bool {
	for _, s := range p {
		if s.Class.IsTargetedInvalidation() {
			return true
		}
	}
	return false
}

// accessize replaces each targeted invalidation with the access of the same
// address by the same actor, for strategy naming by analogy.
func accessize(p Pattern) Pattern {
	q := p
	for i := range q {
		if q[i].Class.IsTargetedInvalidation() {
			q[i].Class = q[i].Class.target()
		}
	}
	return q
}

func flipObs(o Observation) Observation {
	if o == ObsFast {
		return ObsSlow
	}
	return ObsFast
}

// extendedStrategyName names the Appendix B strategies. The scheme mirrors
// Table 7's naming:
//
//   - a targeted invalidation in Step 2 gives the Flush + Probe family
//     (Flush + Time when both ends involve u), with an " Invalidation"
//     suffix when Step 3's own invalidation timing is what is measured;
//   - a targeted invalidation in Step 3 names the pattern after the
//     analogous access-based strategy plus " Invalidation" (a present entry
//     invalidates slowly, so presence maps to the access-hit case), except
//     that an invalidation-primed reload probed by invalidation is the
//     classic TLB Flush + Flush;
//   - a Step-1-only invalidation keeps the base strategy name (it is just
//     another way to put the block into a known state), except
//     V_u^inv ⇝ a ⇝ V_u, which is TLB Reload + Time.
func extendedStrategyName(p Pattern, obs Observation) string {
	if p[1].Class.IsTargetedInvalidation() {
		base := "TLB Flush + Probe"
		if p[0].Class.InvolvesU() && p[2].Class.InvolvesU() {
			base = "TLB Flush + Time"
		}
		if p[2].Class.IsTargetedInvalidation() {
			return base + " Invalidation"
		}
		return base
	}
	if p[2].Class.IsTargetedInvalidation() {
		base := strategyName(accessize(p), flipObs(obs))
		if p[0].Class.IsInvalidation() &&
			(base == "TLB Flush + Reload" || base == "TLB Internal Collision") {
			return "TLB Flush + Flush"
		}
		return base + " Invalidation"
	}
	// Targeted invalidation only in Step 1.
	if p[0].Class == ClassUInv && p[2].Class.InvolvesU() {
		return "TLB Reload + Time"
	}
	return strategyName(accessize(p), obs)
}
