package model

import "testing"

func TestDefenseCountsMatchPaper(t *testing.T) {
	// Paper §5.3.2 / Table 4: the standard SA TLB defends 10 of the 24
	// types, the SP TLB 14, and the RF TLB all 24.
	reports := AnalyzeDefenses()
	c := CountDefenses(reports)
	if c.Total != 24 {
		t.Fatalf("total = %d", c.Total)
	}
	if c.SA != 10 {
		t.Errorf("SA defends %d, want 10", c.SA)
	}
	if c.SP != 14 {
		t.Errorf("SP defends %d, want 14", c.SP)
	}
	if c.RF != 24 {
		t.Errorf("RF defends %d, want 24", c.RF)
	}
}

func TestSADefendsExactlyTheCrossProcessTypes(t *testing.T) {
	// Table 4: the bold (C = 0) SA rows are the 6 TLB Flush + Reload, 2 TLB
	// Evict + Probe and 2 TLB Prime + Time vulnerabilities.
	wantDefended := map[string]bool{
		"TLB Flush + Reload": true,
		"TLB Evict + Probe":  true,
		"TLB Prime + Time":   true,
	}
	for _, r := range AnalyzeDefenses() {
		want := wantDefended[r.Vulnerability.Strategy]
		if r.SADefended != want {
			t.Errorf("SA defense of %s (%s): %v, want %v",
				r.Vulnerability, r.Vulnerability.Strategy, r.SADefended, want)
		}
	}
}

func TestSPAddsTheExternalMissBasedTypes(t *testing.T) {
	// SP defends everything SA does, plus TLB Evict + Time and TLB Prime +
	// Probe (the 4 external miss-based types), but remains vulnerable to
	// the victim-internal Bernstein and Internal Collision types.
	for _, r := range AnalyzeDefenses() {
		if r.SADefended && !r.SPDefended {
			t.Errorf("%s: SA defends but SP does not — partitioning must not weaken", r.Vulnerability)
		}
		switch r.Vulnerability.Strategy {
		case "TLB Evict + Time", "TLB Prime + Probe":
			if !r.SPDefended {
				t.Errorf("SP should defend %s", r.Vulnerability)
			}
		case "TLB version of Bernstein's Attack", "TLB Internal Collision":
			if r.SPDefended {
				t.Errorf("SP cannot defend the victim-internal %s", r.Vulnerability)
			}
		}
	}
}

func TestSPDefendedMacroTypes(t *testing.T) {
	// §1: "SP TLB is able to further prevent 4 more external miss-based
	// vulnerabilities (labeled EM)". Everything SP defends beyond SA is EM.
	for _, r := range AnalyzeDefenses() {
		if r.SPDefended && !r.SADefended && r.Vulnerability.Macro != "EM" {
			t.Errorf("%s: SP-only defense should be EM, got %s", r.Vulnerability, r.Vulnerability.Macro)
		}
	}
}

func TestASIDOracleDetails(t *testing.T) {
	// Flush+Reload under ASID tagging: the attacker's reload of a can never
	// hit the victim's translation, so the observation is Slow in every
	// scenario — uninformative.
	out := Analyze(Pattern{Ad, Vu, Aa}, DesignASID)
	if out.Effective {
		t.Fatalf("F+R should be defended by ASIDs: %+v", out)
	}
	for sc, obs := range out.PerScenario {
		if obs != ObsSlow {
			t.Errorf("scenario %s: obs %s, want slow everywhere", sc, obs)
		}
	}
	// Prime+Probe is NOT defended: eviction still crosses ASIDs.
	if out := Analyze(Pattern{Ad, Vu, Ad}, DesignASID); !out.Effective {
		t.Error("P+P must remain effective under ASIDs")
	}
}

func TestPartitionedOracleDetails(t *testing.T) {
	// Under partitioning the victim's u fill cannot evict the attacker's
	// primed d, so Prime+Probe always hits.
	out := Analyze(Pattern{Ad, Vu, Ad}, DesignPartitioned)
	if out.Effective {
		t.Fatalf("P+P should be defended by partitioning: %+v", out)
	}
	for sc, obs := range out.PerScenario {
		if obs != ObsFast {
			t.Errorf("scenario %s: obs %s, want fast everywhere", sc, obs)
		}
	}
	// Victim-internal collision remains.
	if out := Analyze(Pattern{Vd, Vu, Va}, DesignPartitioned); !out.Effective {
		t.Error("Internal Collision must remain effective under partitioning")
	}
}

func TestDesignStrings(t *testing.T) {
	if DesignShared.String() != "shared" || DesignASID.String() != "asid" ||
		DesignPartitioned.String() != "partitioned" {
		t.Error("design names wrong")
	}
	if ObsFast.String() != "fast" || ObsSlow.String() != "slow" {
		t.Error("observation names wrong")
	}
	if ScenSameAddr.String() != "same-addr" || !ScenSameAddr.Mapped() || ScenDiff.Mapped() {
		t.Error("scenario accessors wrong")
	}
}
