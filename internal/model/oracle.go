package model

// This file implements the symbolic single-block simulation oracle.
//
// The paper models attacks against one TLB block (§3.2): every step either
// installs a translation into the block, invalidates it, or leaves it
// unknown, and the final step's timing (hit = fast, miss = slow) may reveal
// whether the victim's secret address u mapped to the block. The oracle
// plays each candidate pattern forward under the possible relations between
// u and the attacker-tested addresses:
//
//	SameAddr — u is exactly the known in-range address a;
//	SameSet  — u is a different page with the same page index, so it
//	           conflicts with the tested block (evicts / is evicted);
//	Diff     — u maps somewhere else entirely.
//
// A pattern is an effective vulnerability when the final observation is
// known in every scenario and some observation value occurs only in mapped
// (SameAddr/SameSet) scenarios — then seeing that value tells the attacker
// that u mapped, which is exactly the leak (rule (7)'s ambiguity check falls
// out of this definition, as does rule (3): an un-set block stays Unknown
// and poisons the observation).
//
// Running the same oracle under different hit/fill semantics (Design) models
// the defenses: ASID tagging (the standard SA TLB) requires the process ID
// to match on hits, and way partitioning (the SP TLB) confines each actor's
// fills to its own partition. Vulnerabilities that become non-informative
// under a design are the ones that design defends, reproducing Table 4's
// zero-capacity pattern.

// Design selects the TLB semantics the oracle simulates.
type Design uint8

const (
	// DesignShared is the generic model of §3: translations are matched by
	// address alone (attacker and victim may share an address space). This
	// is the model that yields the 24 vulnerabilities of Table 2.
	DesignShared Design = iota
	// DesignASID models the standard SA TLB: a hit additionally requires
	// the process ID to match (victim and attacker have different ASIDs).
	DesignASID
	// DesignPartitioned models the SP TLB: ASID-tagged hits plus statically
	// partitioned fills — an actor's fill can never evict the other actor's
	// entry.
	DesignPartitioned
	// DesignFlushed models the FS TLB (SIMF-style): ASID-tagged hits plus a
	// full flush at every context switch (the step's actor differs from the
	// previous step's) and at every secure-region exit (the victim follows a
	// secure access — to u or to the in-region shared address a — with a
	// non-secure one). Nothing installed before a switch survives it, so no
	// pattern that alternates actors can carry timing information.
	DesignFlushed
)

// String names the design.
func (d Design) String() string {
	switch d {
	case DesignShared:
		return "shared"
	case DesignASID:
		return "asid"
	case DesignPartitioned:
		return "partitioned"
	case DesignFlushed:
		return "flushed"
	}
	return "design?"
}

// Scenario is the relation between u and the attacker-tested block.
type Scenario uint8

const (
	// ScenSameAddr: u == a.
	ScenSameAddr Scenario = iota
	// ScenSameSet: u != a but u has the same page index (conflicts).
	ScenSameSet
	// ScenDiff: u maps to a different block.
	ScenDiff
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenSameAddr:
		return "same-addr"
	case ScenSameSet:
		return "same-set"
	case ScenDiff:
		return "diff"
	}
	return "scen?"
}

// Mapped reports whether the scenario is a "mapped" victim behaviour in the
// sense of Table 3.
func (s Scenario) Mapped() bool { return s != ScenDiff }

// Observation is the attacker-visible timing of the final step.
type Observation uint8

const (
	// ObsNone: the pattern is not a vulnerability.
	ObsNone Observation = iota
	// ObsFast: the informative observation is a TLB hit (or, for a
	// targeted-invalidation step 3, an absent entry's quick invalidation).
	ObsFast
	// ObsSlow: the informative observation is a TLB miss (or a present
	// entry's longer invalidation).
	ObsSlow
	// ObsUnknown: the timing cannot be predicted from the pattern.
	ObsUnknown
)

// String renders the paper's "(fast)" / "(slow)" annotation content.
func (o Observation) String() string {
	switch o {
	case ObsFast:
		return "fast"
	case ObsSlow:
		return "slow"
	case ObsUnknown:
		return "unknown"
	}
	return "none"
}

// contentKind is the knowledge state of one simulated block.
type contentKind uint8

const (
	kUnknown contentKind = iota
	kInvalid
	kHeld
)

// content is the symbolic contents of one TLB block. For an unknown block,
// excl records address tags that are known NOT to be present — a targeted
// invalidation of address t (Appendix B) guarantees t's absence even when
// the rest of the block state is unknown, which is what makes strategies
// like TLB Reload + Time work. Exclusions are tracked in the shared
// (generic) design only; the ASID-aware designs treat unknown blocks
// conservatively.
type content struct {
	kind  contentKind
	tag   Class // ClassU, ClassA, ClassAlias or ClassD
	owner Actor
	excl  uint16 // bitmask over Class values, valid when kind == kUnknown
}

// blockSim simulates the tested block (where a, a^alias and d map) and the
// "other" block (where u maps in the Diff scenario), each split per actor
// partition when the design is partitioned.
type blockSim struct {
	design Design
	scen   Scenario
	// blocks[loc][part]: loc 0 = tested block, 1 = u's block in Diff.
	// part 0 = attacker partition, part 1 = victim partition; designs
	// without partitioning use part 0 only.
	blocks [2][2]content
	nparts int

	// lastActor/lastSecure drive DesignFlushed's flush triggers: the actor
	// of the previous step (ActorNone before the first step and after a ★,
	// when the running context is unknown) and whether the victim's previous
	// access touched the secure region.
	lastActor  Actor
	lastSecure bool
}

func newBlockSim(d Design, s Scenario) *blockSim {
	b := &blockSim{design: d, scen: s, nparts: 1}
	if d == DesignPartitioned {
		b.nparts = 2
	}
	// The model assumes the analysis starts from a known (flushed) state —
	// that is what Step 1 establishes and what the ★ state exists to deny
	// (rule (3)); the micro security benchmarks likewise flush the TLB at
	// the start of every trial.
	for l := 0; l < 2; l++ {
		for p := 0; p < 2; p++ {
			b.blocks[l][p] = content{kind: kInvalid}
		}
	}
	return b
}

// loc returns which block an operation on the given target class touches.
func (b *blockSim) loc(target Class) int {
	if target == ClassU && b.scen == ScenDiff {
		return 1
	}
	return 0
}

// partIdx returns the fill partition for an actor.
func (b *blockSim) partIdx(a Actor) int {
	if b.nparts == 1 {
		return 0
	}
	if a == ActorV {
		return 1
	}
	return 0
}

// tagsMatch reports whether a stored tag satisfies a lookup for target,
// given the scenario's u↔a relation.
func (b *blockSim) tagsMatch(stored, target Class) bool {
	if stored == target {
		return true
	}
	uv := (stored == ClassU && target == ClassA) || (stored == ClassA && target == ClassU)
	return uv && b.scen == ScenSameAddr
}

// ownerOK applies the design's process-ID check.
func (b *blockSim) ownerOK(stored, actor Actor) bool {
	if b.design == DesignShared {
		return true
	}
	return stored == actor
}

// lookupResult is the tri-state outcome of a symbolic lookup.
type lookupResult uint8

const (
	lrMiss lookupResult = iota
	lrHit
	lrUnknown
)

// matchableTags lists the stored tags that would satisfy a lookup for
// target under the current scenario.
func (b *blockSim) matchableTags(target Class) []Class {
	tags := []Class{target}
	if b.scen == ScenSameAddr {
		switch target {
		case ClassU:
			tags = append(tags, ClassA)
		case ClassA:
			tags = append(tags, ClassU)
		}
	}
	return tags
}

// unknownCouldMatch reports whether an unknown block might still contain a
// translation satisfying a lookup for target, given its exclusion set.
// Exclusions come from targeted invalidations, which are address-based
// (e.g. a TLB shootdown) and therefore valid regardless of the design's
// ASID semantics.
func (b *blockSim) unknownCouldMatch(c content, target Class) bool {
	for _, t := range b.matchableTags(target) {
		if c.excl&(1<<t) == 0 {
			return true
		}
	}
	return false
}

// lookupForInvalidation checks whether a targeted invalidation of target
// would find a matching entry, ignoring ownership (invalidation is
// address-based).
func (b *blockSim) lookupForInvalidation(target Class) lookupResult {
	loc := b.loc(target)
	sawUnknown := false
	for p := 0; p < b.nparts; p++ {
		c := b.blocks[loc][p]
		switch c.kind {
		case kUnknown:
			if b.unknownCouldMatch(c, target) {
				sawUnknown = true
			}
		case kHeld:
			if b.tagsMatch(c.tag, target) {
				return lrHit
			}
		}
	}
	if sawUnknown {
		return lrUnknown
	}
	return lrMiss
}

// lookup searches all partitions of the block that target maps to.
func (b *blockSim) lookup(actor Actor, target Class) lookupResult {
	loc := b.loc(target)
	sawUnknown := false
	for p := 0; p < b.nparts; p++ {
		c := b.blocks[loc][p]
		switch c.kind {
		case kUnknown:
			if b.unknownCouldMatch(c, target) {
				sawUnknown = true
			}
		case kHeld:
			if b.tagsMatch(c.tag, target) && b.ownerOK(c.owner, actor) {
				return lrHit
			}
		}
	}
	if sawUnknown {
		return lrUnknown
	}
	return lrMiss
}

// flushAll models a whole-TLB erasure from the design's own machinery (the
// FS TLB's switch and secure-exit flushes): every block in every partition
// becomes invalid, with no attacker-visible timing of its own.
func (b *blockSim) flushAll() {
	for l := 0; l < 2; l++ {
		for p := 0; p < b.nparts; p++ {
			b.blocks[l][p] = content{kind: kInvalid}
		}
	}
}

// victimSecure reports whether a step is a victim access inside the secure
// region: the secret u always is, and the shared address a is exactly the
// in-region page the victim's secure code touches (§4.2.2's x region).
func victimSecure(s State) bool {
	return s.Actor == ActorV && (s.Class == ClassU || s.Class == ClassA)
}

// preStep applies DesignFlushed's switch and secure-exit flushes before a
// step executes, mirroring the FS TLB's ObserveASID-then-translate order: a
// context switch flushes first, then a secure-region exit by the (already
// current) victim flushes again before the access's own probe.
func (b *blockSim) preStep(s State) {
	if b.design != DesignFlushed {
		return
	}
	if s == Star {
		// Arbitrary unobserved activity: who ran last — and whether they
		// left the secure region — is unknown.
		b.lastActor, b.lastSecure = ActorNone, false
		return
	}
	if s.Actor != b.lastActor {
		if b.lastActor != ActorNone {
			b.flushAll()
		}
		b.lastActor, b.lastSecure = s.Actor, false
	}
	if s.Class.IsAccess() {
		sec := victimSecure(s)
		if b.lastSecure && !sec {
			b.flushAll()
		}
		b.lastSecure = sec
	}
}

// apply performs one step, returning the observation a timing measurement of
// that step would yield (only meaningful for step 3).
func (b *blockSim) apply(s State) Observation {
	b.preStep(s)
	switch {
	case s == Star:
		for l := 0; l < 2; l++ {
			for p := 0; p < b.nparts; p++ {
				b.blocks[l][p] = content{kind: kUnknown}
			}
		}
		return ObsUnknown

	case s.Class == ClassInvAll:
		// Whole-TLB invalidation: every block becomes invalid. Its timing
		// is fixed, so the observation carries no information; we report
		// Fast (constant).
		for l := 0; l < 2; l++ {
			for p := 0; p < b.nparts; p++ {
				b.blocks[l][p] = content{kind: kInvalid}
			}
		}
		return ObsFast

	case s.Class.IsTargetedInvalidation():
		// Appendix B: invalidate one address's entry. The invalidation is
		// address-based — it does not check the process ID, like an
		// mprotect-driven shootdown — so it removes matching translations
		// in every partition regardless of owner. With the variable timing
		// optimisation, a present entry takes longer (slow), an absent one
		// is quick (fast).
		target := s.Class.target()
		loc := b.loc(target)
		res := b.lookupForInvalidation(target)
		for p := 0; p < b.nparts; p++ {
			c := &b.blocks[loc][p]
			switch c.kind {
			case kHeld:
				if b.tagsMatch(c.tag, target) {
					*c = content{kind: kInvalid}
				}
			case kUnknown:
				// The block's contents stay unknown, but every tag this
				// invalidation would have matched is now guaranteed absent.
				for _, t := range b.matchableTags(target) {
					c.excl |= 1 << t
				}
			}
		}
		switch res {
		case lrHit:
			return ObsSlow
		case lrMiss:
			return ObsFast
		default:
			return ObsUnknown
		}

	default: // memory access
		target := s.Class.target()
		res := b.lookup(s.Actor, target)
		// Whether it hit a behaviourally-identical entry or missed and
		// filled, the actor's partition of the target block now holds this
		// translation.
		loc := b.loc(target)
		b.blocks[loc][b.partIdx(s.Actor)] = content{kind: kHeld, tag: target, owner: s.Actor}
		switch res {
		case lrHit:
			return ObsFast
		case lrMiss:
			return ObsSlow
		default:
			return ObsUnknown
		}
	}
}

// scenariosFor returns the victim-behaviour scenarios meaningful for a
// pattern: u == a only makes sense when the pattern mentions a.
func scenariosFor(p Pattern) []Scenario {
	if p.mentionsA() {
		return []Scenario{ScenSameAddr, ScenSameSet, ScenDiff}
	}
	return []Scenario{ScenSameSet, ScenDiff}
}

// Outcome is the oracle's verdict for one pattern under one design.
type Outcome struct {
	// Effective reports whether the pattern is an exploitable vulnerability.
	Effective bool
	// Observation is the informative timing (fast/slow) when Effective.
	Observation Observation
	// MappedScenarios are the victim behaviours that produce the
	// informative observation (⊆ {SameAddr, SameSet}).
	MappedScenarios []Scenario
	// PerScenario records the final-step observation in each scenario, in
	// the order returned by scenariosFor.
	PerScenario map[Scenario]Observation
}

// Analyze runs the symbolic oracle for a pattern under a design.
func Analyze(p Pattern, d Design) Outcome {
	out := Outcome{PerScenario: map[Scenario]Observation{}}
	scens := scenariosFor(p)
	for _, sc := range scens {
		sim := newBlockSim(d, sc)
		var obs Observation
		for _, step := range p {
			obs = sim.apply(step)
		}
		out.PerScenario[sc] = obs
		if obs == ObsUnknown {
			return out // ambiguity: not a vulnerability (rule 7)
		}
	}
	for _, o := range []Observation{ObsFast, ObsSlow} {
		var got []Scenario
		diffHasO := false
		for _, sc := range scens {
			if out.PerScenario[sc] == o {
				if sc == ScenDiff {
					diffHasO = true
				} else {
					got = append(got, sc)
				}
			}
		}
		if len(got) > 0 && !diffHasO {
			out.Effective = true
			out.Observation = o
			out.MappedScenarios = got
			return out
		}
	}
	return out
}

// ObservationInformative re-runs the oracle under a design and reports
// whether the *given* observation still identifies a mapped victim
// behaviour. This is the defense criterion: a design defends a vulnerability
// type (pattern, observation) when that observation no longer distinguishes
// mapped from unmapped behaviour (Table 4's C = 0 rows). The design may
// still leak through a different observation — that is then a different
// vulnerability type.
func ObservationInformative(p Pattern, d Design, o Observation) bool {
	out := Analyze(p, d)
	if !out.Effective {
		return false
	}
	return out.Observation == o
}
