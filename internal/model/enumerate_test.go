package model

import (
	"strings"
	"testing"
)

// table2 is the golden copy of the paper's Table 2: all 24 timing-based TLB
// vulnerabilities with their strategy, observation, macro type and
// known-attack citation.
var table2 = []struct {
	strategy string
	steps    [3]State
	obs      Observation
	macro    string
	known    string
}{
	{"TLB Internal Collision", [3]State{Ainv, Vu, Va}, ObsFast, "IH", "Double Page Fault [12]"},
	{"TLB Internal Collision", [3]State{Vinv, Vu, Va}, ObsFast, "IH", "Double Page Fault [12]"},
	{"TLB Internal Collision", [3]State{Ad, Vu, Va}, ObsFast, "IH", "Double Page Fault [12]"},
	{"TLB Internal Collision", [3]State{Vd, Vu, Va}, ObsFast, "IH", "Double Page Fault [12]"},
	{"TLB Internal Collision", [3]State{Aalias, Vu, Va}, ObsFast, "IH", "Double Page Fault [12]"},
	{"TLB Internal Collision", [3]State{Valias, Vu, Va}, ObsFast, "IH", "Double Page Fault [12]"},
	{"TLB Flush + Reload", [3]State{Ainv, Vu, Aa}, ObsFast, "EH", ""},
	{"TLB Flush + Reload", [3]State{Vinv, Vu, Aa}, ObsFast, "EH", ""},
	{"TLB Flush + Reload", [3]State{Ad, Vu, Aa}, ObsFast, "EH", ""},
	{"TLB Flush + Reload", [3]State{Vd, Vu, Aa}, ObsFast, "EH", ""},
	{"TLB Flush + Reload", [3]State{Aalias, Vu, Aa}, ObsFast, "EH", ""},
	{"TLB Flush + Reload", [3]State{Valias, Vu, Aa}, ObsFast, "EH", ""},
	{"TLB Evict + Time", [3]State{Vu, Ad, Vu}, ObsSlow, "EM", ""},
	{"TLB Evict + Time", [3]State{Vu, Aa, Vu}, ObsSlow, "EM", ""},
	{"TLB Prime + Probe", [3]State{Ad, Vu, Ad}, ObsSlow, "EM", "TLBleed [8]"},
	{"TLB Prime + Probe", [3]State{Aa, Vu, Aa}, ObsSlow, "EM", "TLBleed [8]"},
	{"TLB version of Bernstein's Attack", [3]State{Vu, Va, Vu}, ObsSlow, "IM", ""},
	{"TLB version of Bernstein's Attack", [3]State{Vu, Vd, Vu}, ObsSlow, "IM", ""},
	{"TLB version of Bernstein's Attack", [3]State{Vd, Vu, Vd}, ObsSlow, "IM", ""},
	{"TLB version of Bernstein's Attack", [3]State{Va, Vu, Va}, ObsSlow, "IM", ""},
	{"TLB Evict + Probe", [3]State{Vd, Vu, Ad}, ObsSlow, "EM", ""},
	{"TLB Evict + Probe", [3]State{Va, Vu, Aa}, ObsSlow, "EM", ""},
	{"TLB Prime + Time", [3]State{Ad, Vu, Vd}, ObsSlow, "IM", ""},
	{"TLB Prime + Time", [3]State{Aa, Vu, Va}, ObsSlow, "IM", ""},
}

func TestTable2GoldenExactMatch(t *testing.T) {
	vulns := Enumerate()
	if len(vulns) != 24 {
		for _, v := range vulns {
			t.Logf("  %s [%s] %s", v, v.Macro, v.Strategy)
		}
		t.Fatalf("enumerated %d vulnerabilities, want 24", len(vulns))
	}
	byPattern := map[Pattern]Vulnerability{}
	for _, v := range vulns {
		byPattern[v.Pattern] = v
	}
	for _, row := range table2 {
		p := Pattern(row.steps)
		v, ok := byPattern[p]
		if !ok {
			t.Errorf("missing vulnerability %s", p)
			continue
		}
		if v.Observation != row.obs {
			t.Errorf("%s: observation %s, want %s", p, v.Observation, row.obs)
		}
		if v.Strategy != row.strategy {
			t.Errorf("%s: strategy %q, want %q", p, v.Strategy, row.strategy)
		}
		if v.Macro != row.macro {
			t.Errorf("%s: macro %q, want %q", p, v.Macro, row.macro)
		}
		if v.KnownAttack != row.known {
			t.Errorf("%s: known attack %q, want %q", p, v.KnownAttack, row.known)
		}
	}
}

func TestEnumerationStats(t *testing.T) {
	_, stats := EnumerateWithStats()
	if stats.Total != 1000 {
		t.Errorf("total combinations = %d, want 10^3", stats.Total)
	}
	if stats.AfterAliasDedup != 24 {
		t.Errorf("final count = %d, want 24", stats.AfterAliasDedup)
	}
	if stats.AfterOracle < stats.AfterAliasDedup {
		t.Error("dedup cannot add candidates")
	}
	if stats.AfterRules < stats.AfterOracle {
		t.Error("oracle cannot add candidates")
	}
	// The paper's script leaves 34 candidates before its manual reduction to
	// 24; our sharper oracle leaves fewer, but strictly more than 24 (the
	// alias duplicates), showing rule (5) is doing real work.
	if stats.AfterOracle <= 24 {
		t.Errorf("oracle survivors = %d, want > 24 (alias duplicates present)", stats.AfterOracle)
	}
}

func TestMacroTypeTotals(t *testing.T) {
	// Table 2 totals: 6 IH, 6 EH, 8 EM, 4 IM... counting the rows: IH=6,
	// EH=6, EM = 2 (E+T) + 2 (P+P) + 2 (E+P) = 6, IM = 4 (Bernstein) + 2
	// (P+T) = 6.
	counts := map[string]int{}
	for _, v := range Enumerate() {
		counts[v.Macro]++
	}
	want := map[string]int{"IH": 6, "EH": 6, "EM": 6, "IM": 6}
	for m, n := range want {
		if counts[m] != n {
			t.Errorf("macro %s count = %d, want %d", m, counts[m], n)
		}
	}
}

func TestKnownAttackMapping(t *testing.T) {
	// 8 of the 24 map to previously published attacks (6 Double Page Fault
	// + 2 TLBleed); the other 16 are new.
	known := 0
	for _, v := range Enumerate() {
		if v.KnownAttack != "" {
			known++
		}
	}
	if known != 8 {
		t.Errorf("known-attack rows = %d, want 8", known)
	}
}

func TestStructuralRules(t *testing.T) {
	cases := []struct {
		p   Pattern
		ok  bool
		why string
	}{
		{Pattern{Ad, Star, Vu}, false, "rule 1: star in step 2"},
		{Pattern{Ad, Vu, Star}, false, "rule 1: star in step 3"},
		{Pattern{Ad, Va, Aa}, false, "rule 2: no Vu"},
		{Pattern{Star, Vu, Va}, false, "rule 3: star then Vu"},
		{Pattern{Vu, Vu, Va}, false, "rule 4: adjacent repeat"},
		{Pattern{Ad, Va, Vu}, false, "rule 4: adjacent knowns"},
		{Pattern{Ainv, Aa, Vu}, false, "rule 4: inv+access both known"},
		{Pattern{Vu, Ainv, Vu}, false, "rule 6: inv in step 2"},
		{Pattern{Vu, Aa, Vinv}, false, "rule 6: inv in step 3"},
		{Pattern{VuInv, Aa, Vu}, false, "base model has no targeted inv"},
		{Pattern{Ad, Vu, Ad}, true, "prime+probe shape"},
		{Pattern{Star, Aa, Vu}, true, "star step1 with non-u step2 passes rules (oracle rejects)"},
	}
	for _, c := range cases {
		if got := structuralOK(c.p, false); got != c.ok {
			t.Errorf("structuralOK(%s) = %v, want %v (%s)", c.p, got, c.ok, c.why)
		}
	}
}

func TestOracleRejectsAmbiguousPatterns(t *testing.T) {
	// Rule (7)'s example: ★ ⇝ A_a ⇝ V_u is removed because a fast
	// observation could mean u == a or u being whatever step 1 left behind.
	out := Analyze(Pattern{Star, Aa, Vu}, DesignShared)
	if out.Effective {
		t.Error("star ⇝ Aa ⇝ Vu must be rejected as ambiguous")
	}
	if out.PerScenario[ScenDiff] != ObsUnknown {
		t.Errorf("diff scenario observation = %s, want unknown", out.PerScenario[ScenDiff])
	}
}

func TestOracleScenarioDetails(t *testing.T) {
	// Prime+Probe: miss in the conflict scenario only.
	out := Analyze(Pattern{Ad, Vu, Ad}, DesignShared)
	if !out.Effective || out.Observation != ObsSlow {
		t.Fatalf("P+P outcome = %+v", out)
	}
	if out.PerScenario[ScenSameSet] != ObsSlow || out.PerScenario[ScenDiff] != ObsFast {
		t.Errorf("P+P scenarios = %v", out.PerScenario)
	}
	// Internal Collision: hit exactly when u == a.
	out = Analyze(Pattern{Ad, Vu, Va}, DesignShared)
	if !out.Effective || out.Observation != ObsFast {
		t.Fatalf("IC outcome = %+v", out)
	}
	if len(out.MappedScenarios) != 1 || out.MappedScenarios[0] != ScenSameAddr {
		t.Errorf("IC mapped scenarios = %v", out.MappedScenarios)
	}
}

func TestAliasDeduplication(t *testing.T) {
	// Rule (5)'s example: V_u ⇝ A_aalias ⇝ V_u repeats V_u ⇝ A_a ⇝ V_u.
	vulns := Enumerate()
	if _, found := Find(vulns, Pattern{Vu, Aalias, Vu}); found {
		t.Error("Vu ⇝ Aalias ⇝ Vu should be deduplicated against Vu ⇝ Aa ⇝ Vu")
	}
	if _, found := Find(vulns, Pattern{Vu, Aa, Vu}); !found {
		t.Error("the canonical Vu ⇝ Aa ⇝ Vu must remain")
	}
	// But alias step-1 variants whose a-version is NOT effective stay.
	if _, found := Find(vulns, Pattern{Aalias, Vu, Va}); !found {
		t.Error("Aalias ⇝ Vu ⇝ Va must remain (Aa ⇝ Vu ⇝ Va fast is not effective)")
	}
}

func TestStateStringsAndParse(t *testing.T) {
	for _, s := range ExtendedStates() {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%q) = (%v, %v)", s.String(), got, err)
		}
	}
	if _, err := ParseState("Zz"); err == nil {
		t.Error("bogus state should not parse")
	}
	if Star.String() != "*" {
		t.Errorf("star renders as %q", Star.String())
	}
	if s := (Pattern{Ad, Vu, Aa}).String(); s != "Ad -> Vu -> Aa" {
		t.Errorf("pattern string = %q", s)
	}
	if !strings.Contains((Pattern{AaInv, Vu, Va}).String(), "Aa^inv") {
		t.Errorf("extended state rendering: %q", Pattern{AaInv, Vu, Va})
	}
}

func TestVulnerabilityString(t *testing.T) {
	vulns := Enumerate()
	v, ok := Find(vulns, Pattern{Ad, Vu, Ad})
	if !ok {
		t.Fatal("P+P missing")
	}
	if v.String() != "Ad -> Vu -> Ad (slow)" {
		t.Errorf("String = %q", v.String())
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	a, b := Enumerate(), Enumerate()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Pattern != b[i].Pattern || a[i].Observation != b[i].Observation {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
