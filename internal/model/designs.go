package model

// This file derives, analytically, which vulnerabilities each TLB design
// defends, by re-running the symbolic oracle under the design's hit/fill
// semantics. The result reproduces the zero-capacity (bold) pattern of the
// paper's Table 4:
//
//   - the standard SA TLB (ASID-tagged hits) defends the 10 vulnerabilities
//     that need a TLB hit, or a probed miss, across process IDs: the 6
//     TLB Flush + Reload, 2 TLB Evict + Probe and 2 TLB Prime + Time types;
//   - the SP TLB additionally defends the 4 external miss-based types that
//     need cross-partition eviction (2 TLB Evict + Time, 2 TLB Prime +
//     Probe), for 14 in total;
//   - the RF TLB defends all 24: its random fill de-correlates every
//     secure-region fill and eviction from the requested address, so the
//     attacker's observation probabilities no longer depend on the victim's
//     behaviour. Randomisation is outside the deterministic oracle; the RF
//     column here records the analytical verdict of §5.3.1, and the
//     secbench/capacity packages verify it empirically (C* ≈ 0).
type DefenseReport struct {
	Vulnerability Vulnerability
	// SADefended/SPDefended are derived by the oracle under DesignASID /
	// DesignPartitioned.
	SADefended bool
	SPDefended bool
	// RFDefended is the analytical verdict for the Random-Fill TLB.
	RFDefended bool
}

// AnalyzeDefenses runs the design-aware oracle over the base 24
// vulnerabilities.
func AnalyzeDefenses() []DefenseReport {
	vulns := Enumerate()
	reports := make([]DefenseReport, 0, len(vulns))
	for _, v := range vulns {
		reports = append(reports, DefenseReport{
			Vulnerability: v,
			SADefended:    !ObservationInformative(v.Pattern, DesignASID, v.Observation),
			SPDefended:    !ObservationInformative(v.Pattern, DesignPartitioned, v.Observation),
			RFDefended:    true,
		})
	}
	return reports
}

// DefenseCounts summarises how many of the 24 types each design defends.
type DefenseCounts struct {
	Total, SA, SP, RF int
}

// CountDefenses aggregates AnalyzeDefenses.
func CountDefenses(reports []DefenseReport) DefenseCounts {
	c := DefenseCounts{Total: len(reports)}
	for _, r := range reports {
		if r.SADefended {
			c.SA++
		}
		if r.SPDefended {
			c.SP++
		}
		if r.RFDefended {
			c.RF++
		}
	}
	return c
}
