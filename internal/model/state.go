// Package model implements the three-step modeling approach of "Secure
// TLBs" (§3): the TLB block states of Table 1, the exhaustive enumeration of
// the 10×10×10 step combinations, the reduction rules (1)–(7) of §3.3, and a
// symbolic single-block simulation oracle that decides whether a surviving
// pattern leaks information and whether the informative observation is a TLB
// hit ("fast") or a TLB miss ("slow"). The result reproduces the 24
// vulnerability types of Table 2 exactly.
//
// The package also implements:
//   - Algorithm 1 of Appendix A, reducing any β-step (β > 3) pattern to its
//     effective three-step vulnerabilities (reduce.go);
//   - the extended state set of Appendix B (Table 6) with targeted
//     invalidations, enumerating the additional vulnerabilities of Table 7
//     (extended.go);
//   - design-aware analysis that re-runs the oracle under the SA TLB's
//     ASID-tagging and the SP TLB's partitioning semantics to derive which
//     vulnerabilities each design defends (designs.go), matching the
//     bold/non-bold pattern of Table 4.
package model

import "fmt"

// Actor identifies who performs a step: the attacker (A), the victim (V), or
// nobody (the ★ state).
type Actor uint8

const (
	// ActorNone is used only by the ★ state.
	ActorNone Actor = iota
	// ActorA is the attacker (or the receiver in a covert channel).
	ActorA
	// ActorV is the victim (or the sender in a covert channel).
	ActorV
)

// String returns "A", "V" or "".
func (a Actor) String() string {
	switch a {
	case ActorA:
		return "A"
	case ActorV:
		return "V"
	}
	return ""
}

// Class identifies which address (or operation) a step involves, following
// Table 1 (base model) and Table 6 (Appendix B extensions).
type Class uint8

const (
	// ClassStar is the ★ state: any data, or no data; the attacker has no
	// knowledge of the block.
	ClassStar Class = iota
	// ClassU is the victim's secret-dependent address u ∈ x.
	ClassU
	// ClassA is the attacker-known address a ∈ x.
	ClassA
	// ClassAlias is a^alias: a different page with the same page index as a,
	// mapping to the same TLB block.
	ClassAlias
	// ClassD is the attacker-known address d ∉ x.
	ClassD
	// ClassInvAll is the whole-block invalidation of Table 1 (A_inv /
	// V_inv): the block previously holding a translation is now invalid,
	// e.g. due to an sfence.vma or a context-switch flush.
	ClassInvAll
	// The classes below are the targeted invalidations of Appendix B
	// (Table 6): invalidation of one specific address's entry, e.g. via
	// mprotect() or a future fine-grained flush instruction.

	// ClassUInv invalidates u's entry (V_u^inv).
	ClassUInv
	// ClassAInv invalidates a's entry (A_a^inv / V_a^inv).
	ClassAInv
	// ClassAliasInv invalidates a^alias's entry.
	ClassAliasInv
	// ClassDInv invalidates d's entry (A_d^inv / V_d^inv).
	ClassDInv
	classCount
)

// IsInvalidation reports whether the class removes (rather than installs)
// translations.
func (c Class) IsInvalidation() bool {
	return c == ClassInvAll || c.IsTargetedInvalidation()
}

// IsTargetedInvalidation reports whether the class is one of the
// specific-address invalidations of Appendix B.
func (c Class) IsTargetedInvalidation() bool {
	return c >= ClassUInv && c <= ClassDInv
}

// IsAccess reports whether the class performs a memory access (installs a
// translation on miss).
func (c Class) IsAccess() bool {
	switch c {
	case ClassU, ClassA, ClassAlias, ClassD:
		return true
	}
	return false
}

// accessTarget returns the address tag a targeted invalidation refers to,
// or the class itself for accesses.
func (c Class) target() Class {
	switch c {
	case ClassUInv:
		return ClassU
	case ClassAInv:
		return ClassA
	case ClassAliasInv:
		return ClassAlias
	case ClassDInv:
		return ClassD
	}
	return c
}

// InvolvesU reports whether the class concerns the unknown address u.
func (c Class) InvolvesU() bool { return c == ClassU || c == ClassUInv }

// State is one of the TLB-block states of Table 1 / Table 6: an actor
// performing an operation of a given class. The ★ state is {ActorNone,
// ClassStar}.
type State struct {
	Actor Actor
	Class Class
}

// Star is the ★ state.
var Star = State{ActorNone, ClassStar}

// Convenience constructors matching the paper's notation.
var (
	Vu     = State{ActorV, ClassU}
	Aa     = State{ActorA, ClassA}
	Va     = State{ActorV, ClassA}
	Aalias = State{ActorA, ClassAlias}
	Valias = State{ActorV, ClassAlias}
	Ainv   = State{ActorA, ClassInvAll}
	Vinv   = State{ActorV, ClassInvAll}
	Ad     = State{ActorA, ClassD}
	Vd     = State{ActorV, ClassD}

	// Appendix B states.
	VuInv     = State{ActorV, ClassUInv}
	AaInv     = State{ActorA, ClassAInv}
	VaInv     = State{ActorV, ClassAInv}
	AaliasInv = State{ActorA, ClassAliasInv}
	ValiasInv = State{ActorV, ClassAliasInv}
	AdInv     = State{ActorA, ClassDInv}
	VdInv     = State{ActorV, ClassDInv}
)

// BaseStates returns the 10 states of Table 1, the universe of the base
// three-step model.
func BaseStates() []State {
	return []State{Vu, Aa, Va, Aalias, Valias, Ainv, Vinv, Ad, Vd, Star}
}

// ExtendedStates returns the enlarged universe of Appendix B: the base
// states plus the 7 targeted-invalidation states of Table 6.
func ExtendedStates() []State {
	return append(BaseStates(),
		VuInv, AaInv, VaInv, AaliasInv, ValiasInv, AdInv, VdInv)
}

// String renders the paper's notation: "Vu", "Aa", "Aalias", "Ainv", "*",
// "Vu^inv", ...
func (s State) String() string {
	if s == Star {
		return "*"
	}
	switch s.Class {
	case ClassU:
		return s.Actor.String() + "u"
	case ClassA:
		return s.Actor.String() + "a"
	case ClassAlias:
		return s.Actor.String() + "aalias"
	case ClassD:
		return s.Actor.String() + "d"
	case ClassInvAll:
		return s.Actor.String() + "inv"
	case ClassUInv:
		return s.Actor.String() + "u^inv"
	case ClassAInv:
		return s.Actor.String() + "a^inv"
	case ClassAliasInv:
		return s.Actor.String() + "aalias^inv"
	case ClassDInv:
		return s.Actor.String() + "d^inv"
	}
	return fmt.Sprintf("state(%d,%d)", s.Actor, s.Class)
}

// ParseState parses the String form back into a State.
func ParseState(s string) (State, error) {
	if s == "*" {
		return Star, nil
	}
	for _, st := range ExtendedStates() {
		if st.String() == s {
			return st, nil
		}
	}
	return State{}, fmt.Errorf("model: unknown state %q", s)
}

// KnownToAttacker reports whether the step's effect leaves the block in a
// state the attacker can predict (everything except ★ and the u-related
// states, per reduction rule (4)'s notion of "known").
func (s State) KnownToAttacker() bool {
	return s != Star && !s.Class.InvolvesU()
}

// Pattern is a three-step access pattern: Step1 ⇝ Step2 ⇝ Step3.
type Pattern [3]State

// String renders "Ad -> Vu -> Aa".
func (p Pattern) String() string {
	return p[0].String() + " -> " + p[1].String() + " -> " + p[2].String()
}

// mapAliasToA returns the pattern with every alias class replaced by the
// corresponding a class (used by reduction rule (5)).
func (p Pattern) mapAliasToA() Pattern {
	q := p
	for i := range q {
		switch q[i].Class {
		case ClassAlias:
			q[i].Class = ClassA
		case ClassAliasInv:
			q[i].Class = ClassAInv
		}
	}
	return q
}

// hasAlias reports whether the pattern involves an alias state.
func (p Pattern) hasAlias() bool {
	for _, s := range p {
		if s.Class == ClassAlias || s.Class == ClassAliasInv {
			return true
		}
	}
	return false
}

// mentionsA reports whether the pattern involves the known in-range address
// a (or its alias, or their invalidations) — which decides whether the
// "u == a" scenario is meaningful.
func (p Pattern) mentionsA() bool {
	for _, s := range p {
		switch s.Class {
		case ClassA, ClassAlias, ClassAInv, ClassAliasInv:
			return true
		}
	}
	return false
}

// hasU reports whether any step involves the unknown address u.
func (p Pattern) hasU() bool {
	for _, s := range p {
		if s.Class.InvolvesU() {
			return true
		}
	}
	return false
}
