package model

import "testing"

func TestExtendedEnumerationBasics(t *testing.T) {
	extra, stats := EnumerateExtendedWithStats()
	if stats.Total != 17*17*17 {
		t.Errorf("total = %d, want 17^3", stats.Total)
	}
	// The enlarged universe must still contain the base 24 plus the
	// additional targeted-invalidation vulnerabilities.
	if stats.AfterAliasDedup != 24+len(extra) {
		t.Errorf("dedup count %d != 24 + %d extras", stats.AfterAliasDedup, len(extra))
	}
	// Table 7 lists on the order of 50 additional vulnerabilities (after the
	// paper's manual deduplication); our enumeration finds 60, a strict
	// superset across the same strategy families (the snapshot below pins
	// the exact set).
	if len(extra) != 60 {
		t.Errorf("extra vulnerabilities = %d, want 60", len(extra))
	}
	for _, v := range extra {
		if !hasTargetedInv(v.Pattern) {
			t.Errorf("%s claims to be extended but has no targeted invalidation", v)
		}
	}
}

func TestExtendedContainsBase24Unchanged(t *testing.T) {
	all, _ := enumerate(ExtendedStates(), true)
	base := Enumerate()
	found := 0
	for _, b := range base {
		if v, ok := Find(all, b.Pattern); ok {
			found++
			if v.Observation != b.Observation || v.Strategy != b.Strategy {
				t.Errorf("%s classified differently in extended mode", b)
			}
		} else {
			t.Errorf("base vulnerability %s missing from extended enumeration", b)
		}
	}
	if found != 24 {
		t.Errorf("found %d of 24 base vulnerabilities", found)
	}
}

// table7Rows spot-checks rows of the paper's Table 7 (Appendix B).
var table7Rows = []struct {
	steps    [3]State
	obs      Observation
	strategy string
}{
	// TLB Internal Collision with invalidation priming (also maps to the
	// Double Page Fault attack).
	{[3]State{AaInv, Vu, Va}, ObsFast, "TLB Internal Collision"},
	// TLB Flush + Reload with invalidation priming.
	{[3]State{AaInv, Vu, Aa}, ObsFast, "TLB Flush + Reload"},
	// TLB Reload + Time: invalidate u, reload a, time the victim.
	{[3]State{VuInv, Aa, Vu}, ObsFast, "TLB Reload + Time"},
	{[3]State{VuInv, Va, Vu}, ObsFast, "TLB Reload + Time"},
	// TLB Flush + Probe: prime a, victim invalidates u, probe a.
	{[3]State{Aa, VuInv, Aa}, ObsSlow, "TLB Flush + Probe"},
	{[3]State{Va, VuInv, Va}, ObsSlow, "TLB Flush + Probe"},
	// TLB Flush + Time: victim accesses u, a's entry is invalidated, time u.
	{[3]State{Vu, AaInv, Vu}, ObsSlow, "TLB Flush + Time"},
	{[3]State{Vu, VaInv, Vu}, ObsSlow, "TLB Flush + Time"},
	// TLB Flush + Flush: the final observation is the invalidation's own
	// timing (present entries invalidate more slowly).
	{[3]State{Ainv, Vu, AaInv}, ObsSlow, "TLB Flush + Flush"},
	{[3]State{Vinv, Vu, VaInv}, ObsSlow, "TLB Flush + Flush"},
	// Invalidation-probed variants of the base strategies.
	{[3]State{Ad, Vu, AdInv}, ObsFast, "TLB Prime + Probe Invalidation"},
	{[3]State{Aa, Vu, AaInv}, ObsFast, "TLB Prime + Probe Invalidation"},
	{[3]State{Vu, Ad, VuInv}, ObsFast, "TLB Evict + Time Invalidation"},
	{[3]State{Vu, Aa, VuInv}, ObsFast, "TLB Evict + Time Invalidation"},
	{[3]State{Vd, Vu, AdInv}, ObsFast, "TLB Evict + Probe Invalidation"},
	{[3]State{Ad, Vu, VdInv}, ObsFast, "TLB Prime + Time Invalidation"},
	{[3]State{Vu, Vd, VuInv}, ObsFast, "TLB version of Bernstein's Attack Invalidation"},
	{[3]State{Vu, AaInv, VuInv}, ObsFast, "TLB Flush + Time Invalidation"},
}

func TestTable7SpotChecks(t *testing.T) {
	extra := EnumerateExtended()
	for _, row := range table7Rows {
		p := Pattern(row.steps)
		v, ok := Find(extra, p)
		if !ok {
			t.Errorf("missing extended vulnerability %s", p)
			continue
		}
		if v.Observation != row.obs {
			t.Errorf("%s: observation %s, want %s", p, v.Observation, row.obs)
		}
		if v.Strategy != row.strategy {
			t.Errorf("%s: strategy %q, want %q", p, v.Strategy, row.strategy)
		}
	}
}

func TestExtendedStrategyFamilies(t *testing.T) {
	// Every Table 7 strategy family must be represented.
	want := []string{
		"TLB Internal Collision",
		"TLB Flush + Reload",
		"TLB Reload + Time",
		"TLB Flush + Probe",
		"TLB Flush + Time",
		"TLB Flush + Flush",
		"TLB Flush + Probe Invalidation",
		"TLB Evict + Time Invalidation",
		"TLB Prime + Probe Invalidation",
		"TLB version of Bernstein's Attack Invalidation",
		"TLB Evict + Probe Invalidation",
		"TLB Prime + Time Invalidation",
		"TLB Flush + Time Invalidation",
	}
	have := map[string]bool{}
	for _, v := range EnumerateExtended() {
		have[v.Strategy] = true
	}
	for _, s := range want {
		if !have[s] {
			t.Errorf("strategy family %q missing from extended enumeration", s)
		}
	}
}

func TestReloadTimeNeedsTargetedInvalidation(t *testing.T) {
	// The Reload + Time shape without targeted invalidation (Ainv ⇝ Aa ⇝
	// Vu) is excluded from the base model by rule (4) — the paper's Table 2
	// has no such row. With the Appendix B state V_u^inv it becomes viable.
	if structuralOK(Pattern{Ainv, Aa, Vu}, false) {
		t.Error("rule 4 must reject Ainv ⇝ Aa ⇝ Vu (adjacent knowns)")
	}
	out := Analyze(Pattern{VuInv, Aa, Vu}, DesignShared)
	if !out.Effective || out.Observation != ObsFast {
		t.Errorf("VuInv ⇝ Aa ⇝ Vu should be effective fast, got %+v", out)
	}
}

func TestExclusionSemantics(t *testing.T) {
	// From an unknown state (★), invalidating u's entry makes a lookup of u
	// a definite miss while a lookup of d remains unknown.
	b := newBlockSim(DesignShared, ScenSameSet)
	b.apply(Star)
	b.apply(VuInv)
	if got := b.lookup(ActorV, ClassU); got != lrMiss {
		t.Errorf("lookup(u) after inv(u) = %v, want miss", got)
	}
	if got := b.lookup(ActorA, ClassD); got != lrUnknown {
		t.Errorf("lookup(d) after inv(u) = %v, want unknown", got)
	}
	// In the SameAddr scenario, invalidating u also guarantees a's absence.
	b = newBlockSim(DesignShared, ScenSameAddr)
	b.apply(Star)
	b.apply(VuInv)
	if got := b.lookup(ActorA, ClassA); got != lrMiss {
		t.Errorf("SameAddr lookup(a) after inv(u) = %v, want miss", got)
	}
	// The initial (flushed) state is a known miss for everything.
	b = newBlockSim(DesignShared, ScenSameSet)
	if got := b.lookup(ActorA, ClassD); got != lrMiss {
		t.Errorf("initial lookup(d) = %v, want miss (flushed start)", got)
	}
}

func TestAccessizeAndFlip(t *testing.T) {
	p := Pattern{AaInv, VuInv, VdInv}
	q := accessize(p)
	if q != (Pattern{Aa, Vu, Vd}) {
		t.Errorf("accessize = %s", q)
	}
	if flipObs(ObsFast) != ObsSlow || flipObs(ObsSlow) != ObsFast {
		t.Error("flipObs wrong")
	}
}

func TestExtendedGoldenSnapshot(t *testing.T) {
	// Pin the full extended enumeration so changes are deliberate.
	counts := map[string]int{}
	for _, v := range EnumerateExtended() {
		counts[v.Strategy]++
	}
	want := map[string]int{
		"TLB Internal Collision":                         5,
		"TLB Flush + Reload":                             5,
		"TLB Reload + Time":                              2,
		"TLB Flush + Probe":                              4,
		"TLB Flush + Time":                               2,
		"TLB Flush + Flush":                              16,
		"TLB Flush + Probe Invalidation":                 4,
		"TLB Flush + Time Invalidation":                  2,
		"TLB Internal Collision Invalidation":            4,
		"TLB Flush + Reload Invalidation":                4,
		"TLB Evict + Time Invalidation":                  2,
		"TLB Prime + Probe Invalidation":                 2,
		"TLB version of Bernstein's Attack Invalidation": 4,
		"TLB Evict + Probe Invalidation":                 2,
		"TLB Prime + Time Invalidation":                  2,
	}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("strategy %q count = %d, want %d", s, counts[s], n)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 60 {
		t.Errorf("total = %d, want 60; counts = %v", total, counts)
	}
}
