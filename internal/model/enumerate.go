package model

import (
	"sort"
	"sync"
)

// Vulnerability is one effective three-step timing-based TLB vulnerability,
// i.e. one row of the paper's Table 2 (or Table 7 in extended mode).
type Vulnerability struct {
	Pattern     Pattern
	Observation Observation // ObsFast or ObsSlow
	// Strategy is the paper's common attack-strategy name, e.g.
	// "TLB Prime + Probe".
	Strategy string
	// Macro is the macro type: "IH", "EH", "IM" or "EM".
	Macro string
	// KnownAttack names the previously published attack this vulnerability
	// corresponds to ("" for the new ones): "Double Page Fault [12]" or
	// "TLBleed [8]".
	KnownAttack string
	// MappedScenarios are the victim behaviours the informative observation
	// identifies.
	MappedScenarios []Scenario
}

// String renders "Ad -> Vu -> Aa (fast)".
func (v Vulnerability) String() string {
	return v.Pattern.String() + " (" + v.Observation.String() + ")"
}

// EnumerationStats reports how many candidates survived each stage of the
// derivation of §3.3, mirroring the paper's 1000 → 34 → 24 narrative.
type EnumerationStats struct {
	Total           int // all |states|^3 combinations
	AfterRules      int // survivors of the structural rules (1)-(6)
	AfterOracle     int // patterns the symbolic oracle finds informative
	AfterAliasDedup int // after reduction rule (5)
}

// enumerateOnce caches the base enumeration: it is deterministic, and hot
// paths (every campaign sweep iteration, job validation) re-derive it.
// Callers receive a fresh top-level slice they may reorder or trim; the
// interior slices (MappedScenarios) are shared and treated as immutable
// everywhere.
var enumerateOnce struct {
	sync.Once
	vulns []Vulnerability
	stats EnumerationStats
}

// Enumerate derives the complete list of base-model vulnerabilities (the 24
// rows of Table 2) by exhaustive enumeration over the 10 states of Table 1.
func Enumerate() []Vulnerability {
	v, _ := EnumerateWithStats()
	return v
}

// EnumerateWithStats is Enumerate plus per-stage candidate counts.
func EnumerateWithStats() ([]Vulnerability, EnumerationStats) {
	enumerateOnce.Do(func() {
		enumerateOnce.vulns, enumerateOnce.stats = enumerate(BaseStates(), false)
	})
	out := make([]Vulnerability, len(enumerateOnce.vulns))
	copy(out, enumerateOnce.vulns)
	return out, enumerateOnce.stats
}

func enumerate(states []State, extended bool) ([]Vulnerability, EnumerationStats) {
	var stats EnumerationStats
	stats.Total = len(states) * len(states) * len(states)

	type cand struct {
		p   Pattern
		out Outcome
	}
	var candidates []cand
	for _, s1 := range states {
		for _, s2 := range states {
			for _, s3 := range states {
				p := Pattern{s1, s2, s3}
				if !structuralOK(p, extended) {
					continue
				}
				stats.AfterRules++
				out := Analyze(p, DesignShared)
				if !out.Effective {
					continue
				}
				stats.AfterOracle++
				candidates = append(candidates, cand{p, out})
			}
		}
	}

	// Reduction rule (5): drop an alias-involving pattern when the same
	// pattern with a in place of a^alias is also effective with the same
	// observation — they give the same information.
	effective := map[string]bool{}
	for _, c := range candidates {
		effective[c.p.String()+"/"+c.out.Observation.String()] = true
	}
	var vulns []Vulnerability
	for _, c := range candidates {
		if c.p.hasAlias() {
			mapped := c.p.mapAliasToA()
			if mapped != c.p && effective[mapped.String()+"/"+c.out.Observation.String()] {
				continue
			}
		}
		stats.AfterAliasDedup++
		vulns = append(vulns, classify(c.p, c.out))
	}

	sortVulnerabilities(vulns)
	return vulns, stats
}

// structuralOK applies the paper's structural reduction rules (1)-(4) and
// (6); rules (5) and (7) are handled by the alias dedup and the oracle.
func structuralOK(p Pattern, extended bool) bool {
	// Rule (1): ★ is not possible in Step 2 or Step 3.
	if p[1] == Star || p[2] == Star {
		return false
	}
	// Rule (2): a state involving u must be in one of the steps.
	if !p.hasU() {
		return false
	}
	// Rule (3): ★ immediately followed by V_u cannot lead to an attack.
	if p[0] == Star && p[1].Class.InvolvesU() {
		return false
	}
	// Rule (4): two adjacent steps repeating, or both known to the
	// attacker, are eliminated.
	for i := 0; i < 2; i++ {
		if p[i] == p[i+1] {
			return false
		}
		if p[i].KnownToAttacker() && p[i+1].KnownToAttacker() {
			return false
		}
	}
	// Rule (6): whole-TLB invalidation cannot be triggered from user space
	// in Step 2 or Step 3.
	if p[1].Class == ClassInvAll || p[2].Class == ClassInvAll {
		return false
	}
	if !extended {
		// Base model: the targeted invalidations of Appendix B are not
		// available at all.
		for _, s := range p {
			if s.Class.IsTargetedInvalidation() {
				return false
			}
		}
	}
	return true
}

// classify attaches the strategy name, macro type and known-attack citation
// to an effective pattern.
func classify(p Pattern, out Outcome) Vulnerability {
	v := Vulnerability{
		Pattern:         p,
		Observation:     out.Observation,
		MappedScenarios: out.MappedScenarios,
	}
	v.Strategy = strategyName(p, out.Observation)
	v.Macro = macroType(p, out.Observation)
	switch v.Strategy {
	case "TLB Internal Collision":
		v.KnownAttack = "Double Page Fault [12]"
	case "TLB Prime + Probe":
		v.KnownAttack = "TLBleed [8]"
	}
	return v
}

// strategyName reproduces the Attack Strategy column of Table 2 (base
// patterns only; extended.go has its own naming).
func strategyName(p Pattern, obs Observation) string {
	if p[2].Class.IsTargetedInvalidation() || p[1].Class.IsTargetedInvalidation() ||
		p[0].Class.IsTargetedInvalidation() {
		return extendedStrategyName(p, obs)
	}
	if obs == ObsFast {
		// Hit-based: the final access hits because the victim's u brought
		// in the probed translation.
		if p[2].Actor == ActorV {
			return "TLB Internal Collision"
		}
		return "TLB Flush + Reload"
	}
	// Miss-based.
	if p[0].Class.InvolvesU() && p[2].Class.InvolvesU() {
		// V_u ⇝ X ⇝ V_u: the middle access may evict u.
		if p[1].Actor == ActorA {
			return "TLB Evict + Time"
		}
		return "TLB version of Bernstein's Attack"
	}
	// X ⇝ V_u ⇝ Y: priming then re-testing.
	switch {
	case p[0].Actor == ActorA && p[2].Actor == ActorA:
		return "TLB Prime + Probe"
	case p[0].Actor == ActorV && p[2].Actor == ActorA:
		return "TLB Evict + Probe"
	case p[0].Actor == ActorA && p[2].Actor == ActorV:
		return "TLB Prime + Time"
	default:
		return "TLB version of Bernstein's Attack"
	}
}

// macroType computes the Macro Type column: internal (I) when Steps 2 and 3
// involve only the victim, external (E) otherwise; hit-based (H) for fast
// observations, miss-based (M) for slow ones.
func macroType(p Pattern, obs Observation) string {
	interference := "E"
	if p[1].Actor == ActorV && p[2].Actor == ActorV {
		interference = "I"
	}
	timing := "M"
	if obs == ObsFast {
		timing = "H"
	}
	return interference + timing
}

// strategyOrder fixes the presentation order of Table 2.
var strategyOrder = map[string]int{
	"TLB Internal Collision":            0,
	"TLB Flush + Reload":                1,
	"TLB Evict + Time":                  2,
	"TLB Prime + Probe":                 3,
	"TLB version of Bernstein's Attack": 4,
	"TLB Evict + Probe":                 5,
	"TLB Prime + Time":                  6,
}

// patternOrderKey gives a stable secondary sort within a strategy.
func patternOrderKey(p Pattern) string { return p.String() }

func sortVulnerabilities(v []Vulnerability) {
	sort.Slice(v, func(i, j int) bool {
		oi, iok := strategyOrder[v[i].Strategy]
		oj, jok := strategyOrder[v[j].Strategy]
		switch {
		case iok && jok && oi != oj:
			return oi < oj
		case iok != jok:
			return iok // base strategies before extended ones
		case v[i].Strategy != v[j].Strategy:
			return v[i].Strategy < v[j].Strategy
		}
		return patternOrderKey(v[i].Pattern) < patternOrderKey(v[j].Pattern)
	})
}

// Find returns the enumerated vulnerability matching a pattern, if any.
func Find(vulns []Vulnerability, p Pattern) (Vulnerability, bool) {
	for _, v := range vulns {
		if v.Pattern == p {
			return v, true
		}
	}
	return Vulnerability{}, false
}
