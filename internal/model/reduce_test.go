package model

import (
	"testing"
	"testing/quick"
)

func patternsEqual(a []Vulnerability, want ...Pattern) bool {
	if len(a) != len(want) {
		return false
	}
	got := map[Pattern]bool{}
	for _, v := range a {
		got[v.Pattern] = true
	}
	for _, p := range want {
		if !got[p] {
			return false
		}
	}
	return true
}

func TestReduceThreeStepIdentity(t *testing.T) {
	// Reducing an effective three-step pattern finds exactly itself.
	for _, v := range Enumerate() {
		red := Reduce(v.Pattern[:])
		if !patternsEqual(red.Effective, v.Pattern) {
			t.Errorf("Reduce(%s) found %v", v.Pattern, red.Effective)
		}
	}
}

func TestReduceRule1StarSplits(t *testing.T) {
	// {Ad, Vu, Ad, *, Vd, Vu, Vd}: the ★ splits the sequence; both halves
	// are effective (Prime+Probe, then Bernstein — ★ heads the second
	// segment and is then irrelevant to its window scan).
	steps := []State{Ad, Vu, Ad, Star, Vd, Vu, Vd}
	red := Reduce(steps)
	if len(red.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(red.Segments))
	}
	if !patternsEqual(red.Effective, Pattern{Ad, Vu, Ad}, Pattern{Vd, Vu, Vd}) {
		t.Errorf("effective = %v", red.Effective)
	}
}

func TestReduceRule2InvSplits(t *testing.T) {
	// An inv in the middle becomes Step 1 of the second pattern — the
	// Flush + Reload shape.
	steps := []State{Vd, Vu, Vd, Ainv, Vu, Aa}
	red := Reduce(steps)
	if !patternsEqual(red.Effective, Pattern{Vd, Vu, Vd}, Pattern{Ainv, Vu, Aa}) {
		t.Errorf("effective = %v", red.Effective)
	}
}

func TestReduceRule3Collapse(t *testing.T) {
	// Adjacent knowns collapse to the later one: {Ad, Va, Vu, Va} has the
	// sub-pattern Ad⇝Va collapsing to Va, leaving Bernstein's Va⇝Vu⇝Va.
	red := Reduce([]State{Ad, Va, Vu, Va})
	if !patternsEqual(red.Effective, Pattern{Va, Vu, Va}) {
		t.Errorf("effective = %v", red.Effective)
	}
	// Adjacent u-operations collapse: {Ad, Vu, Vu, Ad}.
	red = Reduce([]State{Ad, Vu, Vu, Ad})
	if !patternsEqual(red.Effective, Pattern{Ad, Vu, Ad}) {
		t.Errorf("effective = %v", red.Effective)
	}
}

func TestReduceTrailingStarDeleted(t *testing.T) {
	red := Reduce([]State{Ad, Vu, Ad, Star})
	if !patternsEqual(red.Effective, Pattern{Ad, Vu, Ad}) {
		t.Errorf("effective = %v", red.Effective)
	}
}

func TestReduceHarmlessPatterns(t *testing.T) {
	for _, steps := range [][]State{
		{},
		{Vu},
		{Ad, Vd, Aa},       // no u at all
		{Star, Vu},         // unknown prior state
		{Vu, Vu, Vu},       // collapses to a single step
		{Ainv, Ad, Vd, Aa}, // all known
	} {
		red := Reduce(steps)
		if len(red.Effective) != 0 {
			t.Errorf("Reduce(%v) found %v, want none", steps, red.Effective)
		}
	}
}

func TestReduceLongAlternating(t *testing.T) {
	// A long alternating pattern contains several overlapping effective
	// windows: {Ad, Vu, Ad, Vu, Ad} has Prime+Probe twice (same pattern)
	// and its windows also include {Vu, Ad, Vu} — Evict+Time.
	red := Reduce([]State{Ad, Vu, Ad, Vu, Ad})
	if !patternsEqual(red.Effective, Pattern{Ad, Vu, Ad}, Pattern{Vu, Ad, Vu}) {
		t.Errorf("effective = %v", red.Effective)
	}
}

func TestReduceFourStepFromAppendixA(t *testing.T) {
	// Appendix A's worked shapes: a β=4 pattern with a redundant prime.
	// {Vinv, Ad, Vu, Aa}: Vinv and Ad are adjacent knowns → collapse to Ad,
	// leaving the Flush+Reload variant {Ad, Vu, Aa}.
	red := Reduce([]State{Vinv, Ad, Vu, Aa})
	if !patternsEqual(red.Effective, Pattern{Ad, Vu, Aa}) {
		t.Errorf("effective = %v", red.Effective)
	}
}

func TestCollapseAlternates(t *testing.T) {
	seg := collapse([]State{Ad, Va, Vu, Vu, Vd, Aa, Vu})
	if !Alternates(seg) {
		t.Errorf("collapsed segment %v does not alternate", seg)
	}
	if len(seg) != 4 { // Va, Vu, Aa, Vu
		t.Errorf("collapsed = %v", seg)
	}
}

func TestQuickReduceProperties(t *testing.T) {
	universe := BaseStates()
	f := func(idxs []uint8) bool {
		steps := make([]State, 0, len(idxs))
		for _, i := range idxs {
			steps = append(steps, universe[int(i)%len(universe)])
		}
		red := Reduce(steps)
		// Property 1: every reduced segment strictly alternates.
		for _, seg := range red.Segments {
			if !Alternates(seg) {
				t.Logf("segment %v does not alternate (input %v)", seg, steps)
				return false
			}
		}
		// Property 2: no segment retains a non-initial ★ or inv.
		for _, seg := range red.Segments {
			for i, s := range seg {
				if i > 0 && (s == Star || s.Class == ClassInvAll) {
					t.Logf("segment %v retains mid-pattern %s", seg, s)
					return false
				}
			}
		}
		// Property 3: everything reported effective is in Table 2.
		table := Enumerate()
		for _, v := range red.Effective {
			if _, ok := Find(table, v.Pattern); !ok {
				t.Logf("reported non-Table-2 pattern %s", v.Pattern)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickEmbeddedVulnerabilityFound(t *testing.T) {
	// Property: an effective pattern prefixed with a full flush and suffixed
	// with a trailing star is still found.
	vulns := Enumerate()
	f := func(pick uint8) bool {
		v := vulns[int(pick)%len(vulns)]
		steps := append([]State{Ainv}, v.Pattern[:]...)
		steps = append(steps, Star)
		red := Reduce(steps)
		for _, e := range red.Effective {
			if e.Pattern == v.Pattern {
				return true
			}
		}
		// The flush may merge with a known first step (rule 3) producing an
		// equivalent variant; accept any effective finding of the same
		// strategy.
		for _, e := range red.Effective {
			if e.Strategy == v.Strategy {
				return true
			}
		}
		t.Logf("embedded %s lost: %v", v.Pattern, red.Effective)
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
