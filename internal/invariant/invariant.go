// Package invariant provides a runtime structural-invariant checker for the
// TLB designs, in the spirit of the security-assertion checking of
// "Translating Common Security Assertions Across Processor Designs": the
// microarchitectural guarantees the paper's security claims rest on are
// re-validated after every access, so corrupted simulator state is detected
// at the access that exposes it instead of silently skewing result tables.
//
// The Checker wraps an inspectable TLB design (SA, SP or RF) and, around
// every Translate, snapshots the array and validates that exactly one legal
// transition occurred:
//
//   - a hit refreshes only the hit entry's LRU stamp, which becomes the most
//     recent in the array (a stuck LRU update is a violation);
//   - a fill installs the requested translation at the true LRU way of the
//     correct set — inside the requester's partition on the SP TLB — with a
//     consistent eviction report;
//   - an RF random fill installs exactly the D' the Random Fill Engine's
//     PRNG stream prescribes (a biased RNG is a violation), and a no-fill
//     access never leaks the requested translation into the array;
//   - an error leaves the array untouched.
//
// Global checks then confirm the array itself is well-formed: entries sit in
// the set their page number indexes, no translation is duplicated, per-set
// LRU stamps form a valid order, Sec bits appear only on in-region victim
// entries, and the hit/miss counters tally. An optional cross-check re-walks
// the returned translation against the page tables, which is what catches a
// corrupted page-table walk whose wrong PPN the TLB faithfully installed.
//
// Violations surface as a *Violation error satisfying
// errors.Is(err, ErrViolation), so the resilient campaign runner quarantines
// the trial with a dedicated "invariant" kind. The checker is strictly
// opt-in: an unwrapped design pays nothing, which keeps the hot path free of
// overhead when checking is disabled.
package invariant

import (
	"errors"
	"fmt"

	"securetlb/internal/tlb"
)

// ErrViolation is the sentinel matched by errors.Is for every invariant
// violation.
var ErrViolation = errors.New("invariant: violation")

// Violation describes one detected invariant violation.
type Violation struct {
	// Invariant is the short name of the violated invariant, e.g. "lru-touch"
	// or "sp-partition".
	Invariant string
	// Design is the wrapped TLB's Name().
	Design string
	// Detail is a human-readable description of the violation.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %s violated on %s: %s", v.Invariant, v.Design, v.Detail)
}

// Is reports errors.Is equivalence with ErrViolation.
func (v *Violation) Is(target error) bool { return target == ErrViolation }

// Config selects the optional (more expensive) checks.
type Config struct {
	// CrossCheck re-walks every successful translation against the walker
	// and compares physical page numbers. It costs one extra page walk per
	// access but is the only check that catches a corrupted walk whose wrong
	// result the TLB installed faithfully.
	CrossCheck bool
}

// Checker wraps an inspectable TLB design and validates the structural
// invariants after every access. It implements tlb.TLB, tlb.SecureTLB
// (forwarding to the inner design, or no-ops for a non-secure design, so a
// wrapped TLB drops into any machine unchanged) and tlb.Cloner.
type Checker struct {
	inner  tlb.TLB
	insp   tlb.Inspectable
	walker tlb.Walker
	cfg    Config

	sp *tlb.SP
	rf *tlb.RF

	entries, ways, sets int
	prev, cur           []tlb.EntrySnapshot

	// pending holds a violation found on a path that cannot return an error
	// (the flush operations); it is surfaced by the next Translate.
	pending error

	// Checks counts completed per-access validations, for tests and reports.
	Checks uint64
}

var (
	_ tlb.SecureTLB = (*Checker)(nil)
	_ tlb.Cloner    = (*Checker)(nil)
)

// Wrap returns a Checker around t. The walker is used only for the optional
// translation cross-check and may be nil when cfg.CrossCheck is false. It
// fails for designs that do not expose their array (tlb.Inspectable).
func Wrap(t tlb.TLB, walker tlb.Walker, cfg Config) (*Checker, error) {
	insp, ok := t.(tlb.Inspectable)
	if !ok {
		return nil, fmt.Errorf("invariant: %s does not support inspection", t.Name())
	}
	if cfg.CrossCheck && walker == nil {
		return nil, errors.New("invariant: cross-check requires a walker")
	}
	c := &Checker{
		inner:   t,
		insp:    insp,
		walker:  walker,
		cfg:     cfg,
		entries: t.Entries(),
		ways:    t.Ways(),
	}
	c.sets = c.entries / c.ways
	c.sp, _ = t.(*tlb.SP)
	c.rf, _ = t.(*tlb.RF)
	c.prev = make([]tlb.EntrySnapshot, 0, c.entries)
	c.cur = make([]tlb.EntrySnapshot, 0, c.entries)
	return c, nil
}

// Unwrap returns the design inside a Checker, or t itself when it is not
// wrapped. Campaign code that needs the concrete design (e.g. to reseed the
// RF TLB per trial) must go through Unwrap so it works identically with
// checking on or off.
func Unwrap(t tlb.TLB) tlb.TLB {
	if c, ok := t.(*Checker); ok {
		return c.inner
	}
	return t
}

// Inner returns the wrapped design.
func (c *Checker) Inner() tlb.TLB { return c.inner }

func (c *Checker) violation(invariant, format string, args ...any) error {
	return &Violation{Invariant: invariant, Design: c.inner.Name(), Detail: fmt.Sprintf(format, args...)}
}

// setIndex mirrors the designs' VPN-to-set mapping.
func (c *Checker) setIndex(vpn tlb.VPN) int { return int(uint64(vpn) % uint64(c.sets)) }

// findCur returns the flat index of the valid entry for (asid, vpn) in the
// post-access snapshot, or -1.
func (c *Checker) findCur(asid tlb.ASID, vpn tlb.VPN) int {
	s := c.setIndex(vpn)
	for w := 0; w < c.ways; w++ {
		i := s*c.ways + w
		e := &c.cur[i]
		if e.Valid && e.ASID == asid && e.VPN == vpn {
			return i
		}
	}
	return -1
}

// lruIndex recomputes the designs' fill-victim choice over the pre-access
// snapshot: the first invalid way in [lo, hi) of set s, else the way with
// the smallest stamp. Returned as a flat index.
func (c *Checker) lruIndex(snap []tlb.EntrySnapshot, s, lo, hi int) int {
	victim, oldest := lo, ^uint64(0)
	for w := lo; w < hi; w++ {
		e := &snap[s*c.ways+w]
		if !e.Valid {
			return s*c.ways + w
		}
		if e.Stamp < oldest {
			victim, oldest = w, e.Stamp
		}
	}
	return s*c.ways + victim
}

// diffIndices collects the flat indices whose snapshot changed across the
// access (capped — any count past the legal maximum of one is already a
// violation, the extra indices only improve the message).
func (c *Checker) diffIndices() []int {
	var d []int
	for i := range c.cur {
		if c.cur[i] != c.prev[i] {
			d = append(d, i)
			if len(d) == 4 {
				break
			}
		}
	}
	return d
}

// Translate implements tlb.TLB: it forwards the access to the wrapped design
// and validates the resulting state transition. A detected violation is
// returned in place of the design's own (nil) error.
func (c *Checker) Translate(asid tlb.ASID, vpn tlb.VPN) (tlb.Result, error) {
	if p := c.pending; p != nil {
		c.pending = nil
		return tlb.Result{}, p
	}
	c.prev = c.insp.SnapshotAppend(c.prev[:0])

	// Predict the Random Fill Engine's draw before the access so a biased
	// or stuck RNG is exposed by comparing prediction and outcome.
	var predVPN tlb.VPN
	var predFill bool
	if c.rf != nil {
		g := c.rf.RNGClone()
		predVPN, predFill, _ = c.rf.PredictRandomFill(&g, asid, vpn)
	}

	res, err := c.inner.Translate(asid, vpn)
	c.cur = c.insp.SnapshotAppend(c.cur[:0])
	c.Checks++

	if v := c.checkTransition(asid, vpn, res, err, predVPN, predFill); v != nil {
		return res, v
	}
	if v := c.checkGlobal(); v != nil {
		return res, v
	}
	if err == nil && c.cfg.CrossCheck {
		ppn, _, werr := c.walker.Walk(asid, vpn)
		if werr != nil {
			return res, c.violation("xlate-cross", "TLB returned %#x for asid %d vpn %#x but the page walk faults: %v", res.PPN, asid, vpn, werr)
		}
		if ppn != res.PPN {
			return res, c.violation("xlate-cross", "TLB returned ppn %#x for asid %d vpn %#x, page tables say %#x", res.PPN, asid, vpn, ppn)
		}
	}
	return res, err
}

// checkTransition validates that the access performed exactly one legal
// state transition.
func (c *Checker) checkTransition(asid tlb.ASID, vpn tlb.VPN, res tlb.Result, err error, predVPN tlb.VPN, predFill bool) error {
	diffs := c.diffIndices()

	if err != nil {
		// Every error path leaves the array untouched.
		if len(diffs) != 0 {
			return c.violation("error-mutation", "erroring access (%v) mutated %d slot(s), first at set %d way %d", err, len(diffs), diffs[0]/c.ways, diffs[0]%c.ways)
		}
		return nil
	}

	switch {
	case res.Hit:
		return c.checkHit(asid, vpn, res, diffs)
	case res.RandomFilled:
		return c.checkRandomFill(asid, vpn, res, diffs, predVPN, predFill)
	case res.Filled:
		return c.checkFill(asid, vpn, res, diffs)
	default:
		// RF no-fill service (random fill skipped): nothing may change, and
		// the requested translation — absent before, or it would have hit —
		// must not have leaked out of the no-fill buffer.
		if len(diffs) != 0 {
			return c.violation("nofill-delta", "buffered no-fill access mutated %d slot(s)", len(diffs))
		}
		if c.findCur(asid, vpn) >= 0 {
			return c.violation("nofill-leak", "no-fill buffer leaked asid %d vpn %#x into the array", asid, vpn)
		}
		return nil
	}
}

func (c *Checker) checkHit(asid tlb.ASID, vpn tlb.VPN, res tlb.Result, diffs []int) error {
	idx := c.findCur(asid, vpn)
	if idx < 0 {
		return c.violation("hit-present", "hit reported for asid %d vpn %#x but the translation is not in the array", asid, vpn)
	}
	if len(diffs) == 0 {
		return c.violation("lru-touch", "hit on asid %d vpn %#x did not refresh the LRU stamp (stuck LRU)", asid, vpn)
	}
	if len(diffs) != 1 || diffs[0] != idx {
		return c.violation("hit-delta", "hit on asid %d vpn %#x changed %d slot(s), first at set %d way %d (want only set %d way %d)",
			asid, vpn, len(diffs), diffs[0]/c.ways, diffs[0]%c.ways, idx/c.ways, idx%c.ways)
	}
	p, q := c.prev[idx], c.cur[idx]
	p.Stamp = q.Stamp
	if p != q {
		return c.violation("hit-delta", "hit on asid %d vpn %#x changed fields beyond the LRU stamp: %+v -> %+v", asid, vpn, c.prev[idx], q)
	}
	if q.Stamp <= c.prev[idx].Stamp {
		return c.violation("lru-touch", "hit stamp went %d -> %d (not monotonic)", c.prev[idx].Stamp, q.Stamp)
	}
	for i := range c.cur {
		if i != idx && c.cur[i].Valid && c.cur[i].Stamp >= q.Stamp {
			return c.violation("lru-order", "hit entry's stamp %d is not the most recent (set %d way %d holds %d)", q.Stamp, i/c.ways, i%c.ways, c.cur[i].Stamp)
		}
	}
	if res.PPN != q.PPN {
		return c.violation("hit-ppn", "hit returned ppn %#x but the array holds %#x", res.PPN, q.PPN)
	}
	return nil
}

// fillRange returns the way range [lo, hi) a fill from asid must target: the
// requester's partition on an SP TLB with an active victim, the whole set
// otherwise.
func (c *Checker) fillRange(asid tlb.ASID) (lo, hi int) {
	if c.sp != nil && c.sp.HasVictim() {
		if asid == c.sp.Victim() {
			return 0, c.sp.VictimWays()
		}
		return c.sp.VictimWays(), c.ways
	}
	return 0, c.ways
}

// checkInstall validates a fresh install at flat index idx: correct set,
// LRU-chosen victim within [lo, hi), consistent eviction report, and a stamp
// newer than the whole pre-access array.
func (c *Checker) checkInstall(idx int, vpn tlb.VPN, lo, hi int, res tlb.Result, reportEvict bool) error {
	s := c.setIndex(vpn)
	if idx/c.ways != s {
		return c.violation("set-index", "vpn %#x installed in set %d, indexes set %d", vpn, idx/c.ways, s)
	}
	if w := idx % c.ways; w < lo || w >= hi {
		return c.violation("sp-partition", "fill landed in way %d, outside the requester's partition [%d,%d)", w, lo, hi)
	}
	if want := c.lruIndex(c.prev, s, lo, hi); idx != want {
		return c.violation("lru-victim", "fill chose set %d way %d, LRU policy requires way %d", s, idx%c.ways, want%c.ways)
	}
	p := c.prev[idx]
	if reportEvict {
		if p.Valid && (!res.Evicted || res.EvictedVPN != p.VPN || res.EvictedASID != p.ASID) {
			return c.violation("evict-report", "fill displaced asid %d vpn %#x but reported Evicted=%v vpn %#x asid %d", p.ASID, p.VPN, res.Evicted, res.EvictedVPN, res.EvictedASID)
		}
		if !p.Valid && res.Evicted {
			return c.violation("evict-report", "fill into an invalid way reported an eviction")
		}
	}
	q := c.cur[idx]
	for i := range c.prev {
		if i != idx && c.prev[i].Valid && c.prev[i].Stamp >= q.Stamp {
			return c.violation("lru-order", "fill stamp %d is not newer than resident stamp %d (set %d way %d)", q.Stamp, c.prev[i].Stamp, i/c.ways, i%c.ways)
		}
	}
	return nil
}

func (c *Checker) checkFill(asid tlb.ASID, vpn tlb.VPN, res tlb.Result, diffs []int) error {
	idx := c.findCur(asid, vpn)
	if idx < 0 {
		return c.violation("fill-present", "fill reported for asid %d vpn %#x but the translation is not in the array (dropped fill)", asid, vpn)
	}
	if len(diffs) != 1 || diffs[0] != idx {
		first := -1
		if len(diffs) > 0 {
			first = diffs[0]
		}
		return c.violation("fill-delta", "fill of asid %d vpn %#x changed %d slot(s), first at flat index %d (want only %d)", asid, vpn, len(diffs), first, idx)
	}
	if q := c.cur[idx]; q.PPN != res.PPN {
		return c.violation("fill-ppn", "fill installed ppn %#x but the access returned %#x", q.PPN, res.PPN)
	}
	lo, hi := c.fillRange(asid)
	return c.checkInstall(idx, vpn, lo, hi, res, true)
}

func (c *Checker) checkRandomFill(asid tlb.ASID, vpn tlb.VPN, res tlb.Result, diffs []int, predVPN tlb.VPN, predFill bool) error {
	if c.rf == nil {
		return c.violation("rfill-design", "%s reported a random fill but is not an RF TLB", c.inner.Name())
	}
	if !predFill {
		return c.violation("rng-stream", "random fill of vpn %#x occurred where the RFE stream prescribes none", res.RandomVPN)
	}
	if res.RandomVPN != predVPN {
		return c.violation("rng-stream", "random fill chose vpn %#x, the RFE stream prescribes %#x (biased RNG)", res.RandomVPN, predVPN)
	}
	idx := c.findCur(asid, res.RandomVPN)
	if idx < 0 {
		return c.violation("rfill-present", "random fill reported for vpn %#x but the translation is not in the array (dropped fill)", res.RandomVPN)
	}
	if len(diffs) != 1 || diffs[0] != idx {
		return c.violation("rfill-delta", "random fill of vpn %#x changed %d slot(s) (want only the D' slot)", res.RandomVPN, len(diffs))
	}
	if !res.Filled && c.findCur(asid, vpn) >= 0 {
		return c.violation("nofill-leak", "secure request asid %d vpn %#x leaked into the array alongside its random fill", asid, vpn)
	}
	p := c.prev[idx]
	if p.Valid && p.ASID == asid && p.VPN == res.RandomVPN {
		// D' collided with a resident entry: a refresh, not an install.
		q := c.cur[idx]
		p.Stamp, p.Sec = q.Stamp, q.Sec
		if p != q {
			return c.violation("rfill-delta", "random-fill refresh of vpn %#x changed fields beyond stamp and Sec", res.RandomVPN)
		}
		return nil
	}
	// The RF TLB reports at most one eviction per access; when the random
	// fill follows a buffered request the Result's eviction fields describe
	// the D' install, so they are checked like a normal fill's.
	return c.checkInstall(idx, res.RandomVPN, 0, c.ways, res, true)
}

// checkGlobal validates whole-array well-formedness after the access.
func (c *Checker) checkGlobal() error {
	for i := range c.cur {
		e := &c.cur[i]
		if !e.Valid {
			continue
		}
		if want := c.setIndex(e.VPN); i/c.ways != want {
			return c.violation("set-index", "entry for vpn %#x resides in set %d, indexes set %d", e.VPN, i/c.ways, want)
		}
	}
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			a := &c.cur[s*c.ways+w]
			if !a.Valid {
				continue
			}
			for w2 := w + 1; w2 < c.ways; w2++ {
				b := &c.cur[s*c.ways+w2]
				if !b.Valid {
					continue
				}
				if a.ASID == b.ASID && a.VPN == b.VPN {
					return c.violation("dup-entry", "asid %d vpn %#x duplicated in set %d ways %d and %d", a.ASID, a.VPN, s, w, w2)
				}
				if a.Stamp == b.Stamp {
					return c.violation("lru-perm", "set %d ways %d and %d share LRU stamp %d (order is not a permutation)", s, w, w2, a.Stamp)
				}
			}
		}
	}
	if c.rf != nil && c.rf.HasVictim() {
		victim := c.rf.Victim()
		sbase, ssize := c.rf.SecureRegion()
		for i := range c.cur {
			e := &c.cur[i]
			if !e.Valid || !e.Sec {
				continue
			}
			if e.ASID != victim {
				return c.violation("sec-confine", "Sec bit set on asid %d entry (victim is %d) for vpn %#x", e.ASID, victim, e.VPN)
			}
			if ssize == 0 || e.VPN < sbase || uint64(e.VPN-sbase) >= ssize {
				return c.violation("sec-confine", "Sec-bit entry vpn %#x lies outside the secure region [%#x,%#x)", e.VPN, sbase, uint64(sbase)+ssize)
			}
		}
	}
	if s := c.inner.Stats(); s.Hits+s.Misses != s.Lookups {
		return c.violation("stats", "hits (%d) + misses (%d) != lookups (%d)", s.Hits, s.Misses, s.Lookups)
	}
	return nil
}

// recordPending stores the first violation found on an error-less path; it
// is surfaced by the next Translate.
func (c *Checker) recordPending(v error) {
	if v != nil && c.pending == nil {
		c.pending = v
	}
}

// afterFlush validates that a flush actually removed what it claims to.
func (c *Checker) afterFlush(check func(e *tlb.EntrySnapshot) error) {
	c.cur = c.insp.SnapshotAppend(c.cur[:0])
	for i := range c.cur {
		if !c.cur[i].Valid {
			continue
		}
		if v := check(&c.cur[i]); v != nil {
			c.recordPending(v)
			return
		}
	}
}

// Probe implements tlb.TLB.
func (c *Checker) Probe(asid tlb.ASID, vpn tlb.VPN) bool { return c.inner.Probe(asid, vpn) }

// FlushAll implements tlb.TLB.
func (c *Checker) FlushAll() {
	c.inner.FlushAll()
	c.afterFlush(func(e *tlb.EntrySnapshot) error {
		return c.violation("flush", "entry for asid %d vpn %#x survived FlushAll", e.ASID, e.VPN)
	})
}

// FlushASID implements tlb.TLB.
func (c *Checker) FlushASID(asid tlb.ASID) {
	c.inner.FlushASID(asid)
	c.afterFlush(func(e *tlb.EntrySnapshot) error {
		if e.ASID == asid {
			return c.violation("flush", "asid %d entry for vpn %#x survived FlushASID", asid, e.VPN)
		}
		return nil
	})
}

// FlushPage implements tlb.TLB.
func (c *Checker) FlushPage(asid tlb.ASID, vpn tlb.VPN) bool {
	r := c.inner.FlushPage(asid, vpn)
	if c.inner.Probe(asid, vpn) {
		c.recordPending(c.violation("flush", "asid %d vpn %#x still present after FlushPage", asid, vpn))
	}
	return r
}

// FlushPageAllASIDs implements tlb.TLB.
func (c *Checker) FlushPageAllASIDs(vpn tlb.VPN) bool {
	r := c.inner.FlushPageAllASIDs(vpn)
	c.afterFlush(func(e *tlb.EntrySnapshot) error {
		if e.VPN == vpn {
			return c.violation("flush", "vpn %#x (asid %d) survived FlushPageAllASIDs", vpn, e.ASID)
		}
		return nil
	})
	return r
}

// Stats implements tlb.TLB.
func (c *Checker) Stats() tlb.Stats { return c.inner.Stats() }

// ResetStats implements tlb.TLB.
func (c *Checker) ResetStats() { c.inner.ResetStats() }

// Entries implements tlb.TLB.
func (c *Checker) Entries() int { return c.inner.Entries() }

// Ways implements tlb.TLB.
func (c *Checker) Ways() int { return c.inner.Ways() }

// Name implements tlb.TLB. The inner name is kept verbatim so wrapped and
// unwrapped runs render identical tables.
func (c *Checker) Name() string { return c.inner.Name() }

// SetVictim implements tlb.SecureTLB, forwarding to the inner design when it
// is secure and doing nothing otherwise (the SA TLB ignores the security
// CSRs exactly the same way).
func (c *Checker) SetVictim(asid tlb.ASID) {
	if s, ok := c.inner.(tlb.SecureTLB); ok {
		s.SetVictim(asid)
	}
}

// SetSecureRegion implements tlb.SecureTLB.
func (c *Checker) SetSecureRegion(sbase tlb.VPN, ssize uint64) {
	if s, ok := c.inner.(tlb.SecureTLB); ok {
		s.SetSecureRegion(sbase, ssize)
	}
}

// Victim implements tlb.SecureTLB.
func (c *Checker) Victim() tlb.ASID {
	if s, ok := c.inner.(tlb.SecureTLB); ok {
		return s.Victim()
	}
	return 0
}

// SecureRegion implements tlb.SecureTLB.
func (c *Checker) SecureRegion() (tlb.VPN, uint64) {
	if s, ok := c.inner.(tlb.SecureTLB); ok {
		return s.SecureRegion()
	}
	return 0, 0
}

// CloneWith implements tlb.Cloner: the inner design is cloned onto the new
// walker and wrapped in a fresh Checker with the same configuration, so
// per-worker machine clones keep checking independently.
func (c *Checker) CloneWith(w tlb.Walker) tlb.TLB {
	cl, ok := c.inner.(tlb.Cloner)
	if !ok {
		return nil
	}
	inner := cl.CloneWith(w)
	if inner == nil {
		return nil
	}
	n, err := Wrap(inner, w, c.cfg)
	if err != nil {
		return nil
	}
	return n
}
