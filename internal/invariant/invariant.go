// Package invariant is a thin compatibility shim over the design-agnostic
// security-assertion layer in internal/assert, which replaced this package's
// original per-design checker. The hard-coded SP/RF check bodies that used to
// live here are now declarative assertions bound per design by capability
// (see assert.BindingFor); existing callers keep their API — Wrap/Unwrap,
// Config, Checker, ErrViolation — and get the new layer underneath.
//
// New code should import internal/assert directly.
package invariant

import (
	"securetlb/internal/assert"
	"securetlb/internal/tlb"
)

// ErrViolation is the sentinel matched by errors.Is for every assertion
// violation. It is the assert layer's sentinel, so errors.Is works
// identically whichever package a caller matched against.
var ErrViolation = assert.ErrViolation

// Violation is the assert layer's violation error.
type Violation = assert.Violation

// Checker is the assert layer's monitor.
type Checker = assert.Monitor

// Config selects the optional (more expensive) checks.
type Config struct {
	// CrossCheck re-walks every successful translation against the walker
	// and compares physical page numbers (assert.Options.CrossCheck).
	CrossCheck bool
}

// Wrap returns a monitor around t with the assertion binding its
// capabilities select. The walker is used only for the optional translation
// cross-check and may be nil when cfg.CrossCheck is false. It fails for
// designs that do not expose their array (tlb.Inspectable).
func Wrap(t tlb.TLB, walker tlb.Walker, cfg Config) (*Checker, error) {
	return assert.Wrap(t, walker, assert.Options{CrossCheck: cfg.CrossCheck})
}

// Unwrap returns the design inside a monitor, or t itself when it is not
// wrapped.
func Unwrap(t tlb.TLB) tlb.TLB { return assert.Unwrap(t) }
