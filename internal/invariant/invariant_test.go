package invariant

import (
	"errors"
	"testing"

	"securetlb/internal/tlb"
)

// testWalker resolves every page deterministically so clean traffic never
// faults and the cross-check has a ground truth.
func testWalker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(uint64(vpn)<<4 | uint64(asid)), 60, nil
	})
}

func newSA(t *testing.T) *tlb.SetAssoc {
	t.Helper()
	sa, err := tlb.NewSetAssoc(32, 8, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func newRF(t *testing.T) *tlb.RF {
	t.Helper()
	rf, err := tlb.NewRF(32, 8, testWalker(), 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	rf.SetVictim(1)
	rf.SetSecureRegion(0x100, 8)
	return rf
}

func wrap(t *testing.T, inner tlb.TLB) *Checker {
	t.Helper()
	c, err := Wrap(inner, testWalker(), Config{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// xorshift is a tiny deterministic generator for the traffic tests.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545f4914f6cdd1d
}

// TestCleanTrafficNoViolation drives heavy mixed traffic — hits, misses,
// secure-region accesses, flushes — through every checked design and
// requires zero violations: the checker's legal-transition model must match
// the designs exactly.
func TestCleanTrafficNoViolation(t *testing.T) {
	sp, err := tlb.NewSP(32, 8, 4, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	sp.SetVictim(1)
	designs := map[string]tlb.TLB{"sa": newSA(t), "sp": sp, "rf": newRF(t)}
	for name, inner := range designs {
		t.Run(name, func(t *testing.T) {
			c := wrap(t, inner)
			g := xorshift(42)
			for i := 0; i < 5000; i++ {
				asid := tlb.ASID(g.next() % 2)
				vpn := tlb.VPN(0xfc + g.next()%16)
				if g.next()%4 == 0 {
					// Aim some victim traffic into the RF secure region.
					asid, vpn = 1, tlb.VPN(0x100+g.next()%8)
				}
				if _, err := c.Translate(asid, vpn); err != nil {
					t.Fatalf("access %d (asid %d vpn %#x): %v", i, asid, vpn, err)
				}
				switch g.next() % 97 {
				case 0:
					c.FlushAll()
				case 1:
					c.FlushASID(asid)
				case 2:
					c.FlushPage(asid, vpn)
				case 3:
					c.FlushPageAllASIDs(vpn)
				}
			}
			if c.Checks == 0 {
				t.Fatal("checker performed no checks")
			}
		})
	}
}

// corrupting returns a hook that corrupts (set 0, way) with f on the nth
// OnAccess, modelling an in-array bit error mid-access.
func corrupting(insp tlb.Inspectable, n, way int, f func(*tlb.EntrySnapshot)) *tlb.FaultHook {
	count := 0
	return &tlb.FaultHook{OnAccess: func() {
		count++
		if count == n {
			insp.CorruptEntry(0, way, f)
		}
	}}
}

// fillSet fills the checker's set 0 with asid-0 entries.
func fillSet(t *testing.T, c *Checker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Translate(0, tlb.VPN(i*4)); err != nil {
			t.Fatalf("warm-up fill %d: %v", i, err)
		}
	}
}

func wantViolation(t *testing.T, err error, invariant string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s violation, got nil", invariant)
	}
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("want ErrViolation, got %v", err)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *Violation", err)
	}
	if v.Invariant != invariant {
		t.Fatalf("want invariant %q, got %q (%v)", invariant, v.Invariant, err)
	}
}

func TestDetectsTagFlip(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	fillSet(t, c, 4)
	// Flip a tag bit in a *neighbouring* way of the set being hit: the hit's
	// delta must be confined to the hit slot, so the extra change is caught.
	sa.SetFaultHook(corrupting(sa, 1, 1, func(e *tlb.EntrySnapshot) { e.VPN ^= 1 << 7 }))
	_, err := c.Translate(0, 0) // hit on set 0 way 0
	wantViolation(t, err, "hit-delta")
}

func TestDetectsPPNFlipOnHit(t *testing.T) {
	// Corrupt the PPN of the entry being hit: the delta is confined to the
	// hit slot, so the cross-check against the page tables must catch it.
	sa := newSA(t)
	c := wrap(t, sa)
	fillSet(t, c, 1)
	sa.SetFaultHook(corrupting(sa, 1, 0, func(e *tlb.EntrySnapshot) { e.PPN ^= 1 << 3 }))
	_, err := c.Translate(0, 0)
	if err == nil || !errors.Is(err, ErrViolation) {
		t.Fatalf("want a violation, got %v", err)
	}
}

func TestDetectsStuckLRU(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	fillSet(t, c, 1)
	sa.SetFaultHook(&tlb.FaultHook{OnLRUTouch: func(set, way int) bool { return false }})
	_, err := c.Translate(0, 0) // hit, stamp refresh suppressed
	wantViolation(t, err, "lru-touch")
}

func TestDetectsDroppedFill(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	sa.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDrop }})
	_, err := c.Translate(0, 0)
	wantViolation(t, err, "fill-present")
}

func TestDetectsDuplicatedFill(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	sa.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDuplicate }})
	_, err := c.Translate(0, 0)
	wantViolation(t, err, "fill-delta")
}

func TestDetectsBiasedRNG(t *testing.T) {
	rf := newRF(t)
	c := wrap(t, rf)
	rf.SetFaultHook(&tlb.FaultHook{OnRNGDraw: func(n, draw uint64) uint64 { return draw ^ 1 }})
	// A victim access inside the secure region forces a random fill.
	_, err := c.Translate(1, 0x102)
	wantViolation(t, err, "rng-stream")
}

func TestDetectsSecBitEscape(t *testing.T) {
	// A Sec bit flipped onto an attacker's entry between accesses is invisible
	// to the delta check (the snapshot is taken per access) but must be caught
	// by the global Sec-confinement scan.
	rf := newRF(t)
	c := wrap(t, rf)
	if _, err := c.Translate(0, 4); err != nil { // attacker entry, set 0
		t.Fatal(err)
	}
	if !rf.CorruptEntry(0, 0, func(e *tlb.EntrySnapshot) { e.Sec = true }) {
		t.Fatal("corruption did not land")
	}
	_, err := c.Translate(0, 8)
	wantViolation(t, err, "sec-confine")
}

func TestDetectsSetIndexCorruption(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	fillSet(t, c, 1)
	if !sa.CorruptEntry(0, 0, func(e *tlb.EntrySnapshot) { e.VPN++ }) {
		t.Fatal("corruption did not land")
	}
	_, err := c.Translate(0, 1024) // fresh set-0 miss; global scan runs after
	wantViolation(t, err, "set-index")
}

// badFlush is an SA TLB whose FlushASID silently does nothing — the kind of
// control-logic fault the flush checks exist for.
type badFlush struct {
	*tlb.SetAssoc
}

func (b badFlush) FlushASID(tlb.ASID) {}

func TestFlushViolationSurfacesOnNextAccess(t *testing.T) {
	c := wrap(t, badFlush{newSA(t)})
	fillSet(t, c, 2)
	c.FlushASID(0) // broken: entries survive
	_, err := c.Translate(0, 0)
	wantViolation(t, err, "flush")
	// The pending violation is one-shot; the checker then resumes.
	if _, err := c.Translate(0, 0); err != nil {
		t.Fatalf("checker did not recover after surfacing pending violation: %v", err)
	}
}

func TestUnwrap(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	if Unwrap(c) != tlb.TLB(sa) {
		t.Fatal("Unwrap(checker) != inner")
	}
	if Unwrap(sa) != tlb.TLB(sa) {
		t.Fatal("Unwrap(raw) != raw")
	}
}

func TestCloneWithKeepsChecking(t *testing.T) {
	sa := newSA(t)
	c := wrap(t, sa)
	fillSet(t, c, 2)
	cl := c.CloneWith(testWalker())
	if cl == nil {
		t.Fatal("checker clone failed")
	}
	cc, ok := cl.(*Checker)
	if !ok {
		t.Fatalf("clone is %T, want *Checker", cl)
	}
	inner, ok := Unwrap(cc).(tlb.Inspectable)
	if !ok {
		t.Fatal("clone's inner design is not inspectable")
	}
	inner.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDrop }})
	_, err := cc.Translate(0, 100)
	wantViolation(t, err, "fill-present")
	// The original keeps working and is unaffected by the clone's hook.
	if _, err := c.Translate(0, 100); err != nil {
		t.Fatalf("original checker affected by clone: %v", err)
	}
}

func TestWrapRejectsNonInspectable(t *testing.T) {
	two, err := tlb.NewTwoLevel(func(w tlb.Walker) (tlb.TLB, error) {
		return tlb.NewSetAssoc(32, 8, w)
	}, newSA(t))
	if err != nil {
		t.Fatalf("cannot build two-level TLB: %v", err)
	}
	if _, err := Wrap(two, testWalker(), Config{}); err == nil {
		t.Fatal("Wrap accepted a non-inspectable composition")
	}
}

// BenchmarkTranslate compares raw design access cost against checked access
// cost; the "disabled" case is the raw design itself (no wrapper exists when
// checking is off, so the only residual cost is the nil fault-hook tests).
func BenchmarkTranslate(b *testing.B) {
	bench := func(b *testing.B, t tlb.TLB) {
		g := xorshift(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := t.Translate(tlb.ASID(g.next()%2), tlb.VPN(g.next()%64)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("raw", func(b *testing.B) {
		sa, _ := tlb.NewSetAssoc(32, 8, testWalker())
		bench(b, sa)
	})
	b.Run("checked", func(b *testing.B) {
		sa, _ := tlb.NewSetAssoc(32, 8, testWalker())
		c, err := Wrap(sa, testWalker(), Config{})
		if err != nil {
			b.Fatal(err)
		}
		bench(b, c)
	})
	b.Run("checked-crosscheck", func(b *testing.B) {
		sa, _ := tlb.NewSetAssoc(32, 8, testWalker())
		c, err := Wrap(sa, testWalker(), Config{CrossCheck: true})
		if err != nil {
			b.Fatal(err)
		}
		bench(b, c)
	})
}
