package invariant

import (
	"errors"
	"testing"

	"securetlb/internal/assert"
	"securetlb/internal/tlb"
)

// The detection tests for the assertion library itself live in
// internal/assert; this file only proves the shim still delivers the layer
// through the legacy API.

func testWalker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(uint64(vpn)<<4 | uint64(asid)), 60, nil
	})
}

func TestShimDetectsDroppedFill(t *testing.T) {
	sa, err := tlb.NewSetAssoc(32, 8, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Wrap(sa, testWalker(), Config{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	sa.SetFaultHook(&tlb.FaultHook{OnFill: func(set, way int) tlb.FillAction { return tlb.FillDrop }})
	_, verr := c.Translate(0, 0)
	if verr == nil {
		t.Fatal("shim-wrapped monitor missed a dropped fill")
	}
	if !errors.Is(verr, ErrViolation) {
		t.Fatalf("want ErrViolation, got %v", verr)
	}
	if !errors.Is(verr, assert.ErrViolation) {
		t.Fatalf("shim sentinel is not the assert sentinel: %v", verr)
	}
	var v *Violation
	if !errors.As(verr, &v) {
		t.Fatalf("error %v is not a *Violation", verr)
	}
	if v.Assertion == "" {
		t.Fatal("violation carries no assertion name")
	}
}

func TestShimUnwrap(t *testing.T) {
	sa, err := tlb.NewSetAssoc(32, 8, testWalker())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Wrap(sa, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if Unwrap(c) != tlb.TLB(sa) {
		t.Fatal("Unwrap(checker) != inner")
	}
	if Unwrap(sa) != tlb.TLB(sa) {
		t.Fatal("Unwrap(raw) != raw")
	}
}
