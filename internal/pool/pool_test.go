package pool

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	if got := New(5).Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestInFlightTracksOccupiedSlots(t *testing.T) {
	p := New(2)
	if got := p.InFlight(); got != 0 {
		t.Errorf("idle InFlight = %d, want 0", got)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	p.Go(&wg, func() {
		close(started)
		<-release
	})
	<-started
	if got := p.InFlight(); got != 1 {
		t.Errorf("InFlight with one running worker = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	if got := p.InFlight(); got != 0 {
		t.Errorf("drained InFlight = %d, want 0", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	p := New(3)
	const n = 100
	counts := make([]int32, n)
	p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestConcurrencyBound(t *testing.T) {
	p := New(2)
	var cur, peak int32
	p.ForEach(20, func(int) {
		n := atomic.AddInt32(&cur, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 2 {
		t.Errorf("observed %d concurrent workers, bound is 2", peak)
	}
}

func TestNestedFanOutDoesNotDeadlock(t *testing.T) {
	// Orchestrators fan out leaves through the same pool; only leaves hold
	// slots, so a 1-worker pool must still finish.
	p := New(1)
	var total int32
	var outer sync.WaitGroup
	for i := 0; i < 4; i++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			p.ForEach(5, func(int) { atomic.AddInt32(&total, 1) })
		}()
	}
	outer.Wait()
	if total != 20 {
		t.Errorf("ran %d leaves, want 20", total)
	}
}

func TestRunCtxCancelledBeforeSlot(t *testing.T) {
	p := New(1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	p.Go(&wg, func() { <-release }) // occupy the only slot
	for {
		// Wait until the slot is actually held.
		if len(p.sem) == 1 {
			break
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.RunCtx(ctx, func() { ran = true }); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("fn ran despite cancelled context")
	}
	close(release)
	wg.Wait()
	// With the slot free and a live context, RunCtx executes fn.
	if err := p.RunCtx(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Errorf("RunCtx after release: err = %v, ran = %v", err, ran)
	}
}

func TestForEachCtxStopsAdmittingOnCancel(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := p.ForEachCtx(ctx, 1000, func(i int) {
		if atomic.AddInt32(&started, 1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every started iteration drained before ForEachCtx returned, and far
	// fewer than n iterations were admitted after the cancellation.
	if n := atomic.LoadInt32(&started); n >= 1000 {
		t.Errorf("all %d iterations ran despite mid-run cancellation", n)
	}
}

func TestForEachCtxCompleteRunReturnsNil(t *testing.T) {
	p := New(3)
	var count int32
	if err := p.ForEachCtx(context.Background(), 50, func(int) { atomic.AddInt32(&count, 1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if count != 50 {
		t.Errorf("ran %d iterations, want 50", count)
	}
}

func TestSafelyCapturesPanic(t *testing.T) {
	err := Safely(func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "boom" || !strings.Contains(pe.Error(), "boom") {
		t.Errorf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if err := Safely(func() error { return nil }); err != nil {
		t.Errorf("clean fn: err = %v", err)
	}
	want := errors.New("plain")
	if err := Safely(func() error { return want }); err != want {
		t.Errorf("error passthrough: err = %v", err)
	}
}

func TestShards(t *testing.T) {
	if got := Shards(0, 4); got != nil {
		t.Errorf("Shards(0,4) = %v, want nil", got)
	}
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {10, 10}, {3, 8}, {1, 1}, {500, 7}, {5, 0},
	} {
		shards := Shards(tc.n, tc.parts)
		want := tc.parts
		if want > tc.n {
			want = tc.n
		}
		if want < 1 {
			want = 1
		}
		if len(shards) != want {
			t.Errorf("Shards(%d,%d): %d shards, want %d", tc.n, tc.parts, len(shards), want)
		}
		next, total := 0, 0
		for _, s := range shards {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("Shards(%d,%d): bad range %+v after %d", tc.n, tc.parts, s, next)
			}
			total += s.Hi - s.Lo
			next = s.Hi
		}
		if total != tc.n {
			t.Errorf("Shards(%d,%d) covers %d items", tc.n, tc.parts, total)
		}
	}
}
