package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	if got := New(5).Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	p := New(3)
	const n = 100
	counts := make([]int32, n)
	p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestConcurrencyBound(t *testing.T) {
	p := New(2)
	var cur, peak int32
	p.ForEach(20, func(int) {
		n := atomic.AddInt32(&cur, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 2 {
		t.Errorf("observed %d concurrent workers, bound is 2", peak)
	}
}

func TestNestedFanOutDoesNotDeadlock(t *testing.T) {
	// Orchestrators fan out leaves through the same pool; only leaves hold
	// slots, so a 1-worker pool must still finish.
	p := New(1)
	var total int32
	var outer sync.WaitGroup
	for i := 0; i < 4; i++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			p.ForEach(5, func(int) { atomic.AddInt32(&total, 1) })
		}()
	}
	outer.Wait()
	if total != 20 {
		t.Errorf("ran %d leaves, want 20", total)
	}
}

func TestShards(t *testing.T) {
	if got := Shards(0, 4); got != nil {
		t.Errorf("Shards(0,4) = %v, want nil", got)
	}
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {10, 10}, {3, 8}, {1, 1}, {500, 7}, {5, 0},
	} {
		shards := Shards(tc.n, tc.parts)
		want := tc.parts
		if want > tc.n {
			want = tc.n
		}
		if want < 1 {
			want = 1
		}
		if len(shards) != want {
			t.Errorf("Shards(%d,%d): %d shards, want %d", tc.n, tc.parts, len(shards), want)
		}
		next, total := 0, 0
		for _, s := range shards {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("Shards(%d,%d): bad range %+v after %d", tc.n, tc.parts, s, next)
			}
			total += s.Hi - s.Lo
			next = s.Hi
		}
		if total != tc.n {
			t.Errorf("Shards(%d,%d) covers %d items", tc.n, tc.parts, total)
		}
	}
}
