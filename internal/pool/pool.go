// Package pool provides the bounded worker pool shared by the repo's
// parallel sweeps.
//
// The security campaigns (internal/secbench) and the performance sweeps
// (internal/perf) both fan work out at two levels: coarse units
// (vulnerabilities, Figure 7 cells) and fine units (trial shards). A single
// Pool bounds the *leaf* concurrency of a whole sweep, so a 24-vulnerability
// campaign with trial sharding saturates exactly N cores instead of
// len(vulns) goroutines each running 1,000 serial trials — or, worse, an
// unbounded goroutine per cell.
//
// The pool is a semaphore, not a task queue: Run executes the function on
// the calling goroutine once a slot is free, and Go spawns a goroutine that
// does the same. Because slots are held only while a leaf function runs
// (orchestrating goroutines never hold a slot while waiting on children),
// nested fan-out cannot deadlock.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool bounds how many submitted functions execute concurrently.
//
// The zero value is not ready to use; call New.
type Pool struct {
	sem chan struct{}
}

// Workers normalises a requested parallelism: values <= 0 select
// runtime.GOMAXPROCS(0), mirroring the CLI convention that -parallel 0
// means "all cores".
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// New returns a pool executing at most Workers(parallelism) functions at a
// time.
func New(parallelism int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(parallelism))}
}

// Size returns the pool's worker bound.
func (p *Pool) Size() int { return cap(p.sem) }

// InFlight returns how many worker slots are currently occupied — an
// instantaneous utilization reading for monitoring (the daemon's /metrics
// endpoint reports InFlight over Size). It is inherently racy: by the time
// the caller acts on the value, workers may have started or finished.
func (p *Pool) InFlight() int { return len(p.sem) }

// Run executes fn on the calling goroutine once a worker slot is free, and
// releases the slot when fn returns. fn must not call Run or Go and wait for
// the result while holding the slot (leaf work only); orchestration code
// calls Run directly and fans out with Go.
func (p *Pool) Run(fn func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// RunCtx is Run with cancellation: it waits for a worker slot only as long
// as ctx is live. When the context is cancelled before a slot frees up, fn is
// NOT executed and the context's error is returned; once fn has started it
// always runs to completion (cancellation stops admission, never preempts).
// A nil return means fn ran.
func (p *Pool) RunCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}

// Go spawns a goroutine that executes fn under Run, tracked by wg.
func (p *Pool) Go(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(fn)
	}()
}

// GoCtx spawns a goroutine that executes fn under RunCtx, tracked by wg. If
// the context is cancelled before a slot frees up the function is silently
// skipped; callers that must distinguish "ran" from "skipped" should use
// ForEachCtx (which reports the cancellation) or record completion in fn.
func (p *Pool) GoCtx(ctx context.Context, wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.RunCtx(ctx, fn)
	}()
}

// ForEach runs fn(i) for i in [0, n) with the pool's concurrency bound and
// waits for all of them. Each invocation occupies one worker slot; the
// iteration order across workers is unspecified, so fn must write only to
// its own index's state.
func (p *Pool) ForEach(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		p.Go(&wg, func() { fn(i) })
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cancellation: it stops admitting new
// iterations once ctx is cancelled, waits for every iteration already
// started to drain, and returns the context's error. A nil return guarantees
// fn(i) ran for every i in [0, n); a non-nil return means at least the
// iterations not yet started were skipped, so partial per-index results must
// be discarded (or re-derived) by the caller.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		i := i
		p.GoCtx(ctx, &wg, func() { fn(i) })
	}
	wg.Wait()
	return ctx.Err()
}

// PanicError is a panic recovered from a worker function by Safely: the
// panic value plus the stack of the panicking goroutine, captured at recover
// time. It lets a campaign quarantine one crashing trial and keep running
// while preserving everything needed to debug the crash.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Safely runs fn, converting a panic into a returned *PanicError instead of
// unwinding the calling goroutine. Campaign runners wrap each trial in
// Safely so one crashing trial cannot take down the whole sweep.
func Safely(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Shard describes a half-open index range [Lo, Hi) of a sharded loop.
type Shard struct {
	Lo, Hi int
}

// Shards splits n items into at most parts contiguous, near-equal ranges,
// in order. It returns nil when n <= 0. The union of the returned ranges is
// exactly [0, n), so per-item work partitioned this way is identical to a
// serial loop — only the grouping changes.
func Shards(n, parts int) []Shard {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Shard, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		// Distribute the remainder one item at a time so sizes differ by at
		// most one.
		size := (n - lo) / (parts - i)
		out = append(out, Shard{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
