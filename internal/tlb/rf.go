package tlb

import "fmt"

// RF is the Random-Fill TLB of paper §4.2 (Figures 3 and 4).
//
// Each entry carries a Sec bit marking translations inside the victim's
// secure region [sbase, sbase+ssize). Hits behave exactly like the SA TLB.
// On a miss for translation D, the set's LRU candidate R is probed without
// filling ("no fill" probe, Figure 4 steps 1–3), and:
//
//   - Sec_R = 0 and Sec_D = 0: a normal miss — D is walked and filled,
//     evicting R.
//   - Sec_R = 1 and Sec_D = 0: D may not deterministically evict the secure
//     entry chosen by the replacement policy. Instead a random non-secure
//     page D' is filled: D' keeps D's upper address bits but its TLB
//     set-index bits are randomised within the window covered by the secure
//     region (footnote 6: S_n = log2(min(ssize, nsets)) bits starting at
//     sbase's low bits). D itself is returned to the CPU through the no-fill
//     buffer.
//   - Sec_D = 1: the requested secure translation is never installed.
//     Instead a random page D' drawn uniformly from the secure region is
//     walked and filled (evicting that set's LRU candidate R'), and D is
//     returned through the no-fill buffer. An attacker therefore observes
//     TLB state changes caused by the random D', never by the secret D.
//
// The random fill is performed synchronously within the miss (paper §4.2.3
// rejects asynchronous idle-cycle filling because TLB-intensive secure code
// would starve it). LazyFill enables the rejected asynchronous variant for
// the ablation study: random fills are then dropped whenever the previous
// miss was "recent" (within LazyFillWindow lookups), modelling starvation.
type RF struct {
	geom   geometry
	timing Timing
	walker Walker
	sets   [][]entry
	backing []entry // contiguous storage behind sets, cleared whole on FlushAll
	clock  uint64
	stats  Stats
	rng    *rng
	hook   *FaultHook

	victim    ASID
	hasVictim bool
	sbase     VPN
	ssize     uint64

	// LazyFill models the asynchronous random-fill alternative of §4.2.3
	// (ablation only; the paper's design keeps it false).
	LazyFill bool
	// LazyFillWindow is the number of lookups that must separate two misses
	// for a lazy random fill to find an idle cycle. Closer misses starve the
	// fill engine and the random fill is dropped.
	LazyFillWindow uint64
	lastMissAt     uint64
	hadMiss        bool
}

var _ SecureTLB = (*RF)(nil)

// NewRF returns an RF TLB seeded with the given PRNG seed.
func NewRF(entries, ways int, walker Walker, seed uint64) (*RF, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	t := &RF{geom: g, timing: DefaultTiming, walker: walker, rng: newRNG(seed), LazyFillWindow: 8}
	t.sets, t.backing = newSets(g)
	return t, nil
}

// SetTiming overrides the lookup latency parameters.
func (t *RF) SetTiming(tm Timing) { t.timing = tm }

// Reseed re-seeds the Random Fill Engine's PRNG.
func (t *RF) Reseed(seed uint64) { t.rng.Seed(seed) }

// Name implements TLB.
func (t *RF) Name() string { return "RF " + t.geom.geomName() }

// Entries implements TLB.
func (t *RF) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *RF) Ways() int { return t.geom.ways }

// Stats implements TLB.
func (t *RF) Stats() Stats { return t.stats }

// MissHitCounts implements CounterReader.
func (t *RF) MissHitCounts() (uint64, uint64) { return t.stats.Misses, t.stats.Hits }

// ResetStats implements TLB.
func (t *RF) ResetStats() { t.stats = Stats{} }

// SetVictim implements SecureTLB (the victim process ID register of §4.2.2).
func (t *RF) SetVictim(asid ASID) { t.victim, t.hasVictim = asid, true }

// ClearVictim removes the victim designation; with no victim no address is
// secure and the RF TLB degenerates to the SA TLB.
func (t *RF) ClearVictim() { t.hasVictim = false }

// Victim implements SecureTLB.
func (t *RF) Victim() ASID { return t.victim }

// HasVictim reports whether a victim process has been designated.
func (t *RF) HasVictim() bool { return t.hasVictim }

// SetSecureRegion implements SecureTLB (the sbase and ssize registers of
// §4.2.2, in units of pages).
func (t *RF) SetSecureRegion(sbase VPN, ssize uint64) { t.sbase, t.ssize = sbase, ssize }

// SecureRegion implements SecureTLB.
func (t *RF) SecureRegion() (VPN, uint64) { return t.sbase, t.ssize }

// secure reports whether (asid, vpn) lies in the victim's secure region.
func (t *RF) secure(asid ASID, vpn VPN) bool {
	return t.hasVictim && asid == t.victim && t.ssize > 0 &&
		vpn >= t.sbase && uint64(vpn-t.sbase) < t.ssize
}

func (t *RF) find(s int, asid ASID, vpn VPN) int {
	set := t.sets[s]
	for w := range set {
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			return w
		}
	}
	return -1
}

// randomSecureVPN draws D' uniformly from the secure region (Sec_D = 1
// case). With an empty region the draw fails with ErrEmptyDraw.
func (t *RF) randomSecureVPN() (VPN, error) {
	off, err := t.rng.Uintn(t.ssize)
	if err != nil {
		return 0, err
	}
	off = t.hook.draw(t.ssize, off)
	return t.sbase + VPN(off), nil
}

// randomAliasVPN draws D' for the Sec_R = 1, Sec_D = 0 case: the requested
// address with its set-index bits randomised within the secure region's
// set window (footnote 6). The window is empty — ErrEmptyDraw — only in a
// malformed configuration where a secure entry outlived a region reprogram
// to zero size.
func (t *RF) randomAliasVPN(vpn VPN) (VPN, error) {
	window := t.ssize
	if n := uint64(t.geom.sets); window > n {
		window = n
	}
	draw, err := t.rng.Uintn(window)
	if err != nil {
		return 0, err
	}
	draw = t.hook.draw(window, draw)
	base := t.geom.setMod(uint64(t.sbase))
	target := t.geom.setMod(base + draw)
	return vpn - VPN(t.geom.setMod(uint64(vpn))) + VPN(target), nil
}

// fill installs (asid, vpn → ppn, sec) into its set, evicting the LRU
// candidate if needed, and annotates res with the eviction.
func (t *RF) fill(asid ASID, vpn VPN, ppn PPN, sec bool, res *Result) {
	s := t.geom.setIndex(vpn)
	// If the translation is already present (D' may collide with a cached
	// entry), just refresh its LRU position.
	hit, victim := findOrVictim(t.sets[s], asid, vpn)
	if hit >= 0 {
		t.sets[s][hit].stamp = t.clock
		t.sets[s][hit].sec = sec
		return
	}
	if t.hook != nil && t.hook.OnFill != nil {
		t.fillWayHooked(s, victim, asid, vpn, ppn, sec, res)
	} else {
		t.fillWay(s, victim, asid, vpn, ppn, sec, res)
	}
}

// fillWay installs a translation known to be absent from set s into way w.
// The normal-miss path passes the probe's victim way directly: the set has
// not changed since the probe (a walk never touches the array), so the
// fill's own lookup and LRU scan would only recompute the same answer.
// Callers dispatch to fillWayHooked themselves when an OnFill fault hook is
// armed — the hook branch lives at the call sites because a call in this
// body would push it past the inlining budget, and this store is the
// innermost write of every simulated campaign.
func (t *RF) fillWay(s, w int, asid ASID, vpn VPN, ppn PPN, sec bool, res *Result) {
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, sec: sec, stamp: t.clock}
}

// fillWayHooked is the fill path with an OnFill fault hook armed.
func (t *RF) fillWayHooked(s, w int, asid ASID, vpn VPN, ppn PPN, sec bool, res *Result) {
	action := t.hook.fillAction(s, w)
	if action == FillDrop {
		// Lost array write: the caller still counts and reports the fill.
		return
	}
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, sec: sec, stamp: t.clock}
	if action == FillDuplicate {
		if w2 := (w + 1) % len(t.sets[s]); w2 != w {
			t.sets[s][w2] = *e
		}
	}
}

// lazyStarved reports whether the ablation-mode asynchronous fill engine
// would be starved of idle cycles for this miss.
func (t *RF) lazyStarved() bool {
	if !t.LazyFill {
		return false
	}
	starved := t.hadMiss && t.stats.Lookups-t.lastMissAt < t.LazyFillWindow
	t.lastMissAt, t.hadMiss = t.stats.Lookups, true
	return starved
}

// Translate implements TLB, following the access-handling flow of Figure 3.
func (t *RF) Translate(asid ASID, vpn VPN) (Result, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res, err
}

// TranslateCycles implements FastTranslator.
func (t *RF) TranslateCycles(asid ASID, vpn VPN) (uint64, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res.Cycles, err
}

func (t *RF) translate(asid ASID, vpn VPN, res *Result) error {
	t.hook.access()
	t.stats.Lookups++
	s := t.geom.setIndex(vpn)
	t.clock++
	hit, rWay := findOrVictim(t.sets[s], asid, vpn)
	if hit >= 0 {
		e := &t.sets[s][hit]
		if t.hook.touchAllowed(s, hit) {
			e.stamp = t.clock
		}
		t.stats.Hits++
		res.PPN, res.Hit, res.Cycles = e.ppn, true, t.timing.HitCycles
		return nil
	}
	t.stats.Misses++
	// "No fill" probe (Figure 4 steps 1–3): the fused scan already
	// identified the entry R the requested translation would evict; read
	// its Sec bit.
	secD := t.secure(asid, vpn)
	secR := t.sets[s][rWay].valid && t.sets[s][rWay].sec

	// Walk the requested translation D; its result always goes back to the
	// processor (directly or through the no-fill buffer).
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	res.PPN, res.Cycles = ppn, t.timing.HitCycles+walkCycles
	if err != nil {
		return err
	}

	if !secD && !secR {
		// Normal TLB miss. D was absent at the probe and nothing has been
		// installed since, so the probe's victim way is still current.
		res.Filled = true
		if t.hook != nil && t.hook.OnFill != nil {
			t.fillWayHooked(s, rWay, asid, vpn, ppn, false, res)
		} else {
			t.fillWay(s, rWay, asid, vpn, ppn, false, res)
		}
		t.stats.Fills++
		return nil
	}

	// A random fill is required (Figure 4 step 4). Under the ablation-only
	// lazy mode the fill may be starved and dropped; the request is still
	// served through the buffer.
	if t.lazyStarved() {
		t.stats.NoFills++
		t.stats.RandomFillSkips++
		return nil
	}

	var dPrime VPN
	var dPrimeSec bool
	var derr error
	if secD {
		dPrime, derr = t.randomSecureVPN()
		dPrimeSec = true
	} else {
		dPrime, derr = t.randomAliasVPN(vpn)
	}
	if derr != nil {
		// Misconfigured secure region: the access itself still completes
		// through the no-fill buffer, but the error is surfaced so the
		// caller's trial is flagged rather than silently mis-sampled.
		t.stats.NoFills++
		t.stats.RandomFillSkips++
		return derr
	}
	pp, wc, werr := t.walker.Walk(asid, dPrime)
	res.Cycles += wc
	if werr != nil {
		// Footnote 5 assumes the OS pre-generates page table entries for
		// every address the RFE can draw. If a mapping is nevertheless
		// missing, the random fill is skipped; the requested access still
		// completes through the buffer.
		t.stats.NoFills++
		t.stats.RandomFillSkips++
		return nil
	}
	res.RandomFilled, res.RandomVPN = true, dPrime
	t.fill(asid, dPrime, pp, dPrimeSec, res)
	t.stats.RandomFills++
	if dPrime == vpn {
		// D and D' may coincide "because of the randomization" (§4.2.1);
		// then the requested translation did end up in the array.
		res.Filled = true
		t.stats.Fills++
	} else {
		t.stats.NoFills++
	}
	return nil
}

// Probe implements TLB.
func (t *RF) Probe(asid ASID, vpn VPN) bool {
	return t.find(t.geom.setIndex(vpn), asid, vpn) >= 0
}

// RNG is an exported copy of a Random Fill Engine generator, used by the
// invariant checker to predict the RFE's next draw without perturbing the
// live stream.
type RNG struct {
	inner rng
}

// Uintn returns a uniform value in [0, n), advancing only this copy.
func (g *RNG) Uintn(n uint64) (uint64, error) { return g.inner.Uintn(n) }

// RNGClone returns a copy of the RFE's generator at its current state.
func (t *RF) RNGClone() RNG { return RNG{inner: *t.rng} }

// PredictRandomFill replays the Random Fill Engine's decision for an access
// to (asid, vpn) against the TLB's *current* (pre-access) state, drawing
// from g instead of the live generator. It returns the D' a fault-free RFE
// would install and whether a random fill would be attempted at all (hits
// and plain misses attempt none). Call it immediately before Translate with
// a generator from RNGClone; comparing the prediction against the access's
// Result exposes a biased or stuck RNG.
func (t *RF) PredictRandomFill(g *RNG, asid ASID, vpn VPN) (VPN, bool, error) {
	s := t.geom.setIndex(vpn)
	if t.find(s, asid, vpn) >= 0 {
		return 0, false, nil
	}
	secD := t.secure(asid, vpn)
	rWay := lruWay(t.sets[s])
	secR := t.sets[s][rWay].valid && t.sets[s][rWay].sec
	if !secD && !secR {
		return 0, false, nil
	}
	if secD {
		off, err := g.inner.Uintn(t.ssize)
		if err != nil {
			return 0, false, err
		}
		return t.sbase + VPN(off), true, nil
	}
	window := t.ssize
	if n := uint64(t.geom.sets); window > n {
		window = n
	}
	draw, err := g.inner.Uintn(window)
	if err != nil {
		return 0, false, err
	}
	base := t.geom.setMod(uint64(t.sbase))
	target := t.geom.setMod(base + draw)
	return vpn - VPN(t.geom.setMod(uint64(vpn))) + VPN(target), true, nil
}

// FlushAll implements TLB.
func (t *RF) FlushAll() {
	// The sets share one contiguous backing array (see the constructor),
	// so the whole TLB clears with a single memclr.
	clear(t.backing)
	t.stats.Flushes++
}

// FlushASID implements TLB.
func (t *RF) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = entry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB.
func (t *RF) FlushPage(asid ASID, vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	if w := t.find(s, asid, vpn); w >= 0 {
		t.sets[s][w] = entry{}
		return true
	}
	return false
}

// FlushPageAllASIDs implements TLB. Random filling does not intercept
// invalidations: a secure entry can be removed by an address-based flush
// like any other, which is why the Random-Fill design does not by itself
// defend the targeted-invalidation attacks of Appendix B.
func (t *RF) FlushPageAllASIDs(vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	any := false
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.vpn == vpn {
			*e = entry{}
			any = true
		}
	}
	return any
}
