package tlb

// This file is the design-capability surface consumed by the declarative
// security-assertion layer (internal/assert). Each method exposes one piece
// of a design's policy — the set mapping, the fill partition, the random-fill
// prediction — so assertions written once against these capabilities apply to
// any design that declares them, instead of the checker re-deriving (and
// possibly contradicting) the policy from the outside.

// SetIndex exposes the design's VPN-to-set mapping, including the
// power-of-two mask fast path of geometry.setIndex. External observers
// (the assertion monitor) must use this rather than computing their own
// modulo so checker and design can never disagree on set placement.
func (t *SetAssoc) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }

// SetIndex exposes the SP TLB's VPN-to-set mapping (see SetAssoc.SetIndex).
func (t *SP) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }

// SetIndex exposes the RF TLB's VPN-to-set mapping (see SetAssoc.SetIndex).
func (t *RF) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }

// FillRange exposes the SP TLB's partition policy: the way range [lo, hi)
// that fills (and therefore evictions) from asid must stay inside. This is
// the design's own partition function, so the assertion layer checks the
// policy the hardware actually enforces — with no victim designated, every
// process fills the attacker partition, exactly as Translate does.
func (t *SP) FillRange(asid ASID) (lo, hi int) { return t.partition(asid) }

// PredictNextRandomFill replays the Random Fill Engine's decision for an
// access to (asid, vpn) against the TLB's current state on a clone of the
// generator, leaving the live RNG stream untouched. It returns the D' a
// fault-free RFE would install next and whether a random fill would be
// attempted at all. Call it immediately before Translate; comparing the
// prediction against the access's Result exposes a biased or stuck RNG.
func (t *RF) PredictNextRandomFill(asid ASID, vpn VPN) (VPN, bool, error) {
	g := t.RNGClone()
	return t.PredictRandomFill(&g, asid, vpn)
}

// RandomFillMayStarve reports whether the ablation-only lazy fill engine is
// enabled, in which case a prescribed random fill may legitimately be
// starved and skipped. The assertion layer's suppressed-fill check stands
// down while this is true.
func (t *RF) RandomFillMayStarve() bool { return t.LazyFill }
