package tlb

// This file is the design-capability surface consumed by the declarative
// security-assertion layer (internal/assert). Each method exposes one piece
// of a design's policy — the set mapping, the fill partition, the random-fill
// prediction — so assertions written once against these capabilities apply to
// any design that declares them, instead of the checker re-deriving (and
// possibly contradicting) the policy from the outside.

// SetIndex exposes the design's VPN-to-set mapping, including the
// power-of-two mask fast path of geometry.setIndex. External observers
// (the assertion monitor) must use this rather than computing their own
// modulo so checker and design can never disagree on set placement.
func (t *SetAssoc) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }

// SetIndex exposes the SP TLB's VPN-to-set mapping (see SetAssoc.SetIndex).
func (t *SP) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }

// SetIndex exposes the RF TLB's VPN-to-set mapping (see SetAssoc.SetIndex).
func (t *RF) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }

// FillRange exposes the SP TLB's partition policy: the way range [lo, hi)
// that fills (and therefore evictions) from asid must stay inside. This is
// the design's own partition function, so the assertion layer checks the
// policy the hardware actually enforces — with no victim designated, every
// process fills the attacker partition, exactly as Translate does.
func (t *SP) FillRange(asid ASID) (lo, hi int) { return t.partition(asid) }

// PredictNextRandomFill replays the Random Fill Engine's decision for an
// access to (asid, vpn) against the TLB's current state on a clone of the
// generator, leaving the live RNG stream untouched. It returns the D' a
// fault-free RFE would install next and whether a random fill would be
// attempted at all. Call it immediately before Translate; comparing the
// prediction against the access's Result exposes a biased or stuck RNG.
func (t *RF) PredictNextRandomFill(asid ASID, vpn VPN) (VPN, bool, error) {
	g := t.RNGClone()
	return t.PredictRandomFill(&g, asid, vpn)
}

// RandomFillMayStarve reports whether the ablation-only lazy fill engine is
// enabled, in which case a prescribed random fill may legitimately be
// starved and skipped. The assertion layer's suppressed-fill check stands
// down while this is true.
func (t *RF) RandomFillMayStarve() bool { return t.LazyFill }

// KeyedSetIndex exposes the RI TLB's cipher-keyed (ASID, VPN)-to-set
// mapping. The RI TLB deliberately does not bind the plain SetIndex
// capability: its placement is not a function of the VPN alone, and an
// assertion that assumed so would contradict the design it checks. The
// key-aware checker must call this instead.
func (t *RandIdx) KeyedSetIndex(asid ASID, vpn VPN) int { return t.index(asid, vpn) }

// IndexKey exposes the current epoch key so the assertion layer can verify
// a re-key actually changed (or kept) the mapping.
func (t *RandIdx) IndexKey() uint64 { return t.key }

// RekeyEpoch exposes the re-key generation counter; it advances exactly
// when a re-key happens.
func (t *RandIdx) RekeyEpoch() uint64 { return t.epoch }

// PendingRekey reports whether the next lookup will re-key before its
// probe. It is side-effect-free; the assertion layer calls it immediately
// before Translate to predict the epoch transition.
func (t *RandIdx) PendingRekey() bool { return t.rekeyDue() }

// PredictNextKey replays the key stream's next draw on a clone of the
// generator, leaving the live stream untouched: the key a fault-free
// re-key would install. Comparing it against IndexKey after a re-key
// exposes a stuck key register.
func (t *RandIdx) PredictNextKey() uint64 {
	g := *t.rng
	return g.Uint64()
}

// PendingAutoFlush reports whether the next lookup for (asid, vpn) will
// begin with a design-initiated full flush — for the RI TLB, a due re-key.
func (t *RandIdx) PendingAutoFlush(asid ASID, vpn VPN) bool { return t.rekeyDue() }

// PendingAutoFlush reports whether the next lookup for (asid, vpn) will
// begin with a design-initiated full flush: a context switch the CSR path
// has not yet delivered, or a secure-region exit by the current context.
func (t *FlushOnSwitch) PendingAutoFlush(asid ASID, vpn VPN) bool {
	if t.hasCur && asid != t.cur {
		return true
	}
	return t.lastSecure && !t.secure(asid, vpn)
}

// PendingSwitchFlush reports whether an ObserveASID(next) call will flush
// the array. The assertion layer uses it to check flush completeness at
// the switch itself, where the SIMF semantics say the erasure must happen.
func (t *FlushOnSwitch) PendingSwitchFlush(next ASID) bool {
	return t.hasCur && next != t.cur
}

// SetIndex exposes the FS TLB's VPN-to-set mapping (see SetAssoc.SetIndex).
func (t *FlushOnSwitch) SetIndex(vpn VPN) int { return t.geom.setIndex(vpn) }
