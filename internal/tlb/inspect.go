package tlb

// This file is the introspection and fault-injection surface of the TLB
// designs: a read-only snapshot of the array (for the security-assertion
// monitor in internal/assert), a controlled mutation entry point (for the
// deterministic fault campaigns in internal/faultinject), and a per-design
// FaultHook intercepting the microarchitectural events a hardware fault
// would perturb — fills, LRU touches and Random Fill Engine draws.
//
// The hooks are designed to be free when unused: a design pays one nil
// pointer check per intercepted event, and nothing at all on designs that
// were never armed. Clones (CloneWith) deliberately do not inherit hooks —
// fault injection is per-machine state, armed by the campaign runner on each
// worker's machine for exactly one trial at a time.

// EntrySnapshot is an exported view of one TLB entry, as captured by
// SnapshotAppend and mutated through CorruptEntry.
type EntrySnapshot struct {
	Valid bool
	ASID  ASID
	VPN   VPN
	PPN   PPN
	// Sec is the RF TLB's Sec bit (always false on SA/SP designs).
	Sec bool
	// Stamp is the LRU timestamp; larger is more recent.
	Stamp uint64
}

// Inspectable is implemented by designs whose array state can be observed
// (runtime invariant checking) and perturbed (fault injection). The
// single-array designs — SetAssoc, SP and RF — implement it; compositions
// (TwoLevel, Coalesced) do not.
type Inspectable interface {
	// SnapshotAppend appends the current array contents to dst in set-major
	// order (set 0 ways 0..W-1, then set 1, ...) and returns the extended
	// slice. Invalid ways are included, so the result always holds exactly
	// Entries() elements beyond len(dst).
	SnapshotAppend(dst []EntrySnapshot) []EntrySnapshot
	// CorruptEntry applies f to a snapshot of the valid entry at (set, way)
	// and writes the mutated snapshot back, modelling an in-array bit error.
	// It reports whether an entry was corrupted; invalid ways and
	// out-of-range coordinates are left untouched.
	CorruptEntry(set, way int, f func(*EntrySnapshot)) bool
	// SetFaultHook installs h as the design's fault-injection hook, or
	// removes it when h is nil.
	SetFaultHook(h *FaultHook)
}

// FillAction is a FaultHook's verdict on a pending fill.
type FillAction int

const (
	// FillProceed installs the fill normally.
	FillProceed FillAction = iota
	// FillDrop loses the array write: the entry is not installed, but the
	// design still reports the fill as performed (a lost valid-bit write —
	// the control logic believes the fill happened).
	FillDrop
	// FillDuplicate installs the fill into the chosen way and a second way
	// of the same set (partition, for the SP TLB), modelling a decoder fault
	// that asserts two way-enables at once.
	FillDuplicate
)

// FaultHook intercepts microarchitectural events for deterministic fault
// injection. Every field is optional; a nil field leaves its event
// untouched. Hooks run synchronously inside Translate, so they must not call
// back into the TLB's mutating methods (CorruptEntry is safe).
type FaultHook struct {
	// OnAccess runs at the start of every Translate, before the lookup.
	OnAccess func()
	// OnFill is consulted with the chosen victim coordinates before a fill
	// (requested or random) is installed.
	OnFill func(set, way int) FillAction
	// OnLRUTouch is consulted when a hit would refresh the stamp of the
	// entry at (set, way); returning false leaves the stamp stuck.
	OnLRUTouch func(set, way int) bool
	// OnRNGDraw may bias a Random Fill Engine draw: it receives the window
	// size n and the fair draw in [0, n) and returns the value actually
	// used. Out-of-window returns are deliberately not clamped — a stuck
	// high bit in the RFE's random register produces exactly that.
	OnRNGDraw func(n, draw uint64) uint64
	// OnRekey may substitute the key an RI TLB re-key installs: it receives
	// the outgoing key and the key-stream draw and returns the key actually
	// loaded. Returning old models a stuck key register — the array flushes
	// but the mapping does not change.
	OnRekey func(old, next uint64) uint64
	// OnAutoFlush is consulted before a design-initiated full flush (the FS
	// TLB's switch/secure-exit flush); returning false drops the flush, a
	// lost invalidation strobe.
	OnAutoFlush func() bool
}

// fillAction consults h for the pending fill at (set, way); a nil hook (the
// common case) proceeds.
func (h *FaultHook) fillAction(set, way int) FillAction {
	if h == nil || h.OnFill == nil {
		return FillProceed
	}
	return h.OnFill(set, way)
}

// touchAllowed reports whether the stamp refresh of a hit at (set, way) goes
// through.
func (h *FaultHook) touchAllowed(set, way int) bool {
	if h == nil || h.OnLRUTouch == nil {
		return true
	}
	return h.OnLRUTouch(set, way)
}

// access fires the OnAccess event.
func (h *FaultHook) access() {
	if h != nil && h.OnAccess != nil {
		h.OnAccess()
	}
}

// draw applies the OnRNGDraw bias to a fair draw.
func (h *FaultHook) draw(n, v uint64) uint64 {
	if h == nil || h.OnRNGDraw == nil {
		return v
	}
	return h.OnRNGDraw(n, v)
}

// rekey applies the OnRekey substitution to a re-key's key-stream draw.
func (h *FaultHook) rekey(old, next uint64) uint64 {
	if h == nil || h.OnRekey == nil {
		return next
	}
	return h.OnRekey(old, next)
}

// autoFlushAllowed reports whether a design-initiated full flush goes
// through.
func (h *FaultHook) autoFlushAllowed() bool {
	if h == nil || h.OnAutoFlush == nil {
		return true
	}
	return h.OnAutoFlush()
}

// snapshotAppend converts a design's set array to EntrySnapshots, set-major.
func snapshotAppend(dst []EntrySnapshot, sets [][]entry) []EntrySnapshot {
	for s := range sets {
		for w := range sets[s] {
			e := &sets[s][w]
			dst = append(dst, EntrySnapshot{
				Valid: e.valid, ASID: e.asid, VPN: e.vpn, PPN: e.ppn,
				Sec: e.sec, Stamp: e.stamp,
			})
		}
	}
	return dst
}

// corruptEntry implements CorruptEntry over a design's set array.
func corruptEntry(sets [][]entry, set, way int, f func(*EntrySnapshot)) bool {
	if set < 0 || set >= len(sets) || way < 0 || way >= len(sets[set]) {
		return false
	}
	e := &sets[set][way]
	if !e.valid {
		return false
	}
	s := EntrySnapshot{Valid: e.valid, ASID: e.asid, VPN: e.vpn, PPN: e.ppn, Sec: e.sec, Stamp: e.stamp}
	f(&s)
	*e = entry{valid: s.Valid, asid: s.ASID, vpn: s.VPN, ppn: s.PPN, sec: s.Sec, stamp: s.Stamp}
	return true
}

// SnapshotAppend implements Inspectable.
func (t *SetAssoc) SnapshotAppend(dst []EntrySnapshot) []EntrySnapshot {
	return snapshotAppend(dst, t.sets)
}

// CorruptEntry implements Inspectable.
func (t *SetAssoc) CorruptEntry(set, way int, f func(*EntrySnapshot)) bool {
	return corruptEntry(t.sets, set, way, f)
}

// SetFaultHook implements Inspectable.
func (t *SetAssoc) SetFaultHook(h *FaultHook) { t.hook = h }

// SnapshotAppend implements Inspectable.
func (t *SP) SnapshotAppend(dst []EntrySnapshot) []EntrySnapshot {
	return snapshotAppend(dst, t.sets)
}

// CorruptEntry implements Inspectable.
func (t *SP) CorruptEntry(set, way int, f func(*EntrySnapshot)) bool {
	return corruptEntry(t.sets, set, way, f)
}

// SetFaultHook implements Inspectable.
func (t *SP) SetFaultHook(h *FaultHook) { t.hook = h }

// SnapshotAppend implements Inspectable.
func (t *RF) SnapshotAppend(dst []EntrySnapshot) []EntrySnapshot {
	return snapshotAppend(dst, t.sets)
}

// CorruptEntry implements Inspectable.
func (t *RF) CorruptEntry(set, way int, f func(*EntrySnapshot)) bool {
	return corruptEntry(t.sets, set, way, f)
}

// SetFaultHook implements Inspectable.
func (t *RF) SetFaultHook(h *FaultHook) { t.hook = h }

// SnapshotAppend implements Inspectable.
func (t *RandIdx) SnapshotAppend(dst []EntrySnapshot) []EntrySnapshot {
	return snapshotAppend(dst, t.sets)
}

// CorruptEntry implements Inspectable.
func (t *RandIdx) CorruptEntry(set, way int, f func(*EntrySnapshot)) bool {
	return corruptEntry(t.sets, set, way, f)
}

// SetFaultHook implements Inspectable.
func (t *RandIdx) SetFaultHook(h *FaultHook) { t.hook = h }

// SnapshotAppend implements Inspectable.
func (t *FlushOnSwitch) SnapshotAppend(dst []EntrySnapshot) []EntrySnapshot {
	return snapshotAppend(dst, t.sets)
}

// CorruptEntry implements Inspectable.
func (t *FlushOnSwitch) CorruptEntry(set, way int, f func(*EntrySnapshot)) bool {
	return corruptEntry(t.sets, set, way, f)
}

// SetFaultHook implements Inspectable.
func (t *FlushOnSwitch) SetFaultHook(h *FaultHook) { t.hook = h }

var (
	_ Inspectable = (*SetAssoc)(nil)
	_ Inspectable = (*SP)(nil)
	_ Inspectable = (*RF)(nil)
	_ Inspectable = (*RandIdx)(nil)
	_ Inspectable = (*FlushOnSwitch)(nil)
)
