package tlb

import "testing"

const (
	victimID   ASID = 1
	attackerID ASID = 0
)

func mustSP(t *testing.T, entries, ways, victimWays int) *SP {
	t.Helper()
	sp, err := NewSP(entries, ways, victimWays, identityWalker(60))
	if err != nil {
		t.Fatalf("NewSP: %v", err)
	}
	sp.SetVictim(victimID)
	return sp
}

func TestNewSPValidation(t *testing.T) {
	w := identityWalker(1)
	if _, err := NewSP(32, 4, 0, w); err == nil {
		t.Error("victimWays=0 must be rejected (attacker-only partition)")
	}
	if _, err := NewSP(32, 4, 4, w); err == nil {
		t.Error("victimWays=ways must be rejected (victim-only partition)")
	}
	if _, err := NewSP(32, 4, 2, nil); err == nil {
		t.Error("nil walker must be rejected")
	}
	if _, err := NewSP(33, 4, 2, w); err == nil {
		t.Error("non-divisible geometry must be rejected")
	}
	sp, err := NewSP(32, 4, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "SP 4W 32" {
		t.Errorf("Name = %q", sp.Name())
	}
	if sp.VictimWays() != 2 {
		t.Errorf("VictimWays = %d", sp.VictimWays())
	}
}

func TestSPHitsBehaveLikeSA(t *testing.T) {
	sp := mustSP(t, 32, 4, 2)
	r := translate(t, sp, victimID, 0x10)
	if r.Hit || !r.Filled {
		t.Errorf("first access: %+v", r)
	}
	r = translate(t, sp, victimID, 0x10)
	if !r.Hit || r.Cycles != 1 {
		t.Errorf("second access should be a 1-cycle hit: %+v", r)
	}
	// Cross-ASID accesses still miss, exactly like the SA TLB.
	if r := translate(t, sp, attackerID, 0x10); r.Hit {
		t.Error("attacker must not hit the victim's translation")
	}
}

func TestSPAttackerCannotEvictVictim(t *testing.T) {
	// The defining property of the SP TLB (paper §4.1.1): the attacker's
	// fills never displace the victim's entries. 8 entries, 4 ways, 2 victim
	// ways => 2 sets. Pages 0,2,4,... map to set 0.
	sp := mustSP(t, 8, 4, 2)
	translate(t, sp, victimID, 0) // victim partition of set 0
	translate(t, sp, victimID, 2) // victim partition full
	for i := 0; i < 64; i++ {
		translate(t, sp, attackerID, VPN(4+2*i)) // hammer set 0 as attacker
	}
	if !sp.Probe(victimID, 0) || !sp.Probe(victimID, 2) {
		t.Error("attacker thrashing must not evict victim entries")
	}
}

func TestSPVictimCannotEvictAttacker(t *testing.T) {
	sp := mustSP(t, 8, 4, 2)
	translate(t, sp, attackerID, 0)
	translate(t, sp, attackerID, 2)
	for i := 0; i < 64; i++ {
		translate(t, sp, victimID, VPN(4+2*i))
	}
	if !sp.Probe(attackerID, 0) || !sp.Probe(attackerID, 2) {
		t.Error("victim thrashing must not evict attacker entries")
	}
}

func TestSPPartitionLRUIsIndependent(t *testing.T) {
	sp := mustSP(t, 8, 4, 2)
	// Fill victim partition (2 ways of set 0) with pages 0, 2.
	translate(t, sp, victimID, 0)
	translate(t, sp, victimID, 2)
	// Attacker activity in the same set must not disturb victim LRU.
	translate(t, sp, attackerID, 4)
	translate(t, sp, attackerID, 6)
	// Touch victim page 0 so page 2 is the victim-partition LRU.
	translate(t, sp, victimID, 0)
	r := translate(t, sp, victimID, 8)
	if !r.Evicted || r.EvictedVPN != 2 || r.EvictedASID != victimID {
		t.Errorf("victim fill should evict victim VPN 2, got %+v", r)
	}
}

func TestSPSharedAttackerPartition(t *testing.T) {
	// All non-victim processes share the attacker partition.
	sp := mustSP(t, 8, 4, 2)
	translate(t, sp, 5, 0)
	translate(t, sp, 6, 2)
	r := translate(t, sp, 7, 4) // third fill into a 2-way partition evicts
	if !r.Evicted {
		t.Error("third non-victim fill into set 0 should evict")
	}
	if r.EvictedASID == victimID {
		t.Error("eviction must stay within the attacker partition")
	}
}

func TestSPNoVictimConfigured(t *testing.T) {
	// With no victim designated (the paper's security-disabled runs), every
	// process uses the attacker partition: effective capacity is halved,
	// which is the root cause of the ~3x MPKI of Figure 7e.
	sp, err := NewSP(8, 4, 2, identityWalker(60))
	if err != nil {
		t.Fatal(err)
	}
	translate(t, sp, 1, 0)
	translate(t, sp, 1, 2)
	r := translate(t, sp, 1, 4)
	if !r.Evicted {
		t.Error("with no victim, 2 ways per set are usable; third fill must evict")
	}
	sp.SetVictim(1)
	if sp.Victim() != 1 {
		t.Error("Victim() should report the configured ASID")
	}
	r = translate(t, sp, 1, 6)
	if r.Evicted {
		t.Error("after SetVictim the victim partition is empty; fill must not evict")
	}
	sp.ClearVictim()
	r = translate(t, sp, 1, 8)
	if !r.Evicted {
		t.Error("ClearVictim must send fills back to the attacker partition")
	}
}

func TestSPSecureRegionRecorded(t *testing.T) {
	sp := mustSP(t, 32, 4, 2)
	sp.SetSecureRegion(0x100, 3)
	b, s := sp.SecureRegion()
	if b != 0x100 || s != 3 {
		t.Errorf("SecureRegion = (%#x,%d)", b, s)
	}
}

func TestSPFlushes(t *testing.T) {
	sp := mustSP(t, 32, 4, 2)
	translate(t, sp, victimID, 1)
	translate(t, sp, attackerID, 2)
	sp.FlushASID(victimID)
	if sp.Probe(victimID, 1) || !sp.Probe(attackerID, 2) {
		t.Error("FlushASID should only remove the victim's entries")
	}
	translate(t, sp, victimID, 1)
	sp.FlushAll()
	if sp.Probe(victimID, 1) || sp.Probe(attackerID, 2) {
		t.Error("FlushAll should remove everything")
	}
	translate(t, sp, victimID, 3)
	if !sp.FlushPage(victimID, 3) || sp.FlushPage(victimID, 3) {
		t.Error("FlushPage semantics wrong")
	}
}

func TestSPEffectiveCapacityHalved(t *testing.T) {
	// Quantitative check behind Figure 7e: a working set that fits the SA
	// TLB but not half of it shows a dramatically higher miss rate under SP.
	const entries, ways = 32, 4
	workingSet := 24 // pages; fits in 32, not in 16
	run := func(tl TLB) float64 {
		for pass := 0; pass < 50; pass++ {
			for p := 0; p < workingSet; p++ {
				if _, err := tl.Translate(2, VPN(p)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return tl.Stats().MissRate()
	}
	sa := mustSA(t, entries, ways)
	sp := mustSP(t, entries, ways, ways/2) // victim=1, workload runs as ASID 2
	saRate, spRate := run(sa), run(sp)
	if spRate < 2*saRate {
		t.Errorf("SP miss rate %.3f should be much higher than SA %.3f", spRate, saRate)
	}
}
