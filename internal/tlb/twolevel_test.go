package tlb

import "testing"

func mustTwoLevel(t *testing.T) *TwoLevel {
	t.Helper()
	l2, err := NewSetAssoc(128, 4, identityWalker(60))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTwoLevel(func(w Walker) (TLB, error) {
		return NewSetAssoc(32, 4, w)
	}, l2)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestTwoLevelTimingHierarchy(t *testing.T) {
	tl := mustTwoLevel(t)
	// Cold: L1 miss + L2 miss + walk.
	r := translate(t, tl, 1, 0x42)
	if r.Hit {
		t.Fatal("cold access cannot hit")
	}
	cold := r.Cycles // 1 (L1) + 1 (L2) + 60 (walk)
	if cold != 62 {
		t.Errorf("cold latency = %d, want 62", cold)
	}
	// Warm L1.
	r = translate(t, tl, 1, 0x42)
	if !r.Hit || r.Cycles != 1 {
		t.Errorf("L1 hit = %+v", r)
	}
	// Evict from L1 only: 8 more pages in L1 set (32/4 → 8 sets; stride 8).
	for i := 1; i <= 8; i++ {
		translate(t, tl, 1, VPN(0x42+8*i))
	}
	inL1, inL2 := tl.ProbeLevel(1, 0x42)
	if inL1 || !inL2 {
		t.Fatalf("expected L1-evicted, L2-resident; got (%v,%v)", inL1, inL2)
	}
	r = translate(t, tl, 1, 0x42)
	if r.Hit {
		t.Error("L1 was evicted; the L1 lookup must miss")
	}
	if r.Cycles != 2 { // L1 array + L2 hit
		t.Errorf("L2 hit latency = %d, want 2", r.Cycles)
	}
	// Three distinguishable latencies: the L2-granular timing channel.
	if !(1 < r.Cycles && r.Cycles < cold) {
		t.Error("L1 hit < L2 hit < walk ordering broken")
	}
}

func TestTwoLevelFlushes(t *testing.T) {
	tl := mustTwoLevel(t)
	translate(t, tl, 1, 0x10)
	translate(t, tl, 2, 0x10)
	tl.FlushASID(1)
	if in1, in2 := tl.ProbeLevel(1, 0x10); in1 || in2 {
		t.Error("FlushASID must clear both levels")
	}
	if !tl.Probe(2, 0x10) {
		t.Error("other ASID should survive")
	}
	tl.FlushAll()
	if tl.Probe(2, 0x10) {
		t.Error("FlushAll must clear the hierarchy")
	}
	translate(t, tl, 1, 0x20)
	if !tl.FlushPage(1, 0x20) || tl.Probe(1, 0x20) {
		t.Error("FlushPage must clear both levels")
	}
	translate(t, tl, 1, 0x30)
	translate(t, tl, 2, 0x30)
	if !tl.FlushPageAllASIDs(0x30) || tl.Probe(1, 0x30) || tl.Probe(2, 0x30) {
		t.Error("FlushPageAllASIDs must clear both levels")
	}
}

func TestTwoLevelStats(t *testing.T) {
	tl := mustTwoLevel(t)
	translate(t, tl, 1, 1)
	translate(t, tl, 1, 1)
	st := tl.Stats() // L1 view
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("L1 stats = %+v", st)
	}
	if l2 := tl.L2().Stats(); l2.Lookups != 1 || l2.Misses != 1 {
		t.Errorf("L2 stats = %+v", l2)
	}
	tl.ResetStats()
	if tl.Stats().Lookups != 0 || tl.L2().Stats().Lookups != 0 {
		t.Error("ResetStats must clear both levels")
	}
	if tl.Entries() != 32 || tl.Ways() != 4 {
		t.Error("geometry should reflect L1")
	}
	if tl.Name() != "SA 4W 32 / SA 4W 128" {
		t.Errorf("Name = %q", tl.Name())
	}
}

func TestTwoLevelConstruction(t *testing.T) {
	if _, err := NewTwoLevel(func(w Walker) (TLB, error) {
		return NewSetAssoc(32, 4, w)
	}, nil); err == nil {
		t.Error("nil L2 must be rejected")
	}
	l2, _ := NewSetAssoc(128, 4, identityWalker(60))
	if _, err := NewTwoLevel(func(w Walker) (TLB, error) {
		return nil, nil
	}, l2); err == nil {
		t.Error("nil L1 must be rejected")
	}
	if _, err := NewTwoLevel(func(w Walker) (TLB, error) {
		return NewSetAssoc(31, 4, w) // invalid geometry
	}, l2); err == nil {
		t.Error("L1 construction errors must propagate")
	}
}

func TestSecureL1OverStandardL2LeaksAtL2(t *testing.T) {
	// Why the paper's "can be applied to other levels" remark matters:
	// putting the RF design only at L1 leaves a standard set-associative
	// structure at L2, observable through the L2-hit vs page-walk latency
	// difference. The victim's secure page still lands in the L2 (the L1's
	// random fill path walks through it), so an attacker with enough pages
	// can Prime+Probe the L2 sets.
	l2, _ := NewSetAssoc(128, 4, identityWalker(60))
	hier, err := NewTwoLevel(func(w Walker) (TLB, error) {
		rf, err := NewRF(32, 8, w, 3)
		if err != nil {
			return nil, err
		}
		rf.SetVictim(victimID)
		rf.SetSecureRegion(0x100, 3)
		return rf, nil
	}, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Victim touches a secure page: the RF L1 hides WHICH page entered the
	// L1, but the requested page's walk went through the L2 and filled it.
	translate(t, hier, victimID, 0x101)
	if !l2.Probe(victimID, 0x101) {
		t.Fatal("the requested secure translation reaches a standard L2")
	}
	// An L2-granular observer therefore sees the true secret page — the
	// exact leak the RF design prevents at L1.
}
