package tlb

import (
	"errors"
	"fmt"
	"testing"
)

// identityWalker maps every page to itself with a fixed walk cost, the
// simplest translation substrate for unit tests.
func identityWalker(cost uint64) Walker {
	return WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		return PPN(vpn), cost, nil
	})
}

// countingWalker records how many walks happened.
type countingWalker struct {
	walks int
	cost  uint64
}

func (w *countingWalker) Walk(asid ASID, vpn VPN) (PPN, uint64, error) {
	w.walks++
	return PPN(vpn), w.cost, nil
}

func mustSA(t *testing.T, entries, ways int) *SetAssoc {
	t.Helper()
	sa, err := NewSetAssoc(entries, ways, identityWalker(60))
	if err != nil {
		t.Fatalf("NewSetAssoc(%d,%d): %v", entries, ways, err)
	}
	return sa
}

func translate(t *testing.T, tl TLB, asid ASID, vpn VPN) Result {
	t.Helper()
	r, err := tl.Translate(asid, vpn)
	if err != nil {
		t.Fatalf("Translate(%d, %#x): %v", asid, vpn, err)
	}
	return r
}

func TestNewSetAssocGeometryValidation(t *testing.T) {
	walker := identityWalker(1)
	cases := []struct {
		entries, ways int
		ok            bool
	}{
		{32, 4, true},
		{32, 8, true},
		{32, 32, true},
		{1, 1, true},
		{0, 1, false},
		{-4, 2, false},
		{32, 0, false},
		{32, -1, false},
		{32, 5, false},  // not a divisor
		{32, 64, false}, // ways > entries
	}
	for _, c := range cases {
		_, err := NewSetAssoc(c.entries, c.ways, walker)
		if (err == nil) != c.ok {
			t.Errorf("NewSetAssoc(%d,%d): err=%v, want ok=%v", c.entries, c.ways, err, c.ok)
		}
	}
	if _, err := NewSetAssoc(32, 4, nil); err == nil {
		t.Error("NewSetAssoc with nil walker: want error")
	}
}

func TestSetAssocMissThenHit(t *testing.T) {
	sa := mustSA(t, 32, 4)
	r := translate(t, sa, 1, 0x100)
	if r.Hit {
		t.Error("first access should miss")
	}
	if !r.Filled {
		t.Error("miss should fill")
	}
	if r.Cycles != 1+60 {
		t.Errorf("miss cycles = %d, want 61", r.Cycles)
	}
	if r.PPN != 0x100 {
		t.Errorf("PPN = %#x, want 0x100", r.PPN)
	}
	r = translate(t, sa, 1, 0x100)
	if !r.Hit {
		t.Error("second access should hit")
	}
	if r.Cycles != 1 {
		t.Errorf("hit cycles = %d, want 1", r.Cycles)
	}
	st := sa.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetAssocASIDTagging(t *testing.T) {
	// A hit requires both page number and process ID to match — the property
	// that lets the SA TLB defend all cross-process hit attacks (paper §5.3.1).
	sa := mustSA(t, 32, 4)
	translate(t, sa, 1, 0x42)
	r := translate(t, sa, 2, 0x42)
	if r.Hit {
		t.Error("same VPN under different ASID must miss")
	}
	if !sa.Probe(1, 0x42) || !sa.Probe(2, 0x42) {
		t.Error("both ASIDs' translations should now be present")
	}
	if sa.Probe(3, 0x42) {
		t.Error("unrelated ASID must not probe-hit")
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// 8 entries, 2 ways => 4 sets. Pages {0,4,8} all map to set 0.
	sa := mustSA(t, 8, 2)
	translate(t, sa, 1, 0) // fills way A
	translate(t, sa, 1, 4) // fills way B
	translate(t, sa, 1, 0) // touch 0 so 4 becomes LRU
	r := translate(t, sa, 1, 8)
	if !r.Evicted || r.EvictedVPN != 4 {
		t.Errorf("expected eviction of VPN 4, got %+v", r)
	}
	if !sa.Probe(1, 0) || sa.Probe(1, 4) || !sa.Probe(1, 8) {
		t.Error("LRU order violated: 0 and 8 should remain, 4 evicted")
	}
}

func TestSetAssocInvalidWaysFillFirst(t *testing.T) {
	sa := mustSA(t, 8, 2)
	r := translate(t, sa, 1, 0)
	if r.Evicted {
		t.Error("filling an empty set must not evict")
	}
	r = translate(t, sa, 1, 4)
	if r.Evicted {
		t.Error("second fill into a 2-way set must use the invalid way")
	}
}

func TestSetAssocSetIndexing(t *testing.T) {
	// 32 entries, 4 ways => 8 sets; pages differing in vpn%8 never conflict.
	sa := mustSA(t, 32, 4)
	for vpn := VPN(0); vpn < 8; vpn++ {
		translate(t, sa, 1, vpn)
	}
	for vpn := VPN(0); vpn < 8; vpn++ {
		if !sa.Probe(1, vpn) {
			t.Errorf("VPN %d should still be cached (distinct sets)", vpn)
		}
	}
}

func TestFullyAssocNoConflictUnderCapacity(t *testing.T) {
	fa, err := NewFullyAssoc(32, identityWalker(60))
	if err != nil {
		t.Fatal(err)
	}
	// Any 32 pages fit simultaneously, regardless of their indices: the FA
	// TLB has a single set, which is why miss-based (set-conflict) attacks
	// do not apply to it (paper §2.3, fifth approach).
	for i := 0; i < 32; i++ {
		translate(t, fa, 1, VPN(i*8)) // all would collide in an 8-set SA TLB
	}
	for i := 0; i < 32; i++ {
		if !fa.Probe(1, VPN(i*8)) {
			t.Errorf("FA TLB should hold all %d pages; missing %d", 32, i*8)
		}
	}
	if fa.Name() != "SA FA 32" {
		t.Errorf("Name = %q", fa.Name())
	}
}

func TestSingleEntry(t *testing.T) {
	one, err := NewSingleEntry(identityWalker(60))
	if err != nil {
		t.Fatal(err)
	}
	translate(t, one, 1, 7)
	if !one.Probe(1, 7) {
		t.Error("entry should be cached")
	}
	translate(t, one, 1, 9)
	if one.Probe(1, 7) {
		t.Error("1E TLB must evict on every distinct page")
	}
	if got := one.Name(); got != "SA 1E" {
		t.Errorf("Name = %q", got)
	}
}

func TestFlushAll(t *testing.T) {
	sa := mustSA(t, 32, 4)
	for i := 0; i < 16; i++ {
		translate(t, sa, 1, VPN(i))
	}
	sa.FlushAll()
	if sa.validCount() != 0 {
		t.Errorf("valid entries after FlushAll = %d", sa.validCount())
	}
	r := translate(t, sa, 1, 3)
	if r.Hit {
		t.Error("post-flush access must miss")
	}
}

func TestFlushASID(t *testing.T) {
	sa := mustSA(t, 32, 4)
	translate(t, sa, 1, 0x10)
	translate(t, sa, 2, 0x20)
	sa.FlushASID(1)
	if sa.Probe(1, 0x10) {
		t.Error("ASID 1 entry should be flushed")
	}
	if !sa.Probe(2, 0x20) {
		t.Error("ASID 2 entry should survive")
	}
}

func TestFlushPage(t *testing.T) {
	sa := mustSA(t, 32, 4)
	translate(t, sa, 1, 0x10)
	translate(t, sa, 1, 0x11)
	if !sa.FlushPage(1, 0x10) {
		t.Error("FlushPage of a present page should report true")
	}
	if sa.FlushPage(1, 0x10) {
		t.Error("FlushPage of an absent page should report false")
	}
	if sa.Probe(1, 0x10) || !sa.Probe(1, 0x11) {
		t.Error("only the targeted page should be invalidated")
	}
}

func TestWalkerErrorPropagates(t *testing.T) {
	boom := errors.New("page fault")
	bad := WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		return 0, 9, boom
	})
	sa, err := NewSetAssoc(8, 2, bad)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sa.Translate(1, 5)
	if !errors.Is(err, boom) {
		t.Errorf("Translate error = %v, want %v", err, boom)
	}
	if sa.validCount() != 0 {
		t.Error("a faulting walk must not install a translation")
	}
}

func TestWalkerOnlyCalledOnMiss(t *testing.T) {
	cw := &countingWalker{cost: 10}
	sa, err := NewSetAssoc(32, 4, cw)
	if err != nil {
		t.Fatal(err)
	}
	translate(t, sa, 1, 1)
	translate(t, sa, 1, 1)
	translate(t, sa, 1, 1)
	if cw.walks != 1 {
		t.Errorf("walks = %d, want 1 (hits must not walk)", cw.walks)
	}
}

func TestResetStats(t *testing.T) {
	sa := mustSA(t, 32, 4)
	translate(t, sa, 1, 1)
	sa.ResetStats()
	if sa.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", sa.Stats())
	}
	if !sa.Probe(1, 1) {
		t.Error("ResetStats must not flush the array")
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("empty stats MissRate should be 0")
	}
	s := Stats{Lookups: 4, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}

func TestGeometryNames(t *testing.T) {
	cases := []struct {
		entries, ways int
		want          string
	}{
		{32, 4, "SA 4W 32"},
		{32, 2, "SA 2W 32"},
		{128, 4, "SA 4W 128"},
		{32, 32, "SA FA 32"},
		{1, 1, "SA 1E"},
	}
	for _, c := range cases {
		sa := mustSA(t, c.entries, c.ways)
		if sa.Name() != c.want {
			t.Errorf("Name(%d,%d) = %q, want %q", c.entries, c.ways, sa.Name(), c.want)
		}
		if sa.Entries() != c.entries || sa.Ways() != c.ways {
			t.Errorf("geometry accessors wrong for %s", c.want)
		}
	}
}

func TestEvictionStats(t *testing.T) {
	sa := mustSA(t, 8, 2)
	for i := 0; i < 6; i++ {
		translate(t, sa, 1, VPN(i*4)) // all in set 0
	}
	st := sa.Stats()
	if st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4 (6 fills into a 2-way set)", st.Evictions)
	}
}

func ExampleSetAssoc() {
	walker := WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		return PPN(vpn) + 0x80000, 60, nil
	})
	sa, _ := NewSetAssoc(32, 4, walker)
	r, _ := sa.Translate(1, 0x42)
	fmt.Printf("hit=%v ppn=%#x cycles=%d\n", r.Hit, r.PPN, r.Cycles)
	r, _ = sa.Translate(1, 0x42)
	fmt.Printf("hit=%v ppn=%#x cycles=%d\n", r.Hit, r.PPN, r.Cycles)
	// Output:
	// hit=false ppn=0x80042 cycles=61
	// hit=true ppn=0x80042 cycles=1
}

func TestFlushPageAllASIDs(t *testing.T) {
	sa := mustSA(t, 32, 4)
	translate(t, sa, 1, 0x10)
	translate(t, sa, 2, 0x10)
	translate(t, sa, 1, 0x11)
	if !sa.FlushPageAllASIDs(0x10) {
		t.Error("should report entries removed")
	}
	if sa.Probe(1, 0x10) || sa.Probe(2, 0x10) {
		t.Error("both ASIDs' entries for the page must be gone")
	}
	if !sa.Probe(1, 0x11) {
		t.Error("other pages must survive")
	}
	if sa.FlushPageAllASIDs(0x10) {
		t.Error("second flush should report nothing removed")
	}
}

func TestFlushPageAllASIDsCrossesSPPartitions(t *testing.T) {
	sp := mustSP(t, 32, 4, 2)
	translate(t, sp, victimID, 0x20)
	translate(t, sp, attackerID, 0x20)
	if !sp.FlushPageAllASIDs(0x20) {
		t.Error("should remove entries")
	}
	if sp.Probe(victimID, 0x20) || sp.Probe(attackerID, 0x20) {
		t.Error("address-based invalidation crosses the partition boundary")
	}
}

func TestFlushPageAllASIDsRF(t *testing.T) {
	rf, err := NewRF(32, 8, identityWalker(60), 1)
	if err != nil {
		t.Fatal(err)
	}
	rf.SetVictim(victimID)
	rf.SetSecureRegion(0x100, 3)
	translate(t, rf, victimID, 0x100) // random fill installs some secure page
	var page VPN
	for p := VPN(0x100); p < 0x103; p++ {
		if rf.Probe(victimID, p) {
			page = p
		}
	}
	if !rf.FlushPageAllASIDs(page) {
		t.Error("random filling must not protect entries from invalidation")
	}
	if rf.Probe(victimID, page) {
		t.Error("secure entry should be removed by address-based flush")
	}
}
