package tlb

// This file implements the small PRINCE-style block cipher the
// RandomizedIndex TLB uses to key its set mapping (TLBcoat, "a randomized
// TLB architecture"). The cipher is the classic 64-bit PRINCE round
// structure — s-layer, involutive M' diffusion layer, round-constant and key
// additions — truncated to three rounds: set indexing sits on the lookup
// critical path, and three rounds already decorrelate the page-index bits an
// attacker controls from the set the translation lands in, which is all the
// randomization is asked to do.
//
// The cipher is a permutation of 64-bit blocks for every key: princeDecrypt
// inverts princeEncrypt exactly (FuzzRandIdxCipher proves it). Only the
// forward direction is used by the TLB itself; the inverse exists so the
// permutation property is testable rather than assumed.

// princeSbox is the PRINCE 4-bit s-box; princeSboxInv is its inverse.
var princeSbox = [16]uint8{
	0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4,
}

var princeSboxInv = [16]uint8{
	0xB, 0x7, 0x3, 0x2, 0xF, 0xD, 0x8, 0x9, 0xA, 0x6, 0x4, 0x0, 0x5, 0xE, 0xC, 0x1,
}

// princeM0 and princeM1 are the two 16×16 GF(2) matrices the PRINCE M'
// layer is built from. Each is an involution, which makes the whole M'
// layer self-inverse.
var princeM0 = [16]uint32{
	0x0111, 0x2220, 0x4404, 0x8088,
	0x1011, 0x0222, 0x4440, 0x8808,
	0x1101, 0x2022, 0x0444, 0x8880,
	0x1110, 0x2202, 0x4044, 0x0888,
}

var princeM1 = [16]uint32{
	0x1110, 0x2202, 0x4044, 0x0888,
	0x0111, 0x2220, 0x4404, 0x8088,
	0x1011, 0x0222, 0x4440, 0x8808,
	0x1101, 0x2022, 0x0444, 0x8880,
}

// Round constants RC1 and RC2 of PRINCE (digits of π).
const (
	princeRC1 = 0x13198a2e03707344
	princeRC2 = 0xa4093822299f31d0
)

// princeMul16 multiplies a 16-bit chunk by a GF(2) matrix.
func princeMul16(in uint64, mat *[16]uint32) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		if in>>i&1 != 0 {
			out ^= uint64(mat[i])
		}
	}
	return out
}

// princeMPrime applies the involutive M' diffusion layer.
func princeMPrime(x uint64) uint64 {
	return princeMul16(x&0xffff, &princeM0) |
		princeMul16(x>>16&0xffff, &princeM1)<<16 |
		princeMul16(x>>32&0xffff, &princeM1)<<32 |
		princeMul16(x>>48&0xffff, &princeM0)<<48
}

// princeSLayer substitutes every nibble through the s-box.
func princeSLayer(x uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i += 4 {
		out |= uint64(princeSbox[x>>i&0xF]) << i
	}
	return out
}

// princeSLayerInv substitutes every nibble through the inverse s-box.
func princeSLayerInv(x uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i += 4 {
		out |= uint64(princeSboxInv[x>>i&0xF]) << i
	}
	return out
}

// princeEncrypt runs the three-round forward permutation under key.
func princeEncrypt(x, key uint64) uint64 {
	x = princeSLayer(princeMPrime(x ^ key ^ princeRC1))
	x = princeSLayer(princeMPrime(x ^ key ^ princeRC2))
	return princeMPrime(princeSLayer(x ^ key))
}

// princeDecrypt inverts princeEncrypt: the rounds run backwards, M' is its
// own inverse, and the s-layer uses the inverse s-box.
func princeDecrypt(x, key uint64) uint64 {
	x = princeSLayerInv(princeMPrime(x)) ^ key
	x = princeMPrime(princeSLayerInv(x)) ^ key ^ princeRC2
	return princeMPrime(princeSLayerInv(x)) ^ key ^ princeRC1
}
