package tlb

import (
	"errors"
	"testing"
)

// Paper §5.3 security-evaluation geometry: 32 entries, 8 ways, 4 sets.
func mustRF(t *testing.T, entries, ways int, seed uint64) *RF {
	t.Helper()
	rf, err := NewRF(entries, ways, identityWalker(60), seed)
	if err != nil {
		t.Fatalf("NewRF: %v", err)
	}
	return rf
}

func secureRF(t *testing.T, seed uint64) *RF {
	t.Helper()
	rf := mustRF(t, 32, 8, seed)
	rf.SetVictim(victimID)
	rf.SetSecureRegion(0x100, 3)
	return rf
}

func TestRFBehavesLikeSAWithoutSecureRegion(t *testing.T) {
	rf := mustRF(t, 32, 4, 1)
	sa := mustSA(t, 32, 4)
	// Same access stream, same hit/miss outcomes and same contents.
	stream := []struct {
		asid ASID
		vpn  VPN
	}{{1, 0}, {1, 8}, {1, 16}, {2, 0}, {1, 0}, {1, 24}, {1, 32}, {1, 8}}
	for _, a := range stream {
		r1 := translate(t, rf, a.asid, a.vpn)
		r2 := translate(t, sa, a.asid, a.vpn)
		if r1.Hit != r2.Hit || r1.Filled != r2.Filled || r1.Evicted != r2.Evicted {
			t.Errorf("divergence on (%d,%#x): rf=%+v sa=%+v", a.asid, a.vpn, r1, r2)
		}
		if r1.RandomFilled {
			t.Errorf("no secure region configured, yet random fill on (%d,%#x)", a.asid, a.vpn)
		}
	}
}

func TestRFSecureMissNeverFillsRequestedUnlessDrawn(t *testing.T) {
	// Sec_D = 1: the requested secure translation must not be installed
	// unless the RFE happens to draw exactly it (D == D').
	for seed := uint64(0); seed < 50; seed++ {
		rf := secureRF(t, seed)
		r := translate(t, rf, victimID, 0x101)
		if r.Hit {
			t.Fatal("first secure access cannot hit")
		}
		if !r.RandomFilled {
			t.Fatal("secure miss must trigger a random fill")
		}
		if r.RandomVPN < 0x100 || r.RandomVPN >= 0x103 {
			t.Fatalf("random fill %#x outside secure region", r.RandomVPN)
		}
		if r.Filled != (r.RandomVPN == 0x101) {
			t.Fatalf("Filled=%v inconsistent with RandomVPN=%#x", r.Filled, r.RandomVPN)
		}
		if rf.Probe(victimID, 0x101) != (r.RandomVPN == 0x101) {
			t.Fatal("requested secure page presence must equal the random draw")
		}
		if !rf.Probe(victimID, r.RandomVPN) {
			t.Fatal("randomly filled page must be present")
		}
	}
}

func TestRFRandomFillIsUniformOverSecureRegion(t *testing.T) {
	// Over many independent trials the RFE must draw every secure page with
	// roughly equal probability — the uniformity the channel-capacity
	// analysis of §5.3.1 relies on (p = 1/sec_range).
	const trials = 3000
	counts := map[VPN]int{}
	for seed := uint64(0); seed < trials; seed++ {
		rf := secureRF(t, seed)
		r := translate(t, rf, victimID, 0x102)
		counts[r.RandomVPN]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected draws over 3 secure pages, got %v", counts)
	}
	for vpn, n := range counts {
		frac := float64(n) / trials
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("page %#x drawn with frequency %.3f, want ~1/3", vpn, frac)
		}
	}
}

func TestRFSecureEntryResistsDeterministicEviction(t *testing.T) {
	// Sec_R = 1, Sec_D = 0: a non-secure miss whose LRU victim is secure
	// does not evict it deterministically. Instead a random page D' is
	// filled whose set is drawn from the secure region's window, so the
	// secure entry is displaced only when the draw happens to land on its
	// set and it is that set's LRU — probability 1/nsets here, never 1.
	const trials = 200
	evictions := 0
	for seed := uint64(0); seed < trials; seed++ {
		rf := mustRF(t, 32, 8, seed) // 4 sets
		rf.SetVictim(victimID)
		rf.SetSecureRegion(0x200, 4) // window covers all 4 sets
		// Install one secure entry via a random fill.
		translate(t, rf, victimID, 0x200)
		var securePage VPN
		for p := VPN(0x200); p < 0x204; p++ {
			if rf.Probe(victimID, p) {
				securePage = p
			}
		}
		set := uint64(securePage) % 4
		// Make the secure entry its set's LRU candidate by filling the
		// remaining 7 ways with attacker pages.
		for i := uint64(0); i < 7; i++ {
			translate(t, rf, attackerID, VPN(0x400+set+4*i))
		}
		// One more attacker miss to that set: Sec_R = 1 path.
		r := translate(t, rf, attackerID, VPN(0x400+set+4*7))
		if !r.RandomFilled {
			t.Fatalf("seed %d: expected a random fill, got %+v", seed, r)
		}
		if !rf.Probe(victimID, securePage) {
			evictions++
		}
	}
	frac := float64(evictions) / trials
	if frac > 0.5 {
		t.Errorf("secure entry evicted in %.0f%% of trials; eviction must be probabilistic (~25%%)", 100*frac)
	}
	if evictions == 0 {
		t.Error("expected occasional probabilistic displacement (draw landing on the secure set)")
	}
}

func TestRFNonSecureAliasFillStaysOutsideSecureRegion(t *testing.T) {
	// The Sec_R=1/Sec_D=0 random fill keeps the requester's upper address
	// bits and only randomises the set-index bits, and is not marked secure.
	rf := mustRF(t, 32, 8, 9) // 4 sets
	rf.SetVictim(victimID)
	rf.SetSecureRegion(0x100, 4) // covers all 4 sets
	translate(t, rf, victimID, 0x100)
	// Locate the secure fill's set and aim an attacker page at it.
	var secPage VPN
	for p := VPN(0x100); p < 0x104; p++ {
		if rf.Probe(victimID, p) {
			secPage = p
		}
	}
	set := uint64(secPage) % 4
	// Fill the remaining 7 ways of that set with attacker pages so the
	// secure entry becomes the LRU candidate.
	for i := uint64(0); i < 7; i++ {
		translate(t, rf, attackerID, VPN(0x400+set+4*i))
	}
	r := translate(t, rf, attackerID, VPN(0x400+set+4*7))
	if !r.RandomFilled {
		t.Fatalf("expected Sec_R=1 random fill, got %+v", r)
	}
	if r.RandomVPN >= 0x100 && r.RandomVPN < 0x104 {
		t.Errorf("non-secure random fill landed inside the secure region: %#x", r.RandomVPN)
	}
	// Upper bits preserved: D' differs from D only in the set-index bits.
	if r.RandomVPN/4 != (0x400+VPN(set)+4*7)/4 && r.RandomVPN != 0x400+VPN(set)+4*7 {
		// The set-index substitution may change vpn%4 only.
		d := uint64(0x400 + set + 4*7)
		if uint64(r.RandomVPN)-uint64(r.RandomVPN)%4 != d-d%4 {
			t.Errorf("random alias %#x does not share upper bits with request %#x", r.RandomVPN, d)
		}
	}
}

func TestRFMissCounterCountsRequestedMissesOnly(t *testing.T) {
	rf := secureRF(t, 3)
	wantMisses, wantRandomFills := uint64(0), uint64(0)
	for i := 0; i < 10; i++ {
		r := translate(t, rf, victimID, 0x100+VPN(i%3))
		if !r.Hit {
			wantMisses++
		}
		if r.RandomFilled {
			wantRandomFills++
		}
	}
	st := rf.Stats()
	if st.Misses != wantMisses {
		t.Errorf("misses = %d, want %d (random fills are not extra misses)", st.Misses, wantMisses)
	}
	if st.RandomFills != wantRandomFills {
		t.Errorf("random fills = %d, want %d", st.RandomFills, wantRandomFills)
	}
	if wantMisses == 0 {
		t.Error("scenario should contain at least one miss")
	}
}

func TestRFSecureMissTimingIncludesRandomWalk(t *testing.T) {
	rf := secureRF(t, 4)
	r := translate(t, rf, victimID, 0x100)
	// Figure 4's flow performs the random fill walk and the original
	// request's walk sequentially: 1 (array) + 60 (D') + 60 (D).
	if r.Cycles != 121 {
		t.Errorf("secure miss cycles = %d, want 121", r.Cycles)
	}
	r = translate(t, rf, attackerID, 0x500)
	if r.Cycles != 61 {
		t.Errorf("plain miss cycles = %d, want 61", r.Cycles)
	}
}

func TestRFAttackerAccessToSecureRangeIsNotSecure(t *testing.T) {
	// The secure region is defined for the victim's address space only; an
	// attacker touching the same numeric page range gets normal fills.
	rf := secureRF(t, 5)
	r := translate(t, rf, attackerID, 0x101)
	if r.RandomFilled {
		t.Errorf("attacker access treated as secure: %+v", r)
	}
	if !r.Filled {
		t.Error("attacker access should fill normally")
	}
}

func TestRFRandomFillWalkFailureFallsBack(t *testing.T) {
	// If the RFE draws a page with no translation (footnote 5's OS
	// precondition violated), the fill is skipped but the access completes.
	fail := errors.New("unmapped")
	walker := WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		if vpn != 0x100 {
			return 0, 5, fail
		}
		return PPN(vpn), 60, nil
	})
	rf, err := NewRF(32, 8, walker, 11)
	if err != nil {
		t.Fatal(err)
	}
	rf.SetVictim(victimID)
	rf.SetSecureRegion(0x100, 3)
	// Retry until a seed draws an unmapped page (0x101 or 0x102).
	for seed := uint64(0); ; seed++ {
		rf.Reseed(seed)
		rf.FlushAll()
		r, err := rf.Translate(victimID, 0x100)
		if err != nil {
			t.Fatalf("request itself is mapped; Translate err = %v", err)
		}
		if !r.RandomFilled && r.PPN == 0x100 {
			if rf.Stats().RandomFillSkips == 0 {
				t.Error("skip should be counted")
			}
			return
		}
		if seed > 100 {
			t.Fatal("never drew an unmapped page in 100 seeds")
		}
	}
}

func TestRFLazyFillStarvation(t *testing.T) {
	// Ablation for §4.2.3: under the asynchronous variant, back-to-back
	// secure misses starve the fill engine and random fills are dropped,
	// leaving the TLB state correlated with nothing at all (no protection
	// being exercised).
	rf := secureRF(t, 6)
	rf.LazyFill = true
	rf.LazyFillWindow = 1000 // every consecutive miss is starved
	misses := uint64(0)
	for _, vpn := range []VPN{0x100, 0x101, 0x102, 0x100, 0x101, 0x102} {
		if r := translate(t, rf, victimID, vpn); !r.Hit {
			misses++
		}
	}
	st := rf.Stats()
	if st.RandomFills != 1 {
		t.Errorf("lazy mode: random fills = %d, want only the first (rest starved)", st.RandomFills)
	}
	if st.RandomFillSkips != misses-1 {
		t.Errorf("lazy mode: skips = %d, want %d (all misses after the first)", st.RandomFillSkips, misses-1)
	}
	if misses < 3 {
		t.Errorf("starved lazy fills should keep secure pages missing; got %d misses", misses)
	}
}

func TestRFDeterministicUnderSeed(t *testing.T) {
	run := func(seed uint64) []VPN {
		rf := secureRF(t, seed)
		var draws []VPN
		for i := 0; i < 20; i++ {
			r := translate(t, rf, victimID, 0x100+VPN(i%3))
			if r.RandomFilled {
				draws = append(draws, r.RandomVPN)
			}
		}
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("draw counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same && len(a) > 3 {
		t.Error("different seeds should produce different draw sequences")
	}
}

func TestRFFlushes(t *testing.T) {
	rf := secureRF(t, 8)
	translate(t, rf, victimID, 0x100)
	translate(t, rf, attackerID, 0x500)
	rf.FlushASID(victimID)
	for p := VPN(0x100); p < 0x103; p++ {
		if rf.Probe(victimID, p) {
			t.Errorf("victim page %#x should be flushed", p)
		}
	}
	if !rf.Probe(attackerID, 0x500) {
		t.Error("attacker entry should survive FlushASID(victim)")
	}
	rf.FlushAll()
	if rf.Probe(attackerID, 0x500) {
		t.Error("FlushAll should remove everything")
	}
	translate(t, rf, attackerID, 0x500)
	if !rf.FlushPage(attackerID, 0x500) {
		t.Error("FlushPage should find the entry")
	}
}

func TestRFName(t *testing.T) {
	rf := mustRF(t, 128, 2, 0)
	if rf.Name() != "RF 2W 128" {
		t.Errorf("Name = %q", rf.Name())
	}
	if rf.Entries() != 128 || rf.Ways() != 2 {
		t.Error("geometry accessors wrong")
	}
}

func TestRNGUintnBounds(t *testing.T) {
	r := newRNG(1)
	for n := uint64(1); n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v, err := r.Uintn(n)
			if err != nil {
				t.Fatal(err)
			}
			if v >= n {
				t.Fatalf("Uintn(%d) = %d out of range", n, v)
			}
		}
	}
	if _, err := r.Uintn(0); !errors.Is(err, ErrEmptyDraw) {
		t.Errorf("Uintn(0): err = %v, want ErrEmptyDraw", err)
	}
}

// TestRFEmptyDrawDegradesToError sets up the malformed configuration that
// used to panic the process: a secure entry installed under a non-empty
// region that survives the region being reprogrammed to zero size. The next
// conflicting lookup must return a typed error (one failed translation), not
// unwind the whole campaign.
func TestRFEmptyDrawDegradesToError(t *testing.T) {
	rf := mustRF(t, 8, 2, 1)
	rf.SetVictim(victimID)
	rf.SetSecureRegion(0x100, 4)
	// Install a secure entry (Sec_D = 1 fills a random secure page).
	if _, err := rf.Translate(victimID, 0x100); err != nil {
		t.Fatal(err)
	}
	rf.SetSecureRegion(0x100, 0)
	// Hammer the sets until a lookup collides with the stale secure entry;
	// that miss needs a random alias draw from the now-empty window.
	var sawErr error
	for vpn := VPN(0x200); vpn < 0x240 && sawErr == nil; vpn++ {
		if _, err := rf.Translate(attackerID, vpn); err != nil {
			sawErr = err
		}
	}
	if sawErr == nil {
		t.Skip("no lookup collided with the stale secure entry")
	}
	if !errors.Is(sawErr, ErrEmptyDraw) {
		t.Errorf("err = %v, want ErrEmptyDraw", sawErr)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := newRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not produce a stuck generator")
	}
}
