package tlb

import (
	"testing"
	"testing/quick"
)

func mustCo(t *testing.T, entries, ways, span int) *Coalesced {
	t.Helper()
	co, err := NewCoalesced(entries, ways, span, identityWalker(60))
	if err != nil {
		t.Fatalf("NewCoalesced: %v", err)
	}
	return co
}

func TestNewCoalescedValidation(t *testing.T) {
	w := identityWalker(1)
	for _, span := range []int{0, 1, 3, 65, 128} {
		if _, err := NewCoalesced(32, 4, span, w); err == nil {
			t.Errorf("span %d should be rejected", span)
		}
	}
	if _, err := NewCoalesced(32, 4, 4, nil); err == nil {
		t.Error("nil walker should be rejected")
	}
	if _, err := NewCoalescedSP(32, 4, 4, 0, w); err == nil {
		t.Error("victimWays 0 should be rejected for the SP variant")
	}
	if _, err := NewCoalescedSP(32, 4, 4, 4, w); err == nil {
		t.Error("victimWays == ways should be rejected")
	}
	co := mustCo(t, 32, 4, 4)
	if co.Name() != "Co x4 4W 32" || co.Span() != 4 {
		t.Errorf("identity: %q span %d", co.Name(), co.Span())
	}
	cosp, err := NewCoalescedSP(32, 4, 4, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if cosp.Name() != "CoSP x4 4W 32" {
		t.Errorf("Name = %q", cosp.Name())
	}
}

func TestCoalescedContiguousPagesShareEntry(t *testing.T) {
	// With an identity walker every block is frame-contiguous: 4 pages of
	// one block coalesce into a single entry (3 coalesced fills).
	co := mustCo(t, 32, 4, 4)
	for i := VPN(0); i < 4; i++ {
		r := translate(t, co, 1, 0x100+i)
		if r.Hit {
			t.Fatalf("page %d should miss (first touch)", i)
		}
		if r.Evicted {
			t.Fatal("coalescing fills must not evict")
		}
	}
	st := co.Stats()
	if st.CoalescedFills != 3 {
		t.Errorf("coalesced fills = %d, want 3", st.CoalescedFills)
	}
	for i := VPN(0); i < 4; i++ {
		if r := translate(t, co, 1, 0x100+i); !r.Hit {
			t.Errorf("page %d should now hit", i)
		}
		if !co.Probe(1, 0x100+i) {
			t.Errorf("probe of page %d failed", i)
		}
	}
	if co.CoveredPages() != 4 {
		t.Errorf("covered pages = %d, want 4", co.CoveredPages())
	}
}

func TestCoalescedReachExceedsEntryCount(t *testing.T) {
	// A sequential sweep of span×entries pages fits entirely: the effective
	// reach multiplies by the span.
	co := mustCo(t, 8, 4, 8) // 8 entries, span 8 → up to 64 pages
	for p := VPN(0); p < 64; p++ {
		translate(t, co, 1, p)
	}
	for p := VPN(0); p < 64; p++ {
		if !co.Probe(1, p) {
			t.Fatalf("page %d fell out; reach did not coalesce", p)
		}
	}
	if got := co.CoveredPages(); got != 64 {
		t.Errorf("covered = %d, want 64", got)
	}
}

func TestCoalescedNonContiguousFramesRestart(t *testing.T) {
	// A walker with a discontinuity inside a block: the entry cannot hold
	// both sides and restarts around the newest translation.
	w := WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		if vpn >= 0x102 {
			return PPN(vpn) + 0x1000, 60, nil // frames jump mid-block
		}
		return PPN(vpn), 60, nil
	})
	co, err := NewCoalesced(32, 4, 4, w)
	if err != nil {
		t.Fatal(err)
	}
	translate(t, co, 1, 0x100)
	translate(t, co, 1, 0x101)
	r := translate(t, co, 1, 0x102) // discontinuity
	if r.PPN != 0x1102 {
		t.Fatalf("translation wrong: %#x", r.PPN)
	}
	// The earlier pages were dropped from the restarted entry.
	if co.Probe(1, 0x100) || co.Probe(1, 0x101) {
		t.Error("pre-discontinuity pages must be dropped")
	}
	if !co.Probe(1, 0x102) {
		t.Error("newest page must be resident")
	}
	// And the returned translations must always be correct afterwards.
	if r := translate(t, co, 1, 0x103); r.PPN != 0x1103 {
		t.Errorf("post-restart translation = %#x", r.PPN)
	}
}

func TestCoalescedASIDTagging(t *testing.T) {
	co := mustCo(t, 32, 4, 4)
	translate(t, co, 1, 0x40)
	if r := translate(t, co, 2, 0x40); r.Hit {
		t.Error("cross-ASID hit must not happen")
	}
}

func TestCoalescedSPIsolation(t *testing.T) {
	// The §6.4 design point: partition isolation is preserved while reach
	// improves.
	co, err := NewCoalescedSP(32, 4, 4, 2, identityWalker(60))
	if err != nil {
		t.Fatal(err)
	}
	co.SetVictim(1)
	// Victim covers pages in set 0's victim partition.
	translate(t, co, 1, 0)
	translate(t, co, 1, 1)
	// Attacker hammers blocks of the same set.
	for i := 0; i < 200; i++ {
		translate(t, co, 0, VPN(0x1000+uint64(i)*4*8)) // distinct blocks, set 0
	}
	if !co.Probe(1, 0) || !co.Probe(1, 1) {
		t.Error("attacker thrashing must not evict victim entries")
	}
}

func TestCoalescedFlushSemantics(t *testing.T) {
	co := mustCo(t, 32, 4, 4)
	for i := VPN(0); i < 4; i++ {
		translate(t, co, 1, 0x200+i)
	}
	if !co.FlushPage(1, 0x201) {
		t.Error("FlushPage should clear the page bit")
	}
	if co.Probe(1, 0x201) {
		t.Error("flushed page still resident")
	}
	if !co.Probe(1, 0x200) || !co.Probe(1, 0x202) {
		t.Error("other pages of the block must survive a single-page flush")
	}
	if co.FlushPage(1, 0x201) {
		t.Error("second flush should be a no-op")
	}
	// Clearing the remaining pages drops the entry entirely.
	co.FlushPage(1, 0x200)
	co.FlushPage(1, 0x202)
	co.FlushPage(1, 0x203)
	if co.CoveredPages() != 0 {
		t.Errorf("covered = %d after flushing the block", co.CoveredPages())
	}
	// FlushPageAllASIDs crosses address spaces.
	translate(t, co, 1, 0x300)
	translate(t, co, 2, 0x300)
	if !co.FlushPageAllASIDs(0x300) {
		t.Error("all-ASID flush should clear entries")
	}
	if co.Probe(1, 0x300) || co.Probe(2, 0x300) {
		t.Error("all-ASID flush left residues")
	}
	// FlushASID and FlushAll.
	translate(t, co, 1, 0x400)
	translate(t, co, 2, 0x404)
	co.FlushASID(1)
	if co.Probe(1, 0x400) || !co.Probe(2, 0x404) {
		t.Error("FlushASID semantics wrong")
	}
	co.FlushAll()
	if co.CoveredPages() != 0 {
		t.Error("FlushAll left entries")
	}
}

func TestCoalescedRecoversSPCapacityLoss(t *testing.T) {
	// The headline of the §6.4 suggestion: a partitioned coalesced TLB
	// brings the miss rate of a spatially local workload back down towards
	// the unpartitioned SA TLB's.
	run := func(tl TLB) float64 {
		for pass := 0; pass < 30; pass++ {
			for p := VPN(0); p < 24; p++ { // 24-page hot loop, as ASID 2
				if _, err := tl.Translate(2, p); err != nil {
					t.Fatal(err)
				}
			}
		}
		return tl.Stats().MissRate()
	}
	sa := mustSA(t, 32, 4)
	sp := mustSP(t, 32, 4, 2) // victim partition idle; ASID 2 gets half
	cosp, err := NewCoalescedSP(32, 4, 8, 2, identityWalker(60))
	if err != nil {
		t.Fatal(err)
	}
	cosp.SetVictim(victimID)
	saRate, spRate, coRate := run(sa), run(sp), run(cosp)
	if spRate <= saRate {
		t.Fatalf("setup broken: SP %.3f should exceed SA %.3f", spRate, saRate)
	}
	if coRate >= spRate/2 {
		t.Errorf("coalescing should recover most of SP's loss: SA %.3f, SP %.3f, CoSP %.3f",
			saRate, spRate, coRate)
	}
}

func TestQuickCoalescedTranslationsCorrect(t *testing.T) {
	// Property: whatever the access pattern, returned PPNs always equal the
	// walker's translation (coalescing must never fabricate frames).
	f := func(raws []uint16) bool {
		co := mustCo(t, 32, 4, 4)
		for _, raw := range raws {
			vpn := VPN(raw % 512)
			r, err := co.Translate(1, vpn)
			if err != nil {
				return false
			}
			if r.PPN != PPN(vpn) {
				t.Logf("vpn %#x -> ppn %#x", vpn, r.PPN)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoalescedAgainstNonContiguousWalker(t *testing.T) {
	// Same property under a scrambled frame mapping that defeats
	// coalescing: correctness must not depend on contiguity.
	scramble := WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		return PPN(uint64(vpn)*2654435761 + 12345), 60, nil
	})
	f := func(raws []uint16) bool {
		co, err := NewCoalesced(32, 4, 4, scramble)
		if err != nil {
			t.Fatal(err)
		}
		for _, raw := range raws {
			vpn := VPN(raw % 256)
			r, err := co.Translate(1, vpn)
			if err != nil {
				return false
			}
			want := PPN(uint64(vpn)*2654435761 + 12345)
			if r.PPN != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSPDynamicRepartition(t *testing.T) {
	sp := mustSP(t, 32, 4, 2)
	translate(t, sp, victimID, 0)   // victim ways 0-1
	translate(t, sp, attackerID, 8) // attacker ways 2-3
	if err := sp.SetVictimWays(3); err != nil {
		t.Fatal(err)
	}
	if sp.VictimWays() != 3 {
		t.Errorf("victimWays = %d", sp.VictimWays())
	}
	// The victim entry (way 0 or 1) is still on the victim side; attacker
	// entries in way 2 are now stranded in the victim partition and must be
	// invalidated to preserve isolation.
	if !sp.Probe(victimID, 0) {
		t.Error("victim entry should survive a boundary move that keeps it victim-side")
	}
	if sp.Probe(attackerID, 8) {
		t.Error("attacker entry stranded in the victim partition must be invalidated")
	}
	// Boundary moves are validated.
	if err := sp.SetVictimWays(0); err == nil {
		t.Error("victimWays 0 must be rejected")
	}
	if err := sp.SetVictimWays(4); err == nil {
		t.Error("victimWays == ways must be rejected")
	}
	// Isolation still holds after the move.
	for i := 0; i < 64; i++ {
		translate(t, sp, attackerID, VPN(8*(i+2)))
	}
	if !sp.Probe(victimID, 0) {
		t.Error("isolation violated after dynamic repartition")
	}
}
