package tlb

import "fmt"

// TwoLevel composes two TLB levels into a hierarchy, the "other levels of
// TLB" the paper notes its designs apply to (§4). The L1 is looked up
// first; on an L1 miss the request falls through to the L2, and only an L2
// miss pays the page walk. Fills propagate to both levels (the common
// mostly-inclusive arrangement).
//
// Any design can sit at either level — including a secure design at L1 over
// a standard L2. That combination is deliberately constructible because it
// demonstrates why the paper's remark matters: a Random-Fill L1 stops the
// L1-granular attacks, but an attacker who can distinguish "L2 hit"
// (medium) from "page walk" (slow) latencies still sees a standard
// set-associative structure at L2. Securing one level is not enough; the
// designs must be applied per level.
type TwoLevel struct {
	l1, l2 TLB
}

var _ TLB = (*TwoLevel)(nil)

// NewTwoLevel builds a hierarchy. mkL1 constructs the L1 over a walker that
// delegates misses to l2; l2 must already be constructed over the real page
// table walker.
func NewTwoLevel(mkL1 func(Walker) (TLB, error), l2 TLB) (*TwoLevel, error) {
	if l2 == nil {
		return nil, fmt.Errorf("tlb: two-level hierarchy needs an L2")
	}
	l1, err := mkL1(WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		r, err := l2.Translate(asid, vpn)
		return r.PPN, r.Cycles, err
	}))
	if err != nil {
		return nil, err
	}
	if l1 == nil {
		return nil, fmt.Errorf("tlb: mkL1 returned nil")
	}
	return &TwoLevel{l1: l1, l2: l2}, nil
}

// L1 returns the first-level TLB.
func (t *TwoLevel) L1() TLB { return t.l1 }

// L2 returns the second-level TLB.
func (t *TwoLevel) L2() TLB { return t.l2 }

// Name implements TLB.
func (t *TwoLevel) Name() string { return t.l1.Name() + " / " + t.l2.Name() }

// Entries implements TLB (the L1's, the architecturally visible level).
func (t *TwoLevel) Entries() int { return t.l1.Entries() }

// Ways implements TLB.
func (t *TwoLevel) Ways() int { return t.l1.Ways() }

// Translate implements TLB. An L1 hit costs the L1 latency; an L1 miss adds
// the L2 lookup (hit: its array latency; miss: the page walk), because the
// L1's walker is the L2.
func (t *TwoLevel) Translate(asid ASID, vpn VPN) (Result, error) {
	return t.l1.Translate(asid, vpn)
}

// Probe implements TLB: present anywhere in the hierarchy.
func (t *TwoLevel) Probe(asid ASID, vpn VPN) bool {
	return t.l1.Probe(asid, vpn) || t.l2.Probe(asid, vpn)
}

// ProbeLevel reports presence per level (diagnostics and attacks).
func (t *TwoLevel) ProbeLevel(asid ASID, vpn VPN) (inL1, inL2 bool) {
	return t.l1.Probe(asid, vpn), t.l2.Probe(asid, vpn)
}

// FlushAll implements TLB (both levels, as sfence.vma does).
func (t *TwoLevel) FlushAll() {
	t.l1.FlushAll()
	t.l2.FlushAll()
}

// FlushASID implements TLB.
func (t *TwoLevel) FlushASID(asid ASID) {
	t.l1.FlushASID(asid)
	t.l2.FlushASID(asid)
}

// FlushPage implements TLB.
func (t *TwoLevel) FlushPage(asid ASID, vpn VPN) bool {
	a := t.l1.FlushPage(asid, vpn)
	b := t.l2.FlushPage(asid, vpn)
	return a || b
}

// FlushPageAllASIDs implements TLB.
func (t *TwoLevel) FlushPageAllASIDs(vpn VPN) bool {
	a := t.l1.FlushPageAllASIDs(vpn)
	b := t.l2.FlushPageAllASIDs(vpn)
	return a || b
}

// Stats implements TLB: the L1's counters (what the tlb_miss_count CSR
// exposes); use L2().Stats() for the inner level.
func (t *TwoLevel) Stats() Stats { return t.l1.Stats() }

// ResetStats implements TLB (both levels).
func (t *TwoLevel) ResetStats() {
	t.l1.ResetStats()
	t.l2.ResetStats()
}
