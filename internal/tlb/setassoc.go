package tlb

import "fmt"

// SetAssoc is the standard set-associative TLB of the paper ("SA TLB"),
// with true LRU replacement within each set. Entries are tagged with the
// process ID (ASID), so a hit requires both the page number and the ASID to
// match — this alone is what lets the standard SA TLB defend the paper's 10
// hit-between-processes vulnerability types (Table 4).
//
// A fully-associative TLB ("FA TLB") is a SetAssoc with ways == entries; the
// paper's TLB-disabled approximation ("1E") is a SetAssoc with one entry.
type SetAssoc struct {
	geom   geometry
	timing Timing
	walker Walker
	sets   [][]entry
	clock  uint64
	stats  Stats
	hook   *FaultHook
}

var _ TLB = (*SetAssoc)(nil)

// NewSetAssoc returns an SA TLB with the given capacity and associativity.
// entries must be a positive multiple of ways.
func NewSetAssoc(entries, ways int, walker Walker) (*SetAssoc, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	t := &SetAssoc{geom: g, timing: DefaultTiming, walker: walker}
	t.sets = make([][]entry, g.sets)
	backing := make([]entry, g.entries)
	for i := range t.sets {
		t.sets[i], backing = backing[:g.ways], backing[g.ways:]
	}
	return t, nil
}

// NewFullyAssoc returns an FA TLB: a single set spanning all entries.
func NewFullyAssoc(entries int, walker Walker) (*SetAssoc, error) {
	return NewSetAssoc(entries, entries, walker)
}

// NewSingleEntry returns the paper's "1E" configuration, the closest
// realisable approximation to disabling the TLB.
func NewSingleEntry(walker Walker) (*SetAssoc, error) {
	return NewSetAssoc(1, 1, walker)
}

// SetTiming overrides the lookup latency parameters.
func (t *SetAssoc) SetTiming(tm Timing) { t.timing = tm }

// Name implements TLB.
func (t *SetAssoc) Name() string { return "SA " + t.geom.geomName() }

// Entries implements TLB.
func (t *SetAssoc) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *SetAssoc) Ways() int { return t.geom.ways }

// Stats implements TLB.
func (t *SetAssoc) Stats() Stats { return t.stats }

// ResetStats implements TLB.
func (t *SetAssoc) ResetStats() { t.stats = Stats{} }

// find returns the way index holding (asid, vpn) in set s, or -1.
func (t *SetAssoc) find(s int, asid ASID, vpn VPN) int {
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			return w
		}
	}
	return -1
}

// lruWay returns the fill target in set s: an invalid way if one exists,
// otherwise the least-recently-used way.
func lruWay(set []entry) int {
	victim, oldest := 0, ^uint64(0)
	for w := range set {
		if !set[w].valid {
			return w
		}
		if set[w].stamp < oldest {
			victim, oldest = w, set[w].stamp
		}
	}
	return victim
}

// Translate implements TLB.
func (t *SetAssoc) Translate(asid ASID, vpn VPN) (Result, error) {
	t.hook.access()
	t.stats.Lookups++
	s := t.geom.setIndex(vpn)
	t.clock++
	if w := t.find(s, asid, vpn); w >= 0 {
		e := &t.sets[s][w]
		if t.hook.touchAllowed(s, w) {
			e.stamp = t.clock
		}
		t.stats.Hits++
		return Result{PPN: e.ppn, Hit: true, Cycles: t.timing.HitCycles}, nil
	}
	t.stats.Misses++
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	if err != nil {
		return Result{Cycles: t.timing.HitCycles + walkCycles}, err
	}
	res := Result{PPN: ppn, Cycles: t.timing.HitCycles + walkCycles, Filled: true}
	w := lruWay(t.sets[s])
	action := t.hook.fillAction(s, w)
	if action == FillDrop {
		// Lost array write: the control logic still counts the fill.
		t.stats.Fills++
		return res, nil
	}
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, stamp: t.clock}
	t.stats.Fills++
	if action == FillDuplicate {
		if w2 := (w + 1) % len(t.sets[s]); w2 != w {
			t.sets[s][w2] = *e
		}
	}
	return res, nil
}

// Probe implements TLB.
func (t *SetAssoc) Probe(asid ASID, vpn VPN) bool {
	return t.find(t.geom.setIndex(vpn), asid, vpn) >= 0
}

// FlushAll implements TLB.
func (t *SetAssoc) FlushAll() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = entry{}
		}
	}
	t.stats.Flushes++
}

// FlushASID implements TLB.
func (t *SetAssoc) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = entry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB.
func (t *SetAssoc) FlushPage(asid ASID, vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	if w := t.find(s, asid, vpn); w >= 0 {
		t.sets[s][w] = entry{}
		return true
	}
	return false
}

// valid returns the number of valid entries; used by tests and invariants.
func (t *SetAssoc) validCount() int {
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// FlushPageAllASIDs implements TLB.
func (t *SetAssoc) FlushPageAllASIDs(vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	any := false
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.vpn == vpn {
			*e = entry{}
			any = true
		}
	}
	return any
}
