package tlb

import "fmt"

// SetAssoc is the standard set-associative TLB of the paper ("SA TLB"),
// with true LRU replacement within each set. Entries are tagged with the
// process ID (ASID), so a hit requires both the page number and the ASID to
// match — this alone is what lets the standard SA TLB defend the paper's 10
// hit-between-processes vulnerability types (Table 4).
//
// A fully-associative TLB ("FA TLB") is a SetAssoc with ways == entries; the
// paper's TLB-disabled approximation ("1E") is a SetAssoc with one entry.
type SetAssoc struct {
	geom   geometry
	timing Timing
	walker Walker
	sets   [][]entry
	backing []entry // contiguous storage behind sets, cleared whole on FlushAll
	clock  uint64
	stats  Stats
	hook   *FaultHook
}

var _ TLB = (*SetAssoc)(nil)

// NewSetAssoc returns an SA TLB with the given capacity and associativity.
// entries must be a positive multiple of ways.
func NewSetAssoc(entries, ways int, walker Walker) (*SetAssoc, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	t := &SetAssoc{geom: g, timing: DefaultTiming, walker: walker}
	t.sets, t.backing = newSets(g)
	return t, nil
}

// NewFullyAssoc returns an FA TLB: a single set spanning all entries.
func NewFullyAssoc(entries int, walker Walker) (*SetAssoc, error) {
	return NewSetAssoc(entries, entries, walker)
}

// NewSingleEntry returns the paper's "1E" configuration, the closest
// realisable approximation to disabling the TLB.
func NewSingleEntry(walker Walker) (*SetAssoc, error) {
	return NewSetAssoc(1, 1, walker)
}

// SetTiming overrides the lookup latency parameters.
func (t *SetAssoc) SetTiming(tm Timing) { t.timing = tm }

// Name implements TLB.
func (t *SetAssoc) Name() string { return "SA " + t.geom.geomName() }

// Entries implements TLB.
func (t *SetAssoc) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *SetAssoc) Ways() int { return t.geom.ways }

// Stats implements TLB.
func (t *SetAssoc) Stats() Stats { return t.stats }

// MissHitCounts implements CounterReader.
func (t *SetAssoc) MissHitCounts() (uint64, uint64) { return t.stats.Misses, t.stats.Hits }

// ResetStats implements TLB.
func (t *SetAssoc) ResetStats() { t.stats = Stats{} }

// find returns the way index holding (asid, vpn) in set s, or -1.
func (t *SetAssoc) find(s int, asid ASID, vpn VPN) int {
	set := t.sets[s]
	for w := range set {
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			return w
		}
	}
	return -1
}

// newSets allocates a set array over one contiguous backing slice; FlushAll
// clears the backing in a single memclr.
func newSets(g geometry) ([][]entry, []entry) {
	sets := make([][]entry, g.sets)
	backing := make([]entry, g.entries)
	rest := backing
	for i := range sets {
		sets[i], rest = rest[:g.ways], rest[g.ways:]
	}
	return sets, backing
}

// findOrVictim scans set once, returning the way holding (asid, vpn) — with
// victim == -1 — or hit == -1 together with the fill victim lruWay would
// choose: the first invalid way, else the least recently used. A miss
// previously scanned the set twice (lookup, then victim selection); lookups
// are the simulator's innermost loop, so the fused scan matters.
func findOrVictim(set []entry, asid ASID, vpn VPN) (hit, victim int) {
	inv := -1
	oldest := ^uint64(0)
	for w := range set {
		e := &set[w]
		if e.valid {
			if e.vpn == vpn && e.asid == asid {
				return w, -1
			}
			if e.stamp < oldest {
				victim, oldest = w, e.stamp
			}
		} else if inv < 0 {
			inv = w
		}
	}
	if inv >= 0 {
		return -1, inv
	}
	return -1, victim
}

// findOrVictimIn is findOrVictim with the victim confined to ways [lo, hi):
// the SP TLB hits on every way but fills within the requester's partition.
func findOrVictimIn(set []entry, asid ASID, vpn VPN, lo, hi int) (hit, victim int) {
	inv := -1
	oldest := ^uint64(0)
	victim = lo
	for w := range set {
		e := &set[w]
		if e.valid {
			if e.vpn == vpn && e.asid == asid {
				return w, -1
			}
			if lo <= w && w < hi && e.stamp < oldest {
				victim, oldest = w, e.stamp
			}
		} else if inv < 0 && lo <= w && w < hi {
			inv = w
		}
	}
	if inv >= 0 {
		return -1, inv
	}
	return -1, victim
}

// lruWay returns the fill target in set s: an invalid way if one exists,
// otherwise the least-recently-used way.
func lruWay(set []entry) int {
	victim, oldest := 0, ^uint64(0)
	for w := range set {
		if !set[w].valid {
			return w
		}
		if set[w].stamp < oldest {
			victim, oldest = w, set[w].stamp
		}
	}
	return victim
}

// Translate implements TLB.
func (t *SetAssoc) Translate(asid ASID, vpn VPN) (Result, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res, err
}

// TranslateCycles implements FastTranslator.
func (t *SetAssoc) TranslateCycles(asid ASID, vpn VPN) (uint64, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res.Cycles, err
}

func (t *SetAssoc) translate(asid ASID, vpn VPN, res *Result) error {
	t.hook.access()
	t.stats.Lookups++
	s := t.geom.setIndex(vpn)
	t.clock++
	hit, victim := findOrVictim(t.sets[s], asid, vpn)
	if hit >= 0 {
		e := &t.sets[s][hit]
		if t.hook.touchAllowed(s, hit) {
			e.stamp = t.clock
		}
		t.stats.Hits++
		res.PPN, res.Hit, res.Cycles = e.ppn, true, t.timing.HitCycles
		return nil
	}
	t.stats.Misses++
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	res.Cycles = t.timing.HitCycles + walkCycles
	if err != nil {
		return err
	}
	// The walker never touches the array, so the probe's victim way is
	// still current after the walk.
	res.PPN, res.Filled = ppn, true
	w := victim
	action := t.hook.fillAction(s, w)
	if action == FillDrop {
		// Lost array write: the control logic still counts the fill.
		t.stats.Fills++
		return nil
	}
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, stamp: t.clock}
	t.stats.Fills++
	if action == FillDuplicate {
		if w2 := (w + 1) % len(t.sets[s]); w2 != w {
			t.sets[s][w2] = *e
		}
	}
	return nil
}

// Probe implements TLB.
func (t *SetAssoc) Probe(asid ASID, vpn VPN) bool {
	return t.find(t.geom.setIndex(vpn), asid, vpn) >= 0
}

// FlushAll implements TLB.
func (t *SetAssoc) FlushAll() {
	// The sets share one contiguous backing array (see the constructor),
	// so the whole TLB clears with a single memclr.
	clear(t.backing)
	t.stats.Flushes++
}

// FlushASID implements TLB.
func (t *SetAssoc) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = entry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB.
func (t *SetAssoc) FlushPage(asid ASID, vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	if w := t.find(s, asid, vpn); w >= 0 {
		t.sets[s][w] = entry{}
		return true
	}
	return false
}

// valid returns the number of valid entries; used by tests and invariants.
func (t *SetAssoc) validCount() int {
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// FlushPageAllASIDs implements TLB.
func (t *SetAssoc) FlushPageAllASIDs(vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	any := false
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.vpn == vpn {
			*e = entry{}
			any = true
		}
	}
	return any
}
