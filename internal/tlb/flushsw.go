package tlb

import "fmt"

// FlushOnSwitch is the flush-based secure TLB ("FS TLB"), a SIMF-style
// design point: a standard set-associative array (identical lookup, LRU and
// fill behaviour to the SA TLB) that invalidates its whole contents
//
//   - on every ASID/context switch, and
//   - when the victim process leaves its secure region (a secure-region
//     exit), so even a same-process continuation cannot probe what the
//     secure code left behind.
//
// The context switch is observed at the moment the OS writes the process-ID
// CSR (ObserveASID, wired from the CPU and the trace VM), matching the
// single-instruction-multiple-flush semantics: by the time the incoming
// process issues its first access, nothing of the previous context remains.
// Harnesses that drive Translate directly without CSR writes are covered by
// a fallback — a lookup under a new ASID performs the same flush first.
//
// No cross-context state survives a switch, so the design needs neither
// partitioning nor randomization: its security argument is erasure.
type FlushOnSwitch struct {
	geom    geometry
	timing  Timing
	walker  Walker
	sets    [][]entry
	backing []entry // contiguous storage behind sets, cleared whole on flush
	clock   uint64
	stats   Stats
	hook    *FaultHook

	victim    ASID
	hasVictim bool
	sbase     VPN
	ssize     uint64

	cur        ASID // current context, valid when hasCur
	hasCur     bool
	lastSecure bool // the context's previous access was inside the secure region
}

var (
	_ SecureTLB      = (*FlushOnSwitch)(nil)
	_ FastTranslator = (*FlushOnSwitch)(nil)
	_ CounterReader  = (*FlushOnSwitch)(nil)
	_ ASIDObserver   = (*FlushOnSwitch)(nil)
)

// NewFlushOnSwitch returns an FS TLB with the given capacity and
// associativity.
func NewFlushOnSwitch(entries, ways int, walker Walker) (*FlushOnSwitch, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	t := &FlushOnSwitch{geom: g, timing: DefaultTiming, walker: walker}
	t.sets, t.backing = newSets(g)
	return t, nil
}

// SetTiming overrides the lookup latency parameters.
func (t *FlushOnSwitch) SetTiming(tm Timing) { t.timing = tm }

// Name implements TLB.
func (t *FlushOnSwitch) Name() string { return "FS " + t.geom.geomName() }

// Entries implements TLB.
func (t *FlushOnSwitch) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *FlushOnSwitch) Ways() int { return t.geom.ways }

// Stats implements TLB.
func (t *FlushOnSwitch) Stats() Stats { return t.stats }

// MissHitCounts implements CounterReader.
func (t *FlushOnSwitch) MissHitCounts() (uint64, uint64) { return t.stats.Misses, t.stats.Hits }

// ResetStats implements TLB.
func (t *FlushOnSwitch) ResetStats() { t.stats = Stats{} }

// SetVictim implements SecureTLB.
func (t *FlushOnSwitch) SetVictim(asid ASID) { t.victim, t.hasVictim = asid, true }

// Victim implements SecureTLB.
func (t *FlushOnSwitch) Victim() ASID { return t.victim }

// SetSecureRegion implements SecureTLB (pages [sbase, sbase+ssize)).
func (t *FlushOnSwitch) SetSecureRegion(sbase VPN, ssize uint64) { t.sbase, t.ssize = sbase, ssize }

// SecureRegion implements SecureTLB.
func (t *FlushOnSwitch) SecureRegion() (VPN, uint64) { return t.sbase, t.ssize }

// secure reports whether (asid, vpn) lies in the victim's secure region.
func (t *FlushOnSwitch) secure(asid ASID, vpn VPN) bool {
	return t.hasVictim && asid == t.victim && t.ssize > 0 &&
		vpn >= t.sbase && uint64(vpn-t.sbase) < t.ssize
}

// autoFlush performs the design's own full invalidation (switch or
// secure-region exit). The fault hook may drop it — a lost flush strobe —
// which is exactly the flushsw-flush-dropped injection site.
func (t *FlushOnSwitch) autoFlush() {
	if !t.hook.autoFlushAllowed() {
		return
	}
	clear(t.backing)
	t.stats.Flushes++
}

// ObserveASID implements ASIDObserver: a context switch flushes the array
// before the incoming process can issue a single access.
func (t *FlushOnSwitch) ObserveASID(asid ASID) {
	if t.hasCur && asid == t.cur {
		return
	}
	if t.hasCur {
		t.autoFlush()
	}
	t.cur, t.hasCur, t.lastSecure = asid, true, false
}

func (t *FlushOnSwitch) find(s int, asid ASID, vpn VPN) int {
	set := t.sets[s]
	for w := range set {
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			return w
		}
	}
	return -1
}

// Translate implements TLB.
func (t *FlushOnSwitch) Translate(asid ASID, vpn VPN) (Result, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res, err
}

// TranslateCycles implements FastTranslator.
func (t *FlushOnSwitch) TranslateCycles(asid ASID, vpn VPN) (uint64, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res.Cycles, err
}

func (t *FlushOnSwitch) translate(asid ASID, vpn VPN, res *Result) error {
	t.hook.access()
	t.stats.Lookups++
	// Fallback switch detection for harnesses without CSR writes; a no-op
	// when ObserveASID already saw this context.
	t.ObserveASID(asid)
	sec := t.secure(asid, vpn)
	if t.lastSecure && !sec {
		t.autoFlush()
	}
	t.lastSecure = sec
	s := t.geom.setIndex(vpn)
	t.clock++
	hit, victim := findOrVictim(t.sets[s], asid, vpn)
	if hit >= 0 {
		e := &t.sets[s][hit]
		if t.hook.touchAllowed(s, hit) {
			e.stamp = t.clock
		}
		t.stats.Hits++
		res.PPN, res.Hit, res.Cycles = e.ppn, true, t.timing.HitCycles
		return nil
	}
	t.stats.Misses++
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	res.Cycles = t.timing.HitCycles + walkCycles
	if err != nil {
		return err
	}
	res.PPN, res.Filled = ppn, true
	w := victim
	action := t.hook.fillAction(s, w)
	if action == FillDrop {
		// Lost array write: the control logic still counts the fill.
		t.stats.Fills++
		return nil
	}
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, stamp: t.clock}
	t.stats.Fills++
	if action == FillDuplicate {
		if w2 := (w + 1) % len(t.sets[s]); w2 != w {
			t.sets[s][w2] = *e
		}
	}
	return nil
}

// Probe implements TLB.
func (t *FlushOnSwitch) Probe(asid ASID, vpn VPN) bool {
	return t.find(t.geom.setIndex(vpn), asid, vpn) >= 0
}

// FlushAll implements TLB. An external full flush also resets the
// context-tracking state: campaign trials reset through FlushAll, and the
// switch/exit bookkeeping must be a pure function of the trial's own
// accesses for sharded and serial runs to stay bit-identical.
func (t *FlushOnSwitch) FlushAll() {
	clear(t.backing)
	t.stats.Flushes++
	t.hasCur = false
	t.lastSecure = false
}

// FlushASID implements TLB.
func (t *FlushOnSwitch) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = entry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB.
func (t *FlushOnSwitch) FlushPage(asid ASID, vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	if w := t.find(s, asid, vpn); w >= 0 {
		t.sets[s][w] = entry{}
		return true
	}
	return false
}

// FlushPageAllASIDs implements TLB.
func (t *FlushOnSwitch) FlushPageAllASIDs(vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	any := false
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.vpn == vpn {
			*e = entry{}
			any = true
		}
	}
	return any
}
