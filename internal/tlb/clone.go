package tlb

import "fmt"

// Cloner is implemented by TLB designs that support cheap replication. The
// clone reproduces the full microarchitectural state — entries, LRU stamps,
// counters, security registers, and (for the RF TLB) the PRNG state — bound
// to a new walker, so a cloned machine translates exactly like the original
// from the clone point onward. The trial-parallel security campaigns rely on
// this to hand each worker an isolated TLB.
type Cloner interface {
	// CloneWith returns an independent copy of the TLB using w to resolve
	// misses.
	CloneWith(w Walker) TLB
}

// Clone replicates any cloneable TLB, returning an error for designs (or
// compositions) that do not support replication.
func Clone(t TLB, w Walker) (TLB, error) {
	c, ok := t.(Cloner)
	if !ok {
		return nil, fmt.Errorf("tlb: %s does not support cloning", t.Name())
	}
	n := c.CloneWith(w)
	if n == nil {
		return nil, fmt.Errorf("tlb: %s failed to clone", t.Name())
	}
	return n, nil
}

// cloneSets deep-copies a set array, preserving the contiguous backing
// layout of the constructors.
func cloneSets(sets [][]entry, entries, ways int) ([][]entry, []entry) {
	out := make([][]entry, len(sets))
	backing := make([]entry, entries)
	rest := backing
	for i := range sets {
		out[i], rest = rest[:ways], rest[ways:]
		copy(out[i], sets[i])
	}
	return out, backing
}

// CloneWith implements Cloner. Fault hooks are per-instance campaign state
// and are deliberately not inherited.
func (t *SetAssoc) CloneWith(w Walker) TLB {
	n := *t
	n.walker = w
	n.sets, n.backing = cloneSets(t.sets, t.geom.entries, t.geom.ways)
	n.hook = nil
	return &n
}

// CloneWith implements Cloner. Fault hooks are not inherited.
func (t *SP) CloneWith(w Walker) TLB {
	n := *t
	n.walker = w
	n.sets, n.backing = cloneSets(t.sets, t.geom.entries, t.geom.ways)
	n.hook = nil
	return &n
}

// CloneWith implements Cloner. The clone's Random Fill Engine continues the
// original's PRNG stream from its current state; campaigns that need
// per-trial reproducibility reseed per trial as usual.
func (t *RF) CloneWith(w Walker) TLB {
	n := *t
	n.walker = w
	n.sets, n.backing = cloneSets(t.sets, t.geom.entries, t.geom.ways)
	rngCopy := *t.rng
	n.rng = &rngCopy
	n.hook = nil
	return &n
}

// CloneWith implements Cloner. The clone's key stream continues the
// original's PRNG state; campaigns that need per-trial reproducibility
// reseed per trial as usual. Fault hooks are not inherited.
func (t *RandIdx) CloneWith(w Walker) TLB {
	n := *t
	n.walker = w
	n.sets, n.backing = cloneSets(t.sets, t.geom.entries, t.geom.ways)
	rngCopy := *t.rng
	n.rng = &rngCopy
	n.hook = nil
	return &n
}

// CloneWith implements Cloner. Fault hooks are not inherited.
func (t *FlushOnSwitch) CloneWith(w Walker) TLB {
	n := *t
	n.walker = w
	n.sets, n.backing = cloneSets(t.sets, t.geom.entries, t.geom.ways)
	n.hook = nil
	return &n
}

// CloneWith implements Cloner.
func (t *Coalesced) CloneWith(w Walker) TLB {
	n := *t
	n.walker = w
	n.sets = make([][]centry, len(t.sets))
	backing := make([]centry, t.geom.entries)
	for i := range t.sets {
		n.sets[i], backing = backing[:t.geom.ways], backing[t.geom.ways:]
		copy(n.sets[i], t.sets[i])
	}
	return &n
}

// CloneWith implements Cloner when both levels do: the L2 is cloned over the
// new walker and the L1 over a delegate walker into the cloned L2 (the same
// wiring NewTwoLevel builds). It returns nil if either level cannot clone.
func (t *TwoLevel) CloneWith(w Walker) TLB {
	l2c, ok := t.l2.(Cloner)
	if !ok {
		return nil
	}
	l1c, ok := t.l1.(Cloner)
	if !ok {
		return nil
	}
	l2 := l2c.CloneWith(w)
	if l2 == nil {
		return nil
	}
	l1 := l1c.CloneWith(WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		r, err := l2.Translate(asid, vpn)
		return r.PPN, r.Cycles, err
	}))
	if l1 == nil {
		return nil
	}
	return &TwoLevel{l1: l1, l2: l2}
}
