package tlb

import (
	"testing"
	"testing/quick"
)

// opStream is a randomised sequence of TLB operations used by the
// property-based tests below.
type opStream struct {
	Ops []op
}

type op struct {
	Kind uint8 // 0..4: translate, flushAll, flushASID, flushPage, probe
	ASID uint8
	VPN  uint16
}

// apply runs the stream against a TLB, failing the test on walker errors.
func (s opStream) apply(t *testing.T, tl TLB) {
	t.Helper()
	for _, o := range s.Ops {
		asid, vpn := ASID(o.ASID%4), VPN(o.VPN%512)
		switch o.Kind % 5 {
		case 0:
			if _, err := tl.Translate(asid, vpn); err != nil {
				t.Fatalf("Translate: %v", err)
			}
		case 1:
			tl.FlushAll()
		case 2:
			tl.FlushASID(asid)
		case 3:
			tl.FlushPage(asid, vpn)
		case 4:
			tl.Probe(asid, vpn)
		}
	}
}

// entriesOf extracts the valid entries of each design for invariant checks.
func entriesOf(tl TLB) []entry {
	var sets [][]entry
	switch v := tl.(type) {
	case *SetAssoc:
		sets = v.sets
	case *SP:
		sets = v.sets
	case *RF:
		sets = v.sets
	}
	var out []entry
	for _, set := range sets {
		for _, e := range set {
			if e.valid {
				out = append(out, e)
			}
		}
	}
	return out
}

// setsOf returns the raw sets for per-set invariants.
func setsOf(tl TLB) [][]entry {
	switch v := tl.(type) {
	case *SetAssoc:
		return v.sets
	case *SP:
		return v.sets
	case *RF:
		return v.sets
	}
	return nil
}

func checkInvariants(t *testing.T, tl TLB, geom geometry) bool {
	t.Helper()
	// Invariant 1: no duplicate (asid, vpn) translations.
	seen := map[[2]uint64]bool{}
	for _, e := range entriesOf(tl) {
		k := [2]uint64{uint64(e.asid), uint64(e.vpn)}
		if seen[k] {
			t.Logf("duplicate translation (%d,%#x)", e.asid, e.vpn)
			return false
		}
		seen[k] = true
	}
	// Invariant 2: every valid entry resides in the set its VPN indexes.
	for s, set := range setsOf(tl) {
		for _, e := range set {
			if e.valid && geom.setIndex(e.vpn) != s {
				t.Logf("entry (%d,%#x) stored in set %d, indexes set %d",
					e.asid, e.vpn, s, geom.setIndex(e.vpn))
				return false
			}
		}
	}
	// Invariant 3: stats are mutually consistent.
	st := tl.Stats()
	if st.Hits+st.Misses != st.Lookups {
		t.Logf("hits(%d)+misses(%d) != lookups(%d)", st.Hits, st.Misses, st.Lookups)
		return false
	}
	return true
}

func TestQuickSetAssocInvariants(t *testing.T) {
	f := func(s opStream) bool {
		sa := mustSA(t, 32, 4)
		s.apply(t, sa)
		return checkInvariants(t, sa, sa.geom)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSPInvariants(t *testing.T) {
	f := func(s opStream) bool {
		sp := mustSP(t, 32, 4, 2)
		s.apply(t, sp)
		if !checkInvariants(t, sp, sp.geom) {
			return false
		}
		// SP-specific invariant: victim entries only in victim ways,
		// attacker entries only in attacker ways. (Entries filled before a
		// victim change could violate this; the stream keeps victim fixed.)
		for _, set := range sp.sets {
			for w, e := range set {
				if !e.valid {
					continue
				}
				inVictimWays := w < sp.victimWays
				isVictim := e.asid == sp.victim
				if inVictimWays != isVictim {
					t.Logf("partition violation: asid %d in way %d", e.asid, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRFInvariants(t *testing.T) {
	seed := uint64(0)
	f := func(s opStream) bool {
		seed++
		rf := mustRF(t, 32, 8, seed)
		rf.SetVictim(victimID)
		rf.SetSecureRegion(0x40, 5)
		s.apply(t, rf)
		if !checkInvariants(t, rf, rf.geom) {
			return false
		}
		// RF-specific invariant: every Sec-marked entry lies inside the
		// secure region and belongs to the victim.
		for _, e := range entriesOf(rf) {
			if e.sec && (e.asid != victimID || e.vpn < 0x40 || e.vpn >= 0x45) {
				t.Logf("sec bit set on (%d,%#x) outside secure region", e.asid, e.vpn)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRFSecureNeverDirectlyFilled(t *testing.T) {
	// Property: after any access stream, a secure page is present in the TLB
	// only if some random fill drew it — i.e. Translate of a secure page
	// reports Filled only when RandomVPN == requested VPN.
	seed := uint64(1000)
	f := func(vpnsRaw []uint16) bool {
		seed++
		rf := mustRF(t, 32, 8, seed)
		rf.SetVictim(victimID)
		rf.SetSecureRegion(0x40, 7)
		for _, raw := range vpnsRaw {
			vpn := VPN(raw % 128)
			r, err := rf.Translate(victimID, vpn)
			if err != nil {
				t.Fatal(err)
			}
			if r.Hit {
				continue
			}
			secure := vpn >= 0x40 && vpn < 0x47
			if secure {
				if !r.RandomFilled {
					t.Logf("secure miss on %#x without random fill", vpn)
					return false
				}
				if r.Filled && r.RandomVPN != vpn {
					t.Logf("secure page %#x directly filled", vpn)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickLRUNeverEvictsMostRecent(t *testing.T) {
	// Property: a fill never evicts the entry touched immediately before it
	// (true LRU with associativity >= 2).
	f := func(vpnsRaw []uint16) bool {
		sa := mustSA(t, 32, 4)
		var lastVPN VPN
		var lastValid bool
		for _, raw := range vpnsRaw {
			vpn := VPN(raw % 64)
			r, err := sa.Translate(1, vpn)
			if err != nil {
				t.Fatal(err)
			}
			if r.Evicted && lastValid && r.EvictedVPN == lastVPN && lastVPN != vpn {
				t.Logf("evicted most recently used %#x", lastVPN)
				return false
			}
			lastVPN, lastValid = vpn, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTranslateIdempotentSecondAccess(t *testing.T) {
	// Property: for SA and SP, translating the same (asid, vpn) twice in a
	// row always hits the second time.
	f := func(asidRaw uint8, vpnRaw uint16, ways uint8) bool {
		w := []int{1, 2, 4, 8}[ways%4]
		sa, err := NewSetAssoc(32, w, identityWalker(10))
		if err != nil {
			t.Fatal(err)
		}
		asid, vpn := ASID(asidRaw), VPN(vpnRaw)
		if _, err := sa.Translate(asid, vpn); err != nil {
			t.Fatal(err)
		}
		r, err := sa.Translate(asid, vpn)
		if err != nil {
			t.Fatal(err)
		}
		return r.Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
