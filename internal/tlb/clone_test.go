package tlb

import (
	"testing"
)

func cloneWalker() Walker {
	return WalkerFunc(func(asid ASID, vpn VPN) (PPN, uint64, error) {
		return PPN(vpn) + PPN(asid)<<32, 60, nil
	})
}

// driveAndCompare replays the same access trace on the original and the
// clone and requires identical results and stats at every step.
func driveAndCompare(t *testing.T, a, b TLB, label string) {
	t.Helper()
	trace := []struct {
		asid ASID
		vpn  VPN
	}{
		{1, 0x100}, {1, 0x104}, {2, 0x100}, {1, 0x108}, {2, 0x10c},
		{1, 0x100}, {1, 0x110}, {2, 0x114}, {1, 0x104}, {1, 0x118},
	}
	for i, acc := range trace {
		ra, errA := a.Translate(acc.asid, acc.vpn)
		rb, errB := b.Translate(acc.asid, acc.vpn)
		if (errA == nil) != (errB == nil) || ra != rb {
			t.Fatalf("%s: step %d diverged: %+v (%v) vs %+v (%v)", label, i, ra, errA, rb, errB)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("%s: stats diverged: %+v vs %+v", label, a.Stats(), b.Stats())
	}
}

func TestCloneReplaysIdentically(t *testing.T) {
	w := cloneWalker()
	builders := []struct {
		name string
		mk   func() TLB
	}{
		{"SA", func() TLB { sa, _ := NewSetAssoc(16, 4, w); return sa }},
		{"SP", func() TLB {
			sp, _ := NewSP(16, 4, 2, w)
			sp.SetVictim(1)
			return sp
		}},
		{"RF", func() TLB {
			rf, _ := NewRF(16, 4, w, 42)
			rf.SetVictim(1)
			rf.SetSecureRegion(0x100, 16)
			return rf
		}},
		{"RI", func() TLB {
			// A short re-key period so the replayed pair crosses at least one
			// re-key boundary: the clone must carry the key, epoch, fill
			// counter and RNG position.
			ri, _ := NewRandIdx(16, 4, w, 42, 8)
			return ri
		}},
		{"FS", func() TLB {
			fs, _ := NewFlushOnSwitch(16, 4, w)
			fs.SetVictim(1)
			fs.SetSecureRegion(0x100, 16)
			return fs
		}},
		{"Coalesced", func() TLB { co, _ := NewCoalesced(16, 4, 4, w); return co }},
		{"TwoLevel", func() TLB {
			l2, _ := NewSetAssoc(32, 4, w)
			tl, _ := NewTwoLevel(func(inner Walker) (TLB, error) { return NewSetAssoc(8, 2, inner) }, l2)
			return tl
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			orig := b.mk()
			// Warm the original so the clone must carry non-trivial state
			// (valid entries, LRU stamps, counters, RNG position).
			for i := 0; i < 13; i++ {
				orig.Translate(ASID(i%3), VPN(0x100+i*3))
			}
			clone, err := Clone(orig, w)
			if err != nil {
				t.Fatal(err)
			}
			if clone.Stats() != orig.Stats() {
				t.Fatalf("clone stats %+v != original %+v", clone.Stats(), orig.Stats())
			}
			driveAndCompare(t, orig, clone, b.name)
		})
	}
}

func TestCloneIsIsolated(t *testing.T) {
	w := cloneWalker()
	sa, _ := NewSetAssoc(8, 2, w)
	sa.Translate(1, 0x10)
	clone, err := Clone(sa, w)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not disturb the original's entries.
	clone.FlushAll()
	if !sa.Probe(1, 0x10) {
		t.Error("flushing the clone evicted the original's entry")
	}
	sa.FlushAll()
	clone.Translate(2, 0x20)
	if sa.Probe(2, 0x20) {
		t.Error("filling the clone installed into the original")
	}
}

func TestCloneRFContinuesStream(t *testing.T) {
	// Two RF TLBs cloned from the same warmed original and driven with the
	// same trace must agree with each other (same PRNG state), and reseeding
	// one must leave the other untouched.
	w := cloneWalker()
	rf, _ := NewRF(32, 8, w, 7)
	rf.SetVictim(1)
	rf.SetSecureRegion(0x100, 31)
	for i := 0; i < 20; i++ {
		rf.Translate(1, VPN(0x100+i%31))
	}
	c1, _ := Clone(rf, w)
	c2, _ := Clone(rf, w)
	c2.(*RF).Reseed(999)
	c3, _ := Clone(rf, w)
	driveAndCompare(t, c1, c3, "RF siblings")
	_ = c2 // reseeded independently; only isolation matters
}

func TestCloneRejectsNonCloneable(t *testing.T) {
	var fake fakeTLB
	if _, err := Clone(&fake, cloneWalker()); err == nil {
		t.Error("Clone should reject designs without CloneWith")
	}
	// A TwoLevel over a non-cloneable level must error, not panic.
	tl, err := NewTwoLevel(func(inner Walker) (TLB, error) { return NewSetAssoc(8, 2, inner) }, &fake)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Clone(tl, cloneWalker()); err == nil {
		t.Error("Clone should reject hierarchies with non-cloneable levels")
	}
}

// fakeTLB is a minimal non-cloneable TLB.
type fakeTLB struct{ stats Stats }

func (f *fakeTLB) Translate(asid ASID, vpn VPN) (Result, error) { return Result{PPN: PPN(vpn)}, nil }
func (f *fakeTLB) Probe(ASID, VPN) bool                         { return false }
func (f *fakeTLB) FlushAll()                                    {}
func (f *fakeTLB) FlushASID(ASID)                               {}
func (f *fakeTLB) FlushPage(ASID, VPN) bool                     { return false }
func (f *fakeTLB) FlushPageAllASIDs(VPN) bool                   { return false }
func (f *fakeTLB) Stats() Stats                                 { return f.stats }
func (f *fakeTLB) ResetStats()                                  {}
func (f *fakeTLB) Entries() int                                 { return 1 }
func (f *fakeTLB) Ways() int                                    { return 1 }
func (f *fakeTLB) Name() string                                 { return "fake" }
