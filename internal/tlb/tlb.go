// Package tlb implements the Translation Look-aside Buffer designs studied
// in "Secure TLBs" (Deng, Xiong, Szefer — ISCA 2019): the standard
// Set-Associative (SA) and Fully-Associative (FA) TLBs, and the two secure
// designs proposed by the paper, the Static-Partition (SP) TLB and the
// Random-Fill (RF) TLB.
//
// All designs sit behind the TLB interface. A TLB translates (ASID, virtual
// page number) pairs to physical page numbers, consulting a Walker on a miss.
// Each design reports per-lookup timing (in cycles) and maintains the
// performance counters (in particular the TLB miss counter) that the paper's
// micro security benchmarks and performance evaluation read.
//
// The designs model the L1 D-TLB of the paper's Rocket Core implementation:
//
//   - SetAssoc: plain SA TLB with true LRU per set. A fully-associative TLB
//     is a SetAssoc with a single set; the paper's "1E" configuration is a
//     SetAssoc with one entry.
//   - SP: the Static-Partition TLB of paper §4.1 (Figures 1 and 2). Ways are
//     statically split between a victim partition and an attacker partition;
//     hits behave exactly like the SA TLB, fills are confined to the
//     requesting process's partition, and each partition keeps its own LRU.
//   - RF: the Random-Fill TLB of paper §4.2 (Figures 3 and 4). Entries carry
//     a Sec bit; misses touching the secure region trigger a random fill of a
//     different translation while the requested translation is returned
//     through a side buffer without being installed.
package tlb

import "fmt"

// ASID identifies a process address space (the RISC-V ASID of the paper).
type ASID uint16

// VPN is a virtual page number (virtual address >> 12 for 4 KiB pages).
type VPN uint64

// PPN is a physical page number.
type PPN uint64

// PageShift is log2 of the page size used throughout the simulation.
const PageShift = 12

// PageSize is the memory page size in bytes (4 KiB, as in the paper).
const PageSize = 1 << PageShift

// Walker resolves a translation on a TLB miss, returning the physical page
// number and the number of cycles the walk consumed. It models the hardware
// page table walker; the per-walk cycle cost is what makes a TLB miss "slow".
type Walker interface {
	Walk(asid ASID, vpn VPN) (PPN, uint64, error)
}

// WalkerFunc adapts a function to the Walker interface.
type WalkerFunc func(asid ASID, vpn VPN) (PPN, uint64, error)

// Walk implements Walker.
func (f WalkerFunc) Walk(asid ASID, vpn VPN) (PPN, uint64, error) {
	return f(asid, vpn)
}

// Result describes the outcome of a single Translate call.
type Result struct {
	// PPN is the translation returned to the processor.
	PPN PPN
	// Hit reports whether the requested translation was already present.
	Hit bool
	// Cycles is the total latency of the lookup, including any page walks.
	Cycles uint64
	// Filled reports whether the *requested* translation was installed in
	// the TLB array. Under the RF TLB a secure-region miss is served through
	// the no-fill buffer, so Filled is false even though the access
	// completed.
	Filled bool
	// RandomFilled reports that the RF TLB installed a random translation
	// (the D' of paper §4.2.1) instead of, or in place of, the requested one.
	RandomFilled bool
	// RandomVPN is the randomly chosen page that was filled when
	// RandomFilled is true.
	RandomVPN VPN
	// Evicted reports that a valid entry was displaced by this access.
	Evicted bool
	// EvictedVPN/EvictedASID identify the displaced translation when
	// Evicted is true.
	EvictedVPN  VPN
	EvictedASID ASID
}

// Stats holds the performance counters of a TLB. Misses is the
// tlb_miss_count CSR the paper adds to the Rocket Core.
type Stats struct {
	Lookups     uint64 // total Translate calls
	Hits        uint64 // lookups satisfied from the array
	Misses      uint64 // lookups that required a page walk for the request
	Fills       uint64 // requested translations installed
	NoFills     uint64 // requested translations served via the RF buffer
	RandomFills uint64 // random translations installed by the RF engine
	Evictions   uint64 // valid entries displaced
	Flushes     uint64 // FlushAll/FlushASID/FlushPage operations
	// RandomFillSkips counts random fills that were dropped, either because
	// the RFE drew a page with no pre-generated translation (footnote 5) or
	// because the ablation-only lazy fill engine was starved (§4.2.3).
	RandomFillSkips uint64
	// CoalescedFills counts fills absorbed into an existing block entry of
	// a coalesced TLB (no eviction needed).
	CoalescedFills uint64
}

// MissRate returns Misses/Lookups, or 0 when no lookups happened.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// TLB is the interface shared by every design in this package.
type TLB interface {
	// Translate looks up (asid, vpn), walking the page table on a miss,
	// and returns the translation together with its timing.
	Translate(asid ASID, vpn VPN) (Result, error)
	// Probe reports, without any side effects (no LRU update, no fill, no
	// counter change), whether (asid, vpn) is currently present.
	Probe(asid ASID, vpn VPN) bool
	// FlushAll invalidates every entry (sfence.vma with no operands).
	FlushAll()
	// FlushASID invalidates all entries belonging to one address space.
	FlushASID(asid ASID)
	// FlushPage invalidates the entry for one page of one address space,
	// modelling the targeted invalidation of the paper's Appendix B. It
	// reports whether a valid entry was actually invalidated (the timing
	// observable exploited by the Flush+Flush strategy).
	FlushPage(asid ASID, vpn VPN) bool
	// FlushPageAllASIDs invalidates every address space's entry for one
	// page — the address-based invalidation of Appendix B (e.g. an
	// mprotect-driven shootdown or TLB coherence), which does not check the
	// process ID. It reports whether any valid entry was invalidated.
	FlushPageAllASIDs(vpn VPN) bool
	// Stats returns a snapshot of the performance counters.
	Stats() Stats
	// ResetStats zeroes the performance counters.
	ResetStats()
	// Entries returns the total capacity and Ways the associativity.
	Entries() int
	Ways() int
	// Name identifies the design and geometry, e.g. "SA 4W-32".
	Name() string
}

// SecureTLB is implemented by designs with software-managed security state
// (the extra registers of paper §4.2.2, managed by a trusted OS). The SP TLB
// uses only the victim ASID; the RF TLB uses all three registers.
type SecureTLB interface {
	TLB
	// SetVictim designates the process ID to protect.
	SetVictim(asid ASID)
	// SetSecureRegion sets the secure virtual page range [sbase,
	// sbase+ssize) of the victim process.
	SetSecureRegion(sbase VPN, ssize uint64)
	// Victim returns the currently protected ASID.
	Victim() ASID
	// SecureRegion returns the current secure region.
	SecureRegion() (sbase VPN, ssize uint64)
}

// ASIDObserver is implemented by designs that react to context switches
// themselves (the FS TLB's flush-on-switch). The CPU and the trace VM call
// ObserveASID whenever the process-ID CSR is written, so the design sees
// the switch at OS-write time — before the incoming process's first access
// — rather than inferring it from a later lookup.
type ASIDObserver interface {
	ObserveASID(asid ASID)
}

// FastTranslator is an optional fast path a TLB design may provide: a
// Translate that reports only the lookup latency, with the result returned
// in registers instead of a Result struct copied across the interface
// boundary. Semantics are identical to Translate — same state changes, same
// counters, same errors — only the reporting is narrower. Hot replay loops
// that ignore everything but timing (the trace VM) use it when available.
type FastTranslator interface {
	TranslateCycles(asid ASID, vpn VPN) (uint64, error)
}

// CounterReader is an optional fast path for the two counters the paper's
// benchmark programs read in their timing loops (the tlb_miss_count and
// tlb_hit_count CSRs), returned in registers instead of a full Stats copy.
type CounterReader interface {
	MissHitCounts() (misses, hits uint64)
}

// Timing groups the latency parameters of a TLB lookup. The walker supplies
// the (dominant) miss penalty; HitCycles is the array access time.
type Timing struct {
	// HitCycles is the latency of a lookup that hits (also charged on the
	// array probe that precedes a walk).
	HitCycles uint64
}

// DefaultTiming mirrors the single-cycle L1 D-TLB of the Rocket Core.
var DefaultTiming = Timing{HitCycles: 1}

// entry is one TLB block (slot) as described in paper Table 1. Field order
// packs the struct into 32 bytes so an 8-way set scan touches four cache
// lines instead of five — lookups scan sets on every access, so the layout
// is hot.
type entry struct {
	vpn   VPN
	ppn   PPN
	stamp uint64 // LRU timestamp; larger is more recent
	asid  ASID
	valid bool
	sec   bool // RF TLB Sec bit (paper §4.2.2)
}

// geometry validates and normalises (entries, ways) and precomputes the
// set-index mask.
type geometry struct {
	entries int
	ways    int
	sets    int
	mask    uint64 // sets-1 when sets is a power of two; only then is pow2 set
	pow2    bool
}

func newGeometry(entries, ways int) (geometry, error) {
	if entries <= 0 {
		return geometry{}, fmt.Errorf("tlb: entries must be positive, got %d", entries)
	}
	if ways <= 0 || ways > entries {
		return geometry{}, fmt.Errorf("tlb: ways must be in [1,%d], got %d", entries, ways)
	}
	if entries%ways != 0 {
		return geometry{}, fmt.Errorf("tlb: entries (%d) must be a multiple of ways (%d)", entries, ways)
	}
	g := geometry{entries: entries, ways: ways, sets: entries / ways}
	if g.sets&(g.sets-1) == 0 {
		g.mask, g.pow2 = uint64(g.sets-1), true
	}
	return g, nil
}

// setIndex maps a virtual page number to its set. The paper's TLBs index by
// the low bits of the page number (page index), so pages that share those
// bits "alias" to the same set (Table 1's a_alias). Every lookup and fill
// indexes, making this the simulator's hottest division; all the paper's
// geometries have power-of-two set counts, so it is a mask in practice —
// the modulo remains only for odd hand-built configurations.
func (g geometry) setIndex(vpn VPN) int {
	if g.pow2 {
		return int(uint64(vpn) & g.mask)
	}
	return int(uint64(vpn) % uint64(g.sets))
}

// setMod reduces an arbitrary value modulo the set count, with the same
// power-of-two fast path as setIndex (the RF engine's alias arithmetic
// reduces draws and bases the same way a lookup reduces a page number).
func (g geometry) setMod(x uint64) uint64 {
	if g.pow2 {
		return x & g.mask
	}
	return x % uint64(g.sets)
}

// geomName renders the paper's configuration labels: "FA 32", "2W 32",
// "4W 128", "1E".
func (g geometry) geomName() string {
	switch {
	case g.entries == 1:
		return "1E"
	case g.sets == 1:
		return fmt.Sprintf("FA %d", g.entries)
	default:
		return fmt.Sprintf("%dW %d", g.ways, g.entries)
	}
}
