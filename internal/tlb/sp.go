package tlb

import "fmt"

// SP is the Static-Partition TLB of paper §4.1 (Figures 1 and 2).
//
// The ways of each set are statically split: ways [0, victimWays) form the
// victim partition and ways [victimWays, ways) form the attacker partition.
// The process ID designated by SetVictim selects the victim partition; every
// other process is, by the paper's default policy, treated as a potential
// attacker. TLB hits are identical to the SA TLB — both page number and ASID
// must match, and the lookup searches all ways. On a miss, the fill (and
// therefore any eviction) is confined to the requesting process's partition,
// and each partition maintains its own LRU order, so the victim's address
// translations can never displace the attacker's and vice versa. This
// isolation is what defends the four external miss-based (EM) vulnerability
// types beyond what the SA TLB defends (paper Table 4).
type SP struct {
	geom       geometry
	victimWays int
	timing     Timing
	walker     Walker
	sets       [][]entry
	backing    []entry // contiguous storage behind sets, cleared whole on FlushAll
	clock      uint64
	stats      Stats
	victim     ASID
	hasVictim  bool
	hook       *FaultHook
	// sbase/ssize are accepted for SecureTLB compatibility; the SP design
	// does not use the secure region, only the victim process ID.
	sbase VPN
	ssize uint64
}

var _ SecureTLB = (*SP)(nil)

// NewSP returns an SP TLB. victimWays is the number of ways per set reserved
// for the victim partition; the paper's default is half the ways. It must
// satisfy 0 < victimWays < ways so both partitions are non-empty.
func NewSP(entries, ways, victimWays int, walker Walker) (*SP, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	if victimWays <= 0 || victimWays >= ways {
		return nil, fmt.Errorf("tlb: SP victimWays must be in (0,%d), got %d", ways, victimWays)
	}
	t := &SP{geom: g, victimWays: victimWays, timing: DefaultTiming, walker: walker}
	t.sets, t.backing = newSets(g)
	return t, nil
}

// SetTiming overrides the lookup latency parameters.
func (t *SP) SetTiming(tm Timing) { t.timing = tm }

// Name implements TLB.
func (t *SP) Name() string { return "SP " + t.geom.geomName() }

// Entries implements TLB.
func (t *SP) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *SP) Ways() int { return t.geom.ways }

// VictimWays returns the number of ways per set in the victim partition.
func (t *SP) VictimWays() int { return t.victimWays }

// SetVictimWays moves the partition boundary at run time — the dynamic
// extension §4.1 leaves open ("could be further extended to be dynamic at
// run time"). Entries already resident keep working (hits search all ways),
// but to preserve the isolation guarantee any entry stranded on the wrong
// side of the new boundary is invalidated: a victim entry left in the
// attacker partition would otherwise become evictable by the attacker.
func (t *SP) SetVictimWays(n int) error {
	if n <= 0 || n >= t.geom.ways {
		return fmt.Errorf("tlb: SP victimWays must be in (0,%d), got %d", t.geom.ways, n)
	}
	t.victimWays = n
	if !t.hasVictim {
		return nil
	}
	for s := range t.sets {
		for w := range t.sets[s] {
			e := &t.sets[s][w]
			if !e.valid {
				continue
			}
			isVictim := e.asid == t.victim
			inVictimWays := w < t.victimWays
			if isVictim != inVictimWays {
				*e = entry{}
			}
		}
	}
	return nil
}

// Stats implements TLB.
func (t *SP) Stats() Stats { return t.stats }

// MissHitCounts implements CounterReader.
func (t *SP) MissHitCounts() (uint64, uint64) { return t.stats.Misses, t.stats.Hits }

// ResetStats implements TLB.
func (t *SP) ResetStats() { t.stats = Stats{} }

// SetVictim implements SecureTLB: the given process ID is allocated the
// victim partition from now on. Entries already in the array are unaffected,
// mirroring hardware where the register change does not rewrite the array.
func (t *SP) SetVictim(asid ASID) { t.victim, t.hasVictim = asid, true }

// ClearVictim removes the victim designation; all processes then share the
// attacker partition (the paper's configuration when security is disabled —
// the effective TLB capacity is the attacker partition alone, which is why
// the SP TLB shows roughly 3x the MPKI of the SA TLB in Figure 7e).
func (t *SP) ClearVictim() { t.hasVictim = false }

// Victim implements SecureTLB.
func (t *SP) Victim() ASID { return t.victim }

// HasVictim reports whether a victim process has been designated.
func (t *SP) HasVictim() bool { return t.hasVictim }

// SetSecureRegion implements SecureTLB. The SP design does not act on the
// secure region, but records it so callers can treat SP and RF uniformly.
func (t *SP) SetSecureRegion(sbase VPN, ssize uint64) { t.sbase, t.ssize = sbase, ssize }

// SecureRegion implements SecureTLB.
func (t *SP) SecureRegion() (VPN, uint64) { return t.sbase, t.ssize }

// partition returns the way range [lo, hi) that fills from asid must use.
func (t *SP) partition(asid ASID) (lo, hi int) {
	if t.hasVictim && asid == t.victim {
		return 0, t.victimWays
	}
	return t.victimWays, t.geom.ways
}

func (t *SP) find(s int, asid ASID, vpn VPN) int {
	set := t.sets[s]
	for w := range set {
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			return w
		}
	}
	return -1
}

// Translate implements TLB. Hits search all ways (identical to SA); fills
// choose the LRU way within the requester's partition only (Figure 1).
func (t *SP) Translate(asid ASID, vpn VPN) (Result, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res, err
}

// TranslateCycles implements FastTranslator.
func (t *SP) TranslateCycles(asid ASID, vpn VPN) (uint64, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res.Cycles, err
}

func (t *SP) translate(asid ASID, vpn VPN, res *Result) error {
	t.hook.access()
	t.stats.Lookups++
	s := t.geom.setIndex(vpn)
	t.clock++
	lo, hi := t.partition(asid)
	hit, victim := findOrVictimIn(t.sets[s], asid, vpn, lo, hi)
	if hit >= 0 {
		e := &t.sets[s][hit]
		if t.hook.touchAllowed(s, hit) {
			e.stamp = t.clock
		}
		t.stats.Hits++
		res.PPN, res.Hit, res.Cycles = e.ppn, true, t.timing.HitCycles
		return nil
	}
	t.stats.Misses++
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	res.Cycles = t.timing.HitCycles + walkCycles
	if err != nil {
		return err
	}
	// The walker never touches the array, so the probe's victim way is
	// still current after the walk.
	res.PPN, res.Filled = ppn, true
	w := victim
	action := t.hook.fillAction(s, w)
	if action == FillDrop {
		// Lost array write: the control logic still counts the fill.
		t.stats.Fills++
		return nil
	}
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, stamp: t.clock}
	t.stats.Fills++
	if action == FillDuplicate {
		// The duplicate stays inside the requester's partition: the decoder
		// fault asserts a second way-enable of the same partition.
		if w2 := lo + (w-lo+1)%(hi-lo); w2 != w {
			t.sets[s][w2] = *e
		}
	}
	return nil
}

// Probe implements TLB.
func (t *SP) Probe(asid ASID, vpn VPN) bool {
	return t.find(t.geom.setIndex(vpn), asid, vpn) >= 0
}

// FlushAll implements TLB.
func (t *SP) FlushAll() {
	// The sets share one contiguous backing array (see the constructor),
	// so the whole TLB clears with a single memclr.
	clear(t.backing)
	t.stats.Flushes++
}

// FlushASID implements TLB.
func (t *SP) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = entry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB.
func (t *SP) FlushPage(asid ASID, vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	if w := t.find(s, asid, vpn); w >= 0 {
		t.sets[s][w] = entry{}
		return true
	}
	return false
}

// FlushPageAllASIDs implements TLB. The invalidation is address-based, so
// it crosses the partition boundary: both the victim's and the attacker's
// entries for the page are removed.
func (t *SP) FlushPageAllASIDs(vpn VPN) bool {
	s := t.geom.setIndex(vpn)
	t.stats.Flushes++
	any := false
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.vpn == vpn {
			*e = entry{}
			any = true
		}
	}
	return any
}
