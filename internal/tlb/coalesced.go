package tlb

import (
	"fmt"
	"math/bits"
)

// Coalesced is a COLT-style coalesced TLB [Pham et al., MICRO 2012], the
// extension the paper's §6.4 suggests for recovering the effective capacity
// the SP TLB loses to partitioning ("ideas of coalescing in TLBs could be
// explored to improve the effective TLB size for victim and attacker
// partitions").
//
// Each entry covers an aligned block of up to Span contiguous virtual pages
// whose frames are contiguous in physical memory; a per-page bitmap records
// which translations inside the block have actually been verified by a
// walk. A miss whose translation is frame-contiguous with an already
// resident block entry coalesces into it — no eviction — so workloads with
// spatial locality reach Span× further with the same entry count.
//
// The design optionally keeps the SP TLB's static way partitioning
// (victimWays > 0): hits search all ways, fills stay inside the requesting
// process's partition, so the isolation guarantee is preserved while
// coalescing claws back reach.
type Coalesced struct {
	geom       geometry
	span       int
	victimWays int // 0 = unpartitioned
	timing     Timing
	walker     Walker
	sets       [][]centry
	clock      uint64
	stats      Stats
	victim     ASID
	hasVictim  bool
}

// centry is one coalesced TLB entry.
type centry struct {
	valid    bool
	asid     ASID
	blockVPN VPN    // aligned to span
	basePPN  PPN    // frame of blockVPN when the covered pages are contiguous
	bitmap   uint64 // bit i set: translation for blockVPN+i is resident
	stamp    uint64
}

var _ TLB = (*Coalesced)(nil)

// NewCoalesced returns an unpartitioned coalesced TLB. span must be a power
// of two between 2 and 64.
func NewCoalesced(entries, ways, span int, walker Walker) (*Coalesced, error) {
	return newCoalesced(entries, ways, span, 0, walker)
}

// NewCoalescedSP returns a coalesced TLB with SP-style way partitioning:
// the §6.4 design point. victimWays must satisfy 0 < victimWays < ways.
func NewCoalescedSP(entries, ways, span, victimWays int, walker Walker) (*Coalesced, error) {
	if victimWays <= 0 || victimWays >= ways {
		return nil, fmt.Errorf("tlb: coalesced SP victimWays must be in (0,%d), got %d", ways, victimWays)
	}
	return newCoalesced(entries, ways, span, victimWays, walker)
}

func newCoalesced(entries, ways, span, victimWays int, walker Walker) (*Coalesced, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	if span < 2 || span > 64 || span&(span-1) != 0 {
		return nil, fmt.Errorf("tlb: coalescing span must be a power of two in [2,64], got %d", span)
	}
	t := &Coalesced{geom: g, span: span, victimWays: victimWays, timing: DefaultTiming, walker: walker}
	t.sets = make([][]centry, g.sets)
	backing := make([]centry, g.entries)
	for i := range t.sets {
		t.sets[i], backing = backing[:g.ways], backing[g.ways:]
	}
	return t, nil
}

// Span returns the maximum pages one entry can cover.
func (t *Coalesced) Span() int { return t.span }

// Name implements TLB.
func (t *Coalesced) Name() string {
	if t.victimWays > 0 {
		return fmt.Sprintf("CoSP x%d %s", t.span, t.geom.geomName())
	}
	return fmt.Sprintf("Co x%d %s", t.span, t.geom.geomName())
}

// Entries implements TLB.
func (t *Coalesced) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *Coalesced) Ways() int { return t.geom.ways }

// Stats implements TLB.
func (t *Coalesced) Stats() Stats { return t.stats }

// ResetStats implements TLB.
func (t *Coalesced) ResetStats() { t.stats = Stats{} }

// SetVictim designates the protected process (partitioned variant only).
func (t *Coalesced) SetVictim(asid ASID) { t.victim, t.hasVictim = asid, true }

// block returns the aligned block VPN and the page's offset inside it.
func (t *Coalesced) block(vpn VPN) (VPN, uint) {
	b := vpn &^ VPN(t.span-1)
	return b, uint(vpn - b)
}

// setIndex indexes by block number so every page of a block lands in one
// set (COLT's block-aligned indexing).
func (t *Coalesced) setIndex(block VPN) int {
	return int((uint64(block) / uint64(t.span)) % uint64(t.geom.sets))
}

// find returns the way holding (asid, block), or -1.
func (t *Coalesced) find(s int, asid ASID, block VPN) int {
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.blockVPN == block && e.asid == asid {
			return w
		}
	}
	return -1
}

// partition returns the fill way range for asid.
func (t *Coalesced) partition(asid ASID) (lo, hi int) {
	if t.victimWays == 0 {
		return 0, t.geom.ways
	}
	if t.hasVictim && asid == t.victim {
		return 0, t.victimWays
	}
	return t.victimWays, t.geom.ways
}

// lruCWay picks the fill way among [lo,hi): an invalid way first, else LRU.
func lruCWay(set []centry, lo, hi int) int {
	victim, oldest := lo, ^uint64(0)
	for w := lo; w < hi; w++ {
		if !set[w].valid {
			return w
		}
		if set[w].stamp < oldest {
			victim, oldest = w, set[w].stamp
		}
	}
	return victim
}

// Translate implements TLB.
func (t *Coalesced) Translate(asid ASID, vpn VPN) (Result, error) {
	t.stats.Lookups++
	t.clock++
	block, off := t.block(vpn)
	s := t.setIndex(block)
	if w := t.find(s, asid, block); w >= 0 {
		e := &t.sets[s][w]
		if e.bitmap&(1<<off) != 0 {
			e.stamp = t.clock
			t.stats.Hits++
			return Result{PPN: e.basePPN + PPN(off), Hit: true, Cycles: t.timing.HitCycles}, nil
		}
	}
	t.stats.Misses++
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	if err != nil {
		return Result{Cycles: t.timing.HitCycles + walkCycles}, err
	}
	res := Result{PPN: ppn, Cycles: t.timing.HitCycles + walkCycles, Filled: true}
	// Coalesce into a resident block entry when the new translation is
	// frame-contiguous with it.
	if w := t.find(s, asid, block); w >= 0 {
		e := &t.sets[s][w]
		if e.basePPN+PPN(off) == ppn {
			e.bitmap |= 1 << off
			e.stamp = t.clock
			t.stats.Fills++
			t.stats.CoalescedFills++
			return res, nil
		}
		// Frames diverge: the block cannot be represented by one base;
		// restart the entry around the new translation.
		e.basePPN = ppn - PPN(off)
		e.bitmap = 1 << off
		e.stamp = t.clock
		t.stats.Fills++
		return res, nil
	}
	lo, hi := t.partition(asid)
	w := lo + lruCWay(t.sets[s][lo:hi], 0, hi-lo)
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.blockVPN, e.asid
		t.stats.Evictions++
	}
	*e = centry{valid: true, asid: asid, blockVPN: block, basePPN: ppn - PPN(off), bitmap: 1 << off, stamp: t.clock}
	t.stats.Fills++
	return res, nil
}

// Probe implements TLB.
func (t *Coalesced) Probe(asid ASID, vpn VPN) bool {
	block, off := t.block(vpn)
	s := t.setIndex(block)
	w := t.find(s, asid, block)
	return w >= 0 && t.sets[s][w].bitmap&(1<<off) != 0
}

// CoveredPages returns how many page translations are currently resident
// (the effective reach), which can exceed the entry count thanks to
// coalescing.
func (t *Coalesced) CoveredPages() int {
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid {
				n += bits.OnesCount64(t.sets[s][w].bitmap)
			}
		}
	}
	return n
}

// FlushAll implements TLB.
func (t *Coalesced) FlushAll() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = centry{}
		}
	}
	t.stats.Flushes++
}

// FlushASID implements TLB.
func (t *Coalesced) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = centry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB: only the one page's bit is cleared; the entry
// survives while other pages of the block remain covered.
func (t *Coalesced) FlushPage(asid ASID, vpn VPN) bool {
	t.stats.Flushes++
	block, off := t.block(vpn)
	s := t.setIndex(block)
	w := t.find(s, asid, block)
	if w < 0 || t.sets[s][w].bitmap&(1<<off) == 0 {
		return false
	}
	t.sets[s][w].bitmap &^= 1 << off
	if t.sets[s][w].bitmap == 0 {
		t.sets[s][w] = centry{}
	}
	return true
}

// FlushPageAllASIDs implements TLB.
func (t *Coalesced) FlushPageAllASIDs(vpn VPN) bool {
	t.stats.Flushes++
	block, off := t.block(vpn)
	s := t.setIndex(block)
	any := false
	for w := range t.sets[s] {
		e := &t.sets[s][w]
		if e.valid && e.blockVPN == block && e.bitmap&(1<<off) != 0 {
			e.bitmap &^= 1 << off
			if e.bitmap == 0 {
				*e = centry{}
			}
			any = true
		}
	}
	return any
}
