package tlb

import "testing"

// FuzzRandIdxCipher pins the properties the RI TLB's keyed indexing rests
// on, for arbitrary blocks and keys:
//
//   - the cipher is a permutation for every key: princeDecrypt inverts
//     princeEncrypt exactly (both compositions are the identity), and two
//     distinct blocks never encrypt to the same output under one key;
//   - the keyed set index always lands inside the array, whatever the key,
//     ASID tweak or page number — a malformed index would be an
//     out-of-bounds array write in the TLB's fill path;
//   - re-keying changes the mapping: two distinct keys never agree on a
//     whole window of consecutive blocks, so a key change actually moves
//     translations (the security property the re-key schedule pays its
//     flushes for).
func FuzzRandIdxCipher(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0x2000>>12), uint64(1), uint64(2), uint64(1))
	f.Add(^uint64(0), ^uint64(0), uint64(0x1234_5678_9abc_def0), uint64(0x8000_0000_0000_0000))
	f.Add(uint64(0xdead_beef), uint64(princeRC1), uint64(princeRC2), uint64(3))
	tweak := uint64(princeASIDTweak)
	f.Add(uint64(42), tweak, 7*tweak, uint64(0xfff))

	geom, err := newGeometry(32, 4)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, x, key, key2, delta uint64) {
		ct := princeEncrypt(x, key)
		if got := princeDecrypt(ct, key); got != x {
			t.Fatalf("decrypt(encrypt(%#x, %#x)) = %#x, not the identity", x, key, got)
		}
		if got := princeEncrypt(princeDecrypt(x, key), key); got != x {
			t.Fatalf("encrypt(decrypt(%#x, %#x)) = %#x, not the identity", x, key, got)
		}
		if delta != 0 {
			// Injectivity under one key: a permutation cannot collide.
			if princeEncrypt(x^delta, key) == ct {
				t.Fatalf("encrypt collision under key %#x: %#x and %#x", key, x, x^delta)
			}
		}
		// The set index derived from any cipher output must stay in range,
		// including under the per-ASID key tweak.
		for _, k := range []uint64{key, key ^ uint64(ASID(delta))*princeASIDTweak} {
			if s := geom.setMod(princeEncrypt(x, k)); s >= uint64(geom.entries/geom.ways) {
				t.Fatalf("set index %d out of range for key %#x", s, k)
			}
		}
		if key != key2 {
			// Distinct keys must be distinct permutations. Pointwise the two
			// may collide on isolated blocks, so compare a window of
			// consecutive blocks: agreeing on all of them would mean the two
			// keyed permutations are (locally) the same mapping, which the
			// key additions in every round make structurally impossible.
			same := true
			for i := uint64(0); i < 64 && same; i++ {
				same = princeEncrypt(x+i, key) == princeEncrypt(x+i, key2)
			}
			if same {
				t.Fatalf("keys %#x and %#x agree on 64 consecutive blocks from %#x", key, key2, x)
			}
		}
	})
}
