package tlb

import "errors"

// ErrEmptyDraw is returned when the Random Fill Engine is asked to draw from
// an empty range — a malformed secure-region configuration (e.g. a secure
// entry left behind after the region was reprogrammed to zero size). It is a
// typed, per-lookup error so one misconfigured trial degrades gracefully
// instead of panicking the whole campaign process.
var ErrEmptyDraw = errors.New("tlb: random draw from an empty range")

// rng is a small deterministic pseudo-random number generator used by the
// Random Fill Engine. It is an xorshift64* generator seeded through a
// splitmix64 step, which gives good statistical quality for the uniform
// range draws the RF TLB needs while keeping every experiment exactly
// reproducible from its seed. (The paper's hardware would use a true or
// cryptographic RNG; the security analysis only requires uniformity over the
// documented ranges, which this generator provides.)
type rng struct {
	state uint64
}

// newRNG returns a generator seeded from seed. A zero seed is remapped to a
// fixed non-zero constant since xorshift has an all-zero fixed point.
func newRNG(seed uint64) *rng {
	r := &rng{}
	r.Seed(seed)
	return r
}

// Seed re-seeds the generator.
func (r *rng) Seed(seed uint64) {
	// splitmix64 scramble so that close seeds produce unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.state = z
}

// Uint64 returns the next raw 64-bit value.
func (r *rng) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uintn returns a uniform value in [0, n). A zero n yields ErrEmptyDraw
// without consuming generator state.
func (r *rng) Uintn(n uint64) (uint64, error) {
	if n == 0 {
		return 0, ErrEmptyDraw
	}
	// Rejection sampling to avoid modulo bias; the loop terminates quickly
	// because the acceptance region covers at least half of the range.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n, nil
		}
	}
}
