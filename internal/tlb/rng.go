package tlb

// rng is a small deterministic pseudo-random number generator used by the
// Random Fill Engine. It is an xorshift64* generator seeded through a
// splitmix64 step, which gives good statistical quality for the uniform
// range draws the RF TLB needs while keeping every experiment exactly
// reproducible from its seed. (The paper's hardware would use a true or
// cryptographic RNG; the security analysis only requires uniformity over the
// documented ranges, which this generator provides.)
type rng struct {
	state uint64
}

// newRNG returns a generator seeded from seed. A zero seed is remapped to a
// fixed non-zero constant since xorshift has an all-zero fixed point.
func newRNG(seed uint64) *rng {
	r := &rng{}
	r.Seed(seed)
	return r
}

// Seed re-seeds the generator.
func (r *rng) Seed(seed uint64) {
	// splitmix64 scramble so that close seeds produce unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.state = z
}

// Uint64 returns the next raw 64-bit value.
func (r *rng) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uintn returns a uniform value in [0, n). n must be positive.
func (r *rng) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("tlb: Uintn with n == 0")
	}
	// Rejection sampling to avoid modulo bias; the loop terminates quickly
	// because the acceptance region covers at least half of the range.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}
