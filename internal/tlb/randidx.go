package tlb

import "fmt"

// RandIdx is the Randomized-Index TLB ("RI TLB"), a TLBcoat-style design:
// a set-associative array whose set mapping is keyed by the small
// PRINCE-style block cipher of prince.go instead of the low page-index
// bits. Two properties follow:
//
//   - Per-process indexing: the cipher key is tweaked by the ASID, so the
//     same page number maps to unrelated sets in different processes. An
//     attacker can no longer construct eviction sets from page-index
//     arithmetic — pages that alias in its own address space say nothing
//     about where the victim's translations live.
//   - Periodic re-keying: after RekeyFills fills the array is flushed and a
//     fresh key is drawn from the design's deterministic PRNG stream,
//     bounding how long any statistical profile of one key remains useful.
//     The re-key is modeled in cycles (RekeyCycles, charged to the access
//     that triggers it) and in fill counts — never in wall time — so a
//     campaign trial re-keys at exactly the same lookup in replayed and
//     fully-executed runs.
//
// Hits still require the ASID to match, exactly as in the SA TLB; the
// randomization changes only where translations are placed.
type RandIdx struct {
	geom    geometry
	timing  Timing
	walker  Walker
	sets    [][]entry
	backing []entry // contiguous storage behind sets, cleared whole on flush
	clock   uint64
	stats   Stats
	rng     *rng
	hook    *FaultHook

	key   uint64 // current index key (epoch key; per-ASID tweak applied per lookup)
	epoch uint64 // re-key generation, starting at 0
	fills uint64 // fills performed under the current key

	// RekeyFills is the number of fills after which the next lookup
	// re-keys (flush + fresh key). Zero disables periodic re-keying.
	RekeyFills uint64
	// RekeyCycles is the latency charged to the lookup that performs a
	// re-key: the array invalidation plus the key-register load.
	RekeyCycles uint64
}

var (
	_ TLB            = (*RandIdx)(nil)
	_ FastTranslator = (*RandIdx)(nil)
	_ CounterReader  = (*RandIdx)(nil)
)

// princeASIDTweak spreads the ASID across the key so each process indexes
// under its own permutation (odd multiplier, so distinct ASIDs produce
// distinct tweaks).
const princeASIDTweak = 0xc2b2ae3d27d4eb4f

// NewRandIdx returns an RI TLB whose key stream is seeded with seed and
// which re-keys every rekeyFills fills (0 disables re-keying). The default
// re-key cost is one cycle per invalidated entry plus one key-register load.
func NewRandIdx(entries, ways int, walker Walker, seed uint64, rekeyFills uint64) (*RandIdx, error) {
	g, err := newGeometry(entries, ways)
	if err != nil {
		return nil, err
	}
	if walker == nil {
		return nil, fmt.Errorf("tlb: walker must not be nil")
	}
	t := &RandIdx{
		geom: g, timing: DefaultTiming, walker: walker,
		rng: newRNG(seed), RekeyFills: rekeyFills, RekeyCycles: uint64(entries) + 1,
	}
	t.key = t.rng.Uint64()
	t.sets, t.backing = newSets(g)
	return t, nil
}

// SetTiming overrides the lookup latency parameters.
func (t *RandIdx) SetTiming(tm Timing) { t.timing = tm }

// Reseed restarts the key stream from seed: the current key is replaced by
// the stream's first draw and the re-key schedule (epoch, fill counter)
// resets. Campaign trials reseed so a trial's key sequence is a pure
// function of its trial seed, however trials are sharded.
func (t *RandIdx) Reseed(seed uint64) {
	t.rng.Seed(seed)
	t.key = t.rng.Uint64()
	t.epoch = 0
	t.fills = 0
}

// Name implements TLB.
func (t *RandIdx) Name() string { return "RI " + t.geom.geomName() }

// Entries implements TLB.
func (t *RandIdx) Entries() int { return t.geom.entries }

// Ways implements TLB.
func (t *RandIdx) Ways() int { return t.geom.ways }

// Stats implements TLB.
func (t *RandIdx) Stats() Stats { return t.stats }

// MissHitCounts implements CounterReader.
func (t *RandIdx) MissHitCounts() (uint64, uint64) { return t.stats.Misses, t.stats.Hits }

// ResetStats implements TLB.
func (t *RandIdx) ResetStats() { t.stats = Stats{} }

// keyFor returns the effective cipher key for one process.
func (t *RandIdx) keyFor(asid ASID) uint64 { return t.key ^ uint64(asid)*princeASIDTweak }

// index maps (asid, vpn) to a set through the keyed cipher.
func (t *RandIdx) index(asid ASID, vpn VPN) int {
	return int(t.geom.setMod(princeEncrypt(uint64(vpn), t.keyFor(asid))))
}

// rekeyDue reports whether the next lookup must re-key first.
func (t *RandIdx) rekeyDue() bool { return t.RekeyFills > 0 && t.fills >= t.RekeyFills }

// rekey flushes the array and installs the key stream's next key. The fault
// hook may substitute a stale key (a stuck key register); the flush itself
// is unconditional, as in hardware the invalidation and the key load are
// separate events.
func (t *RandIdx) rekey() {
	next := t.hook.rekey(t.key, t.rng.Uint64())
	clear(t.backing)
	t.stats.Flushes++
	t.key = next
	t.epoch++
	t.fills = 0
}

func (t *RandIdx) find(s int, asid ASID, vpn VPN) int {
	set := t.sets[s]
	for w := range set {
		e := &set[w]
		if e.valid && e.vpn == vpn && e.asid == asid {
			return w
		}
	}
	return -1
}

// Translate implements TLB.
func (t *RandIdx) Translate(asid ASID, vpn VPN) (Result, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res, err
}

// TranslateCycles implements FastTranslator.
func (t *RandIdx) TranslateCycles(asid ASID, vpn VPN) (uint64, error) {
	var res Result
	err := t.translate(asid, vpn, &res)
	return res.Cycles, err
}

func (t *RandIdx) translate(asid ASID, vpn VPN, res *Result) error {
	t.hook.access()
	t.stats.Lookups++
	var rekeyCost uint64
	if t.rekeyDue() {
		t.rekey()
		rekeyCost = t.RekeyCycles
	}
	s := t.index(asid, vpn)
	t.clock++
	hit, victim := findOrVictim(t.sets[s], asid, vpn)
	if hit >= 0 {
		e := &t.sets[s][hit]
		if t.hook.touchAllowed(s, hit) {
			e.stamp = t.clock
		}
		t.stats.Hits++
		res.PPN, res.Hit, res.Cycles = e.ppn, true, t.timing.HitCycles+rekeyCost
		return nil
	}
	t.stats.Misses++
	ppn, walkCycles, err := t.walker.Walk(asid, vpn)
	res.Cycles = t.timing.HitCycles + walkCycles + rekeyCost
	if err != nil {
		return err
	}
	// The walker never touches the array, so the probe's victim way is
	// still current after the walk.
	res.PPN, res.Filled = ppn, true
	w := victim
	action := t.hook.fillAction(s, w)
	if action == FillDrop {
		// Lost array write: the control logic still counts the fill, and
		// the re-key schedule advances with the control logic's view.
		t.stats.Fills++
		t.fills++
		return nil
	}
	e := &t.sets[s][w]
	if e.valid {
		res.Evicted, res.EvictedVPN, res.EvictedASID = true, e.vpn, e.asid
		t.stats.Evictions++
	}
	*e = entry{valid: true, asid: asid, vpn: vpn, ppn: ppn, stamp: t.clock}
	t.stats.Fills++
	t.fills++
	if action == FillDuplicate {
		if w2 := (w + 1) % len(t.sets[s]); w2 != w {
			t.sets[s][w2] = *e
		}
	}
	return nil
}

// Probe implements TLB.
func (t *RandIdx) Probe(asid ASID, vpn VPN) bool {
	return t.find(t.index(asid, vpn), asid, vpn) >= 0
}

// FlushAll implements TLB. An external flush does not advance the re-key
// schedule: the schedule bounds key exposure (fills observed under one
// key), which an array invalidation does not reduce.
func (t *RandIdx) FlushAll() {
	clear(t.backing)
	t.stats.Flushes++
}

// FlushASID implements TLB.
func (t *RandIdx) FlushASID(asid ASID) {
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid && t.sets[s][w].asid == asid {
				t.sets[s][w] = entry{}
			}
		}
	}
	t.stats.Flushes++
}

// FlushPage implements TLB.
func (t *RandIdx) FlushPage(asid ASID, vpn VPN) bool {
	s := t.index(asid, vpn)
	t.stats.Flushes++
	if w := t.find(s, asid, vpn); w >= 0 {
		t.sets[s][w] = entry{}
		return true
	}
	return false
}

// FlushPageAllASIDs implements TLB. Each process indexes the page under its
// own key, so an address-based shootdown cannot compute one target set — it
// must search the whole array, exactly the cost a randomized index imposes
// on real TLB-coherence hardware.
func (t *RandIdx) FlushPageAllASIDs(vpn VPN) bool {
	t.stats.Flushes++
	any := false
	for s := range t.sets {
		for w := range t.sets[s] {
			e := &t.sets[s][w]
			if e.valid && e.vpn == vpn {
				*e = entry{}
				any = true
			}
		}
	}
	return any
}
