// Package workload provides the address-trace generators used by the
// performance evaluation (paper §6.2).
//
// The paper runs libgcrypt RSA alongside four TLB-intensive SPEC 2006
// benchmarks — 453.povray, 471.omnetpp, 483.xalancbmk and 436.cactusADM — on
// an FPGA. SPEC binaries cannot run on this simulator, so each benchmark is
// substituted by a synthetic generator calibrated to its qualitative TLB
// behaviour (the property Figure 7 actually depends on):
//
//   - povray: ray tracing with a compact hot working set — low MPKI that
//     degrades sharply when the effective TLB shrinks below the hot set;
//   - omnetpp: discrete-event simulation chasing pointers across a large
//     heap — TLB-intensive at every size, improving with capacity;
//   - xalancbmk: XSLT processing with a medium hot set and a large cold
//     tail — sensitive to capacity between 32 and 128 entries;
//   - cactusADM: a streaming stencil whose misses are compulsory (each page
//     is touched many times consecutively, then abandoned) — largely
//     insensitive to TLB size, as the paper observes ("it is not affected
//     much by TLB size").
//
// Generators are deterministic given the *rand.Rand they are stepped with.
package workload

import (
	"math/rand"

	"securetlb/internal/tlb"
)

// Generator produces one instruction per Step: either a non-memory
// instruction (mem == false) or a data access to vpn.
type Generator interface {
	Name() string
	Step(r *rand.Rand) (mem bool, vpn tlb.VPN)
	// Reset returns the generator to its initial state (trace position,
	// stream cursor); pseudo-random state lives in the caller's *rand.Rand.
	Reset()
}

// Mixture models a benchmark as a memory-instruction fraction plus a
// two-level locality mixture: hot pages with probability HotProb, a uniform
// cold working set otherwise.
type Mixture struct {
	Nm          string
	MemFraction float64
	HotPages    int
	HotProb     float64
	WorkingSet  int
	Base        tlb.VPN
}

// Name implements Generator.
func (m *Mixture) Name() string { return m.Nm }

// Reset implements Generator (mixtures are stateless).
func (m *Mixture) Reset() {}

// Step implements Generator.
func (m *Mixture) Step(r *rand.Rand) (bool, tlb.VPN) {
	if r.Float64() >= m.MemFraction {
		return false, 0
	}
	if r.Float64() < m.HotProb {
		return true, m.Base + tlb.VPN(r.Intn(m.HotPages))
	}
	return true, m.Base + tlb.VPN(r.Intn(m.WorkingSet))
}

// Streaming models a stencil/streaming benchmark: each page is accessed
// PerPage times in a row before moving to the next, wrapping over the
// working set. Misses are compulsory — one per page visit — so the miss
// rate is independent of TLB capacity.
type Streaming struct {
	Nm          string
	MemFraction float64
	WorkingSet  int
	PerPage     int
	Base        tlb.VPN

	pos, cnt int
}

// Name implements Generator.
func (s *Streaming) Name() string { return s.Nm }

// Reset implements Generator.
func (s *Streaming) Reset() { s.pos, s.cnt = 0, 0 }

// Step implements Generator.
func (s *Streaming) Step(r *rand.Rand) (bool, tlb.VPN) {
	if r.Float64() >= s.MemFraction {
		return false, 0
	}
	vpn := s.Base + tlb.VPN(s.pos)
	s.cnt++
	if s.cnt >= s.PerPage {
		s.cnt = 0
		s.pos = (s.pos + 1) % s.WorkingSet
	}
	return true, vpn
}

// Trace replays a fixed page-access sequence (e.g. an RSA decryption trace)
// with InstrPerAccess-1 non-memory instructions between accesses. It loops
// Repeats times; Done reports completion, which the scheduler uses to end a
// run after the configured number of decryptions.
type Trace struct {
	Nm             string
	Pages          []tlb.VPN
	InstrPerAccess int
	Repeats        int

	pos, gap, done int
	fp             string // memoized WorkloadFingerprint
}

// Name implements Generator.
func (t *Trace) Name() string { return t.Nm }

// Reset implements Generator.
func (t *Trace) Reset() { t.pos, t.gap, t.done = 0, 0, 0 }

// Done reports whether all repeats have been replayed.
func (t *Trace) Done() bool { return t.Repeats > 0 && t.done >= t.Repeats }

// Step implements Generator. A finished trace idles (non-memory
// instructions).
func (t *Trace) Step(r *rand.Rand) (bool, tlb.VPN) {
	if len(t.Pages) == 0 || t.Done() {
		return false, 0
	}
	if t.gap+1 < t.InstrPerAccess {
		t.gap++
		return false, 0
	}
	t.gap = 0
	vpn := t.Pages[t.pos]
	t.pos++
	if t.pos == len(t.Pages) {
		t.pos = 0
		t.done++
	}
	return true, vpn
}

// The four SPEC 2006 stand-ins of §6.2, with disjoint address ranges so
// multiprogrammed runs do not alias.

// Povray models 453.povray.
func Povray() *Mixture {
	return &Mixture{Nm: "453.povray", MemFraction: 0.35, HotPages: 24, HotProb: 0.92, WorkingSet: 640, Base: 0x20000}
}

// Omnetpp models 471.omnetpp.
func Omnetpp() *Mixture {
	return &Mixture{Nm: "471.omnetpp", MemFraction: 0.40, HotPages: 24, HotProb: 0.85, WorkingSet: 8192, Base: 0x40000}
}

// Xalancbmk models 483.xalancbmk.
func Xalancbmk() *Mixture {
	return &Mixture{Nm: "483.xalancbmk", MemFraction: 0.38, HotPages: 26, HotProb: 0.88, WorkingSet: 4096, Base: 0x60000}
}

// CactusADM models 436.cactusADM.
func CactusADM() *Streaming {
	return &Streaming{Nm: "436.cactusADM", MemFraction: 0.45, WorkingSet: 2048, PerPage: 128, Base: 0x80000}
}

// SpecSuite returns the four stand-ins in the paper's order.
func SpecSuite() []Generator {
	return []Generator{Povray(), Omnetpp(), Xalancbmk(), CactusADM()}
}
