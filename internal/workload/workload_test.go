package workload

import (
	"math/rand"
	"testing"

	"securetlb/internal/tlb"
)

func TestMixtureMemFraction(t *testing.T) {
	m := Povray()
	r := rand.New(rand.NewSource(1))
	mems := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if mem, _ := m.Step(r); mem {
			mems++
		}
	}
	frac := float64(mems) / n
	if frac < m.MemFraction-0.02 || frac > m.MemFraction+0.02 {
		t.Errorf("memory fraction = %.3f, want ≈ %.2f", frac, m.MemFraction)
	}
}

func TestMixtureAddressesInRange(t *testing.T) {
	for _, g := range []*Mixture{Povray(), Omnetpp(), Xalancbmk()} {
		r := rand.New(rand.NewSource(2))
		for i := 0; i < 20000; i++ {
			mem, vpn := g.Step(r)
			if !mem {
				continue
			}
			if vpn < g.Base || vpn >= g.Base+tlb.VPN(g.WorkingSet) {
				t.Fatalf("%s: page %#x outside working set", g.Name(), vpn)
			}
		}
	}
}

func TestMixtureLocality(t *testing.T) {
	// Most accesses should land in the hot set.
	g := Povray()
	r := rand.New(rand.NewSource(3))
	hot, total := 0, 0
	for i := 0; i < 50000; i++ {
		mem, vpn := g.Step(r)
		if !mem {
			continue
		}
		total++
		if vpn < g.Base+tlb.VPN(g.HotPages) {
			hot++
		}
	}
	frac := float64(hot) / float64(total)
	if frac < g.HotProb-0.05 {
		t.Errorf("hot fraction %.3f below HotProb %.2f", frac, g.HotProb)
	}
}

func TestStreamingSequential(t *testing.T) {
	s := CactusADM()
	r := rand.New(rand.NewSource(4))
	var pages []tlb.VPN
	for len(pages) < 3*s.PerPage {
		if mem, vpn := s.Step(r); mem {
			pages = append(pages, vpn)
		}
	}
	// Pages must be non-decreasing (mod wraparound) and advance in runs of
	// PerPage.
	for i := 1; i < len(pages); i++ {
		d := int64(pages[i]) - int64(pages[i-1])
		if d != 0 && d != 1 {
			t.Fatalf("stream jumped by %d at %d", d, i)
		}
	}
	first := pages[0]
	s.Reset()
	if mem, vpn := stepUntilMem(s, r); !mem || vpn != s.Base {
		t.Errorf("Reset should restart the stream at base, got %#x (started %#x)", vpn, first)
	}
}

func stepUntilMem(g Generator, r *rand.Rand) (bool, tlb.VPN) {
	for i := 0; i < 1000; i++ {
		if mem, vpn := g.Step(r); mem {
			return true, vpn
		}
	}
	return false, 0
}

func TestStreamingMissRateInsensitiveToTLBSize(t *testing.T) {
	// The cactusADM property the paper calls out: MPKI barely moves with
	// TLB capacity.
	missRate := func(entries, ways int) float64 {
		tl, err := tlb.NewSetAssoc(entries, ways, tlb.WalkerFunc(
			func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) { return tlb.PPN(vpn), 60, nil }))
		if err != nil {
			t.Fatal(err)
		}
		s := CactusADM()
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 200000; i++ {
			if mem, vpn := s.Step(r); mem {
				tl.Translate(1, vpn)
			}
		}
		return tl.Stats().MissRate()
	}
	small, large := missRate(32, 4), missRate(128, 4)
	if small == 0 {
		t.Fatal("expected compulsory misses")
	}
	if small > 1.5*large {
		t.Errorf("streaming miss rate should be size-insensitive: 32→%.4f vs 128→%.4f", small, large)
	}
}

func TestOmnetppMoreTLBIntensiveThanPovray(t *testing.T) {
	missRate := func(g Generator) float64 {
		tl, _ := tlb.NewSetAssoc(32, 4, tlb.WalkerFunc(
			func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) { return tlb.PPN(vpn), 60, nil }))
		r := rand.New(rand.NewSource(6))
		for i := 0; i < 200000; i++ {
			if mem, vpn := g.Step(r); mem {
				tl.Translate(1, vpn)
			}
		}
		return tl.Stats().MissRate()
	}
	if missRate(Omnetpp()) <= missRate(Povray()) {
		t.Error("omnetpp should be more TLB-intensive than povray at 32 entries")
	}
}

func TestTraceReplayAndDone(t *testing.T) {
	tr := &Trace{Nm: "t", Pages: []tlb.VPN{1, 2, 3}, InstrPerAccess: 2, Repeats: 2}
	r := rand.New(rand.NewSource(7))
	var seen []tlb.VPN
	steps := 0
	for !tr.Done() {
		steps++
		if steps > 1000 {
			t.Fatal("trace never completed")
		}
		if mem, vpn := tr.Step(r); mem {
			seen = append(seen, vpn)
		}
	}
	want := []tlb.VPN{1, 2, 3, 1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("saw %v, want %v", seen, want)
		}
	}
	// InstrPerAccess=2 means one gap instruction per access.
	if steps != 12 {
		t.Errorf("steps = %d, want 12 (2 per access)", steps)
	}
	// After Done, Step idles.
	if mem, _ := tr.Step(r); mem {
		t.Error("finished trace must idle")
	}
	tr.Reset()
	if tr.Done() {
		t.Error("Reset should restart the trace")
	}
}

func TestTraceUnbounded(t *testing.T) {
	tr := &Trace{Nm: "loop", Pages: []tlb.VPN{9}, InstrPerAccess: 1, Repeats: 0}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		if tr.Done() {
			t.Fatal("Repeats=0 must never finish")
		}
		tr.Step(r)
	}
}

func TestSpecSuiteDistinctRanges(t *testing.T) {
	suite := SpecSuite()
	if len(suite) != 4 {
		t.Fatalf("suite size %d", len(suite))
	}
	names := map[string]bool{}
	for _, g := range suite {
		if names[g.Name()] {
			t.Errorf("duplicate name %s", g.Name())
		}
		names[g.Name()] = true
	}
	// Address ranges must not overlap (they share a TLB in co-runs).
	type span struct{ lo, hi uint64 }
	var spans []span
	for _, g := range suite {
		switch w := g.(type) {
		case *Mixture:
			spans = append(spans, span{uint64(w.Base), uint64(w.Base) + uint64(w.WorkingSet)})
		case *Streaming:
			spans = append(spans, span{uint64(w.Base), uint64(w.Base) + uint64(w.WorkingSet)})
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Errorf("workload ranges %d and %d overlap", i, j)
			}
		}
	}
}
