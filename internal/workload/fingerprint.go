package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"securetlb/internal/fingerprint"
)

// Fingerprinter is implemented by generators whose behaviour is fully
// determined by a stable configuration string (plus the caller's *rand.Rand).
// The perf package uses it to key captured access streams: two generators
// with equal fingerprints, stepped with equally-seeded rands, produce the
// same (mem, vpn) sequence. A generator that cannot make that guarantee
// simply does not implement the interface and is never stream-cached.
type Fingerprinter interface {
	WorkloadFingerprint() string
}

// WorkloadFingerprint implements Fingerprinter. Every field participates:
// mixtures are stateless, so the configuration is the whole behaviour.
func (m *Mixture) WorkloadFingerprint() string {
	return fmt.Sprintf("mixture|%s|mf=%v|hot=%d|hp=%v|ws=%d|base=%#x",
		m.Nm, m.MemFraction, m.HotPages, m.HotProb, m.WorkingSet, m.Base)
}

// WorkloadFingerprint implements Fingerprinter. Cursor state (pos, cnt) is
// excluded: streams are always captured from Reset.
func (s *Streaming) WorkloadFingerprint() string {
	return fmt.Sprintf("streaming|%s|mf=%v|ws=%d|pp=%d|base=%#x",
		s.Nm, s.MemFraction, s.WorkingSet, s.PerPage, s.Base)
}

// WorkloadFingerprint implements Fingerprinter. The page sequence is part of
// the identity — Name alone is not enough (two "RSA" traces can differ in
// pages or repeat count) — so the pages are digested, not enumerated. The
// digest is memoized per instance (Pages is fixed after construction, like
// the rest of the configuration; only the cursor fields mutate), so sweeps
// that key many cells off one trace hash it once.
func (t *Trace) WorkloadFingerprint() string {
	if t.fp == "" {
		h := fnv.New64a()
		var buf [8]byte
		for _, p := range t.Pages {
			binary.LittleEndian.PutUint64(buf[:], uint64(p))
			h.Write(buf[:])
		}
		d := fingerprint.New().
			Fieldf("trace|%s|ipa=%d|rep=%d|n=%d|pages=%016x",
				t.Nm, t.InstrPerAccess, t.Repeats, len(t.Pages), h.Sum64())
		t.fp = fmt.Sprintf("trace|%s|%s", t.Nm, d.Sum())
	}
	return t.fp
}
