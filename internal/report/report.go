// Package report renders the experiment results as aligned text tables
// matching the row/column structure of the paper's tables, for the cmd
// tools and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table renders an aligned text table with a header row and a separator.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the paper's two-decimal style, rendering exact
// zeros and ones compactly.
func F(v float64) string {
	switch v {
	case 0:
		return "0"
	case 1:
		return "1"
	}
	return fmt.Sprintf("%.2f", v)
}

// Pct formats a percentage with sign.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// Check renders a defended/vulnerable marker.
func Check(defended bool) string {
	if defended {
		return "defended"
	}
	return "VULNERABLE"
}

// Quarantine renders the quarantined-trials summary the campaign CLIs print
// after their result tables. It returns "" when nothing was quarantined, so
// callers can print it unconditionally.
func Quarantine(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Quarantined trials (excluded from statistics; reproduce with the recorded seed):\n")
	b.WriteString(Table([]string{"Design", "Vulnerability", "Behaviour", "Trial", "Seed", "Kind", "Reason"}, rows))
	return b.String()
}

// FaultMatrix renders the differential fault-injection matrix: one row per
// (site, design) cell with its per-trial classification. The silent column
// is the acceptance gate — any non-zero entry means a fault changed a
// trial's outcome without being detected.
func FaultMatrix(rows [][]string) string {
	var b strings.Builder
	b.WriteString("Fault matrix (per injected site: how each faulted trial was accounted for):\n")
	b.WriteString(Table([]string{"Site", "Design", "Trials", "Detected", "Assertions", "Benign", "Latent", "SILENT", "Example fault"}, rows))
	return b.String()
}
