package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the golden files from the current renderer output:
//
//	go test ./internal/report/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenCases pins the exact rendering of every table shape the campaign
// CLIs and tlbserved emit. The CLIs' output is a published interface — the
// serve-smoke and resume tests compare it byte-for-byte — so any formatting
// drift must be a deliberate golden-file update, not an accident.
var goldenCases = []struct {
	name   string
	render func() string
}{
	{"table", func() string {
		return Table(
			[]string{"Strategy", "Vulnerability", "nMM", "p1*", "p1", "C*", "C", "verdict"},
			[][]string{
				{"TLB Flush + Reload", "Ad -> Vu -> Aa (fast)", "500", "1", "1", "0", "0", "defended"},
				{"Evict + Time", "Vd -> Vu -> Va (slow)", "500", "0.52", "0.49", "1", "0.03", "VULNERABLE"},
				{"Prime + Probe", "Ad -> Vu -> Aa (fast)", "500", "0", "0", "0.97", "0.95", "VULNERABLE"},
			},
		)
	}},
	{"table_ragged", func() string {
		return Table([]string{"a", "b", "c"}, [][]string{{"only"}, {"x", "y", "z"}})
	}},
	{"quarantine", func() string {
		return Quarantine([][]string{
			{"SA TLB", "TLB Flush + Reload", "mapped", "3", "0x1234", "invariant", "lru-touch: stamp not refreshed"},
			{"RF TLB", "Evict + Time", "not-mapped", "17", "0xbeef", "panic", "runtime error: index out of range"},
		})
	}},
	{"fault_matrix", func() string {
		return FaultMatrix([][]string{
			{"tlb-tag-flip", "SA TLB", "16", "invariant:10", "single-transition:10", "0", "6", "0", "flipped VPN bit 7"},
			{"ptw-ppn-flip", "RF TLB", "16", "exit-code:16", "-", "0", "0", "0", "flipped PPN bit 3"},
			{"timer-skew", "SP TLB", "16", "0", "-", "16", "0", "0", "cycle count +2"},
		})
	}},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.render()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendering drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
