package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "longheader"}, [][]string{
		{"xxxx", "y"},
		{"z", "w"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a   ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
	// All data lines should have identical width for the first column.
	if lines[2][:6] != "xxxx  " || lines[3][:6] != "z     " {
		t.Errorf("column misaligned: %q / %q", lines[2], lines[3])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Error("ragged row dropped")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{0: "0", 1: "1", 0.5: "0.50", 0.666: "0.67"}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPctAndCheck(t *testing.T) {
	if Pct(6.23) != "+6.2%" || Pct(-1.04) != "-1.0%" {
		t.Errorf("Pct wrong: %q %q", Pct(6.23), Pct(-1.04))
	}
	if Check(true) != "defended" || Check(false) != "VULNERABLE" {
		t.Error("Check wrong")
	}
}

func TestQuarantineEmpty(t *testing.T) {
	// Callers print the section unconditionally; with nothing quarantined it
	// must contribute no output at all, not an empty table.
	if got := Quarantine(nil); got != "" {
		t.Errorf("Quarantine(nil) = %q, want empty", got)
	}
	if got := Quarantine([][]string{}); got != "" {
		t.Errorf("Quarantine(empty) = %q, want empty", got)
	}
}

func TestQuarantineRendersRows(t *testing.T) {
	rows := [][]string{
		{"SA TLB", "Ad -> Vu -> Aa (fast)", "mapped", "3", "0x1234", "invariant", "lru-touch: stamp not refreshed"},
		{"RF TLB", "Vd -> Vu -> Va (fast)", "not-mapped", "17", "0xbeef", "panic", "runtime error"},
	}
	out := Quarantine(rows)
	for _, want := range []string{"Quarantined trials", "Design", "Kind", "invariant", "0xbeef", "not-mapped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3+len(rows) { // title + header + separator + rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestFaultMatrixRendersRows(t *testing.T) {
	out := FaultMatrix([][]string{
		{"tlb-tag-flip", "SA TLB", "16", "invariant:10", "single-transition:10", "0", "6", "0", "flipped VPN bit 7"},
	})
	for _, want := range []string{"Fault matrix", "SILENT", "tlb-tag-flip", "invariant:10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
