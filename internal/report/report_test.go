package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "longheader"}, [][]string{
		{"xxxx", "y"},
		{"z", "w"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a   ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
	// All data lines should have identical width for the first column.
	if lines[2][:6] != "xxxx  " || lines[3][:6] != "z     " {
		t.Errorf("column misaligned: %q / %q", lines[2], lines[3])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Error("ragged row dropped")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{0: "0", 1: "1", 0.5: "0.50", 0.666: "0.67"}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPctAndCheck(t *testing.T) {
	if Pct(6.23) != "+6.2%" || Pct(-1.04) != "-1.0%" {
		t.Errorf("Pct wrong: %q %q", Pct(6.23), Pct(-1.04))
	}
	if Check(true) != "defended" || Check(false) != "VULNERABLE" {
		t.Error("Check wrong")
	}
}
