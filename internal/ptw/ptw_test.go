package ptw

import (
	"errors"
	"testing"
	"testing/quick"

	"securetlb/internal/mem"
	"securetlb/internal/tlb"
)

func newPT(latency uint64) *PageTables {
	return New(mem.New(latency), 0x1000)
}

func TestMapAndWalk(t *testing.T) {
	pt := newPT(20)
	if err := pt.Map(1, 0x42, 0x999); err != nil {
		t.Fatal(err)
	}
	ppn, cycles, err := pt.Walk(1, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if ppn != 0x999 {
		t.Errorf("ppn = %#x, want 0x999", ppn)
	}
	if cycles != 3*20 {
		t.Errorf("walk cycles = %d, want 60 (3 levels x 20)", cycles)
	}
}

func TestWalkUnmappedFaults(t *testing.T) {
	pt := newPT(20)
	pt.Map(1, 0x42, 0x999)
	_, _, err := pt.Walk(1, 0x43)
	if !errors.Is(err, ErrPageFault) {
		t.Errorf("err = %v, want page fault", err)
	}
	_, _, err = pt.Walk(2, 0x42)
	if !errors.Is(err, ErrPageFault) {
		t.Errorf("unknown ASID err = %v, want page fault", err)
	}
	if pt.Faults != 2 || pt.Walks != 2 {
		t.Errorf("counters: walks=%d faults=%d", pt.Walks, pt.Faults)
	}
}

func TestASIDIsolation(t *testing.T) {
	pt := newPT(0)
	pt.Map(1, 0x100, 0xaaa)
	pt.Map(2, 0x100, 0xbbb)
	p1, _ := pt.Translate(1, 0x100)
	p2, _ := pt.Translate(2, 0x100)
	if p1 != 0xaaa || p2 != 0xbbb {
		t.Errorf("translations = %#x, %#x", p1, p2)
	}
}

func TestRemapOverwrites(t *testing.T) {
	pt := newPT(0)
	pt.Map(1, 0x10, 0x111)
	pt.Map(1, 0x10, 0x222)
	p, err := pt.Translate(1, 0x10)
	if err != nil || p != 0x222 {
		t.Errorf("after remap: (%#x, %v)", p, err)
	}
}

func TestUnmap(t *testing.T) {
	pt := newPT(0)
	pt.Map(1, 0x10, 0x111)
	ok, err := pt.Unmap(1, 0x10)
	if err != nil || !ok {
		t.Fatalf("Unmap = (%v, %v)", ok, err)
	}
	if _, err := pt.Translate(1, 0x10); !errors.Is(err, ErrPageFault) {
		t.Error("translation should be gone")
	}
	ok, _ = pt.Unmap(1, 0x10)
	if ok {
		t.Error("second Unmap should report false")
	}
	if ok, _ := pt.Unmap(9, 0x10); ok {
		t.Error("Unmap in unknown ASID should report false")
	}
}

func TestMapAllSharesFrames(t *testing.T) {
	pt := newPT(0)
	if err := pt.MapAll([]tlb.ASID{0, 1}, 0x77, 0xccc); err != nil {
		t.Fatal(err)
	}
	p0, _ := pt.Translate(0, 0x77)
	p1, _ := pt.Translate(1, 0x77)
	if p0 != 0xccc || p1 != p0 {
		t.Errorf("shared mapping differs: %#x vs %#x", p0, p1)
	}
}

func TestMapRange(t *testing.T) {
	pt := newPT(0)
	first, err := pt.MapRange([]tlb.ASID{0, 1}, 0x200, 5)
	if err != nil {
		t.Fatal(err)
	}
	frames := map[tlb.PPN]bool{}
	for i := tlb.VPN(0); i < 5; i++ {
		p0, err := pt.Translate(0, 0x200+i)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		p1, _ := pt.Translate(1, 0x200+i)
		if p0 != p1 {
			t.Errorf("page %d not shared", i)
		}
		if frames[p0] {
			t.Errorf("frame %#x reused", p0)
		}
		frames[p0] = true
		if i == 0 && uint64(p0) != first {
			t.Errorf("first frame %#x, reported %#x", p0, first)
		}
	}
	if _, err := pt.MapRange(nil, 0, 0); err == nil {
		t.Error("zero-length MapRange should error")
	}
}

func TestVPNRangeCheck(t *testing.T) {
	pt := newPT(0)
	if err := pt.Map(1, tlb.VPN(MaxVPN)+1, 1); err == nil {
		t.Error("out-of-range VPN should be rejected")
	}
	if err := pt.Map(1, tlb.VPN(MaxVPN), 1); err != nil {
		t.Errorf("max VPN should map: %v", err)
	}
}

func TestWalkerInterfaceWithTLB(t *testing.T) {
	// End-to-end: a TLB backed by real page tables.
	pt := newPT(20)
	pt.Map(1, 0x5, 0x800)
	sa, err := tlb.NewSetAssoc(8, 2, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sa.Translate(1, 0x5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit || r.PPN != 0x800 || r.Cycles != 61 {
		t.Errorf("miss through walker: %+v", r)
	}
	r, _ = sa.Translate(1, 0x5)
	if !r.Hit || r.Cycles != 1 {
		t.Errorf("hit: %+v", r)
	}
}

func TestQuickMapWalkAgree(t *testing.T) {
	pt := newPT(0)
	mapped := map[[2]uint64]uint64{}
	ppnCounter := uint64(0x10000)
	f := func(asidRaw uint8, vpnRaw uint32) bool {
		asid := tlb.ASID(asidRaw % 4)
		vpn := tlb.VPN(uint64(vpnRaw) % (MaxVPN + 1))
		ppnCounter++
		if err := pt.Map(asid, vpn, ppnCounter); err != nil {
			return false
		}
		mapped[[2]uint64{uint64(asid), uint64(vpn)}] = ppnCounter
		// All previously installed mappings must still resolve correctly.
		for k, want := range mapped {
			got, err := pt.Translate(tlb.ASID(k[0]), tlb.VPN(k[1]))
			if err != nil || uint64(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTableStructureSharing(t *testing.T) {
	// Mapping pages in the same 512-page region must reuse intermediate
	// tables: 4 mappings cost 1 root + 2 intermediates + 0 extra frames here.
	pt := newPT(0)
	before := pt.nextPPN
	for i := tlb.VPN(0); i < 4; i++ {
		pt.Map(1, i, 0x500+uint64(i))
	}
	allocated := pt.nextPPN - before
	if allocated != 3 { // root, level-1 table, level-2 table
		t.Errorf("allocated %d table pages, want 3", allocated)
	}
}

func TestMapAllPropagatesErrors(t *testing.T) {
	pt := newPT(0)
	if err := pt.MapAll([]tlb.ASID{1}, tlb.VPN(MaxVPN)+5, 1); err == nil {
		t.Error("out-of-range vpn should propagate from MapAll")
	}
}

func TestWalkSuperpageConflicts(t *testing.T) {
	// Corrupt the tables by hand: write a leaf PTE at an intermediate level
	// and check both Map and Walk reject it.
	m := mem.New(0)
	pt := New(m, 0x1000)
	if err := pt.Map(1, 0x42, 0x999); err != nil {
		t.Fatal(err)
	}
	root := pt.roots[1]
	// Mark the root's level-0 entry (index of vpn 0x42 at level 0 is 0) as
	// a leaf, simulating a superpage mapping.
	addr := pteAddr(root, vpnIndex(0x42, 0))
	pte, _, _ := m.Load64(addr)
	m.Store64(addr, pte|pteLeaf)
	if _, _, err := pt.Walk(1, 0x42); err == nil {
		t.Error("walk through unexpected superpage should fault")
	}
	if err := pt.Map(1, 0x42, 0x111); err == nil {
		t.Error("mapping over a superpage should error")
	}
	// Non-leaf at the last level also faults.
	m.Store64(addr, pte) // restore intermediate
	pt2 := New(mem.New(0), 0x2000)
	pt2.Map(2, 0x1, 0x100)
	leafTable := func() uint64 {
		table := pt2.roots[2]
		for level := 0; level < Levels-1; level++ {
			pte, _, _ := pt2.mem.Load64(pteAddr(table, vpnIndex(0x1, level)))
			table = pte >> ppnShift
		}
		return table
	}()
	leafAddr := pteAddr(leafTable, vpnIndex(0x1, Levels-1))
	lp, _, _ := pt2.mem.Load64(leafAddr)
	pt2.mem.Store64(leafAddr, lp&^uint64(pteLeaf))
	if _, _, err := pt2.Walk(2, 0x1); err == nil {
		t.Error("non-leaf PTE at the last level should fault")
	}
}

func TestWalkChargesPartialCycles(t *testing.T) {
	pt := newPT(20)
	pt.Map(1, 0x42, 0x999)
	// Fault at level 2 (sibling page in same 512-group shares two levels).
	_, cycles, err := pt.Walk(1, 0x43)
	if err == nil {
		t.Fatal("expected fault")
	}
	if cycles != 60 {
		t.Errorf("faulting walk charged %d cycles, want 60 (all three reads happened)", cycles)
	}
	// Fault at level 0 for a distant address: only one read.
	_, cycles, err = pt.Walk(1, tlb.VPN(1)<<18)
	if err == nil {
		t.Fatal("expected fault")
	}
	if cycles != 20 {
		t.Errorf("level-0 fault charged %d cycles, want 20", cycles)
	}
}
