// Package ptw implements the in-memory page tables and the hardware page
// table walker of the simulated machine.
//
// The layout follows RISC-V Sv39: a 39-bit virtual address with a 27-bit
// virtual page number split into three 9-bit indices, walked through three
// levels of 512-entry tables. The tables live inside the simulated physical
// memory (package mem), so every walk performs three real memory reads and
// pays three memory latencies — the "slow" timing that TLB attacks observe.
// Per the paper (footnote 3), there is no page-walk cache: every miss pays
// the full walk.
//
// Each address space (ASID) has its own root table. The micro security
// benchmarks switch the process ID CSR while executing a single binary, so
// the same virtual pages are typically mapped into both the attacker's and
// the victim's address space; MapAll supports that directly.
package ptw

import (
	"fmt"

	"securetlb/internal/mem"
	"securetlb/internal/tlb"
)

// Levels is the number of page-table levels (Sv39).
const Levels = 3

// indexBits is the number of VPN bits consumed per level.
const indexBits = 9

// entriesPerTable is the number of PTEs in one table page.
const entriesPerTable = 1 << indexBits

// vpnBits is the total virtual page number width.
const vpnBits = Levels * indexBits

// MaxVPN is the largest representable virtual page number.
const MaxVPN = (1 << vpnBits) - 1

// PTE bit layout (a simplified Sv39 PTE):
//
//	bit 0     V (valid)
//	bit 1     L (leaf; intermediate entries point at the next table)
//	bits 10+  PPN
const (
	pteValid = 1 << 0
	pteLeaf  = 1 << 1
	ppnShift = 10
)

// ErrPageFault is returned (wrapped) when a translation does not exist.
var ErrPageFault = fmt.Errorf("ptw: page fault")

// PageTables manages the per-ASID radix page tables inside a physical
// memory, and implements tlb.Walker.
type PageTables struct {
	mem   *mem.Memory
	roots map[tlb.ASID]uint64 // root table PPN per address space
	// nextPPN is a bump allocator for physical pages (tables and frames).
	nextPPN uint64
	// Walks counts completed walk attempts (faulting or not).
	Walks uint64
	// Faults counts walks that ended in a page fault.
	Faults uint64
	// walkHook, when set, may rewrite a successful walk's result (fault
	// injection: a corrupted PTE read). See SetWalkHook.
	walkHook WalkHook
}

// WalkHook intercepts successful page-table walks for fault injection. It
// receives the walk's inputs and the true result and returns the (possibly
// corrupted) PPN and error actually delivered to the TLB. Faulting walks are
// not intercepted — they already fail loudly.
type WalkHook func(asid tlb.ASID, vpn tlb.VPN, ppn tlb.PPN) (tlb.PPN, error)

// SetWalkHook installs h as the walker's fault-injection hook, or removes it
// when h is nil. Clones made with CloneWith do not inherit the hook: fault
// injection is per-machine campaign state.
func (p *PageTables) SetWalkHook(h WalkHook) { p.walkHook = h }

// New returns a PageTables allocating physical pages starting at firstPPN.
func New(m *mem.Memory, firstPPN uint64) *PageTables {
	return &PageTables{mem: m, roots: make(map[tlb.ASID]uint64), nextPPN: firstPPN}
}

// CloneWith returns a replica of the page-table bookkeeping bound to a new
// physical memory — normally a mem.Memory.Clone() of the original, since
// the table contents themselves live inside physical memory. Together the
// two clones give a worker an isolated, fully-mapped address-translation
// substrate without re-running any Map calls.
func (p *PageTables) CloneWith(m *mem.Memory) *PageTables {
	roots := make(map[tlb.ASID]uint64, len(p.roots))
	for asid, r := range p.roots {
		roots[asid] = r
	}
	return &PageTables{
		mem:     m,
		roots:   roots,
		nextPPN: p.nextPPN,
		Walks:   p.Walks,
		Faults:  p.Faults,
	}
}

// AllocPPN hands out a fresh physical page number. Loaders use it to place
// program data; the walker uses it internally for table pages.
func (p *PageTables) AllocPPN() uint64 {
	ppn := p.nextPPN
	p.nextPPN++
	return ppn
}

// root returns (allocating if needed) the root table PPN for an ASID.
func (p *PageTables) root(asid tlb.ASID) uint64 {
	r, ok := p.roots[asid]
	if !ok {
		r = p.AllocPPN()
		p.roots[asid] = r
	}
	return r
}

// vpnIndex extracts the level-th 9-bit index (level 0 is the root level).
func vpnIndex(vpn tlb.VPN, level int) uint64 {
	shift := uint((Levels - 1 - level) * indexBits)
	return (uint64(vpn) >> shift) & (entriesPerTable - 1)
}

// pteAddr is the physical byte address of entry idx in table page tablePPN.
func pteAddr(tablePPN, idx uint64) uint64 {
	return tablePPN<<mem.PageShift + idx*8
}

// Map installs the translation vpn → ppn in asid's address space, creating
// intermediate tables as needed. Mapping the same page twice overwrites the
// leaf (remap).
func (p *PageTables) Map(asid tlb.ASID, vpn tlb.VPN, ppn uint64) error {
	if uint64(vpn) > MaxVPN {
		return fmt.Errorf("ptw: vpn %#x exceeds Sv39 range", vpn)
	}
	table := p.root(asid)
	for level := 0; level < Levels-1; level++ {
		addr := pteAddr(table, vpnIndex(vpn, level))
		pte, _, err := p.mem.Load64(addr)
		if err != nil {
			return err
		}
		if pte&pteValid == 0 {
			next := p.AllocPPN()
			if _, err := p.mem.Store64(addr, next<<ppnShift|pteValid); err != nil {
				return err
			}
			table = next
			continue
		}
		if pte&pteLeaf != 0 {
			return fmt.Errorf("ptw: vpn %#x overlaps a superpage mapping", vpn)
		}
		table = pte >> ppnShift
	}
	addr := pteAddr(table, vpnIndex(vpn, Levels-1))
	_, err := p.mem.Store64(addr, ppn<<ppnShift|pteValid|pteLeaf)
	return err
}

// MapAll installs the same translation in several address spaces, as the
// micro security benchmarks need when the attacker and victim "processes"
// share one test binary.
func (p *PageTables) MapAll(asids []tlb.ASID, vpn tlb.VPN, ppn uint64) error {
	for _, a := range asids {
		if err := p.Map(a, vpn, ppn); err != nil {
			return err
		}
	}
	return nil
}

// MapRange maps n consecutive pages starting at vpn to freshly allocated
// frames, in each listed address space (all spaces share the same frames).
// It returns the first allocated PPN.
func (p *PageTables) MapRange(asids []tlb.ASID, vpn tlb.VPN, n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("ptw: MapRange of zero pages")
	}
	first := uint64(0)
	for i := uint64(0); i < n; i++ {
		ppn := p.AllocPPN()
		if i == 0 {
			first = ppn
		}
		if err := p.MapAll(asids, vpn+tlb.VPN(i), ppn); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// Unmap removes the translation for vpn in asid's space, if present. It
// reports whether a mapping existed. Intermediate tables are left in place.
func (p *PageTables) Unmap(asid tlb.ASID, vpn tlb.VPN) (bool, error) {
	table, ok := p.roots[asid]
	if !ok {
		return false, nil
	}
	for level := 0; level < Levels-1; level++ {
		pte, _, err := p.mem.Load64(pteAddr(table, vpnIndex(vpn, level)))
		if err != nil {
			return false, err
		}
		if pte&pteValid == 0 {
			return false, nil
		}
		table = pte >> ppnShift
	}
	addr := pteAddr(table, vpnIndex(vpn, Levels-1))
	pte, _, err := p.mem.Load64(addr)
	if err != nil {
		return false, err
	}
	if pte&pteValid == 0 {
		return false, nil
	}
	_, err = p.mem.Store64(addr, 0)
	return true, err
}

// Walk implements tlb.Walker: a three-level walk costing one memory access
// per level. A missing translation returns a wrapped ErrPageFault; the
// cycles spent on the partial walk are still reported, since a faulting
// access in hardware pays for the levels it traversed.
func (p *PageTables) Walk(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
	p.Walks++
	var cycles uint64
	table, ok := p.roots[asid]
	if !ok {
		p.Faults++
		return 0, cycles, fmt.Errorf("%w: no address space for ASID %d", ErrPageFault, asid)
	}
	for level := 0; level < Levels; level++ {
		pte, lat, err := p.mem.Load64(pteAddr(table, vpnIndex(vpn, level)))
		cycles += lat
		if err != nil {
			p.Faults++
			return 0, cycles, err
		}
		if pte&pteValid == 0 {
			p.Faults++
			return 0, cycles, fmt.Errorf("%w: vpn %#x (asid %d, level %d)", ErrPageFault, vpn, asid, level)
		}
		if level == Levels-1 {
			if pte&pteLeaf == 0 {
				p.Faults++
				return 0, cycles, fmt.Errorf("%w: non-leaf at last level for vpn %#x", ErrPageFault, vpn)
			}
			ppn := tlb.PPN(pte >> ppnShift)
			if p.walkHook != nil {
				var herr error
				ppn, herr = p.walkHook(asid, vpn, ppn)
				if herr != nil {
					p.Faults++
					return 0, cycles, herr
				}
			}
			return ppn, cycles, nil
		}
		if pte&pteLeaf != 0 {
			p.Faults++
			return 0, cycles, fmt.Errorf("%w: unexpected superpage for vpn %#x", ErrPageFault, vpn)
		}
		table = pte >> ppnShift
	}
	// The loop always returns at the leaf level; reaching here would mean a
	// corrupted level counter. Surface it as a fault rather than a panic so
	// one bad walk degrades a single trial, not the process.
	p.Faults++
	return 0, cycles, fmt.Errorf("%w: walk overran %d levels for vpn %#x", ErrPageFault, Levels, vpn)
}

// Translate resolves vpn in asid's space without charging cycles, for
// loaders and tests.
func (p *PageTables) Translate(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, error) {
	ppn, _, err := p.Walk(asid, vpn)
	return ppn, err
}

var _ tlb.Walker = (*PageTables)(nil)
