package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func TestSpecNormalizeClearsForeignFields(t *testing.T) {
	perf := Spec{Kind: KindPerf, Design: "sa", Trials: 77, Decrypts: 50}
	clean := Spec{Kind: KindPerf, Design: "sa", Decrypts: 50}
	a, err := perf.ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := clean.ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("stray secbench field fragmented the perf fingerprint: %s vs %s", a, b)
	}
	sec := Spec{Kind: KindSecbench}.Normalize()
	if sec.Design != "all" || sec.Trials != 500 {
		t.Errorf("secbench defaults not filled: %+v", sec)
	}
	if p := (Spec{Kind: KindPerf}).Normalize(); p.Decrypts != 50 || p.Seed != 1 {
		t.Errorf("perf defaults not filled: %+v", p)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "areabench", Design: "sa", Trials: 1},
		{Kind: KindSecbench, Design: "xx", Trials: 1},
		{Kind: KindSecbench, Design: "sa", Trials: -5},
		{Kind: KindPerf, Design: "sa", Decrypts: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", s)
		}
	}
	if err := (Spec{Kind: KindSecbench, Design: "rf"}).Normalize().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// blockingRunner runs jobs that block until released, so tests can observe
// the live states.
type blockingRunner struct {
	mu       sync.Mutex
	started  chan string // receives the spec kind when a run starts
	release  chan struct{}
	runs     int
	failWith error // when non-nil, runs fail immediately with this error
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 16), release: make(chan struct{})}
}

func (r *blockingRunner) Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
	r.mu.Lock()
	r.runs++
	fail := r.failWith
	r.mu.Unlock()
	r.started <- spec.Kind
	if fail != nil {
		return nil, fail
	}
	publish(Event{Type: "progress", Units: 1})
	select {
	case <-r.release:
		return json.RawMessage(`{"ok":true}`), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (r *blockingRunner) runCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

func waitState(t *testing.T, q *Queue, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, ok := q.Get(id)
		if ok && j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %s)", id, want, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitCoalesceThenCache(t *testing.T) {
	r := newBlockingRunner()
	q, err := Open(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Close()
	spec := Spec{Kind: KindSecbench, Design: "sa", Trials: 3}

	first, coalesced, cached, err := q.Submit(spec)
	if err != nil || coalesced || cached {
		t.Fatalf("first submit: coalesced=%v cached=%v err=%v", coalesced, cached, err)
	}
	<-r.started
	second, coalesced, cached, err := q.Submit(spec)
	if err != nil || !coalesced || cached {
		t.Fatalf("second submit: coalesced=%v cached=%v err=%v", coalesced, cached, err)
	}
	if second.ID != first.ID {
		t.Fatalf("coalesced submit got a different job: %s vs %s", second.ID, first.ID)
	}
	if second.Coalesced != 1 {
		t.Errorf("coalesce counter = %d, want 1", second.Coalesced)
	}

	close(r.release)
	done := waitState(t, q, first.ID, StateDone)
	if string(done.Result) != `{"ok":true}` {
		t.Errorf("result = %s", done.Result)
	}
	third, coalesced, cached, err := q.Submit(spec)
	if err != nil || coalesced || !cached {
		t.Fatalf("third submit: coalesced=%v cached=%v err=%v", coalesced, cached, err)
	}
	if string(third.Result) != `{"ok":true}` {
		t.Errorf("cached result = %s", third.Result)
	}
	if r.runCount() != 1 {
		t.Errorf("runner executed %d times, want exactly 1", r.runCount())
	}
	m := q.Metrics()
	if m.Submissions != 3 || m.CoalesceHits != 1 || m.CacheHits != 1 || m.Executions != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestCancelDrainsToCanceled(t *testing.T) {
	r := newBlockingRunner()
	q, err := Open(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Close()
	j, _, _, err := q.Submit(Spec{Kind: KindPerf, Design: "rf"})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	live, err := q.Cancel(j.ID)
	if err != nil || !live {
		t.Fatalf("Cancel: live=%v err=%v", live, err)
	}
	waitState(t, q, j.ID, StateCanceled)
	// A terminal cancel is idempotent and reports not-live.
	if live, err := q.Cancel(j.ID); err != nil || live {
		t.Errorf("second Cancel: live=%v err=%v", live, err)
	}
	// A fresh submission re-runs a canceled job.
	if _, coalesced, cached, err := q.Submit(Spec{Kind: KindPerf, Design: "rf"}); err != nil || coalesced || cached {
		t.Fatalf("resubmit after cancel: coalesced=%v cached=%v err=%v", coalesced, cached, err)
	}
	<-r.started
	close(r.release)
	waitState(t, q, j.ID, StateDone)
}

func TestFailedJobIsRerunOnResubmit(t *testing.T) {
	r := newBlockingRunner()
	r.failWith = errors.New("boom")
	q, err := Open(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Close()
	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sp", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.Error != "boom" {
		t.Errorf("failure reason = %q", failed.Error)
	}
	r.mu.Lock()
	r.failWith = nil
	r.mu.Unlock()
	if _, coalesced, cached, err := q.Submit(Spec{Kind: KindSecbench, Design: "sp", Trials: 2}); err != nil || coalesced || cached {
		t.Fatalf("resubmit after failure: coalesced=%v cached=%v err=%v", coalesced, cached, err)
	}
	<-r.started
	close(r.release)
	done := waitState(t, q, j.ID, StateDone)
	if done.Executions != 2 {
		t.Errorf("executions = %d, want 2", done.Executions)
	}
}

func TestDrainParksRunningJobAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	r := newBlockingRunner()
	q, err := Open(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "rf", Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	q.Close() // drain: the running job must land back in pending on disk

	if _, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "rf", Trials: 4}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after Close: err = %v, want ErrDraining", err)
	}

	r2 := newBlockingRunner()
	q2, err := Open(dir, r2)
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Metrics().Recovered; got != 1 {
		t.Errorf("recovered jobs = %d, want 1", got)
	}
	parked, ok := q2.Get(j.ID)
	if !ok || parked.State != StatePending {
		t.Fatalf("parked job state = %v (found %v), want pending", parked.State, ok)
	}
	q2.Start()
	<-r2.started
	close(r2.release)
	done := waitState(t, q2, j.ID, StateDone)
	if done.Executions != 2 {
		t.Errorf("executions across restart = %d, want 2", done.Executions)
	}
	q2.Close()
}

func TestSubscribeStreamsLifecycle(t *testing.T) {
	r := newBlockingRunner()
	q, err := Open(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Close()
	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := q.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	<-r.started
	close(r.release)
	var types []string
	for ev := range ch {
		if ev.Job != j.ID {
			t.Errorf("event for job %q, want %q", ev.Job, j.ID)
		}
		types = append(types, ev.Type)
	}
	// The subscription races the executor, so the exact prefix varies; the
	// terminal result+state pair must always arrive, in order.
	if len(types) < 2 {
		t.Fatalf("got %v, want at least result+state", types)
	}
	if types[len(types)-2] != "result" || types[len(types)-1] != "state" {
		t.Errorf("terminal events = %v, want ...result,state", types)
	}

	// Subscribing to the completed job replays its result and state in the
	// live stream's terminal order, so late attachers see the same shape.
	ch2, stop2, err := q.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	ev := <-ch2
	if ev.Type != "result" || string(ev.Result) != `{"ok":true}` {
		t.Errorf("replay first event = %+v", ev)
	}
	ev = <-ch2
	if ev.Type != "state" || ev.State != StateDone {
		t.Errorf("replay second event = %+v", ev)
	}
	if _, open := <-ch2; open {
		t.Error("replay channel not closed after the result")
	}
}

func TestSubscribeUnknownJob(t *testing.T) {
	q, err := Open(t.TempDir(), RunnerFunc(func(context.Context, Spec, func(Event)) (json.RawMessage, error) {
		return nil, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, _, err := q.Subscribe("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := q.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel err = %v, want ErrNotFound", err)
	}
}

func TestOpenQuarantinesMismatchedRecord(t *testing.T) {
	dir := t.TempDir()
	r := newBlockingRunner()
	q, err := Open(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	spec := Spec{Kind: KindSecbench, Design: "sa", Trials: 1}
	j, _, _, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	close(r.release)
	waitState(t, q, j.ID, StateDone)
	q.Close()

	// A record whose filename does not match its ID is a corrupted store.
	src := fmt.Sprintf("%s/%s%s", dir, j.ID, jobSuffix)
	raw, err := json.Marshal(Job{ID: "elsewhere", Spec: spec, State: StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := Open(dir, r)
	if err != nil {
		t.Fatalf("Open refused to serve over a corrupt record: %v", err)
	}
	defer q2.Close()
	if _, ok := q2.Get(j.ID); ok {
		t.Error("mismatched record survived into the recovered queue")
	}
	if _, ok := q2.Get("elsewhere"); ok {
		t.Error("mismatched record was adopted under its claimed ID")
	}
	if n := q2.Metrics().Quarantined; n != 1 {
		t.Errorf("Quarantined = %d, want 1", n)
	}
	if _, err := os.Stat(src + corruptSuffix); err != nil {
		t.Errorf("quarantined record not preserved at %s%s: %v", src, corruptSuffix, err)
	}
	if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt record still in place: %v", err)
	}
}
