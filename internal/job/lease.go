package job

// Multi-node operation: several tlbserved daemons share one durable
// directory, and job ownership is arbitrated by lease records on disk.
//
// Every execution of a job runs under a lease — (node, epoch, deadline) —
// whose epoch is claimed by atomically creating the file
// <id>.lease.<epoch> (O_CREATE|O_EXCL, so exactly one node can ever hold
// an epoch). The holder renews the deadline on checkpoint progress and on
// a keeper tick; a reaper on every node scans for live jobs whose current
// lease has expired — the owner died, or wedged past its TTL — claims the
// next epoch and re-parks the job for a local resume (the checkpoint file
// makes the re-run a resume, so a hand-off costs only the units in
// flight).
//
// The epoch is a fencing token: Queue.persist refuses to write a live or
// terminal record when a newer epoch exists on disk (ErrStaleEpoch), so a
// resurrected zombie — a node that lost its lease mid-run but kept
// executing — cannot tear the new owner's record. Lease files are never
// deleted: the monotone epoch history is what makes fencing sound (a
// zombie comparing against a truncated history would pass), and it doubles
// as the audit trail cmd/tlbchaos checks executions against.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrStaleEpoch is returned by the queue's persistence layer when a write
// is fenced: a newer lease epoch exists on disk, so this node no longer
// owns the job and its write was refused rather than tearing the current
// owner's record. It is deliberately not transient — retrying cannot help,
// the job has moved on without us.
var ErrStaleEpoch = errors.New("job: stale lease epoch (write fenced)")

// Cluster configures multi-node operation. The zero value (empty Node)
// disables leases entirely and preserves the single-daemon behaviour.
type Cluster struct {
	// Node is this node's identity, and must be unique per live node. The
	// daemon uses its advertised HTTP address, which lets any peer forward
	// requests to a job's current lease holder.
	Node string
	// LeaseTTL is how long a lease lives without renewal (default 3s). A
	// node that misses renewals for a full TTL is presumed dead and its
	// jobs are handed off.
	LeaseTTL time.Duration
	// ReapPoll is the reaper's scan interval (default LeaseTTL/2).
	ReapPoll time.Duration
}

func (c Cluster) withDefaults() Cluster {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.ReapPoll <= 0 {
		c.ReapPoll = c.LeaseTTL / 2
	}
	return c
}

// Lease is one node's ownership of one job execution: the fencing epoch
// it claimed and the deadline it must renew by.
type Lease struct {
	// Node is the owner's identity (its advertised address).
	Node string `json:"node"`
	// Epoch is the fencing token: strictly increasing per job, claimed by
	// exclusive file creation, never reused.
	Epoch uint64 `json:"epoch"`
	// Deadline is when the lease expires unless renewed. A lease is live
	// through its deadline and expired strictly after it.
	Deadline time.Time `json:"deadline"`
}

// Expired reports whether the lease is past its deadline at now. Renewal
// exactly at the deadline is still in time.
func (l Lease) Expired(now time.Time) bool { return now.After(l.Deadline) }

// leaseInfix separates the job ID from the epoch in lease filenames.
const leaseInfix = ".lease."

// clustered reports whether multi-node leasing is on.
func (q *Queue) clustered() bool { return q.lim.Cluster.Node != "" }

func (q *Queue) leasePath(id string, epoch uint64) string {
	return filepath.Join(q.dir, fmt.Sprintf("%s%s%d", id, leaseInfix, epoch))
}

// leaseBody is the lease file's payload: who holds the epoch and until
// when. The epoch itself lives in the filename, which is what makes the
// claim atomic.
type leaseBody struct {
	Node     string    `json:"node"`
	Deadline time.Time `json:"deadline"`
}

// claimLease attempts to take epoch for id by creating its lease file
// exclusively. Exactly one node can succeed per (id, epoch); losers get
// ok=false and must treat the job as owned elsewhere.
func (q *Queue) claimLease(id string, epoch uint64) (Lease, bool) {
	path := q.leasePath(id, epoch)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return Lease{}, false
	}
	l := Lease{Node: q.lim.Cluster.Node, Epoch: epoch, Deadline: time.Now().Add(q.lim.Cluster.LeaseTTL)}
	raw, _ := json.Marshal(leaseBody{Node: l.Node, Deadline: l.Deadline})
	f.Write(append(raw, '\n'))
	f.Close()
	return l, true
}

// renewLease extends our hold on the lease by rewriting its file
// atomically (temp + rename, like every other durable write). The hook
// seam lets faultinject fail a renewal.
func (q *Queue) renewLease(j *Job) error {
	if h := q.lim.PersistHook; h != nil && h.OnLease != nil {
		if err := h.OnLease("renew", j.ID, j.Lease.Epoch); err != nil {
			q.metrics.LeaseRenewFails++
			return err
		}
	}
	deadline := time.Now().Add(q.lim.Cluster.LeaseTTL)
	path := q.leasePath(j.ID, j.Lease.Epoch)
	raw, _ := json.Marshal(leaseBody{Node: j.Lease.Node, Deadline: deadline})
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		q.metrics.LeaseRenewFails++
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		q.metrics.LeaseRenewFails++
		return err
	}
	j.Lease.Deadline = deadline
	q.metrics.LeaseRenewals++
	return nil
}

// releaseLease expires our lease in place (deadline = now) so a peer's
// reaper can hand the job off immediately instead of waiting out the TTL.
// Used on graceful drain; the file itself stays, epochs are never erased.
func (q *Queue) releaseLease(j *Job) {
	path := q.leasePath(j.ID, j.Lease.Epoch)
	raw, _ := json.Marshal(leaseBody{Node: j.Lease.Node, Deadline: time.Now()})
	tmp := path + ".tmp"
	if os.WriteFile(tmp, append(raw, '\n'), 0o644) == nil {
		os.Rename(tmp, path)
	}
}

// diskEpoch returns the highest epoch ever claimed for id (0 = none) and
// the current lease at that epoch. A lease file we cannot parse — a reader
// racing the claimant's first write — is treated as live until its
// claimant writes a readable deadline: the conservative reading, since
// presuming it dead risks a dual claim.
func (q *Queue) diskEpoch(id string) (uint64, Lease) {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return 0, Lease{}
	}
	var max uint64
	prefix := id + leaseInfix
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), prefix) || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		epoch, err := strconv.ParseUint(e.Name()[len(prefix):], 10, 64)
		if err != nil || epoch <= max {
			continue
		}
		max = epoch
	}
	if max == 0 {
		return 0, Lease{}
	}
	return max, q.readLease(id, max)
}

// readLease loads the lease body at (id, epoch); an unreadable body yields
// a far-future deadline (treated live, see diskEpoch).
func (q *Queue) readLease(id string, epoch uint64) Lease {
	l := Lease{Epoch: epoch, Deadline: time.Now().Add(24 * time.Hour)}
	raw, err := os.ReadFile(q.leasePath(id, epoch))
	if err != nil {
		return l
	}
	var body leaseBody
	if json.Unmarshal(raw, &body) != nil || body.Deadline.IsZero() {
		return l
	}
	l.Node, l.Deadline = body.Node, body.Deadline
	return l
}

// fenceLocked decides whether this node may durably write j's record: it
// must hold the job's newest epoch, or — for a brand-new record — no epoch
// may exist at all. Callers hold q.mu; cluster mode only.
func (q *Queue) fenceLocked(j *Job) error {
	var held uint64
	if j.Lease != nil && j.Lease.Node == q.lim.Cluster.Node {
		held = j.Lease.Epoch
	} else if j.Lease != nil {
		// A record carrying someone else's lease is theirs to write.
		q.metrics.FencedWrites++
		return fmt.Errorf("job: record %s is owned by %s: %w", j.ID, j.Lease.Node, ErrStaleEpoch)
	}
	if h := q.lim.PersistHook; h != nil && h.OnLease != nil {
		if err := h.OnLease("fence", j.ID, held); err != nil {
			q.metrics.FencedWrites++
			return fmt.Errorf("job: record %s: %v: %w", j.ID, err, ErrStaleEpoch)
		}
	}
	if max, _ := q.diskEpoch(j.ID); max > held {
		if j.Lease == nil {
			// Old epochs with no record file are a quarantined or purged
			// job's residue: a leaseless fresh submission may recreate the
			// record, it is not fencing anyone out.
			if _, err := os.Stat(filepath.Join(q.dir, j.ID+jobSuffix)); os.IsNotExist(err) {
				return nil
			}
		}
		q.metrics.FencedWrites++
		return fmt.Errorf("job: record %s: epoch %d superseded by %d: %w", j.ID, held, max, ErrStaleEpoch)
	}
	return nil
}

// acquireLocked secures a lease for executing j: an unexpired lease we
// already hold (a hand-off or retry re-park) is renewed and reused,
// otherwise the next epoch is claimed. ok=false means another node owns
// the job. Callers hold q.mu.
func (q *Queue) acquireLocked(j *Job) bool {
	now := time.Now()
	if j.Lease != nil && j.Lease.Node == q.lim.Cluster.Node && !j.Lease.Expired(now) {
		q.renewLease(j) // best-effort; the deadline we hold is still live
		return true
	}
	max, _ := q.diskEpoch(j.ID)
	lease, ok := q.claimLease(j.ID, max+1)
	if !ok {
		return false
	}
	j.Lease = &lease
	return true
}

// keeper is the lease-renewal loop: every LeaseTTL/3 it renews the leases
// of every live job this node owns, and — the zombie check — abandons any
// job whose epoch has been superseded on disk, cancelling its executor
// before it can waste more work that fencing would refuse anyway.
func (q *Queue) keeper() {
	defer q.wg.Done()
	ticker := time.NewTicker(q.lim.Cluster.LeaseTTL / 3)
	defer ticker.Stop()
	for {
		select {
		case <-q.root.Done():
			return
		case <-ticker.C:
		}
		q.mu.Lock()
		if q.drain {
			q.mu.Unlock()
			return
		}
		for _, id := range append([]string(nil), q.order...) {
			j, ok := q.jobs[id]
			if !ok || j.State.Terminal() || j.Lease == nil || j.Lease.Node != q.lim.Cluster.Node {
				continue
			}
			if max, _ := q.diskEpoch(id); max > j.Lease.Epoch {
				q.loseLocked(id)
				continue
			}
			q.renewLease(j)
		}
		q.mu.Unlock()
	}
}

// loseLocked reacts to a superseded lease: a running job's executor is
// cancelled (its settle path abandons), a parked one is abandoned on the
// spot. Callers hold q.mu.
func (q *Queue) loseLocked(id string) {
	q.fenced[id] = true
	if cancel, ok := q.cancels[id]; ok {
		cancel()
		return
	}
	q.abandonLocked(id)
}

// abandonLocked drops a job this node no longer owns: subscribers get a
// final hand-off event and the record leaves local memory entirely, so
// every later read falls through to the disk record the new owner
// maintains. Callers hold q.mu.
func (q *Queue) abandonLocked(id string) {
	q.metrics.LeasesLost++
	q.publishLocked(id, Event{Type: "handoff"})
	q.finishLocked(id)
	q.dropLocalLocked(id)
}

// dropLocalLocked removes a job from local memory without touching live
// accounting — for records that live on elsewhere (on disk, under another
// node's lease) rather than finishing here. Callers hold q.mu.
func (q *Queue) dropLocalLocked(id string) {
	delete(q.jobs, id)
	for i, oid := range q.order {
		if oid == id {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
}

// reaper is the node-death detector: every ReapPoll it scans the shared
// directory for live jobs whose current lease has expired — their owner
// died or wedged — claims the next epoch and re-parks them locally. The
// claim is the arbiter: when every node's reaper spots the same corpse,
// exactly one O_EXCL create wins the hand-off.
func (q *Queue) reaper() {
	defer q.wg.Done()
	ticker := time.NewTicker(q.lim.Cluster.ReapPoll)
	defer ticker.Stop()
	for {
		select {
		case <-q.root.Done():
			return
		case <-ticker.C:
		}
		q.mu.Lock()
		if q.drain {
			q.mu.Unlock()
			return
		}
		q.reapLocked()
		q.mu.Unlock()
	}
}

// reapLocked performs one reaper scan. Callers hold q.mu.
func (q *Queue) reapLocked() {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return
	}
	now := time.Now()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, jobSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, jobSuffix)
		if j, ok := q.jobs[id]; ok && !j.State.Terminal() {
			continue // locally owned (running, or parked awaiting its backoff)
		}
		max, lease := q.diskEpoch(id)
		if max > 0 && !lease.Expired(now) {
			continue // healthily owned elsewhere
		}
		j, ok := q.readRecordLocked(id)
		if !ok || j.State.Terminal() {
			continue
		}
		if max == 0 {
			// A pending record no one ever claimed: its submitter died
			// between persist and launch. Give a just-born record a TTL of
			// grace before adopting it out from under a live submitter —
			// the claim would arbitrate anyway, this just avoids the churn.
			if info, err := e.Info(); err == nil && now.Sub(info.ModTime()) < q.lim.Cluster.LeaseTTL {
				continue
			}
		}
		newLease, won := q.claimLease(id, max+1)
		if !won {
			continue
		}
		q.adoptLocked(&j, newLease)
	}
}

// adoptLocked installs a reaped job as our own: parked pending under our
// fresh lease, hand-off accounted, and launched (its checkpoint makes the
// execution a resume). Callers hold q.mu.
func (q *Queue) adoptLocked(j *Job, lease Lease) {
	j.State = StatePending
	j.Handoffs++
	j.Lease = &lease
	if err := q.persist(j); err != nil {
		// Fenced or failed: someone even newer owns it, or the disk is
		// unhappy; either way the next reap tick re-evaluates.
		return
	}
	q.metrics.Handoffs++
	if _, known := q.jobs[j.ID]; !known {
		q.order = append(q.order, j.ID)
	}
	q.jobs[j.ID] = j
	q.live++
	q.publishLocked(j.ID, Event{Type: "handoff", Attempt: j.Handoffs})
	q.launchLocked(j.ID)
}

// readRecordLocked loads a job record straight from disk — the view of
// jobs other nodes own. Callers hold q.mu.
func (q *Queue) readRecordLocked(id string) (Job, bool) {
	raw, err := os.ReadFile(filepath.Join(q.dir, id+jobSuffix))
	if err != nil {
		return Job{}, false
	}
	j, err := decodeRecord(id+jobSuffix, raw)
	if err != nil {
		return Job{}, false
	}
	return j, true
}

// listDiskLocked returns records present on disk but not in local memory —
// remote jobs — sorted by ID for a stable List. Callers hold q.mu.
func (q *Queue) listDiskLocked() []Job {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return nil
	}
	var out []Job
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), jobSuffix) {
			continue
		}
		id := strings.TrimSuffix(e.Name(), jobSuffix)
		if _, ok := q.jobs[id]; ok {
			continue
		}
		if j, ok := q.readRecordLocked(id); ok {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
