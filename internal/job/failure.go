package job

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
)

// FailureKind classifies a runner or persistence error for the retry
// policy: transient failures (disk hiccups, torn I/O) are worth re-running
// from the checkpoint; deterministic campaign errors never are — the same
// spec would fail the same way every time, so retrying only burns the pool.
type FailureKind int

const (
	// FailPermanent is a deterministic failure: a campaign error that is a
	// pure function of the spec. Retrying cannot change the outcome.
	FailPermanent FailureKind = iota
	// FailTransient is an environmental failure: I/O errors, torn writes,
	// anything the typed taxonomy below recognises as likely to succeed on
	// a re-run.
	FailTransient
)

// String names the kind for logs and events.
func (k FailureKind) String() string {
	if k == FailTransient {
		return "transient"
	}
	return "permanent"
}

// errTransient is the sentinel Transient wraps with; IsTransient and
// Classify recognise it via errors.Is.
var errTransient = errors.New("job: transient failure")

// transientError marks an error as transient while preserving the wrapped
// chain for errors.Is/As.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() []error {
	return []error{e.err, errTransient}
}

// Transient marks err as a transient failure: Classify will recommend a
// retry. The queue's own persistence layer and any runner that hits a
// recoverable environmental error (as opposed to a deterministic campaign
// error) should wrap with this.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err was marked by Transient.
func IsTransient(err error) bool { return errors.Is(err, errTransient) }

// Classify applies the failure taxonomy. Explicitly marked errors win;
// otherwise filesystem and syscall errors — the classic torn-disk cases a
// checkpoint resume exists for — are transient, and everything else
// (campaign errors, bad specs, invariant violations) is permanent.
func Classify(err error) FailureKind {
	if err == nil {
		return FailPermanent
	}
	if IsTransient(err) {
		return FailTransient
	}
	var pathErr *fs.PathError
	var linkErr *os.LinkError
	var sysErr *os.SyscallError
	var errno syscall.Errno
	if errors.As(err, &pathErr) || errors.As(err, &linkErr) ||
		errors.As(err, &sysErr) || errors.As(err, &errno) {
		return FailTransient
	}
	return FailPermanent
}
