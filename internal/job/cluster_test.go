package job

// Tests for the cluster layer: lease-expiry boundaries, fencing of stale
// (zombie) writes, the reaper racing a final checkpoint, graceful hand-off
// on drain, and the lease fault-injection matrix. All of them run two
// queues over one shared directory — the real multi-node arrangement, in
// one process — and all must pass under -race.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"securetlb/internal/faultinject"
)

// openClusterQueue opens a started cluster queue named node over dir.
func openClusterQueue(t *testing.T, dir, node string, r Runner, c Cluster, hook *PersistHook) *Queue {
	t.Helper()
	c.Node = node
	q, err := OpenLimits(dir, r, Limits{MaxPending: 64, Cluster: c, PersistHook: hook})
	if err != nil {
		t.Fatalf("open cluster node %s: %v", node, err)
	}
	t.Cleanup(q.Close)
	q.Start()
	return q
}

// tickRunner publishes one progress unit per slice until d has elapsed,
// then succeeds. Cancellation (a lost lease, a drain) is honoured
// immediately, like the real checkpointing CampaignRunner.
func tickRunner(d, slice time.Duration) Runner {
	return RunnerFunc(func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
		deadline := time.Now().Add(d)
		units := 0
		for time.Now().Before(deadline) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(slice):
			}
			units++
			publish(Event{Type: "progress", Units: units})
		}
		return json.RawMessage(`{"ok":true}`), nil
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaseExpiryBoundary pins the deadline semantics: a lease is live
// through its deadline instant and expired strictly after it, so a renewal
// that lands exactly at the deadline is still in time.
func TestLeaseExpiryBoundary(t *testing.T) {
	d := time.Now()
	l := Lease{Node: "a", Epoch: 1, Deadline: d}
	if l.Expired(d) {
		t.Fatal("lease expired exactly at its deadline; renewal at the deadline must be in time")
	}
	if l.Expired(d.Add(-time.Nanosecond)) {
		t.Fatal("lease expired before its deadline")
	}
	if !l.Expired(d.Add(time.Nanosecond)) {
		t.Fatal("lease still live after its deadline")
	}
}

// TestAcquireReusesUnexpiredLease: re-acquiring a job we already own (a
// retry or stall re-park) renews the held epoch instead of burning a new
// one; an expired hold claims the next epoch.
func TestAcquireReusesUnexpiredLease(t *testing.T) {
	dir := t.TempDir()
	q := openClusterQueue(t, dir, "a", instantRunner(), Cluster{LeaseTTL: time.Minute, ReapPoll: time.Minute}, nil)
	const id = "feedfacecafe0001"
	lease, ok := q.claimLease(id, 1)
	if !ok {
		t.Fatal("initial claim of epoch 1 lost with no competitor")
	}
	j := &Job{ID: id, Lease: &lease}

	q.mu.Lock()
	ok = q.acquireLocked(j)
	q.mu.Unlock()
	if !ok || j.Lease.Epoch != 1 {
		t.Fatalf("re-acquire of an unexpired lease: ok=%v epoch=%d, want reuse of epoch 1", ok, j.Lease.Epoch)
	}

	j.Lease.Deadline = time.Now().Add(-time.Millisecond)
	q.mu.Lock()
	ok = q.acquireLocked(j)
	q.mu.Unlock()
	if !ok || j.Lease.Epoch != 2 {
		t.Fatalf("re-acquire of an expired lease: ok=%v epoch=%d, want a fresh claim of epoch 2", ok, j.Lease.Epoch)
	}
}

// TestFencedZombieWriteRefused: after a job hands off (a peer claimed a
// newer epoch), the old owner's persist is refused with ErrStaleEpoch and
// the new owner's record survives untouched.
func TestFencedZombieWriteRefused(t *testing.T) {
	dir := t.TempDir()
	quiet := Cluster{LeaseTTL: time.Minute, ReapPoll: time.Minute}
	qa := openClusterQueue(t, dir, "a", instantRunner(), quiet, nil)
	qb := openClusterQueue(t, dir, "b", instantRunner(), quiet, nil)

	const id = "feedfacecafe0002"
	leaseA, ok := qa.claimLease(id, 1)
	if !ok {
		t.Fatal("node a lost the claim of epoch 1")
	}
	leaseB, ok := qb.claimLease(id, 2)
	if !ok {
		t.Fatal("node b lost the claim of epoch 2")
	}

	jb := &Job{ID: id, State: StateRunning, Lease: &leaseB}
	qb.mu.Lock()
	err := qb.persist(jb)
	qb.mu.Unlock()
	if err != nil {
		t.Fatalf("the current owner's write was refused: %v", err)
	}

	ja := &Job{ID: id, State: StateDone, Result: json.RawMessage(`{"stale":true}`), Lease: &leaseA}
	qa.mu.Lock()
	err = qa.persist(ja)
	qa.mu.Unlock()
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("zombie write under epoch 1 got %v, want ErrStaleEpoch", err)
	}
	if got := qa.Metrics().FencedWrites; got < 1 {
		t.Fatalf("FencedWrites = %d after a fenced write, want >= 1", got)
	}

	j, ok := qb.readRecordLocked(id)
	if !ok || j.State != StateRunning || j.Lease == nil || j.Lease.Epoch != 2 {
		t.Fatalf("record after the refused write: %+v, want node b's running record at epoch 2", j)
	}
}

// TestReaperRacesFinalCheckpoint: node a's executor holds a job whose
// renewals are all blackholed, so the lease genuinely expires mid-run and
// node b adopts it. When a's executor finally finishes, its terminal write
// must lose — the record ends done under b's newer epoch, and a accounts a
// lost lease, never a completed job.
func TestReaperRacesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	gatedRunner := RunnerFunc(func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
		<-gate // hold the execution open; ignore cancellation, like a wedged worker
		return json.RawMessage(`{"ok":true}`), nil
	})
	blackhole := &PersistHook{OnLease: func(op, id string, epoch uint64) error {
		if op == "renew" {
			return errors.New("renewals blackholed")
		}
		return nil
	}}
	qa := openClusterQueue(t, dir, "a", gatedRunner,
		Cluster{LeaseTTL: 250 * time.Millisecond, ReapPoll: time.Minute}, blackhole)
	qb := openClusterQueue(t, dir, "b", instantRunner(),
		Cluster{LeaseTTL: 250 * time.Millisecond, ReapPoll: 100 * time.Millisecond}, nil)

	j, _, _, err := qa.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// b adopts once a's never-renewed lease expires, and finishes the job
	// while a's executor is still wedged.
	final := waitTerminal(t, qb, j.ID)
	if final.State != StateDone {
		t.Fatalf("adopted job ended %s, want done", final.State)
	}
	if final.Handoffs < 1 {
		t.Fatalf("adopted record shows %d hand-offs, want >= 1", final.Handoffs)
	}

	// Release a's executor: its terminal write races the settled record and
	// must be fenced off (or the keeper's zombie check abandons it first).
	close(gate)
	waitFor(t, "node a to account its lost lease", 10*time.Second, func() bool {
		return qa.Metrics().LeasesLost >= 1
	})

	got, ok := qb.readRecordLocked(j.ID)
	if !ok || got.State != StateDone || got.Lease == nil {
		t.Fatalf("final record: %+v, want done with a lease", got)
	}
	if got.Lease.Node != "b" || got.Lease.Epoch < 2 {
		t.Fatalf("final record owned by %s at epoch %d, want node b at epoch >= 2 — a stale write got the last word",
			got.Lease.Node, got.Lease.Epoch)
	}
}

// TestGracefulCloseHandsOff: a draining node releases its leases (deadline
// = now) so a peer adopts its parked jobs immediately instead of waiting
// out the TTL.
func TestGracefulCloseHandsOff(t *testing.T) {
	dir := t.TempDir()
	qa := openClusterQueue(t, dir, "a", tickRunner(time.Minute, 10*time.Millisecond),
		Cluster{LeaseTTL: 500 * time.Millisecond, ReapPoll: time.Minute}, nil)
	qb := openClusterQueue(t, dir, "b", instantRunner(),
		Cluster{LeaseTTL: 500 * time.Millisecond, ReapPoll: 50 * time.Millisecond}, nil)

	j, _, _, err := qa.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "the job to start running on a", 10*time.Second, func() bool {
		cur, ok := qa.Get(j.ID)
		return ok && cur.State == StateRunning
	})

	qa.Close() // drain: the job parks pending and its lease is released

	final := waitTerminal(t, qb, j.ID)
	if final.State != StateDone {
		t.Fatalf("handed-off job ended %s, want done", final.State)
	}
	if final.Handoffs != 1 {
		t.Fatalf("record shows %d hand-offs, want exactly 1", final.Handoffs)
	}
	if final.Lease == nil || final.Lease.Node != "b" {
		t.Fatalf("final record's lease is %+v, want node b's", final.Lease)
	}
	if got := qb.Metrics().Handoffs; got != 1 {
		t.Fatalf("node b accounts %d hand-offs, want 1", got)
	}
}

// TestLeaseFaultMatrix drives every lease fault site at several seeds
// through a two-node cluster — node a armed, node b clean — and requires
// every cell to be non-silent: the fault fires, the injected failure is
// visible in a's metrics, and every job still reaches done somewhere.
func TestLeaseFaultMatrix(t *testing.T) {
	for _, site := range faultinject.LeaseSites() {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", site, seed), func(t *testing.T) {
				in, err := faultinject.NewService(site, seed)
				if err != nil {
					t.Fatalf("NewService: %v", err)
				}
				hook := &PersistHook{OnLease: in.OnLease}
				dir := t.TempDir()

				// a reaps slowly so hand-offs land on b; b reaps eagerly.
				ttl := 400 * time.Millisecond
				runnerA := instantRunner()
				switch site {
				case faultinject.SiteLeaseRenewFail:
					// Long enough for the keeper and checkpoint paths to
					// attempt well past the trigger ordinal.
					ttl = 500 * time.Millisecond
					runnerA = tickRunner(1500*time.Millisecond, 10*time.Millisecond)
				case faultinject.SiteLeaseExpireMidWrite:
					// Runs until the lost lease cancels it (capped so a
					// missed cancellation still ends the test).
					runnerA = tickRunner(8*time.Second, 10*time.Millisecond)
				}
				qa := openClusterQueue(t, dir, "a", runnerA,
					Cluster{LeaseTTL: ttl, ReapPoll: time.Minute}, hook)
				qb := openClusterQueue(t, dir, "b", instantRunner(),
					Cluster{LeaseTTL: ttl, ReapPoll: ttl / 3}, nil)

				jobs := 1
				if site == faultinject.SiteStaleEpochWrite {
					// Fencing checks happen on persists; several instant
					// jobs generate enough to pass any trigger ordinal.
					jobs = 6
				}
				ids := make([]string, 0, jobs)
				for i := 0; i < jobs; i++ {
					j, _, _, err := qa.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1 + i})
					if err != nil {
						t.Fatalf("submit %d: %v", i, err)
					}
					ids = append(ids, j.ID)
				}

				for _, id := range ids {
					final := waitTerminal(t, qb, id)
					if final.State != StateDone {
						t.Fatalf("job %s ended %s under site %s, want done", id, final.State, site)
					}
				}
				if !in.Fired() {
					t.Fatalf("site %s seed %d never fired", site, seed)
				}

				ma, mb := qa.Metrics(), qb.Metrics()
				switch site {
				case faultinject.SiteLeaseRenewFail:
					// One failed renewal is absorbed: visible in the
					// counter, no hand-off.
					if ma.LeaseRenewFails < 1 {
						t.Fatalf("LeaseRenewFails = %d, want >= 1 (%s)", ma.LeaseRenewFails, in.Detail())
					}
					if ma.Handoffs+mb.Handoffs != 0 {
						t.Fatalf("a single failed renewal caused %d hand-off(s)", ma.Handoffs+mb.Handoffs)
					}
				case faultinject.SiteLeaseExpireMidWrite:
					// The starved lease really expires: b adopts, a loses.
					if mb.Handoffs < 1 {
						t.Fatalf("no hand-off after a starved lease (%s)", in.Detail())
					}
					waitFor(t, "node a to account its lost lease", 10*time.Second, func() bool {
						return qa.Metrics().LeasesLost >= 1
					})
				case faultinject.SiteStaleEpochWrite:
					// The refused write is fenced and the job finishes
					// under a fresh epoch elsewhere.
					if ma.FencedWrites < 1 {
						t.Fatalf("FencedWrites = %d, want >= 1 (%s)", ma.FencedWrites, in.Detail())
					}
					if ma.LeasesLost < 1 {
						t.Fatalf("LeasesLost = %d, want >= 1 after the fenced abandon", ma.LeasesLost)
					}
				}
			})
		}
	}
}
