// Package job is the campaign-serving core of the tlbserved daemon: the
// job model (a content-addressed campaign request moving through a small
// state machine) and a durable queue that coalesces identical requests,
// caches completed results, streams progress events to subscribers, and
// survives a daemon restart.
//
// A job's identity is the fingerprint of its normalised spec (the same
// internal/fingerprint scheme the checkpoint files use), so two clients
// asking for the same campaign — concurrently or days apart — address the
// same job: in-flight requests coalesce onto one execution, completed ones
// are served from the stored result. Because campaign results are
// bit-identical reproducible (the repo's seed-derivation contract), a
// cached result is indistinguishable from a fresh run, which is what makes
// content-addressed caching sound here.
package job

import (
	"encoding/json"
	"errors"
	"fmt"

	"securetlb/internal/fingerprint"
	"securetlb/internal/perf"
	"securetlb/internal/secbench"
)

// The package's sentinel errors.
var (
	// ErrNotFound is returned for operations on an unknown job ID.
	ErrNotFound = errors.New("job: not found")
	// ErrDraining is returned by Submit once the queue has begun shutting
	// down; the daemon maps it to 503.
	ErrDraining = errors.New("job: queue is draining")
	// ErrQueueFull is returned by Submit when the live-job depth is at
	// Limits.MaxPending; the daemon maps it to 429 with a Retry-After.
	ErrQueueFull = errors.New("job: queue is full")
	// ErrClientBusy is returned by Submit when the client is already
	// attached to Limits.MaxPerClient live jobs; the daemon maps it to 429.
	ErrClientBusy = errors.New("job: client has too many jobs in flight")
)

// Spec kinds.
const (
	// KindSecbench is a Table 4 / Appendix B security campaign
	// (cmd/secbench's workload).
	KindSecbench = "secbench"
	// KindPerf is a Figure 7 IPC/MPKI sweep (cmd/perfbench's workload).
	KindPerf = "perf"
)

// Spec is a campaign request: everything that determines a campaign's
// results, and nothing that doesn't (execution details like pool sizes are
// the daemon's, not the spec's, so they never fragment the cache).
type Spec struct {
	// Kind selects the campaign family: KindSecbench or KindPerf.
	Kind string `json:"kind"`
	// Design selects the TLB designs: single codes, comma-separated
	// combinations, "all" (the paper trio) or "full" (every design the
	// kind's arena has).
	Design string `json:"design"`
	// Trials is the secbench trials-per-behaviour count (default 500).
	Trials int `json:"trials,omitempty"`
	// Extended selects the Appendix B benchmark set (secbench).
	Extended bool `json:"extended,omitempty"`
	// Invariants enables the runtime invariant checker (secbench).
	Invariants bool `json:"invariants,omitempty"`
	// Secure selects the SecRSA (protections-on) sweep variant (perf).
	Secure bool `json:"secure,omitempty"`
	// Decrypts is the RSA decryptions per perf run (default 50).
	Decrypts int `json:"decrypts,omitempty"`
	// Seed is the perf sweep's PRNG seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
}

// Normalize fills defaults and zeroes the fields the spec's kind does not
// use, so equivalent requests share one fingerprint (a perf spec with a
// stray trials count must not miss the cache).
func (s Spec) Normalize() Spec {
	if s.Design == "" {
		s.Design = "all"
	}
	switch s.Kind {
	case KindSecbench:
		if s.Trials == 0 {
			s.Trials = 500
		}
		s.Secure, s.Decrypts, s.Seed = false, 0, 0
	case KindPerf:
		if s.Decrypts == 0 {
			s.Decrypts = 50
		}
		if s.Seed == 0 {
			s.Seed = 1
		}
		s.Trials, s.Extended, s.Invariants = 0, false, false
	}
	return s
}

// Validate rejects malformed specs. It assumes a normalised spec. The
// design selector is validated by the kind's own arena (the secbench arena
// has an FA row the perf arena doesn't), so a spec that validates is a spec
// the runner can execute.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindSecbench:
		if s.Trials <= 0 {
			return fmt.Errorf("job: trials must be positive, got %d", s.Trials)
		}
		if _, err := secbench.ParseDesigns(s.Design); err != nil {
			return fmt.Errorf("job: %v", err)
		}
	case KindPerf:
		if s.Decrypts <= 0 {
			return fmt.Errorf("job: decrypts must be positive, got %d", s.Decrypts)
		}
		if _, err := perf.ParseDesigns(s.Design); err != nil {
			return fmt.Errorf("job: %v", err)
		}
	default:
		return fmt.Errorf("job: unknown kind %q (want %q or %q)", s.Kind, KindSecbench, KindPerf)
	}
	return nil
}

// ID content-addresses the normalised spec: the job identity requests
// coalesce by.
func (s Spec) ID() (string, error) {
	return fingerprint.JSON(s.Normalize())
}

// State is a job's lifecycle position.
type State string

// The job states. Pending and Running are live (a submission coalesces
// onto them); Done, Failed and Canceled are terminal (Done serves the
// cache, Failed/Canceled are re-run by a fresh submission).
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// States lists every state, in lifecycle order — the stable iteration
// order for metrics.
func States() []State {
	return []State{StatePending, StateRunning, StateDone, StateFailed, StateCanceled}
}

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one queued campaign. The queue hands out value snapshots; the
// Result payload is shared but treated as immutable.
type Job struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Error holds the failure reason for StateFailed, or the last
	// transient failure while a retry is parked pending.
	Error string `json:"error,omitempty"`
	// Result is the runner's payload for StateDone.
	Result json.RawMessage `json:"result,omitempty"`
	// Coalesced counts the submissions beyond the first that attached to
	// this job while it was live.
	Coalesced int `json:"coalesced"`
	// CacheHits counts the submissions served from this job's stored
	// result after it completed.
	CacheHits int `json:"cache_hits"`
	// Executions counts how many times the runner was started for this job
	// (resumes after a daemon restart and re-runs after failure both
	// increment it).
	Executions int `json:"executions"`
	// Units is the last progress reading: completed checkpoint units.
	Units int `json:"units,omitempty"`
	// Retries counts the transient-failure retries this job has consumed.
	// It is persisted so a daemon restart cannot reset the retry budget.
	Retries int `json:"retries,omitempty"`
	// Stalls counts the watchdog re-parks this job has consumed (also
	// persisted, bounding a deterministically wedged runner).
	Stalls int `json:"stalls,omitempty"`
	// Handoffs counts the lease-expiry re-parks: how many times a reaper
	// adopted this job from a dead or lapsed owner. Persisted so the chaos
	// audit's executions budget (1 + kills + retries + stalls + handoffs)
	// survives restarts, like Retries and Stalls.
	Handoffs int `json:"handoffs,omitempty"`
	// Lease is the current ownership record in cluster mode: which node may
	// execute and persist this job, under which fencing epoch, until which
	// deadline. Nil on single-node queues and on terminal records.
	Lease *Lease `json:"lease,omitempty"`
}

// Event is one NDJSON line of a job's progress stream.
type Event struct {
	// Job is the job ID; the queue stamps it on every published event.
	Job string `json:"job,omitempty"`
	// Type is "state" (State carries the new state, Error the reason for
	// failures), "progress" (Units carries completed checkpoint units),
	// "result" (Result carries the final payload), "retry" (Error carries
	// the transient failure, Attempt the retry ordinal), "stall"
	// (Attempt carries the watchdog re-park ordinal), or "handoff"
	// (Attempt carries the hand-off ordinal: the job's lease expired or was
	// fenced and another node re-parked it).
	Type   string          `json:"type"`
	State  State           `json:"state,omitempty"`
	Units  int             `json:"units,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Attempt is the 1-based retry or stall ordinal for those event types.
	Attempt int `json:"attempt,omitempty"`
}
