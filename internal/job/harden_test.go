package job

// Tests for the queue's fault-hardening layer: admission control,
// transient-failure retries, the stuck-job watchdog, crash quarantine,
// subscriber-overflow isolation, cancel/complete races, and the service
// fault-injection matrix.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"securetlb/internal/faultinject"
)

// instantRunner completes immediately with a fixed payload.
func instantRunner() Runner {
	return RunnerFunc(func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
		return json.RawMessage(`{"ok":true}`), nil
	})
}

// countingRunner fails its first fails runs with err, then succeeds.
type countingRunner struct {
	mu    sync.Mutex
	calls int
	fails int
	err   error
}

func (r *countingRunner) Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
	r.mu.Lock()
	r.calls++
	n := r.calls
	r.mu.Unlock()
	if n <= r.fails {
		return nil, r.err
	}
	return json.RawMessage(`{"ok":true}`), nil
}

func (r *countingRunner) callCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// wedgeRunner blocks without publishing progress for its first wedges
// runs (honouring ctx, like a drain-aware runner that stopped advancing),
// then succeeds.
type wedgeRunner struct {
	mu     sync.Mutex
	calls  int
	wedges int
}

func (r *wedgeRunner) Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
	r.mu.Lock()
	r.calls++
	n := r.calls
	r.mu.Unlock()
	if n <= r.wedges {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return json.RawMessage(`{"ok":true}`), nil
}

func waitTerminal(t *testing.T, q *Queue, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := q.Get(id)
		if ok && j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state (now %s)", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOpenQuarantinesTornRecord: a record torn mid-JSON (the crash-mid-
// write artifact) is moved to <name>.corrupt at Open and the queue keeps
// serving the intact records alongside it.
func TestOpenQuarantinesTornRecord(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir, instantRunner())
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	good, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, good.ID, StateDone)
	q.Close()

	// Tear a second, fake record and leave a stale temp file behind, as a
	// SIGKILL between write and rename would.
	torn := filepath.Join(dir, "feedfacecafebeef"+jobSuffix)
	if err := os.WriteFile(torn, []byte(`{"id":"feedfacecafebeef","state":"pen`), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "feedfacecafebeef"+jobSuffix+".tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(dir, instantRunner())
	if err != nil {
		t.Fatalf("Open refused to serve over a torn record: %v", err)
	}
	defer q2.Close()
	if n := q2.Metrics().Quarantined; n != 1 {
		t.Errorf("Quarantined = %d, want 1", n)
	}
	if _, err := os.Stat(torn + corruptSuffix); err != nil {
		t.Errorf("torn record not preserved for forensics: %v", err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp file survived Open: %v", err)
	}
	if j, ok := q2.Get(good.ID); !ok || j.State != StateDone {
		t.Errorf("intact record lost alongside the quarantine: ok=%v state=%s", ok, j.State)
	}
}

// TestReloadedResultIsByteIdentical: the record file is stored indented,
// which re-indents the embedded result payload; a restart must still serve
// the exact bytes the runner produced. Caught by cmd/tlbchaos.
func TestReloadedResultIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	want := `{"kind":"perf","output":"Figure 7 — nested \"quotes\" and unicode —"}`
	r := RunnerFunc(func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
		return json.RawMessage(want), nil
	})
	q, err := Open(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	j, _, _, err := q.Submit(Spec{Kind: KindPerf, Design: "sa", Decrypts: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, j.ID, StateDone)
	q.Close()

	q2, err := Open(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	got, ok := q2.Get(j.ID)
	if !ok {
		t.Fatal("done job lost across restart")
	}
	if string(got.Result) != want {
		t.Errorf("reloaded result bytes differ:\n got:  %s\n want: %s", got.Result, want)
	}
}

// TestAdmissionQueueFull: MaxPending bounds the live-job depth; attaching
// to an already live job stays free, and the slot frees on completion.
func TestAdmissionQueueFull(t *testing.T) {
	r := newBlockingRunner()
	q, err := OpenLimits(t.TempDir(), r, Limits{MaxPending: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	first := Spec{Kind: KindSecbench, Design: "sa", Trials: 1}
	j, _, _, err := q.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	<-r.started

	if _, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "rf", Trials: 1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second spec admitted past MaxPending: err = %v", err)
	}
	if _, coalesced, _, err := q.Submit(first); err != nil || !coalesced {
		t.Errorf("re-attaching to the live job should be free: coalesced=%v err=%v", coalesced, err)
	}
	if ready, reason := q.Ready(); ready {
		t.Errorf("Ready() = true at capacity (%s)", reason)
	}
	if m := q.Metrics(); m.RejectedFull != 1 || m.Live != 1 {
		t.Errorf("RejectedFull = %d, Live = %d; want 1, 1", m.RejectedFull, m.Live)
	}

	close(r.release)
	waitState(t, q, j.ID, StateDone)
	if ready, reason := q.Ready(); !ready {
		t.Errorf("Ready() = false after the queue drained below capacity (%s)", reason)
	}
	if _, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "rf", Trials: 1}); err != nil {
		t.Errorf("completion did not free the admission slot: %v", err)
	}
}

// TestAdmissionPerClient: one client's in-flight cap does not tax other
// clients, and re-attaching to a job the client already holds is free.
func TestAdmissionPerClient(t *testing.T) {
	r := newBlockingRunner()
	q, err := OpenLimits(t.TempDir(), r, Limits{MaxPerClient: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	first := Spec{Kind: KindSecbench, Design: "sa", Trials: 1}
	second := Spec{Kind: KindSecbench, Design: "rf", Trials: 1}
	jA, _, _, err := q.SubmitFrom("alice", first)
	if err != nil {
		t.Fatal(err)
	}
	<-r.started

	if _, _, _, err := q.SubmitFrom("alice", second); !errors.Is(err, ErrClientBusy) {
		t.Fatalf("alice exceeded her cap: err = %v", err)
	}
	if _, coalesced, _, err := q.SubmitFrom("alice", first); err != nil || !coalesced {
		t.Errorf("alice re-attaching to her own job should be free: coalesced=%v err=%v", coalesced, err)
	}
	jB, _, _, err := q.SubmitFrom("bob", second)
	if err != nil {
		t.Fatalf("bob was taxed for alice's jobs: %v", err)
	}
	<-r.started
	if m := q.Metrics(); m.RejectedClient != 1 {
		t.Errorf("RejectedClient = %d, want 1", m.RejectedClient)
	}

	close(r.release)
	waitState(t, q, jA.ID, StateDone)
	waitState(t, q, jB.ID, StateDone)
	if _, _, _, err := q.SubmitFrom("alice", Spec{Kind: KindSecbench, Design: "sp", Trials: 1}); err != nil {
		t.Errorf("alice's slot did not free on completion: %v", err)
	}
}

// TestTransientRetryRecovers: a transient failure consumes one retry,
// backs off, re-runs and completes; the consumed budget is persisted.
func TestTransientRetryRecovers(t *testing.T) {
	r := &countingRunner{fails: 1, err: Transient(errors.New("disk hiccup"))}
	q, err := OpenLimits(t.TempDir(), r, Limits{RetryBudget: 3, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	events, stop, err := q.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	final := waitState(t, q, j.ID, StateDone)
	if final.Retries != 1 {
		t.Errorf("Retries = %d, want 1", final.Retries)
	}
	if got := r.callCount(); got != 2 {
		t.Errorf("runner ran %d times, want 2", got)
	}
	if m := q.Metrics(); m.Retried != 1 {
		t.Errorf("metrics.Retried = %d, want 1", m.Retried)
	}
	var sawRetry bool
	for ev := range events { // closed at the terminal transition
		if ev.Type == "retry" && ev.Attempt == 1 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("no retry event reached the subscriber")
	}
}

// TestPermanentFailureDoesNotRetry: a deterministic campaign error fails
// fast — re-running it would burn budget to reproduce the same answer.
func TestPermanentFailureDoesNotRetry(t *testing.T) {
	r := &countingRunner{fails: 100, err: errors.New("design disagreement: sa != rf")}
	q, err := OpenLimits(t.TempDir(), r, Limits{RetryBudget: 3, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, j.ID)
	if final.State != StateFailed || final.Retries != 0 {
		t.Errorf("state = %s, Retries = %d; want failed with 0 retries", final.State, final.Retries)
	}
	if got := r.callCount(); got != 1 {
		t.Errorf("runner ran %d times, want 1", got)
	}
}

// TestRetryBudgetExhaustedFails: transient failures beyond the budget
// surface as a terminal failure carrying the last error.
func TestRetryBudgetExhaustedFails(t *testing.T) {
	r := &countingRunner{fails: 100, err: Transient(errors.New("disk still gone"))}
	q, err := OpenLimits(t.TempDir(), r, Limits{RetryBudget: 2, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, j.ID)
	if final.State != StateFailed || final.Retries != 2 {
		t.Errorf("state = %s, Retries = %d; want failed after 2 retries", final.State, final.Retries)
	}
	if got := r.callCount(); got != 3 {
		t.Errorf("runner ran %d times, want 3 (first try + 2 retries)", got)
	}
}

// TestRetryBudgetSurvivesRestart: a job recovered from disk with its
// budget already consumed must not be granted a fresh allowance.
func TestRetryBudgetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Kind: KindSecbench, Design: "sa", Trials: 1}.Normalize()
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(Job{ID: id, Spec: spec, State: StatePending, Retries: 2, Executions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+jobSuffix), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := &countingRunner{fails: 100, err: Transient(errors.New("still failing"))}
	q, err := OpenLimits(dir, r, Limits{RetryBudget: 2, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	final := waitTerminal(t, q, id)
	if final.State != StateFailed {
		t.Errorf("state = %s, want failed (budget was already spent)", final.State)
	}
	if m := q.Metrics(); m.Retried != 0 {
		t.Errorf("restart granted %d fresh retries, want 0", m.Retried)
	}
}

// TestWatchdogReparksStalledJob: a running job whose Units counter stops
// advancing is cancelled, re-parked and re-run; the re-run completes.
func TestWatchdogReparksStalledJob(t *testing.T) {
	r := &wedgeRunner{wedges: 1}
	q, err := OpenLimits(t.TempDir(), r, Limits{
		RetryBudget:  3,
		RetryBase:    time.Millisecond,
		StallTimeout: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, q, j.ID, StateDone)
	if final.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", final.Stalls)
	}
	if m := q.Metrics(); m.Stalled != 1 {
		t.Errorf("metrics.Stalled = %d, want 1", m.Stalled)
	}
}

// TestWatchdogStallBudgetExhausted: a deterministically wedged runner is
// bounded — the watchdog re-parks it only stallBudget times before the
// job fails terminally instead of looping forever.
func TestWatchdogStallBudgetExhausted(t *testing.T) {
	r := &wedgeRunner{wedges: 100}
	q, err := OpenLimits(t.TempDir(), r, Limits{
		RetryBudget:  1, // stall budget follows the retry budget
		RetryBase:    time.Millisecond,
		StallTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, q, j.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Stalls != 2 {
		t.Errorf("Stalls = %d, want 2 (budget 1 + the failing one)", final.Stalls)
	}
}

// TestSubscriberOverflowDoesNotBlockQueue: a subscriber that stops
// reading loses events past its 256-slot buffer but never blocks the
// publisher — the job still completes and the channel still closes.
func TestSubscriberOverflowDoesNotBlockQueue(t *testing.T) {
	const published = 400
	r := RunnerFunc(func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
		for i := 1; i <= published; i++ {
			publish(Event{Type: "progress", Units: i})
		}
		return json.RawMessage(`{"ok":true}`), nil
	})
	q, err := Open(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	events, stop, err := q.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Only now start the queue: the subscriber is attached but not
	// reading, so the publisher overruns its buffer while it runs.
	q.Start()
	waitState(t, q, j.ID, StateDone)

	var drained int
	for range events { // the channel must close despite the overflow
		drained++
	}
	if drained != 256 {
		t.Errorf("drained %d events, want exactly the 256-slot buffer", drained)
	}
}

// TestCancelRacesCompletion: hammering Cancel against an instantly
// completing job must always land in a consistent terminal state and
// release the admission slot, whichever side wins.
func TestCancelRacesCompletion(t *testing.T) {
	q, err := OpenLimits(t.TempDir(), instantRunner(), Limits{MaxPending: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Start()

	for i := 0; i < 40; i++ {
		j, _, _, err := q.Submit(Spec{Kind: KindSecbench, Design: "sa", Trials: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := q.Cancel(j.ID); err != nil && !errors.Is(err, ErrNotFound) {
				t.Errorf("Cancel: %v", err)
			}
		}()
		final := waitTerminal(t, q, j.ID)
		<-done
		if final.State != StateDone && final.State != StateCanceled {
			t.Fatalf("race left job %s in %s", j.ID, final.State)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Metrics().Live != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Live = %d after all races settled, want 0", q.Metrics().Live)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceFaultMatrix drives every service fault site over several
// seeds and requires no silent cell: the injected fault must land, and
// afterwards every submitted job must be either intact on disk or
// explicitly quarantined — never present-and-wrong, never lost without
// trace. Fail-type sites must additionally have been detected in flight
// (a typed submission error or a consumed retry).
func TestServiceFaultMatrix(t *testing.T) {
	specs := make([]Spec, 6)
	for i := range specs {
		specs[i] = Spec{Kind: KindSecbench, Design: "sa", Trials: 10 + i}.Normalize()
	}
	for _, site := range faultinject.ServiceSites() {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", site, seed), func(t *testing.T) {
				in, err := faultinject.NewService(site, seed)
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				q, err := OpenLimits(dir, instantRunner(), Limits{
					RetryBudget: 3,
					RetryBase:   time.Millisecond,
					PersistHook: &PersistHook{OnWrite: in.OnWrite, OnRename: in.OnRename},
				})
				if err != nil {
					t.Fatal(err)
				}
				q.Start()

				var submitErrs int
				for _, spec := range specs {
					j, _, _, err := q.Submit(spec)
					if err != nil {
						// The fault rejected the submission itself; it must
						// be typed transient, and the retried submission —
						// the injector fires once — must get through.
						if !IsTransient(err) {
							t.Fatalf("submission error not typed transient: %v", err)
						}
						submitErrs++
						if j, _, _, err = q.Submit(spec); err != nil {
							t.Fatalf("resubmission after transient rejection: %v", err)
						}
					}
					waitTerminal(t, q, j.ID)
				}
				retried := q.Metrics().Retried
				q.Close()

				if !in.Fired() {
					t.Fatalf("fault never landed within the workload (%d persists too few)", len(specs))
				}
				if site != faultinject.SiteJobTornWrite && submitErrs == 0 && retried == 0 {
					t.Errorf("silent cell: %s fired (%s) but no rejection or retry observed", site, in.Detail())
				}

				// Reopen: every record must be intact (parsed, done) or
				// quarantined with the original bytes preserved.
				q2, err := Open(dir, instantRunner())
				if err != nil {
					t.Fatalf("reopen over the faulted store: %v", err)
				}
				defer q2.Close()
				for _, spec := range specs {
					id, err := spec.ID()
					if err != nil {
						t.Fatal(err)
					}
					if j, ok := q2.Get(id); ok {
						if j.State != StateDone {
							t.Errorf("job %s recovered as %s, want done", id, j.State)
						}
						continue
					}
					if _, err := os.Stat(filepath.Join(dir, id+jobSuffix+corruptSuffix)); err != nil {
						t.Errorf("job %s neither recovered nor quarantined: %v (fault: %s)", id, err, in.Detail())
					}
				}
				if torn := in.Site() == faultinject.SiteJobTornWrite; !torn && q2.Metrics().Quarantined != 0 {
					t.Errorf("fail-type site %s left %d corrupt records", site, q2.Metrics().Quarantined)
				}
			})
		}
	}
}

// TestBackoffDeterministicAndBounded: the retry delay doubles per attempt
// within [base/2, cap] and is a pure function of (job ID, attempt) — two
// daemons replaying the same history schedule identically.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	q := &Queue{lim: Limits{RetryBase: 100 * time.Millisecond, RetryMax: 5 * time.Second}.withDefaults()}
	for attempt := 1; attempt <= 10; attempt++ {
		d := q.backoff("93256aa5b28380a5", attempt)
		if d != q.backoff("93256aa5b28380a5", attempt) {
			t.Fatalf("attempt %d: backoff is not deterministic", attempt)
		}
		step := 100 * time.Millisecond << (attempt - 1)
		if step > 5*time.Second {
			step = 5 * time.Second
		}
		if d < step/2 || d > step {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, step/2, step)
		}
	}
	if a, b := q.backoff("aaaa", 1), q.backoff("bbbb", 1); a == b {
		t.Errorf("distinct jobs share a jitter phase: %v", a)
	}
}
