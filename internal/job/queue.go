package job

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Runner executes one campaign. The queue guarantees at most one Run per
// job ID at a time; publish streams progress events (the queue stamps the
// job ID and fans them out to subscribers). Run must honour ctx with the
// repo's drain semantics: stop admitting work, let started trials finish,
// flush durable state, then return the context error.
type Runner interface {
	Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
	return f(ctx, spec, publish)
}

// Metrics is a point-in-time reading of the queue's counters.
type Metrics struct {
	// Submissions counts every Submit call, however it was served.
	Submissions int64
	// CoalesceHits counts submissions that attached to an already live
	// (pending or running) job instead of starting an execution.
	CoalesceHits int64
	// CacheHits counts submissions served from a completed job's stored
	// result.
	CacheHits int64
	// Executions counts runner starts.
	Executions int64
	// Recovered counts jobs found pending or running on disk at Open —
	// interrupted work a restarted daemon resumes.
	Recovered int64
	// JobsByState counts the known jobs per state.
	JobsByState map[State]int
}

// Queue is the durable, coalescing job queue. All methods are safe for
// concurrent use.
type Queue struct {
	dir    string
	runner Runner

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // insertion order, for List
	cancels map[string]context.CancelFunc
	subs    map[string][]chan Event
	started bool
	drain   bool
	metrics Metrics

	root context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
}

const jobSuffix = ".job.json"

// Open loads the queue rooted at dir (created if missing). Jobs found
// pending or running — interrupted by whatever ended the previous daemon —
// are reset to pending and re-executed when Start is called; their
// checkpoint files make the re-execution a resume. Completed jobs keep
// serving cache hits.
func Open(dir string, r Runner) (*Queue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	q := &Queue{
		dir:     dir,
		runner:  r,
		jobs:    map[string]*Job{},
		cancels: map[string]context.CancelFunc{},
		subs:    map[string][]chan Event{},
	}
	q.root, q.stop = context.WithCancel(context.Background())
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), jobSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("job: %w", err)
		}
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("job: record %s: %w", name, err)
		}
		if j.ID == "" || strings.TrimSuffix(name, jobSuffix) != j.ID {
			return nil, fmt.Errorf("job: record %s names job %q", name, j.ID)
		}
		if !j.State.Terminal() {
			j.State = StatePending
			q.metrics.Recovered++
			if err := q.persist(&j); err != nil {
				return nil, err
			}
		}
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
	}
	return q, nil
}

// Dir returns the queue's durable directory.
func (q *Queue) Dir() string { return q.dir }

// Start launches every pending job (the recovered backlog) and marks the
// queue live. It must be called exactly once, before Submit.
func (q *Queue) Start() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.started = true
	for _, id := range q.order {
		if q.jobs[id].State == StatePending {
			q.launchLocked(id)
		}
	}
}

// Submit enqueues a campaign. The spec is normalised and validated; its
// fingerprint is the job ID. A live job with the same ID absorbs the
// submission (coalesced=true), a completed one serves its stored result
// (cached=true), a failed or canceled one is re-run, and an unknown one
// starts fresh. The returned Job is a snapshot.
func (q *Queue) Submit(spec Spec) (Job, bool, bool, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Job{}, false, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return Job{}, false, false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.drain {
		return Job{}, false, false, ErrDraining
	}
	q.metrics.Submissions++
	if j, ok := q.jobs[id]; ok {
		switch {
		case j.State.Terminal() && j.State == StateDone:
			j.CacheHits++
			q.metrics.CacheHits++
			return *j, false, true, nil
		case j.State.Terminal(): // failed or canceled: re-run under the same ID
			j.State = StatePending
			j.Error = ""
			j.Result = nil
			j.Units = 0
			if err := q.persist(j); err != nil {
				return Job{}, false, false, err
			}
			q.launchLocked(id)
			return *j, false, false, nil
		default: // pending or running: coalesce
			j.Coalesced++
			q.metrics.CoalesceHits++
			return *j, true, false, nil
		}
	}
	j := &Job{ID: id, Spec: spec, State: StatePending}
	if err := q.persist(j); err != nil {
		return Job{}, false, false, err
	}
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.launchLocked(id)
	return *j, false, false, nil
}

// Get returns a snapshot of the job with the given ID.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every known job, in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a live job: admission stops, started
// trials drain, and the job lands in StateCanceled. It reports whether the
// job was live (terminal jobs are left untouched).
func (q *Queue) Cancel(id string) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return false, ErrNotFound
	}
	if j.State.Terminal() {
		return false, nil
	}
	if cancel, ok := q.cancels[id]; ok {
		cancel()
	}
	return true, nil
}

// Subscribe returns a channel of the job's events: first a state snapshot
// (plus the result, for an already completed job), then live events until
// the job reaches a terminal state, when the channel closes. The returned
// stop function detaches the subscriber early; it is always safe to call.
func (q *Queue) Subscribe(id string) (<-chan Event, func(), error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Event, 256)
	ch <- Event{Job: j.ID, Type: "state", State: j.State, Error: j.Error}
	if j.State.Terminal() {
		if j.State == StateDone {
			ch <- Event{Job: j.ID, Type: "result", Result: j.Result}
		}
		close(ch)
		return ch, func() {}, nil
	}
	q.subs[id] = append(q.subs[id], ch)
	stop := func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		for i, c := range q.subs[id] {
			if c == ch {
				q.subs[id] = append(q.subs[id][:i], q.subs[id][i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, stop, nil
}

// Metrics returns a point-in-time reading of the queue's counters.
func (q *Queue) Metrics() Metrics {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := q.metrics
	m.JobsByState = map[State]int{}
	for _, j := range q.jobs {
		m.JobsByState[j.State]++
	}
	return m
}

// Close drains the queue: no new submissions are admitted, every live
// job's context is cancelled (started trials finish — nothing is
// preempted), executors flush their checkpoints and park their jobs back
// in StatePending on disk, and Close returns once all of them have. A
// subsequent Open of the same directory resumes the parked jobs.
func (q *Queue) Close() {
	q.mu.Lock()
	q.drain = true
	q.mu.Unlock()
	q.stop()
	q.wg.Wait()
}

// --- internals --------------------------------------------------------------

// launchLocked starts the executor goroutine for a pending job. Callers
// hold q.mu; the queue must have been started.
func (q *Queue) launchLocked(id string) {
	if !q.started {
		return
	}
	ctx, cancel := context.WithCancel(q.root)
	q.cancels[id] = cancel
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		defer cancel()
		q.execute(ctx, id)
	}()
}

// execute runs one job to a terminal state (or parks it back to pending on
// a drain).
func (q *Queue) execute(ctx context.Context, id string) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State != StatePending {
		q.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Executions++
	q.metrics.Executions++
	spec := j.Spec
	if err := q.persist(j); err != nil {
		q.failLocked(j, err)
		q.mu.Unlock()
		return
	}
	q.publishLocked(j.ID, Event{Type: "state", State: StateRunning})
	q.mu.Unlock()

	result, err := q.runner.Run(ctx, spec, func(ev Event) {
		q.mu.Lock()
		defer q.mu.Unlock()
		if ev.Type == "progress" {
			if jj, ok := q.jobs[id]; ok {
				jj.Units = ev.Units
			}
		}
		q.publishLocked(id, ev)
	})

	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case err == nil:
		j.State = StateDone
		j.Result = result
		j.Error = ""
		if perr := q.persist(j); perr != nil {
			q.failLocked(j, perr)
			return
		}
		q.publishLocked(id, Event{Type: "result", Result: result})
		q.publishLocked(id, Event{Type: "state", State: StateDone})
	case ctx.Err() != nil && q.drain:
		// Daemon shutdown, not a user cancel: park the job for the next
		// daemon to resume from its checkpoint.
		j.State = StatePending
		_ = q.persist(j)
		q.publishLocked(id, Event{Type: "state", State: StatePending})
	case ctx.Err() != nil:
		j.State = StateCanceled
		_ = q.persist(j)
		q.publishLocked(id, Event{Type: "state", State: StateCanceled})
	default:
		q.failLocked(j, err)
		return
	}
	q.closeSubsLocked(id)
	delete(q.cancels, id)
}

// failLocked records a failed execution. Callers hold q.mu.
func (q *Queue) failLocked(j *Job, err error) {
	j.State = StateFailed
	j.Error = err.Error()
	_ = q.persist(j)
	q.publishLocked(j.ID, Event{Type: "state", State: StateFailed, Error: j.Error})
	q.closeSubsLocked(j.ID)
	delete(q.cancels, j.ID)
}

// publishLocked fans an event out to the job's subscribers. Sends never
// block the queue: a subscriber that has fallen 256 events behind loses
// the oldest semantics anyway, so the event is dropped for it.
func (q *Queue) publishLocked(id string, ev Event) {
	ev.Job = id
	for _, ch := range q.subs[id] {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (q *Queue) closeSubsLocked(id string) {
	for _, ch := range q.subs[id] {
		close(ch)
	}
	delete(q.subs, id)
}

// persist writes a job record atomically (temp file + rename), the same
// torn-write discipline as the checkpoint files. Callers hold q.mu.
func (q *Queue) persist(j *Job) error {
	raw, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("job: %w", err)
	}
	path := filepath.Join(q.dir, j.ID+jobSuffix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("job: %w", err)
	}
	return nil
}
