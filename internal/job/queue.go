package job

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Runner executes one campaign. The queue guarantees at most one Run per
// job ID at a time; publish streams progress events (the queue stamps the
// job ID and fans them out to subscribers). Run must honour ctx with the
// repo's drain semantics: stop admitting work, let started trials finish,
// flush durable state, then return the context error.
type Runner interface {
	Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec Spec, publish func(Event)) (json.RawMessage, error) {
	return f(ctx, spec, publish)
}

// Metrics is a point-in-time reading of the queue's counters.
type Metrics struct {
	// Submissions counts every admitted Submit call, however it was served.
	Submissions int64
	// CoalesceHits counts submissions that attached to an already live
	// (pending or running) job instead of starting an execution.
	CoalesceHits int64
	// CacheHits counts submissions served from a completed job's stored
	// result.
	CacheHits int64
	// Executions counts runner starts.
	Executions int64
	// Recovered counts jobs found pending or running on disk at Open —
	// interrupted work a restarted daemon resumes.
	Recovered int64
	// Quarantined counts corrupt job records Open moved aside to
	// <id>.job.json.corrupt instead of refusing to start.
	Quarantined int64
	// Retried counts transient-failure retries the queue scheduled.
	Retried int64
	// Stalled counts watchdog re-parks of jobs whose progress stalled.
	Stalled int64
	// RejectedFull counts submissions refused because the live-job depth
	// was at Limits.MaxPending.
	RejectedFull int64
	// RejectedClient counts submissions refused by the per-client
	// in-flight cap.
	RejectedClient int64
	// RejectedDraining counts submissions refused during shutdown.
	RejectedDraining int64
	// Handoffs counts expired-lease jobs this node's reaper claimed from a
	// dead peer (cluster mode).
	Handoffs int64
	// FencedWrites counts durable writes refused because a newer lease
	// epoch existed on disk — a zombie's torn record that never was.
	FencedWrites int64
	// LeaseRenewals and LeaseRenewFails count the keeper's renewal
	// outcomes.
	LeaseRenewals   int64
	LeaseRenewFails int64
	// LeasesLost counts jobs this node abandoned after its lease was
	// superseded (the hand-off seen from the losing side).
	LeasesLost int64
	// LeasesHeld is the current number of live jobs this node owns a
	// lease on (cluster mode).
	LeasesHeld int
	// Live is the current pending+running job count (the admission gauge).
	Live int
	// JobsByState counts the known jobs per state.
	JobsByState map[State]int
}

// Limits is the queue's admission-control and self-healing policy. The
// zero value reproduces the unhardened behaviour: unbounded admission, no
// retries, no watchdog.
type Limits struct {
	// MaxPending bounds the live (pending+running) job depth; submissions
	// that would start new work beyond it get ErrQueueFull. 0 = unbounded.
	MaxPending int
	// MaxPerClient bounds the live jobs any one client may be attached to;
	// further submissions get ErrClientBusy. 0 = unbounded. Attachment is
	// tracked in memory only — a daemon restart grants a fresh allowance.
	MaxPerClient int
	// RetryBudget is how many transient failures (FailTransient under the
	// Classify taxonomy) each job may retry with exponential backoff. The
	// consumed count is persisted in the job record, so a daemon restart
	// does not reset it. 0 = fail on the first error.
	RetryBudget int
	// RetryBase is the first backoff step (default 100ms); successive
	// retries double it, capped at RetryMax (default 5s), with ±50%
	// deterministic jitter derived from the job ID.
	RetryBase time.Duration
	RetryMax  time.Duration
	// StallTimeout arms the stuck-job watchdog: a running job whose Units
	// counter does not advance for this long is cancelled and re-parked to
	// pending (its checkpoint makes the re-run a resume). 0 = disabled.
	StallTimeout time.Duration
	// StallPoll is the watchdog's poll interval (default StallTimeout/4).
	StallPoll time.Duration
	// PersistHook, when set, intercepts the queue's durable record writes —
	// the fault-injection seam internal/faultinject's service sites use.
	PersistHook *PersistHook
	// Cluster enables multi-node operation over a shared directory: every
	// execution runs under an epoch-fenced lease, expired leases are
	// reaped and handed off, and stale-epoch writes are refused. The zero
	// value keeps the single-daemon behaviour.
	Cluster Cluster
}

// stallBudget bounds how many times the watchdog re-parks one job before
// declaring it failed, so a deterministically wedged runner cannot loop
// forever.
func (l Limits) stallBudget() int {
	if l.RetryBudget > 0 {
		return l.RetryBudget
	}
	return 3
}

func (l Limits) withDefaults() Limits {
	if l.RetryBase <= 0 {
		l.RetryBase = 100 * time.Millisecond
	}
	if l.RetryMax <= 0 {
		l.RetryMax = 5 * time.Second
	}
	if l.StallPoll <= 0 {
		if l.StallPoll = l.StallTimeout / 4; l.StallPoll <= 0 {
			l.StallPoll = 10 * time.Millisecond
		}
	}
	if l.Cluster.Node != "" {
		l.Cluster = l.Cluster.withDefaults()
	}
	return l
}

// PersistHook intercepts the queue's durable job-record writes, for fault
// injection. Both callbacks are optional.
type PersistHook struct {
	// OnWrite sees the record bytes about to be written and may transform
	// them (a torn write) or refuse them (a failed write).
	OnWrite func(path string, data []byte) ([]byte, error)
	// OnRename may refuse the atomic rename that installs the record.
	OnRename func(tmp, final string) error
	// OnLease intercepts lease-protocol steps (cluster mode): op is
	// "renew" when the keeper extends a lease deadline and "fence" when a
	// durable write checks its epoch is still current. Returning an error
	// fails that step — a refused renewal is skipped (the next tick tries
	// again), a refused fence check makes the write behave exactly as if
	// a newer epoch had been found.
	OnLease func(op, id string, epoch uint64) error
}

// progressMark is the watchdog's view of one running job: the last Units
// reading and when it changed.
type progressMark struct {
	units int
	at    time.Time
}

// Queue is the durable, coalescing job queue. All methods are safe for
// concurrent use.
type Queue struct {
	dir    string
	runner Runner
	lim    Limits

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for List
	cancels  map[string]context.CancelFunc
	subs     map[string][]chan Event
	attached map[string]map[string]bool // job ID -> clients holding a slot
	clients  map[string]int             // client -> live jobs attached
	progress map[string]progressMark
	stalled  map[string]bool
	fenced   map[string]bool // jobs whose lease was superseded mid-run
	live     int             // pending+running jobs, the admission gauge
	started  bool
	drain    bool
	metrics  Metrics

	root context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
}

const (
	jobSuffix = ".job.json"
	// corruptSuffix is appended to a quarantined record's filename.
	corruptSuffix = ".corrupt"
)

// Open loads the queue rooted at dir (created if missing) with the zero
// Limits. See OpenLimits.
func Open(dir string, r Runner) (*Queue, error) {
	return OpenLimits(dir, r, Limits{})
}

// OpenLimits loads the queue rooted at dir (created if missing). Jobs found
// pending or running — interrupted by whatever ended the previous daemon —
// are reset to pending and re-executed when Start is called; their
// checkpoint files make the re-execution a resume. Completed jobs keep
// serving cache hits. A corrupt or torn record is quarantined to
// <name>.corrupt and counted, never a reason to refuse startup: one bad
// file must not take down the whole daemon.
func OpenLimits(dir string, r Runner, lim Limits) (*Queue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	q := &Queue{
		dir:      dir,
		runner:   r,
		lim:      lim.withDefaults(),
		jobs:     map[string]*Job{},
		cancels:  map[string]context.CancelFunc{},
		subs:     map[string][]chan Event{},
		attached: map[string]map[string]bool{},
		clients:  map[string]int{},
		progress: map[string]progressMark{},
		stalled:  map[string]bool{},
		fenced:   map[string]bool{},
	}
	q.root, q.stop = context.WithCancel(context.Background())
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), jobSuffix+".tmp") {
			// A crash between temp write and rename leaves the temp file;
			// the record it was replacing is still intact.
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if strings.HasSuffix(e.Name(), jobSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("job: %w", err)
		}
		j, err := decodeRecord(name, raw)
		if err != nil {
			if qerr := q.quarantine(name); qerr != nil {
				return nil, qerr
			}
			continue
		}
		if !j.State.Terminal() {
			if q.clustered() {
				// Shared directory: only reclaim live jobs this node can
				// prove ownership of (its own previous incarnation's, or
				// orphans whose lease has lapsed). Everything else belongs
				// to a living peer and stays out of local memory.
				if !q.recoverCluster(&j) {
					continue
				}
			} else {
				j.State = StatePending
				q.metrics.Recovered++
				// Best-effort: a transient write failure here must not stop
				// the daemon from coming up — the record still reads as
				// live on disk, and the next successful persist re-parks it.
				_ = q.persist(&j)
			}
		}
		if !j.State.Terminal() {
			q.live++
		}
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
	}
	return q, nil
}

// decodeRecord parses one durable job record, refusing IDs that disagree
// with the filename and re-compacting the stored result (the record is
// stored indented for humans, which re-indents the embedded payload; a
// job served after a restart must return the exact bytes the runner
// produced).
func decodeRecord(name string, raw []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(raw, &j); err != nil {
		return Job{}, err
	}
	if j.ID == "" || strings.TrimSuffix(name, jobSuffix) != j.ID {
		return Job{}, fmt.Errorf("job: record %s names job %q", name, j.ID)
	}
	if len(j.Result) > 0 {
		var buf bytes.Buffer
		if err := json.Compact(&buf, j.Result); err != nil {
			return Job{}, err
		}
		j.Result = append(json.RawMessage(nil), buf.Bytes()...)
	}
	return j, nil
}

// recoverCluster decides what a starting node does with a live record in
// the shared directory: a job healthily leased to a living peer is left
// alone (false), anything this node can claim — its own dead
// incarnation's jobs, lapsed leases, never-claimed orphans — is re-parked
// pending under a fresh epoch (true).
func (q *Queue) recoverCluster(j *Job) bool {
	max, lease := q.diskEpoch(j.ID)
	if max > 0 && lease.Node != q.lim.Cluster.Node && !lease.Expired(time.Now()) {
		return false
	}
	nl, ok := q.claimLease(j.ID, max+1)
	if !ok {
		return false
	}
	if max > 0 && lease.Node != "" && lease.Node != q.lim.Cluster.Node {
		// A peer's lapsed lease claimed at startup is a hand-off, not a
		// plain resume.
		j.Handoffs++
		q.metrics.Handoffs++
	}
	j.State = StatePending
	j.Lease = &nl
	q.metrics.Recovered++
	_ = q.persist(j) // best-effort, same contract as the single-node path
	return true
}

// quarantine moves a corrupt record aside so the queue can keep serving.
func (q *Queue) quarantine(name string) error {
	src := filepath.Join(q.dir, name)
	if err := os.Rename(src, src+corruptSuffix); err != nil {
		return fmt.Errorf("job: quarantining record %s: %w", name, err)
	}
	q.metrics.Quarantined++
	return nil
}

// Dir returns the queue's durable directory.
func (q *Queue) Dir() string { return q.dir }

// Start launches every pending job (the recovered backlog), arms the
// stall watchdog if configured, and marks the queue live. It must be
// called exactly once, before Submit.
func (q *Queue) Start() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.started = true
	for _, id := range q.order {
		if q.jobs[id].State == StatePending {
			q.launchLocked(id)
		}
	}
	if q.lim.StallTimeout > 0 {
		q.wg.Add(1)
		go q.watchdog()
	}
	if q.clustered() {
		q.wg.Add(2)
		go q.keeper()
		go q.reaper()
	}
}

// Submit enqueues a campaign with no client attribution. See SubmitFrom.
func (q *Queue) Submit(spec Spec) (Job, bool, bool, error) {
	return q.SubmitFrom("", spec)
}

// SubmitFrom enqueues a campaign on behalf of client (an opaque caller
// identity; "" opts out of per-client accounting). The spec is normalised
// and validated; its fingerprint is the job ID. A live job with the same
// ID absorbs the submission (coalesced=true), a completed one serves its
// stored result (cached=true), a failed or canceled one is re-run, and an
// unknown one starts fresh. Submissions that would start or attach to live
// work pass admission control first: ErrQueueFull when the live depth is
// at Limits.MaxPending, ErrClientBusy when the client holds MaxPerClient
// live jobs. The returned Job is a snapshot.
func (q *Queue) SubmitFrom(client string, spec Spec) (Job, bool, bool, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Job{}, false, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return Job{}, false, false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.drain {
		q.metrics.RejectedDraining++
		return Job{}, false, false, ErrDraining
	}
	if j, ok := q.jobs[id]; ok {
		switch {
		case j.State == StateDone:
			// Cache hits cost nothing: always admitted.
			q.metrics.Submissions++
			j.CacheHits++
			q.metrics.CacheHits++
			return *j, false, true, nil
		case j.State.Terminal(): // failed or canceled: re-run under the same ID
			if err := q.admitLocked(client, id); err != nil {
				return Job{}, false, false, err
			}
			prev := *j
			if q.clustered() {
				// Take ownership of the re-run up front: the claim both
				// fences our pending write and arbitrates against a peer
				// re-running the same job — the loser simply attaches.
				max, _ := q.diskEpoch(id)
				lease, won := q.claimLease(id, max+1)
				if !won {
					q.metrics.Submissions++
					q.metrics.CoalesceHits++
					q.dropLocalLocked(id)
					if dj, ok := q.readRecordLocked(id); ok {
						return dj, true, false, nil
					}
					return prev, true, false, nil
				}
				j.Lease = &lease
			}
			q.metrics.Submissions++
			j.State = StatePending
			j.Error = ""
			j.Result = nil
			j.Units = 0
			j.Retries = 0
			j.Stalls = 0
			j.Handoffs = 0
			if err := q.persist(j); err != nil {
				*j = prev
				return Job{}, false, false, err
			}
			q.live++
			q.attachLocked(client, id)
			q.launchLocked(id)
			return *j, false, false, nil
		default: // pending or running: coalesce
			if err := q.admitClientLocked(client, id); err != nil {
				return Job{}, false, false, err
			}
			q.metrics.Submissions++
			q.attachLocked(client, id)
			j.Coalesced++
			q.metrics.CoalesceHits++
			return *j, true, false, nil
		}
	}
	if q.clustered() {
		if j, coalesced, cached, handled, err := q.submitRemoteLocked(client, id); handled {
			return j, coalesced, cached, err
		}
	}
	if err := q.admitLocked(client, id); err != nil {
		return Job{}, false, false, err
	}
	j := &Job{ID: id, Spec: spec, State: StatePending}
	if err := q.persist(j); err != nil {
		return Job{}, false, false, err
	}
	q.metrics.Submissions++
	q.live++
	q.attachLocked(client, id)
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.launchLocked(id)
	return *j, false, false, nil
}

// submitRemoteLocked consults the shared directory for a job this node has
// never seen: a submission may hit a record some peer wrote. handled=false
// means no usable record exists and the caller should start fresh.
// Callers hold q.mu.
func (q *Queue) submitRemoteLocked(client, id string) (Job, bool, bool, bool, error) {
	dj, ok := q.readRecordLocked(id)
	if !ok {
		return Job{}, false, false, false, nil
	}
	switch {
	case dj.State == StateDone:
		// A peer finished this campaign: adopt the record as a local cache
		// entry — content addressing makes its result as good as our own.
		q.metrics.Submissions++
		dj.CacheHits++
		q.metrics.CacheHits++
		cp := dj
		q.jobs[id] = &cp
		q.order = append(q.order, id)
		return dj, false, true, true, nil
	case dj.State.Terminal():
		// Failed or canceled elsewhere: re-run here if we win the claim.
		if err := q.admitLocked(client, id); err != nil {
			return Job{}, false, false, true, err
		}
		max, _ := q.diskEpoch(id)
		lease, won := q.claimLease(id, max+1)
		if !won {
			q.metrics.Submissions++
			q.metrics.CoalesceHits++
			return dj, true, false, true, nil
		}
		dj.State = StatePending
		dj.Error = ""
		dj.Result = nil
		dj.Units = 0
		dj.Retries = 0
		dj.Stalls = 0
		dj.Handoffs = 0
		dj.Lease = &lease
		cp := dj
		if err := q.persist(&cp); err != nil {
			return Job{}, false, false, true, err
		}
		q.metrics.Submissions++
		q.live++
		q.attachLocked(client, id)
		q.jobs[id] = &cp
		q.order = append(q.order, id)
		q.launchLocked(id)
		return cp, false, false, true, nil
	default:
		// Live on a peer: the submission coalesces cluster-wide — the
		// caller polls any node and reads the shared record. Per-client
		// slots are not charged; the owning node accounts the execution.
		q.metrics.Submissions++
		q.metrics.CoalesceHits++
		return dj, true, false, true, nil
	}
}

// admitLocked applies both admission gates for a submission that starts
// new live work. Callers hold q.mu.
func (q *Queue) admitLocked(client, id string) error {
	if q.lim.MaxPending > 0 && q.live >= q.lim.MaxPending {
		q.metrics.RejectedFull++
		return ErrQueueFull
	}
	return q.admitClientLocked(client, id)
}

// admitClientLocked applies the per-client in-flight cap. Attaching again
// to a job the client already holds is free. Callers hold q.mu.
func (q *Queue) admitClientLocked(client, id string) error {
	if client == "" || q.lim.MaxPerClient <= 0 {
		return nil
	}
	if q.attached[id][client] {
		return nil
	}
	if q.clients[client] >= q.lim.MaxPerClient {
		q.metrics.RejectedClient++
		return ErrClientBusy
	}
	return nil
}

// attachLocked records that client holds a slot on the live job id.
func (q *Queue) attachLocked(client, id string) {
	if client == "" {
		return
	}
	set := q.attached[id]
	if set == nil {
		set = map[string]bool{}
		q.attached[id] = set
	}
	if !set[client] {
		set[client] = true
		q.clients[client]++
	}
}

// Get returns a snapshot of the job with the given ID.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		if q.clustered() {
			// The record may live on a peer; the shared directory is the
			// cluster's authoritative view, so read it fresh each time.
			return q.readRecordLocked(id)
		}
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every known job, in submission order. In
// cluster mode, records owned by peers (absent from local memory) are
// appended in ID order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	if q.clustered() {
		out = append(out, q.listDiskLocked()...)
	}
	return out
}

// Ready reports whether the queue can accept new work, with a reason when
// it cannot — the daemon's readiness probe, distinct from liveness: a
// draining or saturated daemon is alive but should receive no new traffic.
func (q *Queue) Ready() (bool, string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case q.drain:
		return false, "draining"
	case q.lim.MaxPending > 0 && q.live >= q.lim.MaxPending:
		return false, fmt.Sprintf("at capacity (%d live jobs)", q.live)
	}
	return true, "ok"
}

// Cancel requests cancellation of a live job: admission stops, started
// trials drain, and the job lands in StateCanceled. A pending job with no
// executor (queued behind Start, or waiting out a retry backoff) is
// cancelled immediately. It reports whether the job was live (terminal
// jobs are left untouched).
func (q *Queue) Cancel(id string) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return false, ErrNotFound
	}
	if j.State.Terminal() {
		return false, nil
	}
	if cancel, ok := q.cancels[id]; ok {
		cancel()
		return true, nil
	}
	j.State = StateCanceled
	if perr := q.persist(j); errors.Is(perr, ErrStaleEpoch) {
		q.abandonLocked(id)
		return true, nil
	}
	q.publishLocked(id, Event{Type: "state", State: StateCanceled})
	q.finishLocked(id)
	return true, nil
}

// Subscribe returns a channel of the job's events: first a state snapshot
// (plus the result, for an already completed job), then live events until
// the job reaches a terminal state, when the channel closes. The returned
// stop function detaches the subscriber early; it is always safe to call.
func (q *Queue) Subscribe(id string) (<-chan Event, func(), error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		if q.clustered() {
			// A peer's terminal record can be streamed from disk (result,
			// then closing state — the live stream's terminal shape). Live
			// remote jobs are the serve layer's to follow (it polls the
			// shared record), so they stay ErrNotFound here.
			if jr, found := q.readRecordLocked(id); found && jr.State.Terminal() {
				ch := make(chan Event, 2)
				if jr.State == StateDone {
					ch <- Event{Job: jr.ID, Type: "result", Result: jr.Result}
				}
				ch <- Event{Job: jr.ID, Type: "state", State: jr.State, Error: jr.Error}
				close(ch)
				return ch, func() {}, nil
			}
		}
		return nil, nil, ErrNotFound
	}
	ch := make(chan Event, 256)
	if j.State.Terminal() {
		// Match the live stream's terminal ordering — result, then the
		// closing state event — so late subscribers see the same shape.
		if j.State == StateDone {
			ch <- Event{Job: j.ID, Type: "result", Result: j.Result}
		}
		ch <- Event{Job: j.ID, Type: "state", State: j.State, Error: j.Error}
		close(ch)
		return ch, func() {}, nil
	}
	ch <- Event{Job: j.ID, Type: "state", State: j.State, Error: j.Error}
	q.subs[id] = append(q.subs[id], ch)
	stop := func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		for i, c := range q.subs[id] {
			if c == ch {
				q.subs[id] = append(q.subs[id][:i], q.subs[id][i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, stop, nil
}

// Metrics returns a point-in-time reading of the queue's counters.
func (q *Queue) Metrics() Metrics {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := q.metrics
	m.Live = q.live
	m.JobsByState = map[State]int{}
	for _, j := range q.jobs {
		m.JobsByState[j.State]++
		if !j.State.Terminal() && j.Lease != nil && j.Lease.Node == q.lim.Cluster.Node {
			m.LeasesHeld++
		}
	}
	return m
}

// Close drains the queue: no new submissions are admitted, every live
// job's context is cancelled (started trials finish — nothing is
// preempted), executors flush their checkpoints and park their jobs back
// in StatePending on disk, and Close returns once all of them have. A
// subsequent Open of the same directory resumes the parked jobs.
func (q *Queue) Close() {
	q.mu.Lock()
	q.drain = true
	if q.clustered() {
		// Expire the leases of parked jobs (awaiting a retry backoff or
		// never launched) in place, so peers hand them off immediately
		// instead of waiting out the TTL. Executing jobs release in their
		// drain path once the checkpoint has flushed.
		for _, j := range q.jobs {
			if _, running := q.cancels[j.ID]; running {
				continue
			}
			if !j.State.Terminal() && j.Lease != nil && j.Lease.Node == q.lim.Cluster.Node {
				q.releaseLease(j)
			}
		}
	}
	q.mu.Unlock()
	q.stop()
	q.wg.Wait()
}

// --- internals --------------------------------------------------------------

// launchLocked starts the executor goroutine for a pending job. Callers
// hold q.mu; the queue must have been started.
func (q *Queue) launchLocked(id string) {
	if !q.started {
		return
	}
	if _, running := q.cancels[id]; running {
		return
	}
	ctx, cancel := context.WithCancel(q.root)
	q.cancels[id] = cancel
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		defer cancel()
		q.execute(ctx, id)
	}()
}

// execute runs one job to a terminal state (or parks it back to pending on
// a drain, watchdog stall, or retryable failure).
func (q *Queue) execute(ctx context.Context, id string) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State != StatePending {
		q.mu.Unlock()
		return
	}
	if q.clustered() && !q.acquireLocked(j) {
		// Lost the epoch claim: a peer owns this job now. Abandon it
		// locally — reads fall through to the shared record.
		q.abandonLocked(id)
		q.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Executions++
	q.metrics.Executions++
	spec := j.Spec
	q.progress[id] = progressMark{units: j.Units, at: time.Now()}
	if err := q.persist(j); err != nil {
		if errors.Is(err, ErrStaleEpoch) {
			q.abandonLocked(id)
			q.mu.Unlock()
			return
		}
		q.settleFailureLocked(j, err)
		q.mu.Unlock()
		return
	}
	q.publishLocked(j.ID, Event{Type: "state", State: StateRunning})
	q.mu.Unlock()

	result, err := q.runner.Run(ctx, spec, func(ev Event) {
		q.mu.Lock()
		defer q.mu.Unlock()
		if ev.Type == "progress" {
			if jj, ok := q.jobs[id]; ok && jj.Units != ev.Units {
				jj.Units = ev.Units
				q.progress[id] = progressMark{units: ev.Units, at: time.Now()}
				// Checkpoint progress doubles as lease renewal: an
				// advancing job never loses its ownership to the TTL.
				if q.clustered() && jj.Lease != nil && jj.Lease.Node == q.lim.Cluster.Node &&
					time.Until(jj.Lease.Deadline) < q.lim.Cluster.LeaseTTL*2/3 {
					q.renewLease(jj)
				}
			}
		}
		q.publishLocked(id, ev)
	})

	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case q.fenced[id]:
		// The keeper saw our epoch superseded and cancelled the run: the
		// job belongs to a peer, so leave its record strictly alone.
		q.abandonLocked(id)
	case err == nil:
		j.State = StateDone
		j.Result = result
		j.Error = ""
		if perr := q.persist(j); perr != nil {
			if errors.Is(perr, ErrStaleEpoch) {
				// A zombie finishing after hand-off: the result is refused
				// (the new owner will produce the identical bytes) and the
				// record stays the new owner's.
				q.abandonLocked(id)
				return
			}
			q.settleFailureLocked(j, perr)
			return
		}
		q.publishLocked(id, Event{Type: "result", Result: result})
		q.publishLocked(id, Event{Type: "state", State: StateDone})
		q.finishLocked(id)
	case ctx.Err() != nil && q.drain:
		// Daemon shutdown, not a user cancel: park the job for the next
		// daemon to resume from its checkpoint, and hand the lease back so
		// a peer's reaper can take over without waiting out the TTL.
		j.State = StatePending
		if perr := q.persist(j); perr == nil && q.clustered() &&
			j.Lease != nil && j.Lease.Node == q.lim.Cluster.Node {
			q.releaseLease(j)
		}
		q.publishLocked(id, Event{Type: "state", State: StatePending})
		q.closeSubsLocked(id)
		delete(q.cancels, id)
		delete(q.progress, id)
		delete(q.stalled, id)
	case ctx.Err() != nil && q.stalled[id]:
		q.settleStallLocked(j)
	case ctx.Err() != nil:
		j.State = StateCanceled
		if perr := q.persist(j); errors.Is(perr, ErrStaleEpoch) {
			q.abandonLocked(id)
			return
		}
		q.publishLocked(id, Event{Type: "state", State: StateCanceled})
		q.finishLocked(id)
	default:
		q.settleFailureLocked(j, err)
	}
}

// settleFailureLocked applies the retry policy to a failed execution:
// transient failures with budget left re-park the job pending and schedule
// a backed-off relaunch (subscribers stay attached); everything else is a
// terminal failure. Callers hold q.mu.
func (q *Queue) settleFailureLocked(j *Job, err error) {
	if q.lim.RetryBudget > 0 && j.Retries < q.lim.RetryBudget && Classify(err) == FailTransient {
		j.Retries++
		q.metrics.Retried++
		j.State = StatePending
		j.Result = nil
		j.Error = err.Error()
		if perr := q.persist(j); errors.Is(perr, ErrStaleEpoch) {
			q.abandonLocked(j.ID)
			return
		}
		q.publishLocked(j.ID, Event{Type: "retry", Error: err.Error(), Attempt: j.Retries})
		q.publishLocked(j.ID, Event{Type: "state", State: StatePending})
		delete(q.cancels, j.ID)
		delete(q.progress, j.ID)
		q.relaunchAfterLocked(j.ID, q.backoff(j.ID, j.Retries))
		return
	}
	q.failLocked(j, err)
}

// settleStallLocked re-parks a job the watchdog cancelled for stalled
// progress — unless it has exhausted its stall budget, in which case a
// wedged runner becomes a terminal failure rather than an infinite loop.
// Callers hold q.mu.
func (q *Queue) settleStallLocked(j *Job) {
	delete(q.stalled, j.ID)
	j.Stalls++
	q.metrics.Stalled++
	if j.Stalls > q.lim.stallBudget() {
		q.failLocked(j, fmt.Errorf("job: stalled %d times (no progress within %s)", j.Stalls, q.lim.StallTimeout))
		return
	}
	j.State = StatePending
	if perr := q.persist(j); errors.Is(perr, ErrStaleEpoch) {
		q.abandonLocked(j.ID)
		return
	}
	q.publishLocked(j.ID, Event{Type: "stall", Attempt: j.Stalls})
	q.publishLocked(j.ID, Event{Type: "state", State: StatePending})
	delete(q.cancels, j.ID)
	delete(q.progress, j.ID)
	q.relaunchAfterLocked(j.ID, q.backoff(j.ID, j.Stalls))
}

// relaunchAfterLocked schedules a parked job's relaunch after delay. A
// drain during the wait leaves the job parked pending on disk — exactly
// the state a restarted daemon resumes. Callers hold q.mu.
func (q *Queue) relaunchAfterLocked(id string, delay time.Duration) {
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-q.root.Done():
			return
		case <-t.C:
		}
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.drain {
			return
		}
		if j, ok := q.jobs[id]; ok && j.State == StatePending {
			q.launchLocked(id)
		}
	}()
}

// backoff computes the delay before attempt (1-based): exponential from
// RetryBase, capped at RetryMax, with deterministic ±50% jitter derived
// from the job ID so a fleet of retrying jobs never thunders in lockstep
// yet every run of the same schedule is reproducible.
func (q *Queue) backoff(id string, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := q.lim.RetryBase << shift
	if d > q.lim.RetryMax {
		d = q.lim.RetryMax
	}
	state := uint64(attempt)
	for _, b := range []byte(id) {
		state = state*0x100000001b3 + uint64(b)
	}
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if half := d / 2; half > 0 {
		d = half + time.Duration(z%uint64(half))
	}
	return d
}

// watchdog is the stuck-job monitor: a running job whose progress mark has
// not moved within StallTimeout gets its context cancelled; execute then
// re-parks it via settleStallLocked.
func (q *Queue) watchdog() {
	defer q.wg.Done()
	ticker := time.NewTicker(q.lim.StallPoll)
	defer ticker.Stop()
	for {
		select {
		case <-q.root.Done():
			return
		case <-ticker.C:
		}
		now := time.Now()
		q.mu.Lock()
		for id, mark := range q.progress {
			j, ok := q.jobs[id]
			if !ok || j.State != StateRunning || q.stalled[id] {
				continue
			}
			if now.Sub(mark.at) > q.lim.StallTimeout {
				q.stalled[id] = true
				if cancel, ok := q.cancels[id]; ok {
					cancel()
				}
			}
		}
		q.mu.Unlock()
	}
}

// failLocked records a terminally failed execution. Callers hold q.mu.
func (q *Queue) failLocked(j *Job, err error) {
	j.State = StateFailed
	j.Error = err.Error()
	if perr := q.persist(j); errors.Is(perr, ErrStaleEpoch) {
		q.abandonLocked(j.ID)
		return
	}
	q.publishLocked(j.ID, Event{Type: "state", State: StateFailed, Error: j.Error})
	q.finishLocked(j.ID)
}

// finishLocked releases everything a job's terminal transition frees: its
// live-depth slot, its clients' in-flight slots, its subscribers and its
// watchdog state. Callers hold q.mu.
func (q *Queue) finishLocked(id string) {
	q.live--
	for c := range q.attached[id] {
		if q.clients[c]--; q.clients[c] <= 0 {
			delete(q.clients, c)
		}
	}
	delete(q.attached, id)
	q.closeSubsLocked(id)
	delete(q.cancels, id)
	delete(q.progress, id)
	delete(q.stalled, id)
	delete(q.fenced, id)
}

// publishLocked fans an event out to the job's subscribers. Sends never
// block the queue: a subscriber that has fallen 256 events behind loses
// the oldest semantics anyway, so the event is dropped for it.
func (q *Queue) publishLocked(id string, ev Event) {
	ev.Job = id
	for _, ch := range q.subs[id] {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (q *Queue) closeSubsLocked(id string) {
	for _, ch := range q.subs[id] {
		close(ch)
	}
	delete(q.subs, id)
}

// persist writes a job record atomically (temp file + rename), the same
// torn-write discipline as the checkpoint files. Failures are marked
// transient: a disk hiccup is exactly what the retry budget is for — with
// one exception: in cluster mode every write passes the fencing check
// first, and ErrStaleEpoch is final, not transient (the job has a newer
// owner; retrying this node's write can never be right).
// Callers hold q.mu.
func (q *Queue) persist(j *Job) error {
	if q.clustered() {
		if err := q.fenceLocked(j); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("job: %w", err)
	}
	data := append(raw, '\n')
	path := filepath.Join(q.dir, j.ID+jobSuffix)
	if h := q.lim.PersistHook; h != nil && h.OnWrite != nil {
		if data, err = h.OnWrite(path, data); err != nil {
			return Transient(fmt.Errorf("job: record %s: %w", j.ID, err))
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return Transient(fmt.Errorf("job: %w", err))
	}
	if h := q.lim.PersistHook; h != nil && h.OnRename != nil {
		if err := h.OnRename(tmp, path); err != nil {
			os.Remove(tmp)
			return Transient(fmt.Errorf("job: record %s: %w", j.ID, err))
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Transient(fmt.Errorf("job: %w", err))
	}
	return nil
}
