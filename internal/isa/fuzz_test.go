package isa

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode ensures the binary program decoder never panics on arbitrary
// bytes, rejects everything malformed with the typed ErrDecode, and is the
// exact inverse of Encode on everything it accepts: decode-then-encode must
// reproduce the input byte for byte (the property the strict padding checks
// exist for — without them two distinct streams would decode to the same
// program and checkpointed programs could not be verified byte-identically).
func FuzzDecode(f *testing.F) {
	// Seed with canonical encodings of representative programs plus targeted
	// corruptions of each validated field.
	progs := []*Program{
		{},
		{Instrs: []Instr{{Op: OpNop}}},
		{
			Instrs: []Instr{
				{Op: OpLi, Rd: 1, Imm: 5},
				{Op: OpCsrwi, CSR: CSRProcessID, Imm: 1},
				{Op: OpLdRand, Rd: 2, Rs1: 1, Imm: 8},
				{Op: OpBne, Rs1: 1, Rs2: 2, Imm: 0},
				{Op: OpHalt, Imm: -1},
			},
			Data: []DataWord{{VAddr: 0x2000, Value: 1}, {VAddr: 0x3008, Value: 2}},
		},
	}
	for _, p := range progs {
		f.Add(Encode(p))
	}
	valid := Encode(progs[2])
	corrupt := func(idx int, b byte) {
		c := append([]byte(nil), valid...)
		c[idx] ^= b
		f.Add(c)
	}
	corrupt(0, 0xff)  // magic
	corrupt(4, 0x01)  // instruction count
	corrupt(12, 0x01) // header padding
	corrupt(16, 0xff) // opcode
	corrupt(17, 0xe0) // register
	corrupt(22, 0x01) // record padding
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("Decode error is not ErrDecode-typed: %v", err)
			}
			return
		}
		for i, in := range p.Instrs {
			if !in.Op.Valid() {
				t.Fatalf("accepted instr %d has invalid opcode %d", i, in.Op)
			}
			if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
				t.Fatalf("accepted instr %d has out-of-range register", i)
			}
		}
		if re := Encode(p); !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not byte-identical:\n in:  %x\n out: %x", b, re)
		}
	})
}
