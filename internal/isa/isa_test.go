package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if !op.Valid() {
			t.Errorf("op %d should be valid", op)
		}
	}
	if Op(200).Valid() {
		t.Error("op 200 should be invalid")
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op String = %q", got)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpHalt, Imm: 1}, "halt 1"},
		{Instr{Op: OpLi, Rd: 3, Imm: -7}, "li x3, -7"},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 5}, "addi x1, x2, 5"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add x1, x2, x3"},
		{Instr{Op: OpLdNorm, Rd: 2, Rs1: 1, Imm: 8}, "ldnorm x2, 8(x1)"},
		{Instr{Op: OpLdRand, Rd: 2, Rs1: 1}, "ldrand x2, 0(x1)"},
		{Instr{Op: OpSd, Rs2: 4, Rs1: 1, Imm: 16}, "sd x4, 16(x1)"},
		{Instr{Op: OpBeq, Rs1: 3, Rs2: 4, Imm: 12}, "beq x3, x4, 12"},
		{Instr{Op: OpJ, Imm: 3}, "j 3"},
		{Instr{Op: OpCsrr, Rd: 3, CSR: CSRTLBMissCount}, "csrr x3, tlb_miss_count"},
		{Instr{Op: OpCsrw, CSR: CSRProcessID, Rs1: 5}, "csrw process_id, x5"},
		{Instr{Op: OpCsrwi, CSR: CSRSBase, Imm: 3}, "csrwi sbase, 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCSRNamesRoundTrip(t *testing.T) {
	for name, num := range CSRNames {
		if got := CSRName(num); got != name {
			t.Errorf("CSRName(%#x) = %q, want %q", num, got, name)
		}
	}
	if got := CSRName(0x123); got != "0x123" {
		t.Errorf("unknown CSR name = %q", got)
	}
}

func TestIsLoadIsMemory(t *testing.T) {
	loads := []Op{OpLd, OpLdNorm, OpLdRand}
	for _, op := range loads {
		in := Instr{Op: op}
		if !in.IsLoad() || !in.IsMemory() {
			t.Errorf("%s should be a load", op)
		}
	}
	if !(Instr{Op: OpSd}).IsMemory() || (Instr{Op: OpSd}).IsLoad() {
		t.Error("sd is memory but not load")
	}
	if (Instr{Op: OpAdd}).IsMemory() {
		t.Error("add is not memory")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			{Op: OpLi, Rd: 1, Imm: 0x1234567},
			{Op: OpLdNorm, Rd: 2, Rs1: 1, Imm: -8},
			{Op: OpCsrr, Rd: 3, CSR: CSRTLBMissCount},
			{Op: OpHalt},
		},
		Data: []DataWord{{VAddr: 0x100_0000, Value: 42}, {VAddr: 0x100_2008, Value: 7}},
	}
	p.RecomputeDataPages()
	got, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instrs) != len(p.Instrs) {
		t.Fatalf("instr count %d, want %d", len(got.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if got.Instrs[i] != p.Instrs[i] {
			t.Errorf("instr %d: %+v != %+v", i, got.Instrs[i], p.Instrs[i])
		}
	}
	for i := range p.Data {
		if got.Data[i] != p.Data[i] {
			t.Errorf("data %d mismatch", i)
		}
	}
	if len(got.DataPages) != 2 || got.DataPages[0] != 0x1000 || got.DataPages[1] != 0x1002 {
		t.Errorf("DataPages = %v", got.DataPages)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpNop}}}
	enc := Encode(p)
	if _, err := Decode(enc[:10]); err == nil {
		t.Error("truncated stream should fail")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic should fail")
	}
	bad = append([]byte(nil), enc...)
	bad[16] = 0xff // invalid opcode
	if _, err := Decode(bad); err == nil {
		t.Error("invalid opcode should fail")
	}
	bad = append([]byte(nil), enc...)
	bad[17] = 99 // register out of range
	if _, err := Decode(bad); err == nil {
		t.Error("register out of range should fail")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(ops []uint8, imms []int64, addrs []uint32) bool {
		p := &Program{}
		for i, o := range ops {
			in := Instr{
				Op: Op(o) % opCount,
				Rd: uint8(i) % NumRegs, Rs1: uint8(i+1) % NumRegs, Rs2: uint8(i+2) % NumRegs,
				CSR: uint16(i * 7),
			}
			if i < len(imms) {
				in.Imm = imms[i]
			}
			p.Instrs = append(p.Instrs, in)
		}
		for i, a := range addrs {
			p.Data = append(p.Data, DataWord{VAddr: uint64(a) &^ 7, Value: uint64(i) * 0x9e37})
		}
		p.RecomputeDataPages()
		got, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		if len(got.Instrs) != len(p.Instrs) || len(got.Data) != len(p.Data) {
			return false
		}
		for i := range p.Instrs {
			if got.Instrs[i] != p.Instrs[i] {
				return false
			}
		}
		for i := range p.Data {
			if got.Data[i] != p.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecomputeDataPagesSortedUnique(t *testing.T) {
	p := &Program{Data: []DataWord{
		{VAddr: 0x3000, Value: 1},
		{VAddr: 0x1000, Value: 2},
		{VAddr: 0x3008, Value: 3},
		{VAddr: 0x2000, Value: 4},
	}}
	p.RecomputeDataPages()
	want := []uint64{1, 2, 3}
	if len(p.DataPages) != 3 {
		t.Fatalf("DataPages = %v", p.DataPages)
	}
	for i, w := range want {
		if p.DataPages[i] != w {
			t.Errorf("DataPages[%d] = %d, want %d", i, p.DataPages[i], w)
		}
	}
}
