// Package isa defines the instruction set of the simulated RISC-V-flavoured
// processor used to run the paper's micro security benchmarks and
// performance workloads.
//
// The ISA is a small RV64-like subset plus the paper's extensions: the
// ldnorm/ldrand load variants of Figure 6 (normal vs. randomised secure
// accesses), CSRs for the security registers (process_id, sbase, ssize,
// victim_asid) and the TLB performance counters (tlb_miss_count), and TLB
// flush CSRs standing in for sfence.vma. Programs are sequences of decoded
// Instr values; a fixed-width binary encoding is provided so generated
// benchmarks can be stored and replayed byte-identically.
package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrDecode is the sentinel wrapped by every Decode failure: the byte stream
// is not a canonical Encode output (truncated, bad magic, wrong length,
// invalid opcode or register, or nonzero padding). Callers branch on it with
// errors.Is without parsing messages.
var ErrDecode = errors.New("isa: malformed program stream")

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpNop does nothing for one cycle.
	OpNop Op = iota
	// OpHalt stops the machine with exit code Imm (0 = RVTEST_PASS,
	// non-zero = RVTEST_FAIL in the paper's benchmark template).
	OpHalt
	// OpLi loads the 64-bit immediate Imm into Rd.
	OpLi
	// OpAddi sets Rd = Rs1 + Imm.
	OpAddi
	// OpAdd sets Rd = Rs1 + Rs2.
	OpAdd
	// OpSub sets Rd = Rs1 - Rs2.
	OpSub
	// OpAnd sets Rd = Rs1 & Rs2.
	OpAnd
	// OpOr sets Rd = Rs1 | Rs2.
	OpOr
	// OpXor sets Rd = Rs1 ^ Rs2.
	OpXor
	// OpSlli sets Rd = Rs1 << Imm.
	OpSlli
	// OpSrli sets Rd = Rs1 >> Imm (logical).
	OpSrli
	// OpSltu sets Rd = 1 if Rs1 < Rs2 (unsigned) else 0.
	OpSltu
	// OpLd loads the 64-bit word at Rs1+Imm into Rd (through the D-TLB).
	OpLd
	// OpLdNorm is the paper's "norm type" load: identical to OpLd, used for
	// non-secure page accesses in the micro security benchmarks.
	OpLdNorm
	// OpLdRand is the paper's "rand type" load, used for secure page
	// accesses: the core issues it like a normal load, and the Random-Fill
	// TLB's secure-region logic provides the randomised behaviour.
	OpLdRand
	// OpSd stores Rs2 to the 64-bit word at Rs1+Imm (through the D-TLB).
	OpSd
	// OpBeq branches to instruction index Imm when Rs1 == Rs2.
	OpBeq
	// OpBne branches to instruction index Imm when Rs1 != Rs2.
	OpBne
	// OpBltu branches to instruction index Imm when Rs1 < Rs2 (unsigned).
	OpBltu
	// OpJ jumps unconditionally to instruction index Imm.
	OpJ
	// OpCsrr reads CSR into Rd.
	OpCsrr
	// OpCsrw writes Rs1 to CSR.
	OpCsrw
	// OpCsrwi writes the immediate Imm to CSR.
	OpCsrwi
	opCount // sentinel
)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt", OpLi: "li", OpAddi: "addi", OpAdd: "add",
	OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor", OpSlli: "slli",
	OpSrli: "srli", OpSltu: "sltu", OpLd: "ld", OpLdNorm: "ldnorm",
	OpLdRand: "ldrand", OpSd: "sd", OpBeq: "beq", OpBne: "bne",
	OpBltu: "bltu", OpJ: "j", OpCsrr: "csrr", OpCsrw: "csrw", OpCsrwi: "csrwi",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// CSR numbers. The security CSRs (0x8xx) model the extra registers of paper
// §4.2.2 and the benchmark harness of Figure 6; the counters (0xCxx) follow
// the RISC-V user-level counter convention plus the paper's added TLB miss
// counter.
const (
	// CSRProcessID switches the current process ID (ASID) — the simulation
	// hack of Figure 6 line 11 that lets one test binary act as attacker
	// and victim in turn.
	CSRProcessID uint16 = 0x800
	// CSRSBase is the secure region base page register (§4.2.2).
	CSRSBase uint16 = 0x801
	// CSRSSize is the secure region size register, in pages (§4.2.2).
	CSRSSize uint16 = 0x802
	// CSRVictimASID designates the victim process ID for SP/RF TLBs.
	CSRVictimASID uint16 = 0x803
	// CSRTLBFlushAll: any write invalidates the whole TLB (sfence.vma).
	CSRTLBFlushAll uint16 = 0x804
	// CSRTLBFlushASID: a write invalidates all entries of the written ASID.
	CSRTLBFlushASID uint16 = 0x805
	// CSRTLBFlushPage: a write invalidates the entry for the written
	// virtual address in the current address space (the targeted
	// invalidation of Appendix B).
	CSRTLBFlushPage uint16 = 0x806
	// CSRTLBFlushPageAll: a write invalidates every address space's entry
	// for the written virtual address — address-based invalidation, as an
	// mprotect-driven shootdown or TLB coherence would perform (Appendix B).
	CSRTLBFlushPageAll uint16 = 0x807
	// CSRCycle is the cycle counter.
	CSRCycle uint16 = 0xC00
	// CSRInstret is the retired-instruction counter.
	CSRInstret uint16 = 0xC02
	// CSRTLBMissCount is the TLB miss performance counter the paper adds to
	// the Rocket Core (Figure 6 line 21).
	CSRTLBMissCount uint16 = 0xC03
	// CSRTLBHitCount counts TLB hits (companion diagnostic counter).
	CSRTLBHitCount uint16 = 0xC04
)

// CSRNames maps assembler names to CSR numbers.
var CSRNames = map[string]uint16{
	"process_id":         CSRProcessID,
	"sbase":              CSRSBase,
	"ssize":              CSRSSize,
	"victim_asid":        CSRVictimASID,
	"tlb_flush_all":      CSRTLBFlushAll,
	"tlb_flush_asid":     CSRTLBFlushASID,
	"tlb_flush_page":     CSRTLBFlushPage,
	"tlb_flush_page_all": CSRTLBFlushPageAll,
	"cycle":              CSRCycle,
	"instret":            CSRInstret,
	"tlb_miss_count":     CSRTLBMissCount,
	"tlb_hit_count":      CSRTLBHitCount,
}

// CSRName returns the assembler name of a CSR number, or a hex fallback.
func CSRName(csr uint16) string {
	for name, n := range CSRNames {
		if n == csr {
			return name
		}
	}
	return fmt.Sprintf("%#x", csr)
}

// NumRegs is the number of general-purpose registers (x0..x31; x0 is wired
// to zero).
const NumRegs = 32

// Instr is one decoded instruction.
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	CSR          uint16
	Imm          int64
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	r := func(n uint8) string { return fmt.Sprintf("x%d", n) }
	switch i.Op {
	case OpNop:
		return "nop"
	case OpHalt:
		return fmt.Sprintf("halt %d", i.Imm)
	case OpLi:
		return fmt.Sprintf("li %s, %d", r(i.Rd), i.Imm)
	case OpAddi, OpSlli, OpSrli:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSltu:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs1), r(i.Rs2))
	case OpLd, OpLdNorm, OpLdRand:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rd), i.Imm, r(i.Rs1))
	case OpSd:
		return fmt.Sprintf("sd %s, %d(%s)", r(i.Rs2), i.Imm, r(i.Rs1))
	case OpBeq, OpBne, OpBltu:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rs1), r(i.Rs2), i.Imm)
	case OpJ:
		return fmt.Sprintf("j %d", i.Imm)
	case OpCsrr:
		return fmt.Sprintf("csrr %s, %s", r(i.Rd), CSRName(i.CSR))
	case OpCsrw:
		return fmt.Sprintf("csrw %s, %s", CSRName(i.CSR), r(i.Rs1))
	case OpCsrwi:
		return fmt.Sprintf("csrwi %s, %d", CSRName(i.CSR), i.Imm)
	default:
		return i.Op.String()
	}
}

// IsLoad reports whether the instruction reads data memory.
func (i Instr) IsLoad() bool {
	return i.Op == OpLd || i.Op == OpLdNorm || i.Op == OpLdRand
}

// IsMemory reports whether the instruction accesses data memory at all.
func (i Instr) IsMemory() bool { return i.IsLoad() || i.Op == OpSd }

// DataWord is one initialised 64-bit word in the program's data section.
type DataWord struct {
	// VAddr is the virtual byte address of the word.
	VAddr uint64
	// Value is its initial contents.
	Value uint64
}

// Program is an assembled program: a flat instruction sequence (the PC is an
// instruction index; instruction fetch does not go through the D-TLB, which
// matches the paper's focus on the L1 D-TLB) plus initialised data and the
// symbol table of the source.
type Program struct {
	Instrs []Instr
	Data   []DataWord
	// Symbols maps labels to values: text labels to instruction indices,
	// data labels to virtual byte addresses.
	Symbols map[string]uint64
	// DataPages lists the distinct virtual page numbers touched by Data, in
	// ascending order; loaders map exactly these.
	DataPages []uint64
}

// binary encoding -----------------------------------------------------------

// Magic identifies an encoded program stream.
const Magic = 0x53544c42 // "STLB"

const instrRecordSize = 16

// Encode serialises the program's instructions and data words into a
// self-describing little-endian byte stream. Symbols are not encoded; they
// are an assembler-side artefact.
func Encode(p *Program) []byte {
	buf := make([]byte, 0, 16+len(p.Instrs)*instrRecordSize+len(p.Data)*16)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(p.Instrs)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Data)))
	buf = append(buf, hdr[:]...)
	for _, in := range p.Instrs {
		var rec [instrRecordSize]byte
		rec[0] = byte(in.Op)
		rec[1] = in.Rd
		rec[2] = in.Rs1
		rec[3] = in.Rs2
		binary.LittleEndian.PutUint16(rec[4:], in.CSR)
		binary.LittleEndian.PutUint64(rec[8:], uint64(in.Imm))
		buf = append(buf, rec[:]...)
	}
	for _, d := range p.Data {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:], d.VAddr)
		binary.LittleEndian.PutUint64(rec[8:], d.Value)
		buf = append(buf, rec[:]...)
	}
	return buf
}

// Decode parses a stream produced by Encode. The returned program has a nil
// symbol table and a recomputed DataPages list.
//
// Decode is strict: it accepts exactly the canonical Encode output, so that
// decode-then-encode reproduces the input byte for byte. In particular the
// two reserved padding bytes of each instruction record must be zero — a
// stream with bits set there is corrupt, not merely sloppy, and accepting it
// would make two different streams decode to the same program. All failures
// wrap ErrDecode.
func Decode(b []byte) (*Program, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrDecode, len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrDecode, binary.LittleEndian.Uint32(b[0:]))
	}
	nInstr := int(binary.LittleEndian.Uint32(b[4:]))
	nData := int(binary.LittleEndian.Uint32(b[8:]))
	want := 16 + nInstr*instrRecordSize + nData*16
	if len(b) != want {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrDecode, len(b), want)
	}
	if b[12] != 0 || b[13] != 0 || b[14] != 0 || b[15] != 0 {
		return nil, fmt.Errorf("%w: nonzero header padding", ErrDecode)
	}
	p := &Program{Instrs: make([]Instr, nInstr), Data: make([]DataWord, nData)}
	off := 16
	for i := range p.Instrs {
		rec := b[off : off+instrRecordSize]
		in := Instr{
			Op: Op(rec[0]),
			Rd: rec[1], Rs1: rec[2], Rs2: rec[3],
			CSR: binary.LittleEndian.Uint16(rec[4:]),
			Imm: int64(binary.LittleEndian.Uint64(rec[8:])),
		}
		if !in.Op.Valid() {
			return nil, fmt.Errorf("%w: invalid opcode %d at instruction %d", ErrDecode, rec[0], i)
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return nil, fmt.Errorf("%w: register out of range at instruction %d", ErrDecode, i)
		}
		if rec[6] != 0 || rec[7] != 0 {
			return nil, fmt.Errorf("%w: nonzero record padding at instruction %d", ErrDecode, i)
		}
		p.Instrs[i] = in
		off += instrRecordSize
	}
	for i := range p.Data {
		p.Data[i] = DataWord{
			VAddr: binary.LittleEndian.Uint64(b[off:]),
			Value: binary.LittleEndian.Uint64(b[off+8:]),
		}
		off += 16
	}
	p.RecomputeDataPages()
	return p, nil
}

// RecomputeDataPages rebuilds the DataPages list from Data.
func (p *Program) RecomputeDataPages() {
	seen := map[uint64]bool{}
	p.DataPages = p.DataPages[:0]
	for _, d := range p.Data {
		vpn := d.VAddr >> 12
		if !seen[vpn] {
			seen[vpn] = true
			p.DataPages = append(p.DataPages, vpn)
		}
	}
	// Insertion sort: data sections are small and usually already ordered.
	for i := 1; i < len(p.DataPages); i++ {
		for j := i; j > 0 && p.DataPages[j] < p.DataPages[j-1]; j-- {
			p.DataPages[j], p.DataPages[j-1] = p.DataPages[j-1], p.DataPages[j]
		}
	}
}
