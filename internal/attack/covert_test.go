package attack

import (
	"bytes"
	"testing"
	"testing/quick"

	"securetlb/internal/tlb"
)

func covertOn(t *testing.T, tl tlb.TLB, nsets, nways int) CovertChannel {
	t.Helper()
	return CovertChannel{TLB: tl, Sender: 1, Receiver: 0, NSets: nsets, NWays: nways, Set: 2}
}

func TestCovertChannelPerfectOnSA(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	c := covertOn(t, sa, 4, 8)
	msg := []byte("SECURE TLBS")
	got, errs, err := c.TransmitBytes(msg)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 || !bytes.Equal(got, msg) {
		t.Errorf("received %q with %d bit errors, want %q with 0", got, errs, msg)
	}
}

func TestCovertChannelClosedOnSP(t *testing.T) {
	sp, _ := tlb.NewSP(32, 8, 4, identityWalker())
	sp.SetVictim(1) // the sender is confined to the victim partition
	c := covertOn(t, sp, 4, 4)
	bits := []uint{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	got, err := c.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Errorf("bit %d decoded as 1: the SP TLB must close the contention channel", i)
		}
	}
}

func TestCovertChannelOpenOnRFNonSecurePages(t *testing.T) {
	// The RF TLB only mediates the secure region; a covert channel between
	// cooperating processes over ordinary pages stays open, matching the
	// design's scope (it protects victim secrets, not collusion).
	rf, _ := tlb.NewRF(32, 8, identityWalker(), 5)
	rf.SetVictim(99) // some unrelated victim
	rf.SetSecureRegion(0x100, 3)
	c := covertOn(t, rf, 4, 8)
	msg := []byte{0xA5}
	got, errs, err := c.TransmitBytes(msg)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 || !bytes.Equal(got, msg) {
		t.Errorf("received %v with %d errors", got, errs)
	}
}

func TestCovertChannelValidation(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	bad := []CovertChannel{
		{TLB: nil, Sender: 1, Receiver: 0, NSets: 4, NWays: 8, Set: 0},
		{TLB: sa, Sender: 1, Receiver: 1, NSets: 4, NWays: 8, Set: 0},
		{TLB: sa, Sender: 1, Receiver: 0, NSets: 0, NWays: 8, Set: 0},
		{TLB: sa, Sender: 1, Receiver: 0, NSets: 4, NWays: 8, Set: 4},
		{TLB: sa, Sender: 1, Receiver: 0, NSets: 4, NWays: 8, Set: -1},
	}
	for i, c := range bad {
		if _, err := c.Transmit([]uint{1}); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestQuickBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCovertChannelNoiselessSA(t *testing.T) {
	// Property: arbitrary bitstrings transmit without error over the SA
	// TLB (the channel the paper quantifies at capacity 1).
	f := func(raw []byte) bool {
		sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
		c := CovertChannel{TLB: sa, Sender: 1, Receiver: 0, NSets: 4, NWays: 8, Set: 1}
		bits := BytesToBits(raw)
		if len(bits) > 64 {
			bits = bits[:64]
		}
		got, err := c.Transmit(bits)
		if err != nil {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
