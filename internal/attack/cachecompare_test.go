package attack

import (
	"math/big"
	"testing"

	"securetlb/internal/cache"
	"securetlb/internal/tlb"
)

// newL1 builds a 4 KiB, 8-way, 64B-line L1 data cache.
func newL1(t *testing.T, victimWays int) *cache.Cache {
	t.Helper()
	c, err := cache.New(4096, 8, 64, victimWays)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheAttackWorksOnPlainCache(t *testing.T) {
	// Sanity: with an unhardened cache, the cache-granular Prime+Probe
	// recovers the key just like TLBleed does.
	r := newRSA(t)
	res, err := CacheLineAttack(newL1(t, 0), r, big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("plain cache attack accuracy = %.2f, want ≥ 0.95", res.Accuracy)
	}
}

func TestCacheAttackDefeatedByPartitionedCache(t *testing.T) {
	r := newRSA(t)
	res, err := CacheLineAttack(newL1(t, 4), r, big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.Guessed {
		if g != 0 {
			t.Fatalf("probe %d observed eviction through the partitioned cache", i)
		}
	}
	if res.Accuracy > 0.75 {
		t.Errorf("partitioned cache attack accuracy = %.2f, should collapse", res.Accuracy)
	}
}

func TestCacheDefenseDoesNotProtectTLB(t *testing.T) {
	// The §1 claim, end to end: harden the cache (partitioned), keep the
	// standard SA TLB — the cache attack dies, the TLB attack still reads
	// the key.
	r := newRSA(t)
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	res, err := CacheVsTLB(newL1(t, 4), sa, 4, 8, r, big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheAccuracy > 0.75 {
		t.Errorf("cache attack should be dead: %.2f", res.CacheAccuracy)
	}
	if res.TLBAccuracy < 0.95 {
		t.Errorf("TLB attack should still succeed: %.2f", res.TLBAccuracy)
	}
}

func TestSecureTLBClosesTheRemainingChannel(t *testing.T) {
	// Completing the story: partitioned cache + RF TLB kills both.
	r := newRSA(t)
	rf, _ := tlb.NewRF(32, 8, identityWalker(), 77)
	rf.SetVictim(1)
	base, size := r.Layout.SecureRegion()
	rf.SetSecureRegion(base, size)
	res, err := CacheVsTLB(newL1(t, 4), rf, 4, 8, r, big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheAccuracy > 0.75 || res.TLBAccuracy > 0.80 {
		t.Errorf("both channels should be closed: cache %.2f, tlb %.2f",
			res.CacheAccuracy, res.TLBAccuracy)
	}
}
