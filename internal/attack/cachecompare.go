package attack

import (
	"math/big"

	"securetlb/internal/cache"
	"securetlb/internal/tlb"
	"securetlb/internal/victim"
)

// This file reproduces the paper's §1 motivating claim: "defending cache
// attacks does not protect against TLB attacks [8]". A system is modelled
// with both an L1 data cache and a D-TLB; the same RSA victim runs its
// decryption while the attacker mounts Prime+Probe at either granularity:
//
//   - the cache attack watches the cache set of the tp pointer's line;
//   - the TLB attack watches the TLB set of the tp pointer's page.
//
// Hardening the cache (way partitioning, as the secure caches of §2.1 do)
// kills the cache-side attack — yet, with a standard SA TLB, the TLB-side
// attack still recovers the key bit for bit. Only a secure TLB closes the
// remaining channel.

// CacheLineAttack runs the cache-granular TLBleed analogue: per exponent
// bit, prime tp's cache set, run one iteration's data accesses (the victim's
// pointer dereferences, at line granularity), probe.
func CacheLineAttack(c *cache.Cache, r *victim.RSA, ciphertext *big.Int) (TLBleedResult, error) {
	_, traces := r.Decrypt(ciphertext)
	res := TLBleedResult{Actual: r.KeyBits()}
	tpAddr := r.Layout.AddrOf(r.Layout.TP)
	tpSet := c.SetIndexOf(tpAddr)
	// Attacker lines mapping to tp's set, far from the victim's pages; the
	// prime fills the attacker's available ways (its partition, if the
	// cache is hardened).
	prime := make([]uint64, c.PartitionWays(false))
	stride := uint64(c.Sets() * c.LineSize())
	base := uint64(0x9_000_000) + uint64(tpSet*c.LineSize())
	for i := range prime {
		prime[i] = base + uint64(i)*stride
	}
	for _, tr := range traces {
		for _, p := range prime {
			c.Access(false, p)
		}
		for _, page := range tr.Pages {
			c.Access(true, r.Layout.AddrOf(page))
		}
		misses := 0
		before := c.Stats().Misses
		for _, p := range prime {
			c.Access(false, p)
		}
		misses = int(c.Stats().Misses - before)
		guess := uint(0)
		if misses > 0 {
			guess = 1
		}
		res.Guessed = append(res.Guessed, guess)
	}
	for i := range res.Guessed {
		if i < len(res.Actual) && res.Guessed[i] == res.Actual[i] {
			res.Correct++
		}
	}
	if len(res.Actual) > 0 {
		res.Accuracy = float64(res.Correct) / float64(len(res.Actual))
	}
	return res, nil
}

// CacheVsTLBResult compares attack accuracy at the two granularities on the
// same system configuration.
type CacheVsTLBResult struct {
	CacheAccuracy float64
	TLBAccuracy   float64
}

// CacheVsTLB mounts both attacks against a system with the given cache and
// TLB (the TLB attack uses the standard TLBleed procedure).
func CacheVsTLB(c *cache.Cache, t tlb.TLB, nsets, nways int, r *victim.RSA, ciphertext *big.Int) (CacheVsTLBResult, error) {
	cacheRes, err := CacheLineAttack(c, r, ciphertext)
	if err != nil {
		return CacheVsTLBResult{}, err
	}
	env := Environment{TLB: t, AttackerASID: 0, VictimASID: 1}
	tlbRes, err := env.TLBleed(r, ciphertext, nsets, nways)
	if err != nil {
		return CacheVsTLBResult{}, err
	}
	return CacheVsTLBResult{CacheAccuracy: cacheRes.Accuracy, TLBAccuracy: tlbRes.Accuracy}, nil
}
