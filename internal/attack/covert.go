package attack

import (
	"fmt"

	"securetlb/internal/tlb"
)

// This file implements the covert-channel variant of the threat model
// (§3.1: "the victim in the side-channel scenario is the sender in the
// covert-channel scenario"). Sender and receiver are cooperating processes
// that share no memory and no ASID; they communicate purely through TLB set
// contention, one bit per Prime+Probe epoch:
//
//	bit 1 — the sender touches enough pages mapping to the agreed set to
//	        displace the receiver's primed entries;
//	bit 0 — the sender stays idle.
//
// The receiver primes the set before each epoch and probes it afterwards; a
// probe miss decodes as 1. On the standard SA TLB the channel is noiseless;
// the SP TLB closes it completely (the sender can never displace the
// receiver's partition), and the RF TLB leaves it open only for non-secure
// addresses — the designs target victim secrets, not cooperating processes,
// exactly as the paper scopes them.

// CovertChannel is a one-way TLB covert channel between two process IDs.
type CovertChannel struct {
	TLB      tlb.TLB
	Sender   tlb.ASID
	Receiver tlb.ASID
	// NSets/NWays describe the TLB geometry (known to both parties).
	NSets, NWays int
	// Set is the agreed channel set index.
	Set int
}

// senderPages returns the pages the sender touches to signal a 1.
func (c CovertChannel) senderPages() []tlb.VPN {
	return PrimeSetPages(tlb.VPN(c.Set), c.NSets, c.NWays, 0x20000)
}

// receiverPages returns the receiver's prime/probe pages.
func (c CovertChannel) receiverPages() []tlb.VPN {
	return PrimeSetPages(tlb.VPN(c.Set), c.NSets, c.NWays, 0x30000)
}

// validate checks the channel configuration.
func (c CovertChannel) validate() error {
	if c.TLB == nil {
		return fmt.Errorf("attack: covert channel needs a TLB")
	}
	if c.NSets < 1 || c.NWays < 1 {
		return fmt.Errorf("attack: bad geometry %d/%d", c.NSets, c.NWays)
	}
	if c.Set < 0 || c.Set >= c.NSets {
		return fmt.Errorf("attack: set %d out of range [0,%d)", c.Set, c.NSets)
	}
	if c.Sender == c.Receiver {
		return fmt.Errorf("attack: sender and receiver must be distinct processes")
	}
	return nil
}

// Transmit sends bits over the channel and returns what the receiver
// decoded. The caller interleaves no other TLB activity, modelling a quiet
// co-scheduled pair.
func (c CovertChannel) Transmit(bits []uint) ([]uint, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	env := Environment{TLB: c.TLB, AttackerASID: c.Receiver, VictimASID: c.Sender}
	send := c.senderPages()
	prime := c.receiverPages()
	received := make([]uint, 0, len(bits))
	for _, bit := range bits {
		misses, err := env.PrimeProbe(prime, func() error {
			if bit == 0 {
				return nil
			}
			for _, p := range send {
				if _, err := c.TLB.Translate(c.Sender, p); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return received, err
		}
		got := uint(0)
		if misses > 0 {
			got = 1
		}
		received = append(received, got)
	}
	return received, nil
}

// TransmitBytes sends a byte string MSB-first and returns the decoded bytes
// plus the raw bit error count.
func (c CovertChannel) TransmitBytes(data []byte) (out []byte, bitErrors int, err error) {
	bits := BytesToBits(data)
	got, err := c.Transmit(bits)
	if err != nil {
		return nil, 0, err
	}
	for i := range bits {
		if got[i] != bits[i] {
			bitErrors++
		}
	}
	return BitsToBytes(got), bitErrors, nil
}

// BytesToBits expands bytes to bits, MSB first.
func BytesToBits(data []byte) []uint {
	bits := make([]uint, 0, 8*len(data))
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, uint(b>>i)&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB first) into bytes; trailing partial bytes are
// zero-padded.
func BitsToBytes(bits []uint) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}
