// Package attack implements the timing-attack strategies of Table 2 as
// executable procedures against a TLB, including an end-to-end TLBleed-style
// key recovery against the RSA victim.
//
// TLBleed [8] (the paper's motivating attack, mapping to the TLB Prime +
// Probe rows of Table 2) watches the TLB set of libgcrypt's tp pointer page:
// the pointer swap touches tp only on a 1 exponent bit, so, per iteration,
// the attacker primes tp's set with its own pages, lets the victim advance
// one bit, and probes — a probe miss means the victim displaced an entry,
// i.e. tp was touched, i.e. the bit was 1.
//
// Against the standard SA TLB the recovery is essentially perfect (the paper
// reports a 92% success rate on real hardware); against the SP TLB the
// victim can no longer displace the attacker's partition, and against the RF
// TLB the displacements are de-correlated random fills, so accuracy collapses
// to coin-flipping.
package attack

import (
	"fmt"
	"math/big"

	"securetlb/internal/tlb"
	"securetlb/internal/victim"
)

// Environment binds a TLB and the two process IDs of the threat model.
type Environment struct {
	TLB          tlb.TLB
	AttackerASID tlb.ASID
	VictimASID   tlb.ASID
}

// PrimeProbe executes one Prime+Probe round: the attacker loads primePages,
// victimFn runs, and the attacker re-touches the pages, returning how many
// probes missed (non-zero ⇒ the victim displaced attacker entries).
func (e Environment) PrimeProbe(primePages []tlb.VPN, victimFn func() error) (int, error) {
	for _, p := range primePages {
		if _, err := e.TLB.Translate(e.AttackerASID, p); err != nil {
			return 0, fmt.Errorf("attack: prime %#x: %w", p, err)
		}
	}
	if err := victimFn(); err != nil {
		return 0, err
	}
	before := e.TLB.Stats().Misses
	for _, p := range primePages {
		if _, err := e.TLB.Translate(e.AttackerASID, p); err != nil {
			return 0, fmt.Errorf("attack: probe %#x: %w", p, err)
		}
	}
	return int(e.TLB.Stats().Misses - before), nil
}

// FlushReload executes one Flush+Reload round against a shared page: flush
// everything, run the victim, then reload the page and report whether the
// reload hit (⇒ the victim brought the translation in). Process-ID tagging
// defeats this: the attacker's reload can never hit the victim's entry.
func (e Environment) FlushReload(page tlb.VPN, victimFn func() error) (bool, error) {
	e.TLB.FlushAll()
	if err := victimFn(); err != nil {
		return false, err
	}
	res, err := e.TLB.Translate(e.AttackerASID, page)
	if err != nil {
		return false, err
	}
	return res.Hit, nil
}

// EvictTime executes one Evict+Time round: the victim touches its secret
// page, the attacker fills evictPages, and the victim's re-access is timed —
// a miss means the attacker's fills displaced it (set collision).
func (e Environment) EvictTime(victimPage tlb.VPN, evictPages []tlb.VPN) (slow bool, err error) {
	if _, err := e.TLB.Translate(e.VictimASID, victimPage); err != nil {
		return false, err
	}
	for _, p := range evictPages {
		if _, err := e.TLB.Translate(e.AttackerASID, p); err != nil {
			return false, err
		}
	}
	res, err := e.TLB.Translate(e.VictimASID, victimPage)
	if err != nil {
		return false, err
	}
	return !res.Hit, nil
}

// PrimeSetPages returns n attacker-owned pages that map to the same TLB set
// as target, starting the search at base (pages congruent to target modulo
// the set count).
func PrimeSetPages(target tlb.VPN, nsets, n int, base tlb.VPN) []tlb.VPN {
	if nsets < 1 {
		nsets = 1
	}
	start := base + tlb.VPN((uint64(target)-uint64(base))%uint64(nsets))
	pages := make([]tlb.VPN, 0, n)
	for k := 0; k < n; k++ {
		pages = append(pages, start+tlb.VPN(k*nsets))
	}
	return pages
}

// TLBleedResult summarises a key-recovery attempt.
type TLBleedResult struct {
	Guessed  []uint
	Actual   []uint
	Correct  int
	Accuracy float64
}

// TLBleed runs the full key-recovery attack: the victim decrypts ciphertext
// bit by bit while the attacker Prime+Probes tp's TLB set. nsets/nways
// describe the attacked TLB's geometry (the attacker is assumed to know the
// TLB state machine, per the threat model).
func (e Environment) TLBleed(r *victim.RSA, ciphertext *big.Int, nsets, nways int) (TLBleedResult, error) {
	plain, traces := r.Decrypt(ciphertext)
	// Sanity: the attack must observe a real decryption.
	if plain == nil {
		return TLBleedResult{}, fmt.Errorf("attack: decryption failed")
	}
	prime := PrimeSetPages(r.Layout.TP, nsets, nways, 0x9000)
	res := TLBleedResult{Actual: r.KeyBits()}
	for _, tr := range traces {
		pages := tr.Pages
		misses, err := e.PrimeProbe(prime, func() error {
			for _, p := range pages {
				if _, err := e.TLB.Translate(e.VictimASID, p); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		guess := uint(0)
		if misses > 0 {
			guess = 1
		}
		res.Guessed = append(res.Guessed, guess)
	}
	for i := range res.Guessed {
		if i < len(res.Actual) && res.Guessed[i] == res.Actual[i] {
			res.Correct++
		}
	}
	if len(res.Actual) > 0 {
		res.Accuracy = float64(res.Correct) / float64(len(res.Actual))
	}
	return res, nil
}
