package attack

import (
	"testing"

	"securetlb/internal/tlb"
)

// The I-TLB side of the paper's remark that the designs apply "to
// instruction TLBs as well": a victim with secret-dependent control flow
// (e.g. the naive non-constant-time square-and-multiply, where the multiply
// routine lives on its own code page and runs only on 1 bits) leaks the key
// through the instruction TLB exactly as the data victim leaks through the
// D-TLB — and a Random-Fill I-TLB with the secret code pages secured
// de-correlates it.

const (
	sqrPage tlb.VPN = 0x700 // executed every iteration
	mulPage tlb.VPN = 0x702 // executed only on 1 bits (different set)
)

// fetchTrace models the victim's per-bit instruction fetches.
func fetchTrace(bit uint) []tlb.VPN {
	pages := []tlb.VPN{sqrPage}
	if bit == 1 {
		pages = append(pages, mulPage)
	}
	return pages
}

func runITLBAttack(t *testing.T, itlb tlb.TLB, nsets, nways int, key []uint) float64 {
	t.Helper()
	env := Environment{TLB: itlb, AttackerASID: 0, VictimASID: 1}
	prime := PrimeSetPages(mulPage, nsets, nways, 0xA000)
	correct := 0
	for _, bit := range key {
		misses, err := env.PrimeProbe(prime, func() error {
			for _, p := range fetchTrace(bit) {
				if _, err := itlb.Translate(1, p); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		guess := uint(0)
		if misses > 0 {
			guess = 1
		}
		if guess == bit {
			correct++
		}
	}
	return float64(correct) / float64(len(key))
}

func testKey() []uint {
	key := make([]uint, 96)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range key {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		key[i] = uint(x & 1)
	}
	return key
}

func TestITLBAttackOnStandardITLB(t *testing.T) {
	itlb, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	if acc := runITLBAttack(t, itlb, 4, 8, testKey()); acc < 0.95 {
		t.Errorf("I-TLB Prime+Probe accuracy = %.2f, want ≥ 0.95", acc)
	}
}

func TestITLBAttackDefeatedByRFITLB(t *testing.T) {
	// Apply the RF design at the I-TLB with the victim's secret code pages
	// as the secure region, per the paper's "can be applied to instruction
	// TLBs" remark.
	rf, _ := tlb.NewRF(32, 8, identityWalker(), 21)
	rf.SetVictim(1)
	rf.SetSecureRegion(sqrPage, 4) // covers sqr and mul pages
	if acc := runITLBAttack(t, rf, 4, 8, testKey()); acc > 0.80 {
		t.Errorf("RF I-TLB accuracy = %.2f, want near chance", acc)
	}
}

func TestITLBAttackDefeatedBySPITLB(t *testing.T) {
	sp, _ := tlb.NewSP(32, 8, 4, identityWalker())
	sp.SetVictim(1)
	if acc := runITLBAttack(t, sp, 4, 4, testKey()); acc > 0.75 {
		t.Errorf("SP I-TLB accuracy = %.2f, want near the zero-bit fraction", acc)
	}
}
