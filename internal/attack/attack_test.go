package attack

import (
	"math/big"
	"testing"

	"securetlb/internal/tlb"
	"securetlb/internal/victim"
)

func identityWalker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(vpn), 60, nil
	})
}

func env(t *testing.T, tl tlb.TLB) Environment {
	t.Helper()
	return Environment{TLB: tl, AttackerASID: 0, VictimASID: 1}
}

func newRSA(t *testing.T) *victim.RSA {
	t.Helper()
	r, err := victim.NewRSA(64, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTLBleedRecoversKeyOnSATLB(t *testing.T) {
	// On a standard SA TLB, Prime+Probe on tp's set recovers essentially
	// every key bit (the paper's TLBleed reports 92% on real hardware; the
	// simulator has no measurement noise).
	sa, err := tlb.NewSetAssoc(32, 8, identityWalker())
	if err != nil {
		t.Fatal(err)
	}
	r := newRSA(t)
	res, err := env(t, sa).TLBleed(r, big.NewInt(987654321), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("SA TLB key recovery accuracy = %.2f, want ≥ 0.95", res.Accuracy)
	}
}

func TestTLBleedDefeatedBySPTLB(t *testing.T) {
	// The SP TLB confines the victim's fills to its own partition: the
	// attacker's primed entries are never displaced, every probe hits, and
	// the attacker guesses 0 for every bit.
	sp, err := tlb.NewSP(32, 8, 4, identityWalker())
	if err != nil {
		t.Fatal(err)
	}
	sp.SetVictim(1)
	r := newRSA(t)
	res, err := env(t, sp).TLBleed(r, big.NewInt(987654321), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.Guessed {
		if g != 0 {
			t.Fatalf("probe %d observed displacement under SP partitioning", i)
		}
	}
	// Accuracy collapses to the fraction of zero bits (≈ chance).
	if res.Accuracy > 0.75 {
		t.Errorf("SP accuracy %.2f suspiciously high for an all-zero guess", res.Accuracy)
	}
}

func TestTLBleedDefeatedByRFTLB(t *testing.T) {
	// The RF TLB replaces tp's fill with a random secure-region fill whose
	// set is unrelated to tp, and protects secure entries from
	// deterministic eviction: the attacker's observations de-correlate from
	// the key.
	rf, err := tlb.NewRF(32, 8, identityWalker(), 99)
	if err != nil {
		t.Fatal(err)
	}
	rf.SetVictim(1)
	base, size := victim.DefaultLayout.SecureRegion()
	rf.SetSecureRegion(base, size)
	r := newRSA(t)
	res, err := env(t, rf).TLBleed(r, big.NewInt(987654321), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy > 0.80 {
		t.Errorf("RF TLB key recovery accuracy = %.2f, want near chance", res.Accuracy)
	}
}

func TestTLBleedDefeatedByFATLB(t *testing.T) {
	// A fully-associative TLB has one set: the attacker's prime covers the
	// whole TLB, so every victim access — not just tp — displaces primed
	// entries and the probe signal saturates (§2.3's fifth approach).
	fa, err := tlb.NewFullyAssoc(32, identityWalker())
	if err != nil {
		t.Fatal(err)
	}
	r := newRSA(t)
	res, err := env(t, fa).TLBleed(r, big.NewInt(987654321), 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, g := range res.Guessed {
		ones += int(g)
	}
	if ones != len(res.Guessed) {
		t.Errorf("FA probe should saturate (all guesses 1), got %d/%d", ones, len(res.Guessed))
	}
}

func TestPrimeProbeDetectsSetCollision(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	e := env(t, sa)
	prime := PrimeSetPages(0x502, 4, 8, 0x9000)
	// Victim touches the monitored set: at least one probe miss.
	misses, err := e.PrimeProbe(prime, func() error {
		_, err := sa.Translate(1, 0x502)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if misses == 0 {
		t.Error("expected probe miss after victim collision")
	}
	// Victim touches a different set: probes all hit.
	misses, err = e.PrimeProbe(prime, func() error {
		_, err := sa.Translate(1, 0x501)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Errorf("expected clean probe, got %d misses", misses)
	}
}

func TestFlushReloadBlockedByASIDs(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	e := env(t, sa)
	hit, err := e.FlushReload(0x500, func() error {
		_, err := sa.Translate(1, 0x500) // victim touches the shared page
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cross-ASID reload must miss on an ASID-tagged TLB")
	}
	// Same address space (attacker == victim ASID): the reload hits.
	e2 := Environment{TLB: sa, AttackerASID: 1, VictimASID: 1}
	hit, err = e2.FlushReload(0x500, func() error {
		_, err := sa.Translate(1, 0x500)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("same-ASID reload should hit — the shared-address F+R case")
	}
}

func TestEvictTime(t *testing.T) {
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	e := env(t, sa)
	victimPage := tlb.VPN(0x500)
	evict := PrimeSetPages(victimPage, 4, 8, 0x9000)
	slow, err := e.EvictTime(victimPage, evict)
	if err != nil {
		t.Fatal(err)
	}
	if !slow {
		t.Error("full-set eviction must displace the victim's entry")
	}
	// Evicting a different set leaves the victim entry intact.
	sa.FlushAll()
	other := PrimeSetPages(victimPage+1, 4, 8, 0x9000)
	slow, err = e.EvictTime(victimPage, other)
	if err != nil {
		t.Fatal(err)
	}
	if slow {
		t.Error("cross-set eviction must not displace the victim's entry")
	}
	// The SP TLB defends Evict+Time outright.
	sp, _ := tlb.NewSP(32, 8, 4, identityWalker())
	sp.SetVictim(1)
	slow, err = env(t, sp).EvictTime(victimPage, evict)
	if err != nil {
		t.Fatal(err)
	}
	if slow {
		t.Error("SP TLB must defend Evict+Time")
	}
}

func TestPrimeSetPages(t *testing.T) {
	pages := PrimeSetPages(0x502, 4, 8, 0x9000)
	if len(pages) != 8 {
		t.Fatalf("got %d pages", len(pages))
	}
	for _, p := range pages {
		if uint64(p)%4 != 0x502%4 {
			t.Errorf("page %#x not in target set", p)
		}
		if p >= 0x9000+8*4+4 || p < 0x9000 {
			t.Errorf("page %#x outside expected pool", p)
		}
	}
	if got := PrimeSetPages(5, 0, 1, 0); len(got) != 1 {
		t.Error("nsets < 1 should clamp")
	}
}

func TestLargePageSoftwareDefense(t *testing.T) {
	// §2.3: "Using large pages for the crypto libraries can also be one
	// possible software defense to TLB timing-based attacks." When the
	// whole MPI arena lives on one large page, every iteration touches the
	// same single translation and tp's activity is no longer separable.
	r := newRSA(t)
	r.Layout = victim.Layout{Code: 0x700, RP: 0x700, XP: 0x700, TP: 0x700}
	sa, _ := tlb.NewSetAssoc(32, 8, identityWalker())
	res, err := env(t, sa).TLBleed(r, big.NewInt(424242), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every iteration touches the shared page, so the probe signal is
	// constant: the attacker's guesses carry no per-bit information.
	first := res.Guessed[0]
	for i, g := range res.Guessed {
		if g != first {
			t.Fatalf("guess %d varies despite the shared large page", i)
		}
	}
	if res.Accuracy > 0.75 {
		t.Errorf("large-page accuracy = %.2f, want near the constant-guess rate", res.Accuracy)
	}
}
