// Package cache models a physically-indexed L1 data cache, the substrate
// for the paper's §1 motivating claim that "defending cache attacks does not
// protect against TLB attacks": even with a cache hardened against
// Prime+Probe (here by SecDCP/SP-style way partitioning, or by flushing),
// the TLB still leaks the victim's page-granular access pattern.
//
// The cache is set-associative with true LRU and optional static way
// partitioning between a victim domain and everyone else — the cache-side
// analogue of the paper's SP TLB, standing in for the hardened caches of
// the related work (§2.1).
package cache

import (
	"fmt"
	"math/bits"
)

// Stats counts cache events.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	Evicts   uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid  bool
	tag    uint64
	victim bool // owning domain, for partition bookkeeping
	stamp  uint64
}

// Cache is a set-associative, physically-indexed data cache.
type Cache struct {
	lineSize   int
	sets       [][]line
	nsets      int
	ways       int
	victimWays int // 0 = unpartitioned
	clock      uint64
	stats      Stats
	lineShift  uint
}

// New builds a cache of sizeBytes with the given associativity and line
// size (both powers of two). victimWays > 0 reserves that many ways per set
// for the victim domain (a partitioned, side-channel-hardened cache);
// 0 disables partitioning.
func New(sizeBytes, ways, lineSize, victimWays int) (*Cache, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size must be a power of two, got %d", lineSize)
	}
	if ways <= 0 || sizeBytes <= 0 || sizeBytes%(ways*lineSize) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d ways of %dB lines", sizeBytes, ways, lineSize)
	}
	nsets := sizeBytes / (ways * lineSize)
	if victimWays < 0 || victimWays >= ways {
		if victimWays != 0 {
			return nil, fmt.Errorf("cache: victimWays must be in [0,%d), got %d", ways, victimWays)
		}
	}
	c := &Cache{
		lineSize: lineSize, nsets: nsets, ways: ways, victimWays: victimWays,
		lineShift: uint(bits.TrailingZeros(uint(lineSize))),
	}
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:ways], backing[ways:]
	}
	return c, nil
}

// Sets returns the number of cache sets.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Stats returns the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// PartitionWays returns how many ways a domain's fills can occupy — the
// prime size an attacker aware of the design would use.
func (c *Cache) PartitionWays(victim bool) int {
	lo, hi := c.partition(victim)
	return hi - lo
}

// SetIndexOf returns the set an address maps to (for attack construction).
func (c *Cache) SetIndexOf(paddr uint64) int {
	return int((paddr >> c.lineShift) % uint64(c.nsets))
}

func (c *Cache) tagOf(paddr uint64) uint64 {
	return paddr >> c.lineShift / uint64(c.nsets)
}

// partition returns the fill way range for a domain.
func (c *Cache) partition(victim bool) (lo, hi int) {
	if c.victimWays == 0 {
		return 0, c.ways
	}
	if victim {
		return 0, c.victimWays
	}
	return c.victimWays, c.ways
}

// Access touches paddr from the given domain, returning whether it hit.
// Lookups search all ways; fills are confined to the domain's partition.
func (c *Cache) Access(victim bool, paddr uint64) bool {
	c.stats.Accesses++
	c.clock++
	s := c.SetIndexOf(paddr)
	tag := c.tagOf(paddr)
	for w := range c.sets[s] {
		l := &c.sets[s][w]
		if l.valid && l.tag == tag {
			l.stamp = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	lo, hi := c.partition(victim)
	w, oldest := lo, ^uint64(0)
	for i := lo; i < hi; i++ {
		if !c.sets[s][i].valid {
			w = i
			oldest = 0
			break
		}
		if c.sets[s][i].stamp < oldest {
			w, oldest = i, c.sets[s][i].stamp
		}
	}
	if c.sets[s][w].valid {
		c.stats.Evicts++
	}
	c.sets[s][w] = line{valid: true, tag: tag, victim: victim, stamp: c.clock}
	return false
}

// Probe reports presence without side effects.
func (c *Cache) Probe(paddr uint64) bool {
	s := c.SetIndexOf(paddr)
	tag := c.tagOf(paddr)
	for w := range c.sets[s] {
		if c.sets[s][w].valid && c.sets[s][w].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
}
