package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, size, ways, lineSize, victimWays int) *Cache {
	t.Helper()
	c, err := New(size, ways, lineSize, victimWays)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		size, ways, line, vw int
		ok                   bool
	}{
		{4096, 8, 64, 0, true},
		{4096, 8, 64, 4, true},
		{4096, 8, 63, 0, false}, // line size not power of two
		{4000, 8, 64, 0, false}, // size not divisible
		{4096, 0, 64, 0, false},
		{4096, 8, 64, 8, false},  // victimWays == ways
		{4096, 8, 64, -1, false}, // negative
	}
	for _, c := range cases {
		_, err := New(c.size, c.ways, c.line, c.vw)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d,%d): err=%v want ok=%v", c.size, c.ways, c.line, c.vw, err, c.ok)
		}
	}
	c := mustCache(t, 4096, 8, 64, 0)
	if c.Sets() != 8 || c.Ways() != 8 || c.LineSize() != 64 {
		t.Errorf("geometry: %d sets %d ways %dB", c.Sets(), c.Ways(), c.LineSize())
	}
}

func TestMissThenHitSameLine(t *testing.T) {
	c := mustCache(t, 4096, 8, 64, 0)
	if c.Access(false, 0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(false, 0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(false, 0x103f) {
		t.Error("same line, different byte should hit")
	}
	if c.Access(false, 0x1040) {
		t.Error("next line should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetMappingAndLRU(t *testing.T) {
	c := mustCache(t, 1024, 2, 64, 0) // 8 sets, 2 ways
	// Three lines in set 0: 0x000, 0x200, 0x400 (stride = sets*line = 512).
	c.Access(false, 0x000)
	c.Access(false, 0x200)
	c.Access(false, 0x000) // touch; 0x200 becomes LRU
	c.Access(false, 0x400) // evicts 0x200
	if !c.Probe(0x000) || c.Probe(0x200) || !c.Probe(0x400) {
		t.Error("LRU eviction order wrong")
	}
	if c.SetIndexOf(0x000) != c.SetIndexOf(0x200) {
		t.Error("stride addressing broken")
	}
	if c.SetIndexOf(0x000) == c.SetIndexOf(0x040) {
		t.Error("adjacent lines should map to different sets")
	}
}

func TestPartitionIsolation(t *testing.T) {
	c := mustCache(t, 1024, 4, 64, 2) // 4 sets, 2+2 ways
	// Victim fills its partition of set 0.
	c.Access(true, 0x000)
	c.Access(true, 0x100)
	// Attacker hammers set 0.
	for i := 0; i < 100; i++ {
		c.Access(false, uint64(0x200+i*0x100))
	}
	if !c.Probe(0x000) || !c.Probe(0x100) {
		t.Error("attacker must not evict the victim partition")
	}
	// And vice versa.
	c.Flush()
	c.Access(false, 0x000)
	c.Access(false, 0x100)
	for i := 0; i < 100; i++ {
		c.Access(true, uint64(0x200+i*0x100))
	}
	if !c.Probe(0x000) || !c.Probe(0x100) {
		t.Error("victim must not evict the attacker partition")
	}
}

func TestFlushAndReset(t *testing.T) {
	c := mustCache(t, 4096, 8, 64, 0)
	c.Access(false, 0x40)
	c.Flush()
	if c.Probe(0x40) {
		t.Error("flush should drop lines")
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats failed")
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("idle MissRate should be 0")
	}
	if s := (Stats{Accesses: 4, Misses: 3}); s.MissRate() != 0.75 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestQuickProbeAfterAccess(t *testing.T) {
	f := func(raws []uint32) bool {
		c := mustCache(t, 4096, 8, 64, 0)
		for _, raw := range raws {
			addr := uint64(raw)
			c.Access(false, addr)
			if !c.Probe(addr) {
				return false // just-accessed line must be resident
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickStatsConsistent(t *testing.T) {
	f := func(raws []uint16, vw uint8) bool {
		victimWays := int(vw % 4) // 0..3 of 4 ways
		c, err := New(2048, 4, 64, victimWays)
		if err != nil {
			return false
		}
		for i, raw := range raws {
			c.Access(i%2 == 0, uint64(raw)*8)
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses && st.Evicts <= st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
