package perf

// Shared rendering and selector parsing for the Figure 7 sweeps, used by
// both cmd/perfbench and the tlbserved daemon so a served sweep's table is
// byte-identical to the direct CLI run.

import (
	"fmt"

	"securetlb/internal/report"
)

// ParseDesigns maps the CLI/API design selector to the designs it runs.
func ParseDesigns(s string) ([]Design, error) {
	switch s {
	case "sa":
		return []Design{SA}, nil
	case "sp":
		return []Design{SP}, nil
	case "rf":
		return []Design{RF}, nil
	case "all":
		return []Design{SA, SP, RF}, nil
	}
	return nil, fmt.Errorf("unknown design %q (want sa, sp, rf or all)", s)
}

// FigureLabel names the paper figure a design's IPC/MPKI pair lands in.
func FigureLabel(d Design) string {
	switch d {
	case SA:
		return "7a/7d"
	case SP:
		return "7b/7e"
	case RF:
		return "7c/7f"
	}
	return "?"
}

// SweepHeader renders the per-sweep title line exactly as cmd/perfbench
// prints it.
func SweepHeader(d Design, secure bool, decrypts, workers int) string {
	label := "RSA"
	if secure {
		label = "SecRSA"
	}
	return fmt.Sprintf("Figure %s — %s TLB, %s, %d decryptions, %d workers\n",
		FigureLabel(d), d, label, decrypts, workers)
}

// FormatRows renders a sweep's rows as the perfbench table (plus its
// trailing blank line).
func FormatRows(rows []Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Geometry, r.Workload,
			fmt.Sprintf("%.3f", r.Metrics.IPC),
			fmt.Sprintf("%.2f", r.Metrics.MPKI),
			fmt.Sprintf("%d", r.Metrics.Instructions),
			fmt.Sprintf("%d", r.Metrics.TLBMisses),
		})
	}
	return report.Table([]string{"Config", "Workload", "IPC", "MPKI", "Instr", "Misses"}, out) + "\n"
}
