package perf

// Shared rendering and selector parsing for the Figure 7 sweeps, used by
// both cmd/perfbench and the tlbserved daemon so a served sweep's table is
// byte-identical to the direct CLI run.

import (
	"fmt"
	"strings"

	"securetlb/internal/report"
)

// designCodes is the selector list the -designs flag parses and documents
// itself from, in display order. The perf arena has no FA row (the FA
// geometries are already part of every design's sweep).
var designCodes = []struct {
	code string
	d    Design
}{
	{"sa", SA},
	{"sp", SP},
	{"rf", RF},
	{"ri", RI},
	{"fs", FS},
}

// AllDesigns returns every design in the performance arena, in selector
// order.
func AllDesigns() []Design {
	out := make([]Design, len(designCodes))
	for i, dc := range designCodes {
		out[i] = dc.d
	}
	return out
}

// DesignUsage is the shared -designs flag help text.
func DesignUsage() string {
	codes := make([]string, len(designCodes))
	for i, dc := range designCodes {
		codes[i] = dc.code
	}
	return fmt.Sprintf("%s, a comma-separated combination, \"all\" (the paper's sa,sp,rf trio) or \"full\" (every design)",
		strings.Join(codes, ", "))
}

// ParseDesigns maps the CLI/API design selector to the designs it runs:
// single codes, comma-separated combinations, "all" or "full".
func ParseDesigns(s string) ([]Design, error) {
	switch s {
	case "all":
		// The paper's Figure 7 trio; RI and FS are the arena extension.
		return []Design{SA, SP, RF}, nil
	case "full":
		return AllDesigns(), nil
	}
	var out []Design
	seen := map[Design]bool{}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		found := false
		for _, dc := range designCodes {
			if dc.code == tok {
				if !seen[dc.d] {
					out = append(out, dc.d)
					seen[dc.d] = true
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown design %q (want %s)", tok, DesignUsage())
		}
	}
	return out, nil
}

// FigureLabel names the paper figure a design's IPC/MPKI pair lands in; the
// RI and FS rows extend Figure 7 beyond the paper's panels.
func FigureLabel(d Design) string {
	switch d {
	case SA:
		return "7a/7d"
	case SP:
		return "7b/7e"
	case RF:
		return "7c/7f"
	case RI:
		return "7 ext-RI"
	case FS:
		return "7 ext-FS"
	}
	return "?"
}

// SweepHeader renders the per-sweep title line exactly as cmd/perfbench
// prints it.
func SweepHeader(d Design, secure bool, decrypts, workers int) string {
	label := "RSA"
	if secure {
		label = "SecRSA"
	}
	return fmt.Sprintf("Figure %s — %s TLB, %s, %d decryptions, %d workers\n",
		FigureLabel(d), d, label, decrypts, workers)
}

// FormatRows renders a sweep's rows as the perfbench table (plus its
// trailing blank line).
func FormatRows(rows []Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Geometry, r.Workload,
			fmt.Sprintf("%.3f", r.Metrics.IPC),
			fmt.Sprintf("%.2f", r.Metrics.MPKI),
			fmt.Sprintf("%d", r.Metrics.Instructions),
			fmt.Sprintf("%d", r.Metrics.TLBMisses),
		})
	}
	return report.Table([]string{"Config", "Workload", "IPC", "MPKI", "Instr", "Misses"}, out) + "\n"
}
