package perf

import (
	"math/rand"
	"reflect"
	"testing"

	"securetlb/internal/tlb"
	"securetlb/internal/workload"
)

// guardConfigs enumerates the Figure 7 cell shapes the bit-identity guard
// covers: every design (SA — which at ways == entries is the paper's FA
// configuration — SP, RF) x every geometry x {RSA alone, each co-runner
// class} x {insecure, secure}, at a small decrypt count.
func guardConfigs(t *testing.T) []struct {
	name   string
	d      Design
	g      Geometry
	spec   workload.Generator
	secure bool
} {
	t.Helper()
	var cfgs []struct {
		name   string
		d      Design
		g      Geometry
		spec   workload.Generator
		secure bool
	}
	coRunners := []struct {
		name string
		gen  func() workload.Generator
	}{
		{"alone", func() workload.Generator { return nil }},
		{"mixture", func() workload.Generator { return workload.Povray() }},
		{"streaming", func() workload.Generator { return workload.CactusADM() }},
	}
	for _, d := range AllDesigns() {
		for _, g := range Geometries() {
			if g.Label == "1E" && d != SA {
				continue
			}
			if d == SP && g.Ways < 2 {
				continue
			}
			for _, co := range coRunners {
				for _, secure := range []bool{false, true} {
					cfgs = append(cfgs, struct {
						name   string
						d      Design
						g      Geometry
						spec   workload.Generator
						secure bool
					}{
						name:   d.String() + "/" + g.Label + "/" + co.name,
						d:      d,
						g:      g,
						spec:   co.gen(),
						secure: secure,
					})
				}
			}
		}
	}
	return cfgs
}

// TestStreamReplayBitIdentity is the Figure 7 half of the trace-replay
// guard: for every design (SA/FA/SP/RF — FA being the ways == entries
// geometries) x geometry x workload mix, replaying the captured access
// stream yields the same instructions, cycles, misses, IPC and MPKI as full
// generator execution, and leaves the TLB's full statistics (hits, misses,
// evictions, flushes, random fills) bit-identical.
func TestStreamReplayBitIdentity(t *testing.T) {
	const decrypts, seed = 2, 7
	for _, tc := range guardConfigs(t) {
		t.Run(tc.name, func(t *testing.T) {
			buildCfg := func() (RunConfig, error) {
				tl, err := BuildTLB(tc.d, tc.g, tc.secure, seed)
				if err != nil {
					return RunConfig{}, err
				}
				rsa, err := RSATrace(decrypts, 42)
				if err != nil {
					return RunConfig{}, err
				}
				procs := []Process{{ASID: victimASID, Gen: rsa}}
				if tc.spec != nil {
					// Fresh co-runner per run: generators are stateful.
					gen := tc.spec
					switch g := gen.(type) {
					case *workload.Mixture:
						cp := *g
						gen = &cp
					case *workload.Streaming:
						cp := *g
						cp.Reset()
						gen = &cp
					}
					procs = append(procs, Process{ASID: specASID, Gen: gen})
				}
				return RunConfig{TLB: tl, Processes: procs, Seed: int64(seed)}, nil
			}

			full, err := buildCfg()
			if err != nil {
				t.Fatal(err)
			}
			wantM, err := Run(full)
			if err != nil {
				t.Fatal(err)
			}
			wantStats := full.TLB.Stats()

			rep, err := buildCfg()
			if err != nil {
				t.Fatal(err)
			}
			rep.normalize()
			st := cachedStream(rep)
			if st == nil {
				t.Fatal("stream not capturable for a standard Figure 7 cell")
			}
			gotM, err := st.replay(rep.TLB, rep.FlushOnSwitch)
			if err != nil {
				t.Fatal(err)
			}

			if gotM != wantM {
				t.Errorf("replay metrics diverge:\n full  %+v\n replay %+v", wantM, gotM)
			}
			if gotStats := rep.TLB.Stats(); gotStats != wantStats {
				t.Errorf("replay TLB stats diverge:\n full  %+v\n replay %+v", wantStats, gotStats)
			}
		})
	}
}

// TestStreamReplayFlushOnSwitch covers the Sanctum-style flush-on-switch
// mode: the replay must reconstruct every quantum-boundary flush, including
// trailing quanta with no recorded access, so flush counters and final TLB
// state match full execution.
func TestStreamReplayFlushOnSwitch(t *testing.T) {
	build := func() (RunConfig, error) {
		tl, err := BuildTLB(RF, Geometry{"4W 32", 32, 4}, true, 9)
		if err != nil {
			return RunConfig{}, err
		}
		rsa, err := RSATrace(2, 42)
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{
			TLB:           tl,
			Processes:     []Process{{ASID: victimASID, Gen: rsa}, {ASID: specASID, Gen: workload.Omnetpp()}},
			FlushOnSwitch: true,
			Timeslice:     700, // deliberately not the default
			Seed:          9,
		}, nil
	}
	full, err := build()
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := full.TLB.Stats()

	rep, err := build()
	if err != nil {
		t.Fatal(err)
	}
	rep.normalize()
	st := captureStream(rep)
	if st == nil {
		t.Fatal("stream not capturable")
	}
	gotM, err := st.replay(rep.TLB, true)
	if err != nil {
		t.Fatal(err)
	}
	if gotM != wantM {
		t.Errorf("flush-on-switch replay metrics diverge:\n full  %+v\n replay %+v", wantM, gotM)
	}
	if gotStats := rep.TLB.Stats(); gotStats != wantStats {
		t.Errorf("flush-on-switch replay TLB stats diverge:\n full  %+v\n replay %+v", wantStats, gotStats)
	}
}

// TestFigure7TraceToggle proves the end-to-end property the campaign guard
// proves for Table 4: the published Figure 7 rows are identical with the
// stream replay enabled and disabled, for every design.
func TestFigure7TraceToggle(t *testing.T) {
	for _, d := range AllDesigns() {
		t.Run(d.String(), func(t *testing.T) {
			DisableTrace = true
			full, err := Figure7(d, true, 2, 11)
			DisableTrace = false
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := Figure7(d, true, 2, 11)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(full, replayed) {
				t.Errorf("Figure 7 rows diverge between full execution and stream replay")
			}
		})
	}
}

// unfingerprintableGen is a generator that does not implement
// workload.Fingerprinter: runCell must fall back to full execution for it.
type unfingerprintableGen struct{ n int }

func (g *unfingerprintableGen) Name() string { return "opaque" }
func (g *unfingerprintableGen) Reset()       { g.n = 0 }
func (g *unfingerprintableGen) Step(r *rand.Rand) (bool, tlb.VPN) {
	g.n++
	return g.n%3 == 0, tlb.VPN(0x900 + g.n%17)
}

// TestStreamFallbackUnkeyable: configs whose generators cannot vouch for
// their determinism are never cached, and runCell still produces the full
// path's exact result.
func TestStreamFallbackUnkeyable(t *testing.T) {
	build := func() (RunConfig, error) {
		tl, err := tlb.NewSetAssoc(32, 4, flatWalker())
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{
			TLB:             tl,
			Processes:       []Process{{ASID: 1, Gen: &unfingerprintableGen{}}},
			MaxInstructions: 20_000,
			Seed:            3,
		}, nil
	}
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := streamKeyFor(cfg); ok {
		t.Fatal("unfingerprintable generator produced a stream key")
	}
	if st := cachedStream(cfg); st != nil {
		t.Fatal("unfingerprintable generator was stream-cached")
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := runCell(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback runCell diverges from Run: %+v vs %+v", got, want)
	}
}

// TestStreamKeyDistinguishesRepeats: the hazard that motivated workload
// fingerprints — two RSA traces differing only in repeat count must not
// share a stream.
func TestStreamKeyDistinguishesRepeats(t *testing.T) {
	mk := func(decrypts int) RunConfig {
		rsa, err := RSATrace(decrypts, 42)
		if err != nil {
			t.Fatal(err)
		}
		cfg := RunConfig{Processes: []Process{{ASID: victimASID, Gen: rsa}}, Seed: 1}
		cfg.normalize()
		return cfg
	}
	k2, ok2 := streamKeyFor(mk(2))
	k3, ok3 := streamKeyFor(mk(3))
	if !ok2 || !ok3 {
		t.Fatal("RSA trace config must be keyable")
	}
	if k2 == k3 {
		t.Errorf("stream key does not distinguish decrypt counts: %s", k2)
	}
}
