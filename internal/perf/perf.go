// Package perf implements the performance evaluation of paper §6: the 19
// TLB configurations, the RSA / SecRSA workloads alone and alongside each
// SPEC stand-in, and the IPC and MPKI metrics of Figure 7.
//
// The timing model matches the cycle-approximate core of internal/cpu: one
// cycle per instruction, plus the TLB lookup latency (1 cycle on a hit, a
// 60-cycle three-level walk on a miss) and one data-access cycle for memory
// instructions. Processes are multiprogrammed with round-robin timeslices;
// TLB entries are ASID-tagged, so no flush is needed on a context switch
// (Linux-with-ASIDs, the paper's baseline). An optional Sanctum-style
// flush-on-switch mode is provided for the related-work comparison of §2.3.
package perf

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"

	"securetlb/internal/checkpoint"
	"securetlb/internal/pool"
	"securetlb/internal/tlb"
	"securetlb/internal/victim"
	"securetlb/internal/workload"
)

// Design identifies the TLB design under test.
type Design int

const (
	// SA is the standard set-associative (or fully-associative) TLB.
	SA Design = iota
	// SP is the Static-Partition TLB with half the ways for the victim.
	SP
	// RF is the Random-Fill TLB.
	RF
	// RI is the Randomized-Index TLB (keyed set indexing, periodic re-key).
	RI
	// FS is the Flush-on-Switch TLB (full invalidation on context switches
	// and secure-region exits).
	FS
)

// String names the design.
func (d Design) String() string {
	switch d {
	case SA:
		return "SA"
	case SP:
		return "SP"
	case RF:
		return "RF"
	case RI:
		return "RI"
	case FS:
		return "FS"
	}
	return "?"
}

// Geometry is one TLB configuration of §6.2.
type Geometry struct {
	Label         string
	Entries, Ways int
}

// Geometries lists the paper's seven L1 D-TLB configurations: the 1-entry
// TLB-disabled approximation, and FA/2W/4W at 32 and 128 entries.
func Geometries() []Geometry {
	return []Geometry{
		{"1E", 1, 1},
		{"FA 32", 32, 32},
		{"2W 32", 32, 2},
		{"4W 32", 32, 4},
		{"FA 128", 128, 128},
		{"2W 128", 128, 2},
		{"4W 128", 128, 4},
	}
}

const (
	victimASID tlb.ASID = 1
	specASID   tlb.ASID = 2
)

const (
	walkCycles       = 60 // three levels x 20-cycle memory
	hitCycles        = 1
	dataAccessCycles = 1
	switchCycles     = 100 // context-switch overhead
	// perfRekeyFills is the RI TLB's re-key period in the performance runs:
	// long enough that re-key flushes are a small fraction of the fill
	// stream (a whole-array turnover many times over), short enough that a
	// multi-million-instruction run re-keys continually, so Figure 7's RI
	// bars include the re-key cost instead of amortising it to zero.
	perfRekeyFills = 4096
)

// flatWalker is the fast translation substrate for the performance runs: an
// identity mapping with the full three-level walk cost (no page-walk cache,
// per footnote 3).
func flatWalker() tlb.Walker {
	return tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		return tlb.PPN(vpn), walkCycles, nil
	})
}

// BuildTLB constructs a design/geometry pair over the flat walker. secure
// enables the SecRSA protections: the victim ASID (and, for RF, the secure
// region covering the RSA MPI pages) is programmed; with secure false the
// secure designs run unconfigured, exactly like the paper's RSA (no
// security) runs.
func BuildTLB(d Design, g Geometry, secure bool, seed uint64) (tlb.TLB, error) {
	w := flatWalker()
	switch d {
	case SA:
		return tlb.NewSetAssoc(g.Entries, g.Ways, w)
	case SP:
		if g.Ways < 2 {
			return nil, fmt.Errorf("perf: SP needs >= 2 ways, geometry %s", g.Label)
		}
		sp, err := tlb.NewSP(g.Entries, g.Ways, g.Ways/2, w)
		if err != nil {
			return nil, err
		}
		if secure {
			sp.SetVictim(victimASID)
		}
		return sp, nil
	case RF:
		rf, err := tlb.NewRF(g.Entries, g.Ways, w, seed)
		if err != nil {
			return nil, err
		}
		if secure {
			rf.SetVictim(victimASID)
			base, size := victim.DefaultLayout.SecureRegion()
			rf.SetSecureRegion(base, size)
		}
		return rf, nil
	case RI:
		return tlb.NewRandIdx(g.Entries, g.Ways, w, seed, perfRekeyFills)
	case FS:
		fs, err := tlb.NewFlushOnSwitch(g.Entries, g.Ways, w)
		if err != nil {
			return nil, err
		}
		if secure {
			// The secure-region exit flush only arms when the victim and
			// region are programmed; the switch flush is unconditional.
			fs.SetVictim(victimASID)
			base, size := victim.DefaultLayout.SecureRegion()
			fs.SetSecureRegion(base, size)
		}
		return fs, nil
	}
	return nil, fmt.Errorf("perf: unknown design %d", d)
}

// Metrics are the whole-system measurements of one run.
type Metrics struct {
	Instructions uint64
	Cycles       uint64
	TLBMisses    uint64
	IPC          float64
	MPKI         float64
}

func finalize(instr, cycles, misses uint64) Metrics {
	m := Metrics{Instructions: instr, Cycles: cycles, TLBMisses: misses}
	if cycles > 0 {
		m.IPC = float64(instr) / float64(cycles)
	}
	if instr > 0 {
		m.MPKI = float64(misses) / (float64(instr) / 1000)
	}
	return m
}

// Process is one scheduled workload.
type Process struct {
	ASID tlb.ASID
	Gen  workload.Generator
}

// RunConfig parameterises one multiprogrammed run.
type RunConfig struct {
	TLB       tlb.TLB
	Processes []Process
	// Timeslice is the number of instructions per scheduling quantum.
	Timeslice uint64
	// MaxInstructions bounds the run; with an RSA Trace process the run
	// also ends when the trace completes its repeats.
	MaxInstructions uint64
	// FlushOnSwitch models Sanctum/SGX-style TLB flushing at every context
	// switch (§2.3); the baseline (ASID-tagged Linux) leaves it false.
	FlushOnSwitch bool
	Seed          int64
}

// normalize applies the documented defaults. Run and the stream-capture
// path share it so a captured stream's key always matches the schedule Run
// would execute.
func (cfg *RunConfig) normalize() {
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 5000
	}
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = 50_000_000
	}
}

// Run executes the multiprogrammed mix and returns whole-system metrics.
func Run(cfg RunConfig) (Metrics, error) {
	if cfg.TLB == nil || len(cfg.Processes) == 0 {
		return Metrics{}, fmt.Errorf("perf: incomplete run config")
	}
	cfg.normalize()
	r := rand.New(rand.NewSource(cfg.Seed))
	for _, p := range cfg.Processes {
		p.Gen.Reset()
	}
	cfg.TLB.ResetStats()

	var instr, cycles uint64
	var traceProc *workload.Trace
	for _, p := range cfg.Processes {
		if tr, ok := p.Gen.(*workload.Trace); ok {
			traceProc = tr
		}
	}

	cur := 0
	for instr < cfg.MaxInstructions {
		if traceProc != nil && traceProc.Done() {
			break
		}
		p := cfg.Processes[cur]
		for q := uint64(0); q < cfg.Timeslice && instr < cfg.MaxInstructions; q++ {
			mem, vpn := p.Gen.Step(r)
			instr++
			cycles++
			if mem {
				res, err := cfg.TLB.Translate(p.ASID, vpn)
				if err != nil {
					return Metrics{}, err
				}
				cycles += res.Cycles + dataAccessCycles
			}
		}
		if len(cfg.Processes) > 1 {
			cur = (cur + 1) % len(cfg.Processes)
			cycles += switchCycles
			if cfg.FlushOnSwitch {
				cfg.TLB.FlushAll()
			}
		}
		if traceProc != nil && traceProc.Done() {
			break
		}
	}
	return finalize(instr, cycles, cfg.TLB.Stats().Misses), nil
}

// rsaPages caches the decryption page trace per key seed: keygen plus one
// big.Int decryption is by far the most expensive part of building a cell,
// and the trace depends only on the seed — the decrypt count is just the
// Repeats field on the wrapper. The cached slice is shared read-only across
// Trace instances (Trace never mutates Pages).
var (
	rsaPagesMu    sync.Mutex
	rsaPagesCache = map[uint64][]tlb.VPN{}
)

func rsaPages(seed uint64) ([]tlb.VPN, error) {
	rsaPagesMu.Lock()
	defer rsaPagesMu.Unlock()
	if pages, ok := rsaPagesCache[seed]; ok {
		return pages, nil
	}
	rsa, err := victim.NewRSA(64, seed)
	if err != nil {
		return nil, err
	}
	_, traces := rsa.Decrypt(rsa.Encrypt(new(big.Int).SetUint64(0xfeedface)))
	pages := victim.FlatTrace(traces)
	if len(rsaPagesCache) < 64 {
		rsaPagesCache[seed] = pages
	}
	return pages, nil
}

// RSATrace builds the RSA workload: `decrypts` back-to-back decryptions of
// a fixed ciphertext, as a replayable trace process (§6.2's "RSA decryption
// routine run 50, 100 and 150 times in series").
func RSATrace(decrypts int, seed uint64) (*workload.Trace, error) {
	pages, err := rsaPages(seed)
	if err != nil {
		return nil, err
	}
	return &workload.Trace{
		Nm:             "RSA",
		Pages:          pages,
		InstrPerAccess: 6,
		Repeats:        decrypts,
	}, nil
}

// Row is one bar of Figure 7: a (configuration, workload) cell.
type Row struct {
	Design   Design
	Geometry string
	Workload string
	Secure   bool
	Decrypts int
	Metrics  Metrics
}

// Cell runs one Figure 7 cell: RSA (optionally SecRSA) with an optional
// SPEC co-runner on the given design/geometry. The access stream of a cell's
// schedule is TLB-independent, so it is captured once per (workload mix,
// decrypts, seed) and replayed against every design/geometry/security
// variant — bit-identical to full execution, with transparent fallback (see
// runCell); DisableTrace forces the full path.
func Cell(d Design, g Geometry, spec workload.Generator, secure bool, decrypts int, seed uint64) (Row, error) {
	row := Row{Design: d, Geometry: g.Label, Workload: "RSA", Secure: secure, Decrypts: decrypts}
	t, err := BuildTLB(d, g, secure, seed)
	if err != nil {
		return row, err
	}
	rsa, err := RSATrace(decrypts, 42)
	if err != nil {
		return row, err
	}
	procs := []Process{{ASID: victimASID, Gen: rsa}}
	if spec != nil {
		row.Workload = "RSA+" + spec.Name()
		procs = append(procs, Process{ASID: specASID, Gen: spec})
	}
	m, err := runCell(RunConfig{TLB: t, Processes: procs, Seed: int64(seed)})
	if err != nil {
		return row, err
	}
	row.Metrics = m
	return row, nil
}

// Figure7 regenerates the full sweep for one design: all geometries × {RSA
// alone, RSA with each SPEC stand-in}. The 1E configuration only exists for
// SA (the paper lists it once, as the no-TLB approximation), and SP cannot
// be built with fewer than two ways.
func Figure7(d Design, secure bool, decrypts int, seed uint64) ([]Row, error) {
	var rows []Row
	for _, g := range Geometries() {
		if g.Label == "1E" && d != SA {
			continue
		}
		coRunners := append([]workload.Generator{nil}, workload.SpecSuite()...)
		for _, spec := range coRunners {
			row, err := Cell(d, g, spec, secure, decrypts, seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Aggregate averages a metric over rows matching a predicate; it returns
// false when nothing matched.
func Aggregate(rows []Row, pred func(Row) bool, metric func(Metrics) float64) (float64, bool) {
	sum, n := 0.0, 0
	for _, r := range rows {
		if pred(r) {
			sum += metric(r.Metrics)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Figure7Parallel runs the Figure 7 sweep with independent cells in
// parallel (each cell has its own TLB and generators), bounded by
// parallelism (0 = GOMAXPROCS). Row order and contents are identical to
// Figure7.
func Figure7Parallel(d Design, secure bool, decrypts int, seed uint64, parallelism int) ([]Row, error) {
	return Figure7Ctx(context.Background(), d, secure, decrypts, seed, parallelism, nil)
}

// cellSpec identifies one Figure 7 cell of a design's sweep.
type cellSpec struct {
	g    Geometry
	spec workload.Generator
}

func cellSpecs(d Design) []cellSpec {
	var cells []cellSpec
	for _, g := range Geometries() {
		if g.Label == "1E" && d != SA {
			continue
		}
		cells = append(cells, cellSpec{g, nil})
		for _, s := range workload.SpecSuite() {
			cells = append(cells, cellSpec{g, s})
		}
	}
	return cells
}

// cellKey is the checkpoint unit key of one cell: every input the cell's
// Row depends on, so a checkpoint hit is sound exactly when the rerun would
// be bit-identical.
func cellKey(d Design, c cellSpec, secure bool, decrypts int, seed uint64) string {
	co := "alone"
	if c.spec != nil {
		co = c.spec.Name()
	}
	return fmt.Sprintf("fig7|%s|%s|%s|secure=%v|decrypts=%d|seed=%d",
		d, c.g.Label, co, secure, decrypts, seed)
}

// SweepFingerprint identifies a perf sweep for checkpoint validation. The
// cell keys carry the per-run parameters (design, geometry, co-runner,
// security, decrypt count), so one checkpoint file can accumulate a whole
// multi-design, multi-count sweep; the fingerprint covers only the seed.
func SweepFingerprint(seed uint64) string {
	return fmt.Sprintf("perf/v1|seed=%#x", seed)
}

// Figure7Ctx is Figure7Parallel with the resilience layer: cancellation
// stops admitting new cells and drains the started ones, a panicking cell
// surfaces as a *pool.PanicError instead of crashing the sweep, and a
// non-nil checkpoint is consulted before and fed after every cell.
//
// On a clean run the rows are identical to Figure7, in the same order. On
// cancellation the completed rows (still in sweep order, the incomplete
// ones compacted away) are returned together with the context error; the
// checkpoint, if any, already holds them for a later resume.
func Figure7Ctx(ctx context.Context, d Design, secure bool, decrypts int, seed uint64, parallelism int, ck *checkpoint.File) ([]Row, error) {
	return Figure7Pool(ctx, d, secure, decrypts, seed, pool.New(parallelism), ck)
}

// Figure7Pool is Figure7Ctx executing on a caller-supplied worker pool, so
// a long-lived server can bound the leaf concurrency of many concurrent
// sweeps together instead of per sweep.
func Figure7Pool(ctx context.Context, d Design, secure bool, decrypts int, seed uint64, p *pool.Pool, ck *checkpoint.File) ([]Row, error) {
	cells := cellSpecs(d)
	rows := make([]Row, len(cells))
	done := make([]bool, len(cells))
	errs := make([]error, len(cells))
	for i, c := range cells {
		hit, err := ck.Lookup(cellKey(d, c, secure, decrypts, seed), &rows[i])
		if err != nil {
			return nil, err
		}
		done[i] = hit
	}
	complete := true
	for i := range cells {
		complete = complete && done[i]
	}
	if complete {
		// Fully resumed from the checkpoint: nothing to execute, so even a
		// cancelled context yields the complete sweep.
		return rows, nil
	}
	ferr := p.ForEachCtx(ctx, len(cells), func(i int) {
		if done[i] {
			return
		}
		errs[i] = pool.Safely(func() error {
			var err error
			rows[i], err = Cell(d, cells[i].g, cells[i].spec, secure, decrypts, seed)
			return err
		})
		if errs[i] == nil {
			done[i] = true
			errs[i] = ck.Record(cellKey(d, cells[i], secure, decrypts, seed), rows[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			ck.Flush()
			return nil, err
		}
	}
	if ferr != nil {
		var partial []Row
		for i := range cells {
			if done[i] {
				partial = append(partial, rows[i])
			}
		}
		if err := ck.Flush(); err != nil {
			return partial, err
		}
		return partial, ferr
	}
	if err := ck.Flush(); err != nil {
		return rows, err
	}
	return rows, nil
}
