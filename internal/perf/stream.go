package perf

import (
	"math"
	"math/rand"
	"sync"

	"securetlb/internal/fingerprint"
	"securetlb/internal/tlb"
	"securetlb/internal/workload"
)

// DisableTrace forces every Figure 7 cell down the full generator-execution
// path, bypassing the captured-stream replay. It exists for A/B verification
// (the bit-identity guard, the benchmark pair) and as the escape hatch behind
// cmd/perfbench's -no-trace flag. It is read once per cell; toggling it
// mid-sweep is not supported.
var DisableTrace bool

// The performance runs are TLB-independent on the input side: generators
// consume only the scheduler's *rand.Rand and their own cursors, never a
// translation result. The (mem, vpn) sequence a RunConfig produces is
// therefore a pure function of (workloads, timeslice, instruction bound,
// seed) — every design x geometry x security cell of a Figure 7 sweep steps
// the exact same stream through a different TLB. captureStream materialises
// that stream once; accessStream.replay drives a TLB with it directly,
// skipping the generator arithmetic and rand draws on every subsequent cell.

// streamEvent is one data access: the retiring instruction's global index
// (from which the scheduling quantum, and so the issuing process, is
// recomputed) and the virtual page it touched.
type streamEvent struct {
	idx uint32
	vpn tlb.VPN
}

// accessStream is one captured run: the access events plus the scalar
// totals replay needs to reproduce Run's metrics exactly.
type accessStream struct {
	events    []streamEvent
	instr     uint64 // total instructions retired
	switches  uint64 // context switches taken (one per quantum when nproc > 1)
	timeslice uint64
	asids     []tlb.ASID // per-process ASIDs in scheduling order
}

// maxStreamEvents bounds a captured stream (64 MiB of events); a run that
// overflows it, or that retires more instructions than an event index can
// name, is not captured and transparently falls back to full execution.
const maxStreamEvents = 1 << 22

// captureStream executes cfg's generator schedule without a TLB, recording
// every data access. It mirrors Run's loop structure exactly — same rand
// stream, same quantum boundaries, same Done/bound checks — so the recorded
// events are precisely the Translate calls Run would issue. The caller's
// generators are stepped to the same final state a full Run leaves them in.
// Returns nil when the run is too large to capture.
func captureStream(cfg RunConfig) *accessStream {
	r := rand.New(rand.NewSource(cfg.Seed))
	for _, p := range cfg.Processes {
		p.Gen.Reset()
	}
	var traceProc *workload.Trace
	for _, p := range cfg.Processes {
		if tr, ok := p.Gen.(*workload.Trace); ok {
			traceProc = tr
		}
	}
	st := &accessStream{
		timeslice: cfg.Timeslice,
		asids:     make([]tlb.ASID, len(cfg.Processes)),
	}
	for i, p := range cfg.Processes {
		st.asids[i] = p.ASID
	}

	var instr uint64
	cur := 0
	for instr < cfg.MaxInstructions {
		if traceProc != nil && traceProc.Done() {
			break
		}
		p := cfg.Processes[cur]
		for q := uint64(0); q < cfg.Timeslice && instr < cfg.MaxInstructions; q++ {
			mem, vpn := p.Gen.Step(r)
			if mem {
				if len(st.events) >= maxStreamEvents || instr > math.MaxUint32 {
					return nil
				}
				st.events = append(st.events, streamEvent{idx: uint32(instr), vpn: vpn})
			}
			instr++
		}
		if len(cfg.Processes) > 1 {
			cur = (cur + 1) % len(cfg.Processes)
			st.switches++
		}
		if traceProc != nil && traceProc.Done() {
			break
		}
	}
	st.instr = instr
	return st
}

// replay drives t with the captured stream and returns the same Metrics a
// full Run over the same schedule would. Quantum boundaries only ever fall on
// timeslice multiples (a quantum is cut short solely by the instruction
// bound, which ends the run), so the issuing process of event i is
// asids[(idx/timeslice) % nproc], and flush-on-switch boundaries are
// reconstructed the same way — including the trailing flushes of quanta with
// no recorded access, so the TLB's final state and flush counters also match
// full execution bit for bit.
func (st *accessStream) replay(t tlb.TLB, flushOnSwitch bool) (Metrics, error) {
	t.ResetStats()
	cycles := st.instr + st.switches*switchCycles
	nproc := uint64(len(st.asids))
	ts := st.timeslice
	doFlush := flushOnSwitch && nproc > 1
	ft, _ := t.(tlb.FastTranslator)

	// Walk quantum boundaries alongside the (index-ordered) events instead
	// of dividing every event index by the timeslice: the division is the
	// only per-event arithmetic the replay loop would otherwise do.
	var q uint64
	next := ts
	asid := st.asids[0]
	for i := range st.events {
		ev := &st.events[i]
		for uint64(ev.idx) >= next {
			if doFlush {
				t.FlushAll()
			}
			q++
			next += ts
			asid = st.asids[q%nproc]
		}
		if ft != nil {
			c, err := ft.TranslateCycles(asid, ev.vpn)
			if err != nil {
				return Metrics{}, err
			}
			cycles += c + dataAccessCycles
		} else {
			res, err := t.Translate(asid, ev.vpn)
			if err != nil {
				return Metrics{}, err
			}
			cycles += res.Cycles + dataAccessCycles
		}
	}
	if doFlush {
		for ; q < st.switches; q++ {
			t.FlushAll()
		}
	}
	return finalize(st.instr, cycles, t.Stats().Misses), nil
}

// streamKeyFor digests everything the captured stream depends on. It fails
// (ok == false) when any generator does not vouch for its own determinism via
// workload.Fingerprinter — such a config is never stream-cached.
func streamKeyFor(cfg RunConfig) (string, bool) {
	d := fingerprint.New().Fieldf("stream/v1|ts=%d|max=%d|seed=%d|n=%d",
		cfg.Timeslice, cfg.MaxInstructions, cfg.Seed, len(cfg.Processes))
	for _, p := range cfg.Processes {
		fp, ok := p.Gen.(workload.Fingerprinter)
		if !ok {
			return "", false
		}
		d.Fieldf("asid=%d", p.ASID).Field(fp.WorkloadFingerprint())
	}
	return d.Sum(), true
}

// The stream cache. A Figure 7 sweep has 5 distinct workload mixes feeding
// 7 geometries x {RSA, SecRSA} cells, so each captured stream is replayed
// ~a dozen times per design; the cap only exists to bound memory if a
// long-lived server sweeps many distinct (decrypts, seed) campaigns.
const streamCacheCap = 64

type streamSlot struct {
	once sync.Once
	st   *accessStream // nil: run was uncapturable, always fall back
}

var (
	streamMu    sync.Mutex
	streamCache = map[string]*streamSlot{}
)

// cachedStream returns the captured stream for cfg, capturing it on first
// use. Concurrent cells of a pooled sweep share one capture: the first
// arrival builds (stepping its own generators), the rest block on the slot.
// Returns nil when the config is unkeyable, the cache is full, or the run is
// too large to capture.
func cachedStream(cfg RunConfig) *accessStream {
	key, ok := streamKeyFor(cfg)
	if !ok {
		return nil
	}
	streamMu.Lock()
	slot, ok := streamCache[key]
	if !ok {
		if len(streamCache) >= streamCacheCap {
			// Generational eviction: drop everything rather than refuse.
			// Capture is one generator pass, cheap next to the dozen replays
			// a sweep makes of it, and live slots already handed out stay
			// valid — at worst a concurrent sweep re-captures a duplicate.
			clear(streamCache)
		}
		slot = &streamSlot{}
		streamCache[key] = slot
	}
	streamMu.Unlock()
	slot.once.Do(func() { slot.st = captureStream(cfg) })
	return slot.st
}

// runCell is Cell's execution step: replay the captured access stream when
// one is available (and tracing is enabled), otherwise run the generators in
// full. The two paths are bit-identical — same Metrics, same final TLB state
// — which the guard tests in stream_test.go prove per design, geometry
// (including the fully-associative ones) and workload mix. The only
// observable difference is that a cache-hit cell leaves its generators reset
// rather than stepped; Cell constructs fresh generators per cell, so nothing
// depends on that.
func runCell(cfg RunConfig) (Metrics, error) {
	if cfg.TLB == nil || len(cfg.Processes) == 0 {
		return Run(cfg) // let Run report the config error
	}
	if !DisableTrace {
		cfg.normalize()
		if st := cachedStream(cfg); st != nil {
			return st.replay(cfg.TLB, cfg.FlushOnSwitch)
		}
	}
	return Run(cfg)
}
