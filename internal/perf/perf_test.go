package perf

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"securetlb/internal/checkpoint"
	"securetlb/internal/tlb"
	"securetlb/internal/workload"
)

const testDecrypts = 8

func cellMPKI(t *testing.T, d Design, g Geometry, spec workload.Generator, secure bool) Metrics {
	t.Helper()
	row, err := Cell(d, g, spec, secure, testDecrypts, 11)
	if err != nil {
		t.Fatalf("Cell(%s,%s): %v", d, g.Label, err)
	}
	return row.Metrics
}

func geom(t *testing.T, label string) Geometry {
	t.Helper()
	for _, g := range Geometries() {
		if g.Label == label {
			return g
		}
	}
	t.Fatalf("no geometry %q", label)
	return Geometry{}
}

func TestGeometriesMatchPaper(t *testing.T) {
	want := []string{"1E", "FA 32", "2W 32", "4W 32", "FA 128", "2W 128", "4W 128"}
	gs := Geometries()
	if len(gs) != len(want) {
		t.Fatalf("geometries = %d", len(gs))
	}
	for i, g := range gs {
		if g.Label != want[i] {
			t.Errorf("geometry %d = %q, want %q", i, g.Label, want[i])
		}
		if g.Entries%g.Ways != 0 {
			t.Errorf("%s: invalid geometry", g.Label)
		}
	}
}

func TestOneEntryApproximatesNoTLB(t *testing.T) {
	// §6.3: disabling the TLB (1E) costs ~38% IPC on average; here the
	// relative ordering is what matters.
	one := cellMPKI(t, SA, geom(t, "1E"), workload.Povray(), false)
	full := cellMPKI(t, SA, geom(t, "4W 32"), workload.Povray(), false)
	if one.IPC >= full.IPC {
		t.Errorf("1E IPC %.3f should be far below 4W 32 IPC %.3f", one.IPC, full.IPC)
	}
	if one.MPKI <= full.MPKI {
		t.Errorf("1E MPKI %.1f should exceed 4W 32 MPKI %.1f", one.MPKI, full.MPKI)
	}
}

func TestLargerTLBHelps(t *testing.T) {
	small := cellMPKI(t, SA, geom(t, "4W 32"), workload.Omnetpp(), false)
	large := cellMPKI(t, SA, geom(t, "4W 128"), workload.Omnetpp(), false)
	if large.MPKI >= small.MPKI {
		t.Errorf("128-entry MPKI %.1f should be below 32-entry %.1f", large.MPKI, small.MPKI)
	}
	if large.IPC <= small.IPC {
		t.Errorf("128-entry IPC %.3f should exceed 32-entry %.3f", large.IPC, small.IPC)
	}
}

func TestCactusADMInsensitiveToTLBSize(t *testing.T) {
	small := cellMPKI(t, SA, geom(t, "4W 32"), workload.CactusADM(), false)
	large := cellMPKI(t, SA, geom(t, "4W 128"), workload.CactusADM(), false)
	if small.MPKI > 1.5*large.MPKI {
		t.Errorf("cactusADM should be TLB-size-insensitive: 32→%.2f vs 128→%.2f", small.MPKI, large.MPKI)
	}
}

func TestSPMPKIMultiplesOfSA(t *testing.T) {
	// §6.4: the SP TLB shows roughly 3x the MPKI of the SA TLB (effective
	// capacity halves).
	g := geom(t, "4W 32")
	sa := cellMPKI(t, SA, g, workload.Povray(), false)
	sp := cellMPKI(t, SP, g, workload.Povray(), false)
	if sp.MPKI < 2*sa.MPKI {
		t.Errorf("SP MPKI %.1f should be several times SA's %.1f", sp.MPKI, sa.MPKI)
	}
}

func TestRFMatchesSAWithoutSecurity(t *testing.T) {
	// With no secure region configured the RF TLB degenerates to SA.
	g := geom(t, "4W 32")
	sa := cellMPKI(t, SA, g, workload.Xalancbmk(), false)
	rf := cellMPKI(t, RF, g, workload.Xalancbmk(), false)
	if sa.MPKI != rf.MPKI || sa.Cycles != rf.Cycles {
		t.Errorf("unconfigured RF should equal SA: SA %.2f/%d vs RF %.2f/%d",
			sa.MPKI, sa.Cycles, rf.MPKI, rf.Cycles)
	}
}

func TestRFSecureOverheadSmall(t *testing.T) {
	// §6.5: SecRSA on the RF TLB costs ~9% MPKI over SA, dramatically less
	// than SP.
	g := geom(t, "4W 32")
	sa := cellMPKI(t, SA, g, workload.Povray(), false)
	rf := cellMPKI(t, RF, g, workload.Povray(), true)
	sp := cellMPKI(t, SP, g, workload.Povray(), true)
	if rf.MPKI > 1.5*sa.MPKI {
		t.Errorf("RF secure MPKI %.2f too far above SA %.2f", rf.MPKI, sa.MPKI)
	}
	if rf.MPKI >= sp.MPKI {
		t.Errorf("RF MPKI %.2f should be well below SP %.2f", rf.MPKI, sp.MPKI)
	}
	if rf.IPC <= cellMPKI(t, SA, geom(t, "1E"), workload.Povray(), false).IPC {
		t.Error("RF should be far faster than the no-TLB approximation")
	}
}

func TestRSAAloneHasLowMPKI(t *testing.T) {
	// §6.3: "RSA routine is relatively small, so it experiences very few
	// MPKIs."
	m := cellMPKI(t, SA, geom(t, "4W 32"), nil, false)
	if m.MPKI > 1 {
		t.Errorf("RSA-alone MPKI = %.2f, want < 1", m.MPKI)
	}
}

func TestRunTerminatesOnTraceCompletion(t *testing.T) {
	tr := &workload.Trace{Nm: "t", Pages: []tlb.VPN{1, 2, 3}, InstrPerAccess: 2, Repeats: 3}
	tlb_, err := BuildTLB(SA, geom(t, "4W 32"), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(RunConfig{TLB: tlb_, Processes: []Process{{ASID: 1, Gen: tr}}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Instructions >= 50_000_000 {
		t.Error("run should end when the trace completes")
	}
	if !tr.Done() {
		t.Error("trace should be complete")
	}
}

func TestRunInstructionBudget(t *testing.T) {
	tlb_, _ := BuildTLB(SA, geom(t, "4W 32"), false, 1)
	m, err := Run(RunConfig{
		TLB:             tlb_,
		Processes:       []Process{{ASID: 2, Gen: workload.Povray()}},
		MaxInstructions: 12345,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Instructions != 12345 {
		t.Errorf("instructions = %d, want 12345", m.Instructions)
	}
	if m.IPC <= 0 || m.Cycles < m.Instructions {
		t.Errorf("metrics inconsistent: %+v", m)
	}
}

func TestFlushOnSwitchHurts(t *testing.T) {
	// The Sanctum-style flush-on-switch mode must cost misses relative to
	// ASID tagging.
	run := func(flush bool) Metrics {
		tlb_, _ := BuildTLB(SA, geom(t, "4W 32"), false, 1)
		rsa, err := RSATrace(testDecrypts, 42)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(RunConfig{
			TLB: tlb_,
			Processes: []Process{
				{ASID: victimASID, Gen: rsa},
				{ASID: specASID, Gen: workload.Povray()},
			},
			Timeslice:     2000,
			FlushOnSwitch: flush,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if run(true).MPKI <= run(false).MPKI {
		t.Error("flushing on context switch should raise MPKI")
	}
}

func TestBuildTLBErrors(t *testing.T) {
	if _, err := BuildTLB(SP, Geometry{"1E", 1, 1}, false, 1); err == nil {
		t.Error("SP with one way should be rejected")
	}
	if _, err := BuildTLB(Design(9), geom(t, "4W 32"), false, 1); err == nil {
		t.Error("unknown design should be rejected")
	}
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty run config should be rejected")
	}
}

func TestFigure7RowCount(t *testing.T) {
	rows, err := Figure7(SA, false, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 7 geometries x (RSA + 4 co-runs).
	if len(rows) != 35 {
		t.Errorf("SA rows = %d, want 35", len(rows))
	}
	rows, err = Figure7(SP, true, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// SP skips 1E.
	if len(rows) != 30 {
		t.Errorf("SP rows = %d, want 30", len(rows))
	}
}

func TestAggregate(t *testing.T) {
	rows := []Row{
		{Geometry: "a", Metrics: Metrics{MPKI: 2}},
		{Geometry: "a", Metrics: Metrics{MPKI: 4}},
		{Geometry: "b", Metrics: Metrics{MPKI: 10}},
	}
	avg, ok := Aggregate(rows, func(r Row) bool { return r.Geometry == "a" },
		func(m Metrics) float64 { return m.MPKI })
	if !ok || avg != 3 {
		t.Errorf("aggregate = (%v,%v)", avg, ok)
	}
	if _, ok := Aggregate(rows, func(Row) bool { return false }, func(m Metrics) float64 { return 0 }); ok {
		t.Error("no matches should report !ok")
	}
}

func TestDesignString(t *testing.T) {
	if SA.String() != "SA" || SP.String() != "SP" || RF.String() != "RF" || Design(7).String() != "?" {
		t.Error("design names wrong")
	}
}

func TestFigure7ParallelMatchesSerial(t *testing.T) {
	serial, err := Figure7(SA, false, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure7Parallel(SA, false, 2, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunPropagatesWalkerFaults(t *testing.T) {
	// Failure injection: a faulting translation substrate must surface as an
	// error, not corrupt metrics.
	bad := tlb.WalkerFunc(func(asid tlb.ASID, vpn tlb.VPN) (tlb.PPN, uint64, error) {
		if vpn >= 0x20000 {
			return 0, 5, errTest
		}
		return tlb.PPN(vpn), 60, nil
	})
	sa, err := tlb.NewSetAssoc(32, 4, bad)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunConfig{
		TLB:             sa,
		Processes:       []Process{{ASID: 2, Gen: workload.Povray()}}, // base 0x20000
		MaxInstructions: 10_000,
		Seed:            1,
	})
	if err == nil {
		t.Error("walker fault should abort the run")
	}
}

type testErr struct{}

func (testErr) Error() string { return "injected fault" }

var errTest = testErr{}

// TestFigure7CtxMatchesSerial: the resilient sweep with no checkpoint and a
// live context is bit-identical to the serial reference.
func TestFigure7CtxMatchesSerial(t *testing.T) {
	serial, err := Figure7(SA, false, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure7Ctx(context.Background(), SA, false, 2, 9, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, serial) {
		t.Error("Figure7Ctx differs from Figure7")
	}
}

// TestFigure7CtxCancelledBeforeStart: a pre-cancelled context admits no
// cells and returns the typed context error.
func TestFigure7CtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Figure7Ctx(ctx, SA, false, 2, 9, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %d, want none", len(rows))
	}
}

// TestFigure7CtxCheckpointResume: a sweep interrupted mid-run leaves its
// completed cells in the checkpoint; resuming completes the sweep with rows
// bit-identical to an uninterrupted run, and a fully-populated checkpoint
// satisfies the whole sweep without executing a single cell.
func TestFigure7CtxCheckpointResume(t *testing.T) {
	want, err := Figure7(SA, false, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig7.json")
	fp := SweepFingerprint(9)

	// Stage 1: cancel once a few cells have been recorded. If the sweep
	// outruns the watcher the run just completes — the resume assertions
	// below hold either way.
	ck1, err := checkpoint.Open(path, fp, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for ck1.Len() < 3 {
			runtime.Gosched()
		}
		cancel()
	}()
	partial, err := Figure7Ctx(ctx, SA, false, 2, 9, 2, ck1)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	t.Logf("stage 1: %d/%d cells complete (err=%v)", len(partial), len(want), err)
	byKey := map[Row]bool{}
	for _, r := range want {
		byKey[r] = true
	}
	for _, r := range partial {
		if !byKey[r] {
			t.Errorf("partial row %+v not in the clean sweep", r)
		}
	}

	// Stage 2: resume to completion.
	ck2, err := checkpoint.Open(path, fp, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure7Ctx(context.Background(), SA, false, 2, 9, 2, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed sweep differs from uninterrupted run")
	}

	// Stage 3: the checkpoint now holds every cell; even a cancelled
	// context resolves the full sweep from it.
	ck3, err := checkpoint.Open(path, fp, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel3 := context.WithCancel(context.Background())
	cancel3()
	cached, err := Figure7Ctx(dead, SA, false, 2, 9, 2, ck3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, want) {
		t.Error("checkpoint-only sweep differs from uninterrupted run")
	}
}
