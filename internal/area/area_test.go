package area

import "testing"

func TestBaselineCalibration(t *testing.T) {
	// The model is pinned to the paper's measured 4W-32 SA baseline.
	e := Model(SA, Geometry{"4W 32", 32, 4})
	if e.LUTs != 36043 || e.Registers != 22765 {
		t.Errorf("baseline = %d LUTs / %d regs, want 36043 / 22765", e.LUTs, e.Registers)
	}
	if e.DeltaLUTs != 0 || e.DeltaRegisters != 0 {
		t.Errorf("baseline deltas must be zero: %+v", e)
	}
}

func TestSPOverheadNearPaper(t *testing.T) {
	// Paper §6.6: SP 4W-32 has +0.4% LUTs and +0.1% registers over SA.
	lut, reg, err := OverheadPercent(SP, "4W 32")
	if err != nil {
		t.Fatal(err)
	}
	if lut < 0.1 || lut > 1.0 {
		t.Errorf("SP LUT overhead = %.2f%%, want ≈ 0.4%%", lut)
	}
	if reg < 0.0 || reg > 0.5 {
		t.Errorf("SP register overhead = %.2f%%, want ≈ 0.1%%", reg)
	}
}

func TestRFOverheadNearPaper(t *testing.T) {
	// Paper §6.6: RF 4W-32 has +6.2% LUTs and +5.5% registers over SA.
	lut, reg, err := OverheadPercent(RF, "4W 32")
	if err != nil {
		t.Fatal(err)
	}
	if lut < 4.0 || lut > 8.5 {
		t.Errorf("RF LUT overhead = %.2f%%, want ≈ 6.2%%", lut)
	}
	if reg < 3.5 || reg > 7.5 {
		t.Errorf("RF register overhead = %.2f%%, want ≈ 5.5%%", reg)
	}
}

func TestPaperDeltaRows(t *testing.T) {
	rows := Table5()
	sp, err := Find(rows, SP, "4W 32")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: SP 4W-32 is +140 LUTs / +33 registers over baseline.
	if sp.DeltaLUTs < 50 || sp.DeltaLUTs > 300 {
		t.Errorf("SP 4W-32 ΔLUTs = %d, paper reports +140", sp.DeltaLUTs)
	}
	if sp.DeltaRegisters < 20 || sp.DeltaRegisters > 60 {
		t.Errorf("SP 4W-32 Δregs = %d, paper reports +33", sp.DeltaRegisters)
	}
	rf, _ := Find(rows, RF, "4W 32")
	// Paper: RF 4W-32 is +2223 LUTs / +1253 registers.
	if rf.DeltaLUTs < 1700 || rf.DeltaLUTs > 2800 {
		t.Errorf("RF 4W-32 ΔLUTs = %d, paper reports +2223", rf.DeltaLUTs)
	}
	if rf.DeltaRegisters < 1000 || rf.DeltaRegisters > 1600 {
		t.Errorf("RF 4W-32 Δregs = %d, paper reports +1253", rf.DeltaRegisters)
	}
}

func TestOrderings(t *testing.T) {
	rows := Table5()
	get := func(d Design, label string) Estimate {
		e, err := Find(rows, d, label)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, label := range []string{"FA 32", "2W 32", "4W 32", "FA 128", "2W 128", "4W 128"} {
		sa, sp, rf := get(SA, label), get(SP, label), get(RF, label)
		if !(rf.LUTs > sp.LUTs && sp.LUTs > sa.LUTs) {
			t.Errorf("%s: LUT ordering RF > SP > SA violated (%d, %d, %d)",
				label, rf.LUTs, sp.LUTs, sa.LUTs)
		}
		if !(rf.Registers > sp.Registers && sp.Registers >= sa.Registers) {
			t.Errorf("%s: register ordering violated", label)
		}
	}
	for _, d := range []Design{SA, SP, RF} {
		if !(get(d, "4W 128").Registers > get(d, "4W 32").Registers) {
			t.Errorf("%s: 128 entries should cost more registers than 32", d)
		}
		if !(get(d, "FA 32").LUTs > get(d, "4W 32").LUTs) {
			t.Errorf("%s: FA should cost more LUTs than 4W at 32 entries (CAM match)", d)
		}
	}
	one := get(SA, "1E")
	if one.DeltaLUTs >= 0 || one.DeltaRegisters >= 0 {
		t.Errorf("1E must be smaller than the baseline: %+v", one)
	}
}

func TestFAPaysCAMWidth(t *testing.T) {
	// FA 128 should be dramatically more expensive than 4W 128 in LUTs:
	// every entry carries a full-width comparator.
	rows := Table5()
	fa, _ := Find(rows, SA, "FA 128")
	sw, _ := Find(rows, SA, "4W 128")
	if fa.LUTs <= sw.LUTs {
		t.Errorf("FA 128 (%d LUTs) should exceed 4W 128 (%d LUTs)", fa.LUTs, sw.LUTs)
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5()
	if len(rows) != 7+6+6+6+6 {
		t.Errorf("rows = %d, want 31 (the paper's 19 configurations plus the RI and FS extensions)", len(rows))
	}
	for _, d := range []Design{SP, RF, RI, FS} {
		if _, err := Find(rows, d, "1E"); err == nil {
			t.Errorf("%s has no 1E configuration", d)
		}
	}
	if Design(9).String() != "?" || SA.String() != "SA TLB" || RI.String() != "RI TLB" || FS.String() != "FS TLB" {
		t.Error("design names wrong")
	}
}

// TestRIAndFSOverheads pins the extension rows' qualitative story: the RI
// TLB pays for its index cipher and full-VPN tags (a few percent of LUTs,
// noticeably more than SP, comparable to RF), while the FS TLB is nearly
// free in area — its security mechanism is an invalidate strobe, not state.
func TestRIAndFSOverheads(t *testing.T) {
	riLUT, riReg, err := OverheadPercent(RI, "4W 32")
	if err != nil {
		t.Fatal(err)
	}
	if riLUT < 3.0 || riLUT > 9.0 {
		t.Errorf("RI LUT overhead = %.2f%%, want a few percent (cipher + wide tags)", riLUT)
	}
	if riReg < 0.5 || riReg > 5.0 {
		t.Errorf("RI register overhead = %.2f%%, want small but nonzero", riReg)
	}
	fsLUT, fsReg, err := OverheadPercent(FS, "4W 32")
	if err != nil {
		t.Fatal(err)
	}
	if fsLUT < 0.1 || fsLUT > 2.0 {
		t.Errorf("FS LUT overhead = %.2f%%, want well under RF's", fsLUT)
	}
	if fsReg < 0.0 || fsReg > 1.0 {
		t.Errorf("FS register overhead = %.2f%%, want near zero", fsReg)
	}
	rows := Table5()
	for _, label := range []string{"FA 32", "2W 32", "4W 32", "FA 128", "2W 128", "4W 128"} {
		sp, _ := Find(rows, SP, label)
		ri, _ := Find(rows, RI, label)
		fs, _ := Find(rows, FS, label)
		rf, _ := Find(rows, RF, label)
		if !(ri.LUTs > sp.LUTs) {
			t.Errorf("%s: RI (%d LUTs) should exceed SP (%d)", label, ri.LUTs, sp.LUTs)
		}
		if !(fs.LUTs < rf.LUTs && fs.LUTs < ri.LUTs) {
			t.Errorf("%s: FS (%d LUTs) should be the cheapest secure design (RF %d, RI %d)",
				label, fs.LUTs, rf.LUTs, ri.LUTs)
		}
	}
}
