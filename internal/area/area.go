// Package area implements an analytical FPGA-area model reproducing the
// structure of the paper's Table 5 (§6.6).
//
// The paper synthesises the Rocket Core with each TLB variant on a Xilinx
// ZC706 and reports Slice LUTs and Slice Registers. Synthesis is not
// available here, so the substitution is a component-level estimator:
//
//   - registers: the core's flops plus the TLB array (tag + PPN + ASID +
//     valid + LRU state per entry, plus the RF TLB's Sec bit) plus each
//     design's extra architectural registers (the SP victim-ASID register;
//     the RF sbase/ssize/victim registers, the no-fill buffer and the
//     random-fill engine state);
//   - LUTs: the core's logic plus tag/ASID comparators per searched way,
//     read multiplexing per entry, LRU update logic, and the designs'
//     additions (SP partition steering; RF region comparators, Sec-bit
//     steering and the Random Fill Engine control).
//
// The model is calibrated so the paper's baseline — the 32-entry 4-way SA
// TLB at 36043 LUTs / 22765 registers — is matched exactly, and the RF/SP
// deltas land near the paper's (+6.2%/+0.4% LUTs at 4W-32). Absolute numbers
// for other geometries follow the component scaling rather than the paper's
// (noisy) synthesis results; the orderings the paper draws conclusions from
// are preserved and tested.
package area

import (
	"fmt"
	"math"
)

// Design enumerates the TLB designs of Table 5.
type Design int

const (
	// SA is the baseline set-associative TLB.
	SA Design = iota
	// SP is the Static-Partition TLB.
	SP
	// RF is the Random-Fill TLB.
	RF
	// RI is the Randomized-Index TLB.
	RI
	// FS is the Flush-on-Switch TLB.
	FS
)

// String names the design as in Table 5.
func (d Design) String() string {
	switch d {
	case SA:
		return "SA TLB"
	case SP:
		return "SP TLB"
	case RF:
		return "RF TLB"
	case RI:
		return "RI TLB"
	case FS:
		return "FS TLB"
	}
	return "?"
}

// Geometry is a TLB configuration.
type Geometry struct {
	Label         string
	Entries, Ways int
}

// Geometries returns Table 5's configurations (1E appears only under SA).
func Geometries(d Design) []Geometry {
	gs := []Geometry{
		{"1E", 1, 1},
		{"FA 32", 32, 32},
		{"2W 32", 32, 2},
		{"4W 32", 32, 4},
		{"FA 128", 128, 128},
		{"2W 128", 128, 2},
		{"4W 128", 128, 4},
	}
	if d != SA {
		return gs[1:]
	}
	return gs
}

// Architectural bit widths (Sv39-flavoured Rocket configuration).
const (
	vpnBits   = 27
	ppnBits   = 20
	asidBits  = 16
	validBits = 1
	secBits   = 1 // RF only
)

// Component cost constants (LUTs per bit / per entry), hand-calibrated to
// the ZC706 synthesis baseline.
const (
	lutPerCmpBit   = 0.55 // tag+ASID comparator, per searched way
	lutPerEntryMux = 1.10 // read-out multiplexing
	lutPerLRUTerm  = 1.60 // LRU update logic per way·log2(ways), per set
	lutPerSetDec   = 2.00 // set index decode
	// SP additions: partition steering of the fill way select.
	lutSPFixed  = 118.0
	lutSPPerWay = 5.0
	// RF additions: Random Fill Engine (LFSR + address compose + FSM),
	// no-fill buffer bypass, secure-region comparators, Sec steering.
	lutRFFixed     = 1990.0
	lutRFRegionCmp = 2 * vpnBits * 1.4
	lutRFPerEntry  = 1.5 // Sec-bit fill/probe steering
	// RF extra registers: buffer (one entry), LFSR, region/victim
	// registers, control state.
	regRFFixed = 1221.0
	regSPFixed = 33.0
	// RI additions: the 3-round index cipher (S-box and diffusion layers,
	// replicated per round for single-cycle indexing), the re-key FSM, and
	// the key / key-stream / fill-counter registers. The tag also widens to
	// the full VPN (see entryBits): a keyed index stores no address bits.
	lutRIFixed = 1740.0
	regRIFixed = 178.0 // 64b key + 64b key stream + fill counter + FSM
	// FS additions: current-context register and switch comparator,
	// secure-region comparators, and the whole-array invalidate strobe
	// fan-out.
	lutFSFixed     = 96.0
	lutFSRegionCmp = 2 * vpnBits * 1.4
	lutFSPerEntry  = 0.25 // invalidate-strobe fan-out per entry
	regFSFixed     = 92.0 // cur ASID + lastSecure + sbase/ssize/victim
)

// Core footprint outside the D-TLB, derived from the calibration points
// below (the ZC706 4W-32 SA totals).
const (
	calibLUTs = 36043
	calibRegs = 22765
)

func log2(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// entryBits returns the storage bits per TLB entry.
func entryBits(d Design, g Geometry) float64 {
	nsets := g.Entries / g.Ways
	tag := float64(vpnBits) - log2(nsets) // index bits are implicit
	if d == RI {
		// The keyed index is a cipher output, not address bits, so the
		// full VPN must be stored and compared.
		tag = float64(vpnBits)
	}
	bits := tag + ppnBits + asidBits + validBits + log2(g.Ways)
	if d == RF {
		bits += secBits
	}
	return bits
}

// tlbRegs returns the TLB's register count.
func tlbRegs(d Design, g Geometry) float64 {
	r := float64(g.Entries) * entryBits(d, g)
	switch d {
	case SP:
		r += regSPFixed
	case RF:
		r += regRFFixed
	case RI:
		r += regRIFixed
	case FS:
		r += regFSFixed
	}
	return r
}

// tlbLUTs returns the TLB's LUT count.
func tlbLUTs(d Design, g Geometry) float64 {
	nsets := g.Entries / g.Ways
	tag := float64(vpnBits) - log2(nsets)
	if d == RI {
		tag = float64(vpnBits) // full-VPN tags under a keyed index
	}
	cmp := float64(g.Ways) * (tag + asidBits + validBits) * lutPerCmpBit
	mux := float64(g.Entries) * lutPerEntryMux
	lru := float64(nsets) * float64(g.Ways) * log2(g.Ways) * lutPerLRUTerm
	dec := float64(nsets) * lutPerSetDec
	l := cmp + mux + lru + dec
	switch d {
	case SP:
		l += lutSPFixed + lutSPPerWay*float64(g.Ways)
	case RF:
		l += lutRFFixed + lutRFRegionCmp + lutRFPerEntry*float64(g.Entries)
	case RI:
		l += lutRIFixed
	case FS:
		l += lutFSFixed + lutFSRegionCmp + lutFSPerEntry*float64(g.Entries)
	}
	return l
}

// core footprint, solved from the calibration point.
var (
	coreLUTs = calibLUTs - tlbLUTs(SA, Geometry{"4W 32", 32, 4})
	coreRegs = calibRegs - tlbRegs(SA, Geometry{"4W 32", 32, 4})
)

// Estimate is one Table 5 row.
type Estimate struct {
	Design    Design
	Geometry  string
	LUTs      int
	Registers int
	// DeltaLUTs/DeltaRegisters are relative to the 4W-32 SA baseline, as in
	// Table 5.
	DeltaLUTs      int
	DeltaRegisters int
}

// Estimate computes the modelled area of one configuration.
func Model(d Design, g Geometry) Estimate {
	luts := int(math.Round(coreLUTs + tlbLUTs(d, g)))
	regs := int(math.Round(coreRegs + tlbRegs(d, g)))
	return Estimate{
		Design:         d,
		Geometry:       g.Label,
		LUTs:           luts,
		Registers:      regs,
		DeltaLUTs:      luts - calibLUTs,
		DeltaRegisters: regs - calibRegs,
	}
}

// Table5 computes the full table: every design × geometry. The paper's 19
// configurations (SA with 1E, SP, RF) come first, extended by the RI and FS
// rows.
func Table5() []Estimate {
	var rows []Estimate
	for _, d := range []Design{SA, SP, RF, RI, FS} {
		for _, g := range Geometries(d) {
			rows = append(rows, Model(d, g))
		}
	}
	return rows
}

// Find returns the row for a design/geometry label.
func Find(rows []Estimate, d Design, label string) (Estimate, error) {
	for _, r := range rows {
		if r.Design == d && r.Geometry == label {
			return r, nil
		}
	}
	return Estimate{}, fmt.Errorf("area: no row %s/%s", d, label)
}

// OverheadPercent returns the percentage overhead of a row's LUTs and
// registers over the same-geometry SA configuration.
func OverheadPercent(d Design, label string) (lutPct, regPct float64, err error) {
	rows := Table5()
	base, err := Find(rows, SA, label)
	if err != nil {
		return 0, 0, err
	}
	r, err := Find(rows, d, label)
	if err != nil {
		return 0, 0, err
	}
	lutPct = 100 * float64(r.LUTs-base.LUTs) / float64(base.LUTs)
	regPct = 100 * float64(r.Registers-base.Registers) / float64(base.Registers)
	return lutPct, regPct, nil
}
