// Package cpu implements the in-order, cycle-approximate processor core
// that executes assembled programs against a D-TLB, page tables and physical
// memory.
//
// The core stands in for the paper's Rocket Core RISC-V processor: it is
// single-issue and in-order, charges one cycle per instruction, and routes
// every data access through the L1 D-TLB, whose hit/miss latency difference
// (one cycle vs. a full three-level page walk) is the timing channel under
// study. Instruction fetch does not go through the D-TLB, matching the
// paper's focus on data-TLB channels.
//
// The machine exposes the paper's CSR extensions: process_id switches the
// current ASID (the simulation hack of Figure 6 that lets one benchmark
// binary play both attacker and victim), sbase/ssize/victim_asid program the
// secure TLB registers of §4.2.2, tlb_miss_count reads the added TLB miss
// performance counter, and the tlb_flush_* CSRs model sfence.vma and the
// targeted invalidations of Appendix B.
package cpu

import (
	"context"
	"errors"
	"fmt"

	"securetlb/internal/isa"
	"securetlb/internal/mem"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
)

// Config carries the core's timing parameters.
type Config struct {
	// DataAccessCycles is charged for the cache access of each load/store
	// after translation (an L1 hit; the cache hierarchy is not modelled
	// further since the paper isolates the TLB channel).
	DataAccessCycles uint64
	// FlushCycles is charged for a full or per-ASID TLB flush.
	FlushCycles uint64
	// VariableFlushTiming makes a targeted page invalidation take one extra
	// cycle when the entry was present — the two-cycle invalidation
	// optimisation of Appendix B that enables the Flush+Flush strategy.
	VariableFlushTiming bool
}

// DefaultConfig mirrors the FPGA setup's relative latencies.
var DefaultConfig = Config{DataAccessCycles: 1, FlushCycles: 1}

// The package's sentinel errors. Every error Run, RunCtx or Step returns
// matches exactly one of these under errors.Is, so campaign watchdogs can
// classify a failing trial (quarantine a fault or a runaway program, abort
// on a wiring mistake) without string matching.
var (
	// ErrFuelExhausted is returned by Run when the instruction budget is
	// exhausted before the program halts — the watchdog verdict for a
	// non-halting (or merely over-budget) program.
	ErrFuelExhausted = errors.New("cpu: instruction budget exhausted")
	// ErrHalted is returned by Step when the machine has already executed
	// halt.
	ErrHalted = errors.New("cpu: machine is halted")
	// ErrNoProgram is returned by Run and Step before Load.
	ErrNoProgram = errors.New("cpu: no program loaded")
	// ErrFault matches (via errors.Is) every execution fault: a wild PC, a
	// translation or memory fault, or an invalid instruction or CSR. The
	// concrete error is always a *FaultError carrying the faulting PC.
	ErrFault = errors.New("cpu: fault")
)

// ErrLimit is the historical name of ErrFuelExhausted.
//
// Deprecated: use ErrFuelExhausted.
var ErrLimit = ErrFuelExhausted

// FaultError is an execution fault: the instruction at PC could not retire.
// It unwraps to the underlying cause (e.g. ptw.ErrPageFault) and matches
// ErrFault under errors.Is.
type FaultError struct {
	PC  int
	Err error
}

// Error implements error.
func (e *FaultError) Error() string { return fmt.Sprintf("cpu: fault at pc %d: %v", e.PC, e.Err) }

// Unwrap exposes the fault's cause to errors.Is/As.
func (e *FaultError) Unwrap() error { return e.Err }

// Is makes every FaultError match the ErrFault sentinel.
func (e *FaultError) Is(target error) bool { return target == ErrFault }

// fault wraps cause as a *FaultError at the current PC.
func (c *Machine) fault(format string, args ...any) error {
	return &FaultError{PC: c.pc, Err: fmt.Errorf(format, args...)}
}

// Recorder observes every instruction the machine is about to execute. It
// is the capture hook of the trace-compiled execution engine: a recorder is
// called at the very start of exec, before any architectural state changes,
// so it sees the pre-execution register file and counters. Returning a
// non-nil error aborts the run with that error (the machine stops mid-
// program; capture is abandoned and the caller falls back to full
// execution). The hook is nil by default and costs one predictable branch
// per instruction when unset.
type Recorder interface {
	OnInstr(m *Machine, in *isa.Instr) error
}

// Machine is one simulated core wired to its memory subsystem.
type Machine struct {
	TLB tlb.TLB
	PT  *ptw.PageTables
	Mem *mem.Memory

	// itlb, when installed via SetITLB, translates instruction fetches:
	// each executed instruction first translates its own virtual page
	// (textBase + 4*pc). The paper focuses on the L1 D-TLB but notes its
	// designs "can be applied to instruction TLBs as well" — this is the
	// hook that makes I-TLB experiments possible.
	itlb     tlb.TLB
	textBase uint64

	cfg  Config
	prog *isa.Program
	rec  Recorder

	regs    [isa.NumRegs]uint64
	pc      int
	cycles  uint64
	instret uint64
	asid    tlb.ASID
	halted  bool
	exit    int64

	// CSR shadows for the security registers, so csrr works even on TLB
	// designs that do not implement tlb.SecureTLB.
	sbase, ssize, victim uint64
}

// New returns a machine with zeroed state.
func New(t tlb.TLB, pt *ptw.PageTables, m *mem.Memory, cfg Config) *Machine {
	return &Machine{TLB: t, PT: pt, Mem: m, cfg: cfg}
}

// NewSystem builds a complete machine: fresh memory (with the given
// per-access latency), page tables, the provided TLB factory applied to the
// walker, and a core with the default config. It is the one-call setup used
// by the security benchmarks and examples.
func NewSystem(memLatency uint64, makeTLB func(tlb.Walker) (tlb.TLB, error)) (*Machine, error) {
	m := mem.New(memLatency)
	pt := ptw.New(m, 0x10000)
	t, err := makeTLB(pt)
	if err != nil {
		return nil, err
	}
	return New(t, pt, m, DefaultConfig), nil
}

// SetITLB installs an instruction TLB and the virtual base address of the
// text section (each instruction occupies 4 bytes at textBase + 4*index).
// Call before Load so the text pages get mapped. Pass nil to remove it.
func (c *Machine) SetITLB(t tlb.TLB, textBase uint64) {
	c.itlb = t
	c.textBase = textBase
}

// ITLB returns the installed instruction TLB, or nil.
func (c *Machine) ITLB() tlb.TLB { return c.itlb }

// SetRecorder installs (or, with nil, removes) an instruction recorder.
func (c *Machine) SetRecorder(r Recorder) { c.rec = r }

// TextBase returns the virtual base address of the text section (only
// meaningful when an I-TLB is installed).
func (c *Machine) TextBase() uint64 { return c.textBase }

// Config returns the core's timing configuration.
func (c *Machine) Config() Config { return c.cfg }

// Load installs a program: its data pages are mapped (shared frames) into
// every listed address space and the initial data values are written to
// physical memory. With an I-TLB installed, the text pages are mapped too.
// The PC is reset to 0.
func (c *Machine) Load(p *isa.Program, asids []tlb.ASID) error {
	if len(asids) == 0 {
		return fmt.Errorf("cpu: Load needs at least one address space")
	}
	for _, vpn := range p.DataPages {
		if _, err := c.PT.MapRange(asids, tlb.VPN(vpn), 1); err != nil {
			return err
		}
	}
	if c.itlb != nil {
		first := c.textBase >> tlb.PageShift
		last := (c.textBase + 4*uint64(len(p.Instrs))) >> tlb.PageShift
		for vpn := first; vpn <= last; vpn++ {
			if _, err := c.PT.MapRange(asids, tlb.VPN(vpn), 1); err != nil {
				return err
			}
		}
	}
	for _, d := range p.Data {
		ppn, err := c.PT.Translate(asids[0], tlb.VPN(d.VAddr>>tlb.PageShift))
		if err != nil {
			return err
		}
		paddr := uint64(ppn)<<tlb.PageShift | d.VAddr&(tlb.PageSize-1)
		if _, err := c.Mem.Store64(paddr, d.Value); err != nil {
			return err
		}
	}
	c.prog = p
	c.pc = 0
	c.halted = false
	c.exit = 0
	return nil
}

// Clone returns an isolated replica of the machine: the physical memory is
// copied copy-on-write (mem.Memory.Clone), the page tables are re-bound to
// the new memory, the TLB (and I-TLB, if any) is replicated with its full
// microarchitectural state, and the architectural state (registers, PC,
// counters, CSR shadows) is copied. The loaded program is shared — it is
// immutable after Assemble — so cloning costs O(map copies), independent of
// program or data size.
//
// The parallel security campaigns clone one loaded template machine per
// worker: every clone then runs trials exactly as the original would,
// with no shared mutable state between workers. Clone updates the source's
// copy-on-write bookkeeping, so clones of one machine must be taken
// sequentially; the resulting machines are then independent and each safe
// for its own goroutine.
func (c *Machine) Clone() (*Machine, error) {
	if c.Mem == nil || c.PT == nil || c.TLB == nil {
		return nil, fmt.Errorf("cpu: cannot clone a partially wired machine")
	}
	n := *c
	n.Mem = c.Mem.Clone()
	n.PT = c.PT.CloneWith(n.Mem)
	t, err := tlb.Clone(c.TLB, n.PT)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	n.TLB = t
	if c.itlb != nil {
		it, err := tlb.Clone(c.itlb, n.PT)
		if err != nil {
			return nil, fmt.Errorf("cpu: I-TLB: %w", err)
		}
		n.itlb = it
	}
	// A recorder is per-capture state, not machine state.
	n.rec = nil
	return &n, nil
}

// Reset clears the architectural state (registers, PC, counters, halt flag)
// but leaves memory, page tables and the TLB array untouched.
func (c *Machine) Reset() {
	c.regs = [isa.NumRegs]uint64{}
	c.pc = 0
	c.cycles, c.instret = 0, 0
	c.asid = 0
	c.halted, c.exit = false, 0
}

// Reg returns the value of register n.
func (c *Machine) Reg(n int) uint64 { return c.regs[n] }

// SetReg sets register n (writes to x0 are ignored).
func (c *Machine) SetReg(n int, v uint64) {
	if n != 0 {
		c.regs[n] = v
	}
}

// Cycles returns the cycle counter.
func (c *Machine) Cycles() uint64 { return c.cycles }

// Instret returns the retired-instruction counter.
func (c *Machine) Instret() uint64 { return c.instret }

// ASID returns the current process ID.
func (c *Machine) ASID() tlb.ASID { return c.asid }

// SetASID switches the current process ID (as csrw process_id would),
// notifying switch-observing TLB designs exactly like the CSR write path.
func (c *Machine) SetASID(a tlb.ASID) {
	c.asid = a
	if o, ok := c.TLB.(tlb.ASIDObserver); ok {
		o.ObserveASID(a)
	}
}

// Halted reports whether the program has executed halt.
func (c *Machine) Halted() bool { return c.halted }

// ExitCode returns the halt operand (0 = pass).
func (c *Machine) ExitCode() int64 { return c.exit }

// PC returns the current instruction index.
func (c *Machine) PC() int { return c.pc }

// Run executes until halt or until maxInstr instructions have retired,
// returning the exit code. Exceeding the budget returns ErrFuelExhausted —
// the per-trial watchdog the campaign runners build on: a generated program
// that never halts burns its fuel and surfaces as a typed, quarantinable
// error instead of wedging the sweep.
//
// This is the interpreter's hot loop: the per-step program/bounds checks are
// hoisted out of Step and instructions execute by pointer, so a trial's
// million-instruction budget pays only the dispatch switch per instruction.
func (c *Machine) Run(maxInstr uint64) (int64, error) {
	if c.prog == nil {
		return 0, ErrNoProgram
	}
	instrs := c.prog.Instrs
	for i := uint64(0); i < maxInstr; i++ {
		if c.halted {
			return c.exit, nil
		}
		if uint(c.pc) >= uint(len(instrs)) {
			return 0, c.fault("pc outside program (%d instructions)", len(instrs))
		}
		if err := c.exec(&instrs[c.pc]); err != nil {
			return 0, err
		}
	}
	if c.halted {
		return c.exit, nil
	}
	return 0, ErrFuelExhausted
}

// ctxCheckStride is how many instructions RunCtx retires between context
// polls: coarse enough that the poll is invisible next to the dispatch
// switch, fine enough that cancellation lands within microseconds.
const ctxCheckStride = 4096

// RunCtx is Run with cooperative cancellation: the context is polled every
// ctxCheckStride retired instructions, so an interactive run (tlbsim) or a
// cancelled campaign stops mid-program instead of burning the rest of a
// multi-million-instruction budget. On cancellation the context's error is
// returned and the machine keeps its partial state.
func (c *Machine) RunCtx(ctx context.Context, maxInstr uint64) (int64, error) {
	for done := uint64(0); done < maxInstr; done += ctxCheckStride {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		chunk := maxInstr - done
		if chunk > ctxCheckStride {
			chunk = ctxCheckStride
		}
		code, err := c.Run(chunk)
		if err == nil {
			return code, nil
		}
		if !errors.Is(err, ErrFuelExhausted) {
			return code, err
		}
	}
	return 0, ErrFuelExhausted
}

// Step executes a single instruction.
func (c *Machine) Step() error {
	if c.prog == nil {
		return ErrNoProgram
	}
	if c.halted {
		return ErrHalted
	}
	if c.pc < 0 || c.pc >= len(c.prog.Instrs) {
		return c.fault("pc outside program (%d instructions)", len(c.prog.Instrs))
	}
	return c.exec(&c.prog.Instrs[c.pc])
}

// exec retires one instruction. The caller guarantees the machine is not
// halted and in points into the loaded program at c.pc.
func (c *Machine) exec(in *isa.Instr) error {
	if c.rec != nil {
		if err := c.rec.OnInstr(c, in); err != nil {
			return err
		}
	}
	c.cycles++ // base cost of every instruction
	if c.itlb != nil {
		// Instruction fetch translates the PC's page through the I-TLB.
		res, err := c.itlb.Translate(c.asid, tlb.VPN((c.textBase+4*uint64(c.pc))>>tlb.PageShift))
		c.cycles += res.Cycles
		if err != nil {
			return c.fault("instruction fetch: %w", err)
		}
	}
	next := c.pc + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		c.halted, c.exit = true, in.Imm
	case isa.OpLi:
		c.SetReg(int(in.Rd), uint64(in.Imm))
	case isa.OpAddi:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]+uint64(in.Imm))
	case isa.OpAdd:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]+c.regs[in.Rs2])
	case isa.OpSub:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]-c.regs[in.Rs2])
	case isa.OpAnd:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]&c.regs[in.Rs2])
	case isa.OpOr:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]|c.regs[in.Rs2])
	case isa.OpXor:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]^c.regs[in.Rs2])
	case isa.OpSlli:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]<<uint(in.Imm&63))
	case isa.OpSrli:
		c.SetReg(int(in.Rd), c.regs[in.Rs1]>>uint(in.Imm&63))
	case isa.OpSltu:
		v := uint64(0)
		if c.regs[in.Rs1] < c.regs[in.Rs2] {
			v = 1
		}
		c.SetReg(int(in.Rd), v)
	case isa.OpLd, isa.OpLdNorm, isa.OpLdRand:
		vaddr := c.regs[in.Rs1] + uint64(in.Imm)
		v, err := c.load(vaddr)
		if err != nil {
			return c.fault("%s: %w", in, err)
		}
		c.SetReg(int(in.Rd), v)
	case isa.OpSd:
		vaddr := c.regs[in.Rs1] + uint64(in.Imm)
		if err := c.store(vaddr, c.regs[in.Rs2]); err != nil {
			return c.fault("%s: %w", in, err)
		}
	case isa.OpBeq:
		if c.regs[in.Rs1] == c.regs[in.Rs2] {
			next = int(in.Imm)
		}
	case isa.OpBne:
		if c.regs[in.Rs1] != c.regs[in.Rs2] {
			next = int(in.Imm)
		}
	case isa.OpBltu:
		if c.regs[in.Rs1] < c.regs[in.Rs2] {
			next = int(in.Imm)
		}
	case isa.OpJ:
		next = int(in.Imm)
	case isa.OpCsrr:
		v, err := c.readCSR(in.CSR)
		if err != nil {
			return c.fault("%w", err)
		}
		c.SetReg(int(in.Rd), v)
	case isa.OpCsrw:
		if err := c.writeCSR(in.CSR, c.regs[in.Rs1]); err != nil {
			return c.fault("%w", err)
		}
	case isa.OpCsrwi:
		if err := c.writeCSR(in.CSR, uint64(in.Imm)); err != nil {
			return c.fault("%w", err)
		}
	default:
		return c.fault("invalid opcode %d", in.Op)
	}

	c.instret++
	c.pc = next
	return nil
}

// translate routes a data access through the TLB and charges its latency.
func (c *Machine) translate(vaddr uint64) (uint64, error) {
	res, err := c.TLB.Translate(c.asid, tlb.VPN(vaddr>>tlb.PageShift))
	c.cycles += res.Cycles
	if err != nil {
		return 0, err
	}
	return uint64(res.PPN)<<tlb.PageShift | vaddr&(tlb.PageSize-1), nil
}

func (c *Machine) load(vaddr uint64) (uint64, error) {
	paddr, err := c.translate(vaddr)
	if err != nil {
		return 0, err
	}
	c.cycles += c.cfg.DataAccessCycles
	v, _, err := c.Mem.Load64(paddr)
	return v, err
}

func (c *Machine) store(vaddr, value uint64) error {
	paddr, err := c.translate(vaddr)
	if err != nil {
		return err
	}
	c.cycles += c.cfg.DataAccessCycles
	_, err = c.Mem.Store64(paddr, value)
	return err
}

// ReadCSR reads a CSR from host code (identical to csrr).
func (c *Machine) ReadCSR(csr uint16) (uint64, error) { return c.readCSR(csr) }

func (c *Machine) readCSR(csr uint16) (uint64, error) {
	switch csr {
	case isa.CSRCycle:
		return c.cycles, nil
	case isa.CSRInstret:
		return c.instret, nil
	case isa.CSRTLBMissCount:
		return c.TLB.Stats().Misses, nil
	case isa.CSRTLBHitCount:
		return c.TLB.Stats().Hits, nil
	case isa.CSRProcessID:
		return uint64(c.asid), nil
	case isa.CSRSBase:
		return c.sbase, nil
	case isa.CSRSSize:
		return c.ssize, nil
	case isa.CSRVictimASID:
		return c.victim, nil
	default:
		return 0, fmt.Errorf("read of unknown CSR %#x", csr)
	}
}

func (c *Machine) writeCSR(csr uint16, v uint64) error {
	switch csr {
	case isa.CSRProcessID:
		c.asid = tlb.ASID(v)
		// Context switch: designs that flush (or otherwise react) on a
		// switch see it at CSR-write time, before the incoming process's
		// first access.
		if o, ok := c.TLB.(tlb.ASIDObserver); ok {
			o.ObserveASID(c.asid)
		}
	case isa.CSRSBase:
		c.sbase = v
		if st, ok := c.TLB.(tlb.SecureTLB); ok {
			st.SetSecureRegion(tlb.VPN(v), c.ssize)
		}
	case isa.CSRSSize:
		c.ssize = v
		if st, ok := c.TLB.(tlb.SecureTLB); ok {
			st.SetSecureRegion(tlb.VPN(c.sbase), v)
		}
	case isa.CSRVictimASID:
		c.victim = v
		if st, ok := c.TLB.(tlb.SecureTLB); ok {
			st.SetVictim(tlb.ASID(v))
		}
	case isa.CSRTLBFlushAll:
		c.TLB.FlushAll()
		c.cycles += c.cfg.FlushCycles
	case isa.CSRTLBFlushASID:
		c.TLB.FlushASID(tlb.ASID(v))
		c.cycles += c.cfg.FlushCycles
	case isa.CSRTLBFlushPage:
		present := c.TLB.FlushPage(c.asid, tlb.VPN(v>>tlb.PageShift))
		c.cycles += c.cfg.FlushCycles
		if c.cfg.VariableFlushTiming && present {
			// Appendix B: checking first and invalidating in a second
			// cycle shortens the common case but leaks presence.
			c.cycles++
		}
	case isa.CSRTLBFlushPageAll:
		present := c.TLB.FlushPageAllASIDs(tlb.VPN(v >> tlb.PageShift))
		c.cycles += c.cfg.FlushCycles
		if c.cfg.VariableFlushTiming && present {
			c.cycles++
		}
	case isa.CSRCycle, isa.CSRInstret, isa.CSRTLBMissCount, isa.CSRTLBHitCount:
		return fmt.Errorf("CSR %s is read-only", isa.CSRName(csr))
	default:
		return fmt.Errorf("write of unknown CSR %#x", csr)
	}
	return nil
}
