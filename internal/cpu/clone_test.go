package cpu

import (
	"testing"

	"securetlb/internal/asm"
	"securetlb/internal/tlb"
)

// cloneProbeSrc touches two pages and reports the TLB miss delta of a
// re-access in x30 (the same shape as the security benchmarks' timed step).
const cloneProbeSrc = `
	li x1, 0x1000000
	ld x2, 0(x1)
	li x1, 0x1001000
	ld x3, 0(x1)
	csrr x28, tlb_miss_count
	li x1, 0x1000000
	ld x4, 0(x1)
	csrr x29, tlb_miss_count
	sub x30, x29, x28
	pass
.data
.org 0x1000000
	.dword 111
.org 0x1001000
	.dword 222
`

func loadedMachine(t *testing.T) *Machine {
	t.Helper()
	m := newMachine(t)
	p, err := asm.Assemble(cloneProbeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0, 1}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCloneRunsIdenticallyToOriginal(t *testing.T) {
	orig := loadedMachine(t)
	clone, err := orig.Clone()
	if err != nil {
		t.Fatal(err)
	}
	codeA, errA := orig.Run(1_000_000)
	codeB, errB := clone.Run(1_000_000)
	if errA != nil || errB != nil {
		t.Fatalf("run errors: %v / %v", errA, errB)
	}
	if codeA != codeB || orig.Cycles() != clone.Cycles() || orig.Instret() != clone.Instret() {
		t.Errorf("clone diverged: code %d/%d cycles %d/%d instret %d/%d",
			codeA, codeB, orig.Cycles(), clone.Cycles(), orig.Instret(), clone.Instret())
	}
	for r := 0; r < 32; r++ {
		if orig.Reg(r) != clone.Reg(r) {
			t.Errorf("x%d = %d vs clone %d", r, orig.Reg(r), clone.Reg(r))
		}
	}
	if orig.TLB.Stats() != clone.TLB.Stats() {
		t.Errorf("TLB stats diverged: %+v vs %+v", orig.TLB.Stats(), clone.TLB.Stats())
	}
}

func TestCloneIsIsolatedFromOriginal(t *testing.T) {
	orig := loadedMachine(t)
	clone, err := orig.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Run only the clone: the original's state must stay untouched.
	if _, err := clone.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if orig.Cycles() != 0 || orig.Instret() != 0 || orig.PC() != 0 {
		t.Error("running the clone advanced the original")
	}
	if orig.TLB.Stats().Lookups != 0 {
		t.Error("the clone translated through the original's TLB")
	}
	// Dirty the clone's memory; the original must still read the loaded data.
	paddr, err := orig.PT.Translate(0, tlb.VPN(0x1000000>>tlb.PageShift))
	if err != nil {
		t.Fatal(err)
	}
	clone.Mem.Store64(uint64(paddr)<<tlb.PageShift, 999)
	v, _, err := orig.Mem.Load64(uint64(paddr) << tlb.PageShift)
	if err != nil || v != 111 {
		t.Errorf("original data = %d (%v) after clone store, want 111", v, err)
	}
}

func TestCloneSupportsConcurrentTrials(t *testing.T) {
	// The exact usage pattern of the sharded security runner: the
	// orchestrator clones one loaded template sequentially (Clone mutates
	// the source's copy-on-write bookkeeping, so clones of one machine must
	// not race each other), then the clones run trial loops concurrently.
	// Under -race this doubles as the machine-level race check.
	template := loadedMachine(t)
	const workers = 4
	type out struct {
		cycles uint64
		miss   uint64
		err    error
	}
	machines := make([]*Machine, workers)
	for w := range machines {
		m, err := template.Clone()
		if err != nil {
			t.Fatal(err)
		}
		machines[w] = m
	}
	outs := make([]out, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- w }()
			m := machines[w]
			for trial := 0; trial < 10; trial++ {
				m.Reset()
				m.TLB.FlushAll()
				m.TLB.ResetStats()
				if _, err := m.Run(1_000_000); err != nil {
					outs[w].err = err
					return
				}
			}
			outs[w].cycles = m.Cycles()
			outs[w].miss = m.TLB.Stats().Misses
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w := 1; w < workers; w++ {
		if outs[w].err != nil {
			t.Fatal(outs[w].err)
		}
		if outs[w] != outs[0] {
			t.Errorf("worker %d diverged: %+v vs %+v", w, outs[w], outs[0])
		}
	}
}

func TestCloneRejectsUnwiredMachine(t *testing.T) {
	var m Machine
	if _, err := m.Clone(); err == nil {
		t.Error("cloning an unwired machine should error")
	}
}

func BenchmarkMachineClone(b *testing.B) {
	t := &testing.T{}
	m := newMachine(t)
	p, err := asm.Assemble(cloneProbeSrc)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0, 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Clone(); err != nil {
			b.Fatal(err)
		}
	}
}
