package cpu

import (
	"context"
	"errors"
	"strings"
	"testing"

	"securetlb/internal/asm"
	"securetlb/internal/isa"
	"securetlb/internal/ptw"
	"securetlb/internal/tlb"
)

// newMachine builds a machine with a 4W-32 SA TLB, 20-cycle memory and
// default core config.
func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewSystem(20, func(w tlb.Walker) (tlb.TLB, error) {
		return tlb.NewSetAssoc(32, 4, w)
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runSrc assembles, loads (for ASIDs 0 and 1) and runs src, returning the
// machine and exit code.
func runSrc(t *testing.T, src string) (*Machine, int64) {
	t.Helper()
	m := newMachine(t)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.Load(p, []tlb.ASID{0, 1}); err != nil {
		t.Fatalf("load: %v", err)
	}
	code, err := m.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, code
}

func TestArithmeticAndBranches(t *testing.T) {
	m, code := runSrc(t, `
		li x1, 10
		li x2, 32
		add x3, x1, x2      # 42
		sub x4, x3, x1      # 32
		slli x5, x1, 2      # 40
		srli x6, x5, 1      # 20
		and x7, x3, x2      # 42 & 32 = 32
		or x8, x1, x2       # 42
		xor x9, x8, x8      # 0
		sltu x10, x1, x2    # 1
		li x11, 42
		bne x3, x11, bad
		pass
	bad:
		fail
	`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	want := map[int]uint64{3: 42, 4: 32, 5: 40, 6: 20, 7: 32, 8: 42, 9: 0, 10: 1}
	for r, v := range want {
		if m.Reg(r) != v {
			t.Errorf("x%d = %d, want %d", r, m.Reg(r), v)
		}
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	m, _ := runSrc(t, `
		li x0, 99
		addi x0, x0, 5
		pass
	`)
	if m.Reg(0) != 0 {
		t.Errorf("x0 = %d", m.Reg(0))
	}
}

func TestLoadStoreThroughTLB(t *testing.T) {
	m, code := runSrc(t, `
		la x1, val
		ld x2, 0(x1)
		li x3, 123
		bne x2, x3, bad
		li x4, 55
		sd x4, 8(x1)
		ld x5, 8(x1)
		bne x5, x4, bad
		pass
	bad:
		fail
	.data
	val: .dword 123 0
	`)
	if code != 0 {
		t.Fatalf("exit = %d, x2=%d x5=%d", code, m.Reg(2), m.Reg(5))
	}
	st := m.TLB.Stats()
	if st.Misses != 1 {
		t.Errorf("TLB misses = %d, want 1 (same page, one walk)", st.Misses)
	}
	if st.Hits != 2 {
		t.Errorf("TLB hits = %d, want 2", st.Hits)
	}
}

func TestMissCounterCSR(t *testing.T) {
	_, code := runSrc(t, `
		la x1, a
		ld x2, 0(x1)            # miss 1
		csrr x3, tlb_miss_count
		ld x2, 0(x1)            # hit
		csrr x4, tlb_miss_count
		bne x3, x4, bad         # counters must be equal
		la x1, b
		ld x2, 0(x1)            # miss 2
		csrr x5, tlb_miss_count
		beq x4, x5, bad         # counter must have advanced
		pass
	bad:
		fail
	.data
	a: .dword 1
	.page
	b: .dword 2
	`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestProcessIDSwitchAndASIDTagging(t *testing.T) {
	// The Figure 6 simulation hack: one binary switches process_id between
	// attacker (0) and victim (1); the same page then misses again under the
	// other ASID because TLB entries are ASID-tagged.
	_, code := runSrc(t, `
		csrwi process_id, 0
		la x1, a
		ld x2, 0(x1)            # attacker miss
		csrr x3, tlb_miss_count
		csrwi process_id, 1
		ld x2, 0(x1)            # victim access to same page: must miss
		csrr x4, tlb_miss_count
		beq x3, x4, bad
		pass
	bad:
		fail
	.data
	a: .dword 7
	`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestCycleCounterObservesMissLatency(t *testing.T) {
	m, code := runSrc(t, `
		la x1, a
		csrr x10, cycle
		ld x2, 0(x1)            # miss: 1 + 60 + 1 cycles
		csrr x11, cycle
		ld x2, 0(x1)            # hit: 1 + 1 + 1 cycles
		csrr x12, cycle
		pass
	.data
	a: .dword 1
	`)
	if code != 0 {
		t.Fatal("failed")
	}
	missTime := m.Reg(11) - m.Reg(10)
	hitTime := m.Reg(12) - m.Reg(11)
	if missTime <= hitTime {
		t.Errorf("miss time %d should exceed hit time %d", missTime, hitTime)
	}
	// miss: csrr(1) + ld(1+61+1) = 64 between the two csrr reads... the
	// exact values depend on where csrr samples; assert the difference.
	if missTime-hitTime != 60 {
		t.Errorf("timing difference = %d, want the 60-cycle walk", missTime-hitTime)
	}
}

func TestTLBFlushCSRs(t *testing.T) {
	_, code := runSrc(t, `
		la x1, a
		ld x2, 0(x1)
		csrr x3, tlb_miss_count
		csrwi tlb_flush_all, 0
		ld x2, 0(x1)            # must miss again
		csrr x4, tlb_miss_count
		beq x3, x4, bad
		csrwi tlb_flush_asid, 0
		ld x2, 0(x1)            # flushed own ASID: miss again
		csrr x5, tlb_miss_count
		beq x4, x5, bad
		la x6, a
		csrw tlb_flush_page, x6
		ld x2, 0(x1)            # flushed the page: miss again
		csrr x7, tlb_miss_count
		beq x5, x7, bad
		pass
	bad:
		fail
	.data
	a: .dword 1
	`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestSecureCSRsProgramRFTLB(t *testing.T) {
	m, err := NewSystem(20, func(w tlb.Walker) (tlb.TLB, error) {
		return tlb.NewRF(32, 8, w, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	src := `
		csrwi victim_asid, 1
		la x1, sec
		srli x2, x1, 12
		csrw sbase, x2
		csrwi ssize, 3
		csrwi process_id, 1
		ldrand x3, 0(x1)        # secure access: served via buffer
		csrr x4, tlb_miss_count
		pass
	.data
	sec: .dword 11
	.page
	.dword 12
	.page
	.dword 13
	`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	rf := m.TLB.(*tlb.RF)
	if rf.Victim() != 1 {
		t.Errorf("victim = %d", rf.Victim())
	}
	sbase, ssize := rf.SecureRegion()
	if uint64(sbase) != asm.DefaultDataBase>>12 || ssize != 3 {
		t.Errorf("secure region = (%#x,%d)", sbase, ssize)
	}
	if rf.Stats().RandomFills != 1 {
		t.Errorf("random fills = %d, want 1", rf.Stats().RandomFills)
	}
	if m.Reg(3) != 11 {
		t.Errorf("secure load value = %d, want 11 (served via no-fill buffer)", m.Reg(3))
	}
}

func TestVariableFlushTiming(t *testing.T) {
	// Appendix B: with the two-cycle invalidation optimisation, flushing a
	// present entry takes one cycle longer than flushing an absent one.
	run := func(variable bool) (present, absent uint64) {
		m := newMachine(t)
		m.cfg.VariableFlushTiming = variable
		src := `
			la x1, a
			ld x2, 0(x1)
			csrr x10, cycle
			csrw tlb_flush_page, x1  # entry present
			csrr x11, cycle
			csrw tlb_flush_page, x1  # entry now absent
			csrr x12, cycle
			pass
		.data
		a: .dword 1
		`
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(p, []tlb.ASID{0}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1000); err != nil {
			t.Fatal(err)
		}
		return m.Reg(11) - m.Reg(10), m.Reg(12) - m.Reg(11)
	}
	p, a := run(false)
	if p != a {
		t.Errorf("constant-time flush: present=%d absent=%d", p, a)
	}
	p, a = run(true)
	if p != a+1 {
		t.Errorf("variable flush: present=%d absent=%d, want present = absent+1", p, a)
	}
}

func TestRunLimit(t *testing.T) {
	m := newMachine(t)
	p, _ := asm.Assemble("loop: j loop")
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(100)
	if !errors.Is(err, ErrLimit) {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	// The watchdog sentinel and its historical alias are the same error.
	if !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v, want ErrFuelExhausted", err)
	}
	if errors.Is(err, ErrFault) {
		t.Error("fuel exhaustion must not classify as a fault")
	}
}

func TestRunCtx(t *testing.T) {
	m := newMachine(t)
	p, _ := asm.Assemble("loop: j loop")
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunCtx(ctx, 1_000_000_000); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunCtx: err = %v, want context.Canceled", err)
	}
	// A live context behaves like Run: fuel exhaustion across chunks...
	m.Reset()
	if _, err := m.RunCtx(context.Background(), 10_000); !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v, want ErrFuelExhausted", err)
	}
	// ...and a halting program returns its exit code.
	halting, _ := asm.Assemble("halt 7")
	if err := m.Load(halting, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	code, err := m.RunCtx(context.Background(), 10_000)
	if err != nil || code != 7 {
		t.Errorf("RunCtx = (%d, %v), want (7, nil)", code, err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	m := newMachine(t)
	p, _ := asm.Assemble("nop") // falls off the end
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(10)
	if err == nil || !strings.Contains(err.Error(), "outside program") {
		t.Errorf("err = %v", err)
	}
	if !errors.Is(err, ErrFault) {
		t.Errorf("wild PC should classify as ErrFault, got %v", err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	m := newMachine(t)
	p, _ := asm.Assemble(`
		li x1, 0x7f000000
		ld x2, 0(x1)
		pass
	`)
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(10)
	if err == nil {
		t.Error("load from unmapped page should fault")
	}
	if !errors.Is(err, ErrFault) {
		t.Errorf("unmapped access should classify as ErrFault, got %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %T, want *FaultError", err)
	}
	if fe.PC != 1 {
		t.Errorf("fault PC = %d, want 1 (the ld)", fe.PC)
	}
	if !errors.Is(err, ptw.ErrPageFault) {
		t.Errorf("fault should unwrap to the page-table cause, got %v", err)
	}
}

func TestStepSentinels(t *testing.T) {
	m := newMachine(t)
	if err := m.Step(); !errors.Is(err, ErrNoProgram) {
		t.Errorf("Step before Load: err = %v, want ErrNoProgram", err)
	}
	if _, err := m.Run(10); !errors.Is(err, ErrNoProgram) {
		t.Errorf("Run before Load: err = %v, want ErrNoProgram", err)
	}
	p, _ := asm.Assemble("pass")
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt: err = %v, want ErrHalted", err)
	}
}

func TestReadOnlyCSRs(t *testing.T) {
	m := newMachine(t)
	p, _ := asm.Assemble("csrwi cycle, 5\npass")
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownCSR(t *testing.T) {
	m := newMachine(t)
	p := &isa.Program{Instrs: []isa.Instr{{Op: isa.OpCsrr, Rd: 1, CSR: 0x555}}}
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err == nil {
		t.Error("unknown CSR read should error")
	}
}

func TestInstretCounter(t *testing.T) {
	m, _ := runSrc(t, `
		nop
		nop
		csrr x1, instret
		pass
	`)
	if m.Reg(1) != 2 {
		t.Errorf("instret at csrr = %d, want 2", m.Reg(1))
	}
	if m.Instret() != 4 {
		t.Errorf("final instret = %d, want 4", m.Instret())
	}
}

func TestResetKeepsMemoryAndTLB(t *testing.T) {
	m, _ := runSrc(t, `
		la x1, a
		ld x2, 0(x1)
		pass
	.data
	a: .dword 1
	`)
	missesBefore := m.TLB.Stats().Misses
	m.Reset()
	if m.Cycles() != 0 || m.PC() != 0 || m.Halted() {
		t.Error("Reset should clear core state")
	}
	if m.TLB.Stats().Misses != missesBefore {
		t.Error("Reset must not clear the TLB")
	}
	// Re-run: the data page is still cached in the TLB.
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.TLB.Stats().Misses != missesBefore {
		t.Error("re-run after Reset should hit in the warm TLB")
	}
}

func TestStepErrors(t *testing.T) {
	m := newMachine(t)
	if err := m.Step(); err == nil {
		t.Error("Step with no program should error")
	}
	p, _ := asm.Assemble("pass")
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err == nil {
		t.Error("Step after halt should error")
	}
}

func TestLoadRequiresASID(t *testing.T) {
	m := newMachine(t)
	p, _ := asm.Assemble("pass")
	if err := m.Load(p, nil); err == nil {
		t.Error("Load with no address spaces should error")
	}
}

func TestFlushPageAllASIDsCSR(t *testing.T) {
	// The address-based invalidation CSR removes the page for every address
	// space — the Appendix B shootdown the extended benchmarks rely on.
	_, code := runSrc(t, `
		csrwi process_id, 0
		la x1, a
		ld x2, 0(x1)            # attacker caches the page
		csrwi process_id, 1
		ld x2, 0(x1)            # victim caches the page
		csrr x3, tlb_miss_count
		csrw tlb_flush_page_all, x1
		csrwi process_id, 0
		ld x2, 0(x1)            # must miss again
		csrwi process_id, 1
		ld x2, 0(x1)            # must miss again
		csrr x4, tlb_miss_count
		sub x5, x4, x3
		li x6, 2
		bne x5, x6, bad
		pass
	bad:
		fail
	.data
	a: .dword 7
	`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestVariableFlushTimingAllASIDs(t *testing.T) {
	m := newMachine(t)
	m.cfg.VariableFlushTiming = true
	src := `
		la x1, a
		ld x2, 0(x1)
		csrr x10, cycle
		csrw tlb_flush_page_all, x1  # present: extra cycle
		csrr x11, cycle
		csrw tlb_flush_page_all, x1  # absent: quick
		csrr x12, cycle
		pass
	.data
	a: .dword 1
	`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	present, absent := m.Reg(11)-m.Reg(10), m.Reg(12)-m.Reg(11)
	if present != absent+1 {
		t.Errorf("present=%d absent=%d, want present = absent+1", present, absent)
	}
}

func TestAccessorsAndReadCSR(t *testing.T) {
	m, _ := runSrc(t, `
		csrwi process_id, 3
		pass
	`)
	if m.ASID() != 3 {
		t.Errorf("ASID = %d", m.ASID())
	}
	m.SetASID(5)
	if m.ASID() != 5 {
		t.Errorf("SetASID failed: %d", m.ASID())
	}
	if m.ExitCode() != 0 || !m.Halted() {
		t.Errorf("exit state: (%d, %v)", m.ExitCode(), m.Halted())
	}
	for _, csr := range []uint16{
		isa.CSRCycle, isa.CSRInstret, isa.CSRTLBMissCount, isa.CSRTLBHitCount,
		isa.CSRProcessID, isa.CSRSBase, isa.CSRSSize, isa.CSRVictimASID,
	} {
		if _, err := m.ReadCSR(csr); err != nil {
			t.Errorf("ReadCSR(%s): %v", isa.CSRName(csr), err)
		}
	}
	if _, err := m.ReadCSR(0x123); err == nil {
		t.Error("unknown CSR should error")
	}
}

func TestASID3CanRunWhenMapped(t *testing.T) {
	// Load's ASID list is what makes data visible to a process ID.
	m := newMachine(t)
	p, err := asm.Assemble(`
		csrwi process_id, 3
		la x1, a
		ld x2, 0(x1)
		pass
	.data
	a: .dword 77
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 77 {
		t.Errorf("x2 = %d", m.Reg(2))
	}
}

func TestITLBFetchTranslation(t *testing.T) {
	// With an I-TLB installed, instruction fetches translate the PC's page:
	// the first fetch walks, subsequent same-page fetches hit.
	m := newMachine(t)
	itlb, err := tlb.NewSetAssoc(8, 2, m.PT)
	if err != nil {
		t.Fatal(err)
	}
	const textBase = 0x40_0000
	m.SetITLB(itlb, textBase)
	if m.ITLB() != itlb {
		t.Fatal("ITLB accessor broken")
	}
	p, err := asm.Assemble(`
		nop
		nop
		nop
		pass
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	st := itlb.Stats()
	if st.Lookups != 4 {
		t.Errorf("I-TLB lookups = %d, want 4 (one per instruction)", st.Lookups)
	}
	if st.Misses != 1 || st.Hits != 3 {
		t.Errorf("I-TLB stats = %+v, want 1 miss (compulsory) + 3 hits", st)
	}
	// The fetch misses show up in the cycle count: 4 instr + 61 (fetch
	// walk+probe) + 3*1 (fetch hits) = 68.
	if m.Cycles() != 68 {
		t.Errorf("cycles = %d, want 68", m.Cycles())
	}
}

func TestITLBTextSpanningPages(t *testing.T) {
	// A program longer than one page of text touches two I-TLB pages
	// (4 bytes per instruction, 1024 instructions per page).
	m := newMachine(t)
	itlb, _ := tlb.NewSetAssoc(8, 2, m.PT)
	m.SetITLB(itlb, 0x40_0000)
	var prog isa.Program
	for i := 0; i < 1025; i++ {
		prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpNop})
	}
	prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpHalt})
	if err := m.Load(&prog, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5000); err != nil {
		t.Fatal(err)
	}
	if itlb.Stats().Misses != 2 {
		t.Errorf("I-TLB misses = %d, want 2 (two text pages)", itlb.Stats().Misses)
	}
}
