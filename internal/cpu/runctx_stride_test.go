package cpu

import (
	"context"
	"errors"
	"testing"

	"securetlb/internal/asm"
	"securetlb/internal/isa"
	"securetlb/internal/tlb"
)

// These tests pin RunCtx's chunking arithmetic at the ctxCheckStride
// boundaries. RunCtx slices the budget into stride-sized Run calls; an
// off-by-one there would silently give trials one instruction too many or
// too few of budget — invisible to the coarse cancellation tests, fatal to
// replay bit-identity, which assumes Run(n) and RunCtx(ctx, n) retire
// exactly the same instruction sequence.

// loadLoop loads an infinite loop (j loop) for ASID 0.
func loadLoop(t *testing.T) *Machine {
	t.Helper()
	m := newMachine(t)
	p, err := asm.Assemble("loop: j loop")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunCtxStrideBoundaryBudgets(t *testing.T) {
	// One under, exactly at, and one over the stride — plus multiples, where
	// the final chunk is empty, full, or a single instruction.
	budgets := []uint64{
		0, 1,
		ctxCheckStride - 1, ctxCheckStride, ctxCheckStride + 1,
		2*ctxCheckStride - 1, 2 * ctxCheckStride, 2*ctxCheckStride + 1,
	}
	for _, budget := range budgets {
		m := loadLoop(t)
		_, err := m.RunCtx(context.Background(), budget)
		if !errors.Is(err, ErrFuelExhausted) {
			t.Fatalf("budget %d: err = %v, want ErrFuelExhausted", budget, err)
		}
		if got := m.Instret(); got != budget {
			t.Errorf("budget %d: retired %d instructions, want exactly the budget", budget, got)
		}
	}
}

func TestRunCtxMatchesRunAtStrideBoundaries(t *testing.T) {
	// A program that halts after its busywork; under every boundary budget
	// the chunked and unchunked runs must agree on exit code, error,
	// retirement and cycle counts.
	src := `
		li x1, 0
		li x2, 3000
	loop:
		addi x1, x1, 1
		bne x1, x2, loop
		halt 9
	`
	for _, budget := range []uint64{
		ctxCheckStride - 1, ctxCheckStride, ctxCheckStride + 1, 3 * ctxCheckStride,
	} {
		run := func(chunked bool) (int64, error, uint64, uint64) {
			m := newMachine(t)
			p, err := asm.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Load(p, []tlb.ASID{0}); err != nil {
				t.Fatal(err)
			}
			var code int64
			if chunked {
				code, err = m.RunCtx(context.Background(), budget)
			} else {
				code, err = m.Run(budget)
			}
			return code, err, m.Instret(), m.Cycles()
		}
		pc, perr, pinstr, pcyc := run(false)
		cc, cerr, cinstr, ccyc := run(true)
		if pc != cc || !errors.Is(cerr, perr) || (perr == nil) != (cerr == nil) {
			t.Errorf("budget %d: Run = (%d, %v), RunCtx = (%d, %v)", budget, pc, perr, cc, cerr)
		}
		if pinstr != cinstr || pcyc != ccyc {
			t.Errorf("budget %d: Run retired %d/%d cycles, RunCtx %d/%d",
				budget, pinstr, pcyc, cinstr, ccyc)
		}
	}
}

func TestRunCtxHaltInsideFinalPartialChunk(t *testing.T) {
	// Halt lands inside a final, shorter-than-stride chunk: the halt code
	// must come back (not ErrFuelExhausted), with retirement stopped at the
	// halt.
	src := `
		li x1, 0
		li x2, 2047
	loop:
		addi x1, x1, 1
		bne x1, x2, loop
		halt 3
	`
	m := newMachine(t)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p, []tlb.ASID{0}); err != nil {
		t.Fatal(err)
	}
	// The program retires 2 + 2046*2 + 2 = wherever the halt lands — what
	// matters is that it is past one full stride and short of the budget.
	budget := uint64(2 * ctxCheckStride)
	code, err := m.RunCtx(context.Background(), budget)
	if code != 3 || err != nil {
		t.Fatalf("RunCtx = (%d, %v), want (3, nil)", code, err)
	}
	if got := m.Instret(); got <= ctxCheckStride || got >= budget {
		t.Errorf("halt retired %d instructions; expected inside the second chunk (%d, %d)",
			got, ctxCheckStride, budget)
	}
}

func TestRunCtxCancellationLandsOnStrideBoundary(t *testing.T) {
	// A context cancelled before the run starts is seen at the first poll:
	// nothing retires. One cancelled mid-run stops at the next stride
	// boundary, not at the end of the budget.
	m := loadLoop(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunCtx(ctx, 10*ctxCheckStride); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m.Instret(); got != 0 {
		t.Errorf("pre-cancelled run retired %d instructions, want 0", got)
	}

	// Cancel from inside the machine: a recorder hook fires partway through
	// the second chunk; the run must stop at the following boundary.
	m2 := loadLoop(t)
	ctx2, cancel2 := context.WithCancel(context.Background())
	fired := 0
	m2.SetRecorder(recorderFunc(func(*Machine) error {
		fired++
		if fired == ctxCheckStride+10 {
			cancel2()
		}
		return nil
	}))
	_, err := m2.RunCtx(ctx2, 10*ctxCheckStride)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m2.Instret(); got != 2*ctxCheckStride {
		t.Errorf("mid-run cancel stopped after %d instructions, want the 2nd boundary (%d)",
			got, 2*ctxCheckStride)
	}
}

// recorderFunc adapts a func to the Recorder interface's OnInstr.
type recorderFunc func(*Machine) error

func (f recorderFunc) OnInstr(m *Machine, _ *isa.Instr) error { return f(m) }
