package assert

import (
	"errors"
	"fmt"

	"securetlb/internal/tlb"
)

// SetMapper is the capability exposing a design's VPN-to-set mapping. The
// monitor validates set placement with the design's own mapping — never a
// private re-derivation — so checker and design cannot disagree (a
// power-of-two geometry masks, others reduce modulo, and a future
// randomized-index design will hash; all are equally checkable).
type SetMapper interface {
	SetIndex(vpn tlb.VPN) int
}

// Partitioner is the capability exposing a design's fill-confinement policy:
// the way range [lo, hi) that installs (and therefore evictions) caused by
// asid must stay inside. Declaring it binds the partition-confinement and
// no-cross-domain-eviction assertions.
type Partitioner interface {
	FillRange(asid tlb.ASID) (lo, hi int)
}

// RandomFillPredictor is the capability exposing a random-fill engine's next
// decision without perturbing it. Declaring it binds the
// rng-stream-integrity and no-fill-on-secure-miss assertions.
type RandomFillPredictor interface {
	PredictNextRandomFill(asid tlb.ASID, vpn tlb.VPN) (tlb.VPN, bool, error)
}

// KeyedIndexer is the capability exposing a randomized-index design's
// cipher-keyed (ASID, VPN)-to-set mapping and its re-key machinery. A keyed
// design deliberately does not declare SetMapper — its placement is not a
// function of the VPN alone — so declaring this capability replaces the
// monitor's unkeyed set dispatch AND binds the rekey-completeness assertion.
type KeyedIndexer interface {
	// KeyedSetIndex is the design's own keyed set mapping.
	KeyedSetIndex(asid tlb.ASID, vpn tlb.VPN) int
	// IndexKey returns the current epoch key.
	IndexKey() uint64
	// RekeyEpoch returns the re-key generation counter; it advances exactly
	// when a re-key happens.
	RekeyEpoch() uint64
	// PendingRekey reports, side-effect-free, whether the next lookup will
	// re-key before its probe.
	PendingRekey() bool
	// PredictNextKey replays the key stream's next draw on a clone of the
	// generator: the key a fault-free re-key would install.
	PredictNextKey() uint64
}

// AutoFlusher is the capability of designs that flush themselves from inside
// Translate — the RI TLB's re-key flush and the FS TLB's switch/secure-exit
// flush. PendingAutoFlush predicts, side-effect-free, whether the next
// lookup for (asid, vpn) begins with a design-initiated full flush, letting
// the transition-shape assertions switch to their flush-then-install arm.
type AutoFlusher interface {
	PendingAutoFlush(asid tlb.ASID, vpn tlb.VPN) bool
}

// switchFlusher is the capability of designs that flush on a CSR-delivered
// context switch (the FS TLB). Declaring it arms the monitor's ObserveASID
// post-check and the per-access arm of flush-completeness: after any access,
// only the current context's entries may be resident.
type switchFlusher interface {
	PendingSwitchFlush(next tlb.ASID) bool
}

// victimReporter reports whether a security design currently has a victim
// designated (SP and RF both expose HasVictim).
type victimReporter interface {
	HasVictim() bool
}

// fillStarver reports whether a random-fill engine may currently starve
// (skip) a prescribed fill for legitimate reasons — the RF design's
// ablation-only lazy mode. While it may, the suppressed-fill arm of the
// rng-stream-integrity assertion stands down.
type fillStarver interface {
	RandomFillMayStarve() bool
}

// Options configures a Monitor.
type Options struct {
	// CrossCheck binds the translation-cross-check assertion: every
	// successful translation is re-walked against the walker and the
	// physical page numbers compared. It costs one extra page walk per
	// access but is the only check that catches a corrupted walk whose
	// wrong result the TLB installed faithfully.
	CrossCheck bool
	// Tap, when non-nil, observes every derived event as it is emitted,
	// before the assertions run. Taps are per-monitor observers and are
	// deliberately not inherited by CloneWith clones (which may run
	// concurrently on worker machines).
	Tap func(Event)
}

// Monitor wraps an inspectable TLB design, derives the typed event stream
// from every instrumented operation, and evaluates the design's assertion
// binding over it. It implements tlb.TLB, tlb.SecureTLB (forwarding to the
// inner design, or no-ops for a non-secure design, so a wrapped TLB drops
// into any machine unchanged) and tlb.Cloner.
//
// Monitor deliberately does NOT implement tlb.FastTranslator or
// tlb.CounterReader: the trace-replay VM promotes designs exposing those to
// its register-level fast path, which would bypass the snapshotting here.
// Their absence is what forces assertion-enabled runs back to the
// interpreter, exactly as the invariant checker always has.
type Monitor struct {
	inner  tlb.TLB
	insp   tlb.Inspectable
	walker tlb.Walker
	opts   Options
	design string

	// Capability views of the inner design; nil when not declared.
	sec     tlb.SecureTLB
	part    Partitioner
	pred    RandomFillPredictor
	vic     victimReporter
	starver fillStarver
	keyed   KeyedIndexer
	auto    AutoFlusher
	swf     switchFlusher
	aobs    tlb.ASIDObserver

	setIdx              func(tlb.VPN) int
	entries, ways, sets int

	binding   Binding
	pre, post []tlb.EntrySnapshot
	events    []Event

	// acc and fl are the reused per-operation assertion contexts. They live
	// in the Monitor so passing their address to assertion functions does
	// not allocate.
	acc Access
	fl  FlushInfo

	// pending holds a violation found on a path that cannot return an error
	// (the flush operations); it is surfaced by the next Translate.
	pending error

	// Checks counts completed per-access validations, for tests and reports.
	Checks uint64
}

var (
	_ tlb.SecureTLB = (*Monitor)(nil)
	_ tlb.Cloner    = (*Monitor)(nil)
)

// Wrap returns a Monitor around t with the binding BindingFor derives from
// t's capabilities. The walker is used only for the optional translation
// cross-check and may be nil when opts.CrossCheck is false. It fails for
// designs that do not expose their array (tlb.Inspectable).
func Wrap(t tlb.TLB, walker tlb.Walker, opts Options) (*Monitor, error) {
	insp, ok := t.(tlb.Inspectable)
	if !ok {
		return nil, fmt.Errorf("assert: %s does not support inspection", t.Name())
	}
	if opts.CrossCheck && walker == nil {
		return nil, errors.New("assert: cross-check requires a walker")
	}
	m := &Monitor{
		inner:   t,
		insp:    insp,
		walker:  walker,
		opts:    opts,
		design:  t.Name(),
		entries: t.Entries(),
		ways:    t.Ways(),
	}
	m.sets = m.entries / m.ways
	m.sec, _ = t.(tlb.SecureTLB)
	m.part, _ = t.(Partitioner)
	m.pred, _ = t.(RandomFillPredictor)
	m.vic, _ = t.(victimReporter)
	m.starver, _ = t.(fillStarver)
	m.keyed, _ = t.(KeyedIndexer)
	m.auto, _ = t.(AutoFlusher)
	m.swf, _ = t.(switchFlusher)
	m.aobs, _ = t.(tlb.ASIDObserver)
	if sm, ok := t.(SetMapper); ok {
		m.setIdx = sm.SetIndex
	} else {
		sets := uint64(m.sets)
		m.setIdx = func(vpn tlb.VPN) int { return int(uint64(vpn) % sets) }
	}
	m.binding = BindingFor(t, opts.CrossCheck)
	m.pre = make([]tlb.EntrySnapshot, 0, m.entries)
	m.post = make([]tlb.EntrySnapshot, 0, m.entries)
	m.events = make([]Event, 0, 8)
	m.acc.m = m
	m.fl.m = m
	return m, nil
}

// Unwrap returns the design inside a Monitor, or t itself when it is not
// wrapped. Campaign code that needs the concrete design (e.g. to reseed the
// RF TLB per trial) must go through Unwrap so it works identically with
// checking on or off.
func Unwrap(t tlb.TLB) tlb.TLB {
	if m, ok := t.(*Monitor); ok {
		return m.inner
	}
	return t
}

// Inner returns the wrapped design.
func (m *Monitor) Inner() tlb.TLB { return m.inner }

// Binding returns the assertion binding in effect for the wrapped design.
func (m *Monitor) Binding() Binding { return m.binding }

// domainOf derives the security domain of (asid, vpn) from the inner
// design's security registers.
func (m *Monitor) domainOf(asid tlb.ASID, vpn tlb.VPN) Domain {
	if m.sec == nil || m.vic == nil || !m.vic.HasVictim() {
		return DomainNone
	}
	if asid != m.sec.Victim() {
		return DomainAttacker
	}
	if sbase, ssize := m.sec.SecureRegion(); ssize > 0 && vpn >= sbase && uint64(vpn-sbase) < ssize {
		return DomainSecure
	}
	return DomainVictim
}

// indexFor is the monitor's set dispatch: the design's keyed mapping when it
// declares one, its plain SetMapper (or the modulo fallback) otherwise.
func (m *Monitor) indexFor(asid tlb.ASID, vpn tlb.VPN) int {
	if m.keyed != nil {
		return m.keyed.KeyedSetIndex(asid, vpn)
	}
	return m.setIdx(vpn)
}

// emit appends an event to the current operation's stream and feeds the tap.
func (m *Monitor) emit(e Event) {
	m.events = append(m.events, e)
	if m.opts.Tap != nil {
		m.opts.Tap(e)
	}
}

// Access is the assertion context for one Translate: the request, its
// Result, the derived events, the pre/post array snapshots and the diff set.
// The same Access value is reused across calls — assertions must not retain
// it or any slice obtained from it past their return.
type Access struct {
	ASID   tlb.ASID
	VPN    tlb.VPN
	Domain Domain
	Res    tlb.Result
	Err    error

	// PredVPN/PredFill hold the random-fill engine's predicted next
	// decision; PredOK reports that the design declared a predictor.
	PredVPN  tlb.VPN
	PredFill bool
	PredOK   bool

	// AutoFlush reports that the design predicted a design-initiated full
	// flush at the start of this access (AutoFlusher capability): the
	// transition-shape assertions switch to their flush-then-install arm.
	AutoFlush bool

	// PreEpoch/PostEpoch and PreKey/PostKey frame a keyed design's re-key
	// state around the access; PredKey is the key a fault-free re-key would
	// install. KeyedOK reports that the design declared a KeyedIndexer.
	PreEpoch, PostEpoch uint64
	PreKey, PostKey     uint64
	PredKey             uint64
	KeyedOK             bool

	m      *Monitor
	diffs  [4]int // flat indices that changed, capped (one is already the legal max)
	ndiffs int
}

// Pre returns the pre-access array snapshot, set-major.
func (a *Access) Pre() []tlb.EntrySnapshot { return a.m.pre }

// Post returns the post-access array snapshot, set-major.
func (a *Access) Post() []tlb.EntrySnapshot { return a.m.post }

// Events returns the event stream derived from this access.
func (a *Access) Events() []Event { return a.m.events }

// Diffs returns the flat indices whose snapshot changed, capped at 4 (any
// count past the legal maximum of one is already a violation; the extras
// only improve messages).
func (a *Access) Diffs() []int { return a.diffs[:a.ndiffs] }

// NDiffs returns the (capped) number of changed slots.
func (a *Access) NDiffs() int { return a.ndiffs }

// findPost returns the flat index of the valid entry for (asid, vpn) in the
// post-access snapshot, or -1. It searches the set the design's own mapping
// indexes.
func (a *Access) findPost(asid tlb.ASID, vpn tlb.VPN) int {
	m := a.m
	s := m.indexFor(asid, vpn)
	for w := 0; w < m.ways; w++ {
		i := s*m.ways + w
		e := &m.post[i]
		if e.Valid && e.ASID == asid && e.VPN == vpn {
			return i
		}
	}
	return -1
}

// fillRange returns the way range [lo, hi) a fill from asid must target: the
// design's declared partition when it has one, the whole set otherwise.
func (a *Access) fillRange(asid tlb.ASID) (lo, hi int) {
	if a.m.part != nil {
		return a.m.part.FillRange(asid)
	}
	return 0, a.m.ways
}

// lruIndex recomputes the replacement policy's victim choice over the
// pre-access snapshot: the first invalid way in [lo, hi) of set s, else the
// way with the smallest stamp. Returned as a flat index.
func (a *Access) lruIndex(s, lo, hi int) int {
	m := a.m
	victim, oldest := lo, ^uint64(0)
	for w := lo; w < hi; w++ {
		e := &m.pre[s*m.ways+w]
		if !e.Valid {
			return s*m.ways + w
		}
		if e.Stamp < oldest {
			victim, oldest = w, e.Stamp
		}
	}
	return s*m.ways + victim
}

// failf builds a Violation for the named assertion.
func (a *Access) failf(assertion, format string, args ...any) error {
	return &Violation{Assertion: assertion, Design: a.m.design, Detail: fmt.Sprintf(format, args...)}
}

// FlushInfo is the assertion context for one flush operation. Like Access it
// is reused across calls and must not be retained.
type FlushInfo struct {
	// Kind is one of the four flush kinds.
	Kind Kind
	// ASID/VPN are the flushed key's components (meaningful per Kind).
	ASID tlb.ASID
	VPN  tlb.VPN

	m *Monitor
}

// Post returns the post-flush array snapshot, set-major.
func (f *FlushInfo) Post() []tlb.EntrySnapshot { return f.m.post }

// failf builds a flush-completeness Violation.
func (f *FlushInfo) failf(format string, args ...any) error {
	return &Violation{Assertion: NameFlushCompleteness, Design: f.m.design, Detail: fmt.Sprintf(format, args...)}
}

// Translate implements tlb.TLB: it forwards the access to the wrapped
// design, derives the event stream, and evaluates the binding over the
// transition. A detected violation is returned in place of the design's own
// (nil) error.
func (m *Monitor) Translate(asid tlb.ASID, vpn tlb.VPN) (tlb.Result, error) {
	if p := m.pending; p != nil {
		m.pending = nil
		return tlb.Result{}, p
	}
	m.pre = m.insp.SnapshotAppend(m.pre[:0])

	a := &m.acc
	a.ASID, a.VPN = asid, vpn
	a.PredVPN, a.PredFill, a.PredOK = 0, false, false
	a.AutoFlush, a.KeyedOK = false, false
	if m.pred != nil {
		// Predict the Random Fill Engine's draw before the access so a
		// biased or stuck RNG is exposed by comparing prediction and
		// outcome.
		a.PredVPN, a.PredFill, _ = m.pred.PredictNextRandomFill(asid, vpn)
		a.PredOK = true
	}
	if m.auto != nil {
		a.AutoFlush = m.auto.PendingAutoFlush(asid, vpn)
	}
	if m.keyed != nil {
		// Frame the re-key state before the access: the epoch and key now,
		// and the key a fault-free re-key would draw next. Comparing the
		// post-access key against the prediction exposes a stuck key
		// register even though the array flush itself went through.
		a.PreEpoch, a.PreKey = m.keyed.RekeyEpoch(), m.keyed.IndexKey()
		a.PredKey = m.keyed.PredictNextKey()
		a.KeyedOK = true
	}

	res, err := m.inner.Translate(asid, vpn)
	m.post = m.insp.SnapshotAppend(m.post[:0])
	m.Checks++
	if m.keyed != nil {
		a.PostEpoch, a.PostKey = m.keyed.RekeyEpoch(), m.keyed.IndexKey()
	}

	a.Res, a.Err = res, err
	a.Domain = m.domainOf(asid, vpn)
	a.ndiffs = 0
	for i := range m.post {
		if m.post[i] != m.pre[i] {
			if a.ndiffs == len(a.diffs) {
				break
			}
			a.diffs[a.ndiffs] = i
			a.ndiffs++
		}
	}
	m.deriveEvents(a)

	for i := range m.binding.Assertions {
		as := &m.binding.Assertions[i]
		if as.Check == nil {
			continue
		}
		if v := as.Check(a); v != nil {
			return res, v
		}
	}
	return res, err
}

// deriveEvents translates one access's Result into the typed event stream.
func (m *Monitor) deriveEvents(a *Access) {
	m.events = m.events[:0]
	if a.AutoFlush {
		m.emit(Event{Kind: KindAutoFlush, ASID: a.ASID, VPN: a.VPN, Set: -1, Way: -1, Domain: a.Domain})
	}
	set := m.indexFor(a.ASID, a.VPN)
	switch {
	case a.Err != nil:
		m.emit(Event{Kind: KindError, ASID: a.ASID, VPN: a.VPN, Set: set, Way: -1, Domain: a.Domain})
	case a.Res.Hit:
		way := -1
		if i := a.findPost(a.ASID, a.VPN); i >= 0 {
			way = i % m.ways
		}
		m.emit(Event{Kind: KindHit, ASID: a.ASID, VPN: a.VPN, PPN: a.Res.PPN, Set: set, Way: way, Domain: a.Domain})
	default:
		m.emit(Event{Kind: KindMiss, ASID: a.ASID, VPN: a.VPN, PPN: a.Res.PPN, Set: set, Way: -1, Domain: a.Domain})
		switch {
		case a.Res.RandomFilled:
			// The RF TLB reports at most one eviction per access: the one
			// its D' install caused.
			rset, rway := m.indexFor(a.ASID, a.Res.RandomVPN), -1
			if i := a.findPost(a.ASID, a.Res.RandomVPN); i >= 0 {
				rset, rway = i/m.ways, i%m.ways
			}
			m.emitEvict(a, rset, rway)
			m.emit(Event{Kind: KindRandomFill, ASID: a.ASID, VPN: a.Res.RandomVPN, Set: rset, Way: rway, Domain: m.domainOf(a.ASID, a.Res.RandomVPN)})
		case a.Res.Filled:
			way := -1
			if i := a.findPost(a.ASID, a.VPN); i >= 0 {
				way = i % m.ways
			}
			m.emitEvict(a, set, way)
			m.emit(Event{Kind: KindFill, ASID: a.ASID, VPN: a.VPN, PPN: a.Res.PPN, Set: set, Way: way, Domain: a.Domain})
		default:
			m.emit(Event{Kind: KindNoFill, ASID: a.ASID, VPN: a.VPN, PPN: a.Res.PPN, Set: set, Way: -1, Domain: a.Domain})
		}
	}
}

// emitEvict emits the eviction event for an install at (set, way), carrying
// the displaced translation's identity and domain.
func (m *Monitor) emitEvict(a *Access, set, way int) {
	if !a.Res.Evicted {
		return
	}
	m.emit(Event{
		Kind: KindEvict, ASID: a.Res.EvictedASID, VPN: a.Res.EvictedVPN,
		Set: set, Way: way, Domain: m.domainOf(a.Res.EvictedASID, a.Res.EvictedVPN),
	})
}

// recordPending stores the first violation found on an error-less path; it
// is surfaced by the next Translate.
func (m *Monitor) recordPending(v error) {
	if v != nil && m.pending == nil {
		m.pending = v
	}
}

// afterFlush re-snapshots the array, emits the flush event and evaluates the
// binding's flush assertions, recording the first violation as pending.
func (m *Monitor) afterFlush(kind Kind, asid tlb.ASID, vpn tlb.VPN) {
	m.post = m.insp.SnapshotAppend(m.post[:0])
	m.events = m.events[:0]
	m.emit(Event{Kind: kind, ASID: asid, VPN: vpn, Set: -1, Way: -1, Domain: m.domainOf(asid, vpn)})
	f := &m.fl
	f.Kind, f.ASID, f.VPN = kind, asid, vpn
	for i := range m.binding.Assertions {
		as := &m.binding.Assertions[i]
		if as.CheckFlush == nil {
			continue
		}
		if v := as.CheckFlush(f); v != nil {
			m.recordPending(v)
			return
		}
	}
}

// Probe implements tlb.TLB.
func (m *Monitor) Probe(asid tlb.ASID, vpn tlb.VPN) bool { return m.inner.Probe(asid, vpn) }

// FlushAll implements tlb.TLB.
func (m *Monitor) FlushAll() {
	m.inner.FlushAll()
	m.afterFlush(KindFlushAll, 0, 0)
}

// FlushASID implements tlb.TLB.
func (m *Monitor) FlushASID(asid tlb.ASID) {
	m.inner.FlushASID(asid)
	m.afterFlush(KindFlushASID, asid, 0)
}

// FlushPage implements tlb.TLB.
func (m *Monitor) FlushPage(asid tlb.ASID, vpn tlb.VPN) bool {
	r := m.inner.FlushPage(asid, vpn)
	m.afterFlush(KindFlushPage, asid, vpn)
	return r
}

// FlushPageAllASIDs implements tlb.TLB.
func (m *Monitor) FlushPageAllASIDs(vpn tlb.VPN) bool {
	r := m.inner.FlushPageAllASIDs(vpn)
	m.afterFlush(KindFlushPageAll, 0, vpn)
	return r
}

// Stats implements tlb.TLB.
func (m *Monitor) Stats() tlb.Stats { return m.inner.Stats() }

// ResetStats implements tlb.TLB.
func (m *Monitor) ResetStats() { m.inner.ResetStats() }

// Entries implements tlb.TLB.
func (m *Monitor) Entries() int { return m.inner.Entries() }

// Ways implements tlb.TLB.
func (m *Monitor) Ways() int { return m.inner.Ways() }

// Name implements tlb.TLB. The inner name is kept verbatim so wrapped and
// unwrapped runs render identical tables.
func (m *Monitor) Name() string { return m.design }

// SetVictim implements tlb.SecureTLB, forwarding to the inner design when it
// is secure and doing nothing otherwise (the SA TLB ignores the security
// CSRs exactly the same way). The register write is emitted as an event
// either way — the stream reflects what software requested.
func (m *Monitor) SetVictim(asid tlb.ASID) {
	if m.sec != nil {
		m.sec.SetVictim(asid)
	}
	m.events = m.events[:0]
	m.emit(Event{Kind: KindSetVictim, ASID: asid, Set: -1, Way: -1})
}

// SetSecureRegion implements tlb.SecureTLB.
func (m *Monitor) SetSecureRegion(sbase tlb.VPN, ssize uint64) {
	if m.sec != nil {
		m.sec.SetSecureRegion(sbase, ssize)
	}
	m.events = m.events[:0]
	m.emit(Event{Kind: KindSetSecureRegion, VPN: sbase, Size: ssize, Set: -1, Way: -1})
}

// Victim implements tlb.SecureTLB.
func (m *Monitor) Victim() tlb.ASID {
	if m.sec != nil {
		return m.sec.Victim()
	}
	return 0
}

// SecureRegion implements tlb.SecureTLB.
func (m *Monitor) SecureRegion() (tlb.VPN, uint64) {
	if m.sec != nil {
		return m.sec.SecureRegion()
	}
	return 0, 0
}

// ObserveASID implements tlb.ASIDObserver, forwarding the context switch to
// the inner design when it observes switches and doing nothing otherwise (so
// a wrapped design sees exactly the CSR traffic an unwrapped one would).
// When the design declares a switch flush (switchFlusher), the monitor
// predicts it before forwarding and verifies afterwards that the flush was
// complete — the SIMF semantics say the erasure must happen at the switch
// itself, not at some later access. Violations found here surface through
// the next Translate, like the flush assertions.
func (m *Monitor) ObserveASID(next tlb.ASID) {
	if m.aobs == nil {
		return
	}
	pending := m.swf != nil && m.swf.PendingSwitchFlush(next)
	m.aobs.ObserveASID(next)
	m.events = m.events[:0]
	m.emit(Event{Kind: KindContextSwitch, ASID: next, Set: -1, Way: -1})
	if !pending {
		return
	}
	m.post = m.insp.SnapshotAppend(m.post[:0])
	for i := range m.post {
		if e := &m.post[i]; e.Valid {
			m.recordPending(&Violation{
				Assertion: NameFlushCompleteness, Design: m.design,
				Detail: fmt.Sprintf("context switch to asid %d left asid %d vpn %#x resident (dropped switch flush)", next, e.ASID, e.VPN),
			})
			return
		}
	}
}

// CloneWith implements tlb.Cloner: the inner design is cloned onto the new
// walker and wrapped in a fresh Monitor with the same configuration (minus
// the Tap — see Options.Tap), so per-worker machine clones keep checking
// independently.
func (m *Monitor) CloneWith(w tlb.Walker) tlb.TLB {
	cl, ok := m.inner.(tlb.Cloner)
	if !ok {
		return nil
	}
	inner := cl.CloneWith(w)
	if inner == nil {
		return nil
	}
	n, err := Wrap(inner, w, Options{CrossCheck: m.opts.CrossCheck})
	if err != nil {
		return nil
	}
	return n
}
